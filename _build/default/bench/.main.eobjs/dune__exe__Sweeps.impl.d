bench/sweeps.ml: Common List Printf Sof Sof_baselines Sof_lp Sof_topology Sof_util Sof_workload
