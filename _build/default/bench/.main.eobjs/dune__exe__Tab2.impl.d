bench/tab2.ml: Common List Printf Sof_simnet Sof_topology Sof_util Sof_workload
