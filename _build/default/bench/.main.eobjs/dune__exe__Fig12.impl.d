bench/fig12.ml: Array Common List Printf Sof_topology Sof_util Sof_workload
