bench/common.ml: List Option Printf Sof Sof_baselines Sof_topology Sof_util Sof_workload
