bench/distributed_bench.ml: Common List Printf Sof Sof_sdn Sof_topology Sof_util Sof_workload
