bench/microbench.ml: Analyze Bechamel Benchmark Common Hashtbl Instance List Measure Printf Sof Sof_baselines Sof_graph Sof_steiner Sof_topology Sof_util Sof_workload Staged Test Time Toolkit
