bench/fig_examples.ml: Common List Printf Sof Sof_cost Sof_graph Sof_util
