bench/dynamic_bench.ml: Common Fun List Printf Sof Sof_topology Sof_util Sof_workload Unix
