bench/tab1.ml: Common List Printf Sof Sof_topology Sof_util Sof_workload
