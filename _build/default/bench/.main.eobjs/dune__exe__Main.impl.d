bench/main.ml: Ablation Arg Distributed_bench Dynamic_bench Fig11 Fig12 Fig_examples List Microbench Printf Sweeps Tab1 Tab2 Unix
