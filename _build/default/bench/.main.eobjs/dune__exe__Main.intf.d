bench/main.mli:
