bench/ablation.ml: Array Common List Option Printf Sof Sof_cost Sof_graph Sof_topology Sof_util Sof_workload
