(* Section VII-C ablation: handling membership churn with the dynamic
   operations versus re-running SOFDA from scratch at every event.  The
   paper's argument for the dynamic rules is controller load; the price is
   a (small) cost gap.  We quantify both. *)

module Instance = Sof_workload.Instance
module Tbl = Sof_util.Tbl

type churn = Join of int | Leave of int

(* A deterministic churn trace: alternating joins of fresh access nodes and
   leaves of current destinations. *)
let trace rng problem events =
  let n_access = 27 in
  let current = ref problem.Sof.Problem.dests in
  List.init events (fun i ->
      if i mod 2 = 0 || List.length !current <= 2 then begin
        let candidates =
          List.filter
            (fun v -> not (List.mem v !current))
            (List.init n_access Fun.id)
        in
        let v =
          List.nth candidates (Sof_util.Rng.int rng (List.length candidates))
        in
        current := v :: !current;
        Join v
      end
      else begin
        let v =
          List.nth !current (Sof_util.Rng.int rng (List.length !current))
        in
        current := List.filter (fun d -> d <> v) !current;
        Leave v
      end)

let run_dynamic forest events =
  let forest = ref forest in
  let cost = ref 0.0 in
  let steps = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun ev ->
      let updated =
        match ev with
        | Join v -> Sof.Dynamic.destination_join !forest v
        | Leave v -> Some (Sof.Dynamic.destination_leave !forest v)
      in
      match updated with
      | Some u ->
          Sof.Validate.check_exn u.Sof.Dynamic.forest;
          forest := u.Sof.Dynamic.forest;
          cost := !cost +. Sof.Forest.total_cost !forest;
          incr steps
      | None -> ())
    events;
  (!cost /. float_of_int (max 1 !steps), Unix.gettimeofday () -. t0)

let run_rerun problem events =
  let dests = ref problem.Sof.Problem.dests in
  let cost = ref 0.0 in
  let steps = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun ev ->
      (match ev with
      | Join v -> dests := v :: !dests
      | Leave v -> dests := List.filter (fun d -> d <> v) !dests);
      let p =
        Sof.Problem.make ~graph:problem.Sof.Problem.graph
          ~node_cost:problem.Sof.Problem.node_cost
          ~vms:problem.Sof.Problem.vms
          ~sources:problem.Sof.Problem.sources ~dests:!dests
          ~chain_length:problem.Sof.Problem.chain_length
      in
      match Sof.Sofda.solve p with
      | Some r ->
          cost := !cost +. Sof.Forest.total_cost r.Sof.Sofda.forest;
          incr steps
      | None -> ())
    events;
  (!cost /. float_of_int (max 1 !steps), Unix.gettimeofday () -. t0)

let run ~quick ~seeds =
  Common.section
    "dyn — membership churn: dynamic operations vs full SOFDA re-runs (Sec. \
     VII-C)";
  let topo = Sof_topology.Topology.softlayer () in
  let runs = if quick then 3 else max 5 (seeds / 2) in
  let events = if quick then 8 else 16 in
  let t =
    Tbl.create
      ~caption:
        (Printf.sprintf
           "%d churn traces x %d join/leave events on SoftLayer defaults" runs
           events)
      [
        "metric"; "dynamic ops"; "full re-run"; "dynamic / re-run";
      ]
  in
  let dyn_cost = ref 0.0 and dyn_time = ref 0.0 in
  let rer_cost = ref 0.0 and rer_time = ref 0.0 in
  let n = ref 0 in
  for seed = 0 to runs - 1 do
    let rng = Sof_util.Rng.create (0xD9 + (seed * 61)) in
    let p = Instance.draw ~rng topo Instance.default_params in
    match Sof.Sofda.solve p with
    | None -> ()
    | Some r ->
        let events = trace rng p events in
        let dc, dt = run_dynamic r.Sof.Sofda.forest events in
        let rc, rt = run_rerun p events in
        dyn_cost := !dyn_cost +. dc;
        dyn_time := !dyn_time +. dt;
        rer_cost := !rer_cost +. rc;
        rer_time := !rer_time +. rt;
        incr n
  done;
  let fn = float_of_int (max 1 !n) in
  Tbl.add_row t
    [
      "mean forest cost after event";
      Printf.sprintf "%.2f" (!dyn_cost /. fn);
      Printf.sprintf "%.2f" (!rer_cost /. fn);
      Printf.sprintf "%.2fx" (!dyn_cost /. !rer_cost);
    ];
  Tbl.add_row t
    [
      "controller time per trace (ms)";
      Printf.sprintf "%.1f" (1000.0 *. !dyn_time /. fn);
      Printf.sprintf "%.1f" (1000.0 *. !rer_time /. fn);
      Printf.sprintf "%.3fx" (!dyn_time /. !rer_time);
    ];
  Tbl.print t;
  Common.note
    "The dynamic rules trade a small cost premium for a large drop in\n\
     controller computation — the paper's rationale for handling joins and\n\
     leaves incrementally instead of re-embedding the whole forest."
