(* Fig. 11: impact of the VM setup-cost multiple (1x..9x) and chain length
   (3..7) on (a) total cost and (b) the number of VMs SOFDA actually
   enables.  SoftLayer network, defaults elsewhere. *)

module Instance = Sof_workload.Instance
module Tbl = Sof_util.Tbl

let multiples = [ 1.0; 3.0; 5.0; 7.0; 9.0 ]
let chains = [ 3; 4; 5; 6; 7 ]

let run ~quick ~seeds =
  Common.section "fig11 — setup-cost multiple vs cost and used VMs (Fig. 11)";
  let topo = Sof_topology.Topology.softlayer () in
  let seeds = if quick then max 2 (seeds / 2) else seeds in
  let headers = "setup" :: List.map (fun c -> Printf.sprintf "|C|=%d" c) chains in
  let cost_t = Tbl.create ~caption:"(11-a) SOFDA cost" headers in
  let vms_t = Tbl.create ~caption:"(11-b) average #used VMs" headers in
  List.iter
    (fun mult ->
      let cost_row = ref [] and vm_row = ref [] in
      List.iter
        (fun chain ->
          let params =
            {
              Instance.default_params with
              Instance.setup_multiplier = mult;
              chain_length = chain;
            }
          in
          let cost = ref 0.0 and used = ref 0 and n = ref 0 in
          for seed = 0 to seeds - 1 do
            let rng = Sof_util.Rng.create (0xF16 + (seed * 31)) in
            let p = Instance.draw ~rng topo params in
            match Sof.Sofda.solve p with
            | Some r ->
                cost := !cost +. Sof.Forest.total_cost r.Sof.Sofda.forest;
                used :=
                  !used
                  + List.length (Sof.Forest.enabled_vms r.Sof.Sofda.forest);
                incr n
            | None -> ()
          done;
          let fn = float_of_int (max 1 !n) in
          cost_row := (!cost /. fn) :: !cost_row;
          vm_row := (float_of_int !used /. fn) :: !vm_row)
        chains;
      Tbl.add_float_row cost_t (Printf.sprintf "%.0fx" mult) (List.rev !cost_row);
      Tbl.add_float_row vms_t (Printf.sprintf "%.0fx" mult) (List.rev !vm_row))
    multiples;
  Tbl.print cost_t;
  print_newline ();
  Tbl.print vms_t;
  Common.note
    "Expected shapes: cost grows with both knobs; the number of enabled VMs\n\
     can never drop below |C| but the embedding avoids extra VMs as they\n\
     get pricier."
