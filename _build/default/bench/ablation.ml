(* Ablation: which of SOFDA's three constituent constructions actually
   wins, how often the multi-tree construction produces more than one tree,
   and how often VNF conflicts need resolving — the design choices
   DESIGN.md calls out. *)

module Instance = Sof_workload.Instance
module Tbl = Sof_util.Tbl

let run_topology name topo params ~runs =
  let aux_wins = ref 0 and grafted_wins = ref 0 and ss_wins = ref 0 in
  let multi_tree = ref 0 and conflicts = ref 0 and n = ref 0 in
  let aux_total = ref 0.0 and graft_total = ref 0.0 and ss_total = ref 0.0 in
  for seed = 0 to runs - 1 do
    let rng = Sof_util.Rng.create (0xAB1A + (seed * 97)) in
    let p = Instance.draw ~rng topo params in
    let t = Sof.Transform.create p in
    let aux = Sof.Sofda.solve_aux ~t p in
    let grafted = Sof.Sofda.solve_grafted ~source_setup:false ~t p in
    let ss =
      List.fold_left
        (fun best source ->
          match Sof.Sofda_ss.solve ~transform:t p ~source with
          | None -> best
          | Some r -> (
              let c = Sof.Forest.total_cost r.Sof.Sofda_ss.forest in
              match best with Some b when b <= c -> best | _ -> Some c))
        None p.Sof.Problem.sources
    in
    let cost_of = function
      | None -> infinity
      | Some (r : Sof.Sofda.report) -> Sof.Forest.total_cost r.Sof.Sofda.forest
    in
    let ca = cost_of aux
    and cg = cost_of grafted
    and cs = Option.value ~default:infinity ss in
    if ca < infinity && cg < infinity && cs < infinity then begin
      incr n;
      aux_total := !aux_total +. ca;
      graft_total := !graft_total +. cg;
      ss_total := !ss_total +. cs;
      let best = min ca (min cg cs) in
      if ca <= best +. 1e-9 then incr aux_wins;
      if cg <= best +. 1e-9 then incr grafted_wins;
      if cs <= best +. 1e-9 then incr ss_wins;
      match aux with
      | Some r ->
          if List.length r.Sof.Sofda.selected_chains > 1 then incr multi_tree;
          conflicts := !conflicts + r.Sof.Sofda.conflicts_resolved
      | None -> ()
    end
  done;
  let fn = float_of_int (max 1 !n) in
  ( name,
    !n,
    [
      Printf.sprintf "%.2f" (!aux_total /. fn);
      Printf.sprintf "%.2f" (!graft_total /. fn);
      Printf.sprintf "%.2f" (!ss_total /. fn);
      Printf.sprintf "%d%% / %d%% / %d%%"
        (100 * !aux_wins / max 1 !n)
        (100 * !grafted_wins / max 1 !n)
        (100 * !ss_wins / max 1 !n);
      string_of_int !multi_tree;
      string_of_int !conflicts;
    ] )

(* Two SoftLayer copies joined by a single expensive trans-ocean link, a
   source and VMs in each half: the regime of the paper's Fig. 1 where a
   forest with two trees must beat any single tree. *)
let two_islands_instance seed =
  let module G = Sof_graph.Graph in
  let base = (Sof_topology.Topology.softlayer ()).Sof_topology.Topology.graph in
  let n = G.n base in
  let rng = Sof_util.Rng.create (0x151A + seed) in
  let price () = Sof_cost.Cost_model.utilization_cost (Sof_util.Rng.uniform rng) in
  let shift k (u, v, _) = (u + k, v + k, price ()) in
  let edges =
    List.map (shift 0) (G.edges base)
    @ List.map (shift n) (G.edges base)
    @ [ (0, n, 60.0) ]
  in
  (* 4 VMs per island, attached to random nodes of that island *)
  let nvms = 8 in
  let vm_edges =
    List.init nvms (fun i ->
        let island = if i < nvms / 2 then 0 else n in
        (2 * n + i, island + Sof_util.Rng.int rng n, price ()))
  in
  let total = (2 * n) + nvms in
  let graph = G.create ~n:total ~edges:(edges @ vm_edges) in
  let node_cost = Array.make total 0.0 in
  let vms = List.init nvms (fun i -> (2 * n) + i) in
  List.iter (fun vm -> node_cost.(vm) <- 0.3 *. price ()) vms;
  let pick island = island + Sof_util.Rng.int rng n in
  let sources = [ pick 0; pick n ] in
  let dests =
    [ pick 0; pick 0; pick 0; pick n; pick n; pick n ]
    |> List.sort_uniq compare
  in
  Sof.Problem.make ~graph ~node_cost ~vms ~sources ~dests ~chain_length:2

let run_islands ~runs =
  let aux_wins = ref 0 and multi = ref 0 and n = ref 0 in
  let aux_total = ref 0.0 and graft_total = ref 0.0 and ss_total = ref 0.0 in
  let conflicts = ref 0 in
  for seed = 0 to runs - 1 do
    let p = two_islands_instance seed in
    let t = Sof.Transform.create p in
    let aux = Sof.Sofda.solve_aux ~t p in
    let grafted = Sof.Sofda.solve_grafted ~source_setup:false ~t p in
    let ss =
      List.fold_left
        (fun best source ->
          match Sof.Sofda_ss.solve ~transform:t p ~source with
          | None -> best
          | Some r -> (
              let c = Sof.Forest.total_cost r.Sof.Sofda_ss.forest in
              match best with Some b when b <= c -> best | _ -> Some c))
        None p.Sof.Problem.sources
    in
    match (aux, grafted, ss) with
    | Some a, Some g, Some s ->
        incr n;
        let ca = Sof.Forest.total_cost a.Sof.Sofda.forest in
        let cg = Sof.Forest.total_cost g.Sof.Sofda.forest in
        aux_total := !aux_total +. ca;
        graft_total := !graft_total +. cg;
        ss_total := !ss_total +. s;
        if ca <= min cg s +. 1e-9 then incr aux_wins;
        if List.length a.Sof.Sofda.selected_chains > 1 then incr multi;
        conflicts := !conflicts + a.Sof.Sofda.conflicts_resolved
    | _ -> ()
  done;
  let fn = float_of_int (max 1 !n) in
  ( "two islands, bridge cost 60",
    !n,
    [
      Printf.sprintf "%.2f" (!aux_total /. fn);
      Printf.sprintf "%.2f" (!graft_total /. fn);
      Printf.sprintf "%.2f" (!ss_total /. fn);
      Printf.sprintf "%d%% / - / -" (100 * !aux_wins / max 1 !n);
      string_of_int !multi;
      string_of_int !conflicts;
    ] )

let run ~quick ~seeds =
  Common.section
    "ablate — SOFDA construction ablation (aux multi-tree vs grafted vs SS)";
  let runs = if quick then max 10 seeds else max 40 (4 * seeds) in
  let t =
    Tbl.create
      ~caption:(Printf.sprintf "%d instances per row; wins may tie" runs)
      [
        "setting"; "aux cost"; "grafted cost"; "best-SS cost";
        "wins aux/graft/ss"; "#multi-tree"; "#conflicts";
      ]
  in
  let add (name, n, cells) =
    Tbl.add_row t ((name ^ Printf.sprintf " (n=%d)" n) :: cells)
  in
  add
    (run_topology "softlayer defaults"
       (Sof_topology.Topology.softlayer ())
       Instance.default_params ~runs);
  add
    (run_topology "softlayer |D|=10"
       (Sof_topology.Topology.softlayer ())
       { Instance.default_params with Instance.n_dests = 10 }
       ~runs);
  add
    (run_topology "cogent defaults"
       (Sof_topology.Topology.cogent ())
       Instance.default_params ~runs:(runs / 2));
  add
    (run_topology "islands-style |S|=8, |D|=8, 5 VMs"
       (Sof_topology.Topology.cogent ())
       {
         Instance.n_vms = 5;
         n_sources = 8;
         n_dests = 8;
         chain_length = 2;
         setup_multiplier = 0.2;
       }
       ~runs:(runs / 2));
  add (run_islands ~runs:(runs / 2));
  Tbl.print t;
  Common.note
    "The minimum of the three constructions is what Sofda.solve returns.\n\
     On geographically well-connected topologies one tree nearly always\n\
     suffices (destination-to-destination shortcuts beat second chains);\n\
     the multi-tree construction becomes decisive — 3x and more, every\n\
     instance — once the network has expensive cuts between user\n\
     clusters, which is the paper's Fig. 1 regime."
