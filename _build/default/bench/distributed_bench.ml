(* Section VI ablation: distributed SOFDA across k controller domains —
   identical embedding cost, measured east-west message volume per phase,
   and southbound rule installations. *)

module Tbl = Sof_util.Tbl

let run ~quick ~seeds:_ =
  Common.section "dist — multi-controller SOFDA message accounting (Sec. VI)";
  let topo = Sof_topology.Topology.cogent () in
  let rng = Sof_util.Rng.create 0xD157 in
  let p =
    Sof_workload.Instance.draw ~rng topo Sof_workload.Instance.default_params
  in
  let central_cost =
    match Sof.Sofda.solve p with
    | Some r -> Sof.Forest.total_cost r.Sof.Sofda.forest
    | None -> nan
  in
  let domains = if quick then [ 2; 4 ] else [ 2; 4; 8; 16 ] in
  let t =
    Tbl.create
      ~caption:(Printf.sprintf "Cogent, centralized SOFDA cost = %.2f" central_cost)
      [ "#controllers"; "forest cost"; "east-west msgs"; "southbound"; "rules" ]
  in
  List.iter
    (fun k ->
      let net = Sof_sdn.Distributed.create p.Sof.Problem.graph ~k in
      let fabric = Sof_sdn.Fabric.create () in
      match Sof_sdn.Distributed.solve net fabric p with
      | None -> ()
      | Some stats ->
          Tbl.add_row t
            [
              string_of_int k;
              Printf.sprintf "%.2f"
                (Sof.Forest.total_cost stats.Sof_sdn.Distributed.forest);
              string_of_int (Sof_sdn.Fabric.total fabric);
              string_of_int (Sof_sdn.Fabric.southbound fabric);
              string_of_int stats.Sof_sdn.Distributed.rules_installed;
            ])
    domains;
  Tbl.print t;
  Common.note
    "The forest (and its cost) is invariant in the number of controllers —\n\
     the overlay distances are exact — while the east-west message volume\n\
     grows with the domain count."
