(* Table I: SOFDA running time (seconds) as |V| scales 1000..5000 and the
   number of candidate sources 2..26, on Inet-style synthetic networks. *)

module Instance = Sof_workload.Instance
module Tbl = Sof_util.Tbl

let sizes = [ 1000; 2000; 3000; 4000; 5000 ]
let source_counts = [ 2; 8; 14; 20; 26 ]

let run ~quick ~seeds:_ =
  Common.section "tab1 — SOFDA running time, seconds (Table I)";
  let sizes = if quick then [ 1000; 2000 ] else sizes in
  let headers =
    "|V|" :: List.map (fun s -> Printf.sprintf "|S|=%d" s) source_counts
  in
  let t = Tbl.create headers in
  List.iter
    (fun nodes ->
      let row =
        List.map
          (fun n_sources ->
            let rng = Sof_util.Rng.create (0x7AB1 + nodes) in
            let topo =
              Sof_topology.Topology.inet ~rng ~nodes ~links:(2 * nodes)
                ~dcs:(max 50 (nodes / 5))
            in
            let params =
              { Instance.default_params with Instance.n_sources }
            in
            let p = Instance.draw ~rng topo params in
            let _, dt = Sof_util.Timer.time (fun () -> Sof.Sofda.solve p) in
            dt)
          source_counts
      in
      Tbl.add_float_row ~fmt:(Printf.sprintf "%.3f") t (string_of_int nodes) row)
    sizes;
  Tbl.print t;
  Common.note
    "The paper reports 1.35-19.65 s on its hardware; absolute numbers\n\
     differ, the growth pattern in both dimensions is the claim."
