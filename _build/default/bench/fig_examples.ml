(* Fig. 1 analogue: cost anatomy of a service tree vs a service forest.
   The paper's Fig. 1 network is not fully specified in the text, so we use
   the two-island fixture from the test suite, which exhibits the same
   moral: consolidating the chain in one tree forces expensive bridging,
   while a two-tree forest is ~3x cheaper. *)

module Graph = Sof_graph.Graph
module Tbl = Sof_util.Tbl

let islands () =
  let g =
    Graph.create ~n:8
      ~edges:
        [
          (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (4, 5, 1.0); (5, 6, 1.0);
          (6, 7, 1.0); (3, 7, 50.0);
        ]
  in
  Sof.Problem.make ~graph:g
    ~node_cost:[| 0.0; 1.0; 1.0; 0.0; 0.0; 1.0; 1.0; 0.0 |]
    ~vms:[ 1; 2; 5; 6 ] ~sources:[ 0; 4 ] ~dests:[ 3; 7 ] ~chain_length:2

let run ~quick:_ ~seeds:_ =
  Common.section "fig1 — service tree vs. service overlay forest (Fig. 1)";
  let p = islands () in
  let t = Tbl.create [ "embedding"; "setup"; "connection"; "total"; "#trees" ] in
  (match Sof.Sofda_ss.solve p ~source:0 with
  | Some r ->
      let setup, conn = Sof.Forest.cost_breakdown r.Sof.Sofda_ss.forest in
      Tbl.add_row t
        [
          "single service tree (SOFDA-SS)";
          Printf.sprintf "%.1f" setup;
          Printf.sprintf "%.1f" conn;
          Printf.sprintf "%.1f" (setup +. conn);
          "1";
        ]
  | None -> ());
  (match Sof.Sofda.solve p with
  | Some r ->
      let setup, conn = Sof.Forest.cost_breakdown r.Sof.Sofda.forest in
      Tbl.add_row t
        [
          "service overlay forest (SOFDA)";
          Printf.sprintf "%.1f" setup;
          Printf.sprintf "%.1f" conn;
          Printf.sprintf "%.1f" (setup +. conn);
          string_of_int (List.length r.Sof.Sofda.selected_chains);
        ]
  | None -> ());
  Tbl.print t;
  Common.note
    "Paper's Fig. 1 reports 34 (tree) vs 14 (forest) on its example; the\n\
     qualitative claim — multiple trees with multiple sources slash the\n\
     bridging cost — is what this fixture reproduces."

let fig7 ~quick:_ ~seeds:_ =
  Common.section "fig7 — the convex load cost function (Fig. 7)";
  let t = Tbl.create [ "load (p=1)"; "cost" ] in
  let rec go u =
    if u <= 1.2 +. 1e-9 then begin
      Tbl.add_row t
        [
          Printf.sprintf "%.2f" u;
          Printf.sprintf "%.4f" (Sof_cost.Cost_model.utilization_cost u);
        ];
      go (u +. 0.1)
    end
  in
  go 0.0;
  Tbl.print t;
  Common.note
    "Piecewise-linear, slopes 1/3/10/70/500/5000; the printed intercept of\n\
     the last piece (14318/3) is corrected to Fortz-Thorup's 16318/3 so the\n\
     function is continuous at load 1.1 (see DESIGN.md)."
