(* Table II: video QoE on the 14-node / 20-link experimental SDN —
   startup latency and total re-buffering time under 4.5-9 Mbit/s available
   bandwidth, 8 Mbit/s H.264, transcoder + watermarker chain (|C| = 2),
   2 sources, 4 destinations.  The embedding algorithm decides the routes;
   the discrete-event simulator plays the sessions out. *)

module Instance = Sof_workload.Instance
module Sim = Sof_simnet.Sim
module Tbl = Sof_util.Tbl

let params =
  {
    Instance.n_vms = 8;
    n_sources = 2;
    n_dests = 4;
    chain_length = 2;
    setup_multiplier = 1.0;
  }

let algos = [ Common.sofda; Common.enemp; Common.est ]

let run ~quick ~seeds =
  Common.section "tab2 — testbed video QoE (Table II)";
  let topo = Sof_topology.Topology.testbed () in
  let runs = if quick then max 5 (seeds / 2) else max 20 seeds in
  let t =
    Tbl.create
      ~caption:
        (Printf.sprintf
           "mean over %d runs; 8 Mbit/s video, 137 s clip, 4.5-9 Mbit/s \
            available"
           runs)
      [ "algorithm"; "startup latency (s)"; "re-buffering time (s)"; "stalls" ]
  in
  List.iter
    (fun algo ->
      let st = ref 0.0 and rb = ref 0.0 and stalls = ref 0 and n = ref 0 in
      for seed = 0 to runs - 1 do
        let rng = Sof_util.Rng.create (0x7AB2 + (seed * 131)) in
        let p = Instance.draw ~rng topo params in
        match algo.Common.solve p with
        | None -> ()
        | Some f ->
            let sim_rng = Sof_util.Rng.create (0x51 + seed) in
            let ms = Sim.run ~rng:sim_rng Sim.default_config f in
            st := !st +. Sim.mean_startup ms;
            rb := !rb +. Sim.mean_rebuffer ms;
            stalls :=
              !stalls + List.fold_left (fun a m -> a + m.Sim.stalls) 0 ms;
            incr n
      done;
      let fn = float_of_int (max 1 !n) in
      Tbl.add_row t
        [
          algo.Common.label;
          Printf.sprintf "%.1f" (!st /. fn);
          Printf.sprintf "%.1f" (!rb /. fn);
          Printf.sprintf "%.1f" (float_of_int !stalls /. fn);
        ])
    algos;
  Tbl.print t;
  Common.note
    "Paper (testbed / Emulab): SOFDA 7.5/5.5 s startup and 34.0/29.8 s\n\
     re-buffering vs eNEMP 9.0/5.9 and 39.5/39.0, eST 10.0/6.2 and\n\
     41.0/45.7 — SOFDA must come out lowest on both metrics."
