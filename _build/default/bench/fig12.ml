(* Fig. 12: online deployment — accumulated embedding cost as requests
   arrive one by one, links and VMs carrying the load of what was already
   embedded (marginal Fortz-Thorup pricing). *)

module Online = Sof_workload.Online
module Tbl = Sof_util.Tbl

let algos = Common.standard_algos

let run_network name topo cfg ~n_requests ~checkpoints =
  let t =
    Tbl.create
      ~caption:
        (Printf.sprintf "(12) accumulated cost on %s (%d arrivals)" name
           n_requests)
      ("#arrivals" :: List.map (fun a -> a.Common.label) algos)
  in
  let series =
    List.map
      (fun algo ->
        let rng = Sof_util.Rng.create 0x0F12 in
        let steps =
          Online.run ~rng topo cfg ~n_requests ~algo:algo.Common.solve
        in
        Array.of_list (Online.accumulated_series steps))
      algos
  in
  List.iter
    (fun cp ->
      Tbl.add_float_row ~fmt:(Printf.sprintf "%.1f") t (string_of_int cp)
        (List.map (fun s -> s.(cp - 1)) series))
    checkpoints;
  Tbl.print t;
  print_newline ()

(* Section VII-B follow-up: congestion-triggered re-joins.  Under the
   marginal-cost model re-joins are rarely needed; under congestion-blind
   embedding they visibly cap the peak utilization. *)
let rejoin_panel ~quick =
  let n = if quick then 20 else 60 in
  let t =
    Tbl.create
      ~caption:
        (Printf.sprintf
           "(VII-B) re-joins on SoftLayer, %d arrivals" n)
      [ "embedding pricing"; "re-joins"; "peak link/VM utilization" ]
  in
  List.iter
    (fun (label, pricing, threshold) ->
      let rng = Sof_util.Rng.create 0x0F13 in
      let cfg = Online.softlayer_config in
      let r =
        Sof_workload.Online.run_adaptive ~pricing ~rng
          ~utilization_threshold:threshold
          (Sof_topology.Topology.softlayer ())
          cfg ~n_requests:n ~algo:Common.sofda.Common.solve
      in
      Tbl.add_row t
        [
          label;
          string_of_int r.Sof_workload.Online.reroutes;
          Printf.sprintf "%.0f%%"
            (100.0 *. r.Sof_workload.Online.peak_utilization);
        ])
    [
      ("marginal cost (paper's model)", `Marginal, 0.85);
      ("congestion-blind, no re-joins", `Hops, 99.0);
      ("congestion-blind + re-joins", `Hops, 0.85);
    ];
  Tbl.print t

let run ~quick ~seeds:_ =
  Common.section "fig12 — online deployment (Fig. 12)";
  let n_soft = if quick then 10 else 30 in
  let n_cog = if quick then 10 else 45 in
  let checkpoints n = List.filter (fun c -> c <= n) [ 5; 10; 15; 20; 25; 30; 35; 40; 45 ] in
  run_network "SoftLayer"
    (Sof_topology.Topology.softlayer ())
    Online.softlayer_config ~n_requests:n_soft
    ~checkpoints:(checkpoints n_soft);
  run_network "Cogent"
    (Sof_topology.Topology.cogent ())
    Online.cogent_config ~n_requests:n_cog ~checkpoints:(checkpoints n_cog);
  rejoin_panel ~quick;
  Common.note
    "Every request is embedded against the marginal congestion cost of the\n\
     already-carried load; the gap between SOFDA and the tree-first\n\
     baselines compounds as the network fills (the paper's Fig. 12 shape).\n\
     The re-join panel shows Section VII-B's congestion handling: marginal\n\
     pricing rarely needs it, congestion-blind embeddings are rescued by it."
