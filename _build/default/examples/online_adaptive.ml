(* Online deployment with congestion-triggered re-joins (Sections VII-B and
   VII-C): requests arrive one at a time, every embedding is priced by the
   marginal Fortz-Thorup cost of the load it adds, and whenever a link's
   utilization crosses a threshold the most recent forest crossing it
   re-routes around the hot spot.

   Run with:  dune exec examples/online_adaptive.exe *)

module Online = Sof_workload.Online

let sofda p = Option.map (fun r -> r.Sof.Sofda.forest) (Sof.Sofda.solve p)

let () =
  (* Long arrival sequence so that hub links climb deep into the convex
     part of the cost curve, where moving a flow off them clearly pays. *)
  let topo = Sof_topology.Topology.softlayer () in
  let cfg = Online.softlayer_config in
  let n_requests = 60 in

  let scenario name pricing threshold =
    let rng = Sof_util.Rng.create 17 in
    let r =
      Online.run_adaptive ~pricing ~rng ~utilization_threshold:threshold topo
        cfg ~n_requests ~algo:sofda
    in
    Printf.printf "%-34s %10d %16.0f%%\n" name r.Online.reroutes
      (100.0 *. r.Online.peak_utilization)
  in
  Printf.printf "%d arrivals on SoftLayer, 100 Mbit/s links, 5 Mbit/s demands\n\n"
    n_requests;
  Printf.printf "%-34s %10s %16s\n" "" "re-joins" "peak utilization";
  scenario "congestion-aware, no re-joins" `Marginal 99.0;
  scenario "congestion-aware + re-joins" `Marginal 0.85;
  scenario "congestion-blind, no re-joins" `Hops 99.0;
  scenario "congestion-blind + re-joins" `Hops 0.85;
  print_newline ();
  print_endline
    "Marginal-cost embedding (the paper's online model) already steers\n\
     around load, so re-joins rarely find anything to fix; with\n\
     congestion-blind embeddings the Section VII-B re-joins are what keeps\n\
     hot links out of the convex blow-up region."
