(* Dynamic operations on a live forest (Section VII-C): destinations join
   and leave, VNFs are inserted and deleted, and a congested link is
   re-routed — all without re-running SOFDA from scratch.

   Run with:  dune exec examples/dynamic_membership.exe *)

let show label (forest : Sof.Forest.t) =
  Sof.Validate.check_exn forest;
  Printf.printf "%-28s cost=%7.2f  dests=%-2d  VMs=%d  chain=%d\n" label
    (Sof.Forest.total_cost forest)
    (List.length forest.Sof.Forest.problem.Sof.Problem.dests)
    (List.length (Sof.Forest.enabled_vms forest))
    forest.Sof.Forest.problem.Sof.Problem.chain_length

let () =
  let topo = Sof_topology.Topology.softlayer () in
  let rng = Sof_util.Rng.create 7 in
  let params =
    {
      Sof_workload.Instance.n_vms = 15;
      n_sources = 4;
      n_dests = 5;
      chain_length = 2;
      setup_multiplier = 1.0;
    }
  in
  let problem = Sof_workload.Instance.draw ~rng topo params in
  match Sof.Sofda.solve problem with
  | None -> print_endline "initial embedding infeasible"
  | Some r ->
      let forest = r.Sof.Sofda.forest in
      show "initial SOFDA embedding" forest;

      (* A new subscriber joins. *)
      let newcomer =
        List.find
          (fun v -> not (Sof.Problem.is_dest problem v))
          (List.init 27 Fun.id)
      in
      (match Sof.Dynamic.destination_join forest newcomer with
      | None -> print_endline "join infeasible"
      | Some joined ->
          show
            (Printf.sprintf "after node %d joins" newcomer)
            joined.Sof.Dynamic.forest;

          (* An original subscriber leaves again. *)
          let leaver = List.hd problem.Sof.Problem.dests in
          let left =
            Sof.Dynamic.destination_leave joined.Sof.Dynamic.forest leaver
          in
          show
            (Printf.sprintf "after node %d leaves" leaver)
            left.Sof.Dynamic.forest;

          (* The operator adds a DPI function in front of the chain... *)
          (match Sof.Dynamic.vnf_insert left.Sof.Dynamic.forest ~at:1 with
          | None -> print_endline "insert infeasible"
          | Some dpi ->
              show "after inserting f1 (DPI)" dpi.Sof.Dynamic.forest;

              (* ... and later drops it again. *)
              let dropped =
                Sof.Dynamic.vnf_delete dpi.Sof.Dynamic.forest ~vnf:1
              in
              show "after deleting the DPI" dropped.Sof.Dynamic.forest;

              (* A link on the forest congests; re-route around it. *)
              (match Sof.Forest.paid_edges dropped.Sof.Dynamic.forest with
              | (u, v) :: _ -> (
                  match
                    Sof.Dynamic.reroute_link dropped.Sof.Dynamic.forest ~u ~v
                  with
                  | Some rerouted ->
                      show
                        (Printf.sprintf "after re-routing link (%d,%d)" u v)
                        rerouted.Sof.Dynamic.forest
                  | None -> print_endline "no alternative route")
              | [] -> ())))
