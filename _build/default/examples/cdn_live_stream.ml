(* CDN live-channel scenario (the paper's motivating workload): a live
   stream is available from several ingest points of the SoftLayer
   inter-DC network, must traverse an ad-inserter, a transcoder and a
   watermarker, and feeds regional edge proxies.  We embed the service
   forest with SOFDA and the tree-first baselines, then inspect costs and
   the QoE the embeddings would deliver under congestion.

   Run with:  dune exec examples/cdn_live_stream.exe *)

let () =
  let topo = Sof_topology.Topology.softlayer () in
  let rng = Sof_util.Rng.create 2026 in
  (* 3 ingest points, 8 edge proxies, chain = ad-insert, transcode,
     watermark. *)
  let params =
    {
      Sof_workload.Instance.n_vms = 20;
      n_sources = 3;
      n_dests = 8;
      chain_length = 3;
      setup_multiplier = 1.0;
    }
  in
  let problem = Sof_workload.Instance.draw ~rng topo params in
  Printf.printf "CDN live channel on %s\n" (Sof_topology.Topology.stats topo);
  Printf.printf "  ingest points: %s\n"
    (String.concat ", " (List.map string_of_int problem.Sof.Problem.sources));
  Printf.printf "  edge proxies : %s\n"
    (String.concat ", " (List.map string_of_int problem.Sof.Problem.dests));

  let algos =
    [
      ("SOFDA",
       fun p -> Option.map (fun r -> r.Sof.Sofda.forest) (Sof.Sofda.solve p));
      ("eNEMP", Sof_baselines.Baselines.enemp);
      ("eST", Sof_baselines.Baselines.est);
      ("ST", Sof_baselines.Baselines.st);
    ]
  in
  let t =
    Sof_util.Tbl.create
      [ "algorithm"; "setup"; "connection"; "total"; "#trees"; "#VMs" ]
  in
  List.iter
    (fun (name, solve) ->
      match solve problem with
      | None -> Sof_util.Tbl.add_row t [ name; "-"; "-"; "-"; "-"; "-" ]
      | Some forest ->
          Sof.Validate.check_exn forest;
          let setup, conn = Sof.Forest.cost_breakdown forest in
          Sof_util.Tbl.add_row t
            [
              name;
              Printf.sprintf "%.2f" setup;
              Printf.sprintf "%.2f" conn;
              Printf.sprintf "%.2f" (setup +. conn);
              string_of_int (List.length forest.Sof.Forest.walks);
              string_of_int (List.length (Sof.Forest.enabled_vms forest));
            ])
    algos;
  Sof_util.Tbl.print t;

  (* What would subscribers experience?  Play the embeddings through the
     flow simulator with an 8 Mbit/s live stream under congestion. *)
  print_newline ();
  let qoe =
    Sof_util.Tbl.create [ "algorithm"; "startup (s)"; "re-buffering (s)" ]
  in
  List.iter
    (fun (name, solve) ->
      match solve problem with
      | None -> ()
      | Some forest ->
          let sim_rng = Sof_util.Rng.create 99 in
          let ms =
            Sof_simnet.Sim.run ~rng:sim_rng Sof_simnet.Sim.default_config
              forest
          in
          Sof_util.Tbl.add_row qoe
            [
              name;
              Printf.sprintf "%.1f" (Sof_simnet.Sim.mean_startup ms);
              Printf.sprintf "%.1f" (Sof_simnet.Sim.mean_rebuffer ms);
            ])
    algos;
  Sof_util.Tbl.print qoe
