(* Multi-controller SDN (Section VI): the Cogent network split across
   controller domains, border-matrix exchange over the east-west
   interface, and a distributed SOFDA run whose forest matches the
   centralized one while every cross-controller message is accounted.

   Run with:  dune exec examples/distributed_controllers.exe *)

let () =
  let topo = Sof_topology.Topology.cogent () in
  let rng = Sof_util.Rng.create 11 in
  let problem =
    Sof_workload.Instance.draw ~rng topo Sof_workload.Instance.default_params
  in
  let graph = problem.Sof.Problem.graph in
  let net = Sof_sdn.Distributed.create graph ~k:6 in
  let domains = Sof_sdn.Distributed.domains net in
  Printf.printf "%s partitioned into %d controller domains\n"
    (Sof_topology.Topology.stats topo)
    domains.Sof_sdn.Domain.count;
  Array.iteri
    (fun d members ->
      Printf.printf "  controller %d: %d nodes, %d border routers\n" d
        (List.length members)
        (List.length (Sof_sdn.Domain.border_routers graph domains d)))
    domains.Sof_sdn.Domain.members;

  let fabric = Sof_sdn.Fabric.create () in
  Sof_sdn.Distributed.exchange_matrices net fabric;

  (* Hierarchical routing is exact: overlay distances equal global ones. *)
  let check_pairs = [ (0, 150); (17, 80); (42, 199) ] in
  List.iter
    (fun (u, v) ->
      let overlay = Sof_sdn.Distributed.overlay_distance net u v in
      let global = (Sof_graph.Dijkstra.run graph u).Sof_graph.Dijkstra.dist.(v) in
      Printf.printf "  dist(%d,%d): overlay %.3f vs global %.3f\n" u v overlay
        global)
    check_pairs;

  match Sof_sdn.Distributed.solve net fabric problem with
  | None -> print_endline "infeasible"
  | Some stats ->
      Printf.printf "\nleader: controller %d\n" stats.Sof_sdn.Distributed.leader;
      Printf.printf "forest cost: %.2f (centralized: %s)\n"
        (Sof.Forest.total_cost stats.Sof_sdn.Distributed.forest)
        (match Sof.Sofda.solve problem with
        | Some r ->
            Printf.sprintf "%.2f" (Sof.Forest.total_cost r.Sof.Sofda.forest)
        | None -> "-");
      Printf.printf "rules installed: %d; VNF conflicts resolved: %d\n"
        stats.Sof_sdn.Distributed.rules_installed
        stats.Sof_sdn.Distributed.conflicts;
      print_endline "east-west / southbound message volume:";
      List.iter
        (fun (kind, count) -> Printf.printf "  %-16s %d\n" kind count)
        stats.Sof_sdn.Distributed.messages
