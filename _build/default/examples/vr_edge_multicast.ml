(* Multi-user VR scenario (Section VII-A): game servers stream a shared
   virtual environment by static multicast to mobile-edge-computing (MEC)
   servers; every branch must traverse a 5-stage chain (collision
   detection, constraint matching, synchronization, view consistency,
   interest management).  We embed on the Cogent-scale network, compare the
   algorithms, and show how the setup-cost regime moves the VM placement.

   Run with:  dune exec examples/vr_edge_multicast.exe *)

let embed problem =
  [
    ("SOFDA",
     Option.map (fun r -> r.Sof.Sofda.forest) (Sof.Sofda.solve problem));
    ("eNEMP", Sof_baselines.Baselines.enemp problem);
    ("eST", Sof_baselines.Baselines.est problem);
  ]

let () =
  let topo = Sof_topology.Topology.cogent () in
  let rng = Sof_util.Rng.create 42 in
  let params =
    {
      Sof_workload.Instance.n_vms = 30;
      n_sources = 4;    (* replicated game-state servers *)
      n_dests = 12;     (* MEC servers that always sit in the group *)
      chain_length = 5;
      setup_multiplier = 1.0;
    }
  in
  let problem = Sof_workload.Instance.draw ~rng topo params in
  Printf.printf "VR multicast on %s, 5-stage chain, %d MEC sinks\n\n"
    (Sof_topology.Topology.stats topo)
    (List.length problem.Sof.Problem.dests);
  let t =
    Sof_util.Tbl.create [ "algorithm"; "total cost"; "#trees"; "#VMs" ]
  in
  List.iter
    (fun (name, forest) ->
      match forest with
      | None -> Sof_util.Tbl.add_row t [ name; "infeasible"; "-"; "-" ]
      | Some f ->
          Sof.Validate.check_exn f;
          Sof_util.Tbl.add_row t
            [
              name;
              Printf.sprintf "%.2f" (Sof.Forest.total_cost f);
              string_of_int (List.length f.Sof.Forest.walks);
              string_of_int (List.length (Sof.Forest.enabled_vms f));
            ])
    (embed problem);
  Sof_util.Tbl.print t;

  (* The same session when edge compute is scarce: 5x setup cost.  SOFDA
     consolidates onto fewer VMs (the paper's Fig. 11 effect). *)
  print_newline ();
  let rng = Sof_util.Rng.create 42 in
  let expensive =
    Sof_workload.Instance.draw ~rng topo
      { params with Sof_workload.Instance.setup_multiplier = 5.0 }
  in
  (match (Sof.Sofda.solve problem, Sof.Sofda.solve expensive) with
  | Some cheap, Some costly ->
      Printf.printf
        "setup 1x: %d VMs enabled, %d tree(s); setup 5x: %d VMs enabled, %d \
         tree(s)\n"
        (List.length (Sof.Forest.enabled_vms cheap.Sof.Sofda.forest))
        (List.length cheap.Sof.Sofda.selected_chains)
        (List.length (Sof.Forest.enabled_vms costly.Sof.Sofda.forest))
        (List.length costly.Sof.Sofda.selected_chains)
  | _ -> ());

  (* Flow rules the SDN controller would install. *)
  match Sof.Sofda.solve problem with
  | Some r ->
      let rules = Sof_sdn.Flow_table.compile r.Sof.Sofda.forest in
      Printf.printf
        "forwarding state: %d rules across %d switches (max %d per switch)\n"
        (List.length rules)
        (List.length (Sof_sdn.Flow_table.rules_per_node rules))
        (Sof_sdn.Flow_table.max_rules rules)
  | None -> ()
