examples/cdn_live_stream.mli:
