examples/vr_edge_multicast.mli:
