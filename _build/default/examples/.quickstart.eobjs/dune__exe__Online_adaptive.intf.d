examples/online_adaptive.mli:
