examples/vr_edge_multicast.ml: List Option Printf Sof Sof_baselines Sof_sdn Sof_topology Sof_util Sof_workload
