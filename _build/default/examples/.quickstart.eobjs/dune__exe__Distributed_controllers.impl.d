examples/distributed_controllers.ml: Array List Printf Sof Sof_graph Sof_sdn Sof_topology Sof_util Sof_workload
