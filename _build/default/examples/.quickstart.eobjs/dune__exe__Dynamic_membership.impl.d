examples/dynamic_membership.ml: Fun List Printf Sof Sof_topology Sof_util Sof_workload
