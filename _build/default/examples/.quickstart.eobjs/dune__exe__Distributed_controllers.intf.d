examples/distributed_controllers.mli:
