examples/cdn_live_stream.ml: List Option Printf Sof Sof_baselines Sof_simnet Sof_topology Sof_util Sof_workload String
