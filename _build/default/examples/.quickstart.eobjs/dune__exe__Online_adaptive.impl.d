examples/online_adaptive.ml: Option Printf Sof Sof_topology Sof_util Sof_workload
