examples/quickstart.ml: Format List Sof Sof_graph Sof_sdn
