examples/quickstart.mli:
