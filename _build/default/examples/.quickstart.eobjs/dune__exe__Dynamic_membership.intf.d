examples/dynamic_membership.mli:
