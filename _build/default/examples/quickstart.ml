(* Quickstart: build a tiny network by hand, embed a 2-VNF service chain
   for two destinations, and inspect the resulting service overlay forest.

   Run with:  dune exec examples/quickstart.exe *)

module Graph = Sof_graph.Graph

let () =
  (* A 6-node network: one video source (0), two candidate VMs (1, 2) with
     setup cost 1, a transit switch (3) and two subscribers (4, 5). *)
  let graph =
    Graph.create ~n:6
      ~edges:
        [
          (0, 1, 1.0); (1, 2, 1.0); (2, 3, 0.5); (3, 4, 1.0); (3, 5, 1.0);
          (0, 3, 4.0);
        ]
  in
  let problem =
    Sof.Problem.make ~graph
      ~node_cost:[| 0.0; 1.0; 1.0; 0.0; 0.0; 0.0 |]
      ~vms:[ 1; 2 ] ~sources:[ 0 ] ~dests:[ 4; 5 ] ~chain_length:2
  in
  Format.printf "%a@." Sof.Problem.pp problem;

  (* Embed with SOFDA (the paper's 3-rho_ST approximation). *)
  match Sof.Sofda.solve problem with
  | None -> print_endline "no feasible embedding"
  | Some report ->
      let forest = report.Sof.Sofda.forest in
      Sof.Validate.check_exn forest;
      Format.printf "%a@." Sof.Forest.pp forest;
      let setup, connection = Sof.Forest.cost_breakdown forest in
      Format.printf "setup = %.2f, connection = %.2f, total = %.2f@." setup
        connection
        (Sof.Forest.total_cost forest);

      (* The same instance through the single-source algorithm. *)
      (match Sof.Sofda_ss.solve problem ~source:0 with
      | Some ss ->
          Format.printf "SOFDA-SS picks last VM %d at total cost %.2f@."
            ss.Sof.Sofda_ss.last_vm
            (Sof.Forest.total_cost ss.Sof.Sofda_ss.forest)
      | None -> ());

      (* Compile the forest into per-switch forwarding rules. *)
      let rules = Sof_sdn.Flow_table.compile forest in
      Format.printf "flow rules: %d total, busiest switch installs %d@."
        (List.length rules)
        (Sof_sdn.Flow_table.max_rules rules)
