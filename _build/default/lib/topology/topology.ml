module Graph = Sof_graph.Graph
module Rng = Sof_util.Rng

type t = { name : string; graph : Graph.t; dcs : int list }

let weight1 pairs = List.map (fun (u, v) -> (u, v, 1.0)) pairs

(* SoftLayer PoPs, indices:
   0 Dallas, 1 Houston, 2 Seattle, 3 San Jose, 4 Los Angeles, 5 Denver,
   6 Chicago, 7 Toronto, 8 Montreal, 9 Washington DC, 10 Atlanta, 11 Miami,
   12 New York, 13 Mexico City, 14 Sao Paulo, 15 Amsterdam, 16 London,
   17 Paris, 18 Frankfurt, 19 Milan, 20 Oslo, 21 Singapore, 22 Hong Kong,
   23 Tokyo, 24 Seoul, 25 Sydney, 26 Melbourne. *)
let softlayer_links =
  [
    (0, 1); (0, 5); (0, 6); (0, 10); (0, 4); (0, 3); (1, 10); (1, 11);
    (1, 13); (2, 3); (2, 5); (2, 23); (3, 4); (3, 22); (3, 23); (4, 13);
    (5, 6); (6, 7); (6, 9); (6, 12); (7, 8); (7, 12); (8, 12); (9, 10);
    (9, 12); (10, 11); (11, 14); (12, 16); (12, 15); (13, 14); (14, 16);
    (15, 16); (15, 18); (15, 20); (16, 17); (16, 18); (17, 18); (17, 19);
    (18, 19); (18, 20); (19, 21); (21, 22); (21, 25); (22, 23); (22, 24);
    (23, 24); (23, 25); (25, 26); (21, 26);
  ]

let softlayer_dcs =
  [ 0; 1; 2; 3; 7; 8; 9; 13; 15; 16; 17; 18; 19; 21; 22; 23; 25 ]

let softlayer () =
  {
    name = "softlayer";
    graph = Graph.create ~n:27 ~edges:(weight1 softlayer_links);
    dcs = softlayer_dcs;
  }

(* Cogent reconstruction: 40 hub nodes on a backbone ring (the DC cities),
   150 access nodes hung off the hubs in short regional chains, and 70
   deterministic pseudo-random chords, for exactly 190 nodes / 260 links. *)
let cogent () =
  let hubs = 40 and access = 150 in
  let n = hubs + access in
  let ring = List.init hubs (fun i -> (i, (i + 1) mod hubs)) in
  (* Access node [hubs + j] attaches to its region: chains of up to 3 nodes
     rooted at hub [j mod hubs]. *)
  let attach =
    List.init access (fun j ->
        let node = hubs + j in
        let hub = j mod hubs in
        let pos = j / hubs in
        let parent = if pos = 0 then hub else node - hubs in
        (parent, node))
  in
  let rng = Rng.create 0xC09E47 in
  let seen = Hashtbl.create 512 in
  List.iter
    (fun (u, v) -> Hashtbl.replace seen (min u v, max u v) ())
    (ring @ attach);
  let chords = ref [] in
  while List.length !chords < 70 do
    (* Chords prefer the hub backbone: 2/3 hub-hub, 1/3 hub-access. *)
    let u = Rng.int rng hubs in
    let v = if Rng.int rng 3 < 2 then Rng.int rng hubs else Rng.int rng n in
    let key = (min u v, max u v) in
    if u <> v && not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      chords := (u, v) :: !chords
    end
  done;
  let edges = weight1 (ring @ attach @ !chords) in
  { name = "cogent"; graph = Graph.create ~n ~edges; dcs = List.init hubs Fun.id }

let inet ~rng ~nodes ~links ~dcs =
  if nodes < 3 then invalid_arg "Topology.inet: need >= 3 nodes";
  if links < nodes - 1 then invalid_arg "Topology.inet: too few links";
  if dcs > nodes then invalid_arg "Topology.inet: more DCs than nodes";
  let seen = Hashtbl.create (links * 2) in
  let edges = ref [] in
  let nedges = ref 0 in
  (* [target_list] holds each node once per unit of degree, so sampling
     from it realizes degree-proportional (preferential) attachment. *)
  let target_list = ref [] in
  let push_target v = target_list := v :: !target_list in
  let target_arr = ref [||] in
  let refresh () = target_arr := Array.of_list !target_list in
  let add_edge u v =
    let key = (min u v, max u v) in
    if u <> v && not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      edges := (u, v, 1.0) :: !edges;
      incr nedges;
      push_target u;
      push_target v;
      true
    end
    else false
  in
  ignore (add_edge 0 1);
  ignore (add_edge 1 2);
  ignore (add_edge 0 2);
  refresh ();
  (* Base degree 2 per new node; spend the remaining link budget on
     preferential chords afterwards. *)
  let per_node = 2 in
  for v = 3 to nodes - 1 do
    let attached = ref 0 in
    let tries = ref 0 in
    while !attached < min per_node v && !tries < 50 do
      incr tries;
      let u = (!target_arr).(Rng.int rng (Array.length !target_arr)) in
      if add_edge u v then incr attached
    done;
    if !attached = 0 then ignore (add_edge (Rng.int rng v) v);
    refresh ()
  done;
  let guard = ref 0 in
  while !nedges < links && !guard < links * 100 do
    incr guard;
    let u = (!target_arr).(Rng.int rng (Array.length !target_arr)) in
    let v = Rng.int rng nodes in
    if add_edge u v then refresh ()
  done;
  let graph = Graph.create ~n:nodes ~edges:!edges in
  let dc_ids = Rng.sample_without_replacement rng dcs nodes in
  { name = Printf.sprintf "inet-%d" nodes; graph; dcs = dc_ids }

(* Fig. 13 testbed: 14 nodes, 20 links, ladder-style mesh. *)
let testbed_links =
  [
    (0, 1); (0, 2); (1, 2); (1, 3); (2, 4); (3, 4); (3, 5); (4, 6); (5, 6);
    (5, 7); (6, 8); (7, 8); (7, 9); (8, 10); (9, 10); (9, 11); (10, 12);
    (11, 12); (11, 13); (12, 13);
  ]

let testbed () =
  {
    name = "testbed";
    graph = Graph.create ~n:14 ~edges:(weight1 testbed_links);
    dcs = List.init 14 Fun.id;
  }

let stats t =
  Printf.sprintf "%s: |V|=%d |E|=%d #DC=%d" t.name (Graph.n t.graph)
    (Graph.m t.graph) (List.length t.dcs)
