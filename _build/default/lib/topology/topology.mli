(** Network topologies used by the paper's evaluation.

    A topology is the physical substrate before any SOF instance is drawn on
    it: access nodes connected by links, plus the subset of nodes that host
    data centers (where VMs can be attached).  Edge weights of the base
    graph are uniform 1.0 placeholders — experiments reweight them from
    sampled link utilizations via [Sof_cost.Cost_model]. *)

type t = {
  name : string;
  graph : Sof_graph.Graph.t;  (** access-node graph *)
  dcs : int list;             (** data-center node ids *)
}

val softlayer : unit -> t
(** IBM SoftLayer inter-data-center network: 27 access nodes, 49 links, 17
    data centers (hand-encoded from SoftLayer's public PoP map; see
    DESIGN.md). *)

val cogent : unit -> t
(** Cogent-scale network: 190 access nodes, 260 links, 40 data centers —
    deterministic synthetic reconstruction (hub ring + regional access
    chains + chords) matching the counts the paper reports. *)

val inet : rng:Sof_util.Rng.t -> nodes:int -> links:int -> dcs:int -> t
(** Inet-style synthetic topology by degree-based preferential attachment;
    the paper's instance is [nodes = 5000, links = 10000, dcs = 2000].
    @raise Invalid_argument when [links < nodes - 1] or [dcs > nodes]. *)

val testbed : unit -> t
(** The 14-node, 20-link experimental SDN of Fig. 13. *)

val stats : t -> string
(** One-line summary (name, |V|, |E|, #DCs) for logs. *)
