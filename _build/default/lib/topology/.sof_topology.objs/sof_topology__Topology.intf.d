lib/topology/topology.mli: Sof_graph Sof_util
