lib/topology/topology.ml: Array Fun Hashtbl List Printf Sof_graph Sof_util
