lib/baselines/baselines.ml: Array Hashtbl List Option Sof Sof_graph Sof_steiner
