lib/baselines/baselines.mli: Sof
