(** The comparison algorithms of Section VIII-A.

    All three build a {e tree-first} embedding: a Steiner tree spanning a
    source and the destinations, with the service chain grafted on
    afterwards — precisely the structure whose blind spots SOFDA exploits.

    - [st] — the single-tree special case: cheapest Steiner tree over all
      candidate sources, plus the cheapest chain from that source to a last
      VM, connected to the tree at minimum cost.
    - [est] — "enhanced Steiner Tree": [st] extended to multiple sources by
      the paper's iterative tree-addition rule (keep adding the cheapest
      candidate tree rooted at an unused source while the total cost of the
      forest — each destination served by its closest tree — decreases).
    - [enemp] — "enhanced NEMP": like [est] but the chain's last VM must be
      a VM already spanned by the tree (the NEMP constraint), falling back
      to the VM nearest to the tree when the tree spans none.

    Outputs are ordinary {!Sof.Forest.t} values validated by
    {!Sof.Validate}; costs are therefore directly comparable with SOFDA's. *)

val st : Sof.Problem.t -> Sof.Forest.t option
(** Single service tree (one source, one chain).  [None] when infeasible. *)

val est : Sof.Problem.t -> Sof.Forest.t option
(** Multi-source enhanced Steiner tree. *)

val enemp : Sof.Problem.t -> Sof.Forest.t option
(** Multi-source enhanced NEMP. *)
