module Graph = Sof_graph.Graph
module Steiner = Sof_steiner.Steiner
module Problem = Sof.Problem
module Forest = Sof.Forest
module Transform = Sof.Transform

type mode = Free_vm | Tree_vm

(* One service tree: a chain from [source] to [last_vm], a connector from
   the last VM into the Steiner tree, and the tree itself. *)
type tsol = {
  source : int;
  chain : Transform.result;
  last_vm : int;
  connector : int list; (* hops from last_vm into the tree; [] if on tree *)
  connect_cost : float;
  tree : Steiner.tree;
  dests : int list;
}

let tree_nodes_tbl tree =
  let tbl = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace tbl v ()) (Steiner.tree_nodes tree);
  tbl

(* Cheapest hook-up of [u] to the tree: 0 when [u] is spanned, else the
   shortest path to the nearest tree node. *)
let connect t u tree =
  let nodes = tree_nodes_tbl tree in
  if Hashtbl.mem nodes u then Some (0.0, [])
  else begin
    let best = ref None in
    Hashtbl.iter
      (fun x () ->
        let d = Transform.distance t u x in
        match !best with
        | Some (bd, _) when bd <= d -> ()
        | _ -> if d < infinity then best := Some (d, x))
      nodes;
    match !best with
    | None -> None
    | Some (d, x) -> Some (d, Transform.shortest_path t u x)
  end

let to_walk tsol =
  let marks =
    List.mapi
      (fun i (pos, _vm) -> { Forest.pos; vnf = i + 1 })
      tsol.chain.Transform.vm_marks
  in
  let hops =
    match tsol.connector with
    | [] -> tsol.chain.Transform.hops
    | _ :: tail -> Array.append tsol.chain.Transform.hops (Array.of_list tail)
  in
  { Forest.source = tsol.source; hops; marks }

let build_forest problem tsols =
  let walks = List.map to_walk tsols in
  let delivery =
    List.concat_map
      (fun s -> List.map (fun (a, b, _) -> (a, b)) s.tree.Steiner.edges)
      tsols
  in
  Forest.make problem ~walks ~delivery

(* Best chain + connector for a fixed tree, over the allowed last VMs. *)
let graft t problem mode ~source ~tree ~exclude =
  let nodes = tree_nodes_tbl tree in
  let all =
    List.filter (fun v -> not (exclude v)) problem.Problem.vms
  in
  let candidates =
    match mode with
    | Free_vm -> all
    | Tree_vm ->
        (* NEMP hosts the VNFs on the tree itself: a VM qualifies when it
           is spanned or hangs directly off a spanned node (VMs attach to
           data centers by an access link). *)
        let touches_tree v =
          Hashtbl.mem nodes v
          || Sof_graph.Graph.fold_neighbors problem.Problem.graph v
               (fun acc u _ -> acc || Hashtbl.mem nodes u)
               false
        in
        let on_tree = List.filter touches_tree all in
        if on_tree <> [] then on_tree else all
  in
  (* The paper's construction is chain-first: take the shortest service
     chain (ties broken towards the tree), then hook it up at minimum
     cost — it does NOT optimize chain + hook-up jointly, which is exactly
     the blind spot SOFDA exploits. *)
  let consider best u =
    match
      Transform.chain_walk ~exclude t ~src:source ~last_vm:u
        ~num_vnfs:problem.Problem.chain_length
    with
    | None -> best
    | Some chain -> (
        match connect t u tree with
        | None -> best
        | Some (cx, path) -> (
            let key = (chain.Transform.cost, cx) in
            match best with
            | Some (bkey, _, _, _, _) when bkey <= key -> best
            | _ -> Some (key, u, chain, cx, path)))
  in
  Option.map
    (fun (_, u, chain, cx, path) -> (u, chain, cx, path))
    (List.fold_left consider None candidates)

let make_tsol t problem mode ~source ~dests ~exclude =
  match
    Steiner.approx_in problem.Problem.graph (Transform.closure t)
      (source :: dests)
  with
  | exception Invalid_argument _ -> None
  | tree -> (
      match graft t problem mode ~source ~tree ~exclude with
      | None -> None
      | Some (u, chain, connect_cost, connector) ->
          Some { source; chain; last_vm = u; connector; connect_cost; tree; dests })

let standalone_cost s =
  s.tree.Steiner.weight +. s.chain.Transform.cost +. s.connect_cost

(* Reassign every destination to its closest tree (by distance from the
   tree's last VM) and rebuild each tree over its assigned destinations;
   trees left without destinations are dropped. *)
let reassign t problem tsols =
  let assigned = Hashtbl.create 8 in
  List.iter
    (fun d ->
      let best = ref None in
      List.iteri
        (fun i s ->
          let dist = Transform.distance t s.last_vm d in
          match !best with
          | Some (bd, _) when bd <= dist -> ()
          | _ -> best := Some (dist, i))
        tsols;
      match !best with
      | Some (_, i) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt assigned i) in
          Hashtbl.replace assigned i (d :: prev)
      | None -> ())
    problem.Problem.dests;
  let rebuilt =
    List.mapi
      (fun i s ->
        match Hashtbl.find_opt assigned i with
        | None | Some [] -> None
        | Some ds ->
            if List.sort compare ds = List.sort compare s.dests then
              Some (Some s)
            else
              (* keep the committed chain; rebuild tree + connector *)
              (match
                 Steiner.approx_in problem.Problem.graph (Transform.closure t)
                   (s.source :: ds)
               with
              | exception Invalid_argument _ -> Some None
              | tree -> (
                  match connect t s.last_vm tree with
                  | None -> Some None
                  | Some (cx, connector) ->
                      Some
                        (Some
                           {
                             s with
                             tree;
                             connector;
                             connect_cost = cx;
                             dests = ds;
                           }))))
      tsols
  in
  if List.exists (fun x -> x = Some None) rebuilt then None
  else Some (List.filter_map (fun x -> Option.join x) rebuilt)

let solve_multi mode problem =
  let t = Transform.create problem in
  let enabled = Hashtbl.create 16 in
  let exclude v = Hashtbl.mem enabled v in
  let mark_enabled s =
    List.iter
      (fun (_, vm) -> Hashtbl.replace enabled vm ())
      s.chain.Transform.vm_marks
  in
  let rec iterate committed unused current_cost =
    let candidates =
      List.filter_map
        (fun s ->
          Option.map
            (fun c -> (s, c))
            (make_tsol t problem mode ~source:s ~dests:problem.Problem.dests
               ~exclude))
        unused
    in
    let elected =
      List.fold_left
        (fun best (s, c) ->
          match best with
          | Some (_, bc) when standalone_cost bc <= standalone_cost c -> best
          | _ -> Some (s, c))
        None candidates
    in
    match elected with
    | None -> committed
    | Some (src, cand) -> (
        let tentative = committed @ [ cand ] in
        match reassign t problem tentative with
        | None -> committed
        | Some rebuilt -> (
            match build_forest problem rebuilt with
            | forest ->
                let cost = Forest.total_cost forest in
                if cost < current_cost -. 1e-9 then begin
                  mark_enabled cand;
                  iterate rebuilt
                    (List.filter (fun s -> s <> src) unused)
                    cost
                end
                else committed
            | exception Invalid_argument _ -> committed))
  in
  match iterate [] problem.Problem.sources infinity with
  | [] -> None
  | tsols ->
      let forest = build_forest problem tsols in
      if Sof.Validate.is_valid forest then Some forest else None

let st problem =
  let t = Transform.create problem in
  let exclude _ = false in
  (* The paper's ST first fixes the cheapest Steiner tree over all candidate
     sources — by tree weight alone — and only then grafts a chain on. *)
  let best_source =
    List.fold_left
      (fun best s ->
        match
          Steiner.approx_in problem.Problem.graph (Transform.closure t)
            (s :: problem.Problem.dests)
        with
        | exception Invalid_argument _ -> best
        | tree -> (
            match best with
            | Some (w, _) when w <= tree.Steiner.weight -> best
            | _ -> Some (tree.Steiner.weight, s)))
      None problem.Problem.sources
  in
  match best_source with
  | None -> None
  | Some (_, s) -> (
      match
        make_tsol t problem Free_vm ~source:s ~dests:problem.Problem.dests
          ~exclude
      with
      | None -> None
      | Some c ->
          let forest = build_forest problem [ c ] in
          if Sof.Validate.is_valid forest then Some forest else None)

let est problem = solve_multi Free_vm problem
let enemp problem = solve_multi Tree_vm problem
