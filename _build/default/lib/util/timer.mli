(** Wall-clock timing helpers for the runtime experiments (Table I). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock seconds. *)

val time_median : ?repeats:int -> (unit -> 'a) -> 'a * float
(** [time_median ~repeats f] runs [f] [repeats] times (default 3) and
    returns the last result with the median elapsed seconds. *)
