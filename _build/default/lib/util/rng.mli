(** Deterministic splittable pseudo-random number generator (SplitMix64).

    All randomness in the repository flows through this module so that every
    experiment is reproducible from an integer seed.  The generator is the
    SplitMix64 construction of Steele, Lea and Flood, which has a 64-bit
    state, passes BigCrush, and supports cheap splitting. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator determined by [seed]. *)

val split : t -> t
(** [split t] advances [t] and returns an independent generator.  Streams
    drawn from the two generators are statistically independent. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  @raise Invalid_argument
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val uniform : t -> float
(** Uniform draw in [0, 1). *)

val range : t -> int -> int -> int
(** [range t lo hi] draws uniformly from the inclusive range [lo, hi]. *)

val exponential : t -> float -> float
(** [exponential t rate] draws from Exp(rate). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [0, n).  @raise Invalid_argument if [k > n] or [k < 0]. *)
