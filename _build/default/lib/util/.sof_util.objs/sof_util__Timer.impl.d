lib/util/timer.ml: List Stats Unix
