lib/util/tbl.ml: Array Buffer List Printf String
