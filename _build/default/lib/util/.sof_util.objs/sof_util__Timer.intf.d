lib/util/timer.mli:
