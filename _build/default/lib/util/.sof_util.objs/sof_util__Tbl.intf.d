lib/util/tbl.mli:
