lib/util/rng.mli:
