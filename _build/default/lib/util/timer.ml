let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, t1 -. t0)

let time_median ?(repeats = 3) f =
  let repeats = max 1 repeats in
  let last = ref None in
  let samples =
    List.init repeats (fun _ ->
        let result, dt = time f in
        last := Some result;
        dt)
  in
  match !last with
  | None -> assert false
  | Some result -> (result, Stats.median samples)
