(** Summary statistics over float samples. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val mean_array : float array -> float

val variance : float list -> float
(** Unbiased sample variance (n-1 denominator); 0 when fewer than 2 samples. *)

val stddev : float list -> float

val minimum : float list -> float
(** @raise Invalid_argument on the empty list. *)

val maximum : float list -> float
(** @raise Invalid_argument on the empty list. *)

val median : float list -> float
(** @raise Invalid_argument on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [0,100], nearest-rank method.
    @raise Invalid_argument on the empty list or [p] out of range. *)

val sum : float list -> float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on the empty list. *)

val pp_summary : Format.formatter -> summary -> unit
