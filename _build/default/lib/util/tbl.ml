type t = {
  caption : string option;
  headers : string list;
  mutable rows : string list list; (* stored reversed *)
}

let create ?caption headers = { caption; headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Tbl.add_row: arity mismatch";
  t.rows <- row :: t.rows

let default_fmt x = Printf.sprintf "%.2f" x

let add_float_row ?(fmt = default_fmt) t label xs =
  add_row t (label :: List.map fmt xs)

let widths t =
  let ncols = List.length t.headers in
  let w = Array.make ncols 0 in
  let feed row =
    List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row
  in
  feed t.headers;
  List.iter feed t.rows;
  w

let pad width s = s ^ String.make (width - String.length s) ' '

let render t =
  let w = widths t in
  let buf = Buffer.create 256 in
  (match t.caption with
  | Some c ->
      Buffer.add_string buf c;
      Buffer.add_char buf '\n'
  | None -> ());
  let line row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad w.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  line t.headers;
  let rule = Array.fold_left (fun acc x -> acc + x) 0 w + (2 * (Array.length w - 1)) in
  Buffer.add_string buf (String.make rule '-');
  Buffer.add_char buf '\n';
  List.iter line (List.rev t.rows);
  Buffer.contents buf

let print t = print_string (render t)

let escape_csv cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let csv t =
  let buf = Buffer.create 256 in
  let line row =
    Buffer.add_string buf (String.concat "," (List.map escape_csv row));
    Buffer.add_char buf '\n'
  in
  line t.headers;
  List.iter line (List.rev t.rows);
  Buffer.contents buf
