(** Plain-text tables for the benchmark harness.

    The benchmark executable reproduces the paper's tables and figures as
    aligned ASCII tables; this module does the layout.  Columns are sized to
    the widest cell, headers are separated by a rule, and an optional caption
    is printed above the table. *)

type t

val create : ?caption:string -> string list -> t
(** [create ~caption headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row.  @raise Invalid_argument if the arity differs from the
    header row. *)

val add_float_row : ?fmt:(float -> string) -> t -> string -> float list -> unit
(** [add_float_row t label xs] appends a row whose first cell is [label] and
    remaining cells are formatted floats (default [%.2f]). *)

val render : t -> string
(** Lay the table out as a string (trailing newline included). *)

val print : t -> unit
(** [render] to stdout. *)

val csv : t -> string
(** Comma-separated rendition (header row first). *)
