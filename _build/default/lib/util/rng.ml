type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: one additive step plus two xor-shift-multiply
   mixing rounds (variant "mix13" from the reference implementation). *)
let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = int64 t in
  { state = s }

(* 62 random bits: fits OCaml's 63-bit native int without touching the
   sign bit. *)
let nonneg t = Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  nonneg t mod bound

let uniform t =
  (* 53 random bits scaled into [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let float t bound = uniform t *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int t (hi - lo + 1)

let exponential t rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  -.log (1.0 -. uniform t) /. rate

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  let a = Array.init n (fun i -> i) in
  (* Partial Fisher-Yates: only the first [k] slots need to be finalized. *)
  for i = 0 to k - 1 do
    let j = range t i (n - 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list (Array.sub a 0 k)
