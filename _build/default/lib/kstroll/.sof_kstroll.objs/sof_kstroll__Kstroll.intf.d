lib/kstroll/kstroll.mli:
