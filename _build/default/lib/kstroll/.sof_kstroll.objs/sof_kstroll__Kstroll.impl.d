lib/kstroll/kstroll.ml: Array List
