(** Client-side video session model: startup buffering, playback, stalls.

    The buffer is measured in seconds of video.  The session starts in
    [Buffering]; playback begins once [startup_threshold] seconds are
    buffered (startup latency = wall-clock time to that point plus the VNF
    pipeline delay).  During playback the buffer drains at 1 s/s and fills
    at [rate / bitrate] s/s; hitting empty re-enters buffering (a stall)
    until [resume_threshold] is reached.  The session completes when the
    whole clip has been played out. *)

type config = {
  bitrate : float;            (** encoded video rate, bit/s *)
  duration : float;           (** clip length, seconds of video *)
  startup_threshold : float;  (** seconds of video buffered before first play *)
  resume_threshold : float;   (** seconds of video buffered to exit a stall *)
  pipeline_delay : float;     (** added latency per VNF stage, seconds *)
}

val default_config : config
(** The paper's testbed stream: 8 Mbit/s H.264, 137 s clip; client
    thresholds tuned to the testbed's QoE scale (4 s startup buffer, 2 s
    resume buffer, 1 s of pipeline latency per VNF stage). *)

type t

val create : config -> num_vnfs:int -> path_latency:float -> t
(** [path_latency] — fixed one-way delay of the delivery route (per-hop
    forwarding, rule setup), added to the startup latency on top of the
    VNF pipeline delay. *)

val advance : t -> now:float -> rate:float -> dt:float -> unit
(** Advance wall-clock by [dt] seconds with a constant delivery [rate]
    (bit/s).  Handles any number of internal state transitions (play
    start, stall, resume, completion) analytically within the interval. *)

val is_done : t -> bool

val startup_latency : t -> float option
(** Wall-clock seconds from session start to first frame (including the
    VNF pipeline delay); [None] while still buffering. *)

val rebuffer_time : t -> float
(** Total stalled wall-clock seconds so far. *)

val stall_count : t -> int

val played : t -> float
(** Seconds of video played out. *)
