lib/simnet/sim.ml: Array Hashtbl List Option Queue Session Sof Sof_graph Sof_util
