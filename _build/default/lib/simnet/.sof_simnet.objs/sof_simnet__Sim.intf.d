lib/simnet/sim.mli: Session Sof Sof_util
