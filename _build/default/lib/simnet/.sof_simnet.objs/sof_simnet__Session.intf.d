lib/simnet/session.mli:
