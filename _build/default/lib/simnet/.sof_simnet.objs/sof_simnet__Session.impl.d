lib/simnet/session.ml:
