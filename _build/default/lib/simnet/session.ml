type config = {
  bitrate : float;
  duration : float;
  startup_threshold : float;
  resume_threshold : float;
  pipeline_delay : float;
}

let default_config =
  {
    bitrate = 8e6;
    duration = 137.0;
    startup_threshold = 4.0;
    resume_threshold = 2.0;
    pipeline_delay = 1.0;
  }

type state = Initial_buffering | Playing | Stalled | Done

type t = {
  config : config;
  num_vnfs : int;
  path_latency : float;
  mutable state : state;
  mutable buffer : float;    (* seconds of video buffered, not yet played *)
  mutable received : float;  (* seconds of video downloaded *)
  mutable played_s : float;  (* seconds of video played out *)
  mutable startup_at : float option;
  mutable rebuffer : float;
  mutable stalls : int;
}

let create config ~num_vnfs ~path_latency =
  {
    config;
    num_vnfs;
    path_latency;
    state = Initial_buffering;
    buffer = 0.0;
    received = 0.0;
    played_s = 0.0;
    startup_at = None;
    rebuffer = 0.0;
    stalls = 0;
  }

let is_done t = t.state = Done

let startup_latency t = t.startup_at

let rebuffer_time t = t.rebuffer

let stall_count t = t.stalls

let played t = t.played_s

(* Download speed in seconds-of-video per wall-clock second; downloads cap
   at the clip length. *)
let fill_rate t rate =
  if t.received >= t.config.duration then 0.0 else rate /. t.config.bitrate

let rec advance t ~now ~rate ~dt =
  if dt > 1e-12 then
    match t.state with
    | Done -> ()
    | Initial_buffering | Stalled ->
        let threshold =
          match t.state with
          | Initial_buffering -> t.config.startup_threshold
          | _ -> t.config.resume_threshold
        in
        let fr = fill_rate t rate in
        (* Count stalled wall-clock time; compute when the buffer crosses
           the play threshold (also reached when the tail of the clip has
           fully arrived). *)
        let remaining_dl = t.config.duration -. t.received in
        let need = threshold -. t.buffer in
        let t_cross =
          if need <= 0.0 then 0.0
          else if fr <= 0.0 then infinity
          else min (need /. fr) (remaining_dl /. fr)
        in
        if t_cross >= dt then begin
          t.buffer <- t.buffer +. (fr *. dt);
          t.received <- min t.config.duration (t.received +. (fr *. dt));
          if t.state = Stalled then t.rebuffer <- t.rebuffer +. dt
        end
        else begin
          t.buffer <- t.buffer +. (fr *. t_cross);
          t.received <- min t.config.duration (t.received +. (fr *. t_cross));
          if t.state = Stalled then t.rebuffer <- t.rebuffer +. t_cross
          else
            t.startup_at <-
              Some
                (now +. t_cross +. t.path_latency
                +. (float_of_int t.num_vnfs *. t.config.pipeline_delay));
          t.state <- Playing;
          advance t ~now:(now +. t_cross) ~rate ~dt:(dt -. t_cross)
        end
    | Playing ->
        let fr = fill_rate t rate in
        let drain = 1.0 -. fr in
        (* Next transition: clip played out, or buffer empty. *)
        let t_finish = t.config.duration -. t.played_s in
        let t_empty = if drain > 1e-12 then t.buffer /. drain else infinity in
        let t_next = min t_finish t_empty in
        if t_next >= dt then begin
          t.buffer <- max 0.0 (t.buffer -. (drain *. dt));
          t.received <- min t.config.duration (t.received +. (fr *. dt));
          t.played_s <- t.played_s +. dt
        end
        else begin
          t.buffer <- max 0.0 (t.buffer -. (drain *. t_next));
          t.received <- min t.config.duration (t.received +. (fr *. t_next));
          t.played_s <- t.played_s +. t_next;
          if t.played_s >= t.config.duration -. 1e-9 then t.state <- Done
          else begin
            t.state <- Stalled;
            t.stalls <- t.stalls + 1
          end;
          advance t ~now:(now +. t_next) ~rate ~dt:(dt -. t_next)
        end
