type t = {
  n : int;
  adj : (int * float) array array; (* adj.(u) = sorted neighbor array *)
  m : int;
}

let validate_edge n (u, v, w) =
  if u < 0 || u >= n || v < 0 || v >= n then
    invalid_arg
      (Printf.sprintf "Graph.create: endpoint out of range (%d,%d) with n=%d" u
         v n);
  if u = v then invalid_arg "Graph.create: self-loop";
  if w < 0.0 || Float.is_nan w then
    invalid_arg "Graph.create: negative or NaN weight"

let create ~n ~edges =
  if n < 0 then invalid_arg "Graph.create: negative n";
  List.iter (validate_edge n) edges;
  (* Collapse parallel edges keeping the cheapest: deduplicate via a map keyed
     by the normalized endpoint pair. *)
  let tbl = Hashtbl.create (List.length edges * 2) in
  List.iter
    (fun (u, v, w) ->
      let key = if u < v then (u, v) else (v, u) in
      match Hashtbl.find_opt tbl key with
      | Some w' when w' <= w -> ()
      | _ -> Hashtbl.replace tbl key w)
    edges;
  let deg = Array.make n 0 in
  Hashtbl.iter
    (fun (u, v) _ ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    tbl;
  let adj = Array.init n (fun u -> Array.make deg.(u) (0, 0.0)) in
  let fill = Array.make n 0 in
  Hashtbl.iter
    (fun (u, v) w ->
      adj.(u).(fill.(u)) <- (v, w);
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- (u, w);
      fill.(v) <- fill.(v) + 1)
    tbl;
  Array.iter (fun row -> Array.sort compare row) adj;
  { n; adj; m = Hashtbl.length tbl }

let n g = g.n
let m g = g.m

let iter_neighbors g u f =
  Array.iter (fun (v, w) -> f v w) g.adj.(u)

let fold_neighbors g u f init =
  Array.fold_left (fun acc (v, w) -> f acc v w) init g.adj.(u)

let neighbors g u = Array.to_list g.adj.(u)

let degree g u = Array.length g.adj.(u)

let edge_weight g u v =
  if u < 0 || u >= g.n || v < 0 || v >= g.n then None
  else
    Array.fold_left
      (fun acc (x, w) -> if x = v then Some w else acc)
      None g.adj.(u)

let mem_edge g u v = edge_weight g u v <> None

let iter_edges g f =
  for u = 0 to g.n - 1 do
    Array.iter (fun (v, w) -> if u < v then f u v w) g.adj.(u)
  done

let edges g =
  let acc = ref [] in
  iter_edges g (fun u v w -> acc := (u, v, w) :: !acc);
  List.rev !acc

let total_weight g =
  let acc = ref 0.0 in
  iter_edges g (fun _ _ w -> acc := !acc +. w);
  !acc

let map_weights g f =
  let es = ref [] in
  iter_edges g (fun u v w -> es := (u, v, f u v w) :: !es);
  create ~n:g.n ~edges:!es

let filter_edges g keep =
  let es = ref [] in
  iter_edges g (fun u v w -> if keep u v w then es := (u, v, w) :: !es);
  create ~n:g.n ~edges:!es

let add_edges g extra = create ~n:g.n ~edges:(edges g @ extra)

let complete_of_matrix d =
  let n = Array.length d in
  let es = ref [] in
  for u = 0 to n - 1 do
    if Array.length d.(u) <> n then
      invalid_arg "Graph.complete_of_matrix: ragged matrix";
    for v = u + 1 to n - 1 do
      if d.(u).(v) <> d.(v).(u) then
        invalid_arg "Graph.complete_of_matrix: asymmetric matrix";
      if d.(u).(v) < infinity then es := (u, v, d.(u).(v)) :: !es
    done
  done;
  create ~n ~edges:!es

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d" g.n g.m;
  iter_edges g (fun u v w -> Format.fprintf ppf "@,%d -- %d  %.3f" u v w);
  Format.fprintf ppf "@]"
