type result = { dist : float array; parent : int array }

let run_from g sources ~stop_at =
  let n = Graph.n g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Binheap.create () in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Dijkstra: source out of range";
      dist.(s) <- 0.0;
      Binheap.push heap 0.0 s)
    sources;
  let finished = ref false in
  while (not !finished) && not (Binheap.is_empty heap) do
    match Binheap.pop heap with
    | None -> finished := true
    | Some (d, u) ->
        if not settled.(u) then begin
          settled.(u) <- true;
          if stop_at = Some u then finished := true
          else
            Graph.iter_neighbors g u (fun v w ->
                let nd = d +. w in
                if nd < dist.(v) then begin
                  dist.(v) <- nd;
                  parent.(v) <- u;
                  Binheap.push heap nd v
                end)
        end
  done;
  { dist; parent }

let run g s = run_from g [ s ] ~stop_at:None

let multi_source g sources =
  if sources = [] then invalid_arg "Dijkstra.multi_source: no sources";
  run_from g sources ~stop_at:None

let path_to r v =
  if r.dist.(v) = infinity then None
  else begin
    let rec build acc u = if u = -1 then acc else build (u :: acc) r.parent.(u) in
    Some (build [] v)
  end

let to_target g ~src ~dst =
  let r = run_from g [ src ] ~stop_at:(Some dst) in
  if r.dist.(dst) = infinity then None
  else
    match path_to r dst with
    | Some p -> Some (r.dist.(dst), p)
    | None -> None

let distance_matrix g terminals =
  let k = Array.length terminals in
  let d = Array.make_matrix k k infinity in
  Array.iteri
    (fun i ti ->
      let r = run g ti in
      Array.iteri (fun j tj -> d.(i).(j) <- r.dist.(tj)) terminals)
    terminals;
  d

let bellman_ford g s =
  let n = Graph.n g in
  let dist = Array.make n infinity in
  dist.(s) <- 0.0;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < n do
    changed := false;
    incr rounds;
    Graph.iter_edges g (fun u v w ->
        if dist.(u) +. w < dist.(v) then begin
          dist.(v) <- dist.(u) +. w;
          changed := true
        end;
        if dist.(v) +. w < dist.(u) then begin
          dist.(u) <- dist.(v) +. w;
          changed := true
        end)
  done;
  dist
