lib/graph/metric.ml: Array Dijkstra Graph Hashtbl
