lib/graph/metric.mli: Graph
