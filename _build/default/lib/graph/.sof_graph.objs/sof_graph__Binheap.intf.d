lib/graph/binheap.mli:
