lib/graph/traversal.ml: Array Graph Hashtbl List Option Queue
