lib/graph/dijkstra.ml: Array Binheap Graph List
