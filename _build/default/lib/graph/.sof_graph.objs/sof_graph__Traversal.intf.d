lib/graph/traversal.mli: Graph
