lib/graph/mst.ml: Array Binheap Graph List Union_find
