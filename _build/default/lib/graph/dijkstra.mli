(** Shortest paths on nonnegative edge weights. *)

type result = {
  dist : float array;  (** [dist.(v)] = shortest distance; [infinity] if unreachable. *)
  parent : int array;  (** [parent.(v)] = predecessor on a shortest path; [-1] at sources / unreachable nodes. *)
}

val run : Graph.t -> int -> result
(** Single-source Dijkstra from [s]. *)

val multi_source : Graph.t -> int list -> result
(** Shortest distance from the nearest of several sources (virtual
    super-source of weight 0). *)

val to_target : Graph.t -> src:int -> dst:int -> (float * int list) option
(** Shortest path [src -> dst] with early termination; returns the distance
    and the node sequence (inclusive of both endpoints), or [None] when
    unreachable. *)

val path_to : result -> int -> int list option
(** Extract the node sequence from the (implicit) source to [v] out of a
    [result]; [None] if unreachable. *)

val distance_matrix : Graph.t -> int array -> float array array
(** [distance_matrix g terminals] runs Dijkstra from each terminal; entry
    [(i, j)] is the distance between [terminals.(i)] and [terminals.(j)]. *)

val bellman_ford : Graph.t -> int -> float array
(** Reference O(nm) shortest-path implementation, used as a test oracle. *)
