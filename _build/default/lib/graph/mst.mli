(** Minimum spanning trees and forests. *)

val kruskal : Graph.t -> (int * int * float) list
(** Minimum spanning forest (spanning tree per connected component), as an
    edge list with [u < v]. *)

val prim : Graph.t -> root:int -> (int * int * float) list
(** Minimum spanning tree of the connected component containing [root]. *)

val weight : (int * int * float) list -> float
(** Total weight of an edge list. *)

val spans : Graph.t -> (int * int * float) list -> int list -> bool
(** [spans g tree nodes] checks that all [nodes] lie in one connected
    component of the edge-induced subgraph [tree]. *)
