let bfs_order g s =
  let n = Graph.n g in
  let seen = Array.make n false in
  let q = Queue.create () in
  let order = ref [] in
  seen.(s) <- true;
  Queue.add s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    order := u :: !order;
    Graph.iter_neighbors g u (fun v _ ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v q
        end)
  done;
  List.rev !order

let reachable g s =
  let n = Graph.n g in
  let seen = Array.make n false in
  List.iter (fun v -> seen.(v) <- true) (bfs_order g s);
  seen

let components g =
  let n = Graph.n g in
  let comp = Array.make n (-1) in
  let next = ref 0 in
  for s = 0 to n - 1 do
    if comp.(s) = -1 then begin
      let id = !next in
      incr next;
      List.iter (fun v -> comp.(v) <- id) (bfs_order g s)
    end
  done;
  comp

let component_count g =
  let comp = components g in
  Array.fold_left max (-1) comp + 1

let is_connected g = Graph.n g = 0 || component_count g = 1

let is_forest g = Graph.m g = Graph.n g - component_count g

let is_tree_spanning g nodes =
  match nodes with
  | [] -> true
  | first :: _ ->
      let seen = reachable g first in
      is_forest g
      && List.for_all (fun v -> seen.(v)) nodes

let degrees edges =
  let tbl = Hashtbl.create 64 in
  let bump u =
    Hashtbl.replace tbl u (1 + Option.value ~default:0 (Hashtbl.find_opt tbl u))
  in
  List.iter
    (fun (u, v, _) ->
      bump u;
      bump v)
    edges;
  tbl

let tree_leaves edges =
  let deg = degrees edges in
  Hashtbl.fold (fun u d acc -> if d = 1 then u :: acc else acc) deg []

let prune_steiner_leaves edges ~keep =
  let rec go edges =
    let deg = degrees edges in
    let prunable u =
      Hashtbl.find_opt deg u = Some 1 && not (keep u)
    in
    let kept = List.filter (fun (u, v, _) -> not (prunable u || prunable v)) edges in
    if List.length kept = List.length edges then edges else go kept
  in
  go edges
