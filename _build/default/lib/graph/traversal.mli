(** Breadth/depth-first traversal and structural predicates. *)

val bfs_order : Graph.t -> int -> int list
(** Nodes reachable from the source, in BFS order. *)

val reachable : Graph.t -> int -> bool array
(** [reachable g s] marks every node reachable from [s]. *)

val components : Graph.t -> int array
(** Component id per node (ids are 0-based, assigned in node order). *)

val component_count : Graph.t -> int

val is_connected : Graph.t -> bool

val is_forest : Graph.t -> bool
(** No cycles (m = n - #components). *)

val is_tree_spanning : Graph.t -> int list -> bool
(** The graph restricted to its non-isolated nodes is a tree containing all
    the listed nodes. *)

val tree_leaves : (int * int * float) list -> int list
(** Degree-1 nodes of an edge list. *)

val prune_steiner_leaves : (int * int * float) list -> keep:(int -> bool) -> (int * int * float) list
(** Repeatedly remove degree-1 nodes not satisfying [keep] (and their
    incident edge) — classic Steiner-tree leaf pruning. *)
