(** Disjoint-set forest with union by rank and path compression. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> bool
(** [union t a b] merges the two sets; returns [false] when they were
    already the same set. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of disjoint sets. *)
