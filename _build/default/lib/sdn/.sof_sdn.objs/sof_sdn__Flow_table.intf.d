lib/sdn/flow_table.mli: Sof
