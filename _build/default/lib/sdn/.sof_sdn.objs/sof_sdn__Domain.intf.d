lib/sdn/domain.mli: Sof_graph
