lib/sdn/flow_table.ml: Array Hashtbl List Map Option Queue Sof
