lib/sdn/fabric.mli:
