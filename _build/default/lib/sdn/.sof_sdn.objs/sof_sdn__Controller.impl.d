lib/sdn/controller.ml: Array Domain Hashtbl List Sof_graph
