lib/sdn/domain.ml: Array List Queue Sof_graph
