lib/sdn/distributed.mli: Domain Fabric Sof Sof_graph
