lib/sdn/distributed.ml: Array Controller Domain Fabric Flow_table Hashtbl List Sof Sof_graph
