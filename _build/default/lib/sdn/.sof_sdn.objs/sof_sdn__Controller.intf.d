lib/sdn/controller.mli: Domain Sof_graph
