lib/sdn/fabric.ml: Hashtbl List Option
