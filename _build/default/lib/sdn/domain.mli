(** Controller domains for multi-controller SDNs (Section VI).

    The network is partitioned into contiguous domains, one per controller;
    a node is a {e border router} of its domain when it has a link into
    another domain. *)

type t = {
  count : int;            (** number of domains *)
  of_node : int array;    (** domain id per node *)
  members : int list array; (** nodes per domain *)
}

val partition : Sof_graph.Graph.t -> k:int -> t
(** Deterministic partition by multi-seed BFS: [k] seeds chosen
    farthest-first (by hop distance) grow regions simultaneously, giving
    contiguous, geographically spread domains.  @raise Invalid_argument
    when [k < 1] or [k > n]. *)

val border_routers : Sof_graph.Graph.t -> t -> int -> int list
(** Border routers of one domain. *)

val is_border : Sof_graph.Graph.t -> t -> int -> bool

val inter_domain_edges : Sof_graph.Graph.t -> t -> (int * int * float) list
(** Edges whose endpoints lie in different domains. *)
