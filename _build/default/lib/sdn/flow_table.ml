type matcher = Stream of { source : int; stage : int } | Final

type rule = { node : int; matcher : matcher; next_hops : int list }

module Key = struct
  type t = int * matcher

  let compare = compare
end

module KeyMap = Map.Make (Key)

let stage_sequence (w : Sof.Forest.walk) =
  let n = Array.length w.Sof.Forest.hops in
  let stage = Array.make n 0 in
  List.iter
    (fun (m : Sof.Forest.mark) ->
      for i = m.Sof.Forest.pos to n - 1 do
        stage.(i) <- max stage.(i) m.Sof.Forest.vnf
      done)
    w.Sof.Forest.marks;
  stage

let compile (f : Sof.Forest.t) =
  let table = ref KeyMap.empty in
  let add node matcher hop =
    let key = (node, matcher) in
    let prev = Option.value ~default:[] (KeyMap.find_opt key !table) in
    if not (List.mem hop prev) then table := KeyMap.add key (hop :: prev) !table
  in
  List.iter
    (fun (w : Sof.Forest.walk) ->
      let stage = stage_sequence w in
      for i = 0 to Array.length w.Sof.Forest.hops - 2 do
        add
          w.Sof.Forest.hops.(i)
          (Stream { source = w.Sof.Forest.source; stage = stage.(i) })
          w.Sof.Forest.hops.(i + 1)
      done)
    f.Sof.Forest.walks;
  (* Orient delivery edges away from the injection points by multi-source
     BFS, then emit one Final rule per forwarding node. *)
  let adj = Hashtbl.create 32 in
  let link a b =
    Hashtbl.replace adj a (b :: Option.value ~default:[] (Hashtbl.find_opt adj a))
  in
  List.iter
    (fun (a, b) ->
      link a b;
      link b a)
    f.Sof.Forest.delivery;
  let injections =
    List.concat_map
      (fun (w : Sof.Forest.walk) ->
        match List.rev w.Sof.Forest.marks with
        | [] -> []
        | m :: _ ->
            List.init
              (Array.length w.Sof.Forest.hops - m.Sof.Forest.pos)
              (fun k -> w.Sof.Forest.hops.(m.Sof.Forest.pos + k)))
      f.Sof.Forest.walks
  in
  let visited = Hashtbl.create 32 in
  let queue = Queue.create () in
  List.iter
    (fun v ->
      if Hashtbl.mem adj v && not (Hashtbl.mem visited v) then begin
        Hashtbl.replace visited v ();
        Queue.add v queue
      end)
    injections;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if not (Hashtbl.mem visited v) then begin
          Hashtbl.replace visited v ();
          add u Final v;
          Queue.add v queue
        end)
      (Option.value ~default:[] (Hashtbl.find_opt adj u))
  done;
  KeyMap.fold
    (fun (node, matcher) hops acc ->
      { node; matcher; next_hops = List.sort compare hops } :: acc)
    !table []
  |> List.rev

let rules_per_node rules =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun r ->
      Hashtbl.replace counts r.node
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts r.node)))
    rules;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [])

let max_rules rules =
  List.fold_left (fun acc (_, c) -> max acc c) 0 (rules_per_node rules)

let tcam_violations rules ~capacity =
  List.filter (fun (_, c) -> c > capacity) (rules_per_node rules)
