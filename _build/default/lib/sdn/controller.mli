(** A single SDN controller: owns one domain, computes intra-domain
    shortest paths, and abstracts them as a border-router distance matrix
    for its peers (Section VI). *)

type t

val create : Sof_graph.Graph.t -> Domain.t -> int -> t
(** [create g domains id] — controller [id] over its domain's induced
    subgraph of [g]. *)

val id : t -> int

val members : t -> int list

val borders : t -> int list

val covers : t -> int -> bool

val intra_distance : t -> int -> int -> float
(** Shortest-path distance {e inside the domain's induced subgraph};
    [infinity] when separated (or when either node is outside the domain).
    Matches what a real controller can compute from its local topology
    only. *)

val intra_path : t -> int -> int -> int list option

val border_matrix : t -> (int * int * float) list
(** Distances between every pair of the domain's border routers, the
    payload each controller advertises over the east–west interface. *)

val node_to_borders : t -> int -> (int * float) list
(** Distances from an owned node to each border router of the domain. *)
