module Graph = Sof_graph.Graph

type t = {
  count : int;
  of_node : int array;
  members : int list array;
}

(* Farthest-first seed selection by hop count: the first seed is node 0,
   each next seed maximizes its BFS distance to the chosen set — giving
   geographically spread, reasonably balanced domains. *)
let spread_seeds g k =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let bfs_from s =
    let q = Queue.create () in
    dist.(s) <- 0;
    Queue.add s q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      Graph.iter_neighbors g u (fun v _ ->
          if dist.(v) > dist.(u) + 1 then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
    done
  in
  let seeds = Array.make k 0 in
  bfs_from 0;
  for i = 1 to k - 1 do
    let best = ref 0 and best_d = ref (-1) in
    for v = 0 to n - 1 do
      let d = if dist.(v) = max_int then n else dist.(v) in
      if d > !best_d then begin
        best_d := d;
        best := v
      end
    done;
    seeds.(i) <- !best;
    bfs_from !best
  done;
  seeds

let partition g ~k =
  let n = Graph.n g in
  if k < 1 || k > n then invalid_arg "Domain.partition: bad k";
  let of_node = Array.make n (-1) in
  let seeds = spread_seeds g k in
  let queues = Array.map (fun s -> Queue.create () |> fun q -> Queue.add s q; q) seeds in
  Array.iteri (fun d s -> of_node.(s) <- d) seeds;
  (* Round-robin BFS growth keeps regions contiguous and balanced. *)
  let remaining = ref (n - k) in
  let guard = ref 0 in
  while !remaining > 0 && !guard < 4 * n * k do
    incr guard;
    for d = 0 to k - 1 do
      if not (Queue.is_empty queues.(d)) then begin
        let u = Queue.pop queues.(d) in
        Graph.iter_neighbors g u (fun v _ ->
            if of_node.(v) = -1 then begin
              of_node.(v) <- d;
              decr remaining;
              Queue.add v queues.(d)
            end);
        (* keep expanding this node later if it still has free neighbors *)
        let has_free = ref false in
        Graph.iter_neighbors g u (fun v _ ->
            if of_node.(v) = -1 then has_free := true);
        if !has_free then Queue.add u queues.(d)
      end
    done
  done;
  (* disconnected leftovers go to domain 0 *)
  Array.iteri (fun v d -> if d = -1 then of_node.(v) <- 0) of_node;
  let members = Array.make k [] in
  for v = n - 1 downto 0 do
    members.(of_node.(v)) <- v :: members.(of_node.(v))
  done;
  { count = k; of_node; members }

let is_border g t v =
  Graph.fold_neighbors g v
    (fun acc u _ -> acc || t.of_node.(u) <> t.of_node.(v))
    false

let border_routers g t d =
  List.filter (is_border g t) t.members.(d)

let inter_domain_edges g t =
  let acc = ref [] in
  Graph.iter_edges g (fun u v w ->
      if t.of_node.(u) <> t.of_node.(v) then acc := (u, v, w) :: !acc);
  List.rev !acc
