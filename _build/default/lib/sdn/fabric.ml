type kind =
  | Border_matrix
  | Reachability
  | Chain_query
  | Steiner_update
  | Conflict_notice
  | Rule_install

let kind_to_string = function
  | Border_matrix -> "border-matrix"
  | Reachability -> "reachability"
  | Chain_query -> "chain-query"
  | Steiner_update -> "steiner-update"
  | Conflict_notice -> "conflict-notice"
  | Rule_install -> "rule-install"

let all_kinds =
  [
    Border_matrix; Reachability; Chain_query; Steiner_update; Conflict_notice;
    Rule_install;
  ]

type t = {
  counters : (kind, int) Hashtbl.t;
  mutable inter : int;
  mutable south : int;
}

let create () = { counters = Hashtbl.create 8; inter = 0; south = 0 }

let send t ~src ~dst kind =
  Hashtbl.replace t.counters kind
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.counters kind));
  if src = dst then t.south <- t.south + 1 else t.inter <- t.inter + 1

let total t = t.inter
let southbound t = t.south
let count t kind = Option.value ~default:0 (Hashtbl.find_opt t.counters kind)

let report t =
  List.filter_map
    (fun k ->
      match count t k with 0 -> None | c -> Some (kind_to_string k, c))
    all_kinds
