module Graph = Sof_graph.Graph
module Dijkstra = Sof_graph.Dijkstra

type t = {
  id : int;
  global_n : int;
  members : int list;
  borders : int list;
  in_domain : bool array;
  subgraph : Graph.t; (* same node ids as the global graph; foreign edges removed *)
  cache : (int, Dijkstra.result) Hashtbl.t;
}

let create g domains id =
  let members = domains.Domain.members.(id) in
  let in_domain = Array.make (Graph.n g) false in
  List.iter (fun v -> in_domain.(v) <- true) members;
  let subgraph =
    Graph.filter_edges g (fun u v _ -> in_domain.(u) && in_domain.(v))
  in
  {
    id;
    global_n = Graph.n g;
    members;
    borders = Domain.border_routers g domains id;
    in_domain;
    subgraph;
    cache = Hashtbl.create 8;
  }

let id t = t.id
let members t = t.members
let borders t = t.borders
let covers t v = v >= 0 && v < t.global_n && t.in_domain.(v)

let run_from t v =
  match Hashtbl.find_opt t.cache v with
  | Some r -> r
  | None ->
      let r = Dijkstra.run t.subgraph v in
      Hashtbl.replace t.cache v r;
      r

let intra_distance t u v =
  if not (covers t u && covers t v) then infinity
  else (run_from t u).Dijkstra.dist.(v)

let intra_path t u v =
  if not (covers t u && covers t v) then None
  else Dijkstra.path_to (run_from t u) v

let border_matrix t =
  List.concat_map
    (fun b1 ->
      List.filter_map
        (fun b2 ->
          if b1 < b2 then begin
            let d = intra_distance t b1 b2 in
            if d < infinity then Some (b1, b2, d) else None
          end
          else None)
        t.borders)
    t.borders

let node_to_borders t v =
  List.filter_map
    (fun b ->
      let d = intra_distance t v b in
      if d < infinity then Some (b, d) else None)
    t.borders
