(** Compilation of a service overlay forest into per-switch forwarding
    rules — what the paper's OpenDaylight application pushes into the HP
    switches.

    A rule matches a stream and forwards to one or more next hops
    (branching rules model OpenFlow group-table replication).  Streams are
    keyed by originating source and processing stage, mirroring how the
    forest's cost model distinguishes traffic contexts; the fully-processed
    stream delivered over the residual tree is keyed [Final]. *)

type matcher =
  | Stream of { source : int; stage : int }
  | Final

type rule = {
  node : int;
  matcher : matcher;
  next_hops : int list;  (** sorted, nonempty *)
}

val compile : Sof.Forest.t -> rule list
(** One rule per (node, matcher) with merged next-hop sets; destinations
    and other pure consumers get no rule. *)

val rules_per_node : rule list -> (int * int) list
(** [(node, rule count)] for nodes with at least one rule, ascending. *)

val max_rules : rule list -> int

val tcam_violations : rule list -> capacity:int -> (int * int) list
(** Nodes whose rule count exceeds the TCAM [capacity]. *)
