(** East–west inter-controller message fabric (Section VI).

    A counting message bus standing in for the ODL-SDNi channel: the
    distributed algorithms below route all cross-controller information
    through [send], so tests and benchmarks can assert {e what} must be
    exchanged and {e how much}. *)

type t

type kind =
  | Border_matrix       (** intra-domain distance matrix broadcast *)
  | Reachability        (** SDNi NLRI-style reachability advertisement *)
  | Chain_query         (** candidate service-chain cost request/response *)
  | Steiner_update      (** distributed Steiner tree construction round *)
  | Conflict_notice     (** VNF conflict detection / resolution *)
  | Rule_install        (** southbound flow-rule push, counted per switch *)

val create : unit -> t

val send : t -> src:int -> dst:int -> kind -> unit
(** [src]/[dst] are controller ids ([dst = src] models southbound traffic
    inside one domain and is counted separately). *)

val total : t -> int
(** All inter-controller messages (excludes southbound). *)

val southbound : t -> int

val count : t -> kind -> int

val kind_to_string : kind -> string

val report : t -> (string * int) list
(** Per-kind counters, for logs and benches. *)
