lib/lp/ilp.ml: Array Float List Option Simplex Unix
