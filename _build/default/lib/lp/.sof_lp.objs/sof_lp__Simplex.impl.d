lib/lp/simplex.ml: Array List Seq
