lib/lp/simplex.mli:
