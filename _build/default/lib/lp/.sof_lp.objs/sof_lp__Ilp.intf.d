lib/lp/ilp.mli: Simplex
