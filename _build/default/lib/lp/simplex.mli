(** Dense two-phase primal simplex for small linear programs.

    Minimize [c . x] subject to sparse rows [a_i . x  (<= | >= | =)  b_i]
    and [x >= 0].  This is the LP engine under the branch-and-bound ILP
    solver that stands in for CPLEX (see DESIGN.md); it is tuned for the
    few-thousand-variable instances produced by {!Sof.Ip_model}, not for
    production-scale LPs.

    Pivoting uses Dantzig's rule with an automatic switch to Bland's rule
    to escape degenerate cycling; iterations are capped. *)

type relation = Le | Ge | Eq

type problem = {
  n_vars : int;
  objective : float array;            (** length [n_vars]; minimized *)
  rows : (int * float) list array;    (** sparse constraint coefficients *)
  relations : relation array;
  rhs : float array;
}

type outcome =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded
  | Iteration_limit

val solve : ?max_iters:int -> problem -> outcome
(** [max_iters] defaults to [50 * (rows + vars)].  @raise Invalid_argument
    on ragged input. *)

val check_feasible : ?tol:float -> problem -> float array -> bool
(** Does [x] satisfy every constraint and nonnegativity (within [tol],
    default 1e-6)?  Used by tests and by the ILP layer to sanity-check
    incumbents. *)
