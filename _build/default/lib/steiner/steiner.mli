(** Steiner tree construction.

    [approx] is the Kou–Markowsky–Berman (KMB) algorithm: MST of the metric
    closure over the terminals, expanded back to shortest paths, re-spanned
    and pruned.  Its worst-case ratio is [2 (1 - 1/|terminals|)]; the paper
    treats the Steiner routine as a black box with ratio [rho_ST], so every
    approximation statement in this repository instantiates [rho_ST = 2]
    (see DESIGN.md, substitution table).

    [exact] is the Dreyfus–Wagner dynamic program, exponential in the number
    of terminals — usable for |terminals| up to ~10; it backs the property
    tests and the optimality probes. *)

type tree = {
  edges : (int * int * float) list;  (** tree edges of the base graph, [u < v] *)
  weight : float;
}

val approx : Sof_graph.Graph.t -> int list -> tree
(** [approx g terminals] — KMB Steiner tree spanning [terminals].
    @raise Invalid_argument if the terminals are not connected in [g] or the
    list is empty. *)

val approx_rooted : Sof_graph.Graph.t -> root:int -> int list -> tree
(** [approx_rooted g ~root terminals] spans [root :: terminals]. *)

val approx_in : Sof_graph.Graph.t -> Sof_graph.Metric.t -> int list -> tree
(** [approx_in g closure terminals] — KMB reusing a precomputed metric
    closure (every terminal must be a closure terminal); avoids the
    per-call Dijkstra sweep when many Steiner trees are built over subsets
    of a fixed node set (SOFDA-SS examines every candidate last VM).
    @raise Not_found if a terminal is not in the closure. *)

val exact_weight : Sof_graph.Graph.t -> int list -> float
(** Optimal Steiner tree weight by Dreyfus–Wagner.  @raise Invalid_argument
    on an empty or disconnected terminal set, or more than 14 terminals. *)

val tree_nodes : tree -> int list
(** Distinct nodes touched by the tree edges. *)

val contains_node : tree -> int -> bool
