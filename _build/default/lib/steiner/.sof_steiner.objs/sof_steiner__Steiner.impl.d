lib/steiner/steiner.ml: Array Hashtbl List Sof_graph
