lib/steiner/steiner.mli: Sof_graph
