(** Load ledger for the online deployment scenario (Section VIII-C).

    Tracks the traffic load on every link and the utilization of every VM
    node; exposes the current Fortz–Thorup cost of each resource so that
    successive requests are embedded against up-to-date congestion-aware
    costs, as the paper's online experiments require. *)

type t

val create :
  graph:Sof_graph.Graph.t ->
  link_capacity:float ->
  node_capacity:float array ->
  t
(** [create ~graph ~link_capacity ~node_capacity] starts with all loads at
    zero.  [node_capacity.(v) = 0.] marks a node that can carry no VNF load
    (switches). *)

val graph : t -> Sof_graph.Graph.t

val edge_load : t -> int -> int -> float
val node_load : t -> int -> float

val add_edge_load : t -> int -> int -> float -> unit
(** @raise Invalid_argument if the edge does not exist. *)

val add_node_load : t -> int -> float -> unit

val edge_cost : t -> int -> int -> float
(** Fortz–Thorup cost of the link at its current load. *)

val node_cost : t -> int -> float
(** Fortz–Thorup cost of the node at its current load; [infinity] when the
    node has zero capacity but positive load (never happens if callers only
    load VMs). Zero-capacity nodes at zero load cost 0. *)

val edge_utilization : t -> int -> int -> float

val costed_graph : t -> Sof_graph.Graph.t
(** Rebuild the graph with each edge weighted by its current cost. *)

val reset : t -> unit
