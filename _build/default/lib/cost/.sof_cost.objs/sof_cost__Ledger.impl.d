lib/cost/ledger.ml: Array Cost_model Hashtbl Option Sof_graph
