lib/cost/cost_model.ml:
