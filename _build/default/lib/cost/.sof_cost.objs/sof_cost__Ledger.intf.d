lib/cost/ledger.mli: Sof_graph
