let breakpoints = [ 1.0 /. 3.0; 2.0 /. 3.0; 0.9; 1.0; 1.1 ]

let cost ~load ~capacity =
  if capacity <= 0.0 then invalid_arg "Cost_model.cost: capacity <= 0";
  if load < 0.0 then invalid_arg "Cost_model.cost: negative load";
  let l = load and p = capacity in
  let u = l /. p in
  if u <= 1.0 /. 3.0 then l
  else if u <= 2.0 /. 3.0 then (3.0 *. l) -. (2.0 /. 3.0 *. p)
  else if u <= 0.9 then (10.0 *. l) -. (16.0 /. 3.0 *. p)
  else if u <= 1.0 then (70.0 *. l) -. (178.0 /. 3.0 *. p)
  else if u <= 1.1 then (500.0 *. l) -. (1468.0 /. 3.0 *. p)
  else
    (* The paper prints 14318/3 here, which leaves the function
       discontinuous at u = 1.1; the original Fortz–Thorup intercept is
       16318/3 (and only that value makes the pieces join up), so we treat
       the printed constant as a typo. *)
    (5000.0 *. l) -. (16318.0 /. 3.0 *. p)

let utilization_cost u = cost ~load:u ~capacity:1.0

let slope_at u =
  if u < 0.0 then invalid_arg "Cost_model.slope_at: negative utilization";
  if u <= 1.0 /. 3.0 then 1.0
  else if u <= 2.0 /. 3.0 then 3.0
  else if u <= 0.9 then 10.0
  else if u <= 1.0 then 70.0
  else if u <= 1.1 then 500.0
  else 5000.0
