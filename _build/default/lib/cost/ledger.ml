module Graph = Sof_graph.Graph

type t = {
  graph : Graph.t;
  link_capacity : float;
  node_capacity : float array;
  edge_loads : (int * int, float) Hashtbl.t;
  node_loads : float array;
}

let norm u v = if u < v then (u, v) else (v, u)

let create ~graph ~link_capacity ~node_capacity =
  if link_capacity <= 0.0 then invalid_arg "Ledger.create: bad link capacity";
  if Array.length node_capacity <> Graph.n graph then
    invalid_arg "Ledger.create: node_capacity arity";
  {
    graph;
    link_capacity;
    node_capacity;
    edge_loads = Hashtbl.create (Graph.m graph * 2);
    node_loads = Array.make (Graph.n graph) 0.0;
  }

let graph t = t.graph

let edge_load t u v =
  Option.value ~default:0.0 (Hashtbl.find_opt t.edge_loads (norm u v))

let node_load t v = t.node_loads.(v)

let add_edge_load t u v demand =
  if not (Graph.mem_edge t.graph u v) then
    invalid_arg "Ledger.add_edge_load: no such edge";
  let key = norm u v in
  Hashtbl.replace t.edge_loads key (edge_load t u v +. demand)

let add_node_load t v demand = t.node_loads.(v) <- t.node_loads.(v) +. demand

let edge_cost t u v =
  Cost_model.cost ~load:(edge_load t u v) ~capacity:t.link_capacity

let node_cost t v =
  let cap = t.node_capacity.(v) in
  if cap <= 0.0 then (if t.node_loads.(v) > 0.0 then infinity else 0.0)
  else Cost_model.cost ~load:t.node_loads.(v) ~capacity:cap

let edge_utilization t u v = edge_load t u v /. t.link_capacity

let costed_graph t = Graph.map_weights t.graph (fun u v _ -> edge_cost t u v)

let reset t =
  Hashtbl.reset t.edge_loads;
  Array.fill t.node_loads 0 (Array.length t.node_loads) 0.0
