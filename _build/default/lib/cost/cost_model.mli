(** The convex load-dependent cost of Section VII-B (Fig. 7).

    The paper adopts the piecewise-linear increasing convex function of
    Fortz & Thorup ("Optimizing OSPF/IS-IS weights in a changing world") to
    price links and VMs by utilization, so that congested resources look
    expensive to the embedding algorithms.  [cost ~load ~capacity] is exactly
    the six-piece function printed in the paper. *)

val cost : load:float -> capacity:float -> float
(** Piecewise cost; linear pieces switch at utilizations
    1/3, 2/3, 9/10, 1 and 11/10.  The paper prints the last intercept as
    14318/3, which breaks continuity at 11/10; we use Fortz–Thorup's
    original 16318/3 (the unique continuous choice).  @raise
    Invalid_argument when [capacity <= 0] or [load < 0]. *)

val utilization_cost : float -> float
(** [utilization_cost u] = [cost ~load:u ~capacity:1.0]. *)

val breakpoints : float list
(** The utilization breakpoints, for tests and the Fig. 7 bench. *)

val slope_at : float -> float
(** Marginal cost (slope of the active piece) at a given utilization. *)
