(** SOF problem instances (Section III of the paper).

    An instance is a network [G = (V = M ∪ U, E)] with nonnegative
    connection costs on edges and setup costs on VM nodes (switches cost 0),
    a source set [S], a destination set [D], and the length of the demanded
    VNF chain [C = (f_1 … f_|C|)].  VNFs are identified by their 1-based
    index in the chain — the paper's chains are anonymous sequences, so only
    the index matters.  A VM may run at most one VNF (replicate VM nodes in
    the input to model multi-VNF hosts). *)

type t = private {
  graph : Sof_graph.Graph.t;
  node_cost : float array;  (** setup cost per node; 0 for switches *)
  is_vm : bool array;
  vms : int list;           (** M, ascending *)
  sources : int list;       (** S, ascending *)
  dests : int list;         (** D, ascending *)
  chain_length : int;       (** |C| >= 1 *)
}

val make :
  graph:Sof_graph.Graph.t ->
  node_cost:float array ->
  vms:int list ->
  sources:int list ->
  dests:int list ->
  chain_length:int ->
  t
(** Validates: node ids in range; [node_cost] nonnegative with zeroes
    outside [M]; [S] and [D] nonempty; [chain_length >= 1].  Sources and
    destinations may coincide with VMs or each other (the paper's model
    allows it).  @raise Invalid_argument otherwise. *)

val n : t -> int
val is_source : t -> int -> bool
val is_dest : t -> int -> bool
val is_vm : t -> int -> bool
val setup_cost : t -> int -> float
val edge_cost : t -> int -> int -> float
(** @raise Invalid_argument when the edge is absent. *)

val pp : Format.formatter -> t -> unit
