lib/core/forest.ml: Array Buffer Format Hashtbl List Printf Problem Sof_graph
