lib/core/dynamic.mli: Forest Problem
