lib/core/conflict.ml: Array Forest Hashtbl List
