lib/core/forest.mli: Format Problem
