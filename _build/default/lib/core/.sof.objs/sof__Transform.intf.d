lib/core/transform.mli: Problem Sof_graph
