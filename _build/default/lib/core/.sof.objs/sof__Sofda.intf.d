lib/core/sofda.mli: Forest Problem Transform
