lib/core/validate.ml: Array Forest Hashtbl List Printf Problem Sof_graph String
