lib/core/sofda_ss.ml: Forest List Option Problem Sof_steiner Transform
