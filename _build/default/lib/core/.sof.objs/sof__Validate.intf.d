lib/core/validate.mli: Forest
