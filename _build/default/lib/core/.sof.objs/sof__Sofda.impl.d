lib/core/sofda.ml: Array Conflict Forest Hashtbl List Option Problem Sof_graph Sof_steiner Sofda_ss Transform
