lib/core/ip_model.mli: Forest Problem Sof_lp
