lib/core/problem.ml: Array Float Format List Printf Sof_graph
