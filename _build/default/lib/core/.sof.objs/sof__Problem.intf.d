lib/core/problem.mli: Format Sof_graph
