lib/core/ip_model.ml: Array Forest Fun Hashtbl List Option Printf Problem Sof_graph Sof_lp
