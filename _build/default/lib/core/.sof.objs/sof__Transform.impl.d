lib/core/transform.ml: Array Hashtbl List Printf Problem Sof_graph Sof_kstroll
