lib/core/sofda_ss.mli: Forest Problem Transform
