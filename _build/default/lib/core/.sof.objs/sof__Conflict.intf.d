lib/core/conflict.mli: Forest Problem
