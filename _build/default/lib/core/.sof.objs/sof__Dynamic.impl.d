lib/core/dynamic.ml: Array Conflict Forest Hashtbl List Option Problem Sof_graph Transform
