(** VNF-conflict elimination between service-chain walks (Procedure 4).

    When the Steiner tree of SOFDA's auxiliary graph selects several
    candidate service chains, their walks may demand {e different} VNFs on
    the same VM — infeasible, since a VM runs one VNF.  The paper resolves a
    conflict between a walk [W] (at its first conflicting VM [u], scanning
    from the last VM backwards) and an earlier walk [W1] by one of three
    attachments, none of which adds links or enables new VMs:

    + if [W]'s VNF index [j] at [u] is at most [W1]'s index [i], re-root
      [W] onto [W1]'s prefix through [u];
    + else if some other shared VM [w] carries index [h >= j] on [W1],
      re-root [W] onto [W1]'s prefix through [w], keep [W]'s detour
      [w .. u .. end] as pass-through;
    + else re-root [W1] onto [W]'s prefix through [u].

    [resolve] iterates these rules to a fixpoint over a whole walk set. *)

val has_conflict : Forest.walk list -> bool
(** Two walks assign different VNFs to one VM. *)

val resolve : Problem.t -> Forest.walk list -> Forest.walk list
(** Conflict-free rewriting of the walks (order preserved).  Also removes
    VNF-free loops from each walk (clones that serve no purpose after
    re-rooting).  @raise Failure if the fixpoint does not settle within a
    generous bound — indicates a bug, never expected. *)

val remove_loops : Forest.walk -> Forest.walk
(** Cut [x .. x] hop cycles that contain no VNF mark. *)
