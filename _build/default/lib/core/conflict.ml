type walk = Forest.walk

let mark_vm (w : walk) (m : Forest.mark) = w.Forest.hops.(m.Forest.pos)

(* All (vm, vnf) assignments of a walk. *)
let assignments (w : walk) =
  List.map (fun m -> (mark_vm w m, m.Forest.vnf)) w.Forest.marks

let has_conflict walks =
  let enabled = Hashtbl.create 16 in
  List.exists
    (fun w ->
      List.exists
        (fun (vm, vnf) ->
          match Hashtbl.find_opt enabled vm with
          | Some f when f <> vnf -> true
          | Some _ -> false
          | None ->
              Hashtbl.replace enabled vm vnf;
              false)
        (assignments w))
    walks

(* [prefix w pos] = hops[0..pos] with the marks at positions <= pos.
   [suffix w pos ~keep_above] = hops[pos..] (re-indexed) with the marks at
   positions > pos whose vnf exceeds [keep_above]. *)
let prefix (w : walk) pos =
  ( Array.sub w.Forest.hops 0 (pos + 1),
    List.filter (fun (m : Forest.mark) -> m.Forest.pos <= pos) w.Forest.marks )

let suffix (w : walk) pos ~keep_above =
  let hops =
    Array.sub w.Forest.hops pos (Array.length w.Forest.hops - pos)
  in
  let marks =
    List.filter_map
      (fun (m : Forest.mark) ->
        if m.Forest.pos > pos && m.Forest.vnf > keep_above then
          Some { Forest.pos = m.Forest.pos - pos; vnf = m.Forest.vnf }
        else None)
      w.Forest.marks
  in
  (hops, marks)

(* Middle segment hops[a..b] of a walk, marks dropped (pass-through). *)
let segment (w : walk) a b = Array.sub w.Forest.hops a (b - a + 1)

(* Concatenate hop arrays that agree on their junction nodes. *)
let join_hops pieces =
  match pieces with
  | [] -> [||]
  | first :: rest ->
      let buf = ref (Array.to_list first) in
      List.iter
        (fun piece ->
          match Array.to_list piece with
          | [] -> ()
          | j :: tail ->
              assert (List.nth !buf (List.length !buf - 1) = j);
              buf := !buf @ tail)
        rest;
      Array.of_list !buf

let rebuild source pieces marks_pieces =
  let hops = join_hops pieces in
  (* marks_pieces carry (offset, marks) where offset is the hop index at
     which the piece starts in the concatenation. *)
  let marks =
    List.concat_map
      (fun (offset, marks) ->
        List.map
          (fun (m : Forest.mark) ->
            { Forest.pos = m.Forest.pos + offset; vnf = m.Forest.vnf })
          marks)
      marks_pieces
  in
  let marks = List.sort (fun a b -> compare a.Forest.pos b.Forest.pos) marks in
  { Forest.source; hops; marks }

let remove_loops (w : walk) =
  let has_mark_between marks a b =
    List.exists
      (fun (m : Forest.mark) -> m.Forest.pos > a && m.Forest.pos <= b)
      marks
  in
  let rec shrink (w : walk) =
    let n = Array.length w.Forest.hops in
    let last_seen = Hashtbl.create n in
    let cut = ref None in
    (try
       for i = 0 to n - 1 do
         let v = w.Forest.hops.(i) in
         (match Hashtbl.find_opt last_seen v with
         | Some j when not (has_mark_between w.Forest.marks j i) ->
             cut := Some (j, i);
             raise Exit
         | _ -> ());
         Hashtbl.replace last_seen v i
       done
     with Exit -> ());
    match !cut with
    | None -> w
    | Some (j, i) ->
        let hops =
          Array.append
            (Array.sub w.Forest.hops 0 (j + 1))
            (Array.sub w.Forest.hops (i + 1) (n - i - 1))
        in
        let shiftd = i - j in
        let marks =
          List.map
            (fun (m : Forest.mark) ->
              if m.Forest.pos > i then
                { Forest.pos = m.Forest.pos - shiftd; vnf = m.Forest.vnf }
              else m)
            w.Forest.marks
        in
        shrink { w with Forest.hops = hops; Forest.marks = marks }
  in
  shrink w

(* First conflict of walk [w] against the enabled map, scanning marks from
   the last VNF backwards (the paper's "backtracking W"). *)
let first_conflict enabled (w : walk) =
  let rec scan = function
    | [] -> None
    | (m : Forest.mark) :: rest -> (
        let vm = mark_vm w m in
        match Hashtbl.find_opt enabled vm with
        | Some (other_vnf, owner) when other_vnf <> m.Forest.vnf ->
            Some (m, vm, other_vnf, owner)
        | _ -> scan rest)
  in
  scan (List.rev w.Forest.marks)

(* Position of the mark of [w] sitting on [vm]. *)
let mark_of_vm (w : walk) vm =
  List.find_opt (fun (m : Forest.mark) -> mark_vm w m = vm) w.Forest.marks

(* Resolve the conflict between [w] (later) and [w1] (earlier) at VM [u]
   where [w] wants vnf [j] and [w1] runs vnf [i].  Returns replacement
   walks (w1', w'). *)
let resolve_pair (w1 : walk) (w : walk) ~u ~j ~i =
  let m1 =
    match mark_of_vm w1 u with Some m -> m | None -> assert false
  in
  let mw = match mark_of_vm w u with Some m -> m | None -> assert false in
  if j <= i then begin
    (* Case 1: ride w1's prefix through u; w provides f_{i+1}.. after u. *)
    let ph, pm = prefix w1 m1.Forest.pos in
    let sh, sm = suffix w mw.Forest.pos ~keep_above:i in
    let offset = Array.length ph - 1 in
    let w' =
      rebuild w1.Forest.source [ ph; sh ] [ (0, pm); (offset, sm) ]
    in
    (w1, w')
  end
  else begin
    (* Case 2: some shared VM w carries index h >= j on w1. *)
    let shared =
      List.filter_map
        (fun (mh : Forest.mark) ->
          let vm = mark_vm w1 mh in
          match mark_of_vm w vm with
          | Some mw_shared
            when mh.Forest.vnf >= j && mh.Forest.vnf <> mw_shared.Forest.vnf ->
              Some (mh, mw_shared)
          | _ -> None)
        w1.Forest.marks
    in
    match shared with
    | (mh, mw_shared) :: _ ->
        let h = mh.Forest.vnf in
        let ph, pm = prefix w1 mh.Forest.pos in
        (* detour: w's hops from the shared VM to u, then w's suffix. *)
        let detour = segment w (min mw_shared.Forest.pos mw.Forest.pos)
            (max mw_shared.Forest.pos mw.Forest.pos) in
        let detour =
          if mw_shared.Forest.pos <= mw.Forest.pos then detour
          else begin
            let d = Array.copy detour in
            let n = Array.length d in
            Array.iteri (fun k _ -> d.(k) <- detour.(n - 1 - k)) detour;
            d
          end
        in
        let sh, sm = suffix w mw.Forest.pos ~keep_above:h in
        let off_detour = Array.length ph - 1 in
        let off_suffix = off_detour + Array.length detour - 1 in
        let w' =
          rebuild w1.Forest.source
            [ ph; detour; sh ]
            [ (0, pm); (off_suffix, sm) ]
        in
        (w1, w')
    | [] ->
        (* Case 3: re-root w1 onto w's prefix through u. *)
        let ph, pm = prefix w mw.Forest.pos in
        let sh, sm = suffix w1 m1.Forest.pos ~keep_above:j in
        let offset = Array.length ph - 1 in
        let w1' =
          rebuild w.Forest.source [ ph; sh ] [ (0, pm); (offset, sm) ]
        in
        (w1', w)
  end

let resolve problem walks =
  ignore problem;
  let arr = Array.of_list walks in
  let bound = 100 + (Array.length arr * Array.length arr * 64) in
  let steps = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    incr steps;
    if !steps > bound then failwith "Conflict.resolve: fixpoint not reached";
    (* Enabled map: vm -> (vnf, owner index), owners in walk order. *)
    let enabled = Hashtbl.create 16 in
    (try
       for idx = 0 to Array.length arr - 1 do
         let w = arr.(idx) in
         match first_conflict enabled w with
         | Some (m, vm, other_vnf, owner) ->
             let w1 = arr.(owner) in
             let w1', w' =
               resolve_pair w1 w ~u:vm ~j:m.Forest.vnf ~i:other_vnf
             in
             arr.(owner) <- remove_loops w1';
             arr.(idx) <- remove_loops w';
             progress := true;
             raise Exit
         | None ->
             List.iter
               (fun (vm, vnf) ->
                 if not (Hashtbl.mem enabled vm) then
                   Hashtbl.replace enabled vm (vnf, idx))
               (assignments w)
       done
     with Exit -> ())
  done;
  Array.to_list arr
