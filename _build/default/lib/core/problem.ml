module Graph = Sof_graph.Graph

type t = {
  graph : Graph.t;
  node_cost : float array;
  is_vm : bool array;
  vms : int list;
  sources : int list;
  dests : int list;
  chain_length : int;
}

let make ~graph ~node_cost ~vms ~sources ~dests ~chain_length =
  let n = Graph.n graph in
  let check_node what v =
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Problem.make: %s node %d out of range" what v)
  in
  if Array.length node_cost <> n then
    invalid_arg "Problem.make: node_cost arity mismatch";
  Array.iteri
    (fun v c ->
      if c < 0.0 || Float.is_nan c then
        invalid_arg (Printf.sprintf "Problem.make: negative cost at node %d" v))
    node_cost;
  List.iter (check_node "vm") vms;
  List.iter (check_node "source") sources;
  List.iter (check_node "destination") dests;
  if sources = [] then invalid_arg "Problem.make: no sources";
  if dests = [] then invalid_arg "Problem.make: no destinations";
  if chain_length < 1 then invalid_arg "Problem.make: chain_length < 1";
  let is_vm = Array.make n false in
  List.iter (fun v -> is_vm.(v) <- true) vms;
  Array.iteri
    (fun v c ->
      if (not is_vm.(v)) && c > 0.0 then
        invalid_arg
          (Printf.sprintf "Problem.make: switch %d has nonzero setup cost" v))
    node_cost;
  {
    graph;
    node_cost;
    is_vm;
    vms = List.sort_uniq compare vms;
    sources = List.sort_uniq compare sources;
    dests = List.sort_uniq compare dests;
    chain_length;
  }

let n t = Graph.n t.graph
let is_source t v = List.mem v t.sources
let is_dest t v = List.mem v t.dests
let is_vm t v = t.is_vm.(v)
let setup_cost t v = t.node_cost.(v)

let edge_cost t u v =
  match Graph.edge_weight t.graph u v with
  | Some w -> w
  | None ->
      invalid_arg (Printf.sprintf "Problem.edge_cost: no edge (%d,%d)" u v)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>SOF instance: n=%d m=%d |M|=%d |S|=%d |D|=%d |C|=%d@]"
    (Graph.n t.graph) (Graph.m t.graph) (List.length t.vms)
    (List.length t.sources) (List.length t.dests) t.chain_length
