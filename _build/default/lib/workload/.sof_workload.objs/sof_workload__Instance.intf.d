lib/workload/instance.mli: Sof Sof_topology Sof_util
