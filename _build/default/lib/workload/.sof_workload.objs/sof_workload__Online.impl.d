lib/workload/online.ml: Array List Sof Sof_cost Sof_graph Sof_topology Sof_util String
