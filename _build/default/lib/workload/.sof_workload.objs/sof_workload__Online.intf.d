lib/workload/online.mli: Sof Sof_topology Sof_util
