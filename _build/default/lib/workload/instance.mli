(** Drawing SOF instances on a topology — the one-time deployment setup of
    Section VIII-A.

    Construction, following the paper: link utilizations are sampled
    uniformly in (0,1) and priced by the Fortz–Thorup function; [n_vms] VM
    nodes are attached to uniformly chosen data centers by zero-cost access
    links; every VM's setup cost is the Fortz–Thorup price of its host's
    sampled utilization, scaled by [setup_multiplier] (Fig. 11's knob);
    sources and destinations are each sampled uniformly (without
    replacement, but independently of each other — they may overlap) from
    the access nodes. *)

type params = {
  n_vms : int;
  n_sources : int;
  n_dests : int;
  chain_length : int;
  setup_multiplier : float;
}

val default_params : params
(** The paper's defaults: 25 VMs, 14 sources, 6 destinations, chain 3,
    multiplier 1. *)

val draw : rng:Sof_util.Rng.t -> Sof_topology.Topology.t -> params -> Sof.Problem.t
(** Build a random instance.  VM nodes are fresh node ids appended after
    the topology's access nodes.  @raise Invalid_argument when the topology
    has fewer access nodes than either set or no DCs. *)

val vm_hosts : Sof.Problem.t -> Sof_topology.Topology.t -> int -> int
(** [vm_hosts problem topo vm] — the access node a VM id attaches to (its
    single neighbor). *)
