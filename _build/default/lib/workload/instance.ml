module Graph = Sof_graph.Graph
module Rng = Sof_util.Rng
module Topology = Sof_topology.Topology
module Cost_model = Sof_cost.Cost_model

type params = {
  n_vms : int;
  n_sources : int;
  n_dests : int;
  chain_length : int;
  setup_multiplier : float;
}

let default_params =
  {
    n_vms = 25;
    n_sources = 14;
    n_dests = 6;
    chain_length = 3;
    setup_multiplier = 1.0;
  }

let draw ~rng (topo : Topology.t) p =
  let base = topo.Topology.graph in
  let n_access = Graph.n base in
  if topo.Topology.dcs = [] then invalid_arg "Instance.draw: topology has no DCs";
  if p.n_sources > n_access || p.n_dests > n_access then
    invalid_arg "Instance.draw: not enough access nodes";
  if p.n_vms < 1 || p.chain_length < 1 then
    invalid_arg "Instance.draw: bad parameters";
  (* One split stream per sampling stage (common random numbers): sweeping
     one parameter leaves every other stage's draws — link utilizations,
     VM placement, the other node sets — unchanged, which removes
     cross-cell noise from the benchmark sweeps. *)
  let rng_links = Rng.split rng in
  let rng_vms = Rng.split rng in
  let rng_setup = Rng.split rng in
  let rng_src = Rng.split rng in
  let rng_dst = Rng.split rng in
  (* Price every physical link by the Fortz–Thorup cost of a uniformly
     sampled utilization (the paper's one-time deployment setup). *)
  let priced =
    Graph.map_weights base (fun _ _ _ ->
        Cost_model.utilization_cost (Rng.uniform rng_links))
  in
  (* Attach VM nodes to random DCs; the access link is priced like any
     other link. *)
  let dcs = Array.of_list topo.Topology.dcs in
  let vm_edges =
    List.init p.n_vms (fun i ->
        let vm = n_access + i in
        let dc = Rng.pick rng_vms dcs in
        (vm, dc, Cost_model.utilization_cost (Rng.uniform rng_vms)))
  in
  let n = n_access + p.n_vms in
  let graph = Graph.create ~n ~edges:(Graph.edges priced @ vm_edges) in
  let node_cost = Array.make n 0.0 in
  let vms = List.init p.n_vms (fun i -> n_access + i) in
  List.iter
    (fun vm ->
      node_cost.(vm) <-
        Cost_model.utilization_cost (Rng.uniform rng_setup)
        *. p.setup_multiplier)
    vms;
  (* Sources and destinations are drawn independently (the paper sweeps up
     to 26 sources plus 6 destinations on the 27-node SoftLayer network, so
     the two sets cannot always be disjoint). *)
  let sources = Rng.sample_without_replacement rng_src p.n_sources n_access in
  let dests = Rng.sample_without_replacement rng_dst p.n_dests n_access in
  Sof.Problem.make ~graph ~node_cost ~vms ~sources ~dests
    ~chain_length:p.chain_length

let vm_hosts problem _topo vm =
  match Graph.neighbors problem.Sof.Problem.graph vm with
  | [ (host, _) ] -> host
  | (host, _) :: _ -> host
  | [] -> invalid_arg "Instance.vm_hosts: detached VM"
