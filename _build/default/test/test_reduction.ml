(* Appendix A of the paper: the Steiner Tree problem reduces to SOF with a
   single VM and |C| = 1, with OPT_SOF = OPT_Steiner + w for the fresh
   source edge of weight w.  We verify the equality computationally: the
   IP optimum of the reduced SOF instance must equal the Dreyfus-Wagner
   Steiner optimum plus w — and SOFDA must stay within its bound of it. *)

module Graph = Sof_graph.Graph
module Steiner = Sof_steiner.Steiner
open Testlib

(* Build the reduction: add source s = n with edge (s, r) of weight w. *)
let reduce g ~root ~terminals ~w =
  let n = Graph.n g in
  let graph = Graph.create ~n:(n + 1) ~edges:((root, n, w) :: Graph.edges g) in
  let node_cost = Array.make (n + 1) 0.0 in
  Sof.Problem.make ~graph ~node_cost ~vms:[ root ] ~sources:[ n ]
    ~dests:terminals ~chain_length:1

let reduction_case seed =
  let rng = Sof_util.Rng.create seed in
  let n = 6 + Sof_util.Rng.int rng 3 in
  let g = random_connected_graph rng ~n ~extra:4 ~w_max:5.0 in
  let ids = Array.init n Fun.id in
  Sof_util.Rng.shuffle rng ids;
  let root = ids.(0) in
  let terminals = [ ids.(1); ids.(2); ids.(3) ] in
  let w = 1.0 +. Sof_util.Rng.float rng 4.0 in
  (g, root, terminals, w)

let test_reduction_ip_equals_steiner () =
  for seed = 1 to 5 do
    let g, root, terminals, w = reduction_case seed in
    let p = reduce g ~root ~terminals ~w in
    let steiner_opt = Steiner.exact_weight g (root :: terminals) in
    let r = Sof.Ip_model.solve ~node_limit:80 ~time_budget:10.0 p in
    match (r.Sof_lp.Ilp.status, r.Sof_lp.Ilp.best) with
    | Sof_lp.Ilp.Optimal, Some (_, obj) ->
        Alcotest.check (Alcotest.float 1e-5)
          (Printf.sprintf "seed %d: OPT_SOF = OPT_Steiner + w" seed)
          (steiner_opt +. w) obj
    | _ ->
        (* budget exhaustion: at least the bound must bracket the value *)
        Alcotest.(check bool) "bound below" true
          (r.Sof_lp.Ilp.bound <= steiner_opt +. w +. 1e-5)
  done

let test_reduction_sofda_within_bound () =
  for seed = 1 to 8 do
    let g, root, terminals, w = reduction_case seed in
    let p = reduce g ~root ~terminals ~w in
    let steiner_opt = Steiner.exact_weight g (root :: terminals) in
    let opt = steiner_opt +. w in
    match Sof.Sofda.solve p with
    | None -> Alcotest.fail "reduction should be solvable"
    | Some r ->
        Sof.Validate.check_exn r.Sof.Sofda.forest;
        let cost = Sof.Forest.total_cost r.Sof.Sofda.forest in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: within 3*rho_ST (=6) of OPT" seed)
          true
          (cost >= opt -. 1e-6 && cost <= (6.0 *. opt) +. 1e-6)
  done

let test_reduction_sofda_ss_tight () =
  (* On the reduction the chain is trivial (one VM, forced), so SOFDA's
     quality is exactly its Steiner subroutine's: within 2x of optimum. *)
  for seed = 1 to 8 do
    let g, root, terminals, w = reduction_case seed in
    let p = reduce g ~root ~terminals ~w in
    let steiner_opt = Steiner.exact_weight g (root :: terminals) in
    match Sof.Sofda_ss.solve p ~source:(Graph.n g) with
    | None -> Alcotest.fail "solvable"
    | Some r ->
        let cost = Sof.Forest.total_cost r.Sof.Sofda_ss.forest in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: w + steiner within 2x" seed)
          true
          (cost <= w +. (2.0 *. steiner_opt) +. 1e-6)
  done

(* Transform consistency: the cost reported for a chain walk equals the
   cost recomputed from its concrete hops and marks. *)
let prop_chain_walk_cost_consistent =
  QCheck.Test.make ~count:150 ~name:"chain walk cost = hops + setups"
    instance_arb (fun (seed, chain) ->
      let p = random_instance ~chain_length:chain seed in
      let t = Sof.Transform.create p in
      let src = List.hd p.Sof.Problem.sources in
      List.for_all
        (fun u ->
          match
            Sof.Transform.chain_walk t ~src ~last_vm:u ~num_vnfs:chain
          with
          | None -> true
          | Some r ->
              let edges = ref 0.0 in
              let ok = ref true in
              for i = 0 to Array.length r.Sof.Transform.hops - 2 do
                match
                  Graph.edge_weight p.Sof.Problem.graph
                    r.Sof.Transform.hops.(i)
                    r.Sof.Transform.hops.(i + 1)
                with
                | Some weight -> edges := !edges +. weight
                | None -> ok := false
              done;
              let setups =
                List.fold_left
                  (fun acc (_, vm) -> acc +. Sof.Problem.setup_cost p vm)
                  0.0 r.Sof.Transform.vm_marks
              in
              !ok
              && abs_float (!edges +. setups -. r.Sof.Transform.cost) < 1e-6
              && List.length r.Sof.Transform.vm_marks = chain)
        p.Sof.Problem.vms)

let suite =
  [
    Alcotest.test_case "reduction IP = Steiner + w" `Quick
      test_reduction_ip_equals_steiner;
    Alcotest.test_case "reduction SOFDA bound" `Quick
      test_reduction_sofda_within_bound;
    Alcotest.test_case "reduction SOFDA-SS tight" `Quick
      test_reduction_sofda_ss_tight;
  ]
  @ qsuite [ prop_chain_walk_cost_consistent ]
