(* Shared helpers and generators for the test suites. *)

module Graph = Sof_graph.Graph
module Rng = Sof_util.Rng

let feq = Alcotest.float 1e-6

(* Random connected weighted graph: a random spanning tree plus [extra]
   random chords; weights uniform in [0.1, w_max]. *)
let random_connected_graph rng ~n ~extra ~w_max =
  let weight () = 0.1 +. Rng.float rng (w_max -. 0.1) in
  let tree =
    List.init (n - 1) (fun i ->
        let v = i + 1 in
        (Rng.int rng v, v, weight ()))
  in
  let chords =
    List.init extra (fun _ ->
        let u = Rng.int rng n and v = Rng.int rng n in
        if u = v then None else Some (u, v, weight ()))
    |> List.filter_map Fun.id
  in
  Graph.create ~n ~edges:(tree @ chords)

(* qcheck generator wrapping the seeded graph builder, so failures print a
   reproducible (seed, n, extra) triple. *)
let graph_params_arb ~max_n =
  QCheck.make
    ~print:(fun (seed, n, extra) ->
      Printf.sprintf "seed=%d n=%d extra=%d" seed n extra)
    QCheck.Gen.(
      triple (int_bound 1_000_000) (int_range 2 max_n) (int_bound 20))

let graph_of_params (seed, n, extra) =
  random_connected_graph (Rng.create seed) ~n ~extra ~w_max:10.0

(* A small SOF instance on a random connected graph: VMs, sources and
   destinations drawn disjointly where possible. *)
let random_instance ?(chain_length = 2) seed =
  let rng = Rng.create seed in
  let n = 8 + Rng.int rng 10 in
  let g = random_connected_graph rng ~n ~extra:(n / 2) ~w_max:5.0 in
  let ids = Array.init n Fun.id in
  Rng.shuffle rng ids;
  let nvms = max (chain_length + 1) (n / 3) in
  let vms = Array.to_list (Array.sub ids 0 nvms) in
  let nsrc = 1 + Rng.int rng 2 in
  let sources = Array.to_list (Array.sub ids nvms nsrc) in
  let ndst = 1 + Rng.int rng (max 1 (n - nvms - nsrc - 1)) in
  let dests = Array.to_list (Array.sub ids (nvms + nsrc) ndst) in
  let node_cost = Array.make n 0.0 in
  List.iter (fun v -> node_cost.(v) <- 0.5 +. Rng.float rng 4.5) vms;
  Sof.Problem.make ~graph:g ~node_cost ~vms ~sources ~dests ~chain_length

let instance_arb =
  QCheck.make
    ~print:(fun (seed, c) -> Printf.sprintf "seed=%d chain=%d" seed c)
    QCheck.Gen.(pair (int_bound 1_000_000) (int_range 1 4))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests
