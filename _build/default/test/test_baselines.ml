module Problem = Sof.Problem
module Forest = Sof.Forest
module Validate = Sof.Validate
module Baselines = Sof_baselines.Baselines
open Testlib

let softlayer_instance seed params =
  let rng = Sof_util.Rng.create seed in
  let topo = Sof_topology.Topology.softlayer () in
  Sof_workload.Instance.draw ~rng topo params

let small_params =
  {
    Sof_workload.Instance.n_vms = 10;
    n_sources = 4;
    n_dests = 4;
    chain_length = 2;
    setup_multiplier = 1.0;
  }

let test_st_valid () =
  let p = softlayer_instance 11 small_params in
  match Baselines.st p with
  | None -> Alcotest.fail "st should solve"
  | Some f -> Validate.check_exn f

let test_est_valid () =
  let p = softlayer_instance 12 small_params in
  match Baselines.est p with
  | None -> Alcotest.fail "est should solve"
  | Some f -> Validate.check_exn f

let test_enemp_valid () =
  let p = softlayer_instance 13 small_params in
  match Baselines.enemp p with
  | None -> Alcotest.fail "enemp should solve"
  | Some f -> Validate.check_exn f

let test_est_no_worse_than_st () =
  (* eST includes ST's single-tree solution as its first iterate, so it can
     only improve on it. *)
  for seed = 20 to 35 do
    let p = softlayer_instance seed small_params in
    match (Baselines.st p, Baselines.est p) with
    | Some st, Some est ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: est <= st" seed)
          true
          (Forest.total_cost est <= Forest.total_cost st +. 1e-6)
    | _ -> Alcotest.fail "both should solve"
  done

let test_single_source_baselines_agree_with_structure () =
  (* With one source eST degenerates to ST. *)
  let p =
    softlayer_instance 40
      { small_params with Sof_workload.Instance.n_sources = 1 }
  in
  match (Baselines.st p, Baselines.est p) with
  | Some st, Some est ->
      Alcotest.check feq "same cost" (Forest.total_cost st)
        (Forest.total_cost est)
  | _ -> Alcotest.fail "both should solve"

let prop_baselines_valid =
  QCheck.Test.make ~count:80 ~name:"baselines produce valid forests"
    instance_arb (fun (seed, chain) ->
      let p = random_instance ~chain_length:chain seed in
      let check = function
        | None -> true
        | Some f -> Validate.is_valid f
      in
      check (Baselines.st p) && check (Baselines.est p)
      && check (Baselines.enemp p))

let prop_sofda_no_worse_than_baselines_on_average =
  (* The paper's headline: SOFDA dominates in aggregate.  Individual
     instances can flip (all algorithms share heuristic Steiner/k-stroll
     subroutines), so we assert the batch average with a small slack; the
     strict aggregate comparison over hundreds of seeds lives in the
     benchmark harness (EXPERIMENTS.md). *)
  QCheck.Test.make ~count:8 ~name:"SOFDA beats baselines on average"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let totals = Array.make 2 0.0 in
      let n = ref 0 in
      for i = 0 to 15 do
        let p = softlayer_instance ((seed * 16) + i) small_params in
        match (Sof.Sofda.solve p, Baselines.est p) with
        | Some r, Some est ->
            totals.(0) <- totals.(0) +. Forest.total_cost r.Sof.Sofda.forest;
            totals.(1) <- totals.(1) +. Forest.total_cost est;
            incr n
        | _ -> ()
      done;
      !n = 0 || totals.(0) <= (totals.(1) *. 1.03) +. 1e-6)

let suite =
  [
    Alcotest.test_case "st valid" `Quick test_st_valid;
    Alcotest.test_case "est valid" `Quick test_est_valid;
    Alcotest.test_case "enemp valid" `Quick test_enemp_valid;
    Alcotest.test_case "est <= st" `Quick test_est_no_worse_than_st;
    Alcotest.test_case "single-source est = st" `Quick
      test_single_source_baselines_agree_with_structure;
  ]
  @ qsuite [ prop_baselines_valid; prop_sofda_no_worse_than_baselines_on_average ]
