module Kstroll = Sof_kstroll.Kstroll
open Testlib

(* Metric from points on a line: dist = |a - b|. *)
let line_dist a b = abs_float (float_of_int a -. float_of_int b)

let test_direct_when_k2 () =
  match
    Kstroll.cheapest_insertion ~dist:line_dist ~candidates:[ 5; 7 ] ~src:0
      ~dst:10 ~k:2
  with
  | Some w ->
      Alcotest.(check (list int)) "direct" [ 0; 10 ] w.Kstroll.nodes;
      Alcotest.check feq "cost" 10.0 w.Kstroll.cost
  | None -> Alcotest.fail "expected walk"

let test_line_insertion_free () =
  (* Inserting nodes that lie on the segment costs nothing extra. *)
  match
    Kstroll.cheapest_insertion ~dist:line_dist ~candidates:[ 3; 6; 20 ] ~src:0
      ~dst:10 ~k:4
  with
  | Some w ->
      Alcotest.check feq "still 10" 10.0 w.Kstroll.cost;
      Alcotest.(check int) "4 distinct" 4 (Kstroll.distinct_count w.Kstroll.nodes)
  | None -> Alcotest.fail "expected walk"

let test_infeasible () =
  Alcotest.(check bool) "too few candidates" true
    (Kstroll.cheapest_insertion ~dist:line_dist ~candidates:[ 1 ] ~src:0
       ~dst:10 ~k:4
    = None)

let test_endpoints_ignored_in_candidates () =
  match
    Kstroll.cheapest_insertion ~dist:line_dist ~candidates:[ 0; 10; 5 ] ~src:0
      ~dst:10 ~k:3
  with
  | Some w ->
      Alcotest.(check int) "3 distinct" 3 (Kstroll.distinct_count w.Kstroll.nodes)
  | None -> Alcotest.fail "expected walk"

let test_exact_line () =
  match
    Kstroll.exact ~dist:line_dist ~candidates:[ 3; 6; 20 ] ~src:0 ~dst:10 ~k:4
  with
  | Some w -> Alcotest.check feq "optimal 10" 10.0 w.Kstroll.cost
  | None -> Alcotest.fail "expected walk"

let test_exact_detour () =
  (* Only candidate is far off the segment: forced detour. *)
  match
    Kstroll.exact ~dist:line_dist ~candidates:[ 20 ] ~src:0 ~dst:10 ~k:3
  with
  | Some w ->
      Alcotest.check feq "0-20-10" 30.0 w.Kstroll.cost;
      Alcotest.(check (list int)) "walk" [ 0; 20; 10 ] w.Kstroll.nodes
  | None -> Alcotest.fail "expected walk"

let test_same_endpoints () =
  match
    Kstroll.cheapest_insertion ~dist:line_dist ~candidates:[ 2 ] ~src:0 ~dst:0
      ~k:2
  with
  | Some w ->
      Alcotest.check feq "out and back" 4.0 w.Kstroll.cost;
      Alcotest.(check int) "visits 2" 2 (Kstroll.distinct_count w.Kstroll.nodes)
  | None -> Alcotest.fail "expected walk"

(* Random euclidean metric on the plane (satisfies triangle inequality). *)
let plane_params =
  QCheck.make
    ~print:(fun (seed, m, k) -> Printf.sprintf "seed=%d m=%d k=%d" seed m k)
    QCheck.Gen.(triple (int_bound 1_000_000) (int_range 2 9) (int_range 2 8))

let plane_of seed m =
  let rng = Sof_util.Rng.create seed in
  Array.init (m + 2) (fun _ ->
      (Sof_util.Rng.float rng 100.0, Sof_util.Rng.float rng 100.0))

let euclid pts a b =
  let xa, ya = pts.(a) and xb, yb = pts.(b) in
  sqrt (((xa -. xb) ** 2.0) +. ((ya -. yb) ** 2.0))

let prop_heuristic_feasible =
  QCheck.Test.make ~count:300 ~name:"insertion walk visits k distinct nodes"
    plane_params (fun (seed, m, k) ->
      let k = min k (m + 2) in
      let pts = plane_of seed m in
      let dist = euclid pts in
      let candidates = List.init m (fun i -> i + 2) in
      match
        Kstroll.cheapest_insertion ~dist ~candidates ~src:0 ~dst:1 ~k
      with
      | None -> false
      | Some w ->
          Kstroll.distinct_count w.Kstroll.nodes >= k
          && List.hd w.Kstroll.nodes = 0
          && List.nth w.Kstroll.nodes (List.length w.Kstroll.nodes - 1) = 1
          && abs_float (Kstroll.walk_cost ~dist w.Kstroll.nodes -. w.Kstroll.cost)
             < 1e-6)

let prop_heuristic_vs_exact =
  (* Optimality probe backing the DESIGN.md substitution note: cheapest
     insertion stays within 2x of Held-Karp on random metric instances. *)
  QCheck.Test.make ~count:200 ~name:"insertion within 2x of exact k-stroll"
    plane_params (fun (seed, m, k) ->
      let k = min k (m + 2) in
      let pts = plane_of seed m in
      let dist = euclid pts in
      let candidates = List.init m (fun i -> i + 2) in
      match
        ( Kstroll.cheapest_insertion ~dist ~candidates ~src:0 ~dst:1 ~k,
          Kstroll.exact ~dist ~candidates ~src:0 ~dst:1 ~k )
      with
      | Some h, Some e ->
          h.Kstroll.cost >= e.Kstroll.cost -. 1e-6
          && h.Kstroll.cost <= (2.0 *. e.Kstroll.cost) +. 1e-6
      | None, None -> true
      | _ -> false)

let prop_exact_monotone_in_k =
  QCheck.Test.make ~count:150 ~name:"exact k-stroll cost nondecreasing in k"
    plane_params (fun (seed, m, k) ->
      let k = min k (m + 1) in
      let pts = plane_of seed m in
      let dist = euclid pts in
      let candidates = List.init m (fun i -> i + 2) in
      match
        ( Kstroll.exact ~dist ~candidates ~src:0 ~dst:1 ~k,
          Kstroll.exact ~dist ~candidates ~src:0 ~dst:1 ~k:(k + 1) )
      with
      | Some a, Some b -> b.Kstroll.cost >= a.Kstroll.cost -. 1e-6
      | _ -> false)

let suite =
  [
    Alcotest.test_case "direct k=2" `Quick test_direct_when_k2;
    Alcotest.test_case "line insertion free" `Quick test_line_insertion_free;
    Alcotest.test_case "infeasible" `Quick test_infeasible;
    Alcotest.test_case "endpoints in candidates" `Quick test_endpoints_ignored_in_candidates;
    Alcotest.test_case "exact line" `Quick test_exact_line;
    Alcotest.test_case "exact detour" `Quick test_exact_detour;
    Alcotest.test_case "same endpoints" `Quick test_same_endpoints;
  ]
  @ qsuite
      [ prop_heuristic_feasible; prop_heuristic_vs_exact; prop_exact_monotone_in_k ]
