module Graph = Sof_graph.Graph
module Binheap = Sof_graph.Binheap
module Union_find = Sof_graph.Union_find
module Dijkstra = Sof_graph.Dijkstra
module Mst = Sof_graph.Mst
module Traversal = Sof_graph.Traversal
module Metric = Sof_graph.Metric
open Testlib

(* --- Graph structure --- *)

let diamond () =
  Graph.create ~n:4 ~edges:[ (0, 1, 1.0); (0, 2, 2.0); (1, 3, 3.0); (2, 3, 1.0) ]

let test_graph_basic () =
  let g = diamond () in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check int) "m" 4 (Graph.m g);
  Alcotest.(check int) "deg 0" 2 (Graph.degree g 0);
  Alcotest.(check (option (float 0.0))) "weight" (Some 3.0) (Graph.edge_weight g 3 1);
  Alcotest.(check (option (float 0.0))) "absent" None (Graph.edge_weight g 0 3);
  Alcotest.check feq "total" 7.0 (Graph.total_weight g)

let test_graph_parallel_edges () =
  let g = Graph.create ~n:2 ~edges:[ (0, 1, 5.0); (1, 0, 2.0); (0, 1, 9.0) ] in
  Alcotest.(check int) "collapsed" 1 (Graph.m g);
  Alcotest.(check (option (float 0.0))) "cheapest kept" (Some 2.0)
    (Graph.edge_weight g 0 1)

let test_graph_rejects () =
  let bad name f = Alcotest.(check bool) name true (try ignore (f ()); false with Invalid_argument _ -> true) in
  bad "self-loop" (fun () -> Graph.create ~n:2 ~edges:[ (0, 0, 1.0) ]);
  bad "negative weight" (fun () -> Graph.create ~n:2 ~edges:[ (0, 1, -1.0) ]);
  bad "out of range" (fun () -> Graph.create ~n:2 ~edges:[ (0, 5, 1.0) ])

let test_graph_map_filter () =
  let g = diamond () in
  let doubled = Graph.map_weights g (fun _ _ w -> 2.0 *. w) in
  Alcotest.check feq "doubled" 14.0 (Graph.total_weight doubled);
  let light = Graph.filter_edges g (fun _ _ w -> w < 2.0) in
  Alcotest.(check int) "filtered" 2 (Graph.m light)

let test_graph_edges_normalized () =
  let g = diamond () in
  List.iter
    (fun (u, v, _) -> Alcotest.(check bool) "u<v" true (u < v))
    (Graph.edges g)

(* --- Binheap --- *)

let test_heap_ordering () =
  let h = Binheap.create () in
  let rng = Sof_util.Rng.create 21 in
  let xs = List.init 500 (fun _ -> Sof_util.Rng.uniform rng) in
  List.iter (fun x -> Binheap.push h x ()) xs;
  Alcotest.(check int) "size" 500 (Binheap.size h);
  let rec drain prev =
    match Binheap.pop h with
    | None -> ()
    | Some (p, ()) ->
        Alcotest.(check bool) "nondecreasing" true (p >= prev);
        drain p
  in
  drain neg_infinity;
  Alcotest.(check bool) "empty" true (Binheap.is_empty h)

let test_heap_peek () =
  let h = Binheap.create () in
  Binheap.push h 2.0 "b";
  Binheap.push h 1.0 "a";
  Alcotest.(check (option (pair (float 0.0) string))) "peek min"
    (Some (1.0, "a")) (Binheap.peek h);
  Alcotest.(check int) "peek keeps" 2 (Binheap.size h)

(* --- Union-find --- *)

let test_union_find () =
  let uf = Union_find.create 5 in
  Alcotest.(check int) "initial count" 5 (Union_find.count uf);
  Alcotest.(check bool) "union new" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "union dup" false (Union_find.union uf 1 0);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 1 3);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 2);
  Alcotest.(check bool) "not same" false (Union_find.same uf 0 4);
  Alcotest.(check int) "count" 2 (Union_find.count uf)

(* --- Dijkstra --- *)

let test_dijkstra_diamond () =
  let g = diamond () in
  let r = Dijkstra.run g 0 in
  Alcotest.check feq "dist 3" 3.0 r.Dijkstra.dist.(3);
  Alcotest.(check (option (list int))) "path" (Some [ 0; 2; 3 ])
    (Dijkstra.path_to r 3)

let test_dijkstra_unreachable () =
  let g = Graph.create ~n:3 ~edges:[ (0, 1, 1.0) ] in
  let r = Dijkstra.run g 0 in
  Alcotest.check feq "inf" infinity r.Dijkstra.dist.(2);
  Alcotest.(check (option (list int))) "no path" None (Dijkstra.path_to r 2)

let test_dijkstra_to_target () =
  let g = diamond () in
  (match Dijkstra.to_target g ~src:1 ~dst:2 with
  | Some (d, path) ->
      Alcotest.check feq "dist" 3.0 d;
      Alcotest.(check (list int)) "path" [ 1; 0; 2 ] path
  | None -> Alcotest.fail "expected path");
  Alcotest.(check (option (pair (float 0.0) (list int)))) "unreachable" None
    (Dijkstra.to_target (Graph.create ~n:3 ~edges:[ (0, 1, 1.0) ]) ~src:0 ~dst:2)

let test_multi_source () =
  let g =
    Graph.create ~n:5
      ~edges:[ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (3, 4, 1.0) ]
  in
  let r = Dijkstra.multi_source g [ 0; 4 ] in
  Alcotest.check feq "middle" 2.0 r.Dijkstra.dist.(2);
  Alcotest.check feq "near right" 1.0 r.Dijkstra.dist.(3)

let prop_dijkstra_vs_bellman =
  QCheck.Test.make ~count:200 ~name:"dijkstra agrees with bellman-ford"
    (graph_params_arb ~max_n:30) (fun params ->
      let g = graph_of_params params in
      let r = Dijkstra.run g 0 in
      let bf = Dijkstra.bellman_ford g 0 in
      Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-6) r.Dijkstra.dist bf)

let prop_dijkstra_path_consistent =
  QCheck.Test.make ~count:200 ~name:"dijkstra path cost equals dist"
    (graph_params_arb ~max_n:30) (fun params ->
      let g = graph_of_params params in
      let r = Dijkstra.run g 0 in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        match Dijkstra.path_to r v with
        | None -> ()
        | Some path ->
            let rec cost acc = function
              | a :: (b :: _ as rest) -> (
                  match Graph.edge_weight g a b with
                  | Some w -> cost (acc +. w) rest
                  | None -> infinity)
              | _ -> acc
            in
            if abs_float (cost 0.0 path -. r.Dijkstra.dist.(v)) > 1e-6 then
              ok := false
      done;
      !ok)

(* --- MST --- *)

let test_mst_square () =
  let g =
    Graph.create ~n:4
      ~edges:[ (0, 1, 1.0); (1, 2, 2.0); (2, 3, 3.0); (3, 0, 4.0); (0, 2, 5.0) ]
  in
  let t = Mst.kruskal g in
  Alcotest.(check int) "edges" 3 (List.length t);
  Alcotest.check feq "weight" 6.0 (Mst.weight t);
  let p = Mst.prim g ~root:2 in
  Alcotest.check feq "prim equals kruskal weight" (Mst.weight t) (Mst.weight p)

let prop_mst_prim_kruskal_agree =
  QCheck.Test.make ~count:200 ~name:"prim and kruskal weights agree"
    (graph_params_arb ~max_n:25) (fun params ->
      let g = graph_of_params params in
      abs_float (Mst.weight (Mst.kruskal g) -. Mst.weight (Mst.prim g ~root:0))
      < 1e-6)

let prop_mst_spans =
  QCheck.Test.make ~count:100 ~name:"mst spans all nodes"
    (graph_params_arb ~max_n:25) (fun params ->
      let g = graph_of_params params in
      Mst.spans g (Mst.kruskal g) (List.init (Graph.n g) Fun.id))

(* --- Traversal --- *)

let test_components () =
  let g = Graph.create ~n:5 ~edges:[ (0, 1, 1.0); (2, 3, 1.0) ] in
  Alcotest.(check int) "three components" 3 (Traversal.component_count g);
  Alcotest.(check bool) "not connected" false (Traversal.is_connected g);
  Alcotest.(check bool) "forest" true (Traversal.is_forest g)

let test_prune_leaves () =
  (* path 0-1-2-3 plus leaf 4 at 1; keep {0,3}: leaf 4 pruned. *)
  let edges = [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (1, 4, 1.0) ] in
  let keep v = v = 0 || v = 3 in
  let pruned = Traversal.prune_steiner_leaves edges ~keep in
  Alcotest.(check int) "three edges left" 3 (List.length pruned);
  Alcotest.(check bool) "leaf gone" true
    (not (List.exists (fun (u, v, _) -> u = 4 || v = 4) pruned))

let test_prune_cascades () =
  (* chain 0-1-2-3 keeping only 0: everything prunes away. *)
  let edges = [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ] in
  let pruned = Traversal.prune_steiner_leaves edges ~keep:(fun v -> v = 0) in
  Alcotest.(check int) "all pruned" 0 (List.length pruned)

(* --- Metric closure --- *)

let test_metric_closure () =
  let g = diamond () in
  let c = Metric.closure g [| 0; 3 |] in
  Alcotest.check feq "dist" 3.0 (Metric.distance c 0 1);
  Alcotest.(check (list int)) "path" [ 0; 2; 3 ] (Metric.path c 0 1);
  Alcotest.check feq "by nodes" 3.0 (Metric.distance_nodes c 0 3)

let prop_metric_triangle =
  (* Lemma 1 of the paper: closure distances satisfy triangle inequality. *)
  QCheck.Test.make ~count:200 ~name:"metric closure triangle inequality"
    (graph_params_arb ~max_n:15) (fun params ->
      let g = graph_of_params params in
      let n = Graph.n g in
      let terms = Array.init n Fun.id in
      let c = Metric.closure g terms in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          for d = 0 to n - 1 do
            if
              Metric.distance c a d
              > Metric.distance c a b +. Metric.distance c b d +. 1e-9
            then ok := false
          done
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "graph basics" `Quick test_graph_basic;
    Alcotest.test_case "graph parallel edges" `Quick test_graph_parallel_edges;
    Alcotest.test_case "graph rejects bad input" `Quick test_graph_rejects;
    Alcotest.test_case "graph map/filter" `Quick test_graph_map_filter;
    Alcotest.test_case "graph edges normalized" `Quick test_graph_edges_normalized;
    Alcotest.test_case "heap ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap peek" `Quick test_heap_peek;
    Alcotest.test_case "union-find" `Quick test_union_find;
    Alcotest.test_case "dijkstra diamond" `Quick test_dijkstra_diamond;
    Alcotest.test_case "dijkstra unreachable" `Quick test_dijkstra_unreachable;
    Alcotest.test_case "dijkstra to target" `Quick test_dijkstra_to_target;
    Alcotest.test_case "dijkstra multi-source" `Quick test_multi_source;
    Alcotest.test_case "mst square" `Quick test_mst_square;
    Alcotest.test_case "components" `Quick test_components;
    Alcotest.test_case "prune leaves" `Quick test_prune_leaves;
    Alcotest.test_case "prune cascades" `Quick test_prune_cascades;
    Alcotest.test_case "metric closure" `Quick test_metric_closure;
  ]
  @ qsuite
      [
        prop_dijkstra_vs_bellman;
        prop_dijkstra_path_consistent;
        prop_mst_prim_kruskal_agree;
        prop_mst_spans;
        prop_metric_triangle;
      ]
