module Graph = Sof_graph.Graph
module Problem = Sof.Problem
module Forest = Sof.Forest
module Validate = Sof.Validate
module Dynamic = Sof.Dynamic
module Sofda = Sof.Sofda
open Testlib

(* Richer fixture: grid-ish network with spare VMs for insertions. *)
let fixture () =
  let edges =
    [
      (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (3, 4, 1.0); (4, 5, 1.0);
      (2, 6, 1.0); (6, 7, 1.0); (3, 8, 1.0); (8, 9, 1.0); (1, 8, 2.0);
      (6, 9, 2.0); (0, 6, 3.0);
    ]
  in
  let g = Graph.create ~n:10 ~edges in
  let node_cost = [| 0.0; 1.0; 1.0; 1.0; 0.0; 0.0; 1.0; 0.0; 1.0; 0.0 |] in
  Problem.make ~graph:g ~node_cost ~vms:[ 1; 2; 3; 6; 8 ] ~sources:[ 0 ]
    ~dests:[ 5; 7 ] ~chain_length:2

let solved () =
  let p = fixture () in
  match Sofda.solve p with
  | Some r -> r.Sofda.forest
  | None -> Alcotest.fail "fixture should be solvable"

let test_leave_prunes () =
  let f = solved () in
  let u = Dynamic.destination_leave f 7 in
  Validate.check_exn u.Dynamic.forest;
  Alcotest.(check (list int)) "dests shrink" [ 5 ]
    u.Dynamic.problem.Problem.dests;
  Alcotest.(check bool) "cost does not grow" true
    (Forest.total_cost u.Dynamic.forest <= Forest.total_cost f +. 1e-9)

let test_leave_last_raises () =
  let f = solved () in
  let u = Dynamic.destination_leave f 7 in
  Alcotest.(check bool) "cannot drop last" true
    (try
       ignore (Dynamic.destination_leave u.Dynamic.forest 5);
       false
     with Invalid_argument _ -> true)

let test_leave_non_dest_raises () =
  let f = solved () in
  Alcotest.(check bool) "not a dest" true
    (try
       ignore (Dynamic.destination_leave f 0);
       false
     with Invalid_argument _ -> true)

let test_join () =
  let f = solved () in
  match Dynamic.destination_join f 9 with
  | None -> Alcotest.fail "join should succeed"
  | Some u ->
      Validate.check_exn u.Dynamic.forest;
      Alcotest.(check bool) "9 now a dest" true
        (Problem.is_dest u.Dynamic.problem 9);
      Alcotest.(check bool) "cost grew by a bounded amount" true
        (Forest.total_cost u.Dynamic.forest >= Forest.total_cost f -. 1e-9)

let test_join_then_leave_roundtrip () =
  let f = solved () in
  match Dynamic.destination_join f 9 with
  | None -> Alcotest.fail "join"
  | Some u ->
      let back = Dynamic.destination_leave u.Dynamic.forest 9 in
      Validate.check_exn back.Dynamic.forest;
      Alcotest.(check (list int)) "original dests" [ 5; 7 ]
        back.Dynamic.problem.Problem.dests

let test_vnf_delete () =
  let f = solved () in
  let u = Dynamic.vnf_delete f ~vnf:1 in
  Validate.check_exn u.Dynamic.forest;
  Alcotest.(check int) "chain shorter" 1
    u.Dynamic.problem.Problem.chain_length;
  Alcotest.(check bool) "cheaper or equal" true
    (Forest.total_cost u.Dynamic.forest <= Forest.total_cost f +. 1e-9)

let test_vnf_delete_bad_index () =
  let f = solved () in
  Alcotest.(check bool) "index 3 invalid" true
    (try
       ignore (Dynamic.vnf_delete f ~vnf:3);
       false
     with Invalid_argument _ -> true)

let test_vnf_insert () =
  let f = solved () in
  match Dynamic.vnf_insert f ~at:2 with
  | None -> Alcotest.fail "insert should succeed"
  | Some u ->
      Validate.check_exn u.Dynamic.forest;
      Alcotest.(check int) "chain longer" 3
        u.Dynamic.problem.Problem.chain_length

let test_vnf_insert_append () =
  let f = solved () in
  match Dynamic.vnf_insert f ~at:3 with
  | None -> Alcotest.fail "append should succeed"
  | Some u -> Validate.check_exn u.Dynamic.forest

let test_vnf_insert_then_delete () =
  let f = solved () in
  match Dynamic.vnf_insert f ~at:1 with
  | None -> Alcotest.fail "insert"
  | Some u ->
      let back = Dynamic.vnf_delete u.Dynamic.forest ~vnf:1 in
      Validate.check_exn back.Dynamic.forest;
      Alcotest.(check int) "chain back to 2" 2
        back.Dynamic.problem.Problem.chain_length

let test_reroute_link () =
  let f = solved () in
  (* reroute around every edge the forest uses; result must stay valid *)
  let edges = Forest.paid_edges f in
  List.iter
    (fun (u, v) ->
      match Dynamic.reroute_link f ~u ~v with
      | None -> ()
      | Some upd -> Validate.check_exn upd.Dynamic.forest)
    edges

let test_relocate_vm () =
  let f = solved () in
  let enabled = Forest.enabled_vms f in
  match enabled with
  | (vm, _) :: _ -> (
      match Dynamic.relocate_vm f ~vm with
      | None -> () (* no substitute available is acceptable *)
      | Some u ->
          Validate.check_exn u.Dynamic.forest;
          Alcotest.(check bool) "vm no longer enabled" true
            (not (List.mem_assoc vm (Forest.enabled_vms u.Dynamic.forest))))
  | [] -> Alcotest.fail "no enabled VMs"

let test_relocate_non_enabled_raises () =
  let f = solved () in
  let enabled = List.map fst (Forest.enabled_vms f) in
  let free =
    List.find_opt
      (fun v -> not (List.mem v enabled))
      f.Forest.problem.Problem.vms
  in
  match free with
  | None -> ()
  | Some vm ->
      Alcotest.(check bool) "raises" true
        (try
           ignore (Dynamic.relocate_vm f ~vm);
           false
         with Invalid_argument _ -> true)

(* Random churn: a sequence of joins and leaves keeps the forest valid. *)
let prop_membership_churn =
  QCheck.Test.make ~count:60 ~name:"join/leave churn preserves validity"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let p = random_instance ~chain_length:2 seed in
      match Sofda.solve p with
      | None -> true
      | Some r ->
          let rng = Sof_util.Rng.create (seed + 1) in
          let ok = ref true in
          let forest = ref r.Sofda.forest in
          for _ = 1 to 6 do
            if !ok then begin
              let prob = (!forest).Forest.problem in
              let dests = prob.Problem.dests in
              let non_dests =
                List.filter
                  (fun v -> not (List.mem v dests))
                  (List.init (Problem.n prob) Fun.id)
              in
              let join = Sof_util.Rng.bool rng in
              if join && non_dests <> [] then begin
                let v =
                  List.nth non_dests
                    (Sof_util.Rng.int rng (List.length non_dests))
                in
                match Dynamic.destination_join !forest v with
                | Some u ->
                    forest := u.Dynamic.forest;
                    ok := !ok && Validate.is_valid !forest
                | None -> ()
              end
              else if List.length dests > 1 then begin
                let v = List.nth dests (Sof_util.Rng.int rng (List.length dests)) in
                let u = Dynamic.destination_leave !forest v in
                forest := u.Dynamic.forest;
                ok := !ok && Validate.is_valid !forest
              end
            end
          done;
          !ok)

let prop_vnf_churn =
  QCheck.Test.make ~count:60 ~name:"vnf insert/delete churn preserves validity"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let p = random_instance ~chain_length:2 seed in
      match Sofda.solve p with
      | None -> true
      | Some r ->
          let rng = Sof_util.Rng.create (seed + 2) in
          let ok = ref true in
          let forest = ref r.Sofda.forest in
          for _ = 1 to 4 do
            if !ok then begin
              let l = (!forest).Forest.problem.Problem.chain_length in
              if Sof_util.Rng.bool rng || l <= 1 then begin
                let at = 1 + Sof_util.Rng.int rng (l + 1) in
                match Dynamic.vnf_insert !forest ~at with
                | Some u ->
                    forest := u.Dynamic.forest;
                    ok := !ok && Validate.is_valid !forest
                | None -> ()
              end
              else begin
                let vnf = 1 + Sof_util.Rng.int rng l in
                let u = Dynamic.vnf_delete !forest ~vnf in
                forest := u.Dynamic.forest;
                ok := !ok && Validate.is_valid !forest
              end
            end
          done;
          !ok)

let suite =
  [
    Alcotest.test_case "leave prunes" `Quick test_leave_prunes;
    Alcotest.test_case "leave last raises" `Quick test_leave_last_raises;
    Alcotest.test_case "leave non-dest raises" `Quick test_leave_non_dest_raises;
    Alcotest.test_case "join" `Quick test_join;
    Alcotest.test_case "join/leave roundtrip" `Quick test_join_then_leave_roundtrip;
    Alcotest.test_case "vnf delete" `Quick test_vnf_delete;
    Alcotest.test_case "vnf delete bad index" `Quick test_vnf_delete_bad_index;
    Alcotest.test_case "vnf insert" `Quick test_vnf_insert;
    Alcotest.test_case "vnf insert append" `Quick test_vnf_insert_append;
    Alcotest.test_case "vnf insert/delete" `Quick test_vnf_insert_then_delete;
    Alcotest.test_case "reroute link" `Quick test_reroute_link;
    Alcotest.test_case "relocate vm" `Quick test_relocate_vm;
    Alcotest.test_case "relocate non-enabled" `Quick test_relocate_non_enabled_raises;
  ]
  @ qsuite [ prop_membership_churn; prop_vnf_churn ]
