module Online = Sof_workload.Online
open Testlib

let sofda p = Option.map (fun r -> r.Sof.Sofda.forest) (Sof.Sofda.solve p)

let run_steps ?(n = 8) seed =
  let rng = Sof_util.Rng.create seed in
  Online.run ~rng
    (Sof_topology.Topology.softlayer ())
    Online.softlayer_config ~n_requests:n ~algo:sofda

let test_online_basic () =
  let steps = run_steps 1 in
  Alcotest.(check int) "step per request" 8 (List.length steps);
  List.iteri
    (fun i (s : Online.step) ->
      Alcotest.(check int) "request index" (i + 1) s.Online.request;
      Alcotest.(check bool) "cost nonneg" true (s.Online.cost >= 0.0))
    steps

let test_online_accumulates () =
  let steps = run_steps 2 in
  let series = Online.accumulated_series steps in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone accumulation" true (monotone series);
  let last = List.nth series (List.length series - 1) in
  let explicit =
    List.fold_left (fun acc (s : Online.step) -> acc +. s.Online.cost) 0.0 steps
  in
  Alcotest.check feq "accumulated equals sum of costs" explicit last

let test_online_serves () =
  let steps = run_steps 3 in
  List.iter
    (fun (s : Online.step) ->
      Alcotest.(check bool) "served" true s.Online.served)
    steps

let test_online_congestion_raises_marginal_cost () =
  (* later requests face loaded links: the average embedding cost of the
     second half should not be (much) below the first half *)
  let steps = run_steps ~n:16 4 in
  let costs = List.map (fun (s : Online.step) -> s.Online.cost) steps in
  let first = List.filteri (fun i _ -> i < 8) costs in
  let second = List.filteri (fun i _ -> i >= 8) costs in
  Alcotest.(check bool) "later requests cost more" true
    (Sof_util.Stats.mean second >= Sof_util.Stats.mean first *. 0.5)

let test_online_deterministic () =
  let a = Online.accumulated_series (run_steps 5) in
  let b = Online.accumulated_series (run_steps 5) in
  List.iter2 (fun x y -> Alcotest.check feq "same series" x y) a b

let test_online_sofda_beats_st_accumulated () =
  let run algo =
    let rng = Sof_util.Rng.create 6 in
    let steps =
      Online.run ~rng
        (Sof_topology.Topology.softlayer ())
        Online.softlayer_config ~n_requests:12 ~algo
    in
    List.nth (Online.accumulated_series steps) 11
  in
  let sofda_total = run sofda in
  let st_total = run Sof_baselines.Baselines.st in
  Alcotest.(check bool) "sofda accumulates less than st" true
    (sofda_total <= st_total +. 1e-6)

let test_adaptive_reroutes_under_pressure () =
  (* Congestion-blind embedding piles load onto shortest paths, so the
     re-join machinery has real work to do; it must both fire and lower
     the peak utilization versus the no-re-join run. *)
  let cfg = { Online.softlayer_config with Online.link_capacity = 50.0 } in
  let run threshold =
    let rng = Sof_util.Rng.create 9 in
    Online.run_adaptive ~pricing:`Hops ~rng ~utilization_threshold:threshold
      (Sof_topology.Topology.softlayer ())
      cfg ~n_requests:15 ~algo:sofda
  in
  let blind = run 99.0 in
  let adaptive = run 0.7 in
  Alcotest.(check int) "all arrivals stepped" 15
    (List.length adaptive.Online.steps);
  Alcotest.(check bool) "rerouted at least once" true
    (adaptive.Online.reroutes >= 1);
  Alcotest.(check bool) "peak utilization not worse" true
    (adaptive.Online.peak_utilization
    <= blind.Online.peak_utilization +. 1e-9)

let test_adaptive_matches_plain_when_idle () =
  (* With a sky-high threshold no re-join ever triggers, so the adaptive
     loop must reproduce the plain run exactly. *)
  let run_plain () =
    let rng = Sof_util.Rng.create 4 in
    Online.run ~rng
      (Sof_topology.Topology.softlayer ())
      Online.softlayer_config ~n_requests:6 ~algo:sofda
  in
  let run_ad () =
    let rng = Sof_util.Rng.create 4 in
    (Online.run_adaptive ~rng ~utilization_threshold:99.0
       (Sof_topology.Topology.softlayer ())
       Online.softlayer_config ~n_requests:6 ~algo:sofda)
      .Online.steps
  in
  List.iter2
    (fun (a : Online.step) (b : Online.step) ->
      Alcotest.check feq "same cost" a.Online.cost b.Online.cost)
    (run_plain ()) (run_ad ())

let suite =
  [
    Alcotest.test_case "online adaptive reroutes" `Quick
      test_adaptive_reroutes_under_pressure;
    Alcotest.test_case "online adaptive idle = plain" `Quick
      test_adaptive_matches_plain_when_idle;
    Alcotest.test_case "online basic" `Quick test_online_basic;
    Alcotest.test_case "online accumulates" `Quick test_online_accumulates;
    Alcotest.test_case "online serves" `Quick test_online_serves;
    Alcotest.test_case "online congestion" `Quick test_online_congestion_raises_marginal_cost;
    Alcotest.test_case "online deterministic" `Quick test_online_deterministic;
    Alcotest.test_case "online sofda vs st" `Quick test_online_sofda_beats_st_accumulated;
  ]
