module Graph = Sof_graph.Graph
module Mst = Sof_graph.Mst
module Steiner = Sof_steiner.Steiner
open Testlib

(* Classic Steiner example: square 0-1-2-3 of weight-2 sides with a center
   hub 4 joined to every corner at weight 1.  Optimal tree over the corners
   is the star through the hub (weight 4). *)
let hub_graph () =
  Graph.create ~n:5
    ~edges:
      [
        (0, 1, 2.0); (1, 2, 2.0); (2, 3, 2.0); (3, 0, 2.0);
        (0, 4, 1.0); (1, 4, 1.0); (2, 4, 1.0); (3, 4, 1.0);
      ]

let test_exact_star () =
  Alcotest.check feq "star optimum" 4.0
    (Steiner.exact_weight (hub_graph ()) [ 0; 1; 2; 3 ])

let test_approx_star () =
  let t = Steiner.approx (hub_graph ()) [ 0; 1; 2; 3 ] in
  Alcotest.(check bool) "within 2x of optimum" true (t.Steiner.weight <= 8.0);
  Alcotest.(check bool) "spans terminals" true
    (Mst.spans (hub_graph ()) t.Steiner.edges [ 0; 1; 2; 3 ])

let test_two_terminals_is_shortest_path () =
  let g = hub_graph () in
  let t = Steiner.approx g [ 0; 2 ] in
  Alcotest.check feq "0-4-2" 2.0 t.Steiner.weight;
  Alcotest.check feq "exact agrees" 2.0 (Steiner.exact_weight g [ 0; 2 ])

let test_single_terminal () =
  let t = Steiner.approx (hub_graph ()) [ 2 ] in
  Alcotest.check feq "empty tree" 0.0 t.Steiner.weight;
  Alcotest.(check int) "no edges" 0 (List.length t.Steiner.edges)

let test_disconnected_raises () =
  let g = Graph.create ~n:4 ~edges:[ (0, 1, 1.0); (2, 3, 1.0) ] in
  Alcotest.(check bool) "approx raises" true
    (try ignore (Steiner.approx g [ 0; 2 ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "exact raises" true
    (try ignore (Steiner.exact_weight g [ 0; 2 ]); false
     with Invalid_argument _ -> true)

let test_steiner_node_used () =
  (* Star where terminals are the leaves: KMB must keep the hub even though
     it is not a terminal. *)
  let g =
    Graph.create ~n:4 ~edges:[ (0, 3, 1.0); (1, 3, 1.0); (2, 3, 1.0) ]
  in
  let t = Steiner.approx g [ 0; 1; 2 ] in
  Alcotest.check feq "weight 3" 3.0 t.Steiner.weight;
  Alcotest.(check bool) "hub kept" true (Steiner.contains_node t 3)

let terminals_of_params (seed, n, _) k =
  (* k distinct terminals from [0, n). *)
  let rng = Sof_util.Rng.create (seed + 77) in
  Sof_util.Rng.sample_without_replacement rng (min k n) n

let prop_approx_within_2x =
  QCheck.Test.make ~count:120 ~name:"KMB within 2x of Dreyfus-Wagner"
    (graph_params_arb ~max_n:14) (fun params ->
      let g = graph_of_params params in
      let terminals = terminals_of_params params 5 in
      let opt = Steiner.exact_weight g terminals in
      let approx = (Steiner.approx g terminals).Steiner.weight in
      approx >= opt -. 1e-6 && approx <= (2.0 *. opt) +. 1e-6)

let prop_approx_is_tree_spanning =
  QCheck.Test.make ~count:120 ~name:"KMB output is a tree spanning terminals"
    (graph_params_arb ~max_n:20) (fun params ->
      let g = graph_of_params params in
      let terminals = terminals_of_params params 6 in
      let t = Steiner.approx g terminals in
      let sub = Graph.create ~n:(Graph.n g) ~edges:t.Steiner.edges in
      Sof_graph.Traversal.is_forest sub
      && Mst.spans g t.Steiner.edges terminals)

let prop_exact_le_mst =
  QCheck.Test.make ~count:120 ~name:"Steiner optimum <= spanning MST"
    (graph_params_arb ~max_n:12) (fun params ->
      let g = graph_of_params params in
      let terminals = List.init (Graph.n g) Fun.id in
      let opt = Steiner.exact_weight g terminals in
      opt <= Mst.weight (Mst.kruskal g) +. 1e-6)

let prop_exact_monotone_in_terminals =
  QCheck.Test.make ~count:100 ~name:"adding a terminal cannot cheapen Steiner"
    (graph_params_arb ~max_n:12) (fun params ->
      let g = graph_of_params params in
      let terminals = terminals_of_params params 4 in
      match terminals with
      | t0 :: rest when rest <> [] ->
          let small = Steiner.exact_weight g rest in
          let big = Steiner.exact_weight g (t0 :: rest) in
          big >= small -. 1e-6
      | _ -> true)

let suite =
  [
    Alcotest.test_case "exact star" `Quick test_exact_star;
    Alcotest.test_case "approx star" `Quick test_approx_star;
    Alcotest.test_case "two terminals" `Quick test_two_terminals_is_shortest_path;
    Alcotest.test_case "single terminal" `Quick test_single_terminal;
    Alcotest.test_case "disconnected raises" `Quick test_disconnected_raises;
    Alcotest.test_case "steiner node used" `Quick test_steiner_node_used;
  ]
  @ qsuite
      [
        prop_approx_within_2x;
        prop_approx_is_tree_spanning;
        prop_exact_le_mst;
        prop_exact_monotone_in_terminals;
      ]
