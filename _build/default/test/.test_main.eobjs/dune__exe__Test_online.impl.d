test/test_online.ml: Alcotest List Option Sof Sof_baselines Sof_topology Sof_util Sof_workload Testlib
