test/test_steiner.ml: Alcotest Fun List QCheck Sof_graph Sof_steiner Sof_util Testlib
