test/test_extra.ml: Alcotest Array Fun List QCheck Sof Sof_cost Sof_graph Sof_kstroll Sof_lp Sof_sdn Sof_steiner Sof_util String Testlib
