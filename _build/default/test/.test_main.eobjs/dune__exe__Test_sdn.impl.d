test/test_sdn.ml: Alcotest Array List QCheck Sof Sof_graph Sof_sdn Sof_topology Sof_util Sof_workload Testlib
