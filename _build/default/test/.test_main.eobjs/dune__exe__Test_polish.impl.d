test/test_polish.ml: Alcotest Array Format List Printf Sof Sof_graph Sof_lp Sof_sdn Sof_simnet Sof_topology Sof_util String Testlib
