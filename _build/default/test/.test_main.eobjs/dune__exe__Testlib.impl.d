test/testlib.ml: Alcotest Array Fun List Printf QCheck QCheck_alcotest Sof Sof_graph Sof_util
