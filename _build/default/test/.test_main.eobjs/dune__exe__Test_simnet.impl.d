test/test_simnet.ml: Alcotest List Option QCheck Sof Sof_graph Sof_simnet Sof_topology Sof_util Sof_workload Testlib
