test/test_lp.ml: Alcotest Array Float Fun List QCheck Sof_lp Sof_util Testlib
