test/test_util.ml: Alcotest Array Fun List Sof_util String
