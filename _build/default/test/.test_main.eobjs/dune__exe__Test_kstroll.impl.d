test/test_kstroll.ml: Alcotest Array List Printf QCheck Sof_kstroll Sof_util Testlib
