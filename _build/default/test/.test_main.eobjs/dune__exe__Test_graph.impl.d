test/test_graph.ml: Alcotest Array Fun List QCheck Sof_graph Sof_util Testlib
