test/test_dynamic.ml: Alcotest Fun List QCheck Sof Sof_graph Sof_util Testlib
