test/test_baselines.ml: Alcotest Array Printf QCheck Sof Sof_baselines Sof_topology Sof_util Sof_workload Testlib
