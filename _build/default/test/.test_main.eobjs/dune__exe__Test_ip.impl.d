test/test_ip.ml: Alcotest Array Fun List Option Printf QCheck Sof Sof_baselines Sof_graph Sof_lp Sof_util String Testlib
