test/test_topology.ml: Alcotest List Printf QCheck Sof Sof_cost Sof_graph Sof_topology Sof_util Sof_workload Testlib
