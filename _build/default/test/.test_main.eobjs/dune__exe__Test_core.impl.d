test/test_core.ml: Alcotest Array List Option QCheck Sof Sof_graph Sof_util Testlib
