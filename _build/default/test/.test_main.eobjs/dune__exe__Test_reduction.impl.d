test/test_reduction.ml: Alcotest Array Fun List Printf QCheck Sof Sof_graph Sof_lp Sof_steiner Sof_util Testlib
