(* Final polish suite: error formatting, pretty-printers, and small API
   corners not covered elsewhere. *)

module Graph = Sof_graph.Graph
module Dijkstra = Sof_graph.Dijkstra
module Mst = Sof_graph.Mst
module Metric = Sof_graph.Metric
module Rng = Sof_util.Rng
module Stats = Sof_util.Stats
module Problem = Sof.Problem
module Forest = Sof.Forest
module Validate = Sof.Validate
open Testlib

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec scan i = i + m <= n && (String.sub hay i m = needle || scan (i + 1)) in
  scan 0

let test_validate_to_string_all () =
  List.iter
    (fun (err, fragment) ->
      Alcotest.(check bool) fragment true
        (contains (Validate.to_string err) fragment))
    [
      (Validate.Bad_walk "x", "malformed walk");
      (Validate.Missing_edge (1, 2), "(1,2)");
      (Validate.Mark_not_vm 3, "non-VM node 3");
      (Validate.Bad_source 4, "source 4");
      (Validate.Vnf_conflict (5, 1, 2), "f1");
      (Validate.Unserved_destination 6, "destination 6");
    ]

let test_pretty_printers () =
  let g = Graph.create ~n:3 ~edges:[ (0, 1, 1.0); (1, 2, 1.0) ] in
  let p =
    Problem.make ~graph:g ~node_cost:[| 0.0; 1.0; 0.0 |] ~vms:[ 1 ]
      ~sources:[ 0 ] ~dests:[ 2 ] ~chain_length:1
  in
  let walk =
    { Forest.source = 0; hops = [| 0; 1 |]; marks = [ { Forest.pos = 1; vnf = 1 } ] }
  in
  let f = Forest.make p ~walks:[ walk ] ~delivery:[ (1, 2) ] in
  let s1 = Format.asprintf "%a" Problem.pp p in
  let s2 = Format.asprintf "%a" Forest.pp f in
  let s3 = Format.asprintf "%a" Graph.pp g in
  Alcotest.(check bool) "problem pp" true (contains s1 "|C|=1");
  Alcotest.(check bool) "forest pp has walk" true (contains s2 "1[f1]");
  Alcotest.(check bool) "forest pp has delivery" true (contains s2 "delivery");
  Alcotest.(check bool) "graph pp" true (contains s3 "n=3")

let test_stats_summary_pp () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0 ] in
  Alcotest.(check int) "n" 3 s.Stats.n;
  let txt = Format.asprintf "%a" Stats.pp_summary s in
  Alcotest.(check bool) "mean shown" true (contains txt "mean=2.000")

let test_rng_exponential_and_copy () =
  let r = Rng.create 42 in
  let xs = List.init 5000 (fun _ -> Rng.exponential r 2.0) in
  List.iter (fun x -> Alcotest.(check bool) "positive" true (x > 0.0)) xs;
  Alcotest.(check bool) "mean near 1/rate" true
    (abs_float (Stats.mean xs -. 0.5) < 0.05);
  let a = Rng.create 7 in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy preserves state" (Rng.int64 a) (Rng.int64 b);
  Alcotest.(check bool) "exponential rejects rate 0" true
    (try ignore (Rng.exponential a 0.0); false
     with Invalid_argument _ -> true)

let test_distance_matrix_symmetric () =
  let rng = Rng.create 3 in
  let g = random_connected_graph rng ~n:12 ~extra:6 ~w_max:5.0 in
  let terms = [| 0; 3; 7; 11 |] in
  let d = Dijkstra.distance_matrix g terms in
  for i = 0 to 3 do
    Alcotest.check feq "diagonal zero" 0.0 d.(i).(i);
    for j = 0 to 3 do
      Alcotest.check feq "symmetric" d.(i).(j) d.(j).(i)
    done
  done

let test_mst_spans_negative () =
  let g = Graph.create ~n:4 ~edges:[ (0, 1, 1.0); (2, 3, 1.0) ] in
  Alcotest.(check bool) "disconnected not spanning" false
    (Mst.spans g [ (0, 1, 1.0) ] [ 0; 1; 2 ])

let test_metric_not_found () =
  let g = Graph.create ~n:3 ~edges:[ (0, 1, 1.0); (1, 2, 1.0) ] in
  let c = Metric.closure g [| 0; 2 |] in
  Alcotest.(check bool) "non-terminal raises" true
    (try ignore (Metric.distance_nodes c 1 2); false with Not_found -> true);
  Alcotest.(check (list int)) "path_nodes" [ 0; 1; 2 ] (Metric.path_nodes c 0 2)

let test_fabric_kind_names () =
  let open Sof_sdn.Fabric in
  List.iter
    (fun (k, name) -> Alcotest.(check string) name name (kind_to_string k))
    [
      (Border_matrix, "border-matrix"); (Reachability, "reachability");
      (Chain_query, "chain-query"); (Steiner_update, "steiner-update");
      (Conflict_notice, "conflict-notice"); (Rule_install, "rule-install");
    ]

let test_controller_foreign_node () =
  let g = (Sof_topology.Topology.softlayer ()).Sof_topology.Topology.graph in
  let d = Sof_sdn.Domain.partition g ~k:3 in
  let c0 = Sof_sdn.Controller.create g d 0 in
  let foreign = List.hd d.Sof_sdn.Domain.members.(1) in
  Alcotest.(check bool) "does not cover foreign" false
    (Sof_sdn.Controller.covers c0 foreign);
  Alcotest.check feq "foreign distance infinite" infinity
    (Sof_sdn.Controller.intra_distance c0 (List.hd d.Sof_sdn.Domain.members.(0)) foreign)

let test_session_initial_state () =
  let s =
    Sof_simnet.Session.create Sof_simnet.Session.default_config ~num_vnfs:2
      ~path_latency:0.0
  in
  Alcotest.(check bool) "not done" false (Sof_simnet.Session.is_done s);
  Alcotest.(check int) "no stalls" 0 (Sof_simnet.Session.stall_count s);
  Alcotest.check feq "nothing played" 0.0 (Sof_simnet.Session.played s)

let test_ip_describe_classes () =
  let g = Graph.create ~n:4 ~edges:[ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ] in
  let p =
    Problem.make ~graph:g ~node_cost:[| 0.0; 1.0; 1.0; 0.0 |] ~vms:[ 1; 2 ]
      ~sources:[ 0 ] ~dests:[ 3 ] ~chain_length:2
  in
  let m = Sof.Ip_model.build p in
  let names =
    List.init m.Sof.Ip_model.var_count m.Sof.Ip_model.describe
  in
  List.iter
    (fun prefix ->
      Alcotest.(check bool) ("has " ^ prefix) true
        (List.exists (fun n -> contains n prefix) names))
    [ "gamma["; "sigma["; "pi["; "tau[" ]

let test_dynamic_join_existing_raises () =
  let g = Graph.create ~n:4 ~edges:[ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ] in
  let p =
    Problem.make ~graph:g ~node_cost:[| 0.0; 1.0; 1.0; 0.0 |] ~vms:[ 1; 2 ]
      ~sources:[ 0 ] ~dests:[ 3 ] ~chain_length:2
  in
  match Sof.Sofda.solve p with
  | None -> Alcotest.fail "solvable"
  | Some r ->
      Alcotest.(check bool) "joining a member raises" true
        (try
           ignore (Sof.Dynamic.destination_join r.Sof.Sofda.forest 3);
           false
         with Invalid_argument _ -> true)

let test_simplex_check_feasible_negative () =
  let p =
    {
      Sof_lp.Simplex.n_vars = 1;
      objective = [| 1.0 |];
      rows = [| [ (0, 1.0) ] |];
      relations = [| Sof_lp.Simplex.Ge |];
      rhs = [| 2.0 |];
    }
  in
  Alcotest.(check bool) "violating point rejected" false
    (Sof_lp.Simplex.check_feasible p [| 1.0 |]);
  Alcotest.(check bool) "negative rejected" false
    (Sof_lp.Simplex.check_feasible p [| -1.0 |]);
  Alcotest.(check bool) "satisfying point accepted" true
    (Sof_lp.Simplex.check_feasible p [| 3.0 |])

let test_tbl_float_row_fmt () =
  let t = Sof_util.Tbl.create [ "x"; "y" ] in
  Sof_util.Tbl.add_float_row ~fmt:(Printf.sprintf "%.0f") t "r" [ 3.7 ];
  Alcotest.(check bool) "custom fmt" true
    (contains (Sof_util.Tbl.render t) "r  4")

let suite =
  [
    Alcotest.test_case "validate to_string" `Quick test_validate_to_string_all;
    Alcotest.test_case "pretty printers" `Quick test_pretty_printers;
    Alcotest.test_case "stats summary pp" `Quick test_stats_summary_pp;
    Alcotest.test_case "rng exponential/copy" `Quick test_rng_exponential_and_copy;
    Alcotest.test_case "distance matrix symmetric" `Quick test_distance_matrix_symmetric;
    Alcotest.test_case "mst spans negative" `Quick test_mst_spans_negative;
    Alcotest.test_case "metric not found" `Quick test_metric_not_found;
    Alcotest.test_case "fabric kind names" `Quick test_fabric_kind_names;
    Alcotest.test_case "controller foreign node" `Quick test_controller_foreign_node;
    Alcotest.test_case "session initial state" `Quick test_session_initial_state;
    Alcotest.test_case "ip describe classes" `Quick test_ip_describe_classes;
    Alcotest.test_case "dynamic join existing" `Quick test_dynamic_join_existing_raises;
    Alcotest.test_case "simplex check_feasible" `Quick test_simplex_check_feasible_negative;
    Alcotest.test_case "tbl float fmt" `Quick test_tbl_float_row_fmt;
  ]
