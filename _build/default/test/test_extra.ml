(* Second-wave coverage: edge cases and cross-cutting properties that the
   per-module suites don't reach. *)

module Graph = Sof_graph.Graph
module Binheap = Sof_graph.Binheap
module Metric = Sof_graph.Metric
module Steiner = Sof_steiner.Steiner
module Kstroll = Sof_kstroll.Kstroll
module Cost_model = Sof_cost.Cost_model
module Problem = Sof.Problem
module Forest = Sof.Forest
module Validate = Sof.Validate
module Flow_table = Sof_sdn.Flow_table
open Testlib

(* --- graph edge cases ------------------------------------------------ *)

let test_graph_empty_and_singleton () =
  let empty = Graph.create ~n:0 ~edges:[] in
  Alcotest.(check int) "empty n" 0 (Graph.n empty);
  Alcotest.(check int) "empty m" 0 (Graph.m empty);
  let single = Graph.create ~n:1 ~edges:[] in
  Alcotest.(check int) "singleton degree" 0 (Graph.degree single 0);
  Alcotest.(check bool) "singleton connected" true
    (Sof_graph.Traversal.is_connected single)

let test_graph_add_edges () =
  let g = Graph.create ~n:3 ~edges:[ (0, 1, 2.0) ] in
  let g' = Graph.add_edges g [ (1, 2, 3.0); (0, 1, 1.0) ] in
  Alcotest.(check int) "two edges" 2 (Graph.m g');
  Alcotest.(check (option (float 0.0))) "cheapest kept" (Some 1.0)
    (Graph.edge_weight g' 0 1);
  Alcotest.(check int) "original untouched" 1 (Graph.m g)

let test_complete_of_matrix () =
  let d = [| [| 0.0; 1.0; 2.0 |]; [| 1.0; 0.0; infinity |]; [| 2.0; infinity; 0.0 |] |] in
  let g = Graph.complete_of_matrix d in
  Alcotest.(check int) "two finite edges" 2 (Graph.m g);
  Alcotest.(check bool) "asymmetric rejected" true
    (try
       ignore (Graph.complete_of_matrix [| [| 0.0; 1.0 |]; [| 2.0; 0.0 |] |]);
       false
     with Invalid_argument _ -> true)

let prop_heap_sorts =
  QCheck.Test.make ~count:200 ~name:"heap drains in sorted order"
    QCheck.(list (float_range 0.0 1000.0))
    (fun xs ->
      let h = Binheap.create () in
      List.iter (fun x -> Binheap.push h x x) xs;
      let rec drain acc =
        match Binheap.pop h with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort compare xs)

(* --- steiner: closure-reusing variant equals the fresh one ----------- *)

let prop_approx_in_equals_approx =
  QCheck.Test.make ~count:100 ~name:"approx_in = approx on shared closure"
    (graph_params_arb ~max_n:18) (fun params ->
      let g = graph_of_params params in
      let n = Graph.n g in
      let closure = Metric.closure g (Array.init n Fun.id) in
      let rng = Sof_util.Rng.create 5 in
      let terminals = Sof_util.Rng.sample_without_replacement rng (min 5 n) n in
      let a = Steiner.approx g terminals in
      let b = Steiner.approx_in g closure terminals in
      abs_float (a.Steiner.weight -. b.Steiner.weight) < 1e-9)

(* --- kstroll odds and ends ------------------------------------------- *)

let test_kstroll_walk_cost () =
  let dist a b = abs_float (float_of_int a -. float_of_int b) in
  Alcotest.check feq "walk cost" 8.0 (Kstroll.walk_cost ~dist [ 0; 5; 2 ]);
  Alcotest.check feq "empty walk" 0.0 (Kstroll.walk_cost ~dist []);
  Alcotest.(check int) "distinct" 2 (Kstroll.distinct_count [ 1; 2; 1 ])

let test_kstroll_exact_too_many () =
  let dist _ _ = 1.0 in
  Alcotest.(check bool) "21 candidates rejected" true
    (try
       ignore
         (Kstroll.exact ~dist
            ~candidates:(List.init 21 (fun i -> i + 2))
            ~src:0 ~dst:1 ~k:3);
       false
     with Invalid_argument _ -> true)

(* --- cost model -------------------------------------------------------- *)

let test_slope_at () =
  Alcotest.check feq "slope light" 1.0 (Cost_model.slope_at 0.1);
  Alcotest.check feq "slope heavy" 5000.0 (Cost_model.slope_at 1.15);
  Alcotest.(check bool) "negative rejected" true
    (try ignore (Cost_model.slope_at (-0.1)); false
     with Invalid_argument _ -> true)

let test_ledger_costed_graph () =
  let g = Graph.create ~n:3 ~edges:[ (0, 1, 9.0); (1, 2, 9.0) ] in
  let ledger =
    Sof_cost.Ledger.create ~graph:g ~link_capacity:10.0
      ~node_capacity:[| 0.0; 0.0; 0.0 |]
  in
  Sof_cost.Ledger.add_edge_load ledger 0 1 5.0;
  let priced = Sof_cost.Ledger.costed_graph ledger in
  Alcotest.(check (option (float 1e-9))) "loaded edge repriced"
    (Some (Cost_model.cost ~load:5.0 ~capacity:10.0))
    (Graph.edge_weight priced 0 1);
  Alcotest.(check (option (float 1e-9))) "idle edge free" (Some 0.0)
    (Graph.edge_weight priced 1 2)

(* --- Forest.shorten ---------------------------------------------------- *)

let shorten_fixture () =
  (* 0 -- 1 -- 2 -- 3 with a shortcut 1 -- 3; walk detours via 2. *)
  let g =
    Graph.create ~n:5
      ~edges:
        [ (0, 1, 1.0); (1, 2, 5.0); (2, 3, 5.0); (1, 3, 1.0); (3, 4, 1.0) ]
  in
  let p =
    Problem.make ~graph:g ~node_cost:[| 0.0; 1.0; 0.0; 1.0; 0.0 |]
      ~vms:[ 1; 3 ] ~sources:[ 0 ] ~dests:[ 4 ] ~chain_length:2
  in
  let walk =
    {
      Forest.source = 0;
      hops = [| 0; 1; 2; 3 |];
      marks = [ { Forest.pos = 1; vnf = 1 }; { Forest.pos = 3; vnf = 2 } ];
    }
  in
  (p, Forest.make p ~walks:[ walk ] ~delivery:[ (3, 4) ])

let test_shorten_takes_shortcut () =
  let _, f = shorten_fixture () in
  let f' = Forest.shorten f in
  Validate.check_exn f';
  (* detour 1-2-3 (cost 10) replaced by the direct 1-3 edge (cost 1) *)
  Alcotest.check feq "shortened cost" (1.0 +. 1.0 +. 1.0 +. 2.0)
    (Forest.total_cost f');
  Alcotest.(check bool) "improves" true
    (Forest.total_cost f' < Forest.total_cost f)

let prop_shorten_safe =
  QCheck.Test.make ~count:80 ~name:"shorten never hurts and stays valid"
    instance_arb (fun (seed, chain) ->
      let p = random_instance ~chain_length:chain seed in
      match Sof.Sofda.solve_aux ~t:(Sof.Transform.create p) p with
      | None -> true
      | Some r ->
          let f = r.Sof.Sofda.forest in
          let f' = Forest.shorten f in
          Validate.is_valid f'
          && Forest.total_cost f' <= Forest.total_cost f +. 1e-9)

(* --- transform exclusions ---------------------------------------------- *)

let prop_chain_walk_respects_exclude =
  QCheck.Test.make ~count:100 ~name:"excluded VMs never carry marks"
    instance_arb (fun (seed, chain) ->
      let p = random_instance ~chain_length:chain seed in
      let t = Sof.Transform.create p in
      match p.Problem.vms with
      | banned :: rest when List.length rest >= chain ->
          let src = List.hd p.Problem.sources in
          List.for_all
            (fun u ->
              match
                Sof.Transform.chain_walk
                  ~exclude:(fun v -> v = banned)
                  t ~src ~last_vm:u ~num_vnfs:chain
              with
              | None -> true
              | Some r ->
                  List.for_all (fun (_, vm) -> vm <> banned) r.Sof.Transform.vm_marks)
            rest
      | _ -> true)

(* --- flow table multicast merge ---------------------------------------- *)

let test_flow_table_merges_branches () =
  (* one source, two walks sharing hop 0->1 then branching: node 1 should
     hold a single rule with two next hops for the stage-0 stream *)
  let g =
    Graph.create ~n:6
      ~edges:[ (0, 1, 1.0); (1, 2, 1.0); (1, 3, 1.0); (2, 4, 1.0); (3, 5, 1.0) ]
  in
  let p =
    Problem.make ~graph:g ~node_cost:[| 0.0; 0.0; 1.0; 1.0; 0.0; 0.0 |]
      ~vms:[ 2; 3 ] ~sources:[ 0 ] ~dests:[ 4; 5 ] ~chain_length:1
  in
  let w vmpos =
    {
      Forest.source = 0;
      hops = [| 0; 1; vmpos |];
      marks = [ { Forest.pos = 2; vnf = 1 } ];
    }
  in
  let f = Forest.make p ~walks:[ w 2; w 3 ] ~delivery:[ (2, 4); (3, 5) ] in
  Validate.check_exn f;
  let rules = Flow_table.compile f in
  let branch =
    List.find
      (fun (r : Flow_table.rule) ->
        r.Flow_table.node = 1
        && r.Flow_table.matcher = Flow_table.Stream { source = 0; stage = 0 })
      rules
  in
  Alcotest.(check (list int)) "merged branch rule" [ 2; 3 ]
    branch.Flow_table.next_hops

(* --- ILP ub_binaries semantics ----------------------------------------- *)

let test_ilp_ub_binaries_equivalent () =
  let values = [| 6.0; 9.0; 4.0 |] and weights = [| 3.0; 4.0; 2.0 |] in
  let lp =
    {
      Sof_lp.Simplex.n_vars = 3;
      objective = Array.map (fun v -> -.v) values;
      rows = [| Array.to_list (Array.mapi (fun i w -> (i, w)) weights) |];
      relations = [| Sof_lp.Simplex.Le |];
      rhs = [| 6.0 |];
    }
  in
  let full = Sof_lp.Ilp.solve (Sof_lp.Ilp.make ~binaries:[ 0; 1; 2 ] lp) in
  let explicit =
    Sof_lp.Ilp.solve
      (Sof_lp.Ilp.make ~ub_binaries:[ 0; 1; 2 ] ~binaries:[ 0; 1; 2 ] lp)
  in
  match (full.Sof_lp.Ilp.best, explicit.Sof_lp.Ilp.best) with
  | Some (_, a), Some (_, b) -> Alcotest.check feq "same optimum" a b
  | _ -> Alcotest.fail "both should solve"

(* --- sofda consistency -------------------------------------------------- *)

let prop_solve_forest_matches_solve =
  QCheck.Test.make ~count:50 ~name:"solve_forest = solve . forest"
    instance_arb (fun (seed, chain) ->
      let p = random_instance ~chain_length:chain seed in
      match (Sof.Sofda.solve p, Sof.Sofda.solve_forest p) with
      | None, None -> true
      | Some r, Some f ->
          abs_float
            (Sof.Forest.total_cost r.Sof.Sofda.forest -. Sof.Forest.total_cost f)
          < 1e-9
      | _ -> false)

let prop_sofda_never_worse_than_grafted =
  QCheck.Test.make ~count:60 ~name:"solve <= each constituent construction"
    instance_arb (fun (seed, chain) ->
      let p = random_instance ~chain_length:chain seed in
      let t = Sof.Transform.create p in
      match Sof.Sofda.solve ~transform:t p with
      | None -> true
      | Some best ->
          let c = Sof.Forest.total_cost best.Sof.Sofda.forest in
          let le = function
            | None -> true
            | Some (r : Sof.Sofda.report) ->
                c <= Sof.Forest.total_cost r.Sof.Sofda.forest +. 1e-9
          in
          le (Sof.Sofda.solve_aux ~t p)
          && le (Sof.Sofda.solve_grafted ~source_setup:false ~t p))

(* --- Appendix D: charging the source's setup cost ----------------------- *)

let prop_source_setup_never_cheaper =
  QCheck.Test.make ~count:60 ~name:"Appendix-D pricing is never cheaper"
    instance_arb (fun (seed, chain) ->
      let p = random_instance ~chain_length:chain seed in
      let t = Sof.Transform.create p in
      let src = List.hd p.Problem.sources in
      List.for_all
        (fun u ->
          match
            ( Sof.Transform.chain_walk t ~src ~last_vm:u ~num_vnfs:chain,
              Sof.Transform.chain_walk ~source_setup:true t ~src ~last_vm:u
                ~num_vnfs:chain )
          with
          | Some plain, Some charged ->
              charged.Sof.Transform.cost >= plain.Sof.Transform.cost -. 1e-9
          | None, None -> true
          | _ -> false)
        p.Problem.vms)

let test_source_setup_adds_exactly_source_cost () =
  (* A source that happens to be a VM with cost c: the Appendix-D walk is
     exactly c more expensive. *)
  let g = Graph.create ~n:3 ~edges:[ (0, 1, 1.0); (1, 2, 1.0) ] in
  let p =
    Problem.make ~graph:g ~node_cost:[| 2.0; 1.0; 1.0 |] ~vms:[ 0; 1; 2 ]
      ~sources:[ 0 ] ~dests:[ 2 ] ~chain_length:2
  in
  let t = Sof.Transform.create p in
  match
    ( Sof.Transform.chain_walk t ~src:0 ~last_vm:2 ~num_vnfs:2,
      Sof.Transform.chain_walk ~source_setup:true t ~src:0 ~last_vm:2
        ~num_vnfs:2 )
  with
  | Some plain, Some charged ->
      Alcotest.check feq "delta = c(src)" 2.0
        (charged.Sof.Transform.cost -. plain.Sof.Transform.cost)
  | _ -> Alcotest.fail "both variants should produce walks"

(* --- DOT export ---------------------------------------------------------- *)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec scan i = i + m <= n && (String.sub hay i m = needle || scan (i + 1)) in
  scan 0

let test_to_dot_well_formed () =
  let _, f = shorten_fixture () in
  let dot = Forest.to_dot f in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 10 && String.sub dot 0 8 = "digraph ");
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains dot needle))
    [ "n0 ["; "shape=box"; "shape=doublecircle"; "shape=diamond"; "style=dashed" ]

let suite =
  [
    Alcotest.test_case "source setup delta" `Quick
      test_source_setup_adds_exactly_source_cost;
    Alcotest.test_case "to_dot well-formed" `Quick test_to_dot_well_formed;
    Alcotest.test_case "graph empty/singleton" `Quick test_graph_empty_and_singleton;
    Alcotest.test_case "graph add_edges" `Quick test_graph_add_edges;
    Alcotest.test_case "complete_of_matrix" `Quick test_complete_of_matrix;
    Alcotest.test_case "kstroll walk cost" `Quick test_kstroll_walk_cost;
    Alcotest.test_case "kstroll exact limit" `Quick test_kstroll_exact_too_many;
    Alcotest.test_case "cost slope_at" `Quick test_slope_at;
    Alcotest.test_case "ledger costed graph" `Quick test_ledger_costed_graph;
    Alcotest.test_case "shorten takes shortcut" `Quick test_shorten_takes_shortcut;
    Alcotest.test_case "flow table merges branches" `Quick test_flow_table_merges_branches;
    Alcotest.test_case "ilp ub_binaries" `Quick test_ilp_ub_binaries_equivalent;
  ]
  @ qsuite
      [
        prop_source_setup_never_cheaper;
        prop_heap_sorts;
        prop_approx_in_equals_approx;
        prop_shorten_safe;
        prop_chain_walk_respects_exclude;
        prop_solve_forest_matches_solve;
        prop_sofda_never_worse_than_grafted;
      ]
