module Simplex = Sof_lp.Simplex
module Ilp = Sof_lp.Ilp
open Testlib

let lp ~n ~objective ~rows ~relations ~rhs =
  {
    Simplex.n_vars = n;
    objective = Array.of_list objective;
    rows = Array.of_list rows;
    relations = Array.of_list relations;
    rhs = Array.of_list rhs;
  }

let expect_optimal name p expected_obj =
  match Simplex.solve p with
  | Simplex.Optimal { x; objective } ->
      Alcotest.check (Alcotest.float 1e-6) name expected_obj objective;
      Alcotest.(check bool) (name ^ " feasible") true
        (Simplex.check_feasible p x)
  | Simplex.Infeasible -> Alcotest.fail (name ^ ": infeasible")
  | Simplex.Unbounded -> Alcotest.fail (name ^ ": unbounded")
  | Simplex.Iteration_limit -> Alcotest.fail (name ^ ": iteration limit")

let test_basic_le () =
  expect_optimal "max x+y in simplex" (
    lp ~n:2 ~objective:[ -1.0; -1.0 ]
      ~rows:[ [ (0, 1.0); (1, 1.0) ] ]
      ~relations:[ Simplex.Le ] ~rhs:[ 1.0 ])
    (-1.0)

let test_ge () =
  expect_optimal "min x with x >= 3"
    (lp ~n:1 ~objective:[ 1.0 ] ~rows:[ [ (0, 1.0) ] ]
       ~relations:[ Simplex.Ge ] ~rhs:[ 3.0 ])
    3.0

let test_eq () =
  expect_optimal "min 2x+3y, x+y=4, x<=1"
    (lp ~n:2 ~objective:[ 2.0; 3.0 ]
       ~rows:[ [ (0, 1.0); (1, 1.0) ]; [ (0, 1.0) ] ]
       ~relations:[ Simplex.Eq; Simplex.Le ] ~rhs:[ 4.0; 1.0 ])
    11.0

let test_degenerate_classic () =
  (* Beale-style degeneracy: the Bland fallback must terminate. *)
  expect_optimal "beale"
    (lp ~n:4
       ~objective:[ -0.75; 150.0; -0.02; 6.0 ]
       ~rows:
         [
           [ (0, 0.25); (1, -60.0); (2, -0.04); (3, 9.0) ];
           [ (0, 0.5); (1, -90.0); (2, -0.02); (3, 3.0) ];
           [ (2, 1.0) ];
         ]
       ~relations:[ Simplex.Le; Simplex.Le; Simplex.Le ]
       ~rhs:[ 0.0; 0.0; 1.0 ])
    (-0.05)

let test_infeasible () =
  let p =
    lp ~n:1 ~objective:[ 1.0 ]
      ~rows:[ [ (0, 1.0) ]; [ (0, 1.0) ] ]
      ~relations:[ Simplex.Ge; Simplex.Le ] ~rhs:[ 5.0; 1.0 ]
  in
  Alcotest.(check bool) "infeasible" true (Simplex.solve p = Simplex.Infeasible)

let test_unbounded () =
  let p =
    lp ~n:1 ~objective:[ -1.0 ] ~rows:[ [ (0, 1.0) ] ]
      ~relations:[ Simplex.Ge ] ~rhs:[ 0.0 ]
  in
  Alcotest.(check bool) "unbounded" true (Simplex.solve p = Simplex.Unbounded)

let test_negative_rhs_normalization () =
  (* -x <= -2  ==  x >= 2 *)
  expect_optimal "negative rhs"
    (lp ~n:1 ~objective:[ 1.0 ] ~rows:[ [ (0, -1.0) ] ]
       ~relations:[ Simplex.Le ] ~rhs:[ -2.0 ])
    2.0

(* Random box LPs with analytic optima: min c.x s.t. x_i <= u_i. *)
let prop_box_lp =
  QCheck.Test.make ~count:200 ~name:"box LP analytic optimum"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Sof_util.Rng.create seed in
      let n = 1 + Sof_util.Rng.int rng 8 in
      let c = Array.init n (fun _ -> Sof_util.Rng.float rng 10.0 -. 5.0) in
      let u = Array.init n (fun _ -> 0.5 +. Sof_util.Rng.float rng 5.0) in
      let p =
        {
          Simplex.n_vars = n;
          objective = c;
          rows = Array.init n (fun i -> [ (i, 1.0) ]);
          relations = Array.make n Simplex.Le;
          rhs = u;
        }
      in
      let expected =
        Array.to_list (Array.mapi (fun i ci -> if ci < 0.0 then ci *. u.(i) else 0.0) c)
        |> List.fold_left ( +. ) 0.0
      in
      match Simplex.solve p with
      | Simplex.Optimal { objective; _ } -> abs_float (objective -. expected) < 1e-6
      | _ -> false)

(* Random transportation LPs checked for feasibility + weak duality against
   a greedy feasible solution. *)
let prop_transport_le_greedy =
  QCheck.Test.make ~count:100 ~name:"transport LP optimum <= greedy"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Sof_util.Rng.create seed in
      let s = 2 + Sof_util.Rng.int rng 2 in
      let d = 2 + Sof_util.Rng.int rng 2 in
      let supply = Array.init s (fun _ -> 1.0 +. Sof_util.Rng.float rng 4.0) in
      let demand_total = Array.fold_left ( +. ) 0.0 supply in
      let demand = Array.make d (demand_total /. float_of_int d) in
      let cost = Array.init s (fun _ -> Array.init d (fun _ -> Sof_util.Rng.float rng 9.0)) in
      let var i j = (i * d) + j in
      let rows_supply =
        Array.init s (fun i -> List.init d (fun j -> (var i j, 1.0)))
      in
      let rows_demand =
        Array.init d (fun j -> List.init s (fun i -> (var i j, 1.0)))
      in
      let p =
        {
          Simplex.n_vars = s * d;
          objective =
            Array.init (s * d) (fun k -> cost.(k / d).(k mod d));
          rows = Array.append rows_supply rows_demand;
          relations =
            Array.append (Array.make s Simplex.Le) (Array.make d Simplex.Eq);
          rhs = Array.append supply demand;
        }
      in
      (* greedy: fill each demand from sources in order *)
      let remaining = Array.copy supply in
      let greedy = ref 0.0 in
      Array.iteri
        (fun j dj ->
          let need = ref dj in
          Array.iteri
            (fun i _ ->
              let take = min !need remaining.(i) in
              remaining.(i) <- remaining.(i) -. take;
              need := !need -. take;
              greedy := !greedy +. (take *. cost.(i).(j)))
            remaining)
        demand;
      match Simplex.solve p with
      | Simplex.Optimal { objective; x } ->
          objective <= !greedy +. 1e-6 && Simplex.check_feasible p x
      | _ -> false)

(* --- ILP ------------------------------------------------------------- *)

let knapsack_ilp values weights cap =
  let n = Array.length values in
  Ilp.make
    ~binaries:(List.init n Fun.id)
    {
      Simplex.n_vars = n;
      objective = Array.map (fun v -> -.v) values;
      rows = [| Array.to_list (Array.mapi (fun i w -> (i, w)) weights) |];
      relations = [| Simplex.Le |];
      rhs = [| cap |];
    }

let brute_knapsack values weights cap =
  let n = Array.length values in
  let best = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let v = ref 0.0 and w = ref 0.0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        v := !v +. values.(i);
        w := !w +. weights.(i)
      end
    done;
    if !w <= cap +. 1e-9 && !v > !best then best := !v
  done;
  !best

let test_ilp_knapsack () =
  let values = [| 10.0; 13.0; 7.0; 8.0 |] in
  let weights = [| 5.0; 6.0; 3.0; 4.0 |] in
  let r = Ilp.solve (knapsack_ilp values weights 10.0) in
  (match r.Ilp.best with
  | Some (_, obj) ->
      Alcotest.check (Alcotest.float 1e-6) "knapsack optimum"
        (-.brute_knapsack values weights 10.0)
        obj
  | None -> Alcotest.fail "expected solution");
  Alcotest.(check bool) "status optimal" true (r.Ilp.status = Ilp.Optimal)

let prop_ilp_knapsack_random =
  QCheck.Test.make ~count:60 ~name:"B&B matches brute-force knapsack"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Sof_util.Rng.create seed in
      let n = 2 + Sof_util.Rng.int rng 7 in
      let values = Array.init n (fun _ -> 1.0 +. Sof_util.Rng.float rng 9.0) in
      let weights = Array.init n (fun _ -> 1.0 +. Sof_util.Rng.float rng 9.0) in
      let cap = 2.0 +. Sof_util.Rng.float rng 20.0 in
      let r = Ilp.solve (knapsack_ilp values weights cap) in
      let brute = brute_knapsack values weights cap in
      match r.Ilp.best with
      | Some (x, obj) ->
          abs_float (obj +. brute) < 1e-5
          && Array.for_all
               (fun v -> abs_float (v -. Float.round v) < 1e-5)
               x
      | None -> brute = 0.0)

let test_ilp_infeasible () =
  let p =
    Ilp.make ~binaries:[ 0; 1 ]
      {
        Simplex.n_vars = 2;
        objective = [| 1.0; 1.0 |];
        rows = [| [ (0, 1.0); (1, 1.0) ] |];
        relations = [| Simplex.Ge |];
        rhs = [| 3.0 |];
      }
  in
  let r = Ilp.solve p in
  Alcotest.(check bool) "infeasible" true (r.Ilp.status = Ilp.Infeasible)

let test_ilp_bound_sane () =
  let values = [| 4.0; 5.0; 6.0 |] and weights = [| 2.0; 3.0; 4.0 |] in
  let r = Ilp.solve (knapsack_ilp values weights 6.0) in
  (match r.Ilp.best with
  | Some (_, obj) ->
      Alcotest.(check bool) "bound <= incumbent" true (r.Ilp.bound <= obj +. 1e-9)
  | None -> Alcotest.fail "expected solution")

let suite =
  [
    Alcotest.test_case "basic le" `Quick test_basic_le;
    Alcotest.test_case "ge" `Quick test_ge;
    Alcotest.test_case "eq" `Quick test_eq;
    Alcotest.test_case "degenerate" `Quick test_degenerate_classic;
    Alcotest.test_case "infeasible" `Quick test_infeasible;
    Alcotest.test_case "unbounded" `Quick test_unbounded;
    Alcotest.test_case "negative rhs" `Quick test_negative_rhs_normalization;
    Alcotest.test_case "ilp knapsack" `Quick test_ilp_knapsack;
    Alcotest.test_case "ilp infeasible" `Quick test_ilp_infeasible;
    Alcotest.test_case "ilp bound" `Quick test_ilp_bound_sane;
  ]
  @ qsuite [ prop_box_lp; prop_transport_le_greedy; prop_ilp_knapsack_random ]
