module Graph = Sof_graph.Graph
module Traversal = Sof_graph.Traversal
module Topology = Sof_topology.Topology
module Cost_model = Sof_cost.Cost_model
module Ledger = Sof_cost.Ledger
open Testlib

let test_softlayer_counts () =
  let t = Topology.softlayer () in
  Alcotest.(check int) "27 access nodes" 27 (Graph.n t.Topology.graph);
  Alcotest.(check int) "49 links" 49 (Graph.m t.Topology.graph);
  Alcotest.(check int) "17 DCs" 17 (List.length t.Topology.dcs);
  Alcotest.(check bool) "connected" true (Traversal.is_connected t.Topology.graph)

let test_cogent_counts () =
  let t = Topology.cogent () in
  Alcotest.(check int) "190 access nodes" 190 (Graph.n t.Topology.graph);
  Alcotest.(check int) "260 links" 260 (Graph.m t.Topology.graph);
  Alcotest.(check int) "40 DCs" 40 (List.length t.Topology.dcs);
  Alcotest.(check bool) "connected" true (Traversal.is_connected t.Topology.graph)

let test_cogent_deterministic () =
  let a = Topology.cogent () and b = Topology.cogent () in
  Alcotest.(check bool) "same edges" true
    (Graph.edges a.Topology.graph = Graph.edges b.Topology.graph)

let test_testbed_counts () =
  let t = Topology.testbed () in
  Alcotest.(check int) "14 nodes" 14 (Graph.n t.Topology.graph);
  Alcotest.(check int) "20 links" 20 (Graph.m t.Topology.graph);
  Alcotest.(check bool) "connected" true (Traversal.is_connected t.Topology.graph)

let test_inet_counts () =
  let rng = Sof_util.Rng.create 7 in
  let t = Topology.inet ~rng ~nodes:500 ~links:1000 ~dcs:100 in
  Alcotest.(check int) "nodes" 500 (Graph.n t.Topology.graph);
  Alcotest.(check int) "links" 1000 (Graph.m t.Topology.graph);
  Alcotest.(check int) "DCs" 100 (List.length t.Topology.dcs);
  Alcotest.(check bool) "connected" true (Traversal.is_connected t.Topology.graph)

let test_inet_heavy_tail () =
  let rng = Sof_util.Rng.create 9 in
  let t = Topology.inet ~rng ~nodes:1000 ~links:2000 ~dcs:10 in
  let g = t.Topology.graph in
  let max_deg = ref 0 in
  for v = 0 to Graph.n g - 1 do
    max_deg := max !max_deg (Graph.degree g v)
  done;
  (* preferential attachment must produce hubs far above the mean degree 4 *)
  Alcotest.(check bool) "hub exists" true (!max_deg > 20)

let test_inet_rejects () =
  let rng = Sof_util.Rng.create 1 in
  Alcotest.(check bool) "too few links" true
    (try
       ignore (Topology.inet ~rng ~nodes:10 ~links:3 ~dcs:2);
       false
     with Invalid_argument _ -> true)

(* --- Cost model ---------------------------------------------------- *)

let test_cost_pieces () =
  (* values straight from the paper's case analysis (p = 1) *)
  Alcotest.check feq "light load" 0.2 (Cost_model.utilization_cost 0.2);
  Alcotest.check feq "u=1/3" (1.0 /. 3.0) (Cost_model.utilization_cost (1.0 /. 3.0));
  Alcotest.check feq "u=0.5" (3.0 *. 0.5 -. (2.0 /. 3.0)) (Cost_model.utilization_cost 0.5);
  Alcotest.check feq "u=0.8" (10.0 *. 0.8 -. (16.0 /. 3.0)) (Cost_model.utilization_cost 0.8);
  Alcotest.check feq "u=0.95" (70.0 *. 0.95 -. (178.0 /. 3.0)) (Cost_model.utilization_cost 0.95);
  Alcotest.check feq "u=1.05" (500.0 *. 1.05 -. (1468.0 /. 3.0)) (Cost_model.utilization_cost 1.05);
  Alcotest.check feq "u=1.2" (5000.0 *. 1.2 -. (16318.0 /. 3.0)) (Cost_model.utilization_cost 1.2)

let test_cost_continuous_at_breakpoints () =
  List.iter
    (fun b ->
      let below = Cost_model.utilization_cost (b -. 1e-9) in
      let above = Cost_model.utilization_cost (b +. 1e-9) in
      Alcotest.(check bool)
        (Printf.sprintf "continuous at %.3f" b)
        true
        (abs_float (below -. above) < 1e-4))
    Cost_model.breakpoints

let prop_cost_monotone_convex =
  QCheck.Test.make ~count:200 ~name:"cost increasing and convex in load"
    QCheck.(pair (float_bound_inclusive 1.2) (float_bound_inclusive 1.2))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let c = Cost_model.utilization_cost in
      c lo <= c hi +. 1e-9
      &&
      let mid = (lo +. hi) /. 2.0 in
      c mid <= ((c lo +. c hi) /. 2.0) +. 1e-9)

let test_cost_scaling () =
  (* cost scales with capacity: c(l, p) = p * c(l/p, 1) *)
  Alcotest.check feq "homogeneous" (100.0 *. Cost_model.utilization_cost 0.5)
    (Cost_model.cost ~load:50.0 ~capacity:100.0)

let test_ledger () =
  let g = Graph.create ~n:3 ~edges:[ (0, 1, 1.0); (1, 2, 1.0) ] in
  let ledger =
    Ledger.create ~graph:g ~link_capacity:10.0 ~node_capacity:[| 0.0; 5.0; 0.0 |]
  in
  Alcotest.check feq "zero load zero cost" 0.0 (Ledger.edge_cost ledger 0 1);
  Ledger.add_edge_load ledger 0 1 2.0;
  Alcotest.check feq "load 2" 2.0 (Ledger.edge_load ledger 1 0);
  Alcotest.check feq "utilization" 0.2 (Ledger.edge_utilization ledger 0 1);
  Ledger.add_node_load ledger 1 3.0;
  Alcotest.check feq "node cost" (Cost_model.cost ~load:3.0 ~capacity:5.0)
    (Ledger.node_cost ledger 1);
  Alcotest.(check bool) "bad edge raises" true
    (try
       Ledger.add_edge_load ledger 0 2 1.0;
       false
     with Invalid_argument _ -> true);
  Ledger.reset ledger;
  Alcotest.check feq "reset" 0.0 (Ledger.edge_load ledger 0 1)

(* --- Instance builder ---------------------------------------------- *)

let test_instance_draw () =
  let rng = Sof_util.Rng.create 3 in
  let topo = Topology.softlayer () in
  let p =
    Sof_workload.Instance.draw ~rng topo Sof_workload.Instance.default_params
  in
  Alcotest.(check int) "node count" (27 + 25) (Sof.Problem.n p);
  Alcotest.(check int) "vms" 25 (List.length p.Sof.Problem.vms);
  Alcotest.(check int) "sources" 14 (List.length p.Sof.Problem.sources);
  Alcotest.(check int) "dests" 6 (List.length p.Sof.Problem.dests);
  (* both sets live on access nodes, never on VM ids *)
  List.iter
    (fun v -> Alcotest.(check bool) "access node" true (v < 27))
    (p.Sof.Problem.sources @ p.Sof.Problem.dests)

let test_instance_setup_multiplier () =
  let topo = Topology.softlayer () in
  let draw mult =
    let rng = Sof_util.Rng.create 5 in
    Sof_workload.Instance.draw ~rng topo
      {
        Sof_workload.Instance.default_params with
        Sof_workload.Instance.setup_multiplier = mult;
      }
  in
  let p1 = draw 1.0 and p3 = draw 3.0 in
  List.iter2
    (fun v1 v3 ->
      Alcotest.check feq "3x setup"
        (3.0 *. Sof.Problem.setup_cost p1 v1)
        (Sof.Problem.setup_cost p3 v3))
    p1.Sof.Problem.vms p3.Sof.Problem.vms

let test_instance_deterministic () =
  let topo = Topology.softlayer () in
  let d () =
    let rng = Sof_util.Rng.create 8 in
    Sof_workload.Instance.draw ~rng topo Sof_workload.Instance.default_params
  in
  let a = d () and b = d () in
  Alcotest.(check bool) "same instance" true
    (Graph.edges a.Sof.Problem.graph = Graph.edges b.Sof.Problem.graph
    && a.Sof.Problem.sources = b.Sof.Problem.sources)

let suite =
  [
    Alcotest.test_case "softlayer counts" `Quick test_softlayer_counts;
    Alcotest.test_case "cogent counts" `Quick test_cogent_counts;
    Alcotest.test_case "cogent deterministic" `Quick test_cogent_deterministic;
    Alcotest.test_case "testbed counts" `Quick test_testbed_counts;
    Alcotest.test_case "inet counts" `Quick test_inet_counts;
    Alcotest.test_case "inet heavy tail" `Quick test_inet_heavy_tail;
    Alcotest.test_case "inet rejects" `Quick test_inet_rejects;
    Alcotest.test_case "cost pieces" `Quick test_cost_pieces;
    Alcotest.test_case "cost continuity" `Quick test_cost_continuous_at_breakpoints;
    Alcotest.test_case "cost scaling" `Quick test_cost_scaling;
    Alcotest.test_case "ledger" `Quick test_ledger;
    Alcotest.test_case "instance draw" `Quick test_instance_draw;
    Alcotest.test_case "instance setup multiplier" `Quick test_instance_setup_multiplier;
    Alcotest.test_case "instance deterministic" `Quick test_instance_deterministic;
  ]
  @ qsuite [ prop_cost_monotone_convex ]
