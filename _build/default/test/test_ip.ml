module Graph = Sof_graph.Graph
module Problem = Sof.Problem
module Forest = Sof.Forest
module Ip_model = Sof.Ip_model
module Ilp = Sof_lp.Ilp
open Testlib

let chain_instance () =
  let g =
    Graph.create ~n:5
      ~edges:[ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (2, 4, 1.0) ]
  in
  Problem.make ~graph:g ~node_cost:[| 0.0; 1.0; 1.0; 0.0; 0.0 |]
    ~vms:[ 1; 2 ] ~sources:[ 0 ] ~dests:[ 3; 4 ] ~chain_length:2

let islands () =
  let g =
    Graph.create ~n:8
      ~edges:
        [
          (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (4, 5, 1.0); (5, 6, 1.0);
          (6, 7, 1.0); (3, 7, 50.0);
        ]
  in
  Problem.make ~graph:g
    ~node_cost:[| 0.0; 1.0; 1.0; 0.0; 0.0; 1.0; 1.0; 0.0 |]
    ~vms:[ 1; 2; 5; 6 ] ~sources:[ 0; 4 ] ~dests:[ 3; 7 ] ~chain_length:2

let solve p = Ip_model.solve ~node_limit:120 ~time_budget:8.0 p

(* Small instances keep the B&B cheap inside the test suite. *)
let tiny_instance seed =
  let rng = Sof_util.Rng.create seed in
  let n = 7 + Sof_util.Rng.int rng 3 in
  let g = random_connected_graph rng ~n ~extra:3 ~w_max:4.0 in
  let ids = Array.init n Fun.id in
  Sof_util.Rng.shuffle rng ids;
  let vms = [ ids.(0); ids.(1); ids.(2) ] in
  let sources = [ ids.(3) ] in
  let dests = [ ids.(4); ids.(5) ] in
  let node_cost = Array.make n 0.0 in
  List.iter (fun v -> node_cost.(v) <- 0.5 +. Sof_util.Rng.float rng 2.0) vms;
  Problem.make ~graph:g ~node_cost ~vms ~sources ~dests ~chain_length:2

let test_ip_chain_optimum () =
  let r = solve (chain_instance ()) in
  match r.Ilp.best with
  | Some (_, obj) ->
      Alcotest.check feq "optimum 6" 6.0 obj;
      Alcotest.(check bool) "proven" true (r.Ilp.status = Ilp.Optimal)
  | None -> Alcotest.fail "expected solution"

let test_ip_islands_optimum () =
  let r = solve (islands ()) in
  match r.Ilp.best with
  | Some (_, obj) -> Alcotest.check feq "optimum 10" 10.0 obj
  | None -> Alcotest.fail "expected solution"

let test_ip_bound_below_sofda () =
  for seed = 1 to 6 do
    let p = tiny_instance seed in
    match Sof.Sofda.solve p with
    | None -> ()
    | Some res ->
        let r = solve p in
        let sofda_ip_obj = Ip_model.objective_of_forest res.Sof.Sofda.forest in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: bound <= SOFDA" seed)
          true
          (r.Ilp.bound <= sofda_ip_obj +. 1e-6)
  done

let test_ip_describe () =
  let m = Ip_model.build (chain_instance ()) in
  Alcotest.(check bool) "gamma name" true
    (String.length (m.Ip_model.describe 0) > 0);
  Alcotest.(check bool) "tau name" true
    (String.length (m.Ip_model.describe (m.Ip_model.var_count - 1)) > 0)

let test_objective_of_forest_shares_layers () =
  (* two walks from different sources crossing one edge in the same layer
     are priced once by the IP rule *)
  let p = islands () in
  match Sof.Sofda.solve p with
  | None -> Alcotest.fail "solvable"
  | Some r ->
      let ip_obj = Ip_model.objective_of_forest r.Sof.Sofda.forest in
      Alcotest.(check bool) "ip obj <= forest cost" true
        (ip_obj <= Forest.total_cost r.Sof.Sofda.forest +. 1e-9)

let prop_ip_optimum_is_lower_bound =
  QCheck.Test.make ~count:8 ~name:"IP optimum lower-bounds every algorithm"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let p = tiny_instance seed in
      let r = Ip_model.solve ~node_limit:60 ~time_budget:4.0 p in
      let check forest_opt =
        match forest_opt with
        | None -> true
        | Some f -> r.Ilp.bound <= Ip_model.objective_of_forest f +. 1e-5
      in
      check (Option.map (fun x -> x.Sof.Sofda.forest) (Sof.Sofda.solve p))
      && check (Sof_baselines.Baselines.est p))

let suite =
  [
    Alcotest.test_case "ip chain optimum" `Quick test_ip_chain_optimum;
    Alcotest.test_case "ip islands optimum" `Quick test_ip_islands_optimum;
    Alcotest.test_case "ip bound below sofda" `Slow test_ip_bound_below_sofda;
    Alcotest.test_case "ip describe" `Quick test_ip_describe;
    Alcotest.test_case "ip objective sharing" `Quick test_objective_of_forest_shares_layers;
  ]
  @ qsuite [ prop_ip_optimum_is_lower_bound ]
