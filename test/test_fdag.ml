(* Unit tests for the shared-DAG forest evaluator: hash-consing, dirty
   marking after splices, and diamond sharing across walks.  The broad
   bit-identity contract lives in the [fdag-equiv] fuzz oracle; these
   tests pin the *mechanism* — which nodes get rebuilt — via
   [Fdag.last_stats]. *)

module Graph = Sof_graph.Graph
module Problem = Sof.Problem
module Forest = Sof.Forest
module Validate = Sof.Validate
module Dynamic = Sof.Dynamic
module Sofda = Sof.Sofda
module Fdag = Sof.Fdag

(* Same fixture as test_dynamic: grid-ish network with spare VMs. *)
let fixture () =
  let edges =
    [
      (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (3, 4, 1.0); (4, 5, 1.0);
      (2, 6, 1.0); (6, 7, 1.0); (3, 8, 1.0); (8, 9, 1.0); (1, 8, 2.0);
      (6, 9, 2.0); (0, 6, 3.0);
    ]
  in
  let g = Graph.create ~n:10 ~edges in
  let node_cost = [| 0.0; 1.0; 1.0; 1.0; 0.0; 0.0; 1.0; 0.0; 1.0; 0.0 |] in
  Problem.make ~graph:g ~node_cost ~vms:[ 1; 2; 3; 6; 8 ] ~sources:[ 0 ]
    ~dests:[ 5; 7 ] ~chain_length:2

let solved () =
  let p = fixture () in
  match Sofda.solve p with
  | Some r -> r.Sofda.forest
  | None -> Alcotest.fail "fixture should be solvable"

let check_matches_legacy f (r : Fdag.result) =
  Alcotest.(check bool)
    "valid agrees" (Validate.check f = Ok ()) r.Fdag.valid;
  Alcotest.(check (float 0.0))
    "total cost bit-identical" (Forest.total_cost f) r.Fdag.total_cost;
  Alcotest.(check (list (pair int int)))
    "paid edges agree" (Forest.paid_edges f) r.Fdag.paid_edges;
  Alcotest.(check (list (pair int int)))
    "enabled vms agree" (Forest.enabled_vms f) r.Fdag.enabled_vms

(* First eval of a fresh context is a full eval; re-evaluating the same
   physical forest is answered by the memo and counts fully shared. *)
let test_memo_hit () =
  let f = solved () in
  let ctx = Fdag.create () in
  let r1 = Fdag.eval ctx f in
  check_matches_legacy f r1;
  let s1 = Fdag.last_stats ctx in
  Alcotest.(check int) "first eval is full" 1 s1.Fdag.full_evals;
  let r2 = Fdag.eval ctx f in
  let s2 = Fdag.last_stats ctx in
  Alcotest.(check int) "memo hit is not full" 0 s2.Fdag.full_evals;
  Alcotest.(check bool) "memo hit shares" true (s2.Fdag.nodes_shared > 0);
  Alcotest.(check (float 0.0))
    "memoized result identical" r1.Fdag.total_cost r2.Fdag.total_cost

(* A structurally equal but physically fresh forest hash-conses onto the
   warm walk nodes: nothing is rebuilt, the eval is not "full". *)
let test_hash_consing () =
  let f = solved () in
  let ctx = Fdag.create () in
  ignore (Fdag.eval ctx f);
  let copy =
    {
      f with
      Forest.walks =
        List.map
          (fun (w : Forest.walk) ->
            { w with Forest.hops = Array.copy w.Forest.hops })
          f.Forest.walks;
    }
  in
  let r = Fdag.eval ctx copy in
  check_matches_legacy copy r;
  let s = Fdag.last_stats ctx in
  Alcotest.(check int) "warm eval is not full" 0 s.Fdag.full_evals;
  Alcotest.(check int) "no nodes rebuilt" 0 s.Fdag.reeval_dirty;
  Alcotest.(check bool) "every walk shared" true (s.Fdag.nodes_shared > 0)

(* After a splice only the touched walks are rebuilt: dirty-region
   recomputation, not a from-scratch pass. *)
let test_dirty_marking () =
  let f = solved () in
  let ctx = Fdag.create () in
  ignore (Fdag.eval ctx f);
  match Dynamic.destination_join f 9 with
  | None -> Alcotest.fail "join should succeed"
  | Some u ->
      let f' = u.Dynamic.forest in
      let r = Fdag.eval ctx f' in
      check_matches_legacy f' r;
      let s = Fdag.last_stats ctx in
      Alcotest.(check int) "warm eval is not full" 0 s.Fdag.full_evals;
      Alcotest.(check bool)
        "untouched walks shared" true (s.Fdag.nodes_shared > 0);
      (* a cold context rebuilds every node of f'; the warm one only the
         region the join touched *)
      let cold = Fdag.create () in
      ignore (Fdag.eval cold f');
      let cold_built = (Fdag.last_stats cold).Fdag.reeval_dirty in
      Alcotest.(check bool)
        "dirty region strictly smaller than a full rebuild" true
        (s.Fdag.reeval_dirty < cold_built)

(* Diamond sharing: two walks with identical hops and marks collapse to
   one walk node — the second occurrence costs nothing to intern, and a
   second forest containing the same walk shares it too. *)
let test_diamond_sharing () =
  let p = fixture () in
  let mk_walk () =
    {
      Forest.source = 0;
      hops = [| 0; 1; 2 |];
      marks = [ { Forest.pos = 1; vnf = 1 }; { Forest.pos = 2; vnf = 2 } ];
    }
  in
  let twin =
    Forest.make p
      ~walks:[ mk_walk (); mk_walk () ]
      ~delivery:[ (2, 3); (3, 4); (4, 5); (2, 6); (6, 7) ]
  in
  let ctx = Fdag.create () in
  let r = Fdag.eval ctx twin in
  check_matches_legacy twin r;
  (* same content -> one node: a fresh single-walk forest over the same
     walk reuses it even though this forest was never evaluated *)
  let single =
    Forest.make p ~walks:[ mk_walk () ]
      ~delivery:[ (2, 3); (3, 4); (4, 5); (2, 6); (6, 7) ]
  in
  let r1 = Fdag.eval ctx single in
  check_matches_legacy single r1;
  let s = Fdag.last_stats ctx in
  Alcotest.(check int) "diamond walk shared, not rebuilt" 0
    s.Fdag.reeval_dirty;
  Alcotest.(check bool) "shared node reused" true (s.Fdag.nodes_shared > 0)

(* The cumulative counters tell the incremental story: along a splice
   script, dirty rebuilds stay far below a full-eval-per-event bill. *)
let test_counter_accumulation () =
  let f = solved () in
  let ctx = Fdag.create () in
  ignore (Fdag.eval ctx f);
  let cur = ref f in
  (match Dynamic.destination_join !cur 9 with
  | Some u -> cur := u.Dynamic.forest
  | None -> ());
  ignore (Fdag.eval ctx !cur);
  (match Dynamic.vnf_insert !cur ~at:1 with
  | Some u -> cur := u.Dynamic.forest
  | None -> ());
  ignore (Fdag.eval ctx !cur);
  let s = Fdag.stats ctx in
  Alcotest.(check bool) "several evals" true (s.Fdag.evals >= 3);
  Alcotest.(check int) "exactly one full eval" 1 s.Fdag.full_evals;
  Alcotest.(check bool) "warm evals kept sharing" true
    (s.Fdag.nodes_shared > 0)

(* Validity split: an invalid forest must carry the same error list as
   Validate.check, through [Fdag.validity]. *)
let test_invalid_errors () =
  let p = fixture () in
  let broken =
    Forest.make p
      ~walks:
        [
          {
            Forest.source = 0;
            hops = [| 0; 1; 2 |];
            marks =
              [ { Forest.pos = 1; vnf = 1 }; { Forest.pos = 2; vnf = 2 } ];
          };
        ]
      ~delivery:[] (* destinations unserved *)
  in
  let ctx = Fdag.create () in
  let r = Fdag.eval ctx broken in
  Alcotest.(check bool) "invalid" true (not r.Fdag.valid);
  match (Validate.check broken, Fdag.validity r) with
  | Error legacy, Error ours ->
      Alcotest.(check int) "same error count" (List.length legacy)
        (List.length ours);
      Alcotest.(check string) "same error text"
        (String.concat "; " (List.map Validate.to_string legacy))
        (String.concat "; " (List.map Validate.to_string ours))
  | _ -> Alcotest.fail "both must reject"

let suite =
  [
    Alcotest.test_case "memo hit on identical forest" `Quick test_memo_hit;
    Alcotest.test_case "hash-consing across fresh copies" `Quick
      test_hash_consing;
    Alcotest.test_case "dirty marking after a splice" `Quick
      test_dirty_marking;
    Alcotest.test_case "diamond sharing across walks and forests" `Quick
      test_diamond_sharing;
    Alcotest.test_case "counters accumulate along a script" `Quick
      test_counter_accumulation;
    Alcotest.test_case "invalid forests carry legacy errors" `Quick
      test_invalid_errors;
  ]
