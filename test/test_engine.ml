(* The batched serving engine (Sof_serve.Engine): the batch former's
   edge cases, shard/batch determinism against the sequential server,
   and kill-9-mid-batch crash recovery through the shared WAL.

   The determinism checks are the layer's whole contract: in the
   machine-deterministic regimes (deadline 0 or infinity) the engine
   must be bit-identical to [Serve.run_script] for any shard count and
   batch size, so attaching the engine can never change what a
   deployment commits. *)

module Rng = Sof_util.Rng
module Stream = Sof_workload.Stream
module Online = Sof_workload.Online
module Serve = Sof_serve.Serve
module Engine = Sof_serve.Engine
module Journal = Sof_serve.Journal

(* --- shared fixtures (the serving-layer testbed workload) -------------- *)

let testbed_workload =
  {
    Online.vms_per_dc = 2;
    demand = 5.0;
    link_capacity = 20.0;
    vm_capacity = 3.0;
    src_range = (2, 4);
    dst_range = (3, 6);
    chain_length = 2;
  }

let serve_config ?(deadline_ms = infinity) ?(ladder = [ Serve.Sofda ]) () =
  {
    Serve.default_config with
    stream =
      {
        Stream.workload = testbed_workload;
        process = Stream.Poisson { rate = 1.5 };
        mean_hold = 2.5;
        horizon = 6.0;
        max_utilization = 0.6;
      };
    deadline_ms;
    ladder;
    queue_cap = 3;
    policy = Serve.Reject_newest;
    service_time = 0.3;
    queue_deadline = 2.0;
    retry_max = 2;
    retry_base = 0.2;
    retry_jitter = 0.5;
    retry_seed = 40;
  }

let script ~seed cfg =
  let topo = Sof_topology.Topology.testbed () in
  let _, _, n_access = Online.augment topo cfg.Serve.stream.Stream.workload in
  (topo, Stream.script ~rng:(Rng.create seed) ~n_access cfg.Serve.stream)

(* --- batch former ------------------------------------------------------ *)

let test_batches_empty () =
  Alcotest.(check int)
    "empty queue yields no dispatches" 0
    (List.length
       (Engine.form_batches ~shards:3 ~batch_size:4 ~shard_of:Fun.id [||]))

let test_batches_single () =
  match
    Engine.form_batches ~shards:4 ~batch_size:8
      ~shard_of:(fun x -> x mod 4)
      [| 7 |]
  with
  | [ (shard, batch) ] ->
      Alcotest.(check int) "single request lands on its shard" 3 shard;
      Alcotest.(check (array int)) "batch is just the request" [| 7 |] batch
  | ds -> Alcotest.failf "expected one dispatch, got %d" (List.length ds)

let test_batches_oversized () =
  (* batch size far larger than the queue: one dispatch takes everything *)
  match
    Engine.form_batches ~shards:1 ~batch_size:100
      ~shard_of:(fun _ -> 0)
      [| 1; 2; 3 |]
  with
  | [ (0, batch) ] ->
      Alcotest.(check (array int)) "whole queue in one batch" [| 1; 2; 3 |]
        batch
  | _ -> Alcotest.fail "expected a single full dispatch"

let test_batches_order_and_coverage () =
  let shards = 3 and batch_size = 2 in
  let xs = Array.init 11 Fun.id in
  let dispatches =
    Engine.form_batches ~shards ~batch_size ~shard_of:(fun x -> x mod shards) xs
  in
  List.iter
    (fun (s, b) ->
      Alcotest.(check bool)
        "batch size within cap" true
        (Array.length b >= 1 && Array.length b <= batch_size);
      Array.iter
        (fun x -> Alcotest.(check int) "request on its shard" s (x mod shards))
        b)
    dispatches;
  (* concatenating a shard's batches reproduces its stream in submission
     order, and the union covers every request exactly once *)
  let per_shard = Array.make shards [] in
  List.iter
    (fun (s, b) -> per_shard.(s) <- per_shard.(s) @ Array.to_list b)
    dispatches;
  Array.iteri
    (fun s got ->
      let want =
        List.filter (fun x -> x mod shards = s) (Array.to_list xs)
      in
      Alcotest.(check (list int)) "per-shard stream in order" want got)
    per_shard

let test_batches_invalid () =
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool)
    "zero shards rejected" true
    (raises (fun () ->
         Engine.form_batches ~shards:0 ~batch_size:1
           ~shard_of:(fun _ -> 0)
           [| 1 |]));
  Alcotest.(check bool)
    "zero batch size rejected" true
    (raises (fun () ->
         Engine.form_batches ~shards:1 ~batch_size:0
           ~shard_of:(fun _ -> 0)
           [| 1 |]));
  Alcotest.(check bool)
    "out-of-range shard_of rejected" true
    (raises (fun () ->
         Engine.form_batches ~shards:2 ~batch_size:1
           ~shard_of:(fun _ -> 5)
           [| 1 |]))

(* --- shard determinism against the sequential server ------------------- *)

let check_identical ~what cfg ~seed =
  let topo, events = script ~seed cfg in
  let base = Serve.run_script topo cfg events in
  List.iter
    (fun (shards, batch_size) ->
      let r =
        Engine.run_script ~engine:{ Engine.shards; batch_size } topo cfg events
      in
      match Engine.report_diff base r with
      | None -> ()
      | Some d ->
          Alcotest.failf "%s: shards=%d batch=%d differs: %s" what shards
            batch_size d)
    [ (1, 1); (2, 3); (4, 2) ];
  base

let test_engine_matches_sequential () =
  let base = check_identical ~what:"deadline inf" (serve_config ()) ~seed:11 in
  Alcotest.(check bool) "the run actually served" true (base.Serve.served > 0)

let test_engine_deadline_zero () =
  (* deadline 0: every budgeted rung abandons at entry and the
     unbudgeted eST terminal serves — exercises the memoized-miss and
     breaker paths with an LP rung on the ladder *)
  let cfg =
    serve_config ~deadline_ms:0.0 ~ladder:[ Serve.Lp; Serve.Sofda ] ()
  in
  let base = check_identical ~what:"deadline 0" cfg ~seed:23 in
  Alcotest.(check int)
    "every served request degraded to eST" base.Serve.served
    base.Serve.degraded

let test_engine_config_validation () =
  let cfg = serve_config () in
  let topo, events = script ~seed:11 cfg in
  let raises engine =
    try
      ignore (Engine.run_script ~engine topo cfg events);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool)
    "negative shards rejected" true
    (raises { Engine.shards = -1; batch_size = 1 });
  Alcotest.(check bool)
    "zero batch size rejected" true
    (raises { Engine.shards = 1; batch_size = 0 })

(* --- kill -9 mid-batch: crash recovery through the WAL ------------------ *)

let with_temp_journal f =
  let path = Filename.temp_file "sof_engine_test" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_engine_kill9_recovery () =
  with_temp_journal (fun path ->
      let cfg = serve_config () in
      let topo, events = script ~seed:31 cfg in
      let journal = Journal.open_writer path in
      let report =
        Fun.protect
          ~finally:(fun () -> Journal.close_writer journal)
          (fun () ->
            Engine.run_script ~journal
              ~engine:{ Engine.shards = 2; batch_size = 3 }
              topo cfg events)
      in
      (* full-journal recovery lands on the engine run's final state *)
      let snap = Serve.recover topo cfg path in
      Alcotest.(check bool)
        "recovered ledger bit-identical" true
        (Serve.ledger_equal snap.Serve.ledger report.Serve.final_ledger);
      (* kill -9 mid-batch: a crash between any two record flushes leaves
         a record-boundary prefix, and every one must be consistent *)
      let records = report.Serve.records in
      let n = List.length records in
      Alcotest.(check bool) "engine journalled records" true (n > 0);
      List.iter
        (fun k ->
          let prefix = List.filteri (fun i _ -> i < k) records in
          let s = Serve.replay topo cfg prefix in
          match Serve.recovery_invariant topo cfg s with
          | Ok () -> ()
          | Error e -> Alcotest.failf "prefix %d/%d inconsistent: %s" k n e)
        [ 0; 1; n / 2; n - 1; n ])

let suite =
  [
    Alcotest.test_case "batch former: empty queue" `Quick test_batches_empty;
    Alcotest.test_case "batch former: single request" `Quick
      test_batches_single;
    Alcotest.test_case "batch former: batch larger than queue" `Quick
      test_batches_oversized;
    Alcotest.test_case "batch former: order and coverage" `Quick
      test_batches_order_and_coverage;
    Alcotest.test_case "batch former: invalid arguments" `Quick
      test_batches_invalid;
    Alcotest.test_case "engine identical across shards 1/2/4" `Quick
      test_engine_matches_sequential;
    Alcotest.test_case "engine identical under deadline 0" `Quick
      test_engine_deadline_zero;
    Alcotest.test_case "engine config validation" `Quick
      test_engine_config_validation;
    Alcotest.test_case "kill -9 mid-batch recovery" `Quick
      test_engine_kill9_recovery;
  ]
