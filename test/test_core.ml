module Graph = Sof_graph.Graph
module Problem = Sof.Problem
module Forest = Sof.Forest
module Validate = Sof.Validate
module Transform = Sof.Transform
module Sofda_ss = Sof.Sofda_ss
module Sofda = Sof.Sofda
module Conflict = Sof.Conflict
open Testlib

(* --- a tiny hand-checked instance ---------------------------------------
   0 (source) - 1 (VM, cost 1) - 2 (VM, cost 1) - {3, 4} (destinations)
   All edges cost 1.  Chain length 2.
   Optimal: chain 0-1(f1)-2(f2), deliver 2-3 and 2-4: cost 2 + 2 + 2 = 6. *)
let chain_instance () =
  let g =
    Graph.create ~n:5
      ~edges:[ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (2, 4, 1.0) ]
  in
  let node_cost = [| 0.0; 1.0; 1.0; 0.0; 0.0 |] in
  Problem.make ~graph:g ~node_cost ~vms:[ 1; 2 ] ~sources:[ 0 ]
    ~dests:[ 3; 4 ] ~chain_length:2

(* --- two islands joined by a costly bridge ------------------------------
   Island A: 0 (src) - 1 - 2 (VMs cost 1) - 3 (dest)
   Island B: 4 (src) - 5 - 6 (VMs cost 1) - 7 (dest)
   Bridge 3-7 cost 50.  A two-tree forest costs 10; any single tree pays
   the bridge.  This is the paper's Fig. 1 moral. *)
let islands_instance () =
  let g =
    Graph.create ~n:8
      ~edges:
        [
          (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0);
          (4, 5, 1.0); (5, 6, 1.0); (6, 7, 1.0);
          (3, 7, 50.0);
        ]
  in
  let node_cost = [| 0.0; 1.0; 1.0; 0.0; 0.0; 1.0; 1.0; 0.0 |] in
  Problem.make ~graph:g ~node_cost ~vms:[ 1; 2; 5; 6 ] ~sources:[ 0; 4 ]
    ~dests:[ 3; 7 ] ~chain_length:2

(* --- Problem ------------------------------------------------------------ *)

let test_problem_validation () =
  let g = Graph.create ~n:3 ~edges:[ (0, 1, 1.0); (1, 2, 1.0) ] in
  let bad name f =
    Alcotest.(check bool) name true
      (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  bad "switch with cost" (fun () ->
      Problem.make ~graph:g ~node_cost:[| 1.0; 0.0; 0.0 |] ~vms:[ 1 ]
        ~sources:[ 0 ] ~dests:[ 2 ] ~chain_length:1);
  bad "no sources" (fun () ->
      Problem.make ~graph:g ~node_cost:[| 0.0; 1.0; 0.0 |] ~vms:[ 1 ]
        ~sources:[] ~dests:[ 2 ] ~chain_length:1);
  bad "chain 0" (fun () ->
      Problem.make ~graph:g ~node_cost:[| 0.0; 1.0; 0.0 |] ~vms:[ 1 ]
        ~sources:[ 0 ] ~dests:[ 2 ] ~chain_length:0);
  let p =
    Problem.make ~graph:g ~node_cost:[| 0.0; 2.5; 0.0 |] ~vms:[ 1 ]
      ~sources:[ 0 ] ~dests:[ 2 ] ~chain_length:1
  in
  Alcotest.(check bool) "vm" true (Problem.is_vm p 1);
  Alcotest.(check bool) "source" true (Problem.is_source p 0);
  Alcotest.check feq "setup" 2.5 (Problem.setup_cost p 1)

(* --- Forest cost accounting --------------------------------------------- *)

let test_forest_cost_simple () =
  let p = chain_instance () in
  let walk =
    {
      Forest.source = 0;
      hops = [| 0; 1; 2 |];
      marks = [ { Forest.pos = 1; vnf = 1 }; { Forest.pos = 2; vnf = 2 } ];
    }
  in
  let f = Forest.make p ~walks:[ walk ] ~delivery:[ (2, 3); (2, 4) ] in
  Validate.check_exn f;
  let setup, conn = Forest.cost_breakdown f in
  Alcotest.check feq "setup" 2.0 setup;
  Alcotest.check feq "connection" 4.0 conn;
  Alcotest.check feq "total" 6.0 (Forest.total_cost f)

let test_forest_cost_revisited_edge () =
  (* A walk that traverses edge (1,2) twice at different stages pays it
     twice (the paper's clone rule). *)
  let g =
    Graph.create ~n:4 ~edges:[ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ]
  in
  let node_cost = [| 0.0; 1.0; 1.0; 0.0 |] in
  let p =
    Problem.make ~graph:g ~node_cost ~vms:[ 1; 2 ] ~sources:[ 0 ]
      ~dests:[ 3 ] ~chain_length:2
  in
  let walk =
    {
      Forest.source = 0;
      hops = [| 0; 1; 2; 1; 2 |];
      marks = [ { Forest.pos = 2; vnf = 1 }; { Forest.pos = 3; vnf = 2 } ];
    }
  in
  let f = Forest.make p ~walks:[ walk ] ~delivery:[ (2, 3) ] in
  Validate.check_exn f;
  (* edges: (0,1)@0, (1,2)@0, (2,1)@1, (1,2)@2 -> 4 payments + delivery. *)
  Alcotest.check feq "connection" 5.0 (Forest.connection_cost f);
  Alcotest.check feq "setup" 2.0 (Forest.setup_cost f)

let test_forest_cost_shared_prefix () =
  (* Two walks from the same source sharing their first edge at stage 0 pay
     it once (multicast sharing). *)
  let g =
    Graph.create ~n:6
      ~edges:
        [ (0, 1, 1.0); (1, 2, 1.0); (1, 3, 1.0); (2, 4, 1.0); (3, 5, 1.0) ]
  in
  let node_cost = [| 0.0; 0.0; 1.0; 1.0; 0.0; 0.0 |] in
  let p =
    Problem.make ~graph:g ~node_cost ~vms:[ 2; 3 ] ~sources:[ 0 ]
      ~dests:[ 4; 5 ] ~chain_length:1
  in
  let w1 =
    { Forest.source = 0; hops = [| 0; 1; 2 |]; marks = [ { Forest.pos = 2; vnf = 1 } ] }
  in
  let w2 =
    { Forest.source = 0; hops = [| 0; 1; 3 |]; marks = [ { Forest.pos = 2; vnf = 1 } ] }
  in
  let f = Forest.make p ~walks:[ w1; w2 ] ~delivery:[ (2, 4); (3, 5) ] in
  Validate.check_exn f;
  (* (0,1) paid once, (1,2), (1,3), two delivery edges: 5 total. *)
  Alcotest.check feq "shared prefix" 5.0 (Forest.connection_cost f)

(* --- Validate ------------------------------------------------------------ *)

let test_validate_catches_conflict () =
  let p = chain_instance () in
  let wa =
    { Forest.source = 0; hops = [| 0; 1; 2 |];
      marks = [ { Forest.pos = 1; vnf = 1 }; { Forest.pos = 2; vnf = 2 } ] }
  in
  (* wconf re-enters VM 1 and marks it f2, clashing with wa's f1 there. *)
  let wconf =
    { Forest.source = 0; hops = [| 0; 1; 2; 1 |];
      marks = [ { Forest.pos = 2; vnf = 1 }; { Forest.pos = 3; vnf = 2 } ] }
  in
  let f = Forest.make p ~walks:[ wa; wconf ] ~delivery:[ (2, 3); (2, 4) ] in
  (match Validate.check f with
  | Ok () -> Alcotest.fail "expected conflict"
  | Error es ->
      Alcotest.(check bool) "vnf conflict reported" true
        (List.exists
           (function Validate.Vnf_conflict _ -> true | _ -> false)
           es))

let test_validate_catches_missing_edge () =
  let p = chain_instance () in
  let w2 =
    { Forest.source = 0; hops = [| 0; 1; 2 |];
      marks = [ { Forest.pos = 1; vnf = 1 }; { Forest.pos = 2; vnf = 2 } ] }
  in
  let f = Forest.make p ~walks:[ w2 ] ~delivery:[ (0, 3) ] in
  (match Validate.check f with
  | Ok () -> Alcotest.fail "expected missing edge"
  | Error es ->
      Alcotest.(check bool) "missing edge" true
        (List.exists
           (function Validate.Missing_edge _ -> true | _ -> false)
           es))

let test_validate_catches_unserved () =
  let p = chain_instance () in
  let w =
    { Forest.source = 0; hops = [| 0; 1; 2 |];
      marks = [ { Forest.pos = 1; vnf = 1 }; { Forest.pos = 2; vnf = 2 } ] }
  in
  let f = Forest.make p ~walks:[ w ] ~delivery:[ (2, 3) ] in
  (match Validate.check f with
  | Ok () -> Alcotest.fail "expected unserved 4"
  | Error es ->
      Alcotest.(check bool) "unserved" true
        (List.mem (Validate.Unserved_destination 4) es))

let count_out_of_range es =
  List.length
    (List.filter
       (function Validate.Node_out_of_range _ -> true | _ -> false)
       es)

let test_validate_out_of_range_delivery () =
  (* Out-of-range delivery endpoints used to reach Graph.mem_edge unguarded
     and blow up with an array-bounds exception; they must be reported. *)
  let p = chain_instance () in
  let w =
    { Forest.source = 0; hops = [| 0; 1; 2 |];
      marks = [ { Forest.pos = 1; vnf = 1 }; { Forest.pos = 2; vnf = 2 } ] }
  in
  let f = Forest.make p ~walks:[ w ] ~delivery:[ (0, 999); (-3, 4) ] in
  (match Validate.check f with
  | Ok () -> Alcotest.fail "expected out-of-range errors"
  | Error es ->
      Alcotest.(check bool) "999 reported" true
        (List.mem (Validate.Node_out_of_range 999) es);
      Alcotest.(check bool) "-3 reported" true
        (List.mem (Validate.Node_out_of_range (-3)) es))

let test_validate_out_of_range_hop () =
  let p = chain_instance () in
  let w =
    { Forest.source = 0; hops = [| 0; 42; 2 |];
      marks = [ { Forest.pos = 1; vnf = 1 }; { Forest.pos = 2; vnf = 2 } ] }
  in
  let f = Forest.make p ~walks:[ w ] ~delivery:[ (2, 3); (2, 4) ] in
  (match Validate.check f with
  | Ok () -> Alcotest.fail "expected out-of-range hop error"
  | Error es ->
      Alcotest.(check bool) "hop 42 reported" true
        (List.mem (Validate.Node_out_of_range 42) es);
      (* the mark at pos 1 sits on the bogus hop: no crash, one report *)
      Alcotest.(check int) "exactly one range error" 1 (count_out_of_range es))

let test_validate_negative_mark_pos () =
  (* A negative mark position must be a Bad_walk error across every pass
     (enabled-VNF collection and injection points index hops by pos). *)
  let p = chain_instance () in
  let w =
    { Forest.source = 0; hops = [| 0; 1; 2 |];
      marks = [ { Forest.pos = -1; vnf = 1 }; { Forest.pos = 2; vnf = 2 } ] }
  in
  let f = Forest.make p ~walks:[ w ] ~delivery:[ (2, 3); (2, 4) ] in
  (match Validate.check f with
  | Ok () -> Alcotest.fail "expected bad walk"
  | Error es ->
      Alcotest.(check bool) "bad walk reported" true
        (List.exists (function Validate.Bad_walk _ -> true | _ -> false) es))

let test_validate_out_of_range_source () =
  (* Walk whose declared source differs from hops.(0) and is itself out of
     range: both defects reported, no crash from is_source/is_vm. *)
  let p = chain_instance () in
  let w =
    { Forest.source = 77; hops = [| 0; 1; 2 |];
      marks = [ { Forest.pos = 1; vnf = 1 }; { Forest.pos = 2; vnf = 2 } ] }
  in
  let f = Forest.make p ~walks:[ w ] ~delivery:[ (2, 3); (2, 4) ] in
  (match Validate.check f with
  | Ok () -> Alcotest.fail "expected errors"
  | Error es ->
      Alcotest.(check bool) "source 77 out of range" true
        (List.mem (Validate.Node_out_of_range 77) es);
      Alcotest.(check bool) "source not in S" true
        (List.mem (Validate.Bad_source 77) es))

(* --- Transform ----------------------------------------------------------- *)

let test_transform_chain_walk () =
  let p = chain_instance () in
  let t = Transform.create p in
  match Transform.chain_walk t ~src:0 ~last_vm:2 ~num_vnfs:2 with
  | None -> Alcotest.fail "expected walk"
  | Some r ->
      Alcotest.(check (array int)) "hops" [| 0; 1; 2 |] r.Transform.hops;
      Alcotest.(check (list (pair int int))) "marks" [ (1, 1); (2, 2) ]
        r.Transform.vm_marks;
      (* cost = edges (2) + setups (2) *)
      Alcotest.check feq "cost" 4.0 r.Transform.cost

let test_transform_cost_is_connection_plus_setup () =
  let p = islands_instance () in
  let t = Transform.create p in
  match Transform.chain_walk t ~src:0 ~last_vm:2 ~num_vnfs:2 with
  | None -> Alcotest.fail "expected walk"
  | Some r ->
      Alcotest.check feq "cost" 4.0 r.Transform.cost;
      Alcotest.(check int) "two vnfs" 2 (List.length r.Transform.vm_marks)

let test_transform_source_setup () =
  (* Appendix D: charging the source adds c(src) exactly once. *)
  let g = Graph.create ~n:3 ~edges:[ (0, 1, 1.0); (1, 2, 1.0) ] in
  let node_cost = [| 0.0; 2.0; 3.0 |] in
  let p =
    Problem.make ~graph:g ~node_cost ~vms:[ 1; 2 ] ~sources:[ 0 ]
      ~dests:[ 2 ] ~chain_length:2
  in
  let t = Transform.create p in
  let plain =
    match Transform.chain_walk t ~src:0 ~last_vm:2 ~num_vnfs:2 with
    | Some r -> r.Transform.cost
    | None -> Alcotest.fail "walk"
  in
  let charged =
    match
      Transform.chain_walk ~source_setup:true t ~src:0 ~last_vm:2 ~num_vnfs:2
    with
    | Some r -> r.Transform.cost
    | None -> Alcotest.fail "walk"
  in
  Alcotest.check feq "plain" 7.0 plain;
  (* source 0 has cost 0 here, so both agree *)
  Alcotest.check feq "charged equals plain for free source" plain charged

let test_transform_relay_walk () =
  let p = chain_instance () in
  let t = Transform.create p in
  (match Transform.relay_walk t ~src:1 ~dst:4 ~num_vnfs:1 with
  | None -> Alcotest.fail "expected relay"
  | Some r ->
      Alcotest.(check int) "one vnf" 1 (List.length r.Transform.vm_marks);
      Alcotest.(check bool) "ends at dst" true
        (r.Transform.hops.(Array.length r.Transform.hops - 1) = 4));
  match Transform.relay_walk t ~src:1 ~dst:3 ~num_vnfs:0 with
  | None -> Alcotest.fail "expected path"
  | Some r ->
      Alcotest.(check (array int)) "pure path" [| 1; 2; 3 |] r.Transform.hops;
      Alcotest.check feq "path cost" 2.0 r.Transform.cost

let test_transform_infeasible () =
  let p = chain_instance () in
  let t = Transform.create p in
  (* three VNFs but only two VMs *)
  Alcotest.(check bool) "too long chain" true
    (Transform.chain_walk t ~src:0 ~last_vm:2 ~num_vnfs:3 = None)

(* --- SOFDA-SS ------------------------------------------------------------ *)

let test_sofda_ss_chain_instance () =
  let p = chain_instance () in
  match Sofda_ss.solve p ~source:0 with
  | None -> Alcotest.fail "expected solution"
  | Some r ->
      Validate.check_exn r.Sofda_ss.forest;
      Alcotest.(check int) "last vm" 2 r.Sofda_ss.last_vm;
      Alcotest.check feq "optimal cost" 6.0 (Forest.total_cost r.Sofda_ss.forest)

let test_sofda_ss_tradeoff () =
  (* Last-VM choice trade-off: VM 1 is close to the source but far from the
     destinations; VM 2 the reverse.  SOFDA-SS must examine both. *)
  let g =
    Graph.create ~n:6
      ~edges:
        [
          (0, 1, 1.0); (1, 2, 4.0); (2, 3, 1.0); (2, 4, 1.0); (1, 5, 1.0);
          (5, 2, 1.0);
        ]
  in
  let node_cost = [| 0.0; 1.0; 1.0; 0.0; 0.0; 1.0 |] in
  let p =
    Problem.make ~graph:g ~node_cost ~vms:[ 1; 2; 5 ] ~sources:[ 0 ]
      ~dests:[ 3; 4 ] ~chain_length:2
  in
  match Sofda_ss.solve p ~source:0 with
  | None -> Alcotest.fail "expected solution"
  | Some r ->
      Validate.check_exn r.Sofda_ss.forest;
      (* best: 0-1(f1)-5-2 or 0-1-5(f2 at 5?) ... verify cost <= naive 1-2 chain *)
      Alcotest.(check bool) "beats naive" true
        (Forest.total_cost r.Sofda_ss.forest <= 9.0 +. 1e-9)

let test_sofda_ss_infeasible () =
  let g = Graph.create ~n:3 ~edges:[ (0, 1, 1.0); (1, 2, 1.0) ] in
  let p =
    Problem.make ~graph:g ~node_cost:[| 0.0; 1.0; 0.0 |] ~vms:[ 1 ]
      ~sources:[ 0 ] ~dests:[ 2 ] ~chain_length:2
  in
  Alcotest.(check bool) "no solution with 1 VM, chain 2" true
    (Sofda_ss.solve p ~source:0 = None)

(* --- SOFDA --------------------------------------------------------------- *)

let test_sofda_single_source_matches_shape () =
  let p = chain_instance () in
  match Sofda.solve p with
  | None -> Alcotest.fail "expected solution"
  | Some r ->
      Validate.check_exn r.Sofda.forest;
      Alcotest.check feq "cost 6" 6.0 (Forest.total_cost r.Sofda.forest)

let test_sofda_uses_two_trees_on_islands () =
  let p = islands_instance () in
  match Sofda.solve p with
  | None -> Alcotest.fail "expected solution"
  | Some r ->
      Validate.check_exn r.Sofda.forest;
      Alcotest.(check int) "two chains" 2 (List.length r.Sofda.selected_chains);
      Alcotest.check feq "forest cost 10" 10.0 (Forest.total_cost r.Sofda.forest);
      (* single-source solutions must pay the bridge *)
      (match Sofda_ss.solve p ~source:0 with
      | Some ss ->
          Alcotest.(check bool) "forest beats single tree" true
            (Forest.total_cost r.Sofda.forest
            < Forest.total_cost ss.Sofda_ss.forest)
      | None -> Alcotest.fail "ss should be feasible")

(* --- Conflict resolution -------------------------------------------------- *)

let conflict_problem () =
  (* complete-ish graph so rewritten walks always have edges *)
  let edges = ref [] in
  for u = 0 to 7 do
    for v = u + 1 to 7 do
      edges := (u, v, 1.0) :: !edges
    done
  done;
  let g = Graph.create ~n:8 ~edges:!edges in
  let node_cost = [| 0.0; 1.0; 1.0; 1.0; 1.0; 1.0; 0.0; 0.0 |] in
  Problem.make ~graph:g ~node_cost ~vms:[ 1; 2; 3; 4; 5 ] ~sources:[ 0; 6 ]
    ~dests:[ 7 ] ~chain_length:3

let test_conflict_case1 () =
  let p = conflict_problem () in
  (* W1: 0 -> 1(f1) -> 2(f2) -> 3(f3); W: 6 -> 2(f1) -> 4(f2) -> 5(f3):
     conflict at VM 2 with j=1 <= i=2. *)
  let w1 =
    { Forest.source = 0; hops = [| 0; 1; 2; 3 |];
      marks =
        [ { Forest.pos = 1; vnf = 1 }; { Forest.pos = 2; vnf = 2 };
          { Forest.pos = 3; vnf = 3 } ] }
  in
  let w =
    { Forest.source = 6; hops = [| 6; 2; 4; 5 |];
      marks =
        [ { Forest.pos = 1; vnf = 1 }; { Forest.pos = 2; vnf = 2 };
          { Forest.pos = 3; vnf = 3 } ] }
  in
  Alcotest.(check bool) "conflict detected" true (Conflict.has_conflict [ w1; w ]);
  let resolved = Conflict.resolve p [ w1; w ] in
  Alcotest.(check bool) "resolved" false (Conflict.has_conflict resolved);
  Alcotest.(check int) "still two walks" 2 (List.length resolved);
  (* validate the rewritten walks as a forest serving dest 7 from VM ends *)
  let last_hops =
    List.map
      (fun w -> w.Forest.hops.(Array.length w.Forest.hops - 1))
      resolved
  in
  let delivery = List.map (fun v -> (v, 7)) last_hops in
  let f = Forest.make p ~walks:resolved ~delivery in
  Validate.check_exn f

let test_conflict_case3 () =
  let p = conflict_problem () in
  (* W1: 0 -> 1(f1) -> 2(f2) -> 3(f3); W: 6 -> 4(f1) -> 1(f2) -> 5(f3):
     conflict at VM 1 with j=2 > i=1, no shared VM with h >= 2 on W1 shared
     with W other than VM 1 -> case 3 re-roots W1 onto W's prefix. *)
  let w1 =
    { Forest.source = 0; hops = [| 0; 1; 2; 3 |];
      marks =
        [ { Forest.pos = 1; vnf = 1 }; { Forest.pos = 2; vnf = 2 };
          { Forest.pos = 3; vnf = 3 } ] }
  in
  let w =
    { Forest.source = 6; hops = [| 6; 4; 1; 5 |];
      marks =
        [ { Forest.pos = 1; vnf = 1 }; { Forest.pos = 2; vnf = 2 };
          { Forest.pos = 3; vnf = 3 } ] }
  in
  let resolved = Conflict.resolve p [ w1; w ] in
  Alcotest.(check bool) "resolved" false (Conflict.has_conflict resolved);
  let last_hops =
    List.map
      (fun w -> w.Forest.hops.(Array.length w.Forest.hops - 1))
      resolved
  in
  let delivery = List.map (fun v -> (v, 7)) last_hops in
  let f = Forest.make p ~walks:resolved ~delivery in
  Validate.check_exn f

let test_conflict_case2 () =
  let p = conflict_problem () in
  (* Mirrors the paper's Example 7 shape: W wants f_j at u where W1 runs
     f_i with i < j, and another shared VM w carries f_h (h >= j) on W1 —
     the resolution must ride W1's prefix through w and keep W's tail. *)
  let w1 =
    { Forest.source = 0; hops = [| 0; 4; 2; 3; 5 |];
      marks =
        [ { Forest.pos = 1; vnf = 1 }; { Forest.pos = 2; vnf = 2 };
          { Forest.pos = 3; vnf = 3 } ] }
  in
  (* W: f1@3, f2@2 (conflicts: W1 runs f2@2... j=2,i=2 same -> no), use:
     W: 6 -> 3(f1) -> 4(f2) -> 1(f3): conflict at 4 (W1: f1, i=1 < j=2);
     shared VM 3 carries f3 = h >= j on W1 -> case 2. *)
  let w =
    { Forest.source = 6; hops = [| 6; 3; 4; 1 |];
      marks =
        [ { Forest.pos = 1; vnf = 1 }; { Forest.pos = 2; vnf = 2 };
          { Forest.pos = 3; vnf = 3 } ] }
  in
  let resolved = Conflict.resolve p [ w1; w ] in
  Alcotest.(check bool) "resolved" false (Conflict.has_conflict resolved);
  let delivery =
    List.map
      (fun w -> (w.Forest.hops.(Array.length w.Forest.hops - 1), 7))
      resolved
  in
  let f = Forest.make p ~walks:resolved ~delivery in
  Validate.check_exn f;
  (* w1 must be untouched by a case-1/2 resolution *)
  Alcotest.(check bool) "w1 unchanged" true
    (List.exists (fun x -> x = w1) resolved)

let test_conflict_shared_vm_same_vnf_no_conflict () =
  let p = conflict_problem () in
  let mk source =
    { Forest.source; hops = [| source; 1; 2; 3 |];
      marks =
        [ { Forest.pos = 1; vnf = 1 }; { Forest.pos = 2; vnf = 2 };
          { Forest.pos = 3; vnf = 3 } ] }
  in
  let walks = [ mk 0; mk 6 ] in
  Alcotest.(check bool) "agreeing walks don't conflict" false
    (Conflict.has_conflict walks);
  let resolved = Conflict.resolve p walks in
  Alcotest.(check bool) "resolution is identity" true (resolved = walks)

let test_remove_loops () =
  let w =
    { Forest.source = 0; hops = [| 0; 1; 2; 1; 3 |];
      marks = [ { Forest.pos = 4; vnf = 1 } ] }
  in
  let w' = Conflict.remove_loops w in
  Alcotest.(check (array int)) "loop cut" [| 0; 1; 3 |] w'.Forest.hops;
  Alcotest.(check (list (pair int int))) "mark shifted" [ (2, 1) ]
    (List.map (fun m -> (m.Forest.pos, m.Forest.vnf)) w'.Forest.marks)

let test_remove_loops_keeps_marked () =
  (* the revisit encloses a mark: must NOT be cut *)
  let w =
    { Forest.source = 0; hops = [| 0; 1; 2; 1; 3 |];
      marks = [ { Forest.pos = 2; vnf = 1 }; { Forest.pos = 4; vnf = 2 } ] }
  in
  let w' = Conflict.remove_loops w in
  Alcotest.(check (array int)) "unchanged" [| 0; 1; 2; 1; 3 |] w'.Forest.hops

(* --- property tests over random instances -------------------------------- *)

let forest_cost_nonneg f = Forest.total_cost f >= -1e-9

let prop_sofda_ss_valid =
  QCheck.Test.make ~count:150 ~name:"SOFDA-SS produces valid forests"
    instance_arb (fun (seed, chain) ->
      let p = random_instance ~chain_length:chain seed in
      match Sofda_ss.solve p ~source:(List.hd p.Problem.sources) with
      | None -> true (* infeasible instances are allowed *)
      | Some r -> Validate.is_valid r.Sofda_ss.forest && forest_cost_nonneg r.Sofda_ss.forest)

let prop_sofda_valid =
  QCheck.Test.make ~count:150 ~name:"SOFDA produces valid forests"
    instance_arb (fun (seed, chain) ->
      let p = random_instance ~chain_length:chain seed in
      match Sofda.solve p with
      | None -> true
      | Some r -> Validate.is_valid r.Sofda.forest && forest_cost_nonneg r.Sofda.forest)

let prop_sofda_no_worse_than_best_ss =
  (* Multi-source SOFDA should not be dramatically worse than the best
     single-source embedding; we assert the weaker sanity property that it
     is within 3x (they optimize the same objective with the same Steiner
     black box). *)
  QCheck.Test.make ~count:100 ~name:"SOFDA within 3x of best single-source"
    instance_arb (fun (seed, chain) ->
      let p = random_instance ~chain_length:chain seed in
      let ss_costs =
        List.filter_map
          (fun s ->
            Option.map
              (fun r -> Forest.total_cost r.Sofda_ss.forest)
              (Sofda_ss.solve p ~source:s))
          p.Problem.sources
      in
      match (Sofda.solve p, ss_costs) with
      | Some r, _ :: _ ->
          let best = List.fold_left min infinity ss_costs in
          Forest.total_cost r.Sofda.forest <= (3.0 *. best) +. 1e-6
      | _ -> true)

let prop_conflict_resolution_random =
  (* Random conflicting walk pairs on a complete graph always resolve. *)
  QCheck.Test.make ~count:200 ~name:"conflict resolution settles and is valid"
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let p = conflict_problem () in
      let rng = Sof_util.Rng.create ((a * 7919) + b) in
      let mk source =
        let vms = [| 1; 2; 3; 4; 5 |] in
        Sof_util.Rng.shuffle rng vms;
        let picks = Array.sub vms 0 3 in
        let hops = Array.append [| source |] picks in
        {
          Forest.source;
          hops;
          marks =
            [ { Forest.pos = 1; vnf = 1 }; { Forest.pos = 2; vnf = 2 };
              { Forest.pos = 3; vnf = 3 } ];
        }
      in
      let walks = [ mk 0; mk 6; mk 0 ] in
      let resolved = Conflict.resolve p walks in
      (not (Conflict.has_conflict resolved))
      && List.length resolved = 3
      &&
      let delivery =
        List.map
          (fun w -> (w.Forest.hops.(Array.length w.Forest.hops - 1), 7))
          resolved
      in
      let f = Forest.make p ~walks:resolved ~delivery in
      Validate.is_valid f)

let suite =
  [
    Alcotest.test_case "problem validation" `Quick test_problem_validation;
    Alcotest.test_case "forest cost simple" `Quick test_forest_cost_simple;
    Alcotest.test_case "forest cost revisit" `Quick test_forest_cost_revisited_edge;
    Alcotest.test_case "forest cost shared prefix" `Quick test_forest_cost_shared_prefix;
    Alcotest.test_case "validate conflict" `Quick test_validate_catches_conflict;
    Alcotest.test_case "validate missing edge" `Quick test_validate_catches_missing_edge;
    Alcotest.test_case "validate unserved" `Quick test_validate_catches_unserved;
    Alcotest.test_case "validate out-of-range delivery" `Quick
      test_validate_out_of_range_delivery;
    Alcotest.test_case "validate out-of-range hop" `Quick
      test_validate_out_of_range_hop;
    Alcotest.test_case "validate negative mark pos" `Quick
      test_validate_negative_mark_pos;
    Alcotest.test_case "validate out-of-range source" `Quick
      test_validate_out_of_range_source;
    Alcotest.test_case "transform chain walk" `Quick test_transform_chain_walk;
    Alcotest.test_case "transform islands" `Quick test_transform_cost_is_connection_plus_setup;
    Alcotest.test_case "transform source setup" `Quick test_transform_source_setup;
    Alcotest.test_case "transform relay walk" `Quick test_transform_relay_walk;
    Alcotest.test_case "transform infeasible" `Quick test_transform_infeasible;
    Alcotest.test_case "sofda-ss chain instance" `Quick test_sofda_ss_chain_instance;
    Alcotest.test_case "sofda-ss tradeoff" `Quick test_sofda_ss_tradeoff;
    Alcotest.test_case "sofda-ss infeasible" `Quick test_sofda_ss_infeasible;
    Alcotest.test_case "sofda single source" `Quick test_sofda_single_source_matches_shape;
    Alcotest.test_case "sofda islands forest" `Quick test_sofda_uses_two_trees_on_islands;
    Alcotest.test_case "conflict case 1" `Quick test_conflict_case1;
    Alcotest.test_case "conflict case 2" `Quick test_conflict_case2;
    Alcotest.test_case "conflict case 3" `Quick test_conflict_case3;
    Alcotest.test_case "conflict same-vnf sharing" `Quick
      test_conflict_shared_vm_same_vnf_no_conflict;
    Alcotest.test_case "remove loops" `Quick test_remove_loops;
    Alcotest.test_case "remove loops keeps marks" `Quick test_remove_loops_keeps_marked;
  ]
  @ qsuite
      [
        prop_sofda_ss_valid;
        prop_sofda_valid;
        prop_sofda_no_worse_than_best_ss;
        prop_conflict_resolution_random;
      ]
