(* The observability layer: metrics registry, histogram quantiles, span
   tracer and the three exporters, plus the minimal JSON module backing
   the Chrome trace and the perf gate.

   Every test runs with a clean registry and restores the disabled
   default afterwards — observability state is process-global and the
   other suites must see the zero-cost no-op sink. *)

module Obs = Sof_obs.Obs
module Json = Sof_obs.Json

let with_obs f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let qcheck name h q expected =
  match Obs.quantile h q with
  | Some v -> Alcotest.check (Alcotest.float 1e-9) name expected v
  | None -> Alcotest.failf "%s: quantile is None" name

(* --- histogram quantile edge cases ------------------------------------ *)

let test_quantile_empty () =
  with_obs (fun () ->
      let h = Obs.histogram "t.empty" in
      Alcotest.(check bool) "empty has no quantiles" true
        (Obs.quantile h 0.5 = None);
      Alcotest.(check int) "empty count" 0 (Obs.hist_count h))

let test_quantile_single () =
  with_obs (fun () ->
      let h = Obs.histogram "t.single" in
      Obs.observe h 0.37;
      (* single sample: every quantile is exactly that sample *)
      List.iter
        (fun q -> qcheck (Printf.sprintf "q=%g" q) h q 0.37)
        [ 0.0; 0.5; 0.95; 0.99; 1.0 ])

let test_quantile_all_equal () =
  with_obs (fun () ->
      let h = Obs.histogram "t.equal" in
      for _ = 1 to 100 do
        Obs.observe h 2.5
      done;
      (* min = max, so the bucket-midpoint estimate clamps to the exact
         value *)
      List.iter
        (fun q -> qcheck (Printf.sprintf "q=%g" q) h q 2.5)
        [ 0.5; 0.95; 0.99 ];
      Alcotest.check (Alcotest.float 1e-9) "sum" 250.0 (Obs.hist_sum h))

let test_quantile_monotone_and_bounded () =
  with_obs (fun () ->
      let h = Obs.histogram "t.mixed" in
      List.iter (Obs.observe h)
        [ 0.001; 0.002; 0.004; 0.008; 0.016; 0.032; 0.064; 0.128; 0.256; 1.0 ];
      let q x = Option.get (Obs.quantile h x) in
      Alcotest.(check bool) "p50 <= p95" true (q 0.5 <= q 0.95);
      Alcotest.(check bool) "p95 <= p99" true (q 0.95 <= q 0.99);
      Alcotest.(check bool) "quantiles within [min,max]" true
        (q 0.0 >= 0.001 && q 1.0 <= 1.0);
      (* p50 of 10 samples is the 5th: 0.016; log-bucket estimate is within
         the bucket's ~9% relative error *)
      Alcotest.(check bool) "p50 near exact" true
        (abs_float (q 0.5 -. 0.016) <= 0.016 *. 0.1))

let test_quantile_out_of_range () =
  with_obs (fun () ->
      let h = Obs.histogram "t.range" in
      Obs.observe h 1.0;
      Alcotest.check_raises "q > 1 rejected"
        (Invalid_argument "Obs.quantile: q out of [0,1]") (fun () ->
          ignore (Obs.quantile h 1.5)))

(* --- counters, gauges, gating ----------------------------------------- *)

let test_counter_gauge () =
  with_obs (fun () ->
      let c = Obs.counter "t.count" in
      Obs.incr c;
      Obs.incr ~by:41 c;
      Alcotest.(check int) "counter" 42 (Obs.counter_value c);
      let g = Obs.gauge "t.gauge" in
      Obs.set g 2.75;
      Alcotest.check (Alcotest.float 0.0) "gauge" 2.75 (Obs.gauge_value g))

let test_disabled_is_noop () =
  Obs.reset ();
  Alcotest.(check bool) "disabled by default" false (Obs.enabled ());
  let c = Obs.counter "t.off" in
  let h = Obs.histogram "t.off_h" in
  Obs.incr c;
  Obs.observe h 1.0;
  ignore (Obs.span "t.off_span" (fun () -> 7));
  Alcotest.(check int) "counter untouched" 0 (Obs.counter_value c);
  Alcotest.(check int) "histogram untouched" 0 (Obs.hist_count h);
  Alcotest.(check int) "no span recorded" 0 (List.length (Obs.events ()));
  Obs.reset ()

let test_kind_clash () =
  with_obs (fun () ->
      ignore (Obs.counter "t.clash");
      Alcotest.(check bool) "same name, other kind raises" true
        (try
           ignore (Obs.histogram "t.clash");
           false
         with Invalid_argument _ -> true))

(* --- spans -------------------------------------------------------------- *)

let test_span_nesting () =
  with_obs (fun () ->
      let r =
        Obs.span "outer" (fun () ->
            ignore (Obs.span "inner" (fun () -> 1));
            2)
      in
      Alcotest.(check int) "span returns the body's value" 2 r;
      match Obs.events () with
      | [ inner; outer ] ->
          (* spans record at exit: inner completes first *)
          Alcotest.(check string) "inner first" "inner" inner.Obs.span_name;
          Alcotest.(check string) "outer second" "outer" outer.Obs.span_name;
          Alcotest.(check int) "outer depth" 0 outer.Obs.depth;
          Alcotest.(check int) "inner depth" 1 inner.Obs.depth;
          Alcotest.(check bool) "inner starts after outer" true
            (inner.Obs.ts_ns >= outer.Obs.ts_ns);
          Alcotest.(check bool) "inner contained in outer" true
            (inner.Obs.ts_ns + inner.Obs.dur_ns
            <= outer.Obs.ts_ns + outer.Obs.dur_ns)
      | es -> Alcotest.failf "expected 2 events, got %d" (List.length es))

let test_span_reraises () =
  with_obs (fun () ->
      (try Obs.span "boom" (fun () -> failwith "kaput") with
      | Failure m -> Alcotest.(check string) "exception preserved" "kaput" m
      | e -> raise e);
      Alcotest.(check int) "failing span still recorded" 1
        (List.length (Obs.events ())))

let test_span_ring_bounded () =
  with_obs (fun () ->
      Obs.set_trace_capacity 8;
      Fun.protect
        ~finally:(fun () -> Obs.set_trace_capacity 65536)
        (fun () ->
          for i = 0 to 19 do
            ignore (Obs.span (Printf.sprintf "s%d" i) (fun () -> ()))
          done;
          let es = Obs.events () in
          Alcotest.(check int) "ring keeps capacity" 8 (List.length es);
          Alcotest.(check int) "overflow counted" 12 (Obs.dropped_spans ());
          (* oldest-first: the survivors are the last 8 spans *)
          Alcotest.(check string) "oldest survivor" "s12"
            (List.hd es).Obs.span_name))

(* --- Chrome trace export ------------------------------------------------ *)

let test_chrome_trace_export () =
  with_obs (fun () ->
      ignore (Obs.span "alpha" (fun () -> Obs.span "beta" (fun () -> 0)));
      (* round-trip through the writer and parser, as Perfetto would read
         the file *)
      let json = Json.to_string (Obs.chrome_trace ()) in
      match Json.parse json with
      | Error m -> Alcotest.failf "trace JSON does not parse: %s" m
      | Ok doc -> (
          match Option.bind (Json.member "traceEvents" doc) Json.to_list with
          | None -> Alcotest.fail "no traceEvents array"
          | Some evs ->
              Alcotest.(check int) "one event per span" 2 (List.length evs);
              let names =
                List.filter_map
                  (fun e -> Option.bind (Json.member "name" e) Json.to_str)
                  evs
              in
              Alcotest.(check (list string)) "exit order preserved"
                [ "beta"; "alpha" ] names;
              List.iter
                (fun e ->
                  let str k = Option.bind (Json.member k e) Json.to_str in
                  let num k = Option.bind (Json.member k e) Json.to_float in
                  Alcotest.(check (option string)) "complete event" (Some "X")
                    (str "ph");
                  Alcotest.(check bool) "nonnegative duration" true
                    (match num "dur" with Some d -> d >= 0.0 | None -> false);
                  Alcotest.(check bool) "timestamp present" true
                    (num "ts" <> None))
                evs))

(* --- Prometheus export -------------------------------------------------- *)

let test_prometheus_golden () =
  with_obs (fun () ->
      Obs.incr ~by:3 (Obs.counter "golden.count");
      Obs.set (Obs.gauge "golden.gauge") 2.5;
      let h = Obs.histogram "golden.hist" in
      for _ = 1 to 4 do
        Obs.observe h 1.0
      done;
      let expected =
        String.concat "\n"
          [
            "# TYPE sof_golden_count_total counter";
            "sof_golden_count_total 3";
            "# TYPE sof_golden_gauge gauge";
            "sof_golden_gauge 2.5";
            "# TYPE sof_golden_hist summary";
            "sof_golden_hist{quantile=\"0.5\"} 1";
            "sof_golden_hist{quantile=\"0.95\"} 1";
            "sof_golden_hist{quantile=\"0.99\"} 1";
            "sof_golden_hist_sum 4";
            "sof_golden_hist_count 4";
            "";
          ]
      in
      Alcotest.(check string) "golden exposition" expected (Obs.prometheus ()))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_table_smoke () =
  with_obs (fun () ->
      Obs.incr (Obs.counter "t.table");
      ignore (Obs.span "t.table_span" (fun () -> ()));
      let s = Obs.table () in
      Alcotest.(check bool) "mentions the counter" true (contains s "t.table"))

(* --- JSON module -------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\n");
        ("n", Json.Num 1.5);
        ("i", Json.Num 42.0);
        ("b", Json.Bool true);
        ("z", Json.Null);
        ("a", Json.Arr [ Json.Num 0.1; Json.Str "x"; Json.Obj [] ]);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
  | Error m -> Alcotest.failf "round-trip parse failed: %s" m

let test_json_float_precision () =
  let x = 8.124001358999997 in
  match Json.parse (Json.to_string (Json.Num x)) with
  | Ok (Json.Num y) ->
      Alcotest.(check bool) "float survives exactly" true (x = y)
  | _ -> Alcotest.fail "number did not round-trip"

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "parsed %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated" ]

(* --- perf gate --------------------------------------------------------- *)

module Gate = Sof_obs.Gate

let entry topology algo mean_cost mean_wall_s =
  { Gate.topology; algo; mean_cost; mean_wall_s }

let gate_baseline =
  [ entry "softlayer" "sofda" 8.124 0.02; entry "cogent" "est" 18.6 0.01 ]

let compare_rows = Gate.compare_rows ~wall_tolerance:0.5

let test_gate_passes_clean () =
  Alcotest.(check int) "identical rows pass" 0
    (List.length
       (compare_rows ~baseline:gate_baseline ~current:gate_baseline ()));
  (* wall regression inside the tolerance, cost drift inside the epsilon *)
  let current =
    [
      entry "softlayer" "sofda" (8.124 *. (1.0 +. 1e-12)) 0.029;
      entry "cogent" "est" 18.6 0.0001;
    ]
  in
  Alcotest.(check int) "noise-level drift passes" 0
    (List.length (compare_rows ~baseline:gate_baseline ~current ()))

let test_gate_cost_drift () =
  let current =
    [ entry "softlayer" "sofda" 8.3 0.02; entry "cogent" "est" 18.6 0.01 ]
  in
  match compare_rows ~baseline:gate_baseline ~current () with
  | [ Gate.Cost_changed { topology; algo; baseline; observed; drift } ] ->
      Alcotest.(check string) "row topology" "softlayer" topology;
      Alcotest.(check string) "row algo" "sofda" algo;
      Alcotest.check (Alcotest.float 1e-9) "baseline value" 8.124 baseline;
      Alcotest.check (Alcotest.float 1e-9) "observed value" 8.3 observed;
      Alcotest.check (Alcotest.float 1e-9) "relative drift"
        (Gate.rel_drift ~baseline:8.124 ~observed:8.3)
        drift;
      let line =
        Gate.describe
          (List.hd (compare_rows ~baseline:gate_baseline ~current ()))
      in
      let contains needle =
        let nl = String.length needle and ll = String.length line in
        let rec scan i =
          i + nl <= ll && (String.sub line i nl = needle || scan (i + 1))
        in
        scan 0
      in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "describe mentions %s" needle)
            true (contains needle))
        [ "softlayer"; "sofda" ]
  | vs -> Alcotest.failf "expected one cost violation, got %d" (List.length vs)

let test_gate_wall_regression () =
  let current =
    [ entry "softlayer" "sofda" 8.124 0.04; entry "cogent" "est" 18.6 0.01 ]
  in
  (match compare_rows ~baseline:gate_baseline ~current () with
  | [ Gate.Wall_regressed { baseline; observed; tolerance; _ } ] ->
      Alcotest.check (Alcotest.float 1e-9) "wall baseline" 0.02 baseline;
      Alcotest.check (Alcotest.float 1e-9) "wall observed" 0.04 observed;
      Alcotest.check (Alcotest.float 1e-9) "tolerance carried" 0.5 tolerance
  | vs -> Alcotest.failf "expected one wall violation, got %d" (List.length vs));
  (* a wall *improvement* never fails *)
  let current =
    [ entry "softlayer" "sofda" 8.124 0.001; entry "cogent" "est" 18.6 0.01 ]
  in
  Alcotest.(check int) "faster is fine" 0
    (List.length (compare_rows ~baseline:gate_baseline ~current ()))

let test_gate_missing_and_extra () =
  let current =
    [ entry "softlayer" "sofda" 8.124 0.02; entry "inet" "st" 1.0 0.001 ]
  in
  let vs = compare_rows ~baseline:gate_baseline ~current () in
  Alcotest.(check bool) "missing row reported" true
    (List.exists
       (function
         | Gate.Missing_row { topology = "cogent"; algo = "est" } -> true
         | _ -> false)
       vs);
  Alcotest.(check bool) "extra row reported" true
    (List.exists
       (function
         | Gate.Extra_row { topology = "inet"; algo = "st" } -> true
         | _ -> false)
       vs);
  Alcotest.(check int) "nothing else" 2 (List.length vs)

let test_gate_nan_pins_no_measurement () =
  let baseline = [ entry "softlayer" "sofda" Float.nan 0.02 ] in
  Alcotest.(check int) "NaN on both sides compares equal" 0
    (List.length
       (compare_rows ~baseline
          ~current:[ entry "softlayer" "sofda" Float.nan 0.02 ]
          ()));
  Alcotest.(check int) "NaN vs number fails" 1
    (List.length
       (compare_rows ~baseline
          ~current:[ entry "softlayer" "sofda" 1.0 0.02 ]
          ()))

let test_gate_rows_of_json () =
  let doc =
    Json.Obj
      [
        ("experiment", Json.Str "perf");
        ( "rows",
          Json.Arr
            [
              Json.Obj
                [
                  ("topology", Json.Str "softlayer");
                  ("algo", Json.Str "sofda");
                  ("seeds", Json.Num 3.0);
                  ("mean_cost", Json.Num 8.124);
                  ("mean_wall_s", Json.Num 0.02);
                  ("p95_wall_s", Json.Num 0.03);
                ];
            ] );
      ]
  in
  (match Gate.rows_of_json doc with
  | Ok [ e ] ->
      Alcotest.(check string) "algo decoded" "sofda" e.Gate.algo;
      Alcotest.check (Alcotest.float 1e-12) "cost decoded" 8.124 e.Gate.mean_cost
  | Ok l -> Alcotest.failf "expected 1 entry, got %d" (List.length l)
  | Error e -> Alcotest.failf "decode failed: %s" e);
  match Gate.rows_of_json (Json.Obj [ ("rows", Json.Str "nope") ]) with
  | Ok _ -> Alcotest.fail "malformed document decoded"
  | Error _ -> ()

(* --- transparency (direct, oracle-shaped) ------------------------------- *)

let test_transparency_direct () =
  let p =
    let rng = Sof_util.Rng.create 11 in
    Sof_workload.Instance.draw ~rng
      (Sof_topology.Topology.testbed ())
      {
        Sof_workload.Instance.n_vms = 8;
        n_sources = 2;
        n_dests = 4;
        chain_length = 2;
        setup_multiplier = 1.0;
      }
  in
  let off = Sof.Sofda.solve p in
  let on = with_obs (fun () -> Sof.Sofda.solve p) in
  match (off, on) with
  | Some a, Some b ->
      Alcotest.(check bool) "bit-identical forests" true
        (a.Sof.Sofda.forest.Sof.Forest.walks
         = b.Sof.Sofda.forest.Sof.Forest.walks
        && a.Sof.Sofda.forest.Sof.Forest.delivery
           = b.Sof.Sofda.forest.Sof.Forest.delivery
        && Sof.Forest.total_cost a.Sof.Sofda.forest
           = Sof.Forest.total_cost b.Sof.Sofda.forest)
  | _ -> Alcotest.fail "testbed instance should solve both ways"

let suite =
  [
    Alcotest.test_case "quantile: empty" `Quick test_quantile_empty;
    Alcotest.test_case "quantile: single sample" `Quick test_quantile_single;
    Alcotest.test_case "quantile: all equal" `Quick test_quantile_all_equal;
    Alcotest.test_case "quantile: monotone + bounded" `Quick
      test_quantile_monotone_and_bounded;
    Alcotest.test_case "quantile: out of range" `Quick
      test_quantile_out_of_range;
    Alcotest.test_case "counter + gauge" `Quick test_counter_gauge;
    Alcotest.test_case "disabled sink is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "name/kind clash" `Quick test_kind_clash;
    Alcotest.test_case "span nesting + ordering" `Quick test_span_nesting;
    Alcotest.test_case "span re-raises" `Quick test_span_reraises;
    Alcotest.test_case "span ring bounded" `Quick test_span_ring_bounded;
    Alcotest.test_case "chrome trace export" `Quick test_chrome_trace_export;
    Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
    Alcotest.test_case "table smoke" `Quick test_table_smoke;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json float precision" `Quick test_json_float_precision;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "gate: clean rows pass" `Quick test_gate_passes_clean;
    Alcotest.test_case "gate: cost drift" `Quick test_gate_cost_drift;
    Alcotest.test_case "gate: wall regression" `Quick test_gate_wall_regression;
    Alcotest.test_case "gate: missing + extra rows" `Quick
      test_gate_missing_and_extra;
    Alcotest.test_case "gate: NaN baseline" `Quick
      test_gate_nan_pins_no_measurement;
    Alcotest.test_case "gate: rows_of_json" `Quick test_gate_rows_of_json;
    Alcotest.test_case "transparency (direct)" `Quick test_transparency_direct;
  ]
