module Simplex = Sof_lp.Simplex
module Ilp = Sof_lp.Ilp
module Col_gen = Sof_lp.Col_gen
open Testlib

let lp ~n ~objective ~rows ~relations ~rhs =
  {
    Simplex.n_vars = n;
    objective = Array.of_list objective;
    rows = Array.of_list rows;
    relations = Array.of_list relations;
    rhs = Array.of_list rhs;
  }

let expect_optimal name p expected_obj =
  match Simplex.solve p with
  | Simplex.Optimal { x; objective } ->
      Alcotest.check (Alcotest.float 1e-6) name expected_obj objective;
      Alcotest.(check bool) (name ^ " feasible") true
        (Simplex.check_feasible p x)
  | Simplex.Infeasible -> Alcotest.fail (name ^ ": infeasible")
  | Simplex.Unbounded -> Alcotest.fail (name ^ ": unbounded")
  | Simplex.Iteration_limit -> Alcotest.fail (name ^ ": iteration limit")

let test_basic_le () =
  expect_optimal "max x+y in simplex" (
    lp ~n:2 ~objective:[ -1.0; -1.0 ]
      ~rows:[ [ (0, 1.0); (1, 1.0) ] ]
      ~relations:[ Simplex.Le ] ~rhs:[ 1.0 ])
    (-1.0)

let test_ge () =
  expect_optimal "min x with x >= 3"
    (lp ~n:1 ~objective:[ 1.0 ] ~rows:[ [ (0, 1.0) ] ]
       ~relations:[ Simplex.Ge ] ~rhs:[ 3.0 ])
    3.0

let test_eq () =
  expect_optimal "min 2x+3y, x+y=4, x<=1"
    (lp ~n:2 ~objective:[ 2.0; 3.0 ]
       ~rows:[ [ (0, 1.0); (1, 1.0) ]; [ (0, 1.0) ] ]
       ~relations:[ Simplex.Eq; Simplex.Le ] ~rhs:[ 4.0; 1.0 ])
    11.0

let test_degenerate_classic () =
  (* Beale-style degeneracy: the Bland fallback must terminate. *)
  expect_optimal "beale"
    (lp ~n:4
       ~objective:[ -0.75; 150.0; -0.02; 6.0 ]
       ~rows:
         [
           [ (0, 0.25); (1, -60.0); (2, -0.04); (3, 9.0) ];
           [ (0, 0.5); (1, -90.0); (2, -0.02); (3, 3.0) ];
           [ (2, 1.0) ];
         ]
       ~relations:[ Simplex.Le; Simplex.Le; Simplex.Le ]
       ~rhs:[ 0.0; 0.0; 1.0 ])
    (-0.05)

let test_infeasible () =
  let p =
    lp ~n:1 ~objective:[ 1.0 ]
      ~rows:[ [ (0, 1.0) ]; [ (0, 1.0) ] ]
      ~relations:[ Simplex.Ge; Simplex.Le ] ~rhs:[ 5.0; 1.0 ]
  in
  Alcotest.(check bool) "infeasible" true (Simplex.solve p = Simplex.Infeasible)

let test_unbounded () =
  let p =
    lp ~n:1 ~objective:[ -1.0 ] ~rows:[ [ (0, 1.0) ] ]
      ~relations:[ Simplex.Ge ] ~rhs:[ 0.0 ]
  in
  Alcotest.(check bool) "unbounded" true (Simplex.solve p = Simplex.Unbounded)

let test_negative_rhs_normalization () =
  (* -x <= -2  ==  x >= 2 *)
  expect_optimal "negative rhs"
    (lp ~n:1 ~objective:[ 1.0 ] ~rows:[ [ (0, -1.0) ] ]
       ~relations:[ Simplex.Le ] ~rhs:[ -2.0 ])
    2.0

(* Random box LPs with analytic optima: min c.x s.t. x_i <= u_i. *)
let prop_box_lp =
  QCheck.Test.make ~count:200 ~name:"box LP analytic optimum"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Sof_util.Rng.create seed in
      let n = 1 + Sof_util.Rng.int rng 8 in
      let c = Array.init n (fun _ -> Sof_util.Rng.float rng 10.0 -. 5.0) in
      let u = Array.init n (fun _ -> 0.5 +. Sof_util.Rng.float rng 5.0) in
      let p =
        {
          Simplex.n_vars = n;
          objective = c;
          rows = Array.init n (fun i -> [ (i, 1.0) ]);
          relations = Array.make n Simplex.Le;
          rhs = u;
        }
      in
      let expected =
        Array.to_list (Array.mapi (fun i ci -> if ci < 0.0 then ci *. u.(i) else 0.0) c)
        |> List.fold_left ( +. ) 0.0
      in
      match Simplex.solve p with
      | Simplex.Optimal { objective; _ } -> abs_float (objective -. expected) < 1e-6
      | _ -> false)

(* Random transportation LPs checked for feasibility + weak duality against
   a greedy feasible solution. *)
let prop_transport_le_greedy =
  QCheck.Test.make ~count:100 ~name:"transport LP optimum <= greedy"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Sof_util.Rng.create seed in
      let s = 2 + Sof_util.Rng.int rng 2 in
      let d = 2 + Sof_util.Rng.int rng 2 in
      let supply = Array.init s (fun _ -> 1.0 +. Sof_util.Rng.float rng 4.0) in
      let demand_total = Array.fold_left ( +. ) 0.0 supply in
      let demand = Array.make d (demand_total /. float_of_int d) in
      let cost = Array.init s (fun _ -> Array.init d (fun _ -> Sof_util.Rng.float rng 9.0)) in
      let var i j = (i * d) + j in
      let rows_supply =
        Array.init s (fun i -> List.init d (fun j -> (var i j, 1.0)))
      in
      let rows_demand =
        Array.init d (fun j -> List.init s (fun i -> (var i j, 1.0)))
      in
      let p =
        {
          Simplex.n_vars = s * d;
          objective =
            Array.init (s * d) (fun k -> cost.(k / d).(k mod d));
          rows = Array.append rows_supply rows_demand;
          relations =
            Array.append (Array.make s Simplex.Le) (Array.make d Simplex.Eq);
          rhs = Array.append supply demand;
        }
      in
      (* greedy: fill each demand from sources in order *)
      let remaining = Array.copy supply in
      let greedy = ref 0.0 in
      Array.iteri
        (fun j dj ->
          let need = ref dj in
          Array.iteri
            (fun i _ ->
              let take = min !need remaining.(i) in
              remaining.(i) <- remaining.(i) -. take;
              need := !need -. take;
              greedy := !greedy +. (take *. cost.(i).(j)))
            remaining)
        demand;
      match Simplex.solve p with
      | Simplex.Optimal { objective; x } ->
          objective <= !greedy +. 1e-6 && Simplex.check_feasible p x
      | _ -> false)

(* --- ILP ------------------------------------------------------------- *)

let knapsack_ilp values weights cap =
  let n = Array.length values in
  Ilp.make
    ~binaries:(List.init n Fun.id)
    {
      Simplex.n_vars = n;
      objective = Array.map (fun v -> -.v) values;
      rows = [| Array.to_list (Array.mapi (fun i w -> (i, w)) weights) |];
      relations = [| Simplex.Le |];
      rhs = [| cap |];
    }

let brute_knapsack values weights cap =
  let n = Array.length values in
  let best = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let v = ref 0.0 and w = ref 0.0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        v := !v +. values.(i);
        w := !w +. weights.(i)
      end
    done;
    if !w <= cap +. 1e-9 && !v > !best then best := !v
  done;
  !best

let test_ilp_knapsack () =
  let values = [| 10.0; 13.0; 7.0; 8.0 |] in
  let weights = [| 5.0; 6.0; 3.0; 4.0 |] in
  let r = Ilp.solve (knapsack_ilp values weights 10.0) in
  (match r.Ilp.best with
  | Some (_, obj) ->
      Alcotest.check (Alcotest.float 1e-6) "knapsack optimum"
        (-.brute_knapsack values weights 10.0)
        obj
  | None -> Alcotest.fail "expected solution");
  Alcotest.(check bool) "status optimal" true (r.Ilp.status = Ilp.Optimal)

let prop_ilp_knapsack_random =
  QCheck.Test.make ~count:60 ~name:"B&B matches brute-force knapsack"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Sof_util.Rng.create seed in
      let n = 2 + Sof_util.Rng.int rng 7 in
      let values = Array.init n (fun _ -> 1.0 +. Sof_util.Rng.float rng 9.0) in
      let weights = Array.init n (fun _ -> 1.0 +. Sof_util.Rng.float rng 9.0) in
      let cap = 2.0 +. Sof_util.Rng.float rng 20.0 in
      let r = Ilp.solve (knapsack_ilp values weights cap) in
      let brute = brute_knapsack values weights cap in
      match r.Ilp.best with
      | Some (x, obj) ->
          abs_float (obj +. brute) < 1e-5
          && Array.for_all
               (fun v -> abs_float (v -. Float.round v) < 1e-5)
               x
      | None -> brute = 0.0)

let test_ilp_infeasible () =
  let p =
    Ilp.make ~binaries:[ 0; 1 ]
      {
        Simplex.n_vars = 2;
        objective = [| 1.0; 1.0 |];
        rows = [| [ (0, 1.0); (1, 1.0) ] |];
        relations = [| Simplex.Ge |];
        rhs = [| 3.0 |];
      }
  in
  let r = Ilp.solve p in
  Alcotest.(check bool) "infeasible" true (r.Ilp.status = Ilp.Infeasible)

let test_ilp_bound_sane () =
  let values = [| 4.0; 5.0; 6.0 |] and weights = [| 2.0; 3.0; 4.0 |] in
  let r = Ilp.solve (knapsack_ilp values weights 6.0) in
  (match r.Ilp.best with
  | Some (_, obj) ->
      Alcotest.(check bool) "bound <= incumbent" true (r.Ilp.bound <= obj +. 1e-9)
  | None -> Alcotest.fail "expected solution")

(* --- duals ----------------------------------------------------------- *)

let test_solve_dual_signs () =
  (* min 2x + 3y  s.t.  x + y >= 4 (Ge: y1 >= 0), x <= 3 (Le: y2 <= 0). *)
  let p =
    lp ~n:2 ~objective:[ 2.0; 3.0 ]
      ~rows:[ [ (0, 1.0); (1, 1.0) ]; [ (0, 1.0) ] ]
      ~relations:[ Simplex.Ge; Simplex.Le ] ~rhs:[ 4.0; 3.0 ]
  in
  match Simplex.solve_dual p with
  | Simplex.Optimal { objective; _ }, Some y ->
      Alcotest.check (Alcotest.float 1e-6) "primal optimum" 9.0 objective;
      Alcotest.(check bool) "Ge dual nonnegative" true (y.(0) >= -1e-9);
      Alcotest.(check bool) "Le dual nonpositive" true (y.(1) <= 1e-9);
      (* strong duality: y.b = objective *)
      Alcotest.check (Alcotest.float 1e-6) "y.b = objective"
        objective
        ((y.(0) *. 4.0) +. (y.(1) *. 3.0))
  | _ -> Alcotest.fail "expected optimal with duals"

let test_solve_dual_flipped_row () =
  (* -x <= -2 is normalized internally; the reported dual must refer to
     the original row: min x s.t. x >= 2 has y = 1 on that row, so the
     Le-as-written row carries y = -1. *)
  let p =
    lp ~n:1 ~objective:[ 1.0 ] ~rows:[ [ (0, -1.0) ] ]
      ~relations:[ Simplex.Le ] ~rhs:[ -2.0 ]
  in
  match Simplex.solve_dual p with
  | Simplex.Optimal { objective; _ }, Some y ->
      Alcotest.check (Alcotest.float 1e-6) "objective" 2.0 objective;
      Alcotest.check (Alcotest.float 1e-6) "flipped dual" (-1.0) y.(0)
  | _ -> Alcotest.fail "expected optimal with duals"

(* Weak duality on random transportation LPs: reduced costs of every
   column are nonnegative at optimality (the pricing certificate). *)
let prop_dual_certificate =
  QCheck.Test.make ~count:100 ~name:"dual certificate: reduced costs >= 0"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Sof_util.Rng.create seed in
      let n = 2 + Sof_util.Rng.int rng 5 in
      let m = 1 + Sof_util.Rng.int rng 4 in
      let p =
        {
          Simplex.n_vars = n;
          objective =
            Array.init n (fun _ -> Sof_util.Rng.float rng 10.0 -. 2.0);
          rows =
            Array.init m (fun _ ->
                List.init n (fun j ->
                    (j, Sof_util.Rng.float rng 3.0 +. 0.1)));
          relations =
            Array.init m (fun _ ->
                if Sof_util.Rng.bool rng then Simplex.Ge else Simplex.Le);
          rhs = Array.init m (fun _ -> Sof_util.Rng.float rng 8.0);
        }
      in
      match Simplex.solve_dual p with
      | Simplex.Optimal _, Some y ->
          let ok = ref true in
          for j = 0 to n - 1 do
            let rc = ref p.Simplex.objective.(j) in
            Array.iteri
              (fun i row ->
                List.iter
                  (fun (j', v) -> if j' = j then rc := !rc -. (y.(i) *. v))
                  row)
              p.Simplex.rows;
            if !rc < -1e-6 then ok := false
          done;
          !ok
      | (Simplex.Infeasible | Simplex.Unbounded), _ -> true
      | _ -> false)

(* --- column generation ----------------------------------------------- *)

let box ~n ~c ~u =
  {
    Simplex.n_vars = n;
    objective = c;
    rows = Array.init n (fun i -> [ (i, 1.0) ]);
    relations = Array.make n Simplex.Le;
    rhs = u;
  }

let test_colgen_matches_dense () =
  (* Cover LP: every row is zero-violated, so the loop must price the
     cheap columns in; proven termination must equal the dense optimum. *)
  let p =
    lp ~n:4 ~objective:[ 3.0; 1.0; 4.0; 2.0 ]
      ~rows:
        [
          [ (0, 1.0); (1, 1.0) ];
          [ (1, 1.0); (2, 1.0) ];
          [ (2, 1.0); (3, 1.0) ];
        ]
      ~relations:[ Simplex.Ge; Simplex.Ge; Simplex.Ge ]
      ~rhs:[ 1.0; 1.0; 1.0 ]
  in
  let r = Col_gen.solve ~var_upper:2.0 p in
  (match Simplex.solve p with
  | Simplex.Optimal { objective; _ } ->
      Alcotest.(check bool) "proven" true r.Col_gen.proven;
      (* the anti-degeneracy perturbation may shave O(1e-7) off *)
      Alcotest.check (Alcotest.float 1e-4) "cg = dense" objective
        r.Col_gen.bound
  | _ -> Alcotest.fail "dense solve failed");
  match r.Col_gen.outcome with
  | Col_gen.Optimal { x; _ } ->
      Alcotest.(check bool) "primal feasible" true
        (Simplex.check_feasible p x)
  | _ -> Alcotest.fail "expected optimal outcome"

let test_colgen_infeasible_escalates () =
  (* x0 >= 1 (activates x0) and x0 + x1 = 2 with x0 <= 0.5: the
     restricted master is infeasible until escalation brings x1 in; then
     phase 1 proves the whole LP feasible and pricing converges. *)
  let feasible =
    lp ~n:2 ~objective:[ 1.0; 1.0 ]
      ~rows:[ [ (0, 1.0) ]; [ (0, 1.0); (1, 1.0) ]; [ (0, 1.0) ] ]
      ~relations:[ Simplex.Ge; Simplex.Eq; Simplex.Le ]
      ~rhs:[ 0.2; 2.0; 0.5 ]
  in
  let r = Col_gen.solve ~var_upper:2.0 feasible in
  (match r.Col_gen.outcome with
  | Col_gen.Optimal { objective; _ } ->
      Alcotest.check (Alcotest.float 1e-4) "escalated optimum" 2.0 objective
  | _ -> Alcotest.fail "expected optimal after escalation");
  (* genuinely infeasible: x0 >= 3 and x0 <= 1 *)
  let infeasible =
    lp ~n:1 ~objective:[ 1.0 ]
      ~rows:[ [ (0, 1.0) ]; [ (0, 1.0) ] ]
      ~relations:[ Simplex.Ge; Simplex.Le ] ~rhs:[ 3.0; 1.0 ]
  in
  let r = Col_gen.solve infeasible in
  Alcotest.(check bool) "proven infeasible" true
    (r.Col_gen.outcome = Col_gen.Infeasible && r.Col_gen.proven)

let test_colgen_unbounded () =
  (* min -x with x >= 1: the ray is feasible for the full LP too. *)
  let p =
    lp ~n:1 ~objective:[ -1.0 ] ~rows:[ [ (0, 1.0) ] ]
      ~relations:[ Simplex.Ge ] ~rhs:[ 1.0 ]
  in
  let r = Col_gen.solve p in
  Alcotest.(check bool) "unbounded" true
    (r.Col_gen.outcome = Col_gen.Unbounded)

let test_colgen_stall_bound_sound () =
  (* One pricing round on a box LP with all-negative costs: nothing can
     finish, but the Lagrangian fallback must still lower-bound the true
     optimum (here sum c_i u_i = -6 with var_upper = 2 giving -10). *)
  let p = box ~n:5 ~c:(Array.make 5 (-1.0)) ~u:(Array.make 5 1.2) in
  let r = Col_gen.solve ~max_rounds:1 ~batch:2 ~var_upper:2.0 p in
  (match r.Col_gen.outcome with
  | Col_gen.Stalled _ -> ()
  | _ -> Alcotest.fail "expected stall at max_rounds = 1");
  Alcotest.(check bool) "not proven" false r.Col_gen.proven;
  Alcotest.(check bool) "stall bound is a lower bound" true
    (r.Col_gen.bound <= -6.0 +. 1e-6);
  Alcotest.(check bool) "stall bound is finite" true
    (Float.is_finite r.Col_gen.bound);
  (* with rounds to spare the same LP must terminate proven *)
  let full = Col_gen.solve ~var_upper:2.0 p in
  Alcotest.(check bool) "pricing loop terminates" true full.Col_gen.proven;
  Alcotest.check (Alcotest.float 1e-4) "full optimum" (-6.0)
    full.Col_gen.bound

let prop_colgen_matches_dense_random =
  QCheck.Test.make ~count:60 ~name:"col_gen = dense simplex on cover LPs"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Sof_util.Rng.create seed in
      let n = 3 + Sof_util.Rng.int rng 6 in
      let m = 2 + Sof_util.Rng.int rng 4 in
      let p =
        {
          Simplex.n_vars = n;
          objective =
            Array.init n (fun _ -> 0.5 +. Sof_util.Rng.float rng 9.0);
          rows =
            Array.init m (fun _ ->
                List.filteri
                  (fun j _ -> j = 0 || Sof_util.Rng.bool rng)
                  (List.init n (fun j -> (j, 1.0))));
          relations = Array.make m Simplex.Ge;
          rhs = Array.init m (fun _ -> 0.5 +. Sof_util.Rng.float rng 2.0);
        }
      in
      let r = Col_gen.solve ~batch:2 ~var_upper:10.0 p in
      match (r.Col_gen.outcome, Simplex.solve p) with
      | Col_gen.Optimal _, Simplex.Optimal { objective; _ } ->
          r.Col_gen.proven
          && abs_float (r.Col_gen.bound -. objective)
             <= 1e-4 *. max 1.0 (abs_float objective)
          && r.Col_gen.bound <= objective +. 1e-9
      | _ -> false)

(* --- ILP budget expiry (bound soundness) ------------------------------ *)

let cover_ilp =
  (* min x0 + x1 + x2, pairwise covers, binaries; optimum 2. *)
  Ilp.make
    ~binaries:[ 0; 1; 2 ]
    {
      Simplex.n_vars = 3;
      objective = [| 1.0; 1.0; 1.0 |];
      rows =
        [|
          [ (0, 1.0); (1, 1.0) ];
          [ (1, 1.0); (2, 1.0) ];
          [ (0, 1.0); (2, 1.0) ];
        |];
      relations = [| Simplex.Ge; Simplex.Ge; Simplex.Ge |];
      rhs = [| 1.0; 1.0; 1.0 |];
    }

let test_ilp_budget_bound_finite () =
  (* Root relaxation cut off after 0 pivots: the solver must fall back to
     the trivial bound for the nonnegative objective — a finite proven
     bound, never nan, never infinity, and never a spurious Infeasible. *)
  let r = Ilp.solve ~max_iters:0 cover_ilp in
  Alcotest.(check bool) "budget exhausted" true
    (r.Ilp.status = Ilp.Budget_exhausted);
  Alcotest.(check bool) "bound finite" true (Float.is_finite r.Ilp.bound);
  Alcotest.(check bool) "bound not nan" false (Float.is_nan r.Ilp.bound);
  Alcotest.(check bool) "bound sound vs optimum 2" true (r.Ilp.bound <= 2.0)

let test_ilp_node_budget_bound () =
  (* node_limit 0: nothing explored, same finite-bound contract. *)
  let r = Ilp.solve ~node_limit:0 cover_ilp in
  Alcotest.(check bool) "not optimal" true (r.Ilp.status <> Ilp.Optimal);
  Alcotest.(check bool) "bound finite" true (Float.is_finite r.Ilp.bound);
  Alcotest.(check bool) "bound sound" true (r.Ilp.bound <= 2.0 +. 1e-9);
  (* untouched budget: same ILP solves to its true optimum *)
  let full = Ilp.solve cover_ilp in
  (match full.Ilp.best with
  | Some (_, obj) ->
      Alcotest.check (Alcotest.float 1e-6) "cover optimum" 2.0 obj
  | None -> Alcotest.fail "expected cover solution");
  Alcotest.(check bool) "full bound finite" true
    (Float.is_finite full.Ilp.bound)

(* --- randomized rounding determinism ---------------------------------- *)

let fixed_instance seed =
  Sof_prop.Spec.to_problem
    (Sof_prop.Spec.gen_mixed (Sof_util.Rng.create seed))

let forest_fingerprint (f : Sof.Forest.t) =
  ( List.map
      (fun (w : Sof.Forest.walk) ->
        ( w.Sof.Forest.source,
          Array.to_list w.Sof.Forest.hops,
          List.map
            (fun (m : Sof.Forest.mark) -> (m.Sof.Forest.pos, m.Sof.Forest.vnf))
            w.Sof.Forest.marks ))
      f.Sof.Forest.walks,
    f.Sof.Forest.delivery )

let test_rounding_deterministic () =
  List.iter
    (fun inst_seed ->
      let p = fixed_instance inst_seed in
      match
        (Sof.Lp_round.solve ~seed:3 p, Sof.Lp_round.solve ~seed:3 p)
      with
      | None, None -> ()
      | Some a, Some b ->
          Alcotest.(check bool)
            (Printf.sprintf "instance %d: same seed, same forest" inst_seed)
            true
            (forest_fingerprint a.Sof.Lp_round.forest
             = forest_fingerprint b.Sof.Lp_round.forest);
          Alcotest.(check bool) "same bound" true
            (a.Sof.Lp_round.lp_bound = b.Sof.Lp_round.lp_bound);
          Alcotest.(check bool) "same repairs" true
            (a.Sof.Lp_round.repairs = b.Sof.Lp_round.repairs)
      | _ -> Alcotest.fail "feasibility flipped between identical runs")
    [ 2; 5; 8 ]

let test_rounding_seed_independent_bound () =
  let p = fixed_instance 2 in
  match (Sof.Lp_round.solve ~seed:0 p, Sof.Lp_round.solve ~seed:99 p) with
  | Some a, Some b ->
      Alcotest.(check bool) "bound independent of rounding seed" true
        (a.Sof.Lp_round.lp_bound = b.Sof.Lp_round.lp_bound)
  | _ -> Alcotest.fail "expected embeddings on the fixed instance"

let suite =
  [
    Alcotest.test_case "basic le" `Quick test_basic_le;
    Alcotest.test_case "ge" `Quick test_ge;
    Alcotest.test_case "eq" `Quick test_eq;
    Alcotest.test_case "degenerate" `Quick test_degenerate_classic;
    Alcotest.test_case "infeasible" `Quick test_infeasible;
    Alcotest.test_case "unbounded" `Quick test_unbounded;
    Alcotest.test_case "negative rhs" `Quick test_negative_rhs_normalization;
    Alcotest.test_case "ilp knapsack" `Quick test_ilp_knapsack;
    Alcotest.test_case "ilp infeasible" `Quick test_ilp_infeasible;
    Alcotest.test_case "ilp bound" `Quick test_ilp_bound_sane;
    Alcotest.test_case "dual signs" `Quick test_solve_dual_signs;
    Alcotest.test_case "dual flipped row" `Quick test_solve_dual_flipped_row;
    Alcotest.test_case "colgen = dense" `Quick test_colgen_matches_dense;
    Alcotest.test_case "colgen infeasible escalation" `Quick
      test_colgen_infeasible_escalates;
    Alcotest.test_case "colgen unbounded" `Quick test_colgen_unbounded;
    Alcotest.test_case "colgen stall bound" `Quick
      test_colgen_stall_bound_sound;
    Alcotest.test_case "ilp budget bound finite" `Quick
      test_ilp_budget_bound_finite;
    Alcotest.test_case "ilp node budget bound" `Quick
      test_ilp_node_budget_bound;
    Alcotest.test_case "rounding deterministic" `Quick
      test_rounding_deterministic;
    Alcotest.test_case "rounding seed-independent bound" `Quick
      test_rounding_seed_independent_bound;
  ]
  @ qsuite
      [
        prop_box_lp;
        prop_transport_le_greedy;
        prop_ilp_knapsack_random;
        prop_dual_certificate;
        prop_colgen_matches_dense_random;
      ]
