(* The Domain pool and its determinism contract.

   - Pool.parallel_map/mapi/reduce agree with the sequential Array
     functions on every input shape (empty, single, chunk-boundary sizes)
     and propagate exceptions.
   - Sofda.solve produces bit-identical reports with 1 domain and with 4
     domains on random instances (the acceptance criterion of the
     parallel engine).
   - Regression pins for the k-stroll closed-walk convention and the
     Transform.expand empty-path fix. *)

module Pool = Sof_util.Pool
module Kstroll = Sof_kstroll.Kstroll
open Testlib

(* Every test restores the pool to the sequential default so suites stay
   order-independent. *)
let with_domains n f =
  let saved = Pool.size () in
  Fun.protect ~finally:(fun () -> Pool.set_size saved) (fun () ->
      Pool.set_size n;
      f ())

(* --- Pool unit tests -------------------------------------------------- *)

let test_map_empty () =
  with_domains 4 (fun () ->
      Alcotest.(check int) "empty" 0 (Array.length (Pool.parallel_map succ [||])))

let test_map_matches_sequential () =
  (* Sizes straddling the chunking logic: 1 (sequential shortcut), sizes
     below/at/above the chunk count (4 domains -> up to 16 chunks), a
     prime, and a size big enough for several elements per chunk. *)
  with_domains 4 (fun () ->
      List.iter
        (fun n ->
          let input = Array.init n (fun i -> i) in
          let expected = Array.map (fun x -> (x * x) + 1) input in
          let got = Pool.parallel_map (fun x -> (x * x) + 1) input in
          Alcotest.(check (array int))
            (Printf.sprintf "n=%d" n)
            expected got)
        [ 1; 2; 3; 15; 16; 17; 31; 97; 1000 ])

let test_mapi_indices () =
  with_domains 4 (fun () ->
      let input = Array.make 100 7 in
      let got = Pool.parallel_mapi (fun i x -> (i * 10) + x) input in
      let expected = Array.init 100 (fun i -> (i * 10) + 7) in
      Alcotest.(check (array int)) "mapi" expected got)

let test_exceptions_propagate () =
  with_domains 4 (fun () ->
      Alcotest.check_raises "exception crosses domains" (Failure "boom")
        (fun () ->
          ignore
            (Pool.parallel_map
               (fun x -> if x = 57 then failwith "boom" else x)
               (Array.init 100 (fun i -> i))));
      (* The pool survives a failed region. *)
      let got = Pool.parallel_map succ (Array.init 10 (fun i -> i)) in
      Alcotest.(check (array int)) "pool alive after failure"
        (Array.init 10 succ) got)

exception Probe of int

(* Raise from a chunk through a couple of stack frames so the captured
   backtrace has something to preserve. *)
let[@inline never] rec deep_raise n =
  if n = 0 then raise (Probe 42) else 1 + deep_raise (n - 1)

let check_exception_path degree =
  with_domains degree (fun () ->
      Printexc.record_backtrace true;
      let seen = ref None in
      (try
         ignore
           (Pool.parallel_map
              (fun x -> if x = 73 then deep_raise 5 else x)
              (Array.init 200 (fun i -> i)))
       with Probe n ->
         seen := Some (n, Printexc.get_raw_backtrace ()));
      match !seen with
      | None -> Alcotest.fail "Probe did not propagate"
      | Some (n, bt) ->
          Alcotest.(check int) "original payload" 42 n;
          (* [raise_with_backtrace] hands the worker's trace to the
             caller: the frames of [deep_raise] must still be there. *)
          Alcotest.(check bool) "backtrace preserved" true
            (Printexc.raw_backtrace_length bt > 0);
          (* the pool is not wedged: the next region runs to completion *)
          let got = Pool.parallel_map succ (Array.init 64 (fun i -> i)) in
          Alcotest.(check (array int)) "pool reusable"
            (Array.init 64 succ) got)

let test_exception_backtrace_seq () = check_exception_path 1
let test_exception_backtrace_par () = check_exception_path 4

let test_reduce_order () =
  (* Non-commutative combine exposes any result-order nondeterminism. *)
  with_domains 4 (fun () ->
      let input = Array.init 50 (fun i -> i) in
      let got =
        Pool.parallel_reduce
          ~combine:(fun acc s -> acc ^ s)
          ~init:""
          string_of_int input
      in
      let expected =
        Array.fold_left (fun acc i -> acc ^ string_of_int i) "" input
      in
      Alcotest.(check string) "in-order fold" expected got)

let test_nested_regions_sequentialize () =
  with_domains 4 (fun () ->
      let got =
        Pool.parallel_map
          (fun x ->
            (* Inner call runs inside a region: must take the sequential
               path, not deadlock or respawn the pool. *)
            Array.fold_left ( + ) 0
              (Pool.parallel_map (fun y -> x + y) (Array.init 20 (fun i -> i))))
          (Array.init 30 (fun i -> i))
      in
      let expected =
        Array.init 30 (fun x -> (20 * x) + Array.fold_left ( + ) 0 (Array.init 20 Fun.id))
      in
      Alcotest.(check (array int)) "nested" expected got)

let test_resize () =
  (* Flipping sizes respawns the pool; results stay identical. *)
  let input = Array.init 200 (fun i -> i) in
  let expected = Array.map (fun x -> x * 3) input in
  List.iter
    (fun n ->
      with_domains n (fun () ->
          Alcotest.(check (array int))
            (Printf.sprintf "domains=%d" n)
            expected
            (Pool.parallel_map (fun x -> x * 3) input)))
    [ 1; 2; 4; 1; 3 ]

(* --- persistent shard queues ------------------------------------------ *)

let test_shard_queue_order () =
  (* Per-shard FIFO: tasks on one shard never run concurrently or out of
     submission order, even when shards outnumber pool workers. *)
  with_domains 4 (fun () ->
      let shards = 3 in
      let sq = Pool.shard_queue ~shards in
      Fun.protect
        ~finally:(fun () -> Pool.shard_close sq)
        (fun () ->
          let logs = Array.init shards (fun _ -> ref []) in
          for i = 0 to 29 do
            let s = i mod shards in
            Pool.shard_submit sq ~shard:s (fun () -> logs.(s) := i :: !(logs.(s)))
          done;
          Pool.shard_drain sq;
          Array.iteri
            (fun s log ->
              let want = List.init 10 (fun k -> (k * shards) + s) in
              Alcotest.(check (list int))
                (Printf.sprintf "shard %d in submission order" s)
                want (List.rev !log))
            logs))

let test_shard_queue_error_completion () =
  (* A failing task does not cancel its peers: every submitted task
     still runs (complete-journal semantics), and the first error is
     re-raised at drain exactly once. *)
  with_domains 4 (fun () ->
      let sq = Pool.shard_queue ~shards:2 in
      let ran = Atomic.make 0 in
      Pool.shard_submit sq ~shard:0 (fun () -> Atomic.incr ran);
      Pool.shard_submit sq ~shard:0 (fun () -> failwith "boom");
      Pool.shard_submit sq ~shard:0 (fun () -> Atomic.incr ran);
      Pool.shard_submit sq ~shard:1 (fun () -> Atomic.incr ran);
      let raised =
        try
          Pool.shard_drain sq;
          false
        with Failure m -> m = "boom"
      in
      Alcotest.(check bool) "drain re-raises the task error" true raised;
      Alcotest.(check int) "every task still ran" 3 (Atomic.get ran);
      (* the error was consumed by the drain: close is clean *)
      Pool.shard_close sq;
      Pool.shard_close sq (* idempotent *))

let test_shard_queue_sequential_inline () =
  (* At degree 1 the queue degrades to inline execution at submit. *)
  with_domains 1 (fun () ->
      let sq = Pool.shard_queue ~shards:4 in
      let hits = ref [] in
      Pool.shard_submit sq ~shard:2 (fun () -> hits := 2 :: !hits);
      Pool.shard_submit sq ~shard:0 (fun () -> hits := 0 :: !hits);
      Alcotest.(check (list int)) "ran inline at submit" [ 0; 2 ] !hits;
      Pool.shard_drain sq;
      Pool.shard_close sq)

let test_set_size_rejected_while_live () =
  (* Regression: resizing the pool under a live shard queue would strand
     its pump tasks in the dying pool's queue — it must be rejected with
     a clear error, and allowed again once the queue is closed. *)
  with_domains 2 (fun () ->
      let sq = Pool.shard_queue ~shards:2 in
      Alcotest.(check int) "queue counted live" 1 (Pool.live_shard_queues ());
      let rejected =
        try
          Pool.set_size 4;
          false
        with Invalid_argument _ -> true
      in
      Pool.shard_close sq;
      Alcotest.(check bool) "set_size rejected while live" true rejected;
      Alcotest.(check int) "no queues live after close" 0
        (Pool.live_shard_queues ());
      Pool.set_size 3;
      Alcotest.(check int) "resize after close honoured" 3 (Pool.size ()))

(* --- Sofda determinism across domain counts --------------------------- *)

let check_same_report ~tag r1 r4 =
  match (r1, r4) with
  | None, None -> ()
  | Some _, None | None, Some _ ->
      Alcotest.fail (tag ^ ": feasibility differs across domain counts")
  | Some a, Some b ->
      let open Sof.Sofda in
      Alcotest.(check bool)
        (tag ^ ": total cost bit-identical")
        true
        (Float.equal
           (Sof.Forest.total_cost a.forest)
           (Sof.Forest.total_cost b.forest));
      Alcotest.(check bool)
        (tag ^ ": walks identical")
        true
        (a.forest.Sof.Forest.walks = b.forest.Sof.Forest.walks);
      Alcotest.(check bool)
        (tag ^ ": delivery identical")
        true
        (a.forest.Sof.Forest.delivery = b.forest.Sof.Forest.delivery);
      Alcotest.(check bool)
        (tag ^ ": selected chains identical")
        true
        (a.selected_chains = b.selected_chains);
      Alcotest.(check bool)
        (tag ^ ": aux tree cost identical")
        true
        (Option.equal Float.equal a.aux_tree_cost b.aux_tree_cost);
      Alcotest.(check int)
        (tag ^ ": conflicts identical")
        a.conflicts_resolved b.conflicts_resolved

let test_solve_deterministic_across_domains () =
  for seed = 0 to 49 do
    let p = random_instance (0x9A11 + (seed * 131)) ~chain_length:(1 + (seed mod 3)) in
    let r1 = with_domains 1 (fun () -> Sof.Sofda.solve p) in
    let r4 = with_domains 4 (fun () -> Sof.Sofda.solve p) in
    check_same_report ~tag:(Printf.sprintf "seed %d" seed) r1 r4
  done

let test_closure_deterministic_across_domains () =
  let module Metric = Sof_graph.Metric in
  for seed = 0 to 9 do
    let g = graph_of_params (0x51EE + seed, 30, 15) in
    let terminals = Array.init 12 (fun i -> i * 2) in
    let c1 = with_domains 1 (fun () -> Metric.closure g terminals) in
    let c4 = with_domains 4 (fun () -> Metric.closure g terminals) in
    for i = 0 to Array.length terminals - 1 do
      for j = 0 to Array.length terminals - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "seed %d dist(%d,%d)" seed i j)
          true
          (Float.equal (Metric.distance c1 i j) (Metric.distance c4 i j))
      done
    done
  done

(* --- regression: k-stroll closed-walk convention ----------------------- *)

let line_dist a b = abs_float (float_of_int a -. float_of_int b)

let test_trivial_closed_walk () =
  (* k <= 1 with src = dst: both solvers return the single-node walk at
     cost 0 (previously: exact returned [src] but charged dist src src,
     cheapest_insertion returned [src; src]). *)
  (match Kstroll.exact ~dist:line_dist ~candidates:[ 2; 5 ] ~src:3 ~dst:3 ~k:1 with
  | Some w ->
      Alcotest.(check (list int)) "exact nodes" [ 3 ] w.Kstroll.nodes;
      Alcotest.check feq "exact cost" 0.0 w.Kstroll.cost
  | None -> Alcotest.fail "exact: expected trivial closed walk");
  match
    Kstroll.cheapest_insertion ~dist:line_dist ~candidates:[ 2; 5 ] ~src:3
      ~dst:3 ~k:1
  with
  | Some w ->
      Alcotest.(check (list int)) "insertion nodes" [ 3 ] w.Kstroll.nodes;
      Alcotest.check feq "insertion cost" 0.0 w.Kstroll.cost
  | None -> Alcotest.fail "insertion: expected trivial closed walk"

let test_closed_walk_shape_consistent () =
  (* Non-trivial closed walks from both solvers share the duplicated
     endpoint representation, and their cost matches walk_cost. *)
  let check name = function
    | Some (w : Kstroll.walk) ->
        let n = List.length w.Kstroll.nodes in
        Alcotest.(check bool) (name ^ " starts at src") true
          (List.hd w.Kstroll.nodes = 0);
        Alcotest.(check bool) (name ^ " ends at src") true
          (List.nth w.Kstroll.nodes (n - 1) = 0);
        Alcotest.(check int) (name ^ " distinct") 3
          (Kstroll.distinct_count w.Kstroll.nodes);
        Alcotest.check feq
          (name ^ " cost = walk_cost")
          (Kstroll.walk_cost ~dist:line_dist w.Kstroll.nodes)
          w.Kstroll.cost
    | None -> Alcotest.fail (name ^ ": expected walk")
  in
  check "exact"
    (Kstroll.exact ~dist:line_dist ~candidates:[ 2; 5; 9 ] ~src:0 ~dst:0 ~k:3);
  check "insertion"
    (Kstroll.cheapest_insertion ~dist:line_dist ~candidates:[ 2; 5; 9 ] ~src:0
       ~dst:0 ~k:3)

(* --- regression: Transform.expand on unreachable terminals ------------- *)

let two_component_problem () =
  (* Component A: 0 - 1 - 2; component B: 3 - 4 - 5.  Source and one VM in
     A, another VM and the destination in B. *)
  let g =
    Sof_graph.Graph.create ~n:6
      ~edges:[ (0, 1, 1.0); (1, 2, 1.0); (3, 4, 1.0); (4, 5, 1.0) ]
  in
  let node_cost = [| 0.0; 0.5; 0.0; 0.0; 0.5; 0.0 |] in
  Sof.Problem.make ~graph:g ~node_cost ~vms:[ 1; 4 ] ~sources:[ 0 ]
    ~dests:[ 5 ] ~chain_length:1

let test_chain_walk_disconnected () =
  (* A chain walk towards a VM in the other component must come back as
     None — never as a walk whose vm_marks alias onto the wrong hop. *)
  let p = two_component_problem () in
  let t = Sof.Transform.create p in
  Alcotest.(check bool) "unreachable last VM" true
    (Sof.Transform.chain_walk t ~src:0 ~last_vm:4 ~num_vnfs:1 = None);
  Alcotest.(check bool) "reachable last VM still works" true
    (Sof.Transform.chain_walk t ~src:0 ~last_vm:1 ~num_vnfs:1 <> None)

let test_vm_marks_positions_consistent () =
  (* Every vm_mark of every feasible chain walk points at a hop that really
     is that VM — the invariant the expand fix protects. *)
  for seed = 0 to 19 do
    let p = random_instance (0x3C0D + (seed * 17)) ~chain_length:2 in
    let t = Sof.Transform.create p in
    List.iter
      (fun src ->
        List.iter
          (fun vm ->
            match Sof.Transform.chain_walk t ~src ~last_vm:vm ~num_vnfs:2 with
            | None -> ()
            | Some r ->
                List.iter
                  (fun (pos, v) ->
                    Alcotest.(check int)
                      (Printf.sprintf "seed %d src %d vm %d mark" seed src vm)
                      v
                      r.Sof.Transform.hops.(pos))
                  r.Sof.Transform.vm_marks)
          p.Sof.Problem.vms)
      p.Sof.Problem.sources
  done

let suite =
  [
    Alcotest.test_case "pool map empty" `Quick test_map_empty;
    Alcotest.test_case "pool map = Array.map" `Quick test_map_matches_sequential;
    Alcotest.test_case "pool mapi indices" `Quick test_mapi_indices;
    Alcotest.test_case "pool exceptions propagate" `Quick
      test_exceptions_propagate;
    Alcotest.test_case "exception backtrace at degree 1" `Quick
      test_exception_backtrace_seq;
    Alcotest.test_case "exception backtrace at degree 4" `Quick
      test_exception_backtrace_par;
    Alcotest.test_case "pool reduce in order" `Quick test_reduce_order;
    Alcotest.test_case "nested regions sequentialize" `Quick
      test_nested_regions_sequentialize;
    Alcotest.test_case "pool resize" `Quick test_resize;
    Alcotest.test_case "shard queue per-shard order" `Quick
      test_shard_queue_order;
    Alcotest.test_case "shard queue error completion" `Quick
      test_shard_queue_error_completion;
    Alcotest.test_case "shard queue sequential inline" `Quick
      test_shard_queue_sequential_inline;
    Alcotest.test_case "set_size rejected while shard queue live" `Quick
      test_set_size_rejected_while_live;
    Alcotest.test_case "sofda identical across 1/4 domains" `Slow
      test_solve_deterministic_across_domains;
    Alcotest.test_case "closure identical across 1/4 domains" `Quick
      test_closure_deterministic_across_domains;
    Alcotest.test_case "trivial closed walk convention" `Quick
      test_trivial_closed_walk;
    Alcotest.test_case "closed walk shape consistent" `Quick
      test_closed_walk_shape_consistent;
    Alcotest.test_case "chain walk across components is None" `Quick
      test_chain_walk_disconnected;
    Alcotest.test_case "vm_marks point at their VMs" `Quick
      test_vm_marks_positions_consistent;
  ]
