module Rng = Sof_util.Rng
module Stats = Sof_util.Stats
module Tbl = Sof_util.Tbl

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.int64 a <> Rng.int64 b)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  Alcotest.(check bool) "split stream differs" true (Rng.int64 a <> Rng.int64 c)

let test_rng_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    Alcotest.(check bool) "int in [0,10)" true (x >= 0 && x < 10);
    let f = Rng.uniform r in
    Alcotest.(check bool) "uniform in [0,1)" true (f >= 0.0 && f < 1.0);
    let g = Rng.range r (-5) 5 in
    Alcotest.(check bool) "range inclusive" true (g >= -5 && g <= 5)
  done

let test_rng_int_rejects () =
  let r = Rng.create 5 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_mean () =
  let r = Rng.create 9 in
  let xs = List.init 20_000 (fun _ -> Rng.uniform r) in
  let m = Stats.mean xs in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (m -. 0.5) < 0.02)

let test_sample_without_replacement () =
  let r = Rng.create 11 in
  for _ = 1 to 50 do
    let s = Rng.sample_without_replacement r 5 12 in
    Alcotest.(check int) "five drawn" 5 (List.length s);
    Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare s));
    List.iter
      (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 12))
      s
  done

let test_shuffle_permutation () =
  let r = Rng.create 13 in
  let a = Array.init 30 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 30 Fun.id) sorted

let feq = Alcotest.float 1e-9

let test_stats_basics () =
  let xs = [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.check feq "mean" 2.5 (Stats.mean xs);
  Alcotest.check feq "sum" 10.0 (Stats.sum xs);
  Alcotest.check feq "min" 1.0 (Stats.minimum xs);
  Alcotest.check feq "max" 4.0 (Stats.maximum xs);
  Alcotest.check feq "median even" 2.5 (Stats.median xs);
  Alcotest.check feq "median odd" 2.0 (Stats.median [ 1.0; 2.0; 7.0 ]);
  Alcotest.check feq "variance" (5.0 /. 3.0) (Stats.variance xs)

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.check feq "p50" 50.0 (Stats.percentile 50.0 xs);
  Alcotest.check feq "p99" 99.0 (Stats.percentile 99.0 xs);
  Alcotest.check feq "p100" 100.0 (Stats.percentile 100.0 xs)

(* The empty-sample policy is uniform: every statistic raises. *)
let test_stats_empty () =
  let expect name f =
    Alcotest.check_raises name
      (Invalid_argument (Printf.sprintf "Stats.%s: empty sample" name))
      (fun () -> ignore (f ()))
  in
  expect "mean" (fun () -> Stats.mean []);
  expect "mean_array" (fun () -> Stats.mean_array [||]);
  expect "variance" (fun () -> Stats.variance []);
  expect "stddev" (fun () -> Stats.stddev []);
  expect "minimum" (fun () -> Stats.minimum []);
  expect "maximum" (fun () -> Stats.maximum []);
  expect "median" (fun () -> Stats.median []);
  expect "summarize" (fun () -> Stats.summarize [])

let test_stats_singleton () =
  Alcotest.check feq "mean of one" 3.0 (Stats.mean [ 3.0 ]);
  Alcotest.check feq "variance of one" 0.0 (Stats.variance [ 3.0 ]);
  Alcotest.check feq "stddev of one" 0.0 (Stats.stddev [ 3.0 ])

let test_tbl_render () =
  let t = Tbl.create ~caption:"cap" [ "a"; "bb" ] in
  Tbl.add_row t [ "1"; "2" ];
  Tbl.add_float_row t "x" [ 3.5 ];
  let s = Tbl.render t in
  Alcotest.(check bool) "caption present" true
    (String.length s > 3 && String.sub s 0 3 = "cap");
  Alcotest.(check bool) "row present" true
    (List.exists (fun line -> line = "x  3.50") (String.split_on_char '\n' s))

let test_tbl_arity () =
  let t = Tbl.create [ "a" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Tbl.add_row: arity mismatch")
    (fun () -> Tbl.add_row t [ "1"; "2" ])

let test_tbl_csv () =
  let t = Tbl.create [ "a"; "b" ] in
  Tbl.add_row t [ "x,y"; "z" ];
  Alcotest.(check string) "csv escaped" "a,b\n\"x,y\",z\n" (Tbl.csv t)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng rejects bad bound" `Quick test_rng_int_rejects;
    Alcotest.test_case "rng uniform mean" `Quick test_rng_mean;
    Alcotest.test_case "rng sampling" `Quick test_sample_without_replacement;
    Alcotest.test_case "rng shuffle" `Quick test_shuffle_permutation;
    Alcotest.test_case "stats basics" `Quick test_stats_basics;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats empty" `Quick test_stats_empty;
    Alcotest.test_case "stats singleton" `Quick test_stats_singleton;
    Alcotest.test_case "tbl render" `Quick test_tbl_render;
    Alcotest.test_case "tbl arity" `Quick test_tbl_arity;
    Alcotest.test_case "tbl csv" `Quick test_tbl_csv;
  ]
