(* The deadline-aware serving layer: budget semantics on the budgeted
   solvers, the circuit breaker state machine, the write-ahead journal
   codec, queue policies and determinism of the virtual-time event loop,
   and the kill-and-recover harness.

   The budget bit-identity tests are the contract the whole layer leans
   on: [?budget:None] must not perturb the unbudgeted solvers, and a
   generous budget must land on the same forest — otherwise attaching
   the serving layer would silently change every committed embedding. *)

module Budget = Sof_util.Budget
module Rng = Sof_util.Rng
module Stream = Sof_workload.Stream
module Online = Sof_workload.Online
module Serve = Sof_serve.Serve
module Journal = Sof_serve.Journal
module Breaker = Sof_serve.Breaker

(* --- shared fixtures --------------------------------------------------- *)

let testbed_workload =
  {
    Online.vms_per_dc = 2;
    demand = 5.0;
    link_capacity = 20.0;
    vm_capacity = 3.0;
    src_range = (2, 4);
    dst_range = (3, 6);
    chain_length = 2;
  }

let draw_problem seed =
  let rng = Rng.create seed in
  Sof_workload.Instance.draw ~rng
    (Sof_topology.Topology.testbed ())
    {
      Sof_workload.Instance.n_vms = 8;
      n_sources = 2;
      n_dests = 4;
      chain_length = 2;
      setup_multiplier = 1.0;
    }

let serve_config ?(deadline_ms = infinity) ?(ladder = [ Serve.Sofda ])
    ?(queue_cap = 3) ?(policy = Serve.Reject_newest) ?(queue_deadline = 2.0)
    ?(outages = []) () =
  {
    Serve.default_config with
    stream =
      {
        Stream.workload = testbed_workload;
        process = Stream.Poisson { rate = 1.5 };
        mean_hold = 2.5;
        horizon = 6.0;
        max_utilization = 0.6;
      };
    deadline_ms;
    ladder;
    queue_cap;
    policy;
    service_time = 0.3;
    queue_deadline;
    retry_max = 2;
    retry_base = 0.2;
    retry_jitter = 0.5;
    retry_seed = 40;
    outages;
  }

let run_serve ?journal ~seed cfg =
  let topo = Sof_topology.Topology.testbed () in
  let _, _, n_access = Online.augment topo cfg.Serve.stream.Stream.workload in
  let events = Stream.script ~rng:(Rng.create seed) ~n_access cfg.Serve.stream in
  Serve.run_script ?journal topo cfg events

let forest_eq a b =
  a.Sof.Forest.walks = b.Sof.Forest.walks
  && a.Sof.Forest.delivery = b.Sof.Forest.delivery
  && Sof.Forest.total_cost a = Sof.Forest.total_cost b

(* --- budget token ------------------------------------------------------ *)

let test_budget_token () =
  Alcotest.(check bool) "check None is false" false (Budget.check None);
  let b = Budget.after_ms 0.0 in
  Alcotest.(check bool) "after_ms 0 expired from birth" true (Budget.expired b);
  Alcotest.(check int) "expired remaining is 0" 0 (Budget.remaining_ns b);
  let generous = Budget.after_ms 60_000.0 in
  Alcotest.(check bool) "generous not expired" false (Budget.expired generous);
  Alcotest.(check bool) "generous remaining positive" true
    (Budget.remaining_ns generous > 0);
  let free = Budget.create () in
  Alcotest.(check bool) "deadline-free not expired" false (Budget.expired free);
  Alcotest.(check int) "deadline-free remaining" max_int
    (Budget.remaining_ns free);
  Budget.cancel free;
  Alcotest.(check bool) "cancel expires" true (Budget.expired free);
  Alcotest.(check bool) "cancelled flag" true (Budget.cancelled free);
  Alcotest.(check int) "cancelled remaining is 0" 0 (Budget.remaining_ns free)

(* --- budget semantics on the solvers ----------------------------------- *)

let test_expired_budget_abandons () =
  let p = draw_problem 3 in
  (* Expired from birth: SOFDA abandons before its first construction,
     LP relax-and-round degrades per its documented stage order.  The
     contract under test is "never raises, documented partial result". *)
  (match Sof.Sofda.solve ~budget:(Budget.after_ms 0.0) p with
  | None -> ()
  | Some _ -> Alcotest.fail "expired budget should abandon the SOFDA solve");
  (match Sof.Lp_round.solve ~budget:(Budget.after_ms 0.0) p with
  | None -> ()
  | Some r ->
      Alcotest.(check bool) "expired LP solve is marked fallback" true
        r.Sof.Lp_round.fallback);
  match Sof.Sofda.solve ~budget:(Budget.after_ms 60_000.0) p with
  | None -> Alcotest.fail "generous budget must not abandon"
  | Some _ -> ()

let test_cancelled_budget_abandons () =
  let p = draw_problem 4 in
  let b = Budget.create () in
  Budget.cancel b;
  match Sof.Sofda.solve ~budget:b p with
  | None -> ()
  | Some _ -> Alcotest.fail "cancelled token should abandon the solve"

let test_budget_none_bit_identical () =
  let p = draw_problem 5 in
  let plain = Sof.Sofda.solve p in
  let none = Sof.Sofda.solve ?budget:None p in
  let generous = Sof.Sofda.solve ~budget:(Budget.after_ms 60_000.0) p in
  match (plain, none, generous) with
  | Some a, Some b, Some c ->
      Alcotest.(check bool) "?budget:None bit-identical" true
        (forest_eq a.Sof.Sofda.forest b.Sof.Sofda.forest);
      Alcotest.(check bool) "generous budget bit-identical" true
        (forest_eq a.Sof.Sofda.forest c.Sof.Sofda.forest)
  | _ -> Alcotest.fail "testbed instance should solve in all three modes"

(* --- circuit breaker --------------------------------------------------- *)

let test_breaker_config_validation () =
  List.iter
    (fun cfg ->
      match Breaker.create cfg with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "invalid breaker config accepted")
    [
      { Breaker.window = 0; threshold = 1; cooldown = 1 };
      { Breaker.window = 4; threshold = 0; cooldown = 1 };
      { Breaker.window = 4; threshold = 2; cooldown = -1 };
    ]

let test_breaker_lifecycle () =
  let b = Breaker.create { Breaker.window = 4; threshold = 2; cooldown = 2 } in
  Alcotest.(check bool) "starts closed" true (Breaker.state b = Breaker.Closed);
  Alcotest.(check bool) "closed allows" true (Breaker.allow b);
  Breaker.record b ~ok:true;
  Breaker.record b ~ok:false;
  Alcotest.(check int) "one failure in window" 1 (Breaker.failures b);
  Alcotest.(check bool) "still closed below threshold" true
    (Breaker.state b = Breaker.Closed);
  Breaker.record b ~ok:false;
  (match Breaker.state b with
  | Breaker.Open { remaining } ->
      Alcotest.(check int) "open for cooldown calls" 2 remaining
  | _ -> Alcotest.fail "threshold failures should trip the breaker");
  Alcotest.(check int) "one open so far" 1 (Breaker.opens b);
  Alcotest.(check bool) "open denies (1st cooldown tick)" false
    (Breaker.allow b);
  Alcotest.(check bool) "open denies (2nd cooldown tick)" false
    (Breaker.allow b);
  Alcotest.(check bool) "call after the cooldown is the probe" true
    (Breaker.allow b);
  Alcotest.(check bool) "half-open" true (Breaker.state b = Breaker.Half_open);
  Breaker.record b ~ok:false;
  Alcotest.(check bool) "failed probe re-trips" true
    (match Breaker.state b with Breaker.Open _ -> true | _ -> false);
  Alcotest.(check int) "re-trip counted" 2 (Breaker.opens b);
  Alcotest.(check bool) "denied again" false (Breaker.allow b);
  Alcotest.(check bool) "denied again (2nd)" false (Breaker.allow b);
  Alcotest.(check bool) "probe again" true (Breaker.allow b);
  Breaker.record b ~ok:true;
  Alcotest.(check bool) "successful probe closes" true
    (Breaker.state b = Breaker.Closed);
  Alcotest.(check int) "window cleared on close" 0 (Breaker.failures b)

let test_breaker_window_eviction () =
  let b = Breaker.create { Breaker.window = 2; threshold = 2; cooldown = 1 } in
  (* failure, then enough successes to evict it from the 2-wide window *)
  Breaker.record b ~ok:false;
  Breaker.record b ~ok:true;
  Breaker.record b ~ok:true;
  Alcotest.(check int) "old failure evicted" 0 (Breaker.failures b);
  Breaker.record b ~ok:false;
  Alcotest.(check bool) "one fresh failure keeps it closed" true
    (Breaker.state b = Breaker.Closed)

(* --- journal codec ----------------------------------------------------- *)

let sample_records =
  [
    Journal.Admit { id = 1; time = 0.25; sources = [ 0; 3 ]; dests = [ 5 ] };
    Journal.Commit
      {
        id = 1;
        time = 0.5;
        family = "sofda";
        sources = [ 0; 3 ];
        dests = [ 5 ];
        walks =
          [
            {
              Sof.Forest.source = 0;
              hops = [| 0; 2; 5 |];
              marks = [ { Sof.Forest.pos = 1; vnf = 0 } ];
            };
          ];
        delivery = [ (2, 5) ];
      };
    Journal.Depart { id = 1; time = 3.75 };
  ]

let test_journal_roundtrip () =
  List.iter
    (fun r ->
      match Journal.of_line (Journal.to_line r) with
      | Ok r' -> Alcotest.(check bool) "record round-trips" true (r = r')
      | Error e -> Alcotest.failf "decode failed: %s" e)
    sample_records

let test_journal_torn_tail () =
  let text =
    String.concat ""
      (List.map (fun r -> Journal.to_line r ^ "\n") sample_records)
  in
  Alcotest.(check int) "full text parses all records" 3
    (List.length (Journal.parse_lines text));
  (* cut mid-way through the last record: the torn tail is discarded *)
  let cut = String.length text - 7 in
  let parsed = Journal.parse_lines (String.sub text 0 cut) in
  Alcotest.(check int) "torn tail drops exactly the last record" 2
    (List.length parsed);
  Alcotest.(check bool) "surviving prefix is intact" true
    (parsed = [ List.nth sample_records 0; List.nth sample_records 1 ])

let test_journal_rejects_garbage () =
  List.iter
    (fun s ->
      match Journal.of_line s with
      | Ok _ -> Alcotest.failf "decoded %S" s
      | Error _ -> ())
    [
      "";
      "{";
      "{\"t\":\"nope\",\"id\":1,\"time\":0}";
      "{\"t\":\"admit\",\"id\":1.5,\"time\":0,\"sources\":[],\"dests\":[]}";
      "{\"t\":\"depart\",\"id\":1}";
    ]

(* --- event-loop determinism and queue policies ------------------------- *)

let test_serve_deterministic () =
  let cfg = serve_config ~policy:Serve.Edf ~outages:[ (1.0, 1.6) ] () in
  let a = run_serve ~seed:11 cfg in
  let b = run_serve ~seed:11 cfg in
  Alcotest.(check bool) "same records" true (a.Serve.records = b.Serve.records);
  Alcotest.(check bool) "same statuses" true
    (List.map (fun r -> r.Serve.status) a.Serve.responses
    = List.map (fun r -> r.Serve.status) b.Serve.responses);
  Alcotest.(check bool) "same ledger bits" true
    (Serve.ledger_equal a.Serve.final_ledger b.Serve.final_ledger);
  Alcotest.(check int) "same retries" a.Serve.retries b.Serve.retries

let test_serve_accounting () =
  List.iter
    (fun policy ->
      let cfg = serve_config ~policy ~queue_cap:1 ~queue_deadline:0.5 () in
      let r = run_serve ~seed:23 cfg in
      Alcotest.(check int) "every arrival is accounted for" r.Serve.arrivals
        (r.Serve.served + r.Serve.rejected + r.Serve.shed_queue_full
       + r.Serve.shed_expired + r.Serve.shed_fault);
      Alcotest.(check bool) "queue peak bounded by cap" true
        (r.Serve.queue_peak <= 1))
    [ Serve.Reject_newest; Serve.Drop_oldest; Serve.Edf ]

let test_queue_policies_differ () =
  (* Same script, 1-deep queue: reject-newest bounces the newcomer while
     drop-oldest shed the incumbent — the shed id sets must differ. *)
  let shed_ids policy =
    let cfg = serve_config ~policy ~queue_cap:1 ~queue_deadline:0.5 () in
    let r = run_serve ~seed:23 cfg in
    List.filter_map
      (fun (resp : Serve.response) ->
        match resp.Serve.status with
        | Serve.Shed _ -> Some resp.Serve.id
        | _ -> None)
      r.Serve.responses
  in
  let reject = shed_ids Serve.Reject_newest in
  let drop = shed_ids Serve.Drop_oldest in
  Alcotest.(check bool) "policies shed under pressure" true
    (reject <> [] && drop <> []);
  Alcotest.(check bool) "policies pick different victims" true (reject <> drop)

let test_ladder_degrades_to_est () =
  (* deadline 0: every budgeted rung abandons at entry, the unbudgeted
     eST terminal serves, and each served request counts as degraded. *)
  let tight = serve_config ~deadline_ms:0.0 () in
  let r = run_serve ~seed:11 tight in
  Alcotest.(check bool) "something was served" true (r.Serve.served > 0);
  Alcotest.(check int) "every served request degraded" r.Serve.served
    r.Serve.degraded;
  List.iter
    (fun (resp : Serve.response) ->
      match resp.Serve.status with
      | Serve.Served { family; degraded; _ } ->
          Alcotest.(check bool) "est served" true (family = Serve.Est);
          Alcotest.(check bool) "marked degraded" true degraded
      | _ -> ())
    r.Serve.responses;
  let relaxed = serve_config ~deadline_ms:infinity () in
  let r = run_serve ~seed:11 relaxed in
  Alcotest.(check int) "no degradation without deadline" 0 r.Serve.degraded

let test_outage_retries () =
  let cfg = serve_config ~outages:[ (0.0, 2.0) ] () in
  let r = run_serve ~seed:11 cfg in
  Alcotest.(check bool) "outage window forces retries" true (r.Serve.retries > 0)

(* --- crash-consistent recovery ----------------------------------------- *)

let with_temp_journal f =
  let path = Filename.temp_file "sof_serve_test" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_recover_full_run () =
  with_temp_journal (fun path ->
      let cfg = serve_config ~outages:[ (1.0, 1.6) ] () in
      let journal = Journal.open_writer path in
      let report =
        Fun.protect
          ~finally:(fun () -> Journal.close_writer journal)
          (fun () -> run_serve ~journal ~seed:31 cfg)
      in
      let topo = Sof_topology.Topology.testbed () in
      let snap = Serve.recover topo cfg path in
      Alcotest.(check bool) "recovered ledger bit-identical" true
        (Serve.ledger_equal snap.Serve.ledger report.Serve.final_ledger);
      Alcotest.(check bool) "live forests match" true
        (List.map fst snap.Serve.live_forests
         = List.map fst report.Serve.live
        && List.for_all2
             (fun (_, a) (_, b) -> Serve.forest_equal a b)
             snap.Serve.live_forests report.Serve.live);
      match Serve.recovery_invariant topo cfg snap with
      | Ok () -> ()
      | Error e -> Alcotest.failf "recovery invariant: %s" e)

let test_recover_torn_journal () =
  with_temp_journal (fun path ->
      let cfg = serve_config () in
      let journal = Journal.open_writer path in
      let _ =
        Fun.protect
          ~finally:(fun () -> Journal.close_writer journal)
          (fun () -> run_serve ~journal ~seed:31 cfg)
      in
      (* simulate the kill -9 torn write: chop the file mid-line *)
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let full = really_input_string ic len in
      close_in ic;
      Alcotest.(check bool) "journal long enough to tear" true (len > 40);
      let oc = open_out_bin path in
      output_string oc (String.sub full 0 (len - 23));
      close_out oc;
      let topo = Sof_topology.Topology.testbed () in
      let snap = Serve.recover topo cfg path in
      Alcotest.(check bool) "torn journal still replays records" true
        (snap.Serve.committed > 0 || snap.Serve.uncommitted > 0);
      match Serve.recovery_invariant topo cfg snap with
      | Ok () -> ()
      | Error e -> Alcotest.failf "recovery invariant after tear: %s" e)

let test_replay_prefix_consistent () =
  let cfg = serve_config ~policy:Serve.Drop_oldest () in
  let r = run_serve ~seed:47 cfg in
  let topo = Sof_topology.Topology.testbed () in
  let records = r.Serve.records in
  let n = List.length records in
  (* every record-boundary prefix is a consistent crash point *)
  List.iter
    (fun k ->
      let prefix = List.filteri (fun i _ -> i < k) records in
      let snap = Serve.replay topo cfg prefix in
      match Serve.recovery_invariant topo cfg snap with
      | Ok () -> ()
      | Error e -> Alcotest.failf "prefix %d/%d inconsistent: %s" k n e)
    [ 0; n / 3; n / 2; 2 * n / 3; n ]

let suite =
  [
    Alcotest.test_case "budget token" `Quick test_budget_token;
    Alcotest.test_case "expired budget abandons" `Quick
      test_expired_budget_abandons;
    Alcotest.test_case "cancelled budget abandons" `Quick
      test_cancelled_budget_abandons;
    Alcotest.test_case "?budget:None bit-identity" `Quick
      test_budget_none_bit_identical;
    Alcotest.test_case "breaker config validation" `Quick
      test_breaker_config_validation;
    Alcotest.test_case "breaker lifecycle" `Quick test_breaker_lifecycle;
    Alcotest.test_case "breaker window eviction" `Quick
      test_breaker_window_eviction;
    Alcotest.test_case "journal round-trip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal torn tail" `Quick test_journal_torn_tail;
    Alcotest.test_case "journal rejects garbage" `Quick
      test_journal_rejects_garbage;
    Alcotest.test_case "serve deterministic" `Quick test_serve_deterministic;
    Alcotest.test_case "serve accounting" `Quick test_serve_accounting;
    Alcotest.test_case "queue policies differ" `Quick test_queue_policies_differ;
    Alcotest.test_case "ladder degrades to est" `Quick
      test_ladder_degrades_to_est;
    Alcotest.test_case "outage retries" `Quick test_outage_retries;
    Alcotest.test_case "recover full run" `Quick test_recover_full_run;
    Alcotest.test_case "recover torn journal" `Quick test_recover_torn_journal;
    Alcotest.test_case "replay prefix consistent" `Quick
      test_replay_prefix_consistent;
  ]
