module Graph = Sof_graph.Graph
module Domain = Sof_sdn.Domain
module Controller = Sof_sdn.Controller
module Fabric = Sof_sdn.Fabric
module Flow_table = Sof_sdn.Flow_table
module Distributed = Sof_sdn.Distributed
open Testlib

let cogent_graph () = (Sof_topology.Topology.cogent ()).Sof_topology.Topology.graph

let test_partition_covers () =
  let g = cogent_graph () in
  let d = Domain.partition g ~k:5 in
  Alcotest.(check int) "5 domains" 5 d.Domain.count;
  Array.iter
    (fun dom -> Alcotest.(check bool) "assigned" true (dom >= 0 && dom < 5))
    d.Domain.of_node;
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 d.Domain.members in
  Alcotest.(check int) "members partition nodes" (Graph.n g) total

let test_partition_bad_k () =
  let g = cogent_graph () in
  Alcotest.(check bool) "k=0 rejected" true
    (try ignore (Domain.partition g ~k:0); false
     with Invalid_argument _ -> true)

let test_borders () =
  let g = cogent_graph () in
  let d = Domain.partition g ~k:4 in
  for dom = 0 to 3 do
    List.iter
      (fun b ->
        Alcotest.(check bool) "border is in domain" true
          (d.Domain.of_node.(b) = dom);
        Alcotest.(check bool) "border touches another domain" true
          (Domain.is_border g d b))
      (Domain.border_routers g d dom)
  done;
  List.iter
    (fun (u, v, _) ->
      Alcotest.(check bool) "inter-domain edge crosses" true
        (d.Domain.of_node.(u) <> d.Domain.of_node.(v)))
    (Domain.inter_domain_edges g d)

let test_controller_intra () =
  let g = cogent_graph () in
  let d = Domain.partition g ~k:3 in
  let c = Controller.create g d 0 in
  let members = Controller.members c in
  let m0 = List.hd members in
  Alcotest.(check bool) "covers own" true (Controller.covers c m0);
  (* intra distance never beats the global shortest path *)
  let global = Sof_graph.Dijkstra.run g m0 in
  List.iter
    (fun v ->
      let intra = Controller.intra_distance c m0 v in
      Alcotest.(check bool) "intra >= global" true
        (intra >= global.Sof_graph.Dijkstra.dist.(v) -. 1e-9))
    members

let test_overlay_exact_cogent () =
  let g = cogent_graph () in
  let net = Distributed.create g ~k:6 in
  let fabric = Fabric.create () in
  Distributed.exchange_matrices net fabric;
  let rng = Sof_util.Rng.create 31 in
  for _ = 1 to 25 do
    let u = Sof_util.Rng.int rng (Graph.n g) in
    let v = Sof_util.Rng.int rng (Graph.n g) in
    let overlay = Distributed.overlay_distance net u v in
    let global = (Sof_graph.Dijkstra.run g u).Sof_graph.Dijkstra.dist.(v) in
    Alcotest.check feq "overlay = global" global overlay
  done

let prop_overlay_exact_random =
  QCheck.Test.make ~count:60 ~name:"overlay distance equals global Dijkstra"
    (graph_params_arb ~max_n:30) (fun params ->
      let g = graph_of_params params in
      let k = min 4 (Graph.n g) in
      let net = Distributed.create g ~k in
      let fabric = Fabric.create () in
      Distributed.exchange_matrices net fabric;
      let ok = ref true in
      for u = 0 to min 5 (Graph.n g - 1) do
        let global = Sof_graph.Dijkstra.run g u in
        for v = 0 to Graph.n g - 1 do
          let o = Distributed.overlay_distance net u v in
          if abs_float (o -. global.Sof_graph.Dijkstra.dist.(v)) > 1e-6 then
            ok := false
        done
      done;
      !ok)

let test_overlay_requires_exchange () =
  (* Querying the overlay before any east–west exchange is a programming
     error and must fail loudly, not return garbage distances. *)
  let g = cogent_graph () in
  let net = Distributed.create g ~k:4 in
  Alcotest.check_raises "descriptive Invalid_argument"
    (Invalid_argument "Distributed.overlay_distance: matrices not exchanged")
    (fun () -> ignore (Distributed.overlay_distance net 0 1));
  (* after the exchange the same query succeeds *)
  let fabric = Fabric.create () in
  Distributed.exchange_matrices net fabric;
  Alcotest.(check bool) "finite after exchange" true
    (Distributed.overlay_distance net 0 1 < infinity)

let test_fabric_counters () =
  let f = Fabric.create () in
  Alcotest.(check bool) "reliable delivery" true
    (Fabric.send f ~src:0 ~dst:1 Fabric.Chain_query);
  Alcotest.(check bool) "southbound delivery" true
    (Fabric.send f ~src:1 ~dst:1 Fabric.Rule_install);
  Alcotest.(check int) "inter" 1 (Fabric.total f);
  Alcotest.(check int) "south" 1 (Fabric.southbound f);
  Alcotest.(check int) "per kind" 1 (Fabric.count f Fabric.Chain_query);
  Alcotest.(check bool) "report" true (List.length (Fabric.report f) = 2)

let solved_instance seed =
  let rng = Sof_util.Rng.create seed in
  let topo = Sof_topology.Topology.softlayer () in
  let p =
    Sof_workload.Instance.draw ~rng topo
      {
        Sof_workload.Instance.n_vms = 12;
        n_sources = 4;
        n_dests = 5;
        chain_length = 2;
        setup_multiplier = 1.0;
      }
  in
  match Sof.Sofda.solve p with
  | Some r -> (p, r.Sof.Sofda.forest)
  | None -> Alcotest.fail "instance should solve"

let test_flow_table_compile () =
  let _, forest = solved_instance 3 in
  let rules = Flow_table.compile forest in
  Alcotest.(check bool) "has rules" true (List.length rules > 0);
  (* every rule's next hops are graph neighbors *)
  let g = forest.Sof.Forest.problem.Sof.Problem.graph in
  List.iter
    (fun (r : Flow_table.rule) ->
      List.iter
        (fun h ->
          Alcotest.(check bool) "rule uses physical link" true
            (Graph.mem_edge g r.Flow_table.node h))
        r.Flow_table.next_hops)
    rules;
  (* every destination is reachable: it appears as some rule's next hop or
     hosts a walk end *)
  List.iter
    (fun d ->
      let reached =
        List.exists
          (fun (r : Flow_table.rule) -> List.mem d r.Flow_table.next_hops)
          rules
        || List.exists
             (fun (w : Sof.Forest.walk) ->
               Array.exists (fun h -> h = d) w.Sof.Forest.hops)
             forest.Sof.Forest.walks
      in
      Alcotest.(check bool) "destination reached" true reached)
    forest.Sof.Forest.problem.Sof.Problem.dests

let test_flow_table_tcam () =
  let _, forest = solved_instance 4 in
  let rules = Flow_table.compile forest in
  Alcotest.(check (list (pair int int))) "no violations at high capacity" []
    (Flow_table.tcam_violations rules ~capacity:1000);
  let mx = Flow_table.max_rules rules in
  Alcotest.(check bool) "violations at capacity 0" true
    (mx = 0 || Flow_table.tcam_violations rules ~capacity:0 <> [])

let test_distributed_matches_centralized () =
  let p, forest = solved_instance 5 in
  let net = Distributed.create p.Sof.Problem.graph ~k:4 in
  let fabric = Fabric.create () in
  match Distributed.solve net fabric p with
  | None -> Alcotest.fail "distributed should solve"
  | Some stats ->
      Alcotest.check feq "same cost"
        (Sof.Forest.total_cost forest)
        (Sof.Forest.total_cost stats.Distributed.forest);
      Alcotest.(check bool) "exchanged matrices" true
        (Fabric.count fabric Fabric.Border_matrix > 0);
      Alcotest.(check bool) "installed rules" true
        (stats.Distributed.rules_installed > 0)

let suite =
  [
    Alcotest.test_case "partition covers" `Quick test_partition_covers;
    Alcotest.test_case "partition bad k" `Quick test_partition_bad_k;
    Alcotest.test_case "borders" `Quick test_borders;
    Alcotest.test_case "controller intra" `Quick test_controller_intra;
    Alcotest.test_case "overlay exact on cogent" `Quick test_overlay_exact_cogent;
    Alcotest.test_case "overlay requires exchange" `Quick
      test_overlay_requires_exchange;
    Alcotest.test_case "fabric counters" `Quick test_fabric_counters;
    Alcotest.test_case "flow table compile" `Quick test_flow_table_compile;
    Alcotest.test_case "flow table tcam" `Quick test_flow_table_tcam;
    Alcotest.test_case "distributed = centralized" `Quick
      test_distributed_matches_centralized;
  ]
  @ qsuite [ prop_overlay_exact_random ]
