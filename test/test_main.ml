let () =
  Alcotest.run "sof"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("graph", Test_graph.suite);
      ("steiner", Test_steiner.suite);
      ("kstroll", Test_kstroll.suite);
      ("core", Test_core.suite);
      ("lp", Test_lp.suite);
      ("dynamic", Test_dynamic.suite);
      ("fdag", Test_fdag.suite);
      ("baselines", Test_baselines.suite);
      ("topology", Test_topology.suite);
      ("ip", Test_ip.suite);
      ("sdn", Test_sdn.suite);
      ("simnet", Test_simnet.suite);
      ("resilience", Test_resilience.suite);
      ("online", Test_online.suite);
      ("stream", Test_stream.suite);
      ("serve", Test_serve.suite);
      ("engine", Test_engine.suite);
      ("reduction", Test_reduction.suite);
      ("extra", Test_extra.suite);
      ("polish", Test_polish.suite);
      ("parallel", Test_parallel.suite);
      ("prop", Test_prop.suite);
    ]
