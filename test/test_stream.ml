module Stream = Sof_workload.Stream
module Online = Sof_workload.Online
module Ledger = Sof_cost.Ledger
module Graph = Sof_graph.Graph
module Obs = Sof_obs.Obs

let topo = Sof_topology.Topology.softlayer ()

(* Tight headroom + a flash crowd so admission control has real work:
   rejections, repriced solves, and a deep live-request pool. *)
let tight_cfg =
  {
    Stream.default_config with
    Stream.process =
      Stream.Flash
        { base = 0.5; burst_rate = 5.0; burst_every = 10.0; burst_len = 3.0 };
    horizon = 25.0;
    mean_hold = 8.0;
    max_utilization = 0.5;
  }

let script_for cfg seed =
  let _, _, n_access = Online.augment topo cfg.Stream.workload in
  Stream.script ~rng:(Sof_util.Rng.create seed) ~n_access cfg

let run_tight ?(seed = 7) mode = Stream.run_script ~mode topo tight_cfg (script_for tight_cfg seed)

let ledger_loads (r : Stream.report) =
  let lg = r.Stream.final_ledger in
  let g = Ledger.graph lg in
  let acc = ref [] in
  Graph.iter_edges g (fun u v _ -> acc := Ledger.edge_load lg u v :: !acc);
  for v = 0 to Graph.n g - 1 do
    acc := Ledger.node_load lg v :: !acc
  done;
  !acc

let test_script_shape () =
  let events = script_for tight_cfg 3 in
  let arrivals =
    List.filter_map
      (function Stream.Arrive r -> Some r | Stream.Depart _ -> None)
      events
  in
  Alcotest.(check bool) "some arrivals" true (List.length arrivals > 0);
  Alcotest.(check int) "one departure per arrival"
    (List.length events)
    (2 * List.length arrivals);
  (* time-ordered, and every request's sources/dests are disjoint *)
  let times = List.map Stream.(function Arrive r -> r.arrival | Depart d -> d.time) events in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "time-ordered" true (sorted times);
  List.iter
    (fun (r : Stream.request) ->
      Alcotest.(check bool) "hold positive" true (r.Stream.hold > 0.0);
      Alcotest.(check bool) "sources and dests disjoint" true
        (List.for_all (fun s -> not (List.mem s r.Stream.dests)) r.Stream.sources))
    arrivals

let test_script_validates () =
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Stream: rate must be positive (got -1)") (fun () ->
      ignore
        (script_for
           { tight_cfg with Stream.process = Stream.Poisson { rate = -1.0 } }
           0));
  Alcotest.check_raises "zero horizon"
    (Invalid_argument "Stream: horizon must be positive (got 0)") (fun () ->
      ignore (script_for { tight_cfg with Stream.horizon = 0.0 } 0))

let test_accounting () =
  let r = run_tight Stream.Incremental in
  Alcotest.(check bool) "some arrivals" true (r.Stream.arrivals > 0);
  Alcotest.(check int) "accepted + rejected = arrivals" r.Stream.arrivals
    (r.Stream.accepted + r.Stream.rejected);
  Alcotest.(check int) "every accepted request departed" r.Stream.accepted
    r.Stream.departures;
  Alcotest.(check int) "one outcome per arrival" r.Stream.arrivals
    (List.length r.Stream.outcomes);
  Alcotest.(check int) "rungs partition the accepted" r.Stream.accepted
    (r.Stream.spliced + r.Stream.rescoped + r.Stream.repriced);
  Alcotest.(check bool) "pressure produced rejections" true
    (r.Stream.rejected > 0)

let test_drains_to_zero () =
  List.iter
    (fun mode ->
      let r = run_tight mode in
      List.iter
        (fun load -> Alcotest.(check (float 0.0)) "load zero" 0.0 load)
        (ledger_loads r))
    [ Stream.Incremental; Stream.Batch { reopt_every = 7 } ]

let test_respects_headroom () =
  List.iter
    (fun mode ->
      let r = run_tight mode in
      Alcotest.(check bool) "peak within admission threshold" true
        (r.Stream.peak_utilization
        <= tight_cfg.Stream.max_utilization +. 1e-9))
    [ Stream.Incremental; Stream.Batch { reopt_every = 7 } ]

let test_deterministic () =
  let key (r : Stream.report) =
    ( r.Stream.accepted,
      r.Stream.rejected,
      r.Stream.total_marginal_cost,
      r.Stream.peak_utilization,
      r.Stream.spliced,
      r.Stream.repriced )
  in
  Alcotest.(check bool) "same script, same report" true
    (key (run_tight Stream.Incremental) = key (run_tight Stream.Incremental))

let test_same_script_both_modes () =
  let events = script_for tight_cfg 11 in
  let inc = Stream.run_script ~mode:Stream.Incremental topo tight_cfg events in
  let bat =
    Stream.run_script ~mode:(Stream.Batch { reopt_every = 7 }) topo tight_cfg
      events
  in
  Alcotest.(check int) "same arrivals" inc.Stream.arrivals bat.Stream.arrivals;
  Alcotest.(check int) "incremental never re-optimizes" 0
    inc.Stream.reopt_rounds;
  Alcotest.(check (float 0.0)) "incremental churn zero" 0.0
    inc.Stream.reopt_churn;
  Alcotest.(check int) "batch re-optimized on schedule"
    (bat.Stream.arrivals / 7) bat.Stream.reopt_rounds;
  Alcotest.(check bool) "batch serves everything via repriced solves" true
    (bat.Stream.spliced = 0 && bat.Stream.rescoped = 0)

let test_incremental_reuses_cache () =
  Obs.reset ();
  Obs.enable ();
  let reuse =
    Fun.protect
      ~finally:(fun () ->
        Obs.disable ();
        Obs.reset ())
      (fun () ->
        ignore (run_tight Stream.Incremental);
        Obs.counter_value (Obs.counter "metric.closure_reuse"))
  in
  Alcotest.(check bool) "closure cache reused across requests" true (reuse > 0)

let test_generous_capacity_accepts_all () =
  let cfg =
    {
      tight_cfg with
      Stream.process = Stream.Poisson { rate = 1.0 };
      horizon = 10.0;
      max_utilization = 1.0;
    }
  in
  let r = Stream.run_script ~mode:Stream.Incremental topo cfg (script_for cfg 5) in
  Alcotest.(check int) "nothing rejected" 0 r.Stream.rejected;
  Alcotest.(check (float 1e-9)) "acceptance ratio 1" 1.0
    r.Stream.acceptance_ratio;
  Alcotest.(check bool) "amortized cost positive" true
    (r.Stream.amortized_cost > 0.0)

let test_bad_reopt_rejected () =
  Alcotest.check_raises "reopt_every 0"
    (Invalid_argument "Stream: Batch reopt_every must be positive") (fun () ->
      ignore
        (Stream.run_script
           ~mode:(Stream.Batch { reopt_every = 0 })
           topo tight_cfg []))

let suite =
  [
    Alcotest.test_case "script shape" `Quick test_script_shape;
    Alcotest.test_case "script validates config" `Quick test_script_validates;
    Alcotest.test_case "admission accounting" `Quick test_accounting;
    Alcotest.test_case "departures drain the ledger" `Quick test_drains_to_zero;
    Alcotest.test_case "headroom respected" `Quick test_respects_headroom;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "incremental vs batch on one script" `Quick
      test_same_script_both_modes;
    Alcotest.test_case "incremental reuses metric cache" `Quick
      test_incremental_reuses_cache;
    Alcotest.test_case "generous capacity accepts all" `Quick
      test_generous_capacity_accepts_all;
    Alcotest.test_case "bad reopt_every rejected" `Quick test_bad_reopt_rejected;
  ]
