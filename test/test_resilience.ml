(* Fault injection, incremental repair and the chaos runner.

   - Fault: scripted traces, schedule determinism, health folding,
     degrade/total-outage edges, link-outage projection.
   - Repair: the local rules (reroute, relocate, dest-drop, noop) on a
     solved instance, churn vs from-scratch install cost.
   - Chaos: report invariants on a seeded schedule.
   - Runtime layers: lossy fabric retry/backoff/drop accounting,
     leader failover under controller partitions, Sim outage windows. *)

module Fault = Sof_resilience.Fault
module Repair = Sof_resilience.Repair
module Chaos = Sof_resilience.Chaos
module Fabric = Sof_sdn.Fabric
module Distributed = Sof_sdn.Distributed
module Sim = Sof_simnet.Sim
module Forest = Sof.Forest
module Problem = Sof.Problem
open Testlib

let solved seed =
  let rng = Sof_util.Rng.create seed in
  let topo = Sof_topology.Topology.softlayer () in
  let p =
    Sof_workload.Instance.draw ~rng topo
      {
        Sof_workload.Instance.n_vms = 14;
        n_sources = 5;
        n_dests = 5;
        chain_length = 2;
        setup_multiplier = 1.0;
      }
  in
  match Sof.Sofda.solve_forest p with
  | Some f -> (p, f)
  | None -> Alcotest.fail "instance should solve"

let norm (u, v) = if u < v then (u, v) else (v, u)

let used_links (f : Forest.t) =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (w : Forest.walk) ->
      for i = 0 to Array.length w.Forest.hops - 2 do
        Hashtbl.replace tbl (norm (w.Forest.hops.(i), w.Forest.hops.(i + 1))) ()
      done)
    f.Forest.walks;
  List.iter (fun e -> Hashtbl.replace tbl (norm e) ()) f.Forest.delivery;
  List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) tbl [])

(* --- Fault ------------------------------------------------------------- *)

let test_scripted_trace () =
  let trace =
    Fault.of_list
      [ (5.0, Fault.Link_down (1, 2)); (1.0, Fault.Vm_crash 3);
        (3.0, Fault.Link_up (1, 2)) ]
  in
  Alcotest.(check (list (float 1e-9))) "sorted by time" [ 1.0; 3.0; 5.0 ]
    (List.map (fun t -> t.Fault.time) trace);
  Alcotest.(check bool) "failure taxonomy" true
    (Fault.is_failure (Fault.Vm_crash 3)
    && Fault.is_failure (Fault.Partition 0)
    && (not (Fault.is_failure (Fault.Link_up (1, 2))))
    && not (Fault.is_failure (Fault.Heal 0)))

let test_schedule_deterministic () =
  let p, _ = solved 11 in
  let draw () =
    Fault.schedule ~rng:(Sof_util.Rng.create 7) ~mtbf:30.0 ~mttr:10.0
      ~controllers:3 ~count:20 p
  in
  let a = draw () and b = draw () in
  Alcotest.(check int) "same length" (List.length a) (List.length b);
  List.iter2
    (fun (x : Fault.timed) (y : Fault.timed) ->
      Alcotest.check feq "same time" x.Fault.time y.Fault.time;
      Alcotest.(check string) "same event"
        (Fault.event_to_string x.Fault.event)
        (Fault.event_to_string y.Fault.event))
    a b;
  (* sorted, and exactly [count] failures with recoveries interleaved *)
  let times = List.map (fun t -> t.Fault.time) a in
  Alcotest.(check bool) "sorted" true (List.sort compare times = times);
  Alcotest.(check int) "20 failures" 20
    (List.length (List.filter (fun t -> Fault.is_failure t.Fault.event) a))

let test_health_folding () =
  let p, _ = solved 12 in
  let h0 = Fault.healthy p in
  let h1 = Fault.apply h0 (Fault.Link_down (2, 1)) in
  Alcotest.(check (list (pair int int))) "normalized" [ (1, 2) ]
    h1.Fault.down_links;
  (* idempotent on repeats *)
  let h2 = Fault.apply h1 (Fault.Link_down (1, 2)) in
  Alcotest.(check (list (pair int int))) "idempotent" [ (1, 2) ]
    h2.Fault.down_links;
  let h3 = Fault.apply h2 (Fault.Link_up (1, 2)) in
  Alcotest.(check (list (pair int int))) "healed" [] h3.Fault.down_links;
  let h4 = Fault.apply h3 (Fault.Vm_crash 9) in
  let h5 = Fault.apply h4 (Fault.Vm_recover 9) in
  Alcotest.(check (list int)) "vm recovered" [] h5.Fault.crashed_vms

let test_degrade_total_outage () =
  let p, _ = solved 13 in
  (* kill every source: no degraded instance exists *)
  let h =
    List.fold_left
      (fun h s -> Fault.apply h (Fault.Node_down s))
      (Fault.healthy p) p.Problem.sources
  in
  Alcotest.(check bool) "no sources -> None" true
    (Fault.degrade h ~dests:p.Problem.dests = None);
  (* asking for no surviving destination is a total outage too *)
  Alcotest.(check bool) "no dests -> None" true
    (Fault.degrade (Fault.healthy p) ~dests:[] = None)

let test_link_outages_projection () =
  let trace =
    Fault.of_list
      [ (2.0, Fault.Link_down (4, 7)); (9.0, Fault.Link_up (4, 7));
        (20.0, Fault.Link_down (1, 3)) ]
  in
  match Fault.link_outages ~horizon:50.0 trace with
  | [ ((1, 3), d2, u2); ((4, 7), d1, u1) ] | [ ((4, 7), d1, u1); ((1, 3), d2, u2) ]
    ->
      Alcotest.check feq "window opens" 2.0 d1;
      Alcotest.check feq "window closes" 9.0 u1;
      Alcotest.check feq "open window starts" 20.0 d2;
      Alcotest.check feq "open window clipped to horizon" 50.0 u2
  | ws -> Alcotest.fail (Printf.sprintf "expected 2 windows, got %d" (List.length ws))

(* --- Repair ------------------------------------------------------------ *)

let test_repair_link_reroute () =
  let p, f = solved 21 in
  let link = List.hd (used_links f) in
  let health = Fault.apply (Fault.healthy p) (Fault.Link_down (fst link, snd link)) in
  match
    Repair.heal ~compare_resolve:true ~health
      ~event:(Fault.Link_down (fst link, snd link))
      f
  with
  | None -> Alcotest.fail "repair should exist"
  | Some r ->
      Alcotest.(check bool) "healed forest valid" true
        (Sof.Validate.check r.Repair.forest = Ok ());
      Alcotest.(check bool) "dead link gone" true
        (not (List.mem link (used_links r.Repair.forest)));
      Alcotest.(check (list int)) "no destination lost" [] r.Repair.dropped;
      (* repair pays the delta; a from-scratch re-solve pays a full
         installation — repair must be strictly cheaper *)
      (match r.Repair.resolve_churn with
      | None -> Alcotest.fail "resolve comparison requested"
      | Some rc ->
          Alcotest.(check bool) "repair beats re-solve" true
            (r.Repair.churn < rc -. 1e-9))

let test_repair_noop_on_unused_link () =
  let p, f = solved 22 in
  let used = used_links f in
  let g = p.Problem.graph in
  let unused =
    List.find_map
      (fun (u, v, _) -> if List.mem (norm (u, v)) used then None else Some (norm (u, v)))
      (Sof_graph.Graph.edges g)
  in
  match unused with
  | None -> Alcotest.fail "expected an unused link"
  | Some (u, v) -> (
      let health = Fault.apply (Fault.healthy p) (Fault.Link_down (u, v)) in
      match Repair.heal ~health ~event:(Fault.Link_down (u, v)) f with
      | Some r ->
          Alcotest.(check string) "noop" "noop"
            (Repair.action_to_string r.Repair.action);
          Alcotest.check feq "no churn" 0.0 r.Repair.churn
      | None -> Alcotest.fail "noop repair should exist")

let test_repair_vm_crash () =
  let p, f = solved 23 in
  let vm, _ = List.hd (Forest.enabled_vms f) in
  let health = Fault.apply (Fault.healthy p) (Fault.Vm_crash vm) in
  match Repair.heal ~health ~event:(Fault.Vm_crash vm) f with
  | None -> Alcotest.fail "repair should exist"
  | Some r ->
      Alcotest.(check bool) "healed forest valid" true
        (Sof.Validate.check r.Repair.forest = Ok ());
      Alcotest.(check bool) "crashed VM no longer enabled" true
        (not
           (List.exists (fun (m, _) -> m = vm)
              (Forest.enabled_vms r.Repair.forest)))

let test_repair_dest_node_down () =
  let p, f = solved 24 in
  let d = List.hd p.Problem.dests in
  let health = Fault.apply (Fault.healthy p) (Fault.Node_down d) in
  match Repair.heal ~health ~event:(Fault.Node_down d) f with
  | None -> Alcotest.fail "repair should exist"
  | Some r ->
      Alcotest.(check bool) "healed forest valid" true
        (Sof.Validate.check r.Repair.forest = Ok ());
      Alcotest.(check (list int)) "dest dropped" [ d ] r.Repair.dropped;
      Alcotest.(check bool) "dest out of the instance" true
        (not (List.mem d r.Repair.problem.Problem.dests))

let test_install_cost_bounds () =
  let _, f = solved 25 in
  let ic = Repair.install_cost f in
  Alcotest.(check bool) "positive" true (ic > 0.0);
  (* churn against itself is zero; install cost is the empty-deployment
     churn, an upper bound for any delta *)
  Alcotest.check feq "self churn" 0.0 (Repair.churn ~old_:f f);
  Alcotest.(check bool) "install >= total shared-edge cost" true
    (ic <= Forest.total_cost f +. 1e-9)

(* --- Chaos ------------------------------------------------------------- *)

let test_chaos_report_invariants () =
  let p, f = solved 31 in
  let trace =
    Fault.schedule ~rng:(Sof_util.Rng.create 5) ~mtbf:40.0 ~mttr:10.0
      ~controllers:3 ~count:30 p
  in
  let report = Chaos.run ~trace f in
  Alcotest.(check int) "entry per event" (List.length trace)
    (List.length report.Chaos.entries);
  Alcotest.(check int) "no invalid forests" 0 report.Chaos.invalid_events;
  Alcotest.(check bool) "availability in [0,1]" true
    (report.Chaos.availability >= 0.0 && report.Chaos.availability <= 1.0);
  Alcotest.(check bool) "wins+ties <= comparisons" true
    (report.Chaos.repair_wins + report.Chaos.repair_ties
    <= report.Chaos.comparisons);
  Alcotest.(check bool) "churn nonneg" true (report.Chaos.total_churn >= 0.0);
  match report.Chaos.final_forest with
  | Some f' ->
      Alcotest.(check bool) "final forest valid" true
        (Sof.Validate.check f' = Ok ())
  | None -> Alcotest.fail "trace should not end in total outage"

(* --- lossy fabric ------------------------------------------------------ *)

let test_fabric_lossy () =
  let faults =
    {
      Fabric.rng = Sof_util.Rng.create 3;
      loss = 0.5;
      max_retries = 3;
      base_backoff = 0.01;
      jitter = 0.0;
    }
  in
  let f = Fabric.create ~faults () in
  let delivered = ref 0 and dropped = ref 0 in
  for _ = 1 to 200 do
    if Fabric.send f ~src:0 ~dst:1 Fabric.Chain_query then incr delivered
    else incr dropped
  done;
  Alcotest.(check bool) "some delivered" true (!delivered > 0);
  Alcotest.(check bool) "some dropped" true (!dropped > 0);
  Alcotest.(check int) "drop counter agrees" !dropped (Fabric.drops f);
  Alcotest.(check bool) "retransmissions happened" true
    (Fabric.retransmits f > 0);
  Alcotest.(check bool) "backoff accumulated" true (Fabric.backoff_delay f > 0.0);
  (* retries count as transmissions *)
  Alcotest.(check bool) "total includes retries" true
    (Fabric.total f >= 200);
  (* southbound is never lossy *)
  for _ = 1 to 50 do
    Alcotest.(check bool) "southbound reliable" true
      (Fabric.send f ~src:2 ~dst:2 Fabric.Rule_install)
  done;
  let rows = Fabric.report f in
  Alcotest.(check bool) "report has retransmit row" true
    (List.mem_assoc "retransmit" rows);
  Alcotest.(check bool) "report has dropped row" true
    (List.mem_assoc "dropped" rows)

let test_fabric_timeout_burns_budget () =
  let faults =
    {
      Fabric.rng = Sof_util.Rng.create 4;
      loss = 0.0;
      max_retries = 4;
      base_backoff = 0.1;
      jitter = 0.0;
    }
  in
  let f = Fabric.create ~faults () in
  Fabric.timeout f ~src:0 ~dst:2 Fabric.Border_matrix;
  Alcotest.(check int) "one drop" 1 (Fabric.drops f);
  (* 0.1 * (2^0 + 2^1 + 2^2 + 2^3) = 1.5 *)
  Alcotest.check feq "full backoff budget" 1.5 (Fabric.backoff_delay f)

(* The jittered schedule is a pure function of the seed: one jitter
   factor per retry, in order, each scaling that retry's exponential
   backoff by [1 + jitter * (u - 0.5)]. *)
let test_fabric_jitter_schedule () =
  let mk seed jitter =
    {
      Fabric.rng = Sof_util.Rng.create seed;
      loss = 0.0;
      max_retries = 4;
      base_backoff = 0.1;
      jitter;
    }
  in
  let burn faults =
    let f = Fabric.create ~faults () in
    Fabric.timeout f ~src:0 ~dst:2 Fabric.Border_matrix;
    Fabric.backoff_delay f
  in
  let jittered = burn (mk 7 0.5) in
  let expected = ref 0.0 in
  let rng = Sof_util.Rng.create 7 in
  for n = 0 to 3 do
    expected :=
      !expected
      +. 0.1
         *. (2.0 ** float_of_int n)
         *. (1.0 +. (0.5 *. (Sof_util.Rng.float rng 1.0 -. 0.5)))
  done;
  Alcotest.check feq "pinned jittered schedule" !expected jittered;
  (* every factor lies in [0.75, 1.25], so the total stays in bounds *)
  Alcotest.(check bool)
    "within jitter bounds" true
    (jittered >= 1.5 *. 0.75 && jittered <= 1.5 *. 1.25);
  (* same seed replays bit-identically *)
  Alcotest.(check bool)
    "seeded replay is bit-identical" true
    (Int64.bits_of_float jittered = Int64.bits_of_float (burn (mk 7 0.5)));
  (* jitter = 0 preserves the legacy schedule exactly *)
  Alcotest.check feq "zero jitter keeps legacy schedule" 1.5 (burn (mk 7 0.0))

(* --- leader failover --------------------------------------------------- *)

let test_failover_on_partition () =
  let p, f = solved 41 in
  ignore f;
  let net = Distributed.create p.Problem.graph ~k:4 in
  let preferred = Distributed.controller_of net (List.hd p.Problem.sources) in
  Distributed.partition net preferred;
  let fabric = Fabric.create () in
  match Distributed.solve net fabric p with
  | None -> Alcotest.fail "three live controllers should still solve"
  | Some stats ->
      Alcotest.(check bool) "leader moved" true
        (stats.Distributed.leader <> preferred);
      Alcotest.(check bool) "leader is live" true
        (not (Distributed.is_partitioned net stats.Distributed.leader));
      Alcotest.(check bool) "failovers counted" true
        (stats.Distributed.failovers >= 1);
      Alcotest.(check bool) "election traffic visible" true
        (Fabric.count fabric Fabric.Failover > 0);
      Alcotest.(check bool) "forest still valid" true
        (Sof.Validate.check stats.Distributed.forest = Ok ())

let test_all_partitioned_no_solve () =
  let p, _ = solved 42 in
  let net = Distributed.create p.Problem.graph ~k:3 in
  for c = 0 to 2 do
    Distributed.partition net c
  done;
  let fabric = Fabric.create () in
  Alcotest.(check bool) "dead control plane" true
    (Distributed.solve net fabric p = None);
  Distributed.heal net 1;
  Alcotest.(check bool) "healed controller leads" true
    (match Distributed.solve net fabric p with
    | Some stats -> stats.Distributed.leader = 1
    | None -> false)

let test_partition_bad_id () =
  let p, _ = solved 43 in
  let net = Distributed.create p.Problem.graph ~k:3 in
  Alcotest.check_raises "bad id"
    (Invalid_argument "Distributed.partition: no such controller") (fun () ->
      Distributed.partition net 7)

(* --- Sim outage accounting --------------------------------------------- *)

let test_sim_outage_accounting () =
  let rng = Sof_util.Rng.create 9 in
  let topo = Sof_topology.Topology.testbed () in
  let p =
    Sof_workload.Instance.draw ~rng topo
      {
        Sof_workload.Instance.n_vms = 8;
        n_sources = 2;
        n_dests = 4;
        chain_length = 2;
        setup_multiplier = 1.0;
      }
  in
  let f =
    match Sof.Sofda.solve_forest p with
    | Some f -> f
    | None -> Alcotest.fail "testbed instance should solve"
  in
  let routes = Sim.routes_of_forest f in
  let shared =
    match routes with
    | r :: _ -> List.hd r.Sim.links
    | [] -> Alcotest.fail "expected routes"
  in
  let window = 25.0 in
  let run outages =
    Sim.run ~rng:(Sof_util.Rng.create 17) ~outages Sim.default_config f
  in
  let ms = run [ (shared, 10.0, 10.0 +. window) ] in
  let hit, missed =
    List.partition
      (fun (m : Sim.metrics) ->
        let r = List.find (fun (r : Sim.route) -> r.Sim.dest = m.Sim.dest) routes in
        List.mem shared r.Sim.links)
      ms
  in
  Alcotest.(check bool) "some route crosses the dead link" true (hit <> []);
  List.iter
    (fun (m : Sim.metrics) ->
      Alcotest.(check bool) "outage accrued" true (m.Sim.outage > 0.0);
      Alcotest.(check bool) "outage bounded by window" true
        (m.Sim.outage <= window +. 1e-6);
      Alcotest.(check bool) "stall at least as long as outage" true
        (m.Sim.rebuffer >= m.Sim.outage -. 1e-6))
    hit;
  List.iter
    (fun (m : Sim.metrics) ->
      Alcotest.check feq "untouched route has no outage" 0.0 m.Sim.outage)
    missed;
  (* the same run without outages stalls strictly less on the hit routes *)
  let baseline = run [] in
  List.iter
    (fun (m : Sim.metrics) ->
      let b =
        List.find (fun (x : Sim.metrics) -> x.Sim.dest = m.Sim.dest) baseline
      in
      Alcotest.(check bool) "outage only adds stall" true
        (b.Sim.rebuffer <= m.Sim.rebuffer +. 1e-6))
    hit

(* Availability regression: a destination whose node dies permanently is
   dropped from the forest (repair's leave-based prune) but must keep
   counting against availability in every subsequent entry — the
   denominator stays the pristine destination set. *)
let test_chaos_availability_permanent_loss () =
  (* Star: source 0 — VM 1 — dests {2, 3, 4}. *)
  let g =
    Graph.create ~n:5
      ~edges:[ (0, 1, 1.0); (1, 2, 1.0); (1, 3, 1.0); (1, 4, 1.0) ]
  in
  let p =
    Problem.make ~graph:g
      ~node_cost:[| 0.0; 1.0; 0.0; 0.0; 0.0 |]
      ~vms:[ 1 ] ~sources:[ 0 ] ~dests:[ 2; 3; 4 ] ~chain_length:1
  in
  let forest =
    match Sof.Sofda.solve_forest p with
    | Some f -> f
    | None -> Alcotest.fail "star instance should solve"
  in
  let trace =
    Fault.of_list
      [ (1.0, Fault.Node_down 4); (2.0, Fault.Heal 0);
        (3.0, Fault.Partition 0) ]
  in
  let report = Chaos.run ~trace forest in
  (match report.Chaos.entries with
  | [ e1; e2; e3 ] ->
      Alcotest.(check (list int)) "dest 4 dropped" [ 4 ] e1.Chaos.dropped;
      Alcotest.(check int) "served after loss" 2 e1.Chaos.served;
      (* never rejoined: node 4 stays down for the rest of the trace *)
      Alcotest.(check (list int)) "no rejoin (heal)" [] e2.Chaos.rejoined;
      Alcotest.(check (list int)) "no rejoin (partition)" [] e3.Chaos.rejoined;
      Alcotest.(check int) "still down (heal)" 2 e2.Chaos.served;
      Alcotest.(check int) "still down (partition)" 2 e3.Chaos.served
  | es -> Alcotest.failf "expected 3 entries, got %d" (List.length es));
  (* hand-computed: every entry serves 2 of the pristine 3 dests *)
  Alcotest.check (Alcotest.float 1e-9) "availability pinned" (2.0 /. 3.0)
    report.Chaos.availability

let suite =
  [
    Alcotest.test_case "scripted trace" `Quick test_scripted_trace;
    Alcotest.test_case "availability: permanent dest loss" `Quick
      test_chaos_availability_permanent_loss;
    Alcotest.test_case "schedule deterministic" `Quick test_schedule_deterministic;
    Alcotest.test_case "health folding" `Quick test_health_folding;
    Alcotest.test_case "degrade total outage" `Quick test_degrade_total_outage;
    Alcotest.test_case "link outage projection" `Quick test_link_outages_projection;
    Alcotest.test_case "repair: link reroute" `Quick test_repair_link_reroute;
    Alcotest.test_case "repair: noop on unused link" `Quick
      test_repair_noop_on_unused_link;
    Alcotest.test_case "repair: vm crash" `Quick test_repair_vm_crash;
    Alcotest.test_case "repair: dest node down" `Quick test_repair_dest_node_down;
    Alcotest.test_case "install cost bounds" `Quick test_install_cost_bounds;
    Alcotest.test_case "chaos report invariants" `Quick
      test_chaos_report_invariants;
    Alcotest.test_case "lossy fabric" `Quick test_fabric_lossy;
    Alcotest.test_case "fabric timeout" `Quick test_fabric_timeout_burns_budget;
    Alcotest.test_case "fabric jitter schedule" `Quick
      test_fabric_jitter_schedule;
    Alcotest.test_case "failover on partition" `Quick test_failover_on_partition;
    Alcotest.test_case "all partitioned" `Quick test_all_partitioned_no_solve;
    Alcotest.test_case "partition bad id" `Quick test_partition_bad_id;
    Alcotest.test_case "sim outage accounting" `Quick test_sim_outage_accounting;
  ]
