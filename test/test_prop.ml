(* The property harness and its differential-oracle suite.

   - Every oracle property runs at its full default count from a fixed
     seed (the same registry `sof fuzz` iterates over).
   - The seed corpus (compiled-in entries plus test/seed_corpus.txt) is
     replayed: pass entries are regressions that must stay green, the
     deliberate demo entry must keep failing.
   - The engine itself is tested: replay contract (a failure reproduces
     from its printed case seed), greedy shrinking reaching the minimal
     counterexample, generator/shrinker well-formedness. *)

module Prop = Sof_prop.Prop
module Spec = Sof_prop.Spec
module Oracles = Sof_prop.Oracles
module Corpus = Sof_prop.Corpus
module Rng = Sof_util.Rng

let run_seed = 2026

(* --- oracle suite ------------------------------------------------------ *)

let oracle_cases =
  List.map
    (fun (p, count) ->
      Alcotest.test_case
        (Printf.sprintf "%s (%d cases)" (Prop.packed_name p) count)
        `Slow
        (fun () -> Prop.check_packed_exn ~count ~seed:run_seed p))
    Oracles.all

(* --- corpus replay ----------------------------------------------------- *)

let replay_all entries =
  List.iter
    (fun e ->
      match Corpus.replay e with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (Corpus.pp_entry e ^ "\n" ^ msg))
    entries

let test_corpus_builtin () = replay_all Corpus.builtin

let test_corpus_file () =
  match Corpus.load_file "seed_corpus.txt" with
  | Error msg -> Alcotest.fail msg
  | Ok entries ->
      Alcotest.(check bool) "corpus file is not empty" true (entries <> []);
      replay_all entries

let test_corpus_parse () =
  (match Corpus.parse_line "  # just a comment" with
  | Ok None -> ()
  | _ -> Alcotest.fail "comment line should parse to None");
  (match Corpus.parse_line "forest-validity 12 34 pass # note here" with
  | Ok (Some e) ->
      Alcotest.(check string) "prop" "forest-validity" e.Corpus.prop;
      Alcotest.(check int) "seed" 12 e.Corpus.seed;
      Alcotest.(check int) "count" 34 e.Corpus.count;
      Alcotest.(check bool) "expect" true (e.Corpus.expect = Corpus.Pass);
      Alcotest.(check string) "note" "note here" e.Corpus.note
  | _ -> Alcotest.fail "well-formed line should parse");
  match Corpus.parse_line "forest-validity twelve 34 pass" with
  | Error _ -> ()
  | _ -> Alcotest.fail "malformed seed should be rejected"

(* --- the deliberate failure: found, shrunk to minimal, replayable ------ *)

let test_demo_shrinks_to_minimal () =
  match Prop.run ~count:20 ~seed:0 Oracles.demo_dest_budget_prop with
  | Prop.Passed _ -> Alcotest.fail "demo law should fail within 20 cases"
  | Prop.Failed f ->
      let s = f.Prop.shrunk in
      (* Greedy shrinking must reach the minimal failing instance: exactly
         one destination over the law's budget, everything else stripped. *)
      Alcotest.(check int) "dests at the boundary" 4
        (List.length s.Spec.dests);
      Alcotest.(check int) "one source" 1 (List.length s.Spec.sources);
      Alcotest.(check int) "one VM" 1 (List.length s.Spec.vms);
      Alcotest.(check int) "chain length 1" 1 s.Spec.chain_length;
      Alcotest.(check bool) "all edges deleted" true (s.Spec.edges = []);
      let max_role =
        List.fold_left max 0 (s.Spec.vms @ s.Spec.sources @ s.Spec.dests)
      in
      Alcotest.(check int) "unused top nodes trimmed" (max_role + 1)
        s.Spec.n;
      Alcotest.(check bool) "took shrink steps" true (f.Prop.shrink_steps > 0)

let test_demo_replays_from_case_seed () =
  match Prop.run ~count:20 ~seed:0 Oracles.demo_dest_budget_prop with
  | Prop.Passed _ -> Alcotest.fail "demo law should fail"
  | Prop.Failed f -> (
      (* The failure report names a single seed that regenerates the raw
         failing case as case 0 of a one-case run — the replay contract. *)
      match
        Prop.run ~count:1 ~seed:f.Prop.case_seed Oracles.demo_dest_budget_prop
      with
      | Prop.Passed _ -> Alcotest.fail "case seed did not reproduce"
      | Prop.Failed f' ->
          Alcotest.(check int) "reproduces at case 0" 0 f'.Prop.case;
          Alcotest.(check string) "same shrunk counterexample"
            f.Prop.counterexample f'.Prop.counterexample)

(* --- engine and generator well-formedness ------------------------------ *)

let test_runs_deterministic () =
  (* Identical (seed, count) runs observe identical outcomes. *)
  let a = Prop.run ~count:30 ~seed:7 Oracles.demo_dest_budget_prop in
  let b = Prop.run ~count:30 ~seed:7 Oracles.demo_dest_budget_prop in
  match (a, b) with
  | Prop.Passed _, Prop.Passed _ -> ()
  | Prop.Failed fa, Prop.Failed fb ->
      Alcotest.(check int) "same case" fa.Prop.case fb.Prop.case;
      Alcotest.(check string) "same counterexample" fa.Prop.counterexample
        fb.Prop.counterexample
  | _ -> Alcotest.fail "outcomes differ across identical runs"

let test_case_seeds_distinct () =
  let seen = Hashtbl.create 64 in
  for seed = 0 to 3 do
    for i = 0 to 63 do
      Hashtbl.replace seen (Prop.case_seed ~seed i) ()
    done
  done;
  Alcotest.(check int) "4 x 64 distinct case seeds" 256 (Hashtbl.length seen)

(* Shrink candidates always stay inside Problem.make's invariants — checked
   with the harness itself, over the same mixed generator the oracles use. *)
let prop_shrink_well_formed =
  Prop.make ~print:Spec.print ~name:"shrink-well-formed" ~gen:Spec.gen_mixed
    (fun spec ->
      let bad =
        Seq.find_map
          (fun cand ->
            match Spec.to_problem cand with
            | _ -> None
            | exception e ->
                Some (Spec.print cand ^ ": " ^ Printexc.to_string e))
          (Spec.shrink spec)
      in
      match bad with
      | None -> Ok ()
      | Some msg -> Error ("ill-formed shrink candidate: " ^ msg))

let test_shrink_well_formed () =
  Prop.check_exn ~count:150 ~seed:run_seed prop_shrink_well_formed

let test_gen_subset_is_subset () =
  let rng = Rng.create 5 in
  for _ = 1 to 100 do
    let xs = List.init 10 Fun.id in
    let sub = Prop.Gen.subset ~max:6 xs rng in
    Alcotest.(check bool) "subset" true
      (List.length sub <= 6 && List.for_all (fun x -> List.mem x xs) sub)
  done

let test_spec_roundtrip () =
  (* of_problem . to_problem preserves the instance (modulo edge collapse
     and zero-setup omission, both of which to_problem re-normalizes). *)
  let rng = Rng.create 11 in
  for _ = 1 to 50 do
    let spec = Spec.gen_random () rng in
    let p = Spec.to_problem spec in
    let spec' = Spec.of_problem p in
    let p' = Spec.to_problem spec' in
    Alcotest.(check bool) "same problem" true
      (Sof.Problem.n p = Sof.Problem.n p'
      && p.Sof.Problem.sources = p'.Sof.Problem.sources
      && p.Sof.Problem.dests = p'.Sof.Problem.dests
      && p.Sof.Problem.vms = p'.Sof.Problem.vms
      && p.Sof.Problem.node_cost = p'.Sof.Problem.node_cost
      && Sof_graph.Graph.edges p.Sof.Problem.graph
         = Sof_graph.Graph.edges p'.Sof.Problem.graph)
  done

let test_find_knows_every_name () =
  List.iter
    (fun n ->
      match Oracles.find n with
      | Some p -> Alcotest.(check string) "found by name" n (Prop.packed_name p)
      | None -> Alcotest.fail ("Oracles.find misses " ^ n))
    (Oracles.names ());
  Alcotest.(check bool) "unknown name" true (Oracles.find "no-such-prop" = None)

let suite =
  oracle_cases
  @ [
      Alcotest.test_case "corpus: builtin entries replay" `Slow
        test_corpus_builtin;
      Alcotest.test_case "corpus: seed_corpus.txt replays" `Slow
        test_corpus_file;
      Alcotest.test_case "corpus: line parser" `Quick test_corpus_parse;
      Alcotest.test_case "demo failure shrinks to minimal instance" `Quick
        test_demo_shrinks_to_minimal;
      Alcotest.test_case "demo failure replays from case seed" `Quick
        test_demo_replays_from_case_seed;
      Alcotest.test_case "runs are deterministic" `Quick
        test_runs_deterministic;
      Alcotest.test_case "case seeds do not collide" `Quick
        test_case_seeds_distinct;
      Alcotest.test_case "shrink candidates stay well-formed" `Slow
        test_shrink_well_formed;
      Alcotest.test_case "Gen.subset draws subsets" `Quick
        test_gen_subset_is_subset;
      Alcotest.test_case "spec round-trips through Problem" `Quick
        test_spec_roundtrip;
      Alcotest.test_case "registry lookup by name" `Quick
        test_find_knows_every_name;
    ]
