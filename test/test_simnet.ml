module Session = Sof_simnet.Session
module Sim = Sof_simnet.Sim
open Testlib

let cfg =
  {
    Session.bitrate = 8e6;
    duration = 100.0;
    startup_threshold = 2.0;
    resume_threshold = 1.0;
    pipeline_delay = 0.5;
  }

let test_session_fast_link () =
  (* 16 Mbit/s on an 8 Mbit/s stream: startup = threshold / (rate/bitrate),
     never stalls, finishes exactly when playback does. *)
  let s = Session.create cfg ~num_vnfs:2 ~path_latency:0.0 in
  Session.advance s ~now:0.0 ~rate:16e6 ~dt:500.0;
  Alcotest.(check bool) "done" true (Session.is_done s);
  (match Session.startup_latency s with
  | Some st -> Alcotest.check feq "startup = 1 + pipeline" 2.0 st
  | None -> Alcotest.fail "no startup");
  Alcotest.check feq "no rebuffer" 0.0 (Session.rebuffer_time s);
  Alcotest.(check int) "no stalls" 0 (Session.stall_count s);
  Alcotest.check feq "played everything" 100.0 (Session.played s)

let test_session_slow_link () =
  (* 4 Mbit/s on an 8 Mbit/s stream: total wall time ~ 2x the clip, so
     rebuffering ~ duration. *)
  let s = Session.create cfg ~num_vnfs:0 ~path_latency:0.0 in
  Session.advance s ~now:0.0 ~rate:4e6 ~dt:1000.0;
  Alcotest.(check bool) "done" true (Session.is_done s);
  Alcotest.(check bool) "stalled a lot" true (Session.rebuffer_time s > 50.0);
  Alcotest.(check bool) "stalls counted" true (Session.stall_count s > 0)

let test_session_zero_rate_never_starts () =
  let s = Session.create cfg ~num_vnfs:0 ~path_latency:0.0 in
  Session.advance s ~now:0.0 ~rate:0.0 ~dt:100.0;
  Alcotest.(check bool) "not started" true (Session.startup_latency s = None);
  Alcotest.(check bool) "not done" false (Session.is_done s)

let test_session_path_latency_adds () =
  let mk lat =
    let s = Session.create cfg ~num_vnfs:0 ~path_latency:lat in
    Session.advance s ~now:0.0 ~rate:16e6 ~dt:10.0;
    Option.get (Session.startup_latency s)
  in
  Alcotest.check feq "latency shifts startup" 1.5 (mk 1.5 -. mk 0.0)

let test_session_chunked_advance_agrees () =
  (* advancing in many small steps must equal one big step (the analytic
     transitions are exact) *)
  let one = Session.create cfg ~num_vnfs:1 ~path_latency:0.2 in
  Session.advance one ~now:0.0 ~rate:7e6 ~dt:400.0;
  let many = Session.create cfg ~num_vnfs:1 ~path_latency:0.2 in
  let t = ref 0.0 in
  for _ = 1 to 4000 do
    Session.advance many ~now:!t ~rate:7e6 ~dt:0.1;
    t := !t +. 0.1
  done;
  Alcotest.check feq "rebuffer equal" (Session.rebuffer_time one)
    (Session.rebuffer_time many);
  Alcotest.check (Alcotest.float 1e-4) "played equal" (Session.played one)
    (Session.played many);
  Alcotest.(check int) "stalls equal" (Session.stall_count one)
    (Session.stall_count many)

let solved_testbed seed =
  let rng = Sof_util.Rng.create seed in
  let topo = Sof_topology.Topology.testbed () in
  let p =
    Sof_workload.Instance.draw ~rng topo
      {
        Sof_workload.Instance.n_vms = 8;
        n_sources = 2;
        n_dests = 4;
        chain_length = 2;
        setup_multiplier = 1.0;
      }
  in
  match Sof.Sofda.solve p with
  | Some r -> r.Sof.Sofda.forest
  | None -> Alcotest.fail "testbed instance should solve"

let test_routes_cover_dests () =
  let forest = solved_testbed 1 in
  let routes = Sim.routes_of_forest forest in
  let dests = forest.Sof.Forest.problem.Sof.Problem.dests in
  Alcotest.(check int) "one route per dest" (List.length dests)
    (List.length routes);
  let g = forest.Sof.Forest.problem.Sof.Problem.graph in
  List.iter
    (fun (r : Sim.route) ->
      List.iter
        (fun (u, v) ->
          Alcotest.(check bool) "route uses physical links" true
            (Sof_graph.Graph.mem_edge g u v))
        r.Sim.links;
      Alcotest.(check int) "context per link" (List.length r.Sim.links)
        (List.length r.Sim.contexts))
    routes

(* --- degenerate forests ------------------------------------------------ *)

(* A destination colocated with the source and the whole chain: the walk is
   the single hop [0], its injection point is the destination itself, so
   the route has no links at all — and the simulation still completes at
   full rate. *)
let test_routes_source_is_dest () =
  let g = Sof_graph.Graph.create ~n:2 ~edges:[ (0, 1, 1.0) ] in
  let p =
    Sof.Problem.make ~graph:g ~node_cost:[| 1.0; 0.0 |] ~vms:[ 0 ]
      ~sources:[ 0 ] ~dests:[ 0 ] ~chain_length:1
  in
  let walk =
    { Sof.Forest.source = 0; hops = [| 0 |]; marks = [ { Sof.Forest.pos = 0; vnf = 1 } ] }
  in
  let f = Sof.Forest.make p ~walks:[ walk ] ~delivery:[] in
  Alcotest.(check bool) "forest valid" true (Sof.Validate.check f = Ok ());
  (match Sim.routes_of_forest f with
  | [ r ] ->
      Alcotest.(check int) "dest" 0 r.Sim.dest;
      Alcotest.(check (list (pair int int))) "no links" [] r.Sim.links;
      Alcotest.(check (list (pair (pair int int) int))) "no contexts" []
        r.Sim.contexts
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 route, got %d" (List.length rs)));
  let ms = Sim.run ~rng:(Sof_util.Rng.create 1) Sim.default_config f in
  match ms with
  | [ m ] ->
      Alcotest.(check bool) "completed" true m.Sim.completed;
      Alcotest.check feq "no rebuffer on empty route" 0.0 m.Sim.rebuffer
  | _ -> Alcotest.fail "expected 1 session"

(* A cloned walk revisits a node (paper's clones): the duplicated link
   appears once per traversal, each with its own stage context, and the
   run still completes. *)
let test_routes_cloned_walk_duplicate_hops () =
  let g =
    Sof_graph.Graph.create ~n:4
      ~edges:[ (0, 1, 1.0); (1, 2, 1.0); (1, 3, 1.0) ]
  in
  let p =
    Sof.Problem.make ~graph:g ~node_cost:[| 0.0; 0.0; 1.0; 1.0 |]
      ~vms:[ 2; 3 ] ~sources:[ 0 ] ~dests:[ 3 ] ~chain_length:2
  in
  let walk =
    {
      Sof.Forest.source = 0;
      hops = [| 0; 1; 2; 1; 3 |];
      marks = [ { Sof.Forest.pos = 2; vnf = 1 }; { Sof.Forest.pos = 4; vnf = 2 } ];
    }
  in
  let f = Sof.Forest.make p ~walks:[ walk ] ~delivery:[] in
  Alcotest.(check bool) "forest valid" true (Sof.Validate.check f = Ok ());
  (match Sim.routes_of_forest f with
  | [ r ] ->
      Alcotest.(check (list (pair int int)))
        "links in traversal order, duplicate kept"
        [ (0, 1); (1, 2); (1, 2); (1, 3) ]
        r.Sim.links;
      Alcotest.(check int) "context per traversal" 4 (List.length r.Sim.contexts);
      (* the two passes over (1,2) carry different stages, so their
         contexts differ — the sharing rule must not collapse them *)
      let ctx (u, v) =
        List.filter_map
          (fun (e, id) -> if e = (u, v) then Some id else None)
          r.Sim.contexts
      in
      (match ctx (1, 2) with
      | [ a; b ] -> Alcotest.(check bool) "distinct stage contexts" true (a <> b)
      | l -> Alcotest.fail (Printf.sprintf "expected 2 contexts on (1,2), got %d" (List.length l)))
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 route, got %d" (List.length rs)));
  let ms = Sim.run ~rng:(Sof_util.Rng.create 2) Sim.default_config f in
  List.iter
    (fun (m : Sim.metrics) ->
      Alcotest.(check bool) "completed" true m.Sim.completed)
    ms

(* Routes survive a chain shrunk by Dynamic.vnf_delete: still one route per
   destination over physical links only. *)
let test_routes_after_vnf_delete () =
  let count = ref 0 in
  for seed = 1 to 8 do
    let forest = solved_testbed seed in
    let chain = forest.Sof.Forest.problem.Sof.Problem.chain_length in
    if chain >= 2 then begin
      let upd = Sof.Dynamic.vnf_delete forest ~vnf:1 in
      let f = upd.Sof.Dynamic.forest in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: post-delete forest valid" seed)
        true
        (Sof.Validate.check f = Ok ());
      let routes = Sim.routes_of_forest f in
      let g = f.Sof.Forest.problem.Sof.Problem.graph in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: route per dest" seed)
        (List.length f.Sof.Forest.problem.Sof.Problem.dests)
        (List.length routes);
      List.iter
        (fun (r : Sim.route) ->
          List.iter
            (fun (u, v) ->
              Alcotest.(check bool) "physical link" true
                (Sof_graph.Graph.mem_edge g u v))
            r.Sim.links)
        routes;
      incr count
    end
  done;
  Alcotest.(check bool) "exercised at least one chain >= 2" true (!count > 0)

let test_sim_run_completes () =
  let forest = solved_testbed 2 in
  let rng = Sof_util.Rng.create 9 in
  let ms = Sim.run ~rng Sim.default_config forest in
  Alcotest.(check int) "all sessions measured" 4 (List.length ms);
  List.iter
    (fun (m : Sim.metrics) ->
      Alcotest.(check bool) "completed" true m.Sim.completed;
      Alcotest.(check bool) "startup positive" true (m.Sim.startup > 0.0);
      Alcotest.(check bool) "rebuffer nonneg" true (m.Sim.rebuffer >= 0.0))
    ms

let test_sim_deterministic () =
  let forest = solved_testbed 3 in
  let run () =
    let rng = Sof_util.Rng.create 5 in
    Sim.run ~rng Sim.default_config forest
  in
  let a = run () and b = run () in
  List.iter2
    (fun (x : Sim.metrics) (y : Sim.metrics) ->
      Alcotest.check feq "same startup" x.Sim.startup y.Sim.startup;
      Alcotest.check feq "same rebuffer" x.Sim.rebuffer y.Sim.rebuffer)
    a b

let test_sim_more_bandwidth_less_stall () =
  let forest = solved_testbed 4 in
  let run lo hi =
    let rng = Sof_util.Rng.create 5 in
    let cfg = { Sim.default_config with Sim.avail_lo = lo; avail_hi = hi } in
    Sim.mean_rebuffer (Sim.run ~rng cfg forest)
  in
  let congested = run 4.5e6 9e6 in
  let roomy = run 40e6 45e6 in
  Alcotest.(check bool) "more bandwidth, less rebuffering" true
    (roomy <= congested +. 1e-9);
  Alcotest.check feq "no stalls with headroom" 0.0 roomy

(* Conservation-style property: played time never exceeds clip length, and
   a completed session played exactly the clip. *)
let prop_session_conservation =
  QCheck.Test.make ~count:200 ~name:"session conservation"
    QCheck.(pair (int_bound 1_000_000) (int_range 1 20))
    (fun (seed, mbit) ->
      let rng = Sof_util.Rng.create seed in
      let s = Session.create cfg ~num_vnfs:1 ~path_latency:0.1 in
      let rate = float_of_int mbit *. 1e6 in
      let t = ref 0.0 in
      for _ = 1 to 100 do
        let dt = 0.5 +. Sof_util.Rng.float rng 10.0 in
        Session.advance s ~now:!t ~rate ~dt;
        t := !t +. dt
      done;
      Session.played s <= cfg.Session.duration +. 1e-6
      && ((not (Session.is_done s))
         || abs_float (Session.played s -. cfg.Session.duration) < 1e-6))

let suite =
  [
    Alcotest.test_case "session fast link" `Quick test_session_fast_link;
    Alcotest.test_case "session slow link" `Quick test_session_slow_link;
    Alcotest.test_case "session zero rate" `Quick test_session_zero_rate_never_starts;
    Alcotest.test_case "session path latency" `Quick test_session_path_latency_adds;
    Alcotest.test_case "session chunked advance" `Quick test_session_chunked_advance_agrees;
    Alcotest.test_case "routes cover dests" `Quick test_routes_cover_dests;
    Alcotest.test_case "route for source = destination" `Quick
      test_routes_source_is_dest;
    Alcotest.test_case "cloned walk duplicate hops" `Quick
      test_routes_cloned_walk_duplicate_hops;
    Alcotest.test_case "routes after vnf delete" `Quick
      test_routes_after_vnf_delete;
    Alcotest.test_case "sim completes" `Quick test_sim_run_completes;
    Alcotest.test_case "sim deterministic" `Quick test_sim_deterministic;
    Alcotest.test_case "sim bandwidth monotone" `Quick test_sim_more_bandwidth_less_stall;
  ]
  @ qsuite [ prop_session_conservation ]
