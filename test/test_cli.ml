(* Smoke tests for the command-line front end and the example binaries.

   A separate test executable (see test/dune): it shells out to the built
   artifacts, which dune provides as dependencies relative to the test's
   working directory, and asserts exit codes — solve/topologies/fuzz paths
   succeed, unknown --topology/--algo/--prop values exit nonzero through
   Cmdliner's error path instead of an uncaught exception, and every
   example binary runs to a clean exit. *)

let cli = Filename.concat ".." "bin/sof_cli.exe"

let examples =
  [
    "quickstart";
    "cdn_live_stream";
    "vr_edge_multicast";
    "dynamic_membership";
    "distributed_controllers";
    "online_adaptive";
  ]

let run cmd = Sys.command (cmd ^ " > /dev/null 2>&1")

let check_exit name expected cmd =
  let got = run cmd in
  Alcotest.(check int) (Printf.sprintf "%s: exit code of %s" name cmd) expected
    got

let test_solve_testbed () =
  check_exit "solve" 0 (cli ^ " solve --topology testbed --seed 1 --vms 6")

let test_solve_baseline_algo () =
  check_exit "solve est" 0
    (cli ^ " solve --topology testbed --algo est --seed 1 --vms 6")

let test_solve_lp_round () =
  check_exit "solve lp-round" 0
    (cli
   ^ " solve --topology testbed --algo lp-round --seed 1 --vms 6 --sources 2 \
      --dests 2 --chain 2")

let test_topologies () = check_exit "topologies" 0 (cli ^ " topologies")

let test_fuzz_smoke () =
  check_exit "fuzz" 0 (cli ^ " fuzz --count 5 --seed 0 --no-builtin-corpus")

let test_chaos_smoke () =
  check_exit "chaos" 0 (cli ^ " chaos --count 10 --seed 1")

let test_chaos_lossy_smoke () =
  check_exit "chaos lossy" 0
    (cli ^ " chaos --count 10 --seed 2 --topology testbed --loss 0.1")

let test_fuzz_list_props () =
  check_exit "fuzz --list-props" 0 (cli ^ " fuzz --list-props")

let test_profile_smoke () =
  let trace = Filename.temp_file "sof-profile" ".json" in
  let metrics = Filename.temp_file "sof-profile" ".prom" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove trace with Sys_error _ -> ());
      try Sys.remove metrics with Sys_error _ -> ())
    (fun () ->
      check_exit "profile" 0
        (cli ^ " profile --topology testbed --algo sofda --trace " ^ trace
       ^ " --metrics " ^ metrics);
      let size f =
        let ic = open_in_bin f in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> in_channel_length ic)
      in
      Alcotest.(check bool) "trace nonempty" true (size trace > 0);
      Alcotest.(check bool) "metrics nonempty" true (size metrics > 0))

let test_unknown_topology_rejected () =
  Alcotest.(check bool) "unknown topology exits nonzero" true
    (run (cli ^ " solve --topology atlantis") <> 0)

let test_unknown_algo_rejected () =
  Alcotest.(check bool) "unknown algo exits nonzero" true
    (run (cli ^ " solve --algo oracle") <> 0)

let test_unknown_prop_rejected () =
  Alcotest.(check bool) "unknown property exits nonzero" true
    (run (cli ^ " fuzz --prop no-such-prop") <> 0)

let test_unknown_subcommand_rejected () =
  Alcotest.(check bool) "unknown subcommand exits nonzero" true
    (run (cli ^ " frobnicate") <> 0)

let example_cases =
  List.map
    (fun name ->
      Alcotest.test_case (name ^ " runs clean") `Slow (fun () ->
          check_exit name 0 (Filename.concat ".." ("examples/" ^ name ^ ".exe"))))
    examples

let () =
  Alcotest.run "sof-cli"
    [
      ( "cli",
        [
          Alcotest.test_case "solve on testbed" `Slow test_solve_testbed;
          Alcotest.test_case "solve with baseline algo" `Slow
            test_solve_baseline_algo;
          Alcotest.test_case "solve with lp-round" `Slow test_solve_lp_round;
          Alcotest.test_case "topologies listing" `Slow test_topologies;
          Alcotest.test_case "fuzz smoke" `Slow test_fuzz_smoke;
          Alcotest.test_case "chaos smoke" `Slow test_chaos_smoke;
          Alcotest.test_case "chaos lossy smoke" `Slow test_chaos_lossy_smoke;
          Alcotest.test_case "fuzz --list-props" `Quick test_fuzz_list_props;
          Alcotest.test_case "profile smoke" `Slow test_profile_smoke;
          Alcotest.test_case "unknown --topology" `Quick
            test_unknown_topology_rejected;
          Alcotest.test_case "unknown --algo" `Quick test_unknown_algo_rejected;
          Alcotest.test_case "unknown --prop" `Quick test_unknown_prop_rejected;
          Alcotest.test_case "unknown subcommand" `Quick
            test_unknown_subcommand_rejected;
        ] );
      ("examples", example_cases);
    ]
