module Online = Sof_workload.Online
open Testlib

let sofda p = Option.map (fun r -> r.Sof.Sofda.forest) (Sof.Sofda.solve p)

let run_steps ?(n = 8) seed =
  let rng = Sof_util.Rng.create seed in
  Online.run ~rng
    (Sof_topology.Topology.softlayer ())
    Online.softlayer_config ~n_requests:n ~algo:sofda

let test_online_basic () =
  let steps = run_steps 1 in
  Alcotest.(check int) "step per request" 8 (List.length steps);
  List.iteri
    (fun i (s : Online.step) ->
      Alcotest.(check int) "request index" (i + 1) s.Online.request;
      Alcotest.(check bool) "cost nonneg" true (s.Online.cost >= 0.0))
    steps

let test_online_accumulates () =
  let steps = run_steps 2 in
  let series = Online.accumulated_series steps in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone accumulation" true (monotone series);
  let last = List.nth series (List.length series - 1) in
  let explicit =
    List.fold_left (fun acc (s : Online.step) -> acc +. s.Online.cost) 0.0 steps
  in
  Alcotest.check feq "accumulated equals sum of costs" explicit last

let test_online_serves () =
  let steps = run_steps 3 in
  List.iter
    (fun (s : Online.step) ->
      Alcotest.(check bool) "served" true s.Online.served)
    steps

let test_online_congestion_raises_marginal_cost () =
  (* later requests face loaded links: the average embedding cost of the
     second half should not be (much) below the first half *)
  let steps = run_steps ~n:16 4 in
  let costs = List.map (fun (s : Online.step) -> s.Online.cost) steps in
  let first = List.filteri (fun i _ -> i < 8) costs in
  let second = List.filteri (fun i _ -> i >= 8) costs in
  Alcotest.(check bool) "later requests cost more" true
    (Sof_util.Stats.mean second >= Sof_util.Stats.mean first *. 0.5)

let test_online_deterministic () =
  let a = Online.accumulated_series (run_steps 5) in
  let b = Online.accumulated_series (run_steps 5) in
  List.iter2 (fun x y -> Alcotest.check feq "same series" x y) a b

let test_online_sofda_beats_st_accumulated () =
  let run algo =
    let rng = Sof_util.Rng.create 6 in
    let steps =
      Online.run ~rng
        (Sof_topology.Topology.softlayer ())
        Online.softlayer_config ~n_requests:12 ~algo
    in
    List.nth (Online.accumulated_series steps) 11
  in
  let sofda_total = run sofda in
  let st_total = run Sof_baselines.Baselines.st in
  Alcotest.(check bool) "sofda accumulates less than st" true
    (sofda_total <= st_total +. 1e-6)

let test_adaptive_reroutes_under_pressure () =
  (* Congestion-blind embedding piles load onto shortest paths, so the
     re-join machinery has real work to do; it must both fire and lower
     the peak utilization versus the no-re-join run. *)
  let cfg = { Online.softlayer_config with Online.link_capacity = 50.0 } in
  let run threshold =
    let rng = Sof_util.Rng.create 9 in
    Online.run_adaptive ~pricing:`Hops ~rng ~utilization_threshold:threshold
      (Sof_topology.Topology.softlayer ())
      cfg ~n_requests:15 ~algo:sofda
  in
  let blind = run 99.0 in
  let adaptive = run 0.7 in
  Alcotest.(check int) "all arrivals stepped" 15
    (List.length adaptive.Online.steps);
  Alcotest.(check bool) "rerouted at least once" true
    (adaptive.Online.reroutes >= 1);
  Alcotest.(check bool) "peak utilization not worse" true
    (adaptive.Online.peak_utilization
    <= blind.Online.peak_utilization +. 1e-9)

let test_adaptive_matches_plain_when_idle () =
  (* With a sky-high threshold no re-join ever triggers, so the adaptive
     loop must reproduce the plain run exactly. *)
  let run_plain () =
    let rng = Sof_util.Rng.create 4 in
    Online.run ~rng
      (Sof_topology.Topology.softlayer ())
      Online.softlayer_config ~n_requests:6 ~algo:sofda
  in
  let run_ad () =
    let rng = Sof_util.Rng.create 4 in
    (Online.run_adaptive ~rng ~utilization_threshold:99.0
       (Sof_topology.Topology.softlayer ())
       Online.softlayer_config ~n_requests:6 ~algo:sofda)
      .Online.steps
  in
  List.iter2
    (fun (a : Online.step) (b : Online.step) ->
      Alcotest.check feq "same cost" a.Online.cost b.Online.cost)
    (run_plain ()) (run_ad ())

let test_draw_request_tiny_topology () =
  (* Regression: the request sizes come from softlayer-sized ranges
     (8-12 sources, 13-17 destinations); on a topology with only a
     handful of access nodes they must clamp to >= 1 of each, never to a
     zero or negative destination count. *)
  let rng = Sof_util.Rng.create 42 in
  for _ = 1 to 200 do
    let sources, dests =
      Online.draw_request ~rng ~n_access:3 Online.softlayer_config
    in
    Alcotest.(check bool) "at least one source" true (List.length sources >= 1);
    Alcotest.(check bool) "at least one dest" true (List.length dests >= 1);
    Alcotest.(check bool) "fits in the topology" true
      (List.length sources + List.length dests <= 3);
    List.iter
      (fun s ->
        Alcotest.(check bool) "disjoint" true (not (List.mem s dests)))
      sources
  done;
  Alcotest.check_raises "one access node is degenerate"
    (Invalid_argument
       "Online.draw_request: topology has 1 access node(s); a request needs \
        at least 2 (one source, one destination)") (fun () ->
      ignore (Online.draw_request ~rng ~n_access:1 Online.softlayer_config))

let test_online_runs_on_tiny_topology () =
  (* End-to-end on a 3-node triangle with one data center: every request
     clamps to 1-2 sources and 1-2 destinations and the run completes. *)
  let topo =
    {
      Sof_topology.Topology.name = "triangle";
      graph =
        Sof_graph.Graph.create ~n:3
          ~edges:[ (0, 1, 1.0); (1, 2, 1.0); (0, 2, 1.0) ];
      dcs = [ 1 ];
    }
  in
  let rng = Sof_util.Rng.create 8 in
  let steps =
    Online.run ~rng topo Online.softlayer_config ~n_requests:4 ~algo:sofda
  in
  Alcotest.(check int) "all requests stepped" 4 (List.length steps)

let test_same_footprint () =
  (* Orientation- and order-insensitive ... *)
  Alcotest.(check bool) "reordered + flipped edges equal" true
    (Online.same_footprint
       ([ (0, 1); (2, 3) ], [ 5; 4 ])
       ([ (3, 2); (1, 0) ], [ 4; 5 ]));
  (* ... but per-context multiplicity is load, so it must distinguish *)
  Alcotest.(check bool) "multiplicity differs" false
    (Online.same_footprint ([ (0, 1); (1, 0) ], [ 4 ]) ([ (0, 1) ], [ 4 ]));
  Alcotest.(check bool) "different vms differ" false
    (Online.same_footprint ([ (0, 1) ], [ 4 ]) ([ (0, 1) ], [ 6 ]))

let test_adaptive_ledger_conservation () =
  (* After re-joins (rollbacks + recommits) the final ledger must be
     bit-identical to charging only the committed forests into a fresh
     one — the same law the ledger-conservation fuzz oracle checks, here
     pinned on a fixed congested seed. *)
  let cfg = { Online.softlayer_config with Online.link_capacity = 50.0 } in
  let topo = Sof_topology.Topology.softlayer () in
  let rng = Sof_util.Rng.create 9 in
  let report =
    Online.run_adaptive ~pricing:`Hops ~rng ~utilization_threshold:0.7 topo
      cfg ~n_requests:12 ~algo:sofda
  in
  Alcotest.(check bool) "re-joins fired" true (report.Online.reroutes >= 1);
  let graph, _, n_access = Online.augment topo cfg in
  let node_capacity =
    Array.init (Sof_graph.Graph.n graph) (fun v ->
        if v >= n_access then cfg.Online.vm_capacity else 0.0)
  in
  let fresh =
    Sof_cost.Ledger.create ~graph ~link_capacity:cfg.Online.link_capacity
      ~node_capacity
  in
  List.iter
    (fun f ->
      List.iter
        (fun (u, v) ->
          Sof_cost.Ledger.add_edge_load fresh u v cfg.Online.demand)
        (Sof.Forest.paid_edges f);
      List.iter
        (fun (vm, _) -> Sof_cost.Ledger.add_node_load fresh vm 1.0)
        (Sof.Forest.enabled_vms f))
    report.Online.committed;
  let final = report.Online.final_ledger in
  Sof_graph.Graph.iter_edges graph (fun u v _ ->
      Alcotest.(check (float 0.0))
        "edge load conserved"
        (Sof_cost.Ledger.edge_load fresh u v)
        (Sof_cost.Ledger.edge_load final u v));
  for v = 0 to Sof_graph.Graph.n graph - 1 do
    Alcotest.(check (float 0.0))
      "node load conserved"
      (Sof_cost.Ledger.node_load fresh v)
      (Sof_cost.Ledger.node_load final v)
  done

let suite =
  [
    Alcotest.test_case "draw_request tiny topology" `Quick
      test_draw_request_tiny_topology;
    Alcotest.test_case "online runs on tiny topology" `Quick
      test_online_runs_on_tiny_topology;
    Alcotest.test_case "same_footprint" `Quick test_same_footprint;
    Alcotest.test_case "adaptive ledger conservation" `Quick
      test_adaptive_ledger_conservation;
    Alcotest.test_case "online adaptive reroutes" `Quick
      test_adaptive_reroutes_under_pressure;
    Alcotest.test_case "online adaptive idle = plain" `Quick
      test_adaptive_matches_plain_when_idle;
    Alcotest.test_case "online basic" `Quick test_online_basic;
    Alcotest.test_case "online accumulates" `Quick test_online_accumulates;
    Alcotest.test_case "online serves" `Quick test_online_serves;
    Alcotest.test_case "online congestion" `Quick test_online_congestion_raises_marginal_cost;
    Alcotest.test_case "online deterministic" `Quick test_online_deterministic;
    Alcotest.test_case "online sofda vs st" `Quick test_online_sofda_beats_st_accumulated;
  ]
