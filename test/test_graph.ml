module Graph = Sof_graph.Graph
module Binheap = Sof_graph.Binheap
module Union_find = Sof_graph.Union_find
module Dijkstra = Sof_graph.Dijkstra
module Mst = Sof_graph.Mst
module Traversal = Sof_graph.Traversal
module Metric = Sof_graph.Metric
open Testlib

(* --- Graph structure --- *)

let diamond () =
  Graph.create ~n:4 ~edges:[ (0, 1, 1.0); (0, 2, 2.0); (1, 3, 3.0); (2, 3, 1.0) ]

let test_graph_basic () =
  let g = diamond () in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check int) "m" 4 (Graph.m g);
  Alcotest.(check int) "deg 0" 2 (Graph.degree g 0);
  Alcotest.(check (option (float 0.0))) "weight" (Some 3.0) (Graph.edge_weight g 3 1);
  Alcotest.(check (option (float 0.0))) "absent" None (Graph.edge_weight g 0 3);
  Alcotest.check feq "total" 7.0 (Graph.total_weight g)

let test_graph_parallel_edges () =
  let g = Graph.create ~n:2 ~edges:[ (0, 1, 5.0); (1, 0, 2.0); (0, 1, 9.0) ] in
  Alcotest.(check int) "collapsed" 1 (Graph.m g);
  Alcotest.(check (option (float 0.0))) "cheapest kept" (Some 2.0)
    (Graph.edge_weight g 0 1)

let test_graph_rejects () =
  let bad name f = Alcotest.(check bool) name true (try ignore (f ()); false with Invalid_argument _ -> true) in
  bad "self-loop" (fun () -> Graph.create ~n:2 ~edges:[ (0, 0, 1.0) ]);
  bad "negative weight" (fun () -> Graph.create ~n:2 ~edges:[ (0, 1, -1.0) ]);
  bad "out of range" (fun () -> Graph.create ~n:2 ~edges:[ (0, 5, 1.0) ])

let test_graph_map_filter () =
  let g = diamond () in
  let doubled = Graph.map_weights g (fun _ _ w -> 2.0 *. w) in
  Alcotest.check feq "doubled" 14.0 (Graph.total_weight doubled);
  let light = Graph.filter_edges g (fun _ _ w -> w < 2.0) in
  Alcotest.(check int) "filtered" 2 (Graph.m light)

let test_graph_edges_normalized () =
  let g = diamond () in
  List.iter
    (fun (u, v, _) -> Alcotest.(check bool) "u<v" true (u < v))
    (Graph.edges g)

(* --- Binheap --- *)

let test_heap_ordering () =
  let h = Binheap.create () in
  let rng = Sof_util.Rng.create 21 in
  let xs = List.init 500 (fun _ -> Sof_util.Rng.uniform rng) in
  List.iter (fun x -> Binheap.push h x ()) xs;
  Alcotest.(check int) "size" 500 (Binheap.size h);
  let rec drain prev =
    match Binheap.pop h with
    | None -> ()
    | Some (p, ()) ->
        Alcotest.(check bool) "nondecreasing" true (p >= prev);
        drain p
  in
  drain neg_infinity;
  Alcotest.(check bool) "empty" true (Binheap.is_empty h)

let test_heap_peek () =
  let h = Binheap.create () in
  Binheap.push h 2.0 "b";
  Binheap.push h 1.0 "a";
  Alcotest.(check (option (pair (float 0.0) string))) "peek min"
    (Some (1.0, "a")) (Binheap.peek h);
  Alcotest.(check int) "peek keeps" 2 (Binheap.size h)

let test_heap_ties () =
  (* Duplicate priorities hammer the 4-ary sift paths; drain must stay
     nondecreasing and return exactly the pushed multiset. *)
  let h = Binheap.create () in
  let rng = Sof_util.Rng.create 77 in
  let xs = List.init 1000 (fun i -> (float_of_int (Sof_util.Rng.int rng 8), i)) in
  List.iter (fun (p, i) -> Binheap.push h p i) xs;
  let rec drain prev acc =
    match Binheap.pop h with
    | None -> List.rev acc
    | Some (p, i) ->
        Alcotest.(check bool) "nondecreasing under ties" true (p >= prev);
        drain p ((p, i) :: acc)
  in
  let popped = drain neg_infinity [] in
  Alcotest.(check (list (pair (float 0.0) int)))
    "multiset preserved"
    (List.sort compare xs)
    (List.sort compare popped)

(* --- create_simple --- *)

let test_create_simple_equiv () =
  let edges = [ (0, 1, 1.0); (0, 2, 2.0); (1, 3, 3.0); (2, 3, 1.0) ] in
  let a = Graph.create ~n:4 ~edges in
  let b = Graph.create_simple ~n:4 ~edges in
  Alcotest.(check (list (triple int int (float 0.0))))
    "same edge list" (Graph.edges a) (Graph.edges b);
  List.iter
    (fun u ->
      Alcotest.(check (list (pair int (float 0.0))))
        "same neighbor rows" (Graph.neighbors a u) (Graph.neighbors b u))
    [ 0; 1; 2; 3 ]

let test_create_simple_rejects () =
  let bad name f =
    Alcotest.(check bool) name true
      (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  bad "duplicate pair" (fun () ->
      Graph.create_simple ~n:3 ~edges:[ (0, 1, 1.0); (1, 0, 2.0) ]);
  bad "self-loop" (fun () -> Graph.create_simple ~n:2 ~edges:[ (1, 1, 1.0) ]);
  bad "negative weight" (fun () ->
      Graph.create_simple ~n:2 ~edges:[ (0, 1, -1.0) ])

(* --- Union-find --- *)

let test_union_find () =
  let uf = Union_find.create 5 in
  Alcotest.(check int) "initial count" 5 (Union_find.count uf);
  Alcotest.(check bool) "union new" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "union dup" false (Union_find.union uf 1 0);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 1 3);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 2);
  Alcotest.(check bool) "not same" false (Union_find.same uf 0 4);
  Alcotest.(check int) "count" 2 (Union_find.count uf)

(* --- Dijkstra --- *)

let test_dijkstra_diamond () =
  let g = diamond () in
  let r = Dijkstra.run g 0 in
  Alcotest.check feq "dist 3" 3.0 r.Dijkstra.dist.(3);
  Alcotest.(check (option (list int))) "path" (Some [ 0; 2; 3 ])
    (Dijkstra.path_to r 3)

let test_dijkstra_unreachable () =
  let g = Graph.create ~n:3 ~edges:[ (0, 1, 1.0) ] in
  let r = Dijkstra.run g 0 in
  Alcotest.check feq "inf" infinity r.Dijkstra.dist.(2);
  Alcotest.(check (option (list int))) "no path" None (Dijkstra.path_to r 2)

let test_dijkstra_to_target () =
  let g = diamond () in
  (match Dijkstra.to_target g ~src:1 ~dst:2 with
  | Some (d, path) ->
      Alcotest.check feq "dist" 3.0 d;
      Alcotest.(check (list int)) "path" [ 1; 0; 2 ] path
  | None -> Alcotest.fail "expected path");
  Alcotest.(check (option (pair (float 0.0) (list int)))) "unreachable" None
    (Dijkstra.to_target (Graph.create ~n:3 ~edges:[ (0, 1, 1.0) ]) ~src:0 ~dst:2)

let test_multi_source () =
  let g =
    Graph.create ~n:5
      ~edges:[ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (3, 4, 1.0) ]
  in
  let r = Dijkstra.multi_source g [ 0; 4 ] in
  Alcotest.check feq "middle" 2.0 r.Dijkstra.dist.(2);
  Alcotest.check feq "near right" 1.0 r.Dijkstra.dist.(3)

let test_run_to_targets_early_exit () =
  (* Two components: 0-1-2 and 3-4.  Asking for node 4 from source 0 must
     drain the frontier, report unreachable, and leave the other
     component's labels untouched. *)
  let g =
    Graph.create ~n:5 ~edges:[ (0, 1, 1.0); (1, 2, 1.0); (3, 4, 1.0) ]
  in
  let r = Dijkstra.run_to_targets g 0 ~targets:[| 4 |] in
  Alcotest.check feq "unreachable target" infinity r.Dijkstra.dist.(4);
  Alcotest.(check int) "no parent" (-1) r.Dijkstra.parent.(4);
  Alcotest.(check (option (list int))) "no path" None (Dijkstra.path_to r 4);
  Alcotest.check feq "own component settled" 2.0 r.Dijkstra.dist.(2);
  (* A near target stops the sweep before the far end of the path. *)
  let line =
    Graph.create ~n:4 ~edges:[ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ]
  in
  let r = Dijkstra.run_to_targets line 0 ~targets:[| 1 |] in
  Alcotest.check feq "requested target exact" 1.0 r.Dijkstra.dist.(1);
  Alcotest.check feq "beyond the target unsettled" infinity r.Dijkstra.dist.(3)

let test_workspace_reuse () =
  (* Successive runs on the same domain share scratch arrays; a big run
     followed by small ones (and back) must never leak stale labels. *)
  let big =
    Graph.create ~n:64
      ~edges:(List.init 63 (fun i -> (i, i + 1, 1.0 +. float_of_int (i mod 3))))
  in
  let small = diamond () in
  let check_equal name g s =
    let want = Dijkstra.reference g [ s ] in
    let got = Dijkstra.run g s in
    Alcotest.(check bool)
      name true
      (want.Dijkstra.dist = got.Dijkstra.dist
      && want.Dijkstra.parent = got.Dijkstra.parent)
  in
  for round = 0 to 4 do
    check_equal (Printf.sprintf "big round %d" round) big (round mod 64);
    check_equal (Printf.sprintf "small round %d" round) small (round mod 4);
    let r = Dijkstra.run_to_targets big (round mod 64) ~targets:[| 0; 63 |] in
    Alcotest.check feq "targeted after reuse"
      (Dijkstra.reference big [ round mod 64 ]).Dijkstra.dist.(63)
      r.Dijkstra.dist.(63)
  done

let test_workspace_across_domains () =
  (* Every pool worker gets its own domain-local workspace: a parallel
     sweep over sources must be bit-identical to the sequential one. *)
  let g =
    Graph.create ~n:40
      ~edges:
        (List.init 39 (fun i -> (i, i + 1, 0.5 +. float_of_int (i mod 5)))
        @ List.init 13 (fun i -> (i, (3 * i) + 2, 2.5)))
  in
  let sources = Array.init 40 Fun.id in
  let saved = Sof_util.Pool.size () in
  Fun.protect
    ~finally:(fun () -> Sof_util.Pool.set_size saved)
    (fun () ->
      Sof_util.Pool.set_size 4;
      let par = Sof_util.Pool.parallel_map (fun s -> Dijkstra.run g s) sources in
      Sof_util.Pool.set_size 1;
      let seq = Array.map (fun s -> Dijkstra.run g s) sources in
      Array.iteri
        (fun i (want : Dijkstra.result) ->
          Alcotest.(check bool)
            (Printf.sprintf "source %d identical across domains" i)
            true
            (want.Dijkstra.dist = par.(i).Dijkstra.dist
            && want.Dijkstra.parent = par.(i).Dijkstra.parent))
        seq)

let prop_dijkstra_vs_bellman =
  QCheck.Test.make ~count:200 ~name:"dijkstra agrees with bellman-ford"
    (graph_params_arb ~max_n:30) (fun params ->
      let g = graph_of_params params in
      let r = Dijkstra.run g 0 in
      let bf = Dijkstra.bellman_ford g 0 in
      Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-6) r.Dijkstra.dist bf)

let prop_dijkstra_path_consistent =
  QCheck.Test.make ~count:200 ~name:"dijkstra path cost equals dist"
    (graph_params_arb ~max_n:30) (fun params ->
      let g = graph_of_params params in
      let r = Dijkstra.run g 0 in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        match Dijkstra.path_to r v with
        | None -> ()
        | Some path ->
            let rec cost acc = function
              | a :: (b :: _ as rest) -> (
                  match Graph.edge_weight g a b with
                  | Some w -> cost (acc +. w) rest
                  | None -> infinity)
              | _ -> acc
            in
            if abs_float (cost 0.0 path -. r.Dijkstra.dist.(v)) > 1e-6 then
              ok := false
      done;
      !ok)

(* --- MST --- *)

let test_mst_square () =
  let g =
    Graph.create ~n:4
      ~edges:[ (0, 1, 1.0); (1, 2, 2.0); (2, 3, 3.0); (3, 0, 4.0); (0, 2, 5.0) ]
  in
  let t = Mst.kruskal g in
  Alcotest.(check int) "edges" 3 (List.length t);
  Alcotest.check feq "weight" 6.0 (Mst.weight t);
  let p = Mst.prim g ~root:2 in
  Alcotest.check feq "prim equals kruskal weight" (Mst.weight t) (Mst.weight p)

let prop_mst_prim_kruskal_agree =
  QCheck.Test.make ~count:200 ~name:"prim and kruskal weights agree"
    (graph_params_arb ~max_n:25) (fun params ->
      let g = graph_of_params params in
      abs_float (Mst.weight (Mst.kruskal g) -. Mst.weight (Mst.prim g ~root:0))
      < 1e-6)

let prop_mst_spans =
  QCheck.Test.make ~count:100 ~name:"mst spans all nodes"
    (graph_params_arb ~max_n:25) (fun params ->
      let g = graph_of_params params in
      Mst.spans g (Mst.kruskal g) (List.init (Graph.n g) Fun.id))

(* --- Traversal --- *)

let test_components () =
  let g = Graph.create ~n:5 ~edges:[ (0, 1, 1.0); (2, 3, 1.0) ] in
  Alcotest.(check int) "three components" 3 (Traversal.component_count g);
  Alcotest.(check bool) "not connected" false (Traversal.is_connected g);
  Alcotest.(check bool) "forest" true (Traversal.is_forest g)

let test_prune_leaves () =
  (* path 0-1-2-3 plus leaf 4 at 1; keep {0,3}: leaf 4 pruned. *)
  let edges = [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (1, 4, 1.0) ] in
  let keep v = v = 0 || v = 3 in
  let pruned = Traversal.prune_steiner_leaves edges ~keep in
  Alcotest.(check int) "three edges left" 3 (List.length pruned);
  Alcotest.(check bool) "leaf gone" true
    (not (List.exists (fun (u, v, _) -> u = 4 || v = 4) pruned))

let test_prune_cascades () =
  (* chain 0-1-2-3 keeping only 0: everything prunes away. *)
  let edges = [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ] in
  let pruned = Traversal.prune_steiner_leaves edges ~keep:(fun v -> v = 0) in
  Alcotest.(check int) "all pruned" 0 (List.length pruned)

(* --- Metric closure --- *)

let test_metric_closure () =
  let g = diamond () in
  let c = Metric.closure g [| 0; 3 |] in
  Alcotest.check feq "dist" 3.0 (Metric.distance c 0 1);
  Alcotest.(check (list int)) "path" [ 0; 2; 3 ] (Metric.path c 0 1);
  Alcotest.check feq "by nodes" 3.0 (Metric.distance_nodes c 0 3)

let test_metric_node_queries () =
  let g = diamond () in
  let c = Metric.closure g [| 0; 3 |] in
  (* node 2 is a Steiner point: reachable only via the node-keyed API *)
  Alcotest.check feq "to steiner node" 2.0 (Metric.distance_to_node c 0 2);
  Alcotest.(check (list int)) "path to node" [ 0; 2 ] (Metric.path_to_node c 0 2);
  Alcotest.check feq "to terminal node" 3.0 (Metric.distance_to_node c 0 3);
  let d = Metric.dist_from_terminal c 1 in
  Alcotest.check feq "full array from terminal 3" 1.0 d.(2)

let test_metric_modes () =
  let g = diamond () in
  let shared = Metric.closure g [| 0; 3 |] in
  let local = Metric.closure ~local:true g [| 0; 3 |] in
  Alcotest.check feq "local agrees with shared"
    (Metric.distance shared 0 1) (Metric.distance local 0 1);
  Alcotest.(check (list int)) "local path agrees"
    (Metric.path shared 0 1) (Metric.path local 0 1);
  let cache = Metric.Cache.create () in
  Alcotest.(check bool) "local + cache rejected" true
    (try
       ignore (Metric.closure ~cache ~local:true g [| 0; 3 |]);
       false
     with Invalid_argument _ -> true)

let test_metric_cache_reuse () =
  let g = diamond () in
  let cache = Metric.Cache.create () in
  let cval name = Sof_obs.Obs.counter_value (Sof_obs.Obs.counter name) in
  Sof_obs.Obs.reset ();
  Sof_obs.Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Sof_obs.Obs.disable ();
      Sof_obs.Obs.reset ())
    (fun () ->
      let c1 = Metric.closure ~cache g [| 0; 3 |] in
      let runs_after_first = cval "metric.dijkstra_runs" in
      (* Same graph value, same terminals: every run is a cache hit. *)
      let c2 = Metric.closure ~cache g [| 0; 3 |] in
      Alcotest.(check int)
        "no new runs on the second closure" runs_after_first
        (cval "metric.dijkstra_runs");
      Alcotest.(check bool)
        "reuse counted" true
        (cval "metric.closure_reuse" >= 2);
      Alcotest.check feq "identical distances"
        (Metric.distance c1 0 1) (Metric.distance c2 0 1);
      (* A superset terminal set on the same graph still reuses the runs
         rooted at the old terminals. *)
      let c3 = Metric.closure ~cache g [| 0; 2; 3 |] in
      Alcotest.(check bool)
        "superset closure reuses roots" true
        (cval "metric.closure_reuse" >= 4);
      Alcotest.check feq "superset agrees" 3.0 (Metric.distance_nodes c3 0 3);
      (* A structurally equal but physically distinct graph shares nothing. *)
      let g' = diamond () in
      let before = cval "metric.dijkstra_runs" in
      ignore (Metric.closure ~cache g' [| 0; 3 |]);
      Alcotest.(check bool)
        "distinct graph gets fresh runs" true
        (cval "metric.dijkstra_runs" > before))

let test_metric_cache_snapshot () =
  let g = diamond () in
  let cache = Metric.Cache.create () in
  let c0 = Metric.closure ~cache g [| 0; 3 |] in
  let snap = Metric.Cache.snapshot cache in
  (* hits share the base cache's run records: bit-identical answers *)
  let cs = Metric.closure ~cache:snap g [| 0; 3 |] in
  Alcotest.check feq "snapshot distance identical" (Metric.distance c0 0 1)
    (Metric.distance cs 0 1);
  Alcotest.(check (list int))
    "snapshot path identical" (Metric.path c0 0 1) (Metric.path cs 0 1);
  (* misses fall back to private runs — never registered in the snapshot *)
  let g' = diamond () in
  let cm = Metric.closure ~cache:snap g' [| 0; 3 |] in
  Alcotest.check feq "miss solves privately" 3.0 (Metric.distance cm 0 1);
  (* later base-cache additions stay invisible through the frozen tables,
     and a superset terminal query still answers correctly *)
  ignore (Metric.closure ~cache g' [| 0; 3 |]);
  let cs2 = Metric.closure ~cache:snap g [| 0; 2; 3 |] in
  Alcotest.check feq "superset over snapshot agrees" 3.0
    (Metric.distance_nodes cs2 0 3)

let prop_metric_triangle =
  (* Lemma 1 of the paper: closure distances satisfy triangle inequality. *)
  QCheck.Test.make ~count:200 ~name:"metric closure triangle inequality"
    (graph_params_arb ~max_n:15) (fun params ->
      let g = graph_of_params params in
      let n = Graph.n g in
      let terms = Array.init n Fun.id in
      let c = Metric.closure g terms in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          for d = 0 to n - 1 do
            if
              Metric.distance c a d
              > Metric.distance c a b +. Metric.distance c b d +. 1e-9
            then ok := false
          done
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "graph basics" `Quick test_graph_basic;
    Alcotest.test_case "graph parallel edges" `Quick test_graph_parallel_edges;
    Alcotest.test_case "graph rejects bad input" `Quick test_graph_rejects;
    Alcotest.test_case "graph map/filter" `Quick test_graph_map_filter;
    Alcotest.test_case "graph edges normalized" `Quick test_graph_edges_normalized;
    Alcotest.test_case "heap ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap ties" `Quick test_heap_ties;
    Alcotest.test_case "heap peek" `Quick test_heap_peek;
    Alcotest.test_case "create_simple equivalence" `Quick test_create_simple_equiv;
    Alcotest.test_case "create_simple rejects" `Quick test_create_simple_rejects;
    Alcotest.test_case "union-find" `Quick test_union_find;
    Alcotest.test_case "dijkstra diamond" `Quick test_dijkstra_diamond;
    Alcotest.test_case "dijkstra unreachable" `Quick test_dijkstra_unreachable;
    Alcotest.test_case "dijkstra to target" `Quick test_dijkstra_to_target;
    Alcotest.test_case "dijkstra multi-source" `Quick test_multi_source;
    Alcotest.test_case "run_to_targets early exit" `Quick test_run_to_targets_early_exit;
    Alcotest.test_case "workspace reuse across runs" `Quick test_workspace_reuse;
    Alcotest.test_case "workspace across domains" `Quick test_workspace_across_domains;
    Alcotest.test_case "mst square" `Quick test_mst_square;
    Alcotest.test_case "components" `Quick test_components;
    Alcotest.test_case "prune leaves" `Quick test_prune_leaves;
    Alcotest.test_case "prune cascades" `Quick test_prune_cascades;
    Alcotest.test_case "metric closure" `Quick test_metric_closure;
    Alcotest.test_case "metric node queries" `Quick test_metric_node_queries;
    Alcotest.test_case "metric shared/local modes" `Quick test_metric_modes;
    Alcotest.test_case "metric cache reuse" `Quick test_metric_cache_reuse;
    Alcotest.test_case "metric cache snapshot" `Quick
      test_metric_cache_snapshot;
  ]
  @ qsuite
      [
        prop_dijkstra_vs_bellman;
        prop_dijkstra_path_consistent;
        prop_mst_prim_kruskal_agree;
        prop_mst_spans;
        prop_metric_triangle;
      ]
