(* Shared plumbing for the benchmark harness: algorithm registry, instance
   averaging, table helpers. *)

module Tbl = Sof_util.Tbl
module Rng = Sof_util.Rng
module Instance = Sof_workload.Instance
module Topology = Sof_topology.Topology

type algo = {
  label : string;
  solve : Sof.Problem.t -> Sof.Forest.t option;
}

let sofda =
  {
    label = "SOFDA";
    solve =
      (fun p -> Option.map (fun r -> r.Sof.Sofda.forest) (Sof.Sofda.solve p));
  }

let enemp = { label = "eNEMP"; solve = Sof_baselines.Baselines.enemp }
let est = { label = "eST"; solve = Sof_baselines.Baselines.est }
let st = { label = "ST"; solve = Sof_baselines.Baselines.st }

let standard_algos = [ sofda; enemp; est; st ]

(* Mean cost of an algorithm over [seeds] instances drawn from [topo] with
   [params]; instances where the algorithm fails are skipped (and counted).
   Instances are independent (each carries its own RNG), so they are solved
   on the domain pool; the mean is accumulated in seed order afterwards,
   which keeps the float sum identical to the sequential loop. *)
let mean_cost ~seeds ~topo ~params algo =
  let costs =
    Sof_util.Pool.parallel_map
      (fun seed ->
        let rng = Rng.create (0xBE5C + (seed * 7919)) in
        let p = Instance.draw ~rng topo params in
        match algo.solve p with
        | Some f ->
            assert (Sof.Validate.is_valid f);
            Some (Sof.Forest.total_cost f)
        | None -> None)
      (Array.init seeds (fun seed -> seed))
  in
  let total = ref 0.0 and n = ref 0 in
  Array.iter
    (function
      | Some c ->
          total := !total +. c;
          incr n
      | None -> ())
    costs;
  if !n = 0 then nan else !total /. float_of_int !n

let sweep_table ~caption ~column ~values ~seeds ~topo ~base_params ~with_value
    ~algos ~fmt =
  let t =
    Tbl.create ~caption (column :: List.map (fun a -> a.label) algos)
  in
  List.iter
    (fun v ->
      let row =
        List.map
          (fun a ->
            mean_cost ~seeds ~topo ~params:(with_value base_params v) a)
          algos
      in
      Tbl.add_float_row ~fmt t (string_of_int v) row)
    values;
  t

(* Destination directory for machine-readable BENCH_<experiment>.json
   emissions; set by main's [--json] flag, [None] means print-only. *)
let json_dir : string option ref = ref None

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n%!" s) fmt
