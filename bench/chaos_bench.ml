(* Chaos experiment: availability and repair cost of a deployed forest
   under seeded failure traces, swept over the failure rate (1/MTBF) on
   the paper's three topologies.  For every trace we also record how
   often the incremental repair beat a from-scratch re-solve in
   installation churn, split out for single-link failures — the paper's
   dynamic rules (Section VII-C) argue exactly this locality. *)

module Tbl = Sof_util.Tbl
module Rng = Sof_util.Rng
module Instance = Sof_workload.Instance
module Topology = Sof_topology.Topology
module Fault = Sof_resilience.Fault
module Repair = Sof_resilience.Repair
module Chaos = Sof_resilience.Chaos

type tally = {
  mutable traces : int;
  mutable availability : float;
  mutable churn : float;
  mutable wins : int;
  mutable comparisons : int;
  mutable link_wins : int;
  mutable link_comparisons : int;
  mutable invalid : int;
  mutable eval_wall : float;
  mutable solve_wall : float;
}

let fresh () =
  {
    traces = 0;
    availability = 0.0;
    churn = 0.0;
    wins = 0;
    comparisons = 0;
    link_wins = 0;
    link_comparisons = 0;
    invalid = 0;
    eval_wall = 0.0;
    solve_wall = 0.0;
  }

let absorb t (report : Chaos.report) =
  t.traces <- t.traces + 1;
  t.availability <- t.availability +. report.Chaos.availability;
  t.churn <- t.churn +. report.Chaos.total_churn;
  t.wins <- t.wins + report.Chaos.repair_wins;
  t.comparisons <- t.comparisons + report.Chaos.comparisons;
  t.invalid <- t.invalid + report.Chaos.invalid_events;
  t.eval_wall <- t.eval_wall +. report.Chaos.eval_wall_s;
  t.solve_wall <- t.solve_wall +. report.Chaos.solve_wall_s;
  List.iter
    (fun (e : Chaos.entry) ->
      match (e.Chaos.event, e.Chaos.action, e.Chaos.resolve_churn) with
      | Fault.Link_down _, Some a, Some rc when a <> Repair.Noop ->
          t.link_comparisons <- t.link_comparisons + 1;
          if e.Chaos.churn < rc -. 1e-9 then t.link_wins <- t.link_wins + 1
      | _ -> ())
    report.Chaos.entries

let run_one ~topo ~params ~mtbf ~events seed =
  let rng = Rng.create (0xFA17 + (seed * 7919)) in
  let problem = Instance.draw ~rng topo params in
  match Sof.Sofda.solve_forest problem with
  | None -> None
  | Some forest ->
      let trace =
        Fault.schedule ~rng ~mtbf ~mttr:(mtbf /. 4.0) ~count:events problem
      in
      Some (Chaos.run ~trace forest)

let params =
  {
    Instance.n_vms = 25;
    n_sources = 14;
    n_dests = 6;
    chain_length = 3;
    setup_multiplier = 1.0;
  }

let run ~quick ~seeds =
  Common.section "chaos: availability and repair cost vs failure rate";
  let events = if quick then 15 else 40 in
  let seeds = if quick then min seeds 3 else seeds in
  let mtbfs = if quick then [ 60.0; 15.0 ] else [ 120.0; 60.0; 30.0; 15.0 ] in
  List.iter
    (fun (tname, topo) ->
      let t =
        Tbl.create
          ~caption:(Printf.sprintf "%s (%d traces x %d events)" tname seeds events)
          [
            "MTBF (s)"; "availability"; "mean churn"; "repair wins";
            "link wins"; "invalid"; "eval wall (ms)"; "solve wall (ms)";
          ]
      in
      List.iter
        (fun mtbf ->
          let tally = fresh () in
          for seed = 0 to seeds - 1 do
            match run_one ~topo ~params ~mtbf ~events seed with
            | Some report -> absorb tally report
            | None -> ()
          done;
          let n = float_of_int (max 1 tally.traces) in
          Tbl.add_row t
            [
              Printf.sprintf "%.0f" mtbf;
              Printf.sprintf "%.4f" (tally.availability /. n);
              Printf.sprintf "%.2f" (tally.churn /. n);
              Printf.sprintf "%d/%d" tally.wins tally.comparisons;
              Printf.sprintf "%d/%d" tally.link_wins tally.link_comparisons;
              string_of_int tally.invalid;
              Printf.sprintf "%.2f" (1000.0 *. tally.eval_wall /. n);
              Printf.sprintf "%.2f" (1000.0 *. tally.solve_wall /. n);
            ])
        mtbfs;
      Tbl.print t)
    [
      ("SoftLayer", Topology.softlayer ());
      ("Cogent", Topology.cogent ());
      ( "Inet",
        Topology.inet ~rng:(Rng.create 1) ~nodes:1000 ~links:2000 ~dcs:200 );
    ];
  Common.note
    "repair wins = events where incremental repair churn < from-scratch \
     re-solve churn; link wins restricts to single-link failures.  eval \
     wall is the forest-evaluation share of the trace (warm Fdag \
     context), solve wall the remainder spent in the repair ladder."
