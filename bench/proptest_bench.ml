(* Property-harness throughput: wall time and cases/second of every oracle
   property at its default fuzz count (an eighth under --quick), plus the
   corpus replay.  A property failure here is reported in the table rather
   than aborting the sweep — the authoritative gate is `dune runtest` /
   `sof fuzz`. *)

module Prop = Sof_prop.Prop
module Oracles = Sof_prop.Oracles
module Corpus = Sof_prop.Corpus

let run ~quick ~seeds:_ =
  let tbl =
    Sof_util.Tbl.create [ "property"; "cases"; "result"; "time (s)"; "cases/s" ]
  in
  List.iter
    (fun (p, count) ->
      let count = if quick then max 5 (count / 8) else count in
      let t0 = Unix.gettimeofday () in
      let outcome = Prop.run_packed ~count ~seed:0 p in
      let dt = Unix.gettimeofday () -. t0 in
      let result =
        match outcome with
        | Prop.Passed _ -> "pass"
        | Prop.Failed f -> Printf.sprintf "FAIL @ case %d" f.Prop.case
      in
      Sof_util.Tbl.add_row tbl
        [
          Prop.packed_name p;
          string_of_int count;
          result;
          Printf.sprintf "%.2f" dt;
          Printf.sprintf "%.1f" (float_of_int count /. dt);
        ])
    Oracles.all;
  let t0 = Unix.gettimeofday () in
  let corpus_ok =
    List.for_all (fun e -> Corpus.replay e = Ok ()) Corpus.builtin
  in
  let dt = Unix.gettimeofday () -. t0 in
  Sof_util.Tbl.add_row tbl
    [
      "corpus replay";
      string_of_int (List.length Corpus.builtin);
      (if corpus_ok then "pass" else "FAIL");
      Printf.sprintf "%.2f" dt;
      "-";
    ];
  Sof_util.Tbl.print tbl

