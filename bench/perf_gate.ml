(* CI perf-regression gate.

     perf_gate.exe --baseline bench/baseline/BENCH_perf.json --new BENCH_perf.json

   Compares a freshly produced BENCH_perf.json against the committed
   baseline.  Two failure classes:

   - mean solution cost differs at all (beyond float-noise epsilon): the
     solvers are deterministic on fixed seeds, so any cost change means
     solver behaviour changed and the baseline must be regenerated
     deliberately (bench/main.exe --only perf --json bench/baseline).

   - mean wall-clock regressed by more than the tolerance (default +50%):
     CI runners are noisy, so only gross slowdowns fail.

   Missing or extra (topology, algo) rows fail, so the gate cannot pass
   vacuously. *)

module Json = Sof_obs.Json

let cost_eps = 1e-9

let fail_count = ref 0

let fail fmt =
  Printf.ksprintf
    (fun m ->
      incr fail_count;
      Printf.printf "FAIL  %s\n" m)
    fmt

let read_rows file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match Json.parse s with
  | Error m -> failwith (Printf.sprintf "%s: invalid JSON: %s" file m)
  | Ok j -> (
      match Option.bind (Json.member "rows" j) Json.to_list with
      | None -> failwith (file ^ ": no \"rows\" array")
      | Some rows ->
          List.map
            (fun r ->
              let str k =
                match Option.bind (Json.member k r) Json.to_str with
                | Some v -> v
                | None -> failwith (file ^ ": row missing " ^ k)
              in
              let num k =
                match Option.bind (Json.member k r) Json.to_float with
                | Some v -> v
                | None -> failwith (file ^ ": row missing " ^ k)
              in
              ( (str "topology", str "algo"),
                (num "mean_cost", num "mean_wall_s") ))
            rows)

let () =
  let baseline = ref "" and fresh = ref "" and wall_tol = ref 0.5 in
  let spec =
    [
      ("--baseline", Arg.Set_string baseline, "FILE committed baseline JSON");
      ("--new", Arg.Set_string fresh, "FILE freshly measured JSON");
      ( "--wall-tolerance",
        Arg.Set_float wall_tol,
        "FRAC allowed fractional wall-clock regression (default 0.5)" );
    ]
  in
  Arg.parse spec
    (fun s -> raise (Arg.Bad ("unexpected argument " ^ s)))
    "perf_gate.exe --baseline FILE --new FILE";
  if !baseline = "" || !fresh = "" then begin
    prerr_endline "perf_gate.exe: --baseline and --new are required";
    exit 2
  end;
  let base = read_rows !baseline in
  let cur = read_rows !fresh in
  List.iter
    (fun ((topo, algo), (bcost, bwall)) ->
      match List.assoc_opt (topo, algo) cur with
      | None -> fail "%s/%s: row missing from new results" topo algo
      | Some (ccost, cwall) ->
          let cost_changed =
            match (Float.is_nan bcost, Float.is_nan ccost) with
            | true, true -> false
            | true, false | false, true -> true
            | false, false ->
                abs_float (ccost -. bcost)
                > cost_eps *. Float.max 1.0 (abs_float bcost)
          in
          if cost_changed then
            fail "%s/%s: mean cost changed %.9f -> %.9f (solver behaviour changed; regenerate the baseline deliberately)"
              topo algo bcost ccost;
          if cwall > bwall *. (1.0 +. !wall_tol) then
            fail "%s/%s: mean wall %.4fs -> %.4fs (> +%.0f%%)" topo algo bwall
              cwall (100.0 *. !wall_tol))
    base;
  List.iter
    (fun (key, _) ->
      if not (List.mem_assoc key base) then
        let topo, algo = key in
        fail "%s/%s: row not in baseline (add it by regenerating)" topo algo)
    cur;
  if !fail_count > 0 then begin
    Printf.printf "perf gate: %d failure(s)\n" !fail_count;
    exit 1
  end;
  Printf.printf "perf gate: %d rows OK\n" (List.length base)
