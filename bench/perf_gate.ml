(* CI perf-regression gate.

     perf_gate.exe --baseline bench/baseline/BENCH_perf.json --new BENCH_perf.json

   Thin CLI over {!Sof_obs.Gate}: mean solution cost must match the
   committed baseline beyond float noise (the solvers are deterministic
   on fixed seeds, so any cost change means solver behaviour changed and
   the baseline must be regenerated deliberately via
   bench/main.exe --only perf --json bench/baseline), mean wall-clock may
   regress only within the tolerance (default +50%; CI runners are
   noisy), and missing or extra (topology, algo) rows fail so the gate
   cannot pass vacuously.  Each violated row prints its name, the
   baseline value, the observed value and the relative drift. *)

module Json = Sof_obs.Json
module Gate = Sof_obs.Gate

let read_rows file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match Json.parse s with
  | Error m -> failwith (Printf.sprintf "%s: invalid JSON: %s" file m)
  | Ok j -> (
      match Gate.rows_of_json j with
      | Ok rows -> rows
      | Error m -> failwith (Printf.sprintf "%s: %s" file m))

let () =
  let baseline = ref "" and fresh = ref "" and wall_tol = ref 0.5 in
  let spec =
    [
      ("--baseline", Arg.Set_string baseline, "FILE committed baseline JSON");
      ("--new", Arg.Set_string fresh, "FILE freshly measured JSON");
      ( "--wall-tolerance",
        Arg.Set_float wall_tol,
        "FRAC allowed fractional wall-clock regression (default 0.5)" );
    ]
  in
  Arg.parse spec
    (fun s -> raise (Arg.Bad ("unexpected argument " ^ s)))
    "perf_gate.exe --baseline FILE --new FILE";
  if !baseline = "" || !fresh = "" then begin
    prerr_endline "perf_gate.exe: --baseline and --new are required";
    exit 2
  end;
  let base = read_rows !baseline in
  let violations =
    Gate.compare_rows ~wall_tolerance:!wall_tol ~baseline:base
      ~current:(read_rows !fresh) ()
  in
  List.iter (fun v -> Printf.printf "FAIL  %s\n" (Gate.describe v)) violations;
  match violations with
  | [] -> Printf.printf "perf gate: %d rows OK\n" (List.length base)
  | vs ->
      Printf.printf "perf gate: %d failure(s)\n" (List.length vs);
      exit 1
