(* Figs. 8, 9, 10: one-time deployment cost sweeps on SoftLayer, Cogent and
   the Inet-style synthetic network.  Four panels each: #sources,
   #destinations, #available VMs, service chain length; defaults 14/6/25/3
   (Section VIII-A). *)

module Instance = Sof_workload.Instance

let sources_values = [ 2; 8; 14; 20; 26 ]
let dests_values = [ 2; 4; 6; 8; 10 ]
let vms_values = [ 5; 15; 25; 35; 45 ]
let chain_values = [ 3; 4; 5; 6; 7 ]

let panel ~topo ~seeds ~fmt ~algos (caption, column, values, with_value) =
  let t =
    Common.sweep_table ~caption ~column ~values ~seeds ~topo
      ~base_params:Instance.default_params ~with_value ~algos ~fmt
  in
  Sof_util.Tbl.print t;
  print_newline ()

let four_panels ~topo ~seeds ~fmt ~algos tag =
  List.iter
    (panel ~topo ~seeds ~fmt ~algos)
    [
      ( Printf.sprintf "(%s-a) cost vs #sources" tag,
        "#src",
        sources_values,
        fun p v -> { p with Instance.n_sources = v } );
      ( Printf.sprintf "(%s-b) cost vs #destinations" tag,
        "#dst",
        dests_values,
        fun p v -> { p with Instance.n_dests = v } );
      ( Printf.sprintf "(%s-c) cost vs #available VMs" tag,
        "#vm",
        vms_values,
        fun p v -> { p with Instance.n_vms = v } );
      ( Printf.sprintf "(%s-d) cost vs service chain length" tag,
        "|C|",
        chain_values,
        fun p v -> { p with Instance.chain_length = v } );
    ]

(* The OPT yardstick (the paper's CPLEX column).  The dense-tableau B&B is
   cubic-ish in the LP size, so the yardstick runs at testbed scale
   (14 nodes / 20 links) where optimality is PROVEN in seconds; at
   SoftLayer scale a single LP relaxation already takes minutes. *)
let opt_panel ~seeds ~quick =
  Common.section
    "fig8-opt — optimality yardstick via the IP (CPLEX substitute; reduced \
     size)";
  let topo = Sof_topology.Topology.testbed () in
  let reduced =
    {
      Instance.n_vms = 5;
      n_sources = 2;
      n_dests = 3;
      chain_length = 2;
      setup_multiplier = 1.0;
    }
  in
  let t =
    Sof_util.Tbl.create
      ~caption:
        "testbed network, reduced instance (5 VMs, 2 sources, 3 dests, |C|=2)"
      [ "seed"; "SOFDA"; "eST"; "IP incumbent"; "IP lower bound"; "status" ]
  in
  let n = if quick then min seeds 2 else min seeds 5 in
  (* Per-seed yardstick runs are independent; compute the rows on the
     domain pool and append them in seed order.  (The B&B status column is
     time-budgeted and thus wall-clock sensitive either way.) *)
  let rows =
    Sof_util.Pool.parallel_map
      (fun seed ->
        let rng = Sof_util.Rng.create (0xC0DE + seed) in
        let p = Instance.draw ~rng topo reduced in
        let sofda_cost =
          match Sof.Sofda.solve p with
          | Some r -> Sof.Forest.total_cost r.Sof.Sofda.forest
          | None -> nan
        in
        let est_cost =
          match Sof_baselines.Baselines.est p with
          | Some f -> Sof.Forest.total_cost f
          | None -> nan
        in
        let budget = if quick then 5.0 else 30.0 in
        let r =
          Sof.Ip_model.solve ~node_limit:60 ~time_budget:budget
            ~initial_incumbent:(sofda_cost +. 1e-6) p
        in
        let incumbent =
          match r.Sof_lp.Ilp.best with
          | Some (_, obj) -> Printf.sprintf "%.2f" obj
          | None -> Printf.sprintf "(seeded %.2f)" sofda_cost
        in
        let status =
          match r.Sof_lp.Ilp.status with
          | Sof_lp.Ilp.Optimal -> "optimal"
          | Sof_lp.Ilp.Feasible -> "feasible"
          | Sof_lp.Ilp.Infeasible -> "infeasible"
          | Sof_lp.Ilp.Budget_exhausted -> "budget"
        in
        [
          string_of_int seed;
          Printf.sprintf "%.2f" sofda_cost;
          Printf.sprintf "%.2f" est_cost;
          incumbent;
          Printf.sprintf "%.2f" r.Sof_lp.Ilp.bound;
          status;
        ])
      (Array.init n (fun seed -> seed))
  in
  Array.iter (Sof_util.Tbl.add_row t) rows;
  Sof_util.Tbl.print t;
  Common.note
    "The IP shares an edge per (layer, edge) across destinations, so its\n\
     optimum lower-bounds every forest cost; SOFDA sits within a few percent."

let fig8 ~quick ~seeds =
  Common.section "fig8 — one-time deployment on SoftLayer (Fig. 8)";
  let seeds = if quick then max 2 (seeds / 2) else seeds in
  four_panels
    ~topo:(Sof_topology.Topology.softlayer ())
    ~seeds
    ~fmt:(Printf.sprintf "%.2f")
    ~algos:Common.standard_algos "8";
  opt_panel ~seeds ~quick

let fig9 ~quick ~seeds =
  Common.section "fig9 — one-time deployment on Cogent (Fig. 9)";
  let seeds = if quick then max 2 (seeds / 2) else seeds in
  four_panels
    ~topo:(Sof_topology.Topology.cogent ())
    ~seeds
    ~fmt:(Printf.sprintf "%.2f")
    ~algos:Common.standard_algos "9"

let fig10 ~quick ~seeds =
  Common.section "fig10 — one-time deployment on the Inet synthetic (Fig. 10)";
  let nodes, links, dcs = if quick then (1000, 2000, 400) else (5000, 10000, 2000) in
  let rng = Sof_util.Rng.create 0x17E7 in
  let topo = Sof_topology.Topology.inet ~rng ~nodes ~links ~dcs in
  Common.note "synthetic topology: %s" (Sof_topology.Topology.stats topo);
  let seeds = if quick then 2 else min seeds 5 in
  four_panels ~topo ~seeds ~fmt:(Printf.sprintf "%.2f")
    ~algos:Common.standard_algos "10"
