(* Bechamel micro-benchmarks: per-algorithm embedding latency on the
   default SoftLayer instance, plus the core substrate operations.  These
   back Table I's runtime story with statistically sound per-call costs. *)

open Bechamel
open Toolkit

let default_instance () =
  let rng = Sof_util.Rng.create 0xB3C4 in
  Sof_workload.Instance.draw ~rng
    (Sof_topology.Topology.softlayer ())
    Sof_workload.Instance.default_params

let tests () =
  let p = default_instance () in
  let make name f = Test.make ~name (Staged.stage f) in
  (* Forest-evaluator rows: one representative embedded forest, evaluated
     through the legacy traversals (packed vs polymorphic paid-edge dedup,
     enabled-VM dedup, the combined validity+cost+paid bill) and through a
     warm [Fdag] context.  The context memoizes physically-identical
     forests, so the warm row cycles through >memo-cap distinct record
     copies — every call pays the real re-intern + re-fold, never the
     memo. *)
  let forest =
    match Sof.Sofda.solve_forest p with
    | Some f -> f
    | None -> failwith "microbench: default instance must embed"
  in
  let fdag = Sof.Fdag.create () in
  ignore (Sof.Fdag.eval fdag forest);
  let copies =
    Array.init 9 (fun _ ->
        { forest with Sof.Forest.delivery = forest.Sof.Forest.delivery })
  in
  let cycle = ref 0 in
  Test.make_grouped ~name:"sof" ~fmt:"%s %s"
    [
      make "paid-edges" (fun () -> ignore (Sof.Forest.paid_edges forest));
      make "paid-edges-poly" (fun () ->
          ignore (Sof.Forest.paid_edges_poly forest));
      make "enabled-vms" (fun () -> ignore (Sof.Forest.enabled_vms forest));
      make "eval-legacy" (fun () ->
          ignore (Sof.Validate.check forest);
          ignore (Sof.Forest.total_cost forest);
          ignore (Sof.Forest.paid_edges forest));
      make "eval-fdag-warm" (fun () ->
          cycle := (!cycle + 1) mod Array.length copies;
          ignore (Sof.Fdag.eval fdag copies.(!cycle)));
      make "sofda" (fun () -> ignore (Sof.Sofda.solve p));
      make "sofda-ss" (fun () ->
          ignore
            (Sof.Sofda_ss.solve p ~source:(List.hd p.Sof.Problem.sources)));
      make "est" (fun () -> ignore (Sof_baselines.Baselines.est p));
      make "enemp" (fun () -> ignore (Sof_baselines.Baselines.enemp p));
      make "st" (fun () -> ignore (Sof_baselines.Baselines.st p));
      make "steiner-kmb" (fun () ->
          ignore
            (Sof_steiner.Steiner.approx p.Sof.Problem.graph
               (List.hd p.Sof.Problem.sources :: p.Sof.Problem.dests)));
      make "dijkstra" (fun () ->
          ignore (Sof_graph.Dijkstra.run p.Sof.Problem.graph 0));
    ]

let run ~quick ~seeds:_ =
  Common.section "micro — per-call latency (Bechamel)";
  let quota = if quick then 0.25 else 1.0 in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances (tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let t = Sof_util.Tbl.create [ "benchmark"; "time per call" ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
          let pretty =
            if est >= 1e6 then Printf.sprintf "%.3f ms" (est /. 1e6)
            else Printf.sprintf "%.1f us" (est /. 1e3)
          in
          rows := (name, pretty) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, pretty) -> Sof_util.Tbl.add_row t [ name; pretty ])
    (List.sort compare !rows);
  Sof_util.Tbl.print t
