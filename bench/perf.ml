(* Machine-readable perf benchmark for the CI regression gate.

   One row per (topology, algorithm): mean solution cost over the seeded
   instances (deterministic — any change means solver behaviour changed)
   plus mean/p95 wall-clock per solve.  With [Common.json_dir] set (the
   [--json] flag) the rows are written to BENCH_perf.json for
   bench/perf_gate.exe to diff against the committed baseline. *)

module Json = Sof_obs.Json
module Rng = Sof_util.Rng
module Instance = Sof_workload.Instance

let topologies =
  [
    ( "softlayer",
      (fun () -> Sof_topology.Topology.softlayer ()),
      Sof_workload.Online.softlayer_config );
    ( "cogent",
      (fun () -> Sof_topology.Topology.cogent ()),
      Sof_workload.Online.cogent_config );
  ]

let algos =
  [
    ("sofda", Common.sofda);
    ("est", Common.est);
    ("enemp", Common.enemp);
    ("st", Common.st);
  ]

let params =
  {
    Instance.n_vms = 25;
    n_sources = 14;
    n_dests = 6;
    chain_length = 3;
    setup_multiplier = 1.0;
  }

type row = {
  topology : string;
  algo : string;
  seeds : int;
  mean_cost : float;
  mean_wall_s : float;
  p95_wall_s : float;
}

let percentile xs q =
  match Array.length xs with
  | 0 -> nan
  | n ->
      let sorted = Array.copy xs in
      Array.sort compare sorted;
      let rank = max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)) in
      sorted.(rank)

(* Solves run sequentially (not on the pool) so per-solve wall times are
   honest; costs stay deterministic regardless. *)
let measure ~seeds topo_name topo algo_name (algo : Common.algo) =
  let walls = Array.make seeds nan in
  let total_cost = ref 0.0 and feasible = ref 0 in
  for seed = 0 to seeds - 1 do
    let rng = Rng.create (0xBE5C + (seed * 7919)) in
    let p = Instance.draw ~rng topo params in
    let t0 = Unix.gettimeofday () in
    let result = algo.Common.solve p in
    walls.(seed) <- Unix.gettimeofday () -. t0;
    match result with
    | Some f ->
        total_cost := !total_cost +. Sof.Forest.total_cost f;
        incr feasible
    | None -> ()
  done;
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a) in
  {
    topology = topo_name;
    algo = algo_name;
    seeds;
    mean_cost =
      (if !feasible = 0 then nan else !total_cost /. float_of_int !feasible);
    mean_wall_s = mean walls;
    p95_wall_s = percentile walls 0.95;
  }

(* Closure micro-bench row: wall-clock of building the SOFDA transform
   (dominated by Metric.closure) plus the number of Dijkstra runs a full
   solve starts, read off the [metric.dijkstra_runs] counter.  The count
   is deterministic, so it rides in [mean_cost] where the gate's exact
   cost check pins any closure-reuse regression. *)
let measure_closure ~seeds topo_name topo =
  let module Obs = Sof_obs.Obs in
  let walls = Array.make seeds nan in
  let runs = ref 0 in
  for seed = 0 to seeds - 1 do
    let rng = Rng.create (0xBE5C + (seed * 7919)) in
    let p = Instance.draw ~rng topo params in
    let t0 = Unix.gettimeofday () in
    let tr = Sof.Transform.create p in
    walls.(seed) <- Unix.gettimeofday () -. t0;
    ignore (Sys.opaque_identity tr);
    Obs.reset ();
    Obs.enable ();
    Fun.protect
      ~finally:(fun () ->
        Obs.disable ();
        Obs.reset ())
      (fun () ->
        ignore (Sof.Sofda.solve p);
        runs := !runs + Obs.counter_value (Obs.counter "metric.dijkstra_runs"))
  done;
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a) in
  {
    topology = topo_name;
    algo = "closure";
    seeds;
    mean_cost = float_of_int !runs /. float_of_int seeds;
    mean_wall_s = mean walls;
    p95_wall_s = percentile walls 0.95;
  }

(* LP-relax-and-round rows, at the reduced instance size of the [lp]
   experiment (the full Section VIII parameters stall the dense-tableau
   masters; see bench/lp_bench.ml).  Two rows share each solve: [lp-round]
   carries the rounded forest's IP objective and [lp-bound] the proven
   LP lower bound — both deterministic on the fixed seeds, so the gate's
   exact cost check pins any column-generation or rounding change. *)
let lp_params =
  {
    Instance.n_vms = 10;
    n_sources = 4;
    n_dests = 3;
    chain_length = 2;
    setup_multiplier = 1.0;
  }

let measure_lp ~seeds topo_name topo =
  let walls = Array.make seeds nan in
  let total_cost = ref 0.0 and total_bound = ref 0.0 and feasible = ref 0 in
  for seed = 0 to seeds - 1 do
    let rng = Rng.create (0xBE5C + (seed * 7919)) in
    let p = Instance.draw ~rng topo lp_params in
    let t0 = Unix.gettimeofday () in
    let result = Sof.Lp_round.solve ~seed p in
    walls.(seed) <- Unix.gettimeofday () -. t0;
    match result with
    | Some r ->
        total_cost := !total_cost +. r.Sof.Lp_round.rounded_ip_cost;
        total_bound := !total_bound +. r.Sof.Lp_round.lp_bound;
        incr feasible
    | None -> ()
  done;
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a) in
  let row cost =
    {
      topology = topo_name;
      algo = "lp-round";
      seeds;
      mean_cost =
        (if !feasible = 0 then nan else cost /. float_of_int !feasible);
      mean_wall_s = mean walls;
      p95_wall_s = percentile walls 0.95;
    }
  in
  [ row !total_cost; { (row !total_bound) with algo = "lp-bound" } ]

(* Streaming-admission rows: both engine modes serve the same seeded
   event scripts; [mean_cost] carries the deterministic comparison
   metric (amortized marginal cost for the [stream-*] rows, acceptance
   ratio for the [stream-*-ar] rows), so the gate's exact cost check
   pins any admission or embedding behaviour change. *)
let measure_stream ~seeds topo_name topo workload =
  let module Stream = Sof_workload.Stream in
  let cfg =
    {
      Stream.workload;
      process = Stream.Poisson { rate = 1.0 };
      mean_hold = 8.0;
      horizon = 12.0;
      max_utilization = 0.2;
    }
  in
  let n_access =
    (fun (_, _, n) -> n) (Sof_workload.Online.augment topo workload)
  in
  let modes =
    [
      ("stream-inc", Stream.Incremental);
      ("stream-batch", Stream.Batch { reopt_every = 8 });
    ]
  in
  let scripts =
    List.init seeds (fun seed ->
        Stream.script ~rng:(Rng.create (0xBE5C + (seed * 7919))) ~n_access cfg)
  in
  List.concat_map
    (fun (label, mode) ->
      let walls = Array.make seeds nan in
      let amortized = ref 0.0 and ratio = ref 0.0 in
      List.iteri
        (fun seed events ->
          let t0 = Unix.gettimeofday () in
          let r = Stream.run_script ~mode topo cfg events in
          walls.(seed) <- Unix.gettimeofday () -. t0;
          amortized := !amortized +. r.Stream.amortized_cost;
          ratio := !ratio +. r.Stream.acceptance_ratio)
        scripts;
      let mean a =
        Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)
      in
      let row cost =
        {
          topology = topo_name;
          algo = label;
          seeds;
          mean_cost = cost;
          mean_wall_s = mean walls;
          p95_wall_s = percentile walls 0.95;
        }
      in
      [
        row (!amortized /. float_of_int seeds);
        { (row (!ratio /. float_of_int seeds)) with algo = label ^ "-ar" };
      ])
    modes

(* Serving-layer rows, pinned in the two machine-deterministic deadline
   regimes.  [serve-tight] runs at deadline 0: every budgeted rung's
   slice is expired at birth, so each request degrades down the ladder
   to the unbudgeted eST terminal — its mean served cost is the
   degradation floor, and [serve-tight-deg] rides the (deterministic)
   degraded-request count.  [serve-relaxed] disables the deadline so the
   preferred SOFDA rung always serves cleanly.  [serve-shed] drives a
   flash crowd into a 2-deep queue with a virtual queue deadline and
   carries the shed count — queueing is virtual-time, so all of these
   are exact under the gate's bit-level cost check. *)
let measure_serve ~seeds topo_name topo workload =
  let module Stream = Sof_workload.Stream in
  let module Serve = Sof_serve.Serve in
  let stream =
    {
      Stream.workload;
      process = Stream.Poisson { rate = 1.0 };
      mean_hold = 8.0;
      horizon = 12.0;
      max_utilization = 0.2;
    }
  in
  let base =
    {
      Serve.default_config with
      stream;
      queue_cap = 16;
      policy = Serve.Reject_newest;
      service_time = 0.2;
      queue_deadline = infinity;
    }
  in
  let shed_cfg =
    {
      base with
      stream =
        {
          stream with
          process =
            Stream.Flash
              { base = 0.5; burst_rate = 6.0; burst_every = 6.0; burst_len = 2.0 };
        };
      deadline_ms = infinity;
      ladder = [ Serve.Est ];
      queue_cap = 2;
      policy = Serve.Drop_oldest;
      service_time = 0.5;
      queue_deadline = 1.5;
    }
  in
  let n_access =
    (fun (_, _, n) -> n) (Sof_workload.Online.augment topo workload)
  in
  let configs =
    [
      ( "serve-tight",
        { base with deadline_ms = 0.0; ladder = [ Serve.Lp; Serve.Sofda ] },
        true );
      ( "serve-relaxed",
        { base with deadline_ms = infinity; ladder = [ Serve.Sofda ] },
        false );
      ("serve-shed", shed_cfg, false);
    ]
  in
  List.concat_map
    (fun (label, cfg, with_degraded) ->
      let walls = Array.make seeds nan in
      let cost = ref 0.0 and degraded = ref 0 and shed = ref 0 in
      for seed = 0 to seeds - 1 do
        let events =
          Stream.script
            ~rng:(Rng.create (0xBE5C + (seed * 7919)))
            ~n_access cfg.Serve.stream
        in
        let t0 = Unix.gettimeofday () in
        let r = Serve.run_script topo cfg events in
        walls.(seed) <- Unix.gettimeofday () -. t0;
        cost := !cost +. r.Serve.mean_served_cost;
        degraded := !degraded + r.Serve.degraded;
        shed :=
          !shed + r.Serve.shed_queue_full + r.Serve.shed_expired
          + r.Serve.shed_fault
      done;
      let mean a =
        Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)
      in
      let row cost =
        {
          topology = topo_name;
          algo = label;
          seeds;
          mean_cost = cost;
          mean_wall_s = mean walls;
          p95_wall_s = percentile walls 0.95;
        }
      in
      let cost_metric =
        if label = "serve-shed" then float_of_int !shed
        else !cost /. float_of_int seeds
      in
      row cost_metric
      ::
      (if with_degraded then
         [ { (row (float_of_int !degraded)) with algo = label ^ "-deg" } ]
       else []))
    configs

(* Batched-engine serving throughput, pinned on both topologies.  The
   engine is bit-identical to the sequential server in the deadline-free
   regime, so [mean_cost] (mean served cost) stays exact under the gate
   while the wall columns carry the throughput signal: [serve-throughput]
   rides mean seconds per served request — inverse throughput, so a
   slower engine trips the gate's wall tolerance — and
   [serve-throughput-p99] rides the p99 per-request solve wall.  The p99
   row's [mean_cost] carries the (deterministic) total served count, so
   a schedule change cannot hide behind the latency columns. *)
let measure_throughput ~seeds topo_name topo workload =
  let module Stream = Sof_workload.Stream in
  let module Serve = Sof_serve.Serve in
  let module Engine = Sof_serve.Engine in
  let stream =
    {
      Stream.workload;
      process = Stream.Poisson { rate = 1.0 };
      mean_hold = 8.0;
      horizon = 12.0;
      max_utilization = 0.2;
    }
  in
  let cfg =
    {
      Serve.default_config with
      stream;
      deadline_ms = infinity;
      ladder = [ Serve.Sofda ];
      queue_cap = 16;
      policy = Serve.Reject_newest;
      service_time = 0.2;
      queue_deadline = infinity;
    }
  in
  let engine = { Engine.shards = 2; batch_size = 4 } in
  let n_access =
    (fun (_, _, n) -> n) (Sof_workload.Online.augment topo workload)
  in
  let run_walls = Array.make seeds nan in
  let req_walls = ref [] in
  let served = ref 0 and cost = ref 0.0 in
  for seed = 0 to seeds - 1 do
    let events =
      Stream.script ~rng:(Rng.create (0xBE5C + (seed * 7919))) ~n_access stream
    in
    let t0 = Unix.gettimeofday () in
    let r = Engine.run_script ~engine topo cfg events in
    run_walls.(seed) <- Unix.gettimeofday () -. t0;
    served := !served + r.Serve.served;
    cost := !cost +. r.Serve.served_cost_total;
    List.iter
      (fun (resp : Serve.response) ->
        match resp.Serve.status with
        | Serve.Served _ -> req_walls := resp.Serve.wall_s :: !req_walls
        | _ -> ())
      r.Serve.responses
  done;
  let total_wall = Array.fold_left ( +. ) 0.0 run_walls in
  let pct p =
    if !req_walls = [] then 0.0 else Sof_util.Stats.percentile p !req_walls
  in
  [
    {
      topology = topo_name;
      algo = "serve-throughput";
      seeds;
      mean_cost =
        (if !served = 0 then nan else !cost /. float_of_int !served);
      mean_wall_s =
        (if !served = 0 then nan else total_wall /. float_of_int !served);
      p95_wall_s = pct 95.0;
    };
    {
      topology = topo_name;
      algo = "serve-throughput-p99";
      seeds;
      mean_cost = float_of_int !served;
      mean_wall_s = pct 99.0;
      p95_wall_s = pct 95.0;
    };
  ]

(* Sharing-aware evaluation rows, on an Inet-sized splice script: after
   a seed SOFDA embed the destinations churn (leave / re-join) through
   [Dynamic], and every updated forest goes through one event's worth of
   evaluation work, exactly as the streaming/chaos loops consume it — a
   candidate validity probe, a commit-time validity + cost read, and the
   ledger footprint (paid-edge multiset + enabled VMs).  [eval-legacy]
   replays that protocol with the classic traversals (two
   [Validate.check] passes, [total_cost], [paid_edges]/[enabled_vms]
   folded into the sorted footprint); [eval-fdag] answers all of it with
   one warm {!Sof.Fdag.eval} plus a memoized re-read.  Both rows fold
   the evaluated total cost into [mean_cost], so the gate's exact check
   pins the two evaluators against each other bit-for-bit, while the
   wall columns carry the per-event evaluation latency the sharing is
   meant to win.
   [eval-counters] rides the deterministic incremental-evaluation
   counters: dirty-node rebuilds in [mean_cost], full evaluations in
   [mean_wall_s] (deterministic, so exact under the wall tolerance),
   shared nodes in the ungated [p95_wall_s] — a sharing regression
   cannot hide behind wall noise. *)
let measure_eval ~seeds topo_name topo =
  let module Fdag = Sof.Fdag in
  let module Dynamic = Sof.Dynamic in
  let rounds = 5 in
  (* deterministic splice scripts, built once: both rows evaluate the
     same forest snapshots verbatim *)
  let scripts =
    List.init seeds (fun seed ->
        let rng = Rng.create (0xBE5C + (seed * 7919)) in
        let p = Instance.draw ~rng topo params in
        match Sof.Sofda.solve_forest p with
        | None -> []
        | Some f0 ->
            let cache = Sof_graph.Metric.Cache.create () in
            let cur = ref f0 in
            let out = ref [ f0 ] in
            let dests0 = f0.Sof.Forest.problem.Sof.Problem.dests in
            for _ = 1 to rounds do
              List.iter
                (fun d ->
                  let dests = (!cur).Sof.Forest.problem.Sof.Problem.dests in
                  if List.mem d dests && List.length dests > 1 then (
                    let u = Dynamic.destination_leave !cur d in
                    cur := u.Dynamic.forest;
                    out := !cur :: !out);
                  if
                    not
                      (List.mem d (!cur).Sof.Forest.problem.Sof.Problem.dests)
                  then
                    match Dynamic.destination_join ~cache !cur d with
                    | Some u ->
                        cur := u.Dynamic.forest;
                        out := !cur :: !out
                    | None -> ())
                dests0
            done;
            List.rev !out)
  in
  let events = List.fold_left (fun n s -> n + List.length s) 0 scripts in
  (* [evalf ()] builds the per-script evaluator (the fdag pass warms one
     context per script, mirroring a run-long chaos/stream context) *)
  let eval_pass evalf =
    let walls = ref [] and total = ref 0.0 in
    List.iter
      (fun script ->
        let eval = evalf () in
        List.iter
          (fun f ->
            let t0 = Unix.gettimeofday () in
            let c = eval f in
            walls := (Unix.gettimeofday () -. t0) :: !walls;
            total := !total +. c)
          script)
      scripts;
    (Array.of_list !walls, !total)
  in
  let legacy_walls, legacy_cost =
    eval_pass (fun () f ->
        (* candidate probe *)
        ignore (Sys.opaque_identity (Sof.Validate.check f = Ok ()));
        (* commit: validity + cost *)
        ignore (Sys.opaque_identity (Sof.Validate.check f));
        let c = Sof.Forest.total_cost f in
        (* ledger footprint: paid-edge multiset, sorted, plus VM list *)
        let tbl = Hashtbl.create 32 in
        List.iter
          (fun (u, v) ->
            let key = if u <= v then (u, v) else (v, u) in
            Hashtbl.replace tbl key
              (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
          (Sof.Forest.paid_edges f);
        let fp_edges =
          List.sort
            (fun ((a1, b1), _) ((a2, b2), _) ->
              match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c)
            (Hashtbl.fold (fun e k acc -> (e, k) :: acc) tbl [])
        in
        ignore (Sys.opaque_identity fp_edges);
        ignore
          (Sys.opaque_identity (List.map fst (Sof.Forest.enabled_vms f)));
        c)
  in
  let ctxs = ref [] in
  let fdag_walls, fdag_cost =
    eval_pass (fun () ->
        let ctx = Fdag.create () in
        ctxs := ctx :: !ctxs;
        fun f ->
          (* candidate probe *)
          ignore (Sys.opaque_identity (Fdag.eval ctx f).Fdag.valid);
          (* commit + footprint: memoized re-read of the same pass *)
          let r = Fdag.eval ctx f in
          ignore (Sys.opaque_identity r.Fdag.fp_edges);
          ignore (Sys.opaque_identity r.Fdag.fp_vms);
          r.Fdag.total_cost)
  in
  let dirty = ref 0 and full = ref 0 and shared = ref 0 in
  List.iter
    (fun ctx ->
      let s = Fdag.stats ctx in
      dirty := !dirty + s.Fdag.reeval_dirty;
      full := !full + s.Fdag.full_evals;
      shared := !shared + s.Fdag.nodes_shared)
    !ctxs;
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a) in
  let row algo cost walls =
    {
      topology = topo_name;
      algo;
      seeds;
      mean_cost = (if events = 0 then nan else cost /. float_of_int events);
      mean_wall_s = mean walls;
      p95_wall_s = percentile walls 0.95;
    }
  in
  [
    row "eval-legacy" legacy_cost legacy_walls;
    row "eval-fdag" fdag_cost fdag_walls;
    {
      topology = topo_name;
      algo = "eval-counters";
      seeds;
      mean_cost = float_of_int !dirty;
      mean_wall_s = float_of_int !full;
      p95_wall_s = float_of_int !shared;
    };
  ]

let json_of_rows rows =
  Json.Obj
    [
      ("experiment", Json.Str "perf");
      ( "rows",
        Json.Arr
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("topology", Json.Str r.topology);
                   ("algo", Json.Str r.algo);
                   ("seeds", Json.Num (float_of_int r.seeds));
                   ("mean_cost", Json.Num r.mean_cost);
                   ("mean_wall_s", Json.Num r.mean_wall_s);
                   ("p95_wall_s", Json.Num r.p95_wall_s);
                 ])
             rows) );
    ]

let run ~quick ~seeds =
  let seeds = if quick then min seeds 3 else seeds in
  Common.section "perf: deterministic cost + wall-clock per (topology, algo)";
  let rows =
    List.concat_map
      (fun (tname, mk, workload) ->
        let topo = mk () in
        List.map
          (fun (aname, algo) -> measure ~seeds tname topo aname algo)
          algos
        @ [ measure_closure ~seeds tname topo ]
        @
        (* gate only the cheap SoftLayer stream and LP rows; the
           cross-topology comparison lives in the [stream] experiment, and
           Cogent-scale LPs stall the masters (bench/lp_bench.ml) *)
        (if tname = "softlayer" then
           measure_stream ~seeds tname topo workload
           @ measure_serve ~seeds tname topo workload
           @ measure_lp ~seeds tname topo
         else [])
        (* batched-engine throughput rows run on both topologies: the
           engine must stay deterministic (and fast) at Cogent scale too *)
        @ measure_throughput ~seeds tname topo workload)
      topologies
    (* sharing-aware evaluation rows run at Inet scale, where the warm
       DAG's dirty-region recomputation pays: same instance family as
       the chaos bench's Inet topology *)
    @ measure_eval ~seeds "inet1000"
        (Sof_topology.Topology.inet ~rng:(Rng.create 1) ~nodes:1000
           ~links:2000 ~dcs:200)
  in
  let t =
    Common.Tbl.create
      [ "topology"; "algo"; "seeds"; "mean cost"; "mean wall (s)"; "p95 wall (s)" ]
  in
  List.iter
    (fun r ->
      Common.Tbl.add_row t
        [
          r.topology;
          r.algo;
          string_of_int r.seeds;
          Printf.sprintf "%.6f" r.mean_cost;
          Printf.sprintf "%.4f" r.mean_wall_s;
          Printf.sprintf "%.4f" r.p95_wall_s;
        ])
    rows;
  Common.Tbl.print t;
  match !Common.json_dir with
  | None -> ()
  | Some dir ->
      let file = Filename.concat dir "BENCH_perf.json" in
      let oc = open_out file in
      output_string oc (Json.to_string (json_of_rows rows));
      output_char oc '\n';
      close_out oc;
      Common.note "wrote %s" file
