(* The [lp] experiment: LP-relaxation lower bound vs randomized rounding
   vs SOFDA, per seed.

   Two yardsticks per row: the column-generation LP bound (the paper's
   CPLEX-relaxation column) and the trivial bound implied by SOFDA's
   3*rho_ST guarantee (cost / (3*rho_ST), rho_ST = 2).  The point of the
   table is that the LP bound is strictly tighter — usually by several
   multiples — so the measured optimality gaps of SOFDA and lp-round are
   far smaller than the worst-case 6x the theorem alone certifies.

   Like the fig8 OPT yardstick, the rows run at reduced instance size:
   the restricted masters are dense tableaus, so at the full Section
   VIII parameters (25 VMs / 14 sources / 6 destinations, |C| = 3) a
   single relaxation outgrows its pivot budget and stalls after minutes
   with only the (weak) Lagrangian fallback bound — and the 190-node
   Cogent graph is out of reach at any instance size (its arc layers
   alone put the master in the thousands of columns).  At 10 VMs /
   4 sources / 3 destinations on the real SoftLayer graph every seed
   below PROVES its LP optimum in seconds, for |C| = 2 and |C| = 3. *)

module Instance = Sof_workload.Instance
module Rng = Sof_util.Rng

let rho_st = 2.0 (* KMB Steiner ratio; see lib/steiner *)

let reduced =
  {
    Instance.n_vms = 10;
    n_sources = 4;
    n_dests = 3;
    chain_length = 2;
    setup_multiplier = 1.0;
  }

let table ~seeds ~caption ~params topo =
  let t =
    Sof_util.Tbl.create ~caption
      [
        "seed"; "LP bound"; "proven"; "lp-round"; "SOFDA"; "gap vs LP";
        "cost/(3*rho_ST)"; "LP tighter";
      ]
  in
  let rows =
    Sof_util.Pool.parallel_map
      (fun seed ->
        let rng = Rng.create (0xC0DE + seed) in
        let p = Instance.draw ~rng topo params in
        match Sof.Lp_round.solve ~seed p with
        | None -> [ string_of_int seed; "-"; "-"; "-"; "-"; "-"; "-"; "-" ]
        | Some r ->
            let sofda = Option.get (Sof.Sofda.solve p) in
            let sofda_ip =
              Sof.Ip_model.objective_of_forest sofda.Sof.Sofda.forest
            in
            let bound = r.Sof.Lp_round.lp_bound in
            let rounded = r.Sof.Lp_round.rounded_ip_cost in
            let trivial = sofda_ip /. (3.0 *. rho_st) in
            [
              string_of_int seed;
              Printf.sprintf "%.3f" bound;
              (if r.Sof.Lp_round.lp_proven then "yes" else "no");
              Printf.sprintf "%.3f" rounded;
              Printf.sprintf "%.3f" sofda_ip;
              (if bound > 0.0 then
                 Printf.sprintf "%.1f%%" (100.0 *. ((rounded /. bound) -. 1.0))
               else "-");
              Printf.sprintf "%.3f" trivial;
              (if bound > trivial +. 1e-9 then "yes" else "NO");
            ])
      (Array.init seeds (fun seed -> seed))
  in
  Array.iter (Sof_util.Tbl.add_row t) rows;
  Sof_util.Tbl.print t;
  print_newline ()

let run ~quick ~seeds =
  Common.section
    "lp — LP relaxation lower bound + randomized rounding (reduced size)";
  let seeds = if quick then min seeds 2 else min seeds 5 in
  let topo = Sof_topology.Topology.softlayer () in
  table ~seeds
    ~caption:"SoftLayer, reduced instance (10 VMs, 4 sources, 3 dests, |C|=2)"
    ~params:reduced topo;
  if not quick then
    table ~seeds
      ~caption:"SoftLayer, reduced instance (8 VMs, 4 sources, 3 dests, |C|=3)"
      ~params:{ reduced with Instance.n_vms = 8; chain_length = 3 }
      topo;
  Common.note
    "The LP bound is the column-generation optimum of the SOF relaxation\n\
     (proven = certified by pricing, i.e. no negative reduced cost left);\n\
     cost/(3*rho_ST) is the best lower bound SOFDA's approximation theorem\n\
     alone gives.  \"LP tighter: yes\" on every row is the point: the\n\
     relaxation certifies much smaller optimality gaps than the worst case."
