(* Streaming admission: incremental embedding vs periodic batch
   re-optimization on the same seeded event scripts (arrivals AND
   departures).  For each topology the two engines serve the identical
   script, so acceptance ratio and amortized per-request marginal cost
   are a like-for-like comparison; the closure-reuse counter shows how
   much Dijkstra work the incremental path's run-long metric cache
   saves. *)

module Json = Sof_obs.Json
module Obs = Sof_obs.Obs
module Rng = Sof_util.Rng
module Online = Sof_workload.Online
module Stream = Sof_workload.Stream

let topologies =
  [
    ("softlayer", fun () -> Sof_topology.Topology.softlayer (), Online.softlayer_config);
    ("cogent", fun () -> Sof_topology.Topology.cogent (), Online.cogent_config);
  ]

let config ~quick workload =
  {
    Stream.workload;
    process = Stream.Diurnal { base = 0.5; peak = 2.0; period = 20.0 };
    mean_hold = 10.0;
    horizon = (if quick then 15.0 else 40.0);
    max_utilization = 0.6;
  }

type run_stats = {
  report : Stream.report;
  wall_s : float;
  closure_reuse : int;
}

let serve ~mode topo cfg events =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let report = Stream.run_script ~mode topo cfg events in
      let wall_s = Unix.gettimeofday () -. t0 in
      {
        report;
        wall_s;
        closure_reuse = Obs.counter_value (Obs.counter "metric.closure_reuse");
      })

let mode_label = function
  | Stream.Incremental -> "incremental"
  | Stream.Batch { reopt_every } -> Printf.sprintf "batch/%d" reopt_every

let json_row tname mode (s : run_stats) =
  let r = s.report in
  Json.Obj
    [
      ("topology", Json.Str tname);
      ("mode", Json.Str (mode_label mode));
      ("arrivals", Json.Num (float_of_int r.Stream.arrivals));
      ("accepted", Json.Num (float_of_int r.Stream.accepted));
      ("acceptance_ratio", Json.Num r.Stream.acceptance_ratio);
      ("amortized_cost", Json.Num r.Stream.amortized_cost);
      ("reopt_churn", Json.Num r.Stream.reopt_churn);
      ("spliced", Json.Num (float_of_int r.Stream.spliced));
      ("rescoped", Json.Num (float_of_int r.Stream.rescoped));
      ("repriced", Json.Num (float_of_int r.Stream.repriced));
      ("peak_utilization", Json.Num r.Stream.peak_utilization);
      ("live_peak", Json.Num (float_of_int r.Stream.live_peak));
      ("embed_wall_p95_s", Json.Num r.Stream.embed_wall_p95);
      ("eval_wall_s", Json.Num r.Stream.eval_wall_s);
      ("solve_wall_s", Json.Num r.Stream.solve_wall_s);
      ("wall_s", Json.Num s.wall_s);
      ("closure_reuse", Json.Num (float_of_int s.closure_reuse));
    ]

let run ~quick ~seeds =
  let seeds = if quick then min seeds 2 else seeds in
  Common.section
    "stream: admission + incremental embed vs periodic batch re-optimization";
  let modes = [ Stream.Incremental; Stream.Batch { reopt_every = 10 } ] in
  let t =
    Common.Tbl.create
      [
        "topology"; "mode"; "arrivals"; "accept %"; "amortized cost";
        "re-opt churn"; "rungs s/r/p"; "p95 embed (ms)"; "eval wall (ms)";
        "solve wall (ms)"; "closure reuse";
      ]
  in
  let json_rows = ref [] in
  List.iter
    (fun (tname, mk) ->
      let topo, workload = mk () in
      let cfg = config ~quick workload in
      let n_access = (fun (_, _, n) -> n) (Online.augment topo workload) in
      (* one script per seed, served by every mode *)
      let scripts =
        List.init seeds (fun seed ->
            Stream.script ~rng:(Rng.create (0xECAF + (seed * 7919))) ~n_access
              cfg)
      in
      List.iter
        (fun mode ->
          let stats =
            List.map (fun events -> serve ~mode topo cfg events) scripts
          in
          let sum f = List.fold_left (fun acc s -> acc +. f s) 0.0 stats in
          let n = float_of_int (List.length stats) in
          let arrivals = sum (fun s -> float_of_int s.report.Stream.arrivals) in
          let accepted = sum (fun s -> float_of_int s.report.Stream.accepted) in
          let amortized =
            sum (fun s -> s.report.Stream.amortized_cost) /. n
          in
          let churn = sum (fun s -> s.report.Stream.reopt_churn) in
          let reuse = sum (fun s -> float_of_int s.closure_reuse) in
          let p95 =
            sum (fun s -> s.report.Stream.embed_wall_p95) /. n
          in
          Common.Tbl.add_row t
            [
              tname;
              mode_label mode;
              Printf.sprintf "%.0f" arrivals;
              Printf.sprintf "%.1f" (100.0 *. accepted /. arrivals);
              Printf.sprintf "%.3f" amortized;
              Printf.sprintf "%.1f" churn;
              Printf.sprintf "%d/%d/%d"
                (int_of_float (sum (fun s -> float_of_int s.report.Stream.spliced)))
                (int_of_float (sum (fun s -> float_of_int s.report.Stream.rescoped)))
                (int_of_float (sum (fun s -> float_of_int s.report.Stream.repriced)));
              Printf.sprintf "%.2f" (1000.0 *. p95);
              Printf.sprintf "%.2f"
                (1000.0 *. sum (fun s -> s.report.Stream.eval_wall_s) /. n);
              Printf.sprintf "%.2f"
                (1000.0 *. sum (fun s -> s.report.Stream.solve_wall_s) /. n);
              Printf.sprintf "%.0f" reuse;
            ];
          List.iter2
            (fun s _ -> json_rows := json_row tname mode s :: !json_rows)
            stats scripts)
        modes)
    topologies;
  Common.Tbl.print t;
  Common.note
    "same seeded scripts for both modes; amortized cost = marginal \
     Fortz-Thorup cost per accepted request; eval/solve wall split the \
     per-run wall into forest evaluation (warm Fdag context) vs \
     embedding work";
  match !Common.json_dir with
  | None -> ()
  | Some dir ->
      let file = Filename.concat dir "BENCH_stream.json" in
      let oc = open_out file in
      output_string oc
        (Json.to_string
           (Json.Obj
              [
                ("experiment", Json.Str "stream");
                ("rows", Json.Arr (List.rev !json_rows));
              ]));
      output_char oc '\n';
      close_out oc;
      Common.note "wrote %s" file
