(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section VIII).  Run all with [dune exec bench/main.exe]; see
   [-- --help] for selection flags.  EXPERIMENTS.md records paper-vs-
   measured values for each experiment. *)

type experiment = {
  name : string;
  descr : string;
  run : quick:bool -> seeds:int -> unit;
}

let experiments =
  [
    { name = "fig1"; descr = "service tree vs service forest anatomy";
      run = Fig_examples.run };
    { name = "fig7"; descr = "convex load cost function";
      run = Fig_examples.fig7 };
    { name = "fig8"; descr = "one-time deployment, SoftLayer (+ OPT yardstick)";
      run = Sweeps.fig8 };
    { name = "fig9"; descr = "one-time deployment, Cogent"; run = Sweeps.fig9 };
    { name = "fig10"; descr = "one-time deployment, Inet synthetic";
      run = Sweeps.fig10 };
    { name = "fig11"; descr = "setup-cost multiple vs cost and used VMs";
      run = Fig11.run };
    { name = "tab1"; descr = "SOFDA running time scaling"; run = Tab1.run };
    { name = "fig12"; descr = "online deployment, accumulated cost";
      run = Fig12.run };
    { name = "tab2"; descr = "testbed video QoE (startup / re-buffering)";
      run = Tab2.run };
    { name = "dist"; descr = "multi-controller SOFDA message accounting";
      run = Distributed_bench.run };
    { name = "ablate"; descr = "SOFDA construction ablation";
      run = Ablation.run };
    { name = "dyn"; descr = "dynamic operations vs full re-runs (Sec. VII-C)";
      run = Dynamic_bench.run };
    { name = "chaos"; descr = "availability + repair cost under failure traces";
      run = Chaos_bench.run };
    { name = "micro"; descr = "Bechamel per-call latency"; run = Microbench.run };
    { name = "par"; descr = "Domain pool speedup (1 vs N domains)";
      run = Parbench.run };
    { name = "fuzz"; descr = "property-harness throughput (oracle suite)";
      run = Proptest_bench.run };
    { name = "stream"; descr = "streaming admission: incremental vs batch re-opt";
      run = Stream_bench.run };
    { name = "serve"; descr = "deadline-aware serving: degradation, shedding, breakers";
      run = Serve_bench.run };
    { name = "lp"; descr = "LP relaxation bound vs rounded/SOFDA cost";
      run = Lp_bench.run };
    { name = "perf"; descr = "deterministic cost + wall-clock (CI perf gate)";
      run = Perf.run };
  ]

let () =
  let only = ref [] in
  let quick = ref false in
  let seeds = ref 10 in
  let list_only = ref false in
  let spec =
    [
      ("--only", Arg.String (fun s -> only := s :: !only),
       "NAME run a single experiment (repeatable)");
      ("--quick", Arg.Set quick, " smaller sweeps for a fast smoke run");
      ("--seeds", Arg.Set_int seeds, "N random instances per data point (default 10)");
      ("--json", Arg.String (fun d -> Common.json_dir := Some d),
       "DIR also write machine-readable BENCH_<experiment>.json files to DIR");
      ("--list", Arg.Set list_only, " list experiments and exit");
    ]
  in
  Arg.parse spec
    (fun s -> only := s :: !only)
    "bench/main.exe -- [--quick] [--seeds N] [--only EXPERIMENT]";
  if !list_only then
    List.iter (fun e -> Printf.printf "%-7s %s\n" e.name e.descr) experiments
  else begin
    let selected =
      match !only with
      | [] -> experiments
      | names ->
          List.iter
            (fun n ->
              if not (List.exists (fun e -> e.name = n) experiments) then begin
                Printf.eprintf "unknown experiment %S (try --list)\n" n;
                exit 1
              end)
            names;
          List.filter (fun e -> List.mem e.name names) experiments
    in
    let t0 = Unix.gettimeofday () in
    List.iter (fun e -> e.run ~quick:!quick ~seeds:!seeds) selected;
    Printf.printf "\n[bench completed in %.1f s]\n" (Unix.gettimeofday () -. t0)
  end
