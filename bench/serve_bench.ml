(* Deadline-aware serving layer: latency percentiles plus
   shed / degrade / breaker accounting across deadline regimes on the
   same seeded event scripts.

   - tight-0ms: every budgeted rung's slice expires at birth, so each
     request degrades down the ladder to the unbudgeted eST terminal —
     the floor of the degradation ladder.
   - 50ms / 400ms: partial budgets; lp-round usually blows its slice
     (circuit breaker trips and skips it), SOFDA mostly completes.
   - relaxed: no deadline, preferred family always serves cleanly.
   - flash+shed: flash-crowd arrivals against a 2-deep queue with a
     virtual queue deadline — backpressure sheds instead of degrading. *)

module Json = Sof_obs.Json
module Rng = Sof_util.Rng
module Online = Sof_workload.Online
module Stream = Sof_workload.Stream
module Serve = Sof_serve.Serve

let base_stream ~quick workload =
  {
    Stream.workload;
    process = Stream.Poisson { rate = 1.0 };
    mean_hold = 8.0;
    horizon = (if quick then 8.0 else 12.0);
    max_utilization = 0.2;
  }

let scenarios ~quick workload =
  let stream = base_stream ~quick workload in
  let base =
    {
      Serve.default_config with
      stream;
      grace_ms = 250.0;
      queue_cap = 16;
      policy = Serve.Reject_newest;
      service_time = 0.2;
      queue_deadline = infinity;
    }
  in
  [
    ( "tight-0ms",
      { base with deadline_ms = 0.0; ladder = [ Serve.Lp; Serve.Sofda ] } );
    ( "50ms",
      { base with deadline_ms = 50.0; ladder = [ Serve.Lp; Serve.Sofda ] } );
    ( "400ms",
      { base with deadline_ms = 400.0; ladder = [ Serve.Lp; Serve.Sofda ] } );
    ( "relaxed",
      { base with deadline_ms = infinity; ladder = [ Serve.Sofda ] } );
    ( "flash+shed",
      {
        base with
        stream =
          {
            stream with
            process =
              Stream.Flash
                {
                  base = 0.5;
                  burst_rate = 6.0;
                  burst_every = 6.0;
                  burst_len = 2.0;
                };
          };
        deadline_ms = infinity;
        ladder = [ Serve.Est ];
        queue_cap = 2;
        policy = Serve.Drop_oldest;
        service_time = 0.5;
        queue_deadline = 1.5;
      } );
  ]

type agg = {
  mutable arrivals : int;
  mutable served : int;
  mutable shed : int;
  mutable degraded : int;
  mutable miss : int;
  mutable opens : int;
  mutable skips : int;
  mutable retries : int;
  mutable cost : float;
  mutable walls : float list;
}

let json_row name (a : agg) p50 p95 p99 =
  Json.Obj
    [
      ("scenario", Json.Str name);
      ("arrivals", Json.Num (float_of_int a.arrivals));
      ("served", Json.Num (float_of_int a.served));
      ("shed", Json.Num (float_of_int a.shed));
      ("degraded", Json.Num (float_of_int a.degraded));
      ("deadline_miss", Json.Num (float_of_int a.miss));
      ("breaker_opens", Json.Num (float_of_int a.opens));
      ("breaker_skips", Json.Num (float_of_int a.skips));
      ("retries", Json.Num (float_of_int a.retries));
      ("mean_served_cost", Json.Num (a.cost /. float_of_int (max 1 a.served)));
      ("wall_p50_s", Json.Num p50);
      ("wall_p95_s", Json.Num p95);
      ("wall_p99_s", Json.Num p99);
    ]

let run ~quick ~seeds =
  let seeds = if quick then min seeds 2 else seeds in
  Common.section
    "serve: deadline ladder, load shedding and breakers per scenario";
  let topo = Sof_topology.Topology.softlayer () in
  let workload = Online.softlayer_config in
  let n_access = (fun (_, _, n) -> n) (Online.augment topo workload) in
  let t =
    Common.Tbl.create
      [
        "scenario"; "arrivals"; "served"; "shed"; "degraded"; "miss";
        "breaker o/s"; "retries"; "p50 (ms)"; "p95 (ms)"; "p99 (ms)";
        "mean cost";
      ]
  in
  let rows =
    List.map
      (fun (name, cfg) ->
        let a =
          {
            arrivals = 0; served = 0; shed = 0; degraded = 0; miss = 0;
            opens = 0; skips = 0; retries = 0; cost = 0.0; walls = [];
          }
        in
        for seed = 0 to seeds - 1 do
          let events =
            Stream.script
              ~rng:(Rng.create (0xBE5C + (seed * 7919)))
              ~n_access cfg.Serve.stream
          in
          let r = Serve.run_script topo cfg events in
          a.arrivals <- a.arrivals + r.Serve.arrivals;
          a.served <- a.served + r.Serve.served;
          a.shed <-
            a.shed + r.Serve.shed_queue_full + r.Serve.shed_expired
            + r.Serve.shed_fault;
          a.degraded <- a.degraded + r.Serve.degraded;
          a.miss <- a.miss + r.Serve.deadline_miss;
          a.opens <- a.opens + r.Serve.breaker_opens;
          a.skips <- a.skips + r.Serve.breaker_skips;
          a.retries <- a.retries + r.Serve.retries;
          a.cost <- a.cost +. r.Serve.served_cost_total;
          a.walls <-
            List.filter_map
              (fun (resp : Serve.response) ->
                match resp.Serve.status with
                | Serve.Served _ -> Some resp.Serve.wall_s
                | _ -> None)
              r.Serve.responses
            @ a.walls
        done;
        let pct p =
          if a.walls = [] then 0.0 else Sof_util.Stats.percentile p a.walls
        in
        let p50 = pct 50.0 and p95 = pct 95.0 and p99 = pct 99.0 in
        Common.Tbl.add_row t
          [
            name;
            string_of_int a.arrivals;
            string_of_int a.served;
            string_of_int a.shed;
            string_of_int a.degraded;
            string_of_int a.miss;
            Printf.sprintf "%d/%d" a.opens a.skips;
            string_of_int a.retries;
            Printf.sprintf "%.2f" (1000.0 *. p50);
            Printf.sprintf "%.2f" (1000.0 *. p95);
            Printf.sprintf "%.2f" (1000.0 *. p99);
            Printf.sprintf "%.3f" (a.cost /. float_of_int (max 1 a.served));
          ];
        json_row name a p50 p95 p99)
      (scenarios ~quick workload)
  in
  Common.Tbl.print t;
  Common.note
    "tight deadlines degrade to the eST floor instead of missing; shedding \
     only fires under the flash crowd's bounded queue";
  (* --- batched engine vs sequential server: identity + throughput ------ *)
  let module Engine = Sof_serve.Engine in
  let relaxed = List.assoc "relaxed" (scenarios ~quick workload) in
  let scripts =
    List.init seeds (fun seed ->
        Stream.script
          ~rng:(Rng.create (0xBE5C + (seed * 7919)))
          ~n_access relaxed.Serve.stream)
  in
  let time_run f =
    let t0 = Unix.gettimeofday () in
    let rs = List.map f scripts in
    (rs, Unix.gettimeofday () -. t0)
  in
  let seq_rs, seq_wall = time_run (fun ev -> Serve.run_script topo relaxed ev) in
  let engine = { Engine.shards = 0; batch_size = 8 } in
  let bat_rs, bat_wall =
    time_run (fun ev -> Engine.run_script ~engine topo relaxed ev)
  in
  let served rs = List.fold_left (fun acc r -> acc + r.Serve.served) 0 rs in
  let mismatches =
    List.fold_left2
      (fun acc a b ->
        match Engine.report_diff a b with
        | None -> acc
        | Some d ->
            if acc = 0 then Common.note "engine mismatch: %s" d;
            acc + 1)
      0 seq_rs bat_rs
  in
  let tput n w = if w <= 0.0 then 0.0 else float_of_int n /. w in
  Common.note
    "engine identity on the relaxed scenario: %s (%d scripts); sequential %d \
     served in %.2f s (%.1f req/s), batched %.2f s (%.1f req/s)"
    (if mismatches = 0 then "bit-identical" else
       Printf.sprintf "%d MISMATCHES" mismatches)
    seeds (served seq_rs) seq_wall
    (tput (served seq_rs) seq_wall)
    bat_wall
    (tput (served bat_rs) bat_wall);
  let engine_rows =
    List.map
      (fun (name, rs, wall) ->
        Json.Obj
          [
            ("scenario", Json.Str name);
            ("served", Json.Num (float_of_int (served rs)));
            ("wall_s", Json.Num wall);
            ("req_per_s", Json.Num (tput (served rs) wall));
            ("identical", Json.Bool (mismatches = 0));
          ])
      [
        ("engine-sequential", seq_rs, seq_wall);
        ("engine-batched", bat_rs, bat_wall);
      ]
  in
  let rows = rows @ engine_rows in
  match !Common.json_dir with
  | None -> ()
  | Some dir ->
      let file = Filename.concat dir "BENCH_serve.json" in
      let oc = open_out file in
      output_string oc
        (Json.to_string
           (Json.Obj
              [ ("experiment", Json.Str "serve"); ("rows", Json.Arr rows) ]));
      output_char oc '\n';
      close_out oc;
      Common.note "wrote %s" file
