(* Domain-pool speedup: the same SoftLayer-scale sweep executed with a
   single domain and with N domains.  Beyond the wall-clock comparison this
   doubles as an end-to-end determinism check — the two sweeps must produce
   bit-identical mean costs (the pool's contract). *)

let time_sweep ~domains ~seeds ~topo ~params algo =
  Sof_util.Pool.set_size domains;
  let t0 = Unix.gettimeofday () in
  let mean = Common.mean_cost ~seeds ~topo ~params algo in
  (mean, Unix.gettimeofday () -. t0)

let run ~quick ~seeds =
  Common.section "par — Domain pool speedup (1 vs N domains)";
  let saved = Sof_util.Pool.size () in
  let n_domains = max 4 (Sof_util.Pool.default_size ()) in
  let seeds = if quick then max 4 seeds else max 10 (2 * seeds) in
  let topo = Sof_topology.Topology.softlayer () in
  let params = Sof_workload.Instance.default_params in
  Common.note
    "SoftLayer defaults (|S|=14, |D|=6, 25 VMs, |C|=3), %d instances per run"
    seeds;
  let t =
    Sof_util.Tbl.create
      ~caption:"same sweep, sequential vs pooled"
      [ "algorithm"; "domains"; "wall (s)"; "mean cost"; "speedup"; "identical" ]
  in
  List.iter
    (fun algo ->
      let m1, t1 = time_sweep ~domains:1 ~seeds ~topo ~params algo in
      let mn, tn = time_sweep ~domains:n_domains ~seeds ~topo ~params algo in
      let row domains wall mean speedup identical =
        Sof_util.Tbl.add_row t
          [
            algo.Common.label;
            string_of_int domains;
            Printf.sprintf "%.2f" wall;
            Printf.sprintf "%.4f" mean;
            speedup;
            identical;
          ]
      in
      row 1 t1 m1 "-" "-";
      row n_domains tn mn
        (Printf.sprintf "%.2fx" (t1 /. tn))
        (if Float.equal m1 mn then "yes" else "NO — BUG"))
    [ Common.sofda; Common.est ];
  Sof_util.Tbl.print t;
  Sof_util.Pool.set_size saved;
  Common.note
    "Parallelism: per-instance fan-out in mean_cost; within one instance\n\
     the solver's own fan-outs (chain pricing, per-source scans, closure\n\
     sweeps) parallelize instead when called at the top level."
