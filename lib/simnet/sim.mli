(** Flow-level discrete-event network simulation of a deployed service
    overlay forest — the software stand-in for the paper's HP-switch
    testbed and Emulab runs (Table II).

    The embedding decides each destination's route: the hops of its
    serving walk followed by a delivery path.  Links have a capacity and a
    fluctuating residual (available) bandwidth — background traffic is
    redrawn per link at exponential epochs, uniformly within
    [avail_lo, avail_hi], emulating the paper's 4.5–9 Mbit/s congestion
    band.  Flows share by proportional fairness: when background traffic
    plus the video streams on a link exceed its capacity, every flow
    throttles by the same factor; multicast branches of one stream count
    once (the same dedup rule as the forest cost model).  Each destination runs a
    {!Session}; the simulator advances all sessions between consecutive
    background-change events, yielding startup latency and re-buffering
    time per destination. *)

type config = {
  capacity : float;          (** link capacity, bit/s (paper: 50 Mbit/s) *)
  avail_lo : float;          (** available bandwidth lower bound, bit/s *)
  avail_hi : float;          (** upper bound, bit/s *)
  redraw_mean : float;       (** mean seconds between background changes per link *)
  per_hop_delay : float;     (** forwarding/rule-setup delay per route hop, seconds *)
  session : Session.config;
  max_time : float;          (** simulation horizon, wall-clock seconds *)
}

val default_config : config
(** The paper's setting: 4.5–9 Mbit/s available bandwidth, 8 Mbit/s video;
    background redraw every ~5 s; 1-hour horizon. *)

type route = {
  dest : int;
  links : (int * int) list;      (** physical links on the route, in order *)
  contexts : ((int * int) * int) list;
      (** (link, stream-context hash) pairs for sharing computation *)
}

val routes_of_forest : Sof.Forest.t -> route list
(** One route per destination of the problem: serving-walk hops plus the
    delivery path (BFS inside the delivery component).  @raise Failure on
    an invalid forest. *)

type metrics = {
  dest : int;
  startup : float;       (** seconds; [max_time] if playback never started *)
  rebuffer : float;      (** total stalled seconds *)
  stalls : int;
  completed : bool;
  outage : float;        (** seconds the route was inside a failure window *)
}

val run :
  rng:Sof_util.Rng.t ->
  ?outages:((int * int) * float * float) list ->
  config ->
  Sof.Forest.t ->
  metrics list
(** Simulate every destination's session to completion (or [max_time]).

    [outages] lists link failure windows [(link, t_down, t_up)] — e.g.
    {!Sof_resilience.Fault.link_outages} of a chaos trace.  While any link
    of a destination's route is inside a window the flow is dead: the
    session receives zero rate (stalling and re-buffering accrue) and the
    lost span is charged to {!metrics.outage}.  Repair completion is
    modelled by the window's upper bound. *)

val mean_startup : metrics list -> float
val mean_rebuffer : metrics list -> float
val mean_outage : metrics list -> float
