module Rng = Sof_util.Rng
module Binheap = Sof_graph.Binheap

type config = {
  capacity : float;
  avail_lo : float;
  avail_hi : float;
  redraw_mean : float;
  per_hop_delay : float;
  session : Session.config;
  max_time : float;
}

let default_config =
  {
    capacity = 50e6;
    avail_lo = 4.5e6;
    avail_hi = 9e6;
    redraw_mean = 5.0;
    per_hop_delay = 0.25;
    session = Session.default_config;
    max_time = 3600.0;
  }

type route = {
  dest : int;
  links : (int * int) list;
  contexts : ((int * int) * int) list;
}

type metrics = {
  dest : int;
  startup : float;
  rebuffer : float;
  stalls : int;
  completed : bool;
  outage : float;
}

let norm (a, b) = if a < b then (a, b) else (b, a)

(* Stream-context ids: a shared counter keyed by the exact context tuple so
   identical contexts across routes map to the same id. *)
type ctx_alloc = {
  tbl : (int * int * (int * int), int) Hashtbl.t;
  mutable next : int;
}

let ctx_id alloc key =
  match Hashtbl.find_opt alloc.tbl key with
  | Some i -> i
  | None ->
      let i = alloc.next in
      alloc.next <- alloc.next + 1;
      Hashtbl.replace alloc.tbl key i;
      i

let stage_array (w : Sof.Forest.walk) =
  let n = Array.length w.Sof.Forest.hops in
  let stage = Array.make n 0 in
  List.iter
    (fun (m : Sof.Forest.mark) ->
      for i = m.Sof.Forest.pos to n - 1 do
        stage.(i) <- max stage.(i) m.Sof.Forest.vnf
      done)
    w.Sof.Forest.marks;
  stage

let routes_of_forest (f : Sof.Forest.t) =
  let p = f.Sof.Forest.problem in
  let alloc = { tbl = Hashtbl.create 64; next = 0 } in
  (* Delivery adjacency. *)
  let adj = Hashtbl.create 32 in
  let link a b =
    Hashtbl.replace adj a (b :: Option.value ~default:[] (Hashtbl.find_opt adj a))
  in
  List.iter
    (fun (a, b) ->
      link a b;
      link b a)
    f.Sof.Forest.delivery;
  (* Multi-source BFS from every injection point; remember, per reached
     node, the injection point and its owning walk. *)
  let owner = Hashtbl.create 32 in (* node -> (walk idx, hop idx of injection) *)
  let parent = Hashtbl.create 32 in
  let queue = Queue.create () in
  List.iteri
    (fun wi (w : Sof.Forest.walk) ->
      match List.rev w.Sof.Forest.marks with
      | [] -> ()
      | m :: _ ->
          for i = m.Sof.Forest.pos to Array.length w.Sof.Forest.hops - 1 do
            let v = w.Sof.Forest.hops.(i) in
            if not (Hashtbl.mem owner v) then begin
              Hashtbl.replace owner v (wi, i);
              Queue.add v queue
            end
          done)
    f.Sof.Forest.walks;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if not (Hashtbl.mem owner v) then begin
          Hashtbl.replace owner v (Hashtbl.find owner u);
          Hashtbl.replace parent v u;
          Queue.add v queue
        end)
      (Option.value ~default:[] (Hashtbl.find_opt adj u))
  done;
  let walks = Array.of_list f.Sof.Forest.walks in
  List.map
    (fun dest ->
      match Hashtbl.find_opt owner dest with
      | None -> failwith "Sim.routes_of_forest: unserved destination"
      | Some (wi, inj_pos) ->
          let w = walks.(wi) in
          let stage = stage_array w in
          (* walk part: source .. injection hop *)
          let walk_links = ref [] and contexts = ref [] in
          for i = 0 to inj_pos - 1 do
            let e = norm (w.Sof.Forest.hops.(i), w.Sof.Forest.hops.(i + 1)) in
            walk_links := e :: !walk_links;
            let id = ctx_id alloc (w.Sof.Forest.source, stage.(i), e) in
            contexts := (e, id) :: !contexts
          done;
          (* delivery part: dest back to the injection node *)
          let rec climb v acc =
            match Hashtbl.find_opt parent v with
            | None -> acc
            | Some u -> climb u (norm (u, v) :: acc)
          in
          let delivery_links = climb dest [] in
          List.iter
            (fun e ->
              (* final content is identical across sources: share fully *)
              let id = ctx_id alloc (-1, -1, e) in
              contexts := (e, id) :: !contexts)
            delivery_links;
          {
            dest;
            links = List.rev !walk_links @ delivery_links;
            contexts = List.rev !contexts;
          })
    p.Sof.Problem.dests

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let run ~rng ?(outages = []) config (f : Sof.Forest.t) =
  Sof_obs.Obs.span "sim.run" @@ fun () ->
  let routes = routes_of_forest f in
  let outages =
    List.map (fun (l, d, u) -> (norm l, d, min u config.max_time)) outages
  in
  let num_vnfs = f.Sof.Forest.problem.Sof.Problem.chain_length in
  (* Distinct streams per link. *)
  let link_streams = Hashtbl.create 32 in
  List.iter
    (fun (r : route) ->
      List.iter
        (fun (e, id) ->
          let set =
            match Hashtbl.find_opt link_streams e with
            | Some s -> s
            | None ->
                let s = Hashtbl.create 4 in
                Hashtbl.replace link_streams e s;
                s
          in
          Hashtbl.replace set id ())
        r.contexts)
    routes;
  let links =
    Hashtbl.fold (fun e _ acc -> e :: acc) link_streams []
    |> List.sort compare |> Array.of_list
  in
  let index_of = Hashtbl.create 32 in
  Array.iteri (fun i e -> Hashtbl.replace index_of e i) links;
  let avail =
    Array.map (fun _ -> config.avail_lo +. Rng.float rng (config.avail_hi -. config.avail_lo)) links
  in
  let streams_on =
    Array.map (fun e -> Hashtbl.length (Hashtbl.find link_streams e)) links
  in
  let bitrate = config.session.Session.bitrate in
  (* Proportional fair share: background traffic occupies
     capacity - available; when background + all video streams exceed the
     capacity, every flow throttles by the same factor. *)
  let rate_of (route : route) =
    List.fold_left
      (fun acc e ->
        let i = Hashtbl.find index_of e in
        let background = config.capacity -. avail.(i) in
        let demand =
          background +. (bitrate *. float_of_int (max 1 streams_on.(i)))
        in
        let factor = min 1.0 (config.capacity /. demand) in
        min acc (bitrate *. factor))
      bitrate route.links
  in
  (* Outage windows per route: the flow is dead (zero rate) while any of
     its links sits inside a failure window. *)
  let windows_of (r : route) =
    List.filter_map
      (fun (l, d, u) -> if List.mem l r.links then Some (d, u) else None)
      outages
  in
  let down_at ws t = List.exists (fun (d, u) -> t >= d && t < u) ws in
  let sessions =
    List.map
      (fun (r : route) ->
        let path_latency =
          config.per_hop_delay *. float_of_int (List.length r.links)
        in
        (r, windows_of r, ref 0.0, Session.create config.session ~num_vnfs ~path_latency))
      routes
  in
  (* Event queue of per-link background redraws; outage boundaries enter
     as barrier events (link index -1) so every advance interval has a
     constant up/down state. *)
  let heap = Binheap.create () in
  Array.iteri
    (fun i _ -> Binheap.push heap (Rng.exponential rng (1.0 /. config.redraw_mean)) i)
    links;
  List.iter
    (fun (_, d, u) ->
      if d > 0.0 && d < config.max_time then Binheap.push heap d (-1);
      if u > 0.0 && u < config.max_time then Binheap.push heap u (-1))
    outages;
  let now = ref 0.0 in
  let all_done () = List.for_all (fun (_, _, _, s) -> Session.is_done s) sessions in
  let advance_all dt =
    if dt > 0.0 then
      List.iter
        (fun (r, ws, out, s) ->
          if not (Session.is_done s) then
            if down_at ws !now then begin
              out := !out +. dt;
              Session.advance s ~now:!now ~rate:0.0 ~dt
            end
            else Session.advance s ~now:!now ~rate:(rate_of r) ~dt)
        sessions
  in
  let continue = ref true in
  while !continue && (not (all_done ())) && !now < config.max_time do
    match Binheap.pop heap with
    | None ->
        (* No pending events — possible when no route has any link (e.g. a
           destination colocated with its whole chain).  Drain every
           session to the horizon at its constant rate. *)
        advance_all (config.max_time -. !now);
        now := config.max_time;
        continue := false
    | Some (te, li) ->
        Sof_obs.Obs.count "sim.events" 1;
        let te = min te config.max_time in
        advance_all (te -. !now);
        now := te;
        if li >= 0 then begin
          avail.(li) <-
            config.avail_lo +. Rng.float rng (config.avail_hi -. config.avail_lo);
          Binheap.push heap
            (te +. Rng.exponential rng (1.0 /. config.redraw_mean))
            li
        end
  done;
  List.map
    (fun ((r : route), _, out, s) ->
      Sof_obs.Obs.record "sim.outage_seconds" !out;
      {
        dest = r.dest;
        startup =
          Option.value ~default:config.max_time (Session.startup_latency s);
        rebuffer = Session.rebuffer_time s;
        stalls = Session.stall_count s;
        completed = Session.is_done s;
        outage = !out;
      })
    sessions

let mean_startup ms = mean (List.map (fun m -> m.startup) ms)
let mean_rebuffer ms = mean (List.map (fun m -> m.rebuffer) ms)
let mean_outage ms = mean (List.map (fun m -> m.outage) ms)
