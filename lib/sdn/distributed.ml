module Graph = Sof_graph.Graph
module Dijkstra = Sof_graph.Dijkstra

type net = {
  graph : Graph.t;
  domains : Domain.t;
  controllers : Controller.t array;
  down : bool array; (* partitioned controllers *)
  mutable advertised : (int * int * float) list; (* union of border matrices *)
  mutable exchanged : bool;
}

let create graph ~k =
  let domains = Domain.partition graph ~k in
  let controllers =
    Array.init domains.Domain.count (Controller.create graph domains)
  in
  {
    graph;
    domains;
    controllers;
    down = Array.make domains.Domain.count false;
    advertised = [];
    exchanged = false;
  }

let domains net = net.domains

let controller_of net v = net.domains.Domain.of_node.(v)

let partition net c =
  if c < 0 || c >= Array.length net.down then
    invalid_arg "Distributed.partition: no such controller";
  net.down.(c) <- true

let heal net c =
  if c < 0 || c >= Array.length net.down then
    invalid_arg "Distributed.heal: no such controller";
  net.down.(c) <- false

let is_partitioned net c =
  c >= 0 && c < Array.length net.down && net.down.(c)

(* All sends go through this wrapper: a partitioned destination burns the
   retry budget and times out instead of delivering. *)
let xsend net fabric ~src ~dst kind =
  Sof_obs.Obs.count "distributed.messages" 1;
  if net.down.(dst) then Fabric.timeout fabric ~src ~dst kind
  else ignore (Fabric.send fabric ~src ~dst kind)

let exchange_matrices net fabric =
  let k = net.domains.Domain.count in
  let matrices = Array.map Controller.border_matrix net.controllers in
  for src = 0 to k - 1 do
    for dst = 0 to k - 1 do
      if src <> dst && not net.down.(src) then begin
        xsend net fabric ~src ~dst Fabric.Border_matrix;
        xsend net fabric ~src ~dst Fabric.Reachability
      end
    done
  done;
  net.advertised <-
    List.concat
      (List.filteri
         (fun i _ -> not net.down.(i))
         (Array.to_list matrices));
  net.exchanged <- true

(* Overlay graph: all border routers, intra-domain matrix edges,
   inter-domain physical edges, plus the two query endpoints attached by
   their node-to-border distances (and a direct intra edge when they share
   a domain). *)
let overlay_distance net u v =
  if not net.exchanged then
    invalid_arg "Distributed.overlay_distance: matrices not exchanged";
  if u = v then 0.0
  else begin
    let cu = net.controllers.(controller_of net u) in
    let cv = net.controllers.(controller_of net v) in
    (* compact node ids for the overlay *)
    let ids = Hashtbl.create 64 in
    let fresh = ref 0 in
    let id_of x =
      match Hashtbl.find_opt ids x with
      | Some i -> i
      | None ->
          let i = !fresh in
          incr fresh;
          Hashtbl.replace ids x i;
          i
    in
    let edges = ref [] in
    let add a b w = if a <> b then edges := (id_of a, id_of b, w) :: !edges in
    List.iter (fun (a, b, w) -> add a b w) net.advertised;
    List.iter
      (fun (a, b, w) -> add a b w)
      (Domain.inter_domain_edges net.graph net.domains);
    List.iter (fun (b, d) -> add u b d) (Controller.node_to_borders cu u);
    List.iter (fun (b, d) -> add v b d) (Controller.node_to_borders cv v);
    let direct =
      if Controller.id cu = Controller.id cv then
        Controller.intra_distance cu u v
      else infinity
    in
    if direct < infinity then add u v direct;
    let su = id_of u and sv = id_of v in
    let g = Graph.create ~n:!fresh ~edges:!edges in
    (* Only one label is read: stop the sweep once [sv] settles. *)
    (Dijkstra.run_to_targets g su ~targets:[| sv |]).Dijkstra.dist.(sv)
  end

type stats = {
  forest : Sof.Forest.t;
  leader : int;
  messages : (string * int) list;
  rules_installed : int;
  conflicts : int;
  failovers : int;
}

(* Leader election: the preferred leader is the controller owning the
   first source; every partitioned candidate is skipped (one failover
   each), and each live controller acknowledges the winner with a
   Failover message.  [None] when every controller is partitioned. *)
let elect_leader net fabric preferred =
  let k = net.domains.Domain.count in
  let rec probe i hops =
    if hops >= k then None
    else
      let c = (preferred + i) mod k in
      if net.down.(c) then probe (i + 1) (hops + 1) else Some (c, hops)
  in
  match probe 0 0 with
  | None -> None
  | Some (leader, 0) -> Some (leader, 0)
  | Some (leader, failovers) ->
      Sof_obs.Obs.count "distributed.failovers" failovers;
      for c = 0 to k - 1 do
        if (not net.down.(c)) && c <> leader then
          ignore (Fabric.send fabric ~src:c ~dst:leader Fabric.Failover)
      done;
      Some (leader, failovers)

let solve net fabric (problem : Sof.Problem.t) =
  Sof_obs.Obs.span "distributed.solve" @@ fun () ->
  if not net.exchanged then exchange_matrices net fabric;
  let preferred =
    match problem.Sof.Problem.sources with
    | s :: _ -> controller_of net s
    | [] -> 0
  in
  match elect_leader net fabric preferred with
  | None -> None
  | Some (leader, failovers) -> (
      (* Chain pricing: the leader queries the controller owning each source
         for candidate chains; that controller in turn needs the VM owners'
         advertised distances (already exchanged), so one query/response pair
         per (leader, source-owner) and per (source-owner, vm-owner) domain
         pair suffices. *)
      let pairs = Hashtbl.create 16 in
      List.iter
        (fun s ->
          let cs = controller_of net s in
          if cs <> leader then Hashtbl.replace pairs (leader, cs) ();
          List.iter
            (fun vm ->
              let cm = controller_of net vm in
              if cm <> cs then Hashtbl.replace pairs (cs, cm) ())
            problem.Sof.Problem.vms)
        problem.Sof.Problem.sources;
      Hashtbl.iter
        (fun (src, dst) () ->
          xsend net fabric ~src ~dst Fabric.Chain_query;
          xsend net fabric ~src:dst ~dst:src Fabric.Chain_query)
        pairs;
      match Sof.Sofda.solve problem with
      | None -> None
      | Some report ->
          let forest = report.Sof.Sofda.forest in
          (* Steiner construction rounds: the leader pushes every accepted
             tree edge to the controller owning its upstream endpoint. *)
          List.iter
            (fun (a, _) ->
              let owner = controller_of net a in
              if owner <> leader then
                xsend net fabric ~src:leader ~dst:owner Fabric.Steiner_update)
            forest.Sof.Forest.delivery;
          (* Conflict elimination notifications: one exchange per conflicted
             VM between the leader and a peer controller. *)
          for _ = 1 to report.Sof.Sofda.conflicts_resolved do
            xsend net fabric ~src:leader
              ~dst:((leader + 1) mod net.domains.Domain.count)
              Fabric.Conflict_notice;
            xsend net fabric
              ~src:((leader + 1) mod net.domains.Domain.count)
              ~dst:leader Fabric.Conflict_notice
          done;
          (* Southbound rule installation by each owning controller. *)
          let rules = Flow_table.compile forest in
          List.iter
            (fun (r : Flow_table.rule) ->
              let owner = controller_of net r.Flow_table.node in
              if owner <> leader then
                xsend net fabric ~src:leader ~dst:owner Fabric.Rule_install;
              xsend net fabric ~src:owner ~dst:owner Fabric.Rule_install)
            rules;
          Some
            {
              forest;
              leader;
              messages = Fabric.report fabric;
              rules_installed = List.length rules;
              conflicts = report.Sof.Sofda.conflicts_resolved;
              failovers;
            })
