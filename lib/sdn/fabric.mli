(** East–west inter-controller message fabric (Section VI).

    A counting message bus standing in for the ODL-SDNi channel: the
    distributed algorithms below route all cross-controller information
    through [send], so tests and benchmarks can assert {e what} must be
    exchanged and {e how much}.

    The bus can be made {e lossy}: with a [faults] config every
    inter-controller transmission is dropped with probability [loss] and
    retried with exponential backoff until [max_retries] is exhausted,
    after which the message counts as dropped.  Retransmissions, drops and
    the accumulated backoff delay are all observable, and [report] folds
    them into the per-kind message table. *)

type t

type kind =
  | Border_matrix       (** intra-domain distance matrix broadcast *)
  | Reachability        (** SDNi NLRI-style reachability advertisement *)
  | Chain_query         (** candidate service-chain cost request/response *)
  | Steiner_update      (** distributed Steiner tree construction round *)
  | Conflict_notice     (** VNF conflict detection / resolution *)
  | Rule_install        (** southbound flow-rule push, counted per switch *)
  | Failover            (** leader re-election after a controller partition *)

type faults = {
  rng : Sof_util.Rng.t;
  loss : float;         (** per-transmission loss probability in [0, 1) *)
  max_retries : int;
  base_backoff : float; (** seconds; doubles per retry *)
  jitter : float;
      (** backoff jitter amplitude: each backoff is scaled by a seeded
          factor in [1 - jitter/2, 1 + jitter/2], decorrelating retry
          storms across controllers.  [0.0] draws nothing from [rng],
          keeping pre-jitter schedules bit-identical. *)
}

val create : ?faults:faults -> unit -> t

val send : t -> src:int -> dst:int -> kind -> bool
(** [src]/[dst] are controller ids ([dst = src] models southbound traffic
    inside one domain, counted separately and never lossy).  Returns
    [false] when the lossy channel dropped the message after exhausting
    its retries. *)

val timeout : t -> src:int -> dst:int -> kind -> unit
(** Account a send towards a known-dead destination: the full retry
    budget backs off and the message is dropped. *)

val total : t -> int
(** All inter-controller transmissions, retries included (excludes
    southbound). *)

val southbound : t -> int

val count : t -> kind -> int

val retransmits : t -> int

val drops : t -> int

val backoff_delay : t -> float
(** Total seconds spent in exponential backoff across all retries. *)

val kind_to_string : kind -> string

val report : t -> (string * int) list
(** Per-kind counters, plus ["retransmit"] and ["dropped"] rows when the
    lossy channel was active, for logs and benches. *)
