(** Distributed SOFDA over a multi-controller SDN (Section VI).

    Control plane: each controller abstracts its domain as a border-router
    distance matrix and advertises it east–west; any controller can then
    price inter-domain shortest paths on the {e overlay graph} (border
    routers + inter-domain links + advertised matrices), which is provably
    exact — a property test pins it against global Dijkstra.  The
    controller receiving the request becomes the leader: it gathers
    candidate service chains from the source-owning controllers, runs the
    Steiner phase, coordinates VNF-conflict elimination with the involved
    controllers, and has every controller install the final rules in its
    own switches.  All cross-controller traffic flows through a
    {!Fabric.t}, so the communication cost of every phase is observable. *)

type net

val create : Sof_graph.Graph.t -> k:int -> net
(** Partition the network into [k] controller domains. *)

val domains : net -> Domain.t

val controller_of : net -> int -> int
(** Owning controller of a node. *)

val partition : net -> int -> unit
(** Mark a controller as partitioned from the east–west channel: it stops
    advertising, cannot lead, and messages towards it time out (visible
    as retransmissions and drops on the {!Fabric.t}).
    @raise Invalid_argument on an unknown controller id. *)

val heal : net -> int -> unit
(** Undo {!partition}.  Re-run {!exchange_matrices} afterwards to
    re-advertise the healed controller's matrix. *)

val is_partitioned : net -> int -> bool

val exchange_matrices : net -> Fabric.t -> unit
(** Broadcast border matrices and reachability between all controller
    pairs (idempotent; later calls re-advertise and re-count).
    Partitioned controllers neither advertise nor receive. *)

val overlay_distance : net -> int -> int -> float
(** Inter-domain shortest-path distance through the overlay — equal to
    the global shortest-path distance.  Requires [exchange_matrices]
    (raises a descriptive [Invalid_argument] otherwise); exactness also
    assumes no controller was partitioned during the exchange. *)

type stats = {
  forest : Sof.Forest.t;
  leader : int;
  messages : (string * int) list;
  rules_installed : int;
  conflicts : int;
  failovers : int;  (** partitioned candidates skipped during election *)
}

val solve : net -> Fabric.t -> Sof.Problem.t -> stats option
(** Run SOFDA distributedly.  The resulting forest is identical in cost to
    centralized {!Sof.Sofda.solve} (the leader operates on exact overlay
    distances); what changes is the accounted communication.  When the
    preferred leader (the first source's controller) is partitioned, the
    next live controller takes over — each skip counts one failover and
    the election traffic appears as [Failover] messages.  [None] when the
    instance is infeasible or every controller is partitioned. *)
