module Rng = Sof_util.Rng

type kind =
  | Border_matrix
  | Reachability
  | Chain_query
  | Steiner_update
  | Conflict_notice
  | Rule_install
  | Failover

let kind_to_string = function
  | Border_matrix -> "border-matrix"
  | Reachability -> "reachability"
  | Chain_query -> "chain-query"
  | Steiner_update -> "steiner-update"
  | Conflict_notice -> "conflict-notice"
  | Rule_install -> "rule-install"
  | Failover -> "failover"

let all_kinds =
  [
    Border_matrix; Reachability; Chain_query; Steiner_update; Conflict_notice;
    Rule_install; Failover;
  ]

type faults = {
  rng : Rng.t;
  loss : float;
  max_retries : int;
  base_backoff : float;
  jitter : float;
}

(* Decorrelates retry storms: each backoff is scaled by a seeded factor
   in [1 - jitter/2, 1 + jitter/2].  [jitter = 0] draws nothing from the
   RNG, so pre-jitter fault schedules replay bit-identically. *)
let jittered f backoff =
  if f.jitter > 0.0 then
    backoff *. (1.0 +. (f.jitter *. (Rng.float f.rng 1.0 -. 0.5)))
  else backoff

type t = {
  counters : (kind, int) Hashtbl.t;
  mutable inter : int;
  mutable south : int;
  faults : faults option;
  mutable retransmits : int;
  mutable drops : int;
  mutable backoff_delay : float;
}

let create ?faults () =
  {
    counters = Hashtbl.create 8;
    inter = 0;
    south = 0;
    faults;
    retransmits = 0;
    drops = 0;
    backoff_delay = 0.0;
  }

let count_one t kind =
  Hashtbl.replace t.counters kind
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.counters kind))

(* Southbound traffic (src = dst) stays inside one domain and is treated
   as reliable; only inter-controller messages face the lossy channel.
   Each lost transmission backs off exponentially before the retry; a
   message that exhausts its retry budget counts as dropped. *)
let send t ~src ~dst kind =
  count_one t kind;
  if src = dst then begin
    t.south <- t.south + 1;
    true
  end
  else begin
    t.inter <- t.inter + 1;
    match t.faults with
    | None -> true
    | Some f ->
        let rec attempt n =
          if Rng.float f.rng 1.0 >= f.loss then true
          else if n >= f.max_retries then begin
            t.drops <- t.drops + 1;
            false
          end
          else begin
            t.retransmits <- t.retransmits + 1;
            Sof_obs.Obs.count "fabric.retransmits" 1;
            let backoff = jittered f (f.base_backoff *. (2.0 ** float_of_int n)) in
            t.backoff_delay <- t.backoff_delay +. backoff;
            Sof_obs.Obs.record "fabric.backoff_seconds" backoff;
            t.inter <- t.inter + 1;
            attempt (n + 1)
          end
        in
        let ok = attempt 0 in
        if not ok then Sof_obs.Obs.count "fabric.drops" 1;
        ok
  end

(* A send whose destination is known dead: the full retry budget burns
   through its backoff schedule, then the message times out. *)
let timeout t ~src ~dst:_ kind =
  count_one t kind;
  t.inter <- t.inter + 1;
  ignore src;
  (match t.faults with
  | Some f ->
      for n = 0 to f.max_retries - 1 do
        t.retransmits <- t.retransmits + 1;
        Sof_obs.Obs.count "fabric.retransmits" 1;
        let backoff = jittered f (f.base_backoff *. (2.0 ** float_of_int n)) in
        t.backoff_delay <- t.backoff_delay +. backoff;
        Sof_obs.Obs.record "fabric.backoff_seconds" backoff;
        t.inter <- t.inter + 1
      done
  | None -> ());
  t.drops <- t.drops + 1;
  Sof_obs.Obs.count "fabric.drops" 1

let total t = t.inter
let southbound t = t.south
let count t kind = Option.value ~default:0 (Hashtbl.find_opt t.counters kind)
let retransmits t = t.retransmits
let drops t = t.drops
let backoff_delay t = t.backoff_delay

let report t =
  List.filter_map
    (fun k ->
      match count t k with 0 -> None | c -> Some (kind_to_string k, c))
    all_kinds
  @ (if t.retransmits > 0 then [ ("retransmit", t.retransmits) ] else [])
  @ if t.drops > 0 then [ ("dropped", t.drops) ] else []
