(** The k-stroll problem on metric instances.

    Given a metric distance function, two endpoints [src] and [dst], and a
    target [k], find a cheap walk from [src] to [dst] that visits at least
    [k] distinct nodes (endpoints included).  SOFDA uses this as the
    service-chain backbone (Definition 2 of the paper, with
    [k = |C| + 1]).

    The paper invokes the 2-approximation of Chaudhuri et al. (FOCS'03);
    that algorithm is a theoretical construction built on dense LP machinery
    with no published implementation.  We substitute the classic
    cheapest-insertion heuristic — on metric instances it produces paths
    whose cost our exact Held–Karp probes confirm to be near-optimal at the
    paper's scales (k <= 8); see DESIGN.md.  [exact] is the Held–Karp
    dynamic program, exponential in the candidate count, used in tests. *)

(** {b Closed-walk convention.}  Both solvers represent walks the same
    way.  An open walk ([src <> dst]) lists [src] first and [dst] last.  A
    closed walk ([src = dst]) repeats the shared endpoint at both ends —
    [src; v1; …; vm; src] — {e except} the trivial closed walk that visits
    no intermediate node, which is the single-element list [[src]] with
    cost [0.] (a walk over one node traverses no edges).  [walk_cost]
    agrees with this representation in every case. *)

type walk = {
  nodes : int list;
      (** visited nodes, [src] first, [dst] last (closed walks per the
          convention above) *)
  cost : float;
}

val cheapest_insertion :
  dist:(int -> int -> float) ->
  candidates:int list ->
  src:int ->
  dst:int ->
  k:int ->
  walk option
(** [cheapest_insertion ~dist ~candidates ~src ~dst ~k] grows the path
    [src — dst] by repeatedly inserting the candidate with the smallest
    detour until it visits [k] distinct nodes.  Candidates may include the
    endpoints (they are ignored).  Returns [None] when fewer than [k]
    distinct nodes are available or some needed distance is infinite. *)

val exact :
  dist:(int -> int -> float) ->
  candidates:int list ->
  src:int ->
  dst:int ->
  k:int ->
  walk option
(** Optimal k-stroll by Held–Karp over subsets of candidates.  Intended for
    tests: @raise Invalid_argument when more than 20 candidates remain after
    removing the endpoints. *)

val distinct_count : int list -> int
(** Number of distinct nodes in a walk. *)

val walk_cost : dist:(int -> int -> float) -> int list -> float
(** Recompute the cost of a node sequence under [dist]. *)
