type walk = { nodes : int list; cost : float }

let distinct_count nodes = List.length (List.sort_uniq Int.compare nodes)

let walk_cost ~dist nodes =
  let rec go acc = function
    | a :: (b :: _ as rest) -> go (acc +. dist a b) rest
    | _ -> acc
  in
  go 0.0 nodes

let cheapest_insertion ~dist ~candidates ~src ~dst ~k =
  Sof_obs.Obs.span "kstroll.cheapest_insertion" @@ fun () ->
  let pool =
    List.sort_uniq Int.compare
      (List.filter (fun v -> v <> src && v <> dst) candidates)
  in
  let base = if src = dst then 1 else 2 in
  if k > base + List.length pool then None
  else begin
    (* Path kept as a list; lengths stay tiny (k <= |C| + 1). *)
    let path = ref [ src; dst ] in
    let remaining = ref pool in
    let infeasible = ref false in
    let count = ref base in
    while !count < k && not !infeasible do
      (* Find the (candidate, position) pair with minimum detour cost. *)
      let best = ref None in
      List.iter
        (fun v ->
          let rec scan prefix = function
            | a :: (b :: _ as rest) ->
                let delta = dist a v +. dist v b -. dist a b in
                (match !best with
                | Some (d, _, _, _) when d <= delta -> ()
                | _ -> best := Some (delta, v, List.rev (a :: prefix), rest));
                scan (a :: prefix) rest
            | _ -> ()
          in
          scan [] !path)
        !remaining;
      match !best with
      | Some (delta, v, before, after) when delta < infinity ->
          path := before @ (v :: after);
          remaining := List.filter (fun x -> x <> v) !remaining;
          incr count
      | _ -> infeasible := true
    done;
    if !infeasible then None
    else
      (* Closed-walk convention (see the .mli): the trivial closed walk
         collapses to the single-node list [src] at cost 0; with
         intermediates the shared endpoint stays at both ends. *)
      let nodes =
        match !path with
        | [ a; b ] when src = dst && a = src && b = src -> [ src ]
        | p -> p
      in
      let cost = walk_cost ~dist nodes in
      if cost = infinity then None else Some { nodes; cost }
  end

let popcount =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0

let exact ~dist ~candidates ~src ~dst ~k =
  Sof_obs.Obs.span "kstroll.exact" @@ fun () ->
  let pool =
    Array.of_list
      (List.sort_uniq Int.compare
         (List.filter (fun v -> v <> src && v <> dst) candidates))
  in
  let m = Array.length pool in
  if m > 20 then invalid_arg "Kstroll.exact: too many candidates";
  let base = if src = dst then 1 else 2 in
  let need = max 0 (k - base) in
  if need > m then None
  else if need = 0 then begin
    (* Trivial closed walk: a single node, no edges, cost 0 — matching both
       the main branch below and [cheapest_insertion]. *)
    if src = dst then Some { nodes = [ src ]; cost = 0.0 }
    else
      let cost = dist src dst in
      if cost = infinity then None else Some { nodes = [ src; dst ]; cost }
  end
  else begin
    (* dp.(mask).(i): cheapest path from src visiting exactly the candidates
       in [mask], ending at pool.(i).  parent pointers reconstruct it. *)
    let full = (1 lsl m) - 1 in
    let dp = Array.make_matrix (full + 1) m infinity in
    let parent = Array.make_matrix (full + 1) m (-1) in
    for i = 0 to m - 1 do
      dp.(1 lsl i).(i) <- dist src pool.(i)
    done;
    for mask = 1 to full do
      if popcount mask <= need then
        for i = 0 to m - 1 do
          if mask land (1 lsl i) <> 0 && dp.(mask).(i) < infinity then
            for j = 0 to m - 1 do
              if mask land (1 lsl j) = 0 then begin
                let nmask = mask lor (1 lsl j) in
                let nd = dp.(mask).(i) +. dist pool.(i) pool.(j) in
                if nd < dp.(nmask).(j) then begin
                  dp.(nmask).(j) <- nd;
                  parent.(nmask).(j) <- i
                end
              end
            done
        done
    done;
    let best = ref None in
    for mask = 1 to full do
      if popcount mask = need then
        for i = 0 to m - 1 do
          if mask land (1 lsl i) <> 0 then begin
            let total = dp.(mask).(i) +. dist pool.(i) dst in
            match !best with
            | Some (c, _, _) when c <= total -> ()
            | _ -> if total < infinity then best := Some (total, mask, i)
          end
        done
    done;
    match !best with
    | None -> None
    | Some (cost, mask, last) ->
        let rec unwind mask i acc =
          let p = parent.(mask).(i) in
          if p = -1 then pool.(i) :: acc
          else unwind (mask lxor (1 lsl i)) p (pool.(i) :: acc)
        in
        let mids = unwind mask last [] in
        (* [mids] is non-empty here (need >= 1), so a closed walk keeps the
           shared endpoint at both ends, per the convention in the .mli. *)
        let nodes = (src :: mids) @ [ dst ] in
        Some { nodes; cost }
  end
