(** The online deployment scenario (Sections VII-B and VIII-C, Fig. 12).

    Requests arrive one at a time; every link and VM carries the load of the
    requests already embedded, and the next request is priced by the
    {e marginal} Fortz–Thorup cost of adding its demand — so congested
    resources look expensive and embeddings steer around them, exactly the
    adaptive-routing behaviour of the paper's cost model.  After each
    embedding the chosen links and VMs are charged, and we record the
    accumulated cost. *)

type config = {
  vms_per_dc : int;       (** paper: 5 *)
  demand : float;         (** Mbps per request; paper: 5 *)
  link_capacity : float;  (** Mbps; paper: 100 *)
  vm_capacity : float;    (** concurrent VNFs a VM host absorbs before congesting *)
  src_range : int * int;  (** candidate sources per request, inclusive *)
  dst_range : int * int;  (** destinations per request, inclusive *)
  chain_length : int;     (** paper: 3 *)
}

val softlayer_config : config
(** 13–17 destinations, 8–12 sources (the paper's SoftLayer setting). *)

val cogent_config : config
(** 20–60 destinations, 10–30 sources. *)

type step = {
  request : int;             (** 1-based arrival index *)
  cost : float;              (** marginal cost of this embedding; 0 when rejected *)
  accumulated : float;
  served : bool;
}

val augment :
  Sof_topology.Topology.t -> config -> Sof_graph.Graph.t * int list * int
(** [augment topo cfg] attaches [cfg.vms_per_dc] VM nodes to every data
    center of [topo] (unit-cost access links) and returns
    [(graph, vms, n_access)] where [vms] are the fresh VM node ids and
    [n_access] the number of original access nodes.  Shared with the
    streaming engine ({!Stream}) so both scenarios embed on the same
    substrate. *)

val draw_request :
  rng:Sof_util.Rng.t -> n_access:int -> config -> int list * int list
(** Draw one request's [(sources, dests)] — disjoint subsets of the
    access nodes, sized from [cfg.src_range] and [cfg.dst_range] but
    clamped to what the topology can provide: at least one source and
    one destination, at most [n_access] picks total.
    @raise Invalid_argument when [n_access < 2] — such a topology cannot
    host both a source and a destination. *)

val same_footprint :
  (int * int) list * int list -> (int * int) list * int list -> bool
(** Order- and orientation-insensitive equality of charged footprints
    [(paid edges, enabled VMs)]: edges are compared as a normalized
    multiset (per-context payments preserved), VMs as a set.  Exposed for
    the re-join accounting tests. *)

val run :
  ?pricing:[ `Marginal | `Hops ] ->
  rng:Sof_util.Rng.t ->
  Sof_topology.Topology.t ->
  config ->
  n_requests:int ->
  algo:(Sof.Problem.t -> Sof.Forest.t option) ->
  step list
(** [pricing] (default [`Marginal]) sets how each request's instance is
    priced: the Fortz-Thorup marginal cost of the load it would add (the
    paper's adaptive model), or flat hop counts ([`Hops]) — a
    congestion-blind strawman that loads up shortest paths and exists to
    demonstrate what the Section VII-B re-joins rescue.  Each step's
    instance is validated before its loads are committed. *)

val accumulated_series : step list -> float list

type adaptive_report = {
  steps : step list;
  reroutes : int;
      (** congestion-triggered re-join events that moved the footprint
          (set-compared; a same-footprint re-join does not count) *)
  peak_utilization : float;  (** highest link utilization ever observed *)
  final_ledger : Sof_cost.Ledger.t;
      (** the load ledger as the run left it — every committed forest's
          charges minus every rollback *)
  committed : Sof.Forest.t list;
      (** the live embeddings at the end of the run, most recent first;
          charging exactly their footprints into a fresh ledger must
          reproduce [final_ledger] (the conservation law the test suite
          checks) *)
}

val run_adaptive :
  ?pricing:[ `Marginal | `Hops ] ->
  rng:Sof_util.Rng.t ->
  ?utilization_threshold:float ->
  Sof_topology.Topology.t ->
  config ->
  n_requests:int ->
  algo:(Sof.Problem.t -> Sof.Forest.t option) ->
  adaptive_report
(** Like {!run}, plus the paper's Section VII-B congestion handling: after
    each arrival, any link whose utilization reaches
    [utilization_threshold] (default 0.9) triggers a re-join of the most
    recent forest crossing it — its loads are rolled back, the crossing
    segments are re-routed with {!Sof.Dynamic.reroute_link} against
    current marginal prices (congested links now look expensive), and the
    re-routed forest is committed instead.  At most one re-join per
    arrival keeps the control loop bounded. *)
