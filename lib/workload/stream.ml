module Graph = Sof_graph.Graph
module Metric = Sof_graph.Metric
module Rng = Sof_util.Rng
module Stats = Sof_util.Stats
module Timer = Sof_util.Timer
module Topology = Sof_topology.Topology
module Cost_model = Sof_cost.Cost_model
module Ledger = Sof_cost.Ledger
module Repair = Sof_resilience.Repair
module Obs = Sof_obs.Obs

type process =
  | Poisson of { rate : float }
  | Diurnal of { base : float; peak : float; period : float }
  | Flash of {
      base : float;
      burst_rate : float;
      burst_every : float;
      burst_len : float;
    }

type config = {
  workload : Online.config;
  process : process;
  mean_hold : float;
  horizon : float;
  max_utilization : float;
}

let default_config =
  {
    workload = Online.softlayer_config;
    process = Poisson { rate = 1.0 };
    mean_hold = 12.0;
    horizon = 40.0;
    max_utilization = 1.0;
  }

type request = {
  id : int;
  arrival : float;
  hold : float;
  sources : int list;
  dests : int list;
}

type event = Arrive of request | Depart of { id : int; time : float }

(* --- event script ----------------------------------------------------- *)

let rate_at process t =
  match process with
  | Poisson { rate } -> rate
  | Diurnal { base; peak; period } ->
      (* a full wave per [period], starting (and ending) at [base] *)
      base
      +. (peak -. base) *. 0.5
         *. (1.0 -. cos (2.0 *. Float.pi *. t /. period))
  | Flash { base; burst_rate; burst_every; burst_len } ->
      if Float.rem t burst_every < burst_len then burst_rate else base

let peak_rate = function
  | Poisson { rate } -> rate
  | Diurnal { base; peak; _ } -> Float.max base peak
  | Flash { base; burst_rate; _ } -> Float.max base burst_rate

let validate_config cfg =
  let pos name v =
    if not (v > 0.0) then
      invalid_arg (Printf.sprintf "Stream: %s must be positive (got %g)" name v)
  in
  (match cfg.process with
  | Poisson { rate } -> pos "rate" rate
  | Diurnal { base; peak; period } ->
      pos "base" base;
      pos "peak" peak;
      pos "period" period
  | Flash { base; burst_rate; burst_every; burst_len } ->
      pos "base" base;
      pos "burst_rate" burst_rate;
      pos "burst_every" burst_every;
      pos "burst_len" burst_len);
  pos "mean_hold" cfg.mean_hold;
  pos "horizon" cfg.horizon;
  pos "max_utilization" cfg.max_utilization

let event_time = function Arrive r -> r.arrival | Depart d -> d.time
let event_id = function Arrive r -> r.id | Depart d -> d.id

(* Departures sort before arrivals at the same instant: capacity freed by
   a departing request is available to the admission decision. *)
let event_rank = function Depart _ -> 0 | Arrive _ -> 1

let compare_events a b =
  match Float.compare (event_time a) (event_time b) with
  | 0 -> (
      match Int.compare (event_rank a) (event_rank b) with
      | 0 -> Int.compare (event_id a) (event_id b)
      | c -> c)
  | c -> c

(* Nonhomogeneous Poisson arrivals by thinning against the peak rate;
   every arrival also schedules its departure (past the horizon is fine —
   a full replay always drains the system). *)
let script ~rng ~n_access cfg =
  validate_config cfg;
  let pr = peak_rate cfg.process in
  let events = ref [] in
  let id = ref 0 in
  let t = ref 0.0 in
  let continue = ref true in
  while !continue do
    t := !t +. Rng.exponential rng pr;
    if !t >= cfg.horizon then continue := false
    else if Rng.uniform rng *. pr <= rate_at cfg.process !t then begin
      incr id;
      let sources, dests = Online.draw_request ~rng ~n_access cfg.workload in
      let hold = Rng.exponential rng (1.0 /. cfg.mean_hold) in
      let r = { id = !id; arrival = !t; hold; sources; dests } in
      events :=
        Depart { id = r.id; time = r.arrival +. hold } :: Arrive r :: !events
    end
  done;
  List.sort compare_events !events

(* --- footprints and the ledger ---------------------------------------- *)

(* A forest's charged footprint: normalized paid edges with per-context
   multiplicity, plus enabled VM nodes.  Charging a footprint into the
   ledger is exactly what [Online.run_core] does edge by edge. *)
type footprint = { fp_edges : ((int * int) * int) list; fp_vms : int list }

let footprint_of_forest f =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (u, v) ->
      let key = if u <= v then (u, v) else (v, u) in
      Hashtbl.replace tbl key
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    (Sof.Forest.paid_edges f);
  let fp_edges =
    List.sort
      (fun ((a1, b1), _) ((a2, b2), _) ->
        match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c)
      (Hashtbl.fold (fun e k acc -> (e, k) :: acc) tbl [])
  in
  { fp_edges; fp_vms = List.map fst (Sof.Forest.enabled_vms f) }

let charge ledger w ~sign fp =
  List.iter
    (fun ((u, v), k) ->
      Ledger.add_edge_load ledger u v
        (sign *. float_of_int k *. w.Online.demand))
    fp.fp_edges;
  List.iter (fun vm -> Ledger.add_node_load ledger vm sign) fp.fp_vms

(* Admission check: would committing [fp] keep every touched resource
   within the headroom threshold? *)
let fits ledger w ~max_utilization fp =
  let eps = 1e-9 in
  List.for_all
    (fun ((u, v), k) ->
      Ledger.edge_load ledger u v +. (float_of_int k *. w.Online.demand)
      <= (max_utilization *. w.Online.link_capacity) +. eps)
    fp.fp_edges
  && List.for_all
       (fun vm ->
         Ledger.node_load ledger vm +. 1.0
         <= (max_utilization *. w.Online.vm_capacity) +. eps)
       fp.fp_vms

(* Fortz–Thorup marginal cost of committing [fp] on the current loads —
   the congestion-aware price both engine modes are scored by. *)
let marginal_footprint_cost ledger w fp =
  let edge =
    List.fold_left
      (fun acc ((u, v), k) ->
        let load = Ledger.edge_load ledger u v in
        acc
        +. Cost_model.cost
             ~load:(load +. (float_of_int k *. w.Online.demand))
             ~capacity:w.Online.link_capacity
        -. Cost_model.cost ~load ~capacity:w.Online.link_capacity)
      0.0 fp.fp_edges
  in
  List.fold_left
    (fun acc vm ->
      let load = Ledger.node_load ledger vm in
      acc
      +. Cost_model.cost ~load:(load +. 1.0) ~capacity:w.Online.vm_capacity
      -. Cost_model.cost ~load ~capacity:w.Online.vm_capacity)
    edge fp.fp_vms

let footprint_peak ledger w fp =
  let peak =
    List.fold_left
      (fun acc ((u, v), _) ->
        Float.max acc (Ledger.edge_utilization ledger u v))
      0.0 fp.fp_edges
  in
  List.fold_left
    (fun acc vm ->
      Float.max acc (Ledger.node_load ledger vm /. w.Online.vm_capacity))
    peak fp.fp_vms

(* --- engine ------------------------------------------------------------ *)

type mode = Incremental | Batch of { reopt_every : int }
type rung = Spliced | Rescoped | Repriced

type outcome = {
  id : int;
  time : float;
  accepted : bool;
  rung : rung option;
  marginal_cost : float;
  wall_s : float;
  eval_wall_s : float;
}

type report = {
  arrivals : int;
  departures : int;
  accepted : int;
  rejected : int;
  acceptance_ratio : float;
  total_marginal_cost : float;
  amortized_cost : float;
  reopt_churn : float;
  reopt_rounds : int;
  spliced : int;
  rescoped : int;
  repriced : int;
  peak_utilization : float;
  live_peak : int;
  embed_wall_p50 : float;
  embed_wall_p95 : float;
  embed_wall_p99 : float;
  eval_wall_s : float;
  solve_wall_s : float;
  outcomes : outcome list;
  final_ledger : Ledger.t;
}

type live_entry = { forest : Sof.Forest.t; fp : footprint }

(* Saturated resources are priced at a large finite penalty rather than
   [infinity]: Dijkstra then still ranks paths (no inf - inf traps), and
   the [fits] check stays the single admission authority. *)
let penalty = 1e9

let serves_all dests (f : Sof.Forest.t) =
  List.for_all
    (fun d -> List.mem d f.Sof.Forest.problem.Sof.Problem.dests)
    dests

let run_script ?fdag ~mode topo cfg events =
  validate_config cfg;
  let fdag = match fdag with Some c -> c | None -> Sof.Fdag.create () in
  (match mode with
  | Batch { reopt_every } when reopt_every <= 0 ->
      invalid_arg "Stream: Batch reopt_every must be positive"
  | _ -> ());
  let w = cfg.workload in
  let graph0, vms, _n_access = Online.augment topo w in
  (* One physical graph, priced once at zero-load marginal cost: the
     incremental path's runs in the long-lived metric cache stay valid
     for the whole stream. *)
  let static_graph =
    Graph.map_weights graph0 (fun _ _ _ ->
        Cost_model.cost ~load:w.Online.demand ~capacity:w.Online.link_capacity)
  in
  let n = Graph.n static_graph in
  let static_node_cost = Array.make n 0.0 in
  List.iter
    (fun vm ->
      static_node_cost.(vm) <-
        Cost_model.cost ~load:1.0 ~capacity:w.Online.vm_capacity)
    vms;
  let node_capacity =
    Array.init n (fun v ->
        if List.mem v vms then w.Online.vm_capacity else 0.0)
  in
  let ledger =
    Ledger.create ~graph:static_graph ~link_capacity:w.Online.link_capacity
      ~node_capacity
  in
  let cache = Metric.Cache.create () in
  let live : (int, live_entry) Hashtbl.t = Hashtbl.create 64 in
  let arrivals = ref 0
  and departures = ref 0
  and accepted = ref 0
  and rejected = ref 0 in
  let spliced = ref 0 and rescoped = ref 0 and repriced = ref 0 in
  let total_marginal = ref 0.0 and reopt_churn = ref 0.0 in
  let reopt_rounds = ref 0 in
  let peak = ref 0.0 and live_peak = ref 0 in
  let walls = ref [] in
  let outcomes = ref [] in
  let mk_problem ~graph ~node_cost ~sources ~dests =
    Sof.Problem.make ~graph ~node_cost ~vms ~sources ~dests
      ~chain_length:w.Online.chain_length
  in
  (* Current marginal prices, with saturated resources at [penalty] —
     a fresh physical graph, so solves on it bypass the shared cache. *)
  let repriced_instance () =
    let graph =
      Graph.map_weights static_graph (fun u v _ ->
          let load = Ledger.edge_load ledger u v in
          if
            load +. w.Online.demand
            > cfg.max_utilization *. w.Online.link_capacity
          then penalty
          else
            Cost_model.cost ~load:(load +. w.Online.demand)
              ~capacity:w.Online.link_capacity
            -. Cost_model.cost ~load ~capacity:w.Online.link_capacity)
    in
    let node_cost = Array.make n 0.0 in
    List.iter
      (fun vm ->
        let load = Ledger.node_load ledger vm in
        node_cost.(vm) <-
          (if load +. 1.0 > cfg.max_utilization *. w.Online.vm_capacity then
             penalty
           else
             Cost_model.cost ~load:(load +. 1.0)
               ~capacity:w.Online.vm_capacity
             -. Cost_model.cost ~load ~capacity:w.Online.vm_capacity))
      vms;
    (graph, node_cost)
  in
  (* Cheap admission precheck: a chain needs [chain_length] distinct VMs
     with headroom; without them no embedding can fit. *)
  let precheck () =
    let free =
      List.fold_left
        (fun acc vm ->
          if
            Ledger.node_load ledger vm +. 1.0
            <= cfg.max_utilization *. w.Online.vm_capacity
          then acc + 1
          else acc)
        0 vms
    in
    free >= w.Online.chain_length
  in
  (* One [Fdag.eval] per candidate settles validity AND yields the ledger
     footprint — the ladder's rungs mostly resubmit shared walk prefixes,
     so a warm context re-evaluates only what the rung changed. *)
  let admit dests f =
    let r = Sof.Fdag.eval fdag f in
    if r.Sof.Fdag.valid && serves_all dests f then
      Some (f, { fp_edges = r.Sof.Fdag.fp_edges; fp_vms = r.Sof.Fdag.fp_vms })
    else None
  in
  (* Rung 1: single-destination seed solve plus grafts, all under the
     run-long cache on the statically priced graph. *)
  let splice sources dests =
    match dests with
    | [] -> None
    | d0 :: rest -> (
        match
          Sof.Sofda.solve_forest ~cache
            (mk_problem ~graph:static_graph ~node_cost:static_node_cost
               ~sources ~dests:[ d0 ])
        with
        | None -> None
        | Some f0 ->
            let upd, unserved = Sof.Dynamic.destinations_join ~cache f0 rest in
            if unserved = [] then admit dests upd.Sof.Dynamic.forest else None)
  in
  (* Rung 2: scoped from-scratch re-solve, still sharing the cache. *)
  let rescope sources dests =
    match
      Repair.full_resolve ~cache
        (mk_problem ~graph:static_graph ~node_cost:static_node_cost ~sources
           ~dests)
    with
    | Some (_, f, []) -> admit dests f
    | _ -> None
  in
  (* Rung 3: load-aware re-solve at current marginal prices. *)
  let reprice_solve sources dests =
    let graph, node_cost = repriced_instance () in
    match Sof.Sofda.solve_forest (mk_problem ~graph ~node_cost ~sources ~dests)
    with
    | Some f -> admit dests f
    | None -> None
  in
  let commit id forest fp =
    let cost = marginal_footprint_cost ledger w fp in
    charge ledger w ~sign:1.0 fp;
    peak := Float.max !peak (footprint_peak ledger w fp);
    Hashtbl.replace live id { forest; fp };
    live_peak := max !live_peak (Hashtbl.length live);
    total_marginal := !total_marginal +. cost;
    cost
  in
  (* The escalation ladder for one arrival; returns the rung and the
     admitted forest, or [None] for a rejection. *)
  let serve_incremental sources dests =
    if not (precheck ()) then None
    else
      let structural =
        match splice sources dests with
        | Some fx -> Some (Spliced, fx)
        | None -> (
            match rescope sources dests with
            | Some fx -> Some (Rescoped, fx)
            | None -> None)
      in
      match structural with
      | Some (rung, (f, fp))
        when fits ledger w ~max_utilization:cfg.max_utilization fp ->
          Some (rung, f, fp)
      | _ -> (
          (* structural conflict, or a capacity conflict: one load-aware
             repriced attempt before rejecting *)
          match reprice_solve sources dests with
          | Some (f, fp)
            when fits ledger w ~max_utilization:cfg.max_utilization fp ->
              Some (Repriced, f, fp)
          | _ -> None)
  in
  let serve_batch sources dests =
    if not (precheck ()) then None
    else
      match reprice_solve sources dests with
      | Some (f, fp)
        when fits ledger w ~max_utilization:cfg.max_utilization fp ->
          Some (Repriced, f, fp)
      | _ -> None
  in
  (* Periodic batch re-optimization: rebuild the ledger from scratch,
     re-embedding every live request at current marginal prices in id
     order; a request whose re-embed fails keeps its old forest. *)
  let reoptimize () =
    incr reopt_rounds;
    Obs.count "stream.reopt_rounds" 1;
    let ids =
      List.sort Int.compare
        (Hashtbl.fold (fun id _ acc -> id :: acc) live [])
    in
    Ledger.reset ledger;
    List.iter
      (fun id ->
        let entry = Hashtbl.find live id in
        let p = entry.forest.Sof.Forest.problem in
        let sources = p.Sof.Problem.sources and dests = p.Sof.Problem.dests in
        let replacement =
          match reprice_solve sources dests with
          | Some (f, fp)
            when fits ledger w ~max_utilization:cfg.max_utilization fp ->
              Some (f, fp)
          | _ -> None
        in
        match replacement with
        | Some (f, fp) ->
            charge ledger w ~sign:1.0 fp;
            peak := Float.max !peak (footprint_peak ledger w fp);
            reopt_churn := !reopt_churn +. Repair.churn ~old_:entry.forest f;
            Obs.count "stream.reopt_reembedded" 1;
            Hashtbl.replace live id { forest = f; fp }
        | None -> charge ledger w ~sign:1.0 entry.fp)
      ids
  in
  let serve =
    match mode with
    | Incremental -> serve_incremental
    | Batch _ -> serve_batch
  in
  List.iter
    (fun ev ->
      match ev with
      | Depart { id; _ } -> (
          match Hashtbl.find_opt live id with
          | None -> () (* rejected arrival: nothing was held *)
          | Some entry ->
              incr departures;
              Obs.count "stream.departures" 1;
              charge ledger w ~sign:(-1.0) entry.fp;
              Hashtbl.remove live id)
      | Arrive r ->
          incr arrivals;
          Obs.count "stream.arrivals" 1;
          let e0 = Sof.Fdag.eval_wall_s fdag in
          let result, wall =
            Timer.time (fun () -> serve r.sources r.dests)
          in
          let eval_wall = Sof.Fdag.eval_wall_s fdag -. e0 in
          walls := wall :: !walls;
          Obs.record "stream.embed_latency" wall;
          let outcome =
            match result with
            | Some (rung, forest, fp) ->
                incr accepted;
                Obs.count "stream.accepted" 1;
                (match rung with
                | Spliced ->
                    incr spliced;
                    Obs.count "stream.rung_spliced" 1
                | Rescoped ->
                    incr rescoped;
                    Obs.count "stream.rung_rescoped" 1
                | Repriced ->
                    incr repriced;
                    Obs.count "stream.rung_repriced" 1);
                let cost = commit r.id forest fp in
                {
                  id = r.id;
                  time = r.arrival;
                  accepted = true;
                  rung = Some rung;
                  marginal_cost = cost;
                  wall_s = wall;
                  eval_wall_s = eval_wall;
                }
            | None ->
                incr rejected;
                Obs.count "stream.rejected" 1;
                {
                  id = r.id;
                  time = r.arrival;
                  accepted = false;
                  rung = None;
                  marginal_cost = 0.0;
                  wall_s = wall;
                  eval_wall_s = eval_wall;
                }
          in
          outcomes := outcome :: !outcomes;
          (match mode with
          | Batch { reopt_every } when !arrivals mod reopt_every = 0 ->
              reoptimize ()
          | _ -> ()))
    events;
  let pct p =
    match !walls with [] -> 0.0 | ws -> Stats.percentile p ws
  in
  {
    arrivals = !arrivals;
    departures = !departures;
    accepted = !accepted;
    rejected = !rejected;
    acceptance_ratio =
      (if !arrivals = 0 then 1.0
       else float_of_int !accepted /. float_of_int !arrivals);
    total_marginal_cost = !total_marginal;
    amortized_cost =
      (if !accepted = 0 then 0.0
       else !total_marginal /. float_of_int !accepted);
    reopt_churn = !reopt_churn;
    reopt_rounds = !reopt_rounds;
    spliced = !spliced;
    rescoped = !rescoped;
    repriced = !repriced;
    peak_utilization = !peak;
    live_peak = !live_peak;
    embed_wall_p50 = pct 50.0;
    embed_wall_p95 = pct 95.0;
    embed_wall_p99 = pct 99.0;
    eval_wall_s =
      List.fold_left
        (fun acc (o : outcome) -> acc +. o.eval_wall_s)
        0.0 !outcomes;
    solve_wall_s =
      List.fold_left
        (fun acc (o : outcome) ->
          acc +. Float.max 0.0 (o.wall_s -. o.eval_wall_s))
        0.0 !outcomes;
    outcomes = List.rev !outcomes;
    final_ledger = ledger;
  }

let run ~mode ~rng topo cfg =
  let _, _, n_access = Online.augment topo cfg.workload in
  run_script ~mode topo cfg (script ~rng ~n_access cfg)
