(** Streaming admission engine: a long-lived request stream with arrivals
    {e and} departures, admission control against capacity headroom, and
    incremental embedding.

    Where {!Online} replays the paper's arrivals-only Fig. 12 scenario,
    this module runs the full online service model of the admission
    literature (Lukovszki & Schmid, {e Online Admission Control and
    Embedding of Service Chains}): requests arrive over continuous time
    under a seeded stochastic process (Poisson, diurnal wave, or flash
    crowd), hold their resources for an exponential lifetime, and depart,
    releasing every load they charged.  An admission controller accepts
    or rejects each arrival against the link/VM capacity headroom in the
    {!Sof_cost.Ledger}; accepted requests are embedded {e incrementally}
    — a single-destination seed solve plus
    {!Sof.Dynamic.destinations_join} grafts under one long-lived
    {!Sof_graph.Metric.Cache} spanning the whole run — escalating through
    {!Sof_resilience.Repair.full_resolve} on structural conflict and a
    load-aware repriced re-solve on capacity conflict before rejecting.

    The engine is deterministic: all randomness is consumed at
    {!script}-generation time, so the same event script can be served by
    the incremental and the periodic-batch engines for a like-for-like
    acceptance-ratio and amortized-cost comparison. *)

(** Arrival process, in requests per unit time. *)
type process =
  | Poisson of { rate : float }  (** homogeneous: constant [rate] *)
  | Diurnal of { base : float; peak : float; period : float }
      (** sinusoidal wave between [base] and [peak] with [period] *)
  | Flash of {
      base : float;
      burst_rate : float;
      burst_every : float;
      burst_len : float;
    }
      (** [base] rate, spiking to [burst_rate] for the first [burst_len]
          of every [burst_every] window (flash crowds) *)

type config = {
  workload : Online.config;
      (** per-request shape: source/destination ranges, demand,
          capacities, chain length, VMs per data center *)
  process : process;
  mean_hold : float;  (** mean exponential holding time of a request *)
  horizon : float;    (** arrivals are generated in [0, horizon) *)
  max_utilization : float;
      (** admission headroom: a request is only committed while every
          touched link stays at [load <= max_utilization *
          link_capacity] and every touched VM at [load <=
          max_utilization * vm_capacity] *)
}

val default_config : config
(** SoftLayer-shaped default: {!Online.softlayer_config} workload,
    Poisson arrivals at rate 1 with mean hold 12 (≈ 12 concurrent
    requests in steady state), horizon 40, full-capacity admission
    ([max_utilization = 1.0]). *)

type request = {
  id : int;  (** 1-based, in arrival order *)
  arrival : float;
  hold : float;
  sources : int list;
  dests : int list;
}

type event =
  | Arrive of request
  | Depart of { id : int; time : float }
      (** departures of rejected requests are ignored by the engine *)

val script : rng:Sof_util.Rng.t -> n_access:int -> config -> event list
(** Generate the full, time-ordered event script: arrivals drawn from
    [config.process] by thinning against its peak rate, each with an
    exponential holding time and a request drawn by
    {!Online.draw_request}; every arrival's departure is included even
    when it falls past the horizon, so a full replay always drains the
    system.  Simultaneous events order departures first (capacity is
    freed before the next admission decision).
    @raise Invalid_argument on non-positive rates, horizon, or mean
    hold. *)

(** {2 Footprints}

    The charged resource footprint of a deployed forest — the unit the
    ledger accounting below works in, shared with the serving layer
    ({!Sof_serve}) and the journal-replay oracle. *)

type footprint = {
  fp_edges : ((int * int) * int) list;
      (** normalized [(u, v)] with [u <= v], with per-context multiplicity,
          sorted — deterministic for a given forest *)
  fp_vms : int list;  (** enabled VM nodes *)
}

val footprint_of_forest : Sof.Forest.t -> footprint

val charge :
  Sof_cost.Ledger.t -> Online.config -> sign:float -> footprint -> unit
(** Charge ([sign = 1.0]) or release ([sign = -1.0]) the footprint's
    loads: [demand] per edge context, 1.0 per enabled VM. *)

val fits :
  Sof_cost.Ledger.t ->
  Online.config ->
  max_utilization:float ->
  footprint ->
  bool
(** Would committing the footprint keep every touched resource within
    the headroom threshold (with a 1e-9 epsilon)? *)

val marginal_footprint_cost :
  Sof_cost.Ledger.t -> Online.config -> footprint -> float
(** Fortz–Thorup marginal cost of committing the footprint at current
    loads. *)

val footprint_peak : Sof_cost.Ledger.t -> Online.config -> footprint -> float
(** Highest utilization over the footprint's resources after commit. *)

(** How accepted requests are embedded. *)
type mode =
  | Incremental
      (** seed solve + destination grafts under one run-long metric
          cache; escalation ladder on conflict; no re-optimization *)
  | Batch of { reopt_every : int }
      (** every arrival is a from-scratch solve at current marginal
          prices, and every [reopt_every] arrivals all live requests are
          re-embedded from scratch (the periodic batch re-optimization
          strawman the incremental path is compared against).
          @raise Invalid_argument when [reopt_every <= 0]. *)

(** Which escalation-ladder rung served an accepted request. *)
type rung =
  | Spliced   (** incremental seed + grafts, on the cache-shared graph *)
  | Rescoped  (** {!Sof_resilience.Repair.full_resolve} under the cache *)
  | Repriced  (** load-aware re-solve at marginal prices (cache miss) *)

type outcome = {
  id : int;
  time : float;
  accepted : bool;
  rung : rung option;     (** [None] when rejected *)
  marginal_cost : float;  (** Fortz–Thorup marginal cost of the committed
                              footprint at admission time; 0 when rejected *)
  wall_s : float;         (** wall-clock spent deciding/embedding *)
  eval_wall_s : float;    (** share of [wall_s] spent inside
                              {!Sof.Fdag.eval} — the candidate validity
                              and footprint evaluations; the rest is
                              solver work *)
}

type report = {
  arrivals : int;
  departures : int;  (** departures of {e accepted} requests *)
  accepted : int;
  rejected : int;
  acceptance_ratio : float;  (** accepted / arrivals; 1 when no arrivals *)
  total_marginal_cost : float;
  amortized_cost : float;
      (** total marginal cost per accepted request — the
          incremental-vs-batch comparison metric *)
  reopt_churn : float;
      (** batch mode: summed {!Sof_resilience.Repair.churn} of every
          re-optimization re-embed; 0 in incremental mode *)
  reopt_rounds : int;
  spliced : int;
  rescoped : int;
  repriced : int;
  peak_utilization : float;  (** highest committed link/VM utilization *)
  live_peak : int;           (** max concurrently held requests *)
  embed_wall_p50 : float;
  embed_wall_p95 : float;
  embed_wall_p99 : float;  (** per-arrival decision latency, seconds *)
  eval_wall_s : float;
      (** summed per-arrival evaluation wall (the {!Sof.Fdag.eval}
          share of every decision) *)
  solve_wall_s : float;
      (** summed per-arrival solver wall (decision wall minus the
          evaluation share) *)
  outcomes : outcome list;   (** per arrival, in arrival order *)
  final_ledger : Sof_cost.Ledger.t;
      (** after a full script replay every departure has fired, so all
          loads must be back to zero — the conservation law the test
          suite checks *)
}

val run_script :
  ?fdag:Sof.Fdag.t ->
  mode:mode ->
  Sof_topology.Topology.t ->
  config ->
  event list ->
  report
(** Serve a prepared script (from {!script}) — use this to compare modes
    on the identical request sequence.

    Candidate admission goes through one {!Sof.Fdag.t} evaluation
    context for the whole run (pass [fdag] to share it wider): a single
    {!Sof.Fdag.eval} per candidate settles structural validity and
    yields the ledger footprint, bit-identical to the legacy
    {!Sof.Validate.is_valid} + {!footprint_of_forest} pair, and
    consecutive candidates re-evaluate only the walks the rung
    changed. *)

val run :
  mode:mode -> rng:Sof_util.Rng.t -> Sof_topology.Topology.t -> config -> report
(** [script] + [run_script]. *)
