module Graph = Sof_graph.Graph
module Rng = Sof_util.Rng
module Topology = Sof_topology.Topology
module Cost_model = Sof_cost.Cost_model
module Ledger = Sof_cost.Ledger

type config = {
  vms_per_dc : int;
  demand : float;
  link_capacity : float;
  vm_capacity : float;
  src_range : int * int;
  dst_range : int * int;
  chain_length : int;
}

let softlayer_config =
  {
    vms_per_dc = 5;
    demand = 5.0;
    link_capacity = 100.0;
    vm_capacity = 5.0;
    src_range = (8, 12);
    dst_range = (13, 17);
    chain_length = 3;
  }

let cogent_config =
  {
    vms_per_dc = 5;
    demand = 5.0;
    link_capacity = 100.0;
    vm_capacity = 5.0;
    src_range = (10, 30);
    dst_range = (20, 60);
    chain_length = 3;
  }

type step = { request : int; cost : float; accumulated : float; served : bool }

(* Augment the topology with [vms_per_dc] VM nodes per data center; the
   access link of a VM is charged like any other link. *)
let augment topo cfg =
  let base = topo.Topology.graph in
  let n_access = Graph.n base in
  let vm_edges = ref [] in
  let vms = ref [] in
  List.iteri
    (fun i dc ->
      for j = 0 to cfg.vms_per_dc - 1 do
        let vm = n_access + (i * cfg.vms_per_dc) + j in
        vms := vm :: !vms;
        vm_edges := (vm, dc, 1.0) :: !vm_edges
      done)
    topo.Topology.dcs;
  let n = n_access + (List.length topo.Topology.dcs * cfg.vms_per_dc) in
  let graph = Graph.create ~n ~edges:(Graph.edges base @ !vm_edges) in
  (graph, List.rev !vms, n_access)

(* Draw one request's disjoint source and destination sets from the
   access nodes.  The configured ranges are clamped to what the topology
   can actually provide: at least one source and one destination, never
   more picks than access nodes.  Topologies with a single access node
   cannot host a request at all. *)
let draw_request ~rng ~n_access cfg =
  if n_access < 2 then
    invalid_arg
      (Printf.sprintf
         "Online.draw_request: topology has %d access node(s); a request \
          needs at least 2 (one source, one destination)"
         n_access);
  let lo_s, hi_s = cfg.src_range and lo_d, hi_d = cfg.dst_range in
  let n_src = max 1 (min (Rng.range rng lo_s hi_s) (n_access - 1)) in
  let n_dst = max 1 (min (Rng.range rng lo_d hi_d) (n_access - n_src)) in
  let picks = Rng.sample_without_replacement rng (n_src + n_dst) n_access in
  let rec split k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | x :: rest -> split (k - 1) (x :: acc) rest
    | [] -> (List.rev acc, [])
  in
  split n_src [] picks

(* Canonical form of an embedding's charged footprint: paid edges as an
   orientation-normalized sorted multiset (an edge paid twice for two
   traffic contexts appears twice), enabled VMs as a sorted list.  Two
   forests with equal canonical footprints charge the ledger
   identically. *)
let canonical_footprint edges vms =
  let cmp_edge (a1, b1) (a2, b2) =
    match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c
  in
  ( List.sort cmp_edge
      (List.map (fun (a, b) -> if a <= b then (a, b) else (b, a)) edges),
    List.sort Int.compare vms )

let same_footprint (e1, v1) (e2, v2) =
  canonical_footprint e1 v1 = canonical_footprint e2 v2

let marginal_edge_cost ledger cfg u v =
  let load = Ledger.edge_load ledger u v in
  Cost_model.cost ~load:(load +. cfg.demand) ~capacity:cfg.link_capacity
  -. Cost_model.cost ~load ~capacity:cfg.link_capacity

let marginal_node_cost ledger cfg v =
  let load = Ledger.node_load ledger v in
  Cost_model.cost ~load:(load +. 1.0) ~capacity:cfg.vm_capacity
  -. Cost_model.cost ~load ~capacity:cfg.vm_capacity

(* Core loop shared by [run] and [run_adaptive].  [on_commit] sees every
   embedded forest right after its loads are charged and may transform the
   ledger state (rerouting). *)
let run_core ?(pricing = `Marginal) ~rng topo cfg ~n_requests ~algo ~on_commit
    () =
  let graph, vms, n_access = augment topo cfg in
  let node_capacity =
    Array.init (Graph.n graph) (fun v ->
        if v >= n_access then cfg.vm_capacity else 0.0)
  in
  let ledger =
    Ledger.create ~graph ~link_capacity:cfg.link_capacity ~node_capacity
  in
  let steps = ref [] in
  let accumulated = ref 0.0 in
  for request = 1 to n_requests do
    let sources, dests = draw_request ~rng ~n_access cfg in
    (* [`Marginal] prices each resource by the Fortz-Thorup marginal cost
       of adding this request (the paper's online model); [`Hops] is the
       congestion-blind strawman used to showcase re-joins. *)
    let priced =
      match pricing with
      | `Marginal ->
          Graph.map_weights graph (fun u v _ ->
              marginal_edge_cost ledger cfg u v)
      | `Hops -> Graph.map_weights graph (fun _ _ _ -> 1.0)
    in
    let node_cost = Array.make (Graph.n graph) 0.0 in
    List.iter
      (fun vm ->
        node_cost.(vm) <-
          (match pricing with
          | `Marginal -> marginal_node_cost ledger cfg vm
          | `Hops -> 1.0))
      vms;
    let problem =
      Sof.Problem.make ~graph:priced ~node_cost ~vms ~sources ~dests
        ~chain_length:cfg.chain_length
    in
    let step =
      match algo problem with
      | None -> { request; cost = 0.0; accumulated = !accumulated; served = false }
      | Some forest ->
          (match Sof.Validate.check forest with
          | Error es ->
              failwith
                ("Online.run: invalid forest: "
                ^ String.concat "; " (List.map Sof.Validate.to_string es))
          | Ok () -> ());
          let cost = Sof.Forest.total_cost forest in
          (* Commit loads exactly as the cost was counted. *)
          List.iter
            (fun (u, v) -> Ledger.add_edge_load ledger u v cfg.demand)
            (Sof.Forest.paid_edges forest);
          List.iter
            (fun (vm, _) -> Ledger.add_node_load ledger vm 1.0)
            (Sof.Forest.enabled_vms forest);
          accumulated := !accumulated +. cost;
          on_commit ~ledger ~graph ~vms forest;
          { request; cost; accumulated = !accumulated; served = true }
    in
    steps := step :: !steps
  done;
  (List.rev !steps, ledger)

let run ?pricing ~rng topo cfg ~n_requests ~algo =
  fst
    (run_core ?pricing ~rng topo cfg ~n_requests ~algo
       ~on_commit:(fun ~ledger:_ ~graph:_ ~vms:_ _ -> ())
       ())

let accumulated_series steps = List.map (fun s -> s.accumulated) steps

type adaptive_report = {
  steps : step list;
  reroutes : int;
  peak_utilization : float;
  final_ledger : Ledger.t;
  committed : Sof.Forest.t list;
}
let run_adaptive ?pricing ~rng ?(utilization_threshold = 0.9) topo cfg
    ~n_requests ~algo =
  (* Committed forests, most recent first, with the loads they charged. *)
  let committed : (Sof.Forest.t * (int * int) list * int list) list ref =
    ref []
  in
  let reroutes = ref 0 in
  let peak = ref 0.0 in
  let rollback ledger (edges, vms) =
    List.iter
      (fun (u, v) -> Ledger.add_edge_load ledger u v (-.cfg.demand))
      edges;
    List.iter (fun vm -> Ledger.add_node_load ledger vm (-1.0)) vms
  in
  let commit ledger forest =
    let edges = Sof.Forest.paid_edges forest in
    let vms = List.map fst (Sof.Forest.enabled_vms forest) in
    List.iter (fun (u, v) -> Ledger.add_edge_load ledger u v cfg.demand) edges;
    List.iter (fun vm -> Ledger.add_node_load ledger vm 1.0) vms;
    (edges, vms)
  in
  (* Hot resources above the threshold, hottest first: links by utilization,
     VM hosts by node load over [vm_capacity].  Several are returned because
     the hottest spot may have no alternative (a pendant city's only links)
     — the re-join then tries the next one. *)
  let hot_resources ledger graph vms =
    let acc = ref [] in
    let consider util what =
      peak := max !peak util;
      if util >= utilization_threshold then acc := (util, what) :: !acc
    in
    Graph.iter_edges graph (fun u v _ ->
        consider (Ledger.edge_utilization ledger u v) (`Link (u, v)));
    List.iter
      (fun vm ->
        consider (Ledger.node_load ledger vm /. cfg.vm_capacity) (`Vm vm))
      vms;
    List.sort (fun (a, _) (b, _) -> Float.compare b a) !acc
  in
  (* One re-join attempt on a hot resource: roll back the most recent
     forest touching it, re-route (rule 5) or relocate the VNF (rule 6)
     against current marginal prices, and commit whatever results.  Returns
    true when the forest actually changed. *)
  let attempt_rejoin ledger graph vms hot =
    let touches (_, es, enabled_vms) =
      match hot with
      | `Link (u, v) ->
          let key = (min u v, max u v) in
          List.exists (fun (a, b) -> (min a b, max a b) = key) es
      | `Vm vm -> List.mem vm enabled_vms
    in
    match List.find_opt touches !committed with
    | None -> false
    | Some ((old_forest, old_edges, old_vms) as entry) -> (
        rollback ledger (old_edges, old_vms);
        (* re-price the instance at current (post-rollback) loads *)
        let priced =
          Graph.map_weights graph (fun a b _ -> marginal_edge_cost ledger cfg a b)
        in
        let node_cost = Array.make (Graph.n graph) 0.0 in
        List.iter
          (fun vm -> node_cost.(vm) <- marginal_node_cost ledger cfg vm)
          vms;
        let old_problem = old_forest.Sof.Forest.problem in
        let problem =
          Sof.Problem.make ~graph:priced ~node_cost ~vms
            ~sources:old_problem.Sof.Problem.sources
            ~dests:old_problem.Sof.Problem.dests
            ~chain_length:old_problem.Sof.Problem.chain_length
        in
        let refreshed =
          Sof.Forest.make problem ~walks:old_forest.Sof.Forest.walks
            ~delivery:old_forest.Sof.Forest.delivery
        in
        (* Rule 5 for congested links, rule 6 for overloaded VMs.  The
           cache shares Dijkstra runs between the rule's own grafting
           pass and its unserved-destination regraft on this repriced
           graph. *)
        let cache = Sof_graph.Metric.Cache.create () in
        let attempt =
          match hot with
          | `Link (u, v) -> Sof.Dynamic.reroute_link ~cache refreshed ~u ~v
          | `Vm vm -> Sof.Dynamic.relocate_vm ~cache refreshed ~vm
        in
        match attempt with
        | Some upd when Sof.Validate.is_valid upd.Sof.Dynamic.forest ->
            (* A re-join counts as a reroute only when the physical
               footprint actually moved: the lists are compared as
               canonical sets, so a same-footprint result returned in a
               different order is not a reroute. *)
            let changed =
              not
                (same_footprint
                   ( Sof.Forest.paid_edges upd.Sof.Dynamic.forest,
                     List.map fst
                       (Sof.Forest.enabled_vms upd.Sof.Dynamic.forest) )
                   (old_edges, old_vms))
            in
            if changed then incr reroutes;
            let footprint = commit ledger upd.Sof.Dynamic.forest in
            committed :=
              List.map
                (fun e ->
                  if e == entry then
                    (upd.Sof.Dynamic.forest, fst footprint, snd footprint)
                  else e)
                !committed;
            changed
        | _ ->
            (* keep the original embedding *)
            ignore (commit ledger old_forest);
            false)
  in
  let on_commit ~ledger ~graph ~vms forest =
    let edges = Sof.Forest.paid_edges forest in
    let enabled = List.map fst (Sof.Forest.enabled_vms forest) in
    committed := (forest, edges, enabled) :: !committed;
    let candidates = hot_resources ledger graph vms in
    let rec try_first k = function
      | [] -> ()
      | _ when k = 0 -> ()
      | (_, hot) :: rest ->
          if not (attempt_rejoin ledger graph vms hot) then
            try_first (k - 1) rest
    in
    try_first 5 candidates
  in
  let steps, ledger =
    run_core ?pricing ~rng topo cfg ~n_requests ~algo ~on_commit ()
  in
  {
    steps;
    reroutes = !reroutes;
    peak_utilization = !peak;
    final_ledger = ledger;
    committed = List.map (fun (f, _, _) -> f) !committed;
  }
