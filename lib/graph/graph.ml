(* Flat CSR adjacency: one offsets array plus parallel target/weight
   arrays.  Row [u] lives in [off.(u) .. off.(u+1)-1] of [tgt]/[wgt] and is
   sorted by target, so neighbor iteration order matches the historical
   sorted (target, weight) tuple representation bit-for-bit.  [wgt] is a
   plain [float array] and therefore unboxed. *)
type t = {
  n : int;
  m : int;
  off : int array; (* length n+1 *)
  tgt : int array; (* length 2m, row-sorted by target *)
  wgt : float array; (* length 2m, parallel to tgt *)
}

let validate_edge ctx n (u, v, w) =
  if u < 0 || u >= n then
    invalid_arg
      (Printf.sprintf "Graph.%s: endpoint out of range (%d,%d) with n=%d" ctx u
         v n)
  else if v < 0 || v >= n then
    invalid_arg
      (Printf.sprintf "Graph.%s: endpoint out of range (%d,%d) with n=%d" ctx u
         v n);
  if u = v then invalid_arg (Printf.sprintf "Graph.%s: self-loop" ctx);
  if w < 0.0 || Float.is_nan w then
    invalid_arg (Printf.sprintf "Graph.%s: negative or NaN weight" ctx)

(* Build the CSR arrays from [m] undirected edges delivered (twice) by
   [iter2].  Rows are insertion-sorted by target: degrees are small and the
   sort is monomorphic on int keys, replacing the old polymorphic
   [Array.sort compare] over boxed tuples. *)
let build ~n ~m iter2 =
  let off = Array.make (n + 1) 0 in
  iter2 (fun u v _ ->
      off.(u + 1) <- off.(u + 1) + 1;
      off.(v + 1) <- off.(v + 1) + 1);
  for u = 0 to n - 1 do
    off.(u + 1) <- off.(u + 1) + off.(u)
  done;
  let tgt = Array.make (2 * m) 0 in
  let wgt = Array.make (2 * m) 0.0 in
  let fill = Array.sub off 0 n in
  iter2 (fun u v w ->
      let iu = fill.(u) in
      fill.(u) <- iu + 1;
      tgt.(iu) <- v;
      wgt.(iu) <- w;
      let iv = fill.(v) in
      fill.(v) <- iv + 1;
      tgt.(iv) <- u;
      wgt.(iv) <- w);
  for u = 0 to n - 1 do
    let lo = off.(u) and hi = off.(u + 1) in
    for i = lo + 1 to hi - 1 do
      let t = tgt.(i) and w = wgt.(i) in
      let j = ref (i - 1) in
      while !j >= lo && tgt.(!j) > t do
        tgt.(!j + 1) <- tgt.(!j);
        wgt.(!j + 1) <- wgt.(!j);
        decr j
      done;
      tgt.(!j + 1) <- t;
      wgt.(!j + 1) <- w
    done
  done;
  { n; m; off; tgt; wgt }

let create ~n ~edges =
  if n < 0 then invalid_arg "Graph.create: negative n";
  List.iter (validate_edge "create" n) edges;
  (* Collapse parallel edges keeping the cheapest: deduplicate via a map keyed
     by the normalized endpoint pair. *)
  let tbl = Hashtbl.create (List.length edges * 2) in
  List.iter
    (fun (u, v, w) ->
      let key = if u < v then (u, v) else (v, u) in
      match Hashtbl.find_opt tbl key with
      | Some w' when w' <= w -> ()
      | _ -> Hashtbl.replace tbl key w)
    edges;
  let m = Hashtbl.length tbl in
  build ~n ~m (fun f -> Hashtbl.iter (fun (u, v) w -> f u v w) tbl)

let create_simple ~n ~edges =
  if n < 0 then invalid_arg "Graph.create_simple: negative n";
  List.iter (validate_edge "create_simple" n) edges;
  let m = List.length edges in
  let g = build ~n ~m (fun f -> List.iter (fun (u, v, w) -> f u v w) edges) in
  (* The caller promised a duplicate-free edge set; with rows sorted by
     target a violation shows up as adjacent equal targets. *)
  for u = 0 to n - 1 do
    for i = g.off.(u) + 1 to g.off.(u + 1) - 1 do
      if g.tgt.(i) = g.tgt.(i - 1) then
        invalid_arg
          (Printf.sprintf "Graph.create_simple: duplicate edge (%d,%d)" u
             g.tgt.(i))
    done
  done;
  g

let n g = g.n
let m g = g.m

let iter_neighbors g u f =
  for i = g.off.(u) to g.off.(u + 1) - 1 do
    f g.tgt.(i) g.wgt.(i)
  done

let fold_neighbors g u f init =
  let acc = ref init in
  for i = g.off.(u) to g.off.(u + 1) - 1 do
    acc := f !acc g.tgt.(i) g.wgt.(i)
  done;
  !acc

let neighbors g u =
  let acc = ref [] in
  for i = g.off.(u + 1) - 1 downto g.off.(u) do
    acc := (g.tgt.(i), g.wgt.(i)) :: !acc
  done;
  !acc

let degree g u = g.off.(u + 1) - g.off.(u)

let edge_weight g u v =
  if u < 0 || u >= g.n || v < 0 || v >= g.n then None
  else begin
    (* Rows are sorted by target: binary search. *)
    let lo = ref g.off.(u) and hi = ref (g.off.(u + 1) - 1) in
    let found = ref None in
    while !found = None && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let t = g.tgt.(mid) in
      if t = v then found := Some g.wgt.(mid)
      else if t < v then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  end

let mem_edge g u v = edge_weight g u v <> None

let iter_edges g f =
  for u = 0 to g.n - 1 do
    for i = g.off.(u) to g.off.(u + 1) - 1 do
      let v = g.tgt.(i) in
      if u < v then f u v g.wgt.(i)
    done
  done

let edges g =
  let acc = ref [] in
  iter_edges g (fun u v w -> acc := (u, v, w) :: !acc);
  List.rev !acc

let total_weight g =
  let acc = ref 0.0 in
  iter_edges g (fun _ _ w -> acc := !acc +. w);
  !acc

(* iter_edges emits each endpoint pair exactly once, so the rebuilt edge
   sets below are duplicate-free by construction and can skip dedup. *)
let map_weights g f =
  let es = ref [] in
  iter_edges g (fun u v w -> es := (u, v, f u v w) :: !es);
  create_simple ~n:g.n ~edges:!es

let filter_edges g keep =
  let es = ref [] in
  iter_edges g (fun u v w -> if keep u v w then es := (u, v, w) :: !es);
  create_simple ~n:g.n ~edges:!es

let add_edges g extra = create ~n:g.n ~edges:(edges g @ extra)

let complete_of_matrix d =
  let n = Array.length d in
  let es = ref [] in
  for u = 0 to n - 1 do
    if Array.length d.(u) <> n then
      invalid_arg "Graph.complete_of_matrix: ragged matrix";
    for v = u + 1 to n - 1 do
      if d.(u).(v) <> d.(v).(u) then
        invalid_arg "Graph.complete_of_matrix: asymmetric matrix";
      if d.(u).(v) < infinity then es := (u, v, d.(u).(v)) :: !es
    done
  done;
  create_simple ~n ~edges:!es

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d" g.n g.m;
  iter_edges g (fun u v w -> Format.fprintf ppf "@,%d -- %d  %.3f" u v w);
  Format.fprintf ppf "@]"
