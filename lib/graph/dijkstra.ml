type result = { dist : float array; parent : int array }

(* ------------------------------------------------------------------ *)
(* Internal monomorphic binary heap over (float priority, int node).

   Deliberately binary, not 4-ary: the pop order among equal priorities
   is part of the solver's determinism contract (it decides which of
   several equal-cost parents wins a tie), and this layout replicates the
   historical heap's ordering exactly.  Deletions are lazy — stale
   entries are skipped against the settled set by the callers below. *)

type heap = {
  mutable hprio : float array;
  mutable hnode : int array;
  mutable hlen : int;
}

let heap_make () = { hprio = Array.make 16 0.0; hnode = Array.make 16 0; hlen = 0 }

let heap_grow h =
  let cap = Array.length h.hprio in
  let prio = Array.make (cap * 2) 0.0 in
  let node = Array.make (cap * 2) 0 in
  Array.blit h.hprio 0 prio 0 h.hlen;
  Array.blit h.hnode 0 node 0 h.hlen;
  h.hprio <- prio;
  h.hnode <- node

let heap_swap h i j =
  let p = h.hprio.(i) and d = h.hnode.(i) in
  h.hprio.(i) <- h.hprio.(j);
  h.hnode.(i) <- h.hnode.(j);
  h.hprio.(j) <- p;
  h.hnode.(j) <- d

let rec heap_sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.hprio.(parent) > h.hprio.(i) then begin
      heap_swap h i parent;
      heap_sift_up h parent
    end
  end

let rec heap_sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.hlen && h.hprio.(l) < h.hprio.(!smallest) then smallest := l;
  if r < h.hlen && h.hprio.(r) < h.hprio.(!smallest) then smallest := r;
  if !smallest <> i then begin
    heap_swap h i !smallest;
    heap_sift_down h !smallest
  end

let heap_push h prio node =
  if h.hlen = Array.length h.hprio then heap_grow h;
  h.hprio.(h.hlen) <- prio;
  h.hnode.(h.hlen) <- node;
  h.hlen <- h.hlen + 1;
  heap_sift_up h (h.hlen - 1)

(* Pop the minimum-priority node, or -1 when empty. *)
let heap_pop h =
  if h.hlen = 0 then -1
  else begin
    let u = h.hnode.(0) in
    h.hlen <- h.hlen - 1;
    h.hprio.(0) <- h.hprio.(h.hlen);
    h.hnode.(0) <- h.hnode.(h.hlen);
    if h.hlen > 0 then heap_sift_down h 0;
    u
  end

(* ------------------------------------------------------------------ *)
(* Per-domain reusable workspace.

   dist/parent are valid only where the stamp says so: stamp.(v) = gen
   means touched this run, stamp.(v) = gen + 1 means settled this run,
   anything lower is garbage from an earlier generation.  Bumping gen by
   2 invalidates the whole workspace in O(1) — no per-run alloc+clear.
   The workspace lives in domain-local storage, so pool workers never
   alias each other's scratch. *)

type ws = {
  mutable cap : int;
  mutable wdist : float array;
  mutable wparent : int array;
  mutable stamp : int array;
  mutable gen : int;
  wheap : heap;
}

let ws_key =
  Domain.DLS.new_key (fun () ->
      {
        cap = 0;
        wdist = [||];
        wparent = [||];
        stamp = [||];
        gen = 1;
        wheap = heap_make ();
      })

let ws_prepare n =
  let ws = Domain.DLS.get ws_key in
  if ws.cap < n then begin
    let cap = max n (2 * ws.cap) in
    ws.cap <- cap;
    ws.wdist <- Array.make cap infinity;
    ws.wparent <- Array.make cap (-1);
    ws.stamp <- Array.make cap 0;
    ws.gen <- 1
  end
  else ws.gen <- ws.gen + 2;
  ws.wheap.hlen <- 0;
  ws

let ws_seed ws n s =
  if s < 0 || s >= n then invalid_arg "Dijkstra: source out of range";
  ws.stamp.(s) <- ws.gen;
  ws.wdist.(s) <- 0.0;
  ws.wparent.(s) <- -1;
  heap_push ws.wheap 0.0 s

(* Settle and relax the next node; -1 when the heap is exhausted. *)
let ws_settle_next ws g =
  let rec go () =
    let u = heap_pop ws.wheap in
    if u = -1 then -1
    else if ws.stamp.(u) > ws.gen then go () (* stale lazy-deletion entry *)
    else begin
      ws.stamp.(u) <- ws.gen + 1;
      let d = ws.wdist.(u) in
      Graph.iter_neighbors g u (fun v w ->
          let nd = d +. w in
          if ws.stamp.(v) < ws.gen then begin
            ws.stamp.(v) <- ws.gen;
            ws.wdist.(v) <- nd;
            ws.wparent.(v) <- u;
            heap_push ws.wheap nd v
          end
          else if nd < ws.wdist.(v) then begin
            ws.wdist.(v) <- nd;
            ws.wparent.(v) <- u;
            heap_push ws.wheap nd v
          end);
      u
    end
  in
  go ()

let ws_exhaust ws g = while ws_settle_next ws g <> -1 do () done

(* Copy the settled portion of the workspace out into a fresh result;
   untouched and merely-touched nodes read as unreachable. *)
let ws_materialize ws n =
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let settled_gen = ws.gen + 1 in
  for v = 0 to n - 1 do
    if ws.stamp.(v) = settled_gen then begin
      dist.(v) <- ws.wdist.(v);
      parent.(v) <- ws.wparent.(v)
    end
  done;
  { dist; parent }

let run g s =
  let n = Graph.n g in
  let ws = ws_prepare n in
  ws_seed ws n s;
  ws_exhaust ws g;
  ws_materialize ws n

let multi_source g sources =
  if sources = [] then invalid_arg "Dijkstra.multi_source: no sources";
  let n = Graph.n g in
  let ws = ws_prepare n in
  List.iter (ws_seed ws n) sources;
  ws_exhaust ws g;
  ws_materialize ws n

let run_to_targets g s ~targets =
  let n = Graph.n g in
  Array.iter
    (fun t ->
      if t < 0 || t >= n then invalid_arg "Dijkstra.run_to_targets: target out of range")
    targets;
  let ws = ws_prepare n in
  ws_seed ws n s;
  (try
     Array.iter
       (fun t ->
         while ws.stamp.(t) <= ws.gen do
           if ws_settle_next ws g = -1 then raise Exit
         done)
       targets
   with Exit -> ());
  ws_materialize ws n

let path_to r v =
  if r.dist.(v) = infinity then None
  else begin
    let rec build acc u = if u = -1 then acc else build (u :: acc) r.parent.(u) in
    Some (build [] v)
  end

let to_target g ~src ~dst =
  let n = Graph.n g in
  if dst < 0 || dst >= n then invalid_arg "Dijkstra.to_target: target out of range";
  let ws = ws_prepare n in
  ws_seed ws n src;
  let reached = ref false in
  (try
     while not !reached do
       let u = ws_settle_next ws g in
       if u = -1 then raise Exit;
       if u = dst then reached := true
     done
   with Exit -> ());
  if not !reached then None
  else begin
    let rec build acc u = if u = -1 then acc else build (u :: acc) ws.wparent.(u) in
    Some (ws.wdist.(dst), build [] dst)
  end

let distance_matrix g terminals =
  let k = Array.length terminals in
  let d = Array.make_matrix k k infinity in
  Array.iteri
    (fun i ti ->
      let r = run_to_targets g ti ~targets:terminals in
      Array.iteri (fun j tj -> d.(i).(j) <- r.dist.(tj)) terminals)
    terminals;
  d

(* ------------------------------------------------------------------ *)
(* Resumable single-source runs.

   A [state] owns its label arrays and frontier and can be driven
   terminal-by-terminal: settled labels are final (nonnegative weights
   admit no later improvement), so a state can be paused after the nodes
   one caller needs and resumed when another caller needs more.  The
   settle order is identical to a full run regardless of how the work is
   sliced, so results never depend on resume interleaving. *)

type state = {
  sgraph : Graph.t;
  sroot : int;
  sdist : float array;
  sparent : int array;
  ssettled : bool array;
  sheap : heap;
  mutable nsettled : int;
  mutable exhausted : bool;
}

let start g s =
  let n = Graph.n g in
  if s < 0 || s >= n then invalid_arg "Dijkstra.start: source out of range";
  let st =
    {
      sgraph = g;
      sroot = s;
      sdist = Array.make n infinity;
      sparent = Array.make n (-1);
      ssettled = Array.make n false;
      sheap = heap_make ();
      nsettled = 0;
      exhausted = false;
    }
  in
  st.sdist.(s) <- 0.0;
  heap_push st.sheap 0.0 s;
  st

let root st = st.sroot
let is_settled st v = st.ssettled.(v)
let is_exhausted st = st.exhausted
let settled_count st = st.nsettled

let state_settle_next st =
  if st.exhausted then -1
  else begin
    let rec go () =
      let u = heap_pop st.sheap in
      if u = -1 then begin
        st.exhausted <- true;
        -1
      end
      else if st.ssettled.(u) then go ()
      else begin
        st.ssettled.(u) <- true;
        st.nsettled <- st.nsettled + 1;
        let d = st.sdist.(u) in
        Graph.iter_neighbors st.sgraph u (fun v w ->
            let nd = d +. w in
            if nd < st.sdist.(v) then begin
              st.sdist.(v) <- nd;
              st.sparent.(v) <- u;
              heap_push st.sheap nd v
            end);
        u
      end
    in
    go ()
  end

let settle st v =
  while (not st.ssettled.(v)) && state_settle_next st <> -1 do
    ()
  done

let settle_many st targets = Array.iter (settle st) targets

let settle_all st =
  while state_settle_next st <> -1 do
    ()
  done

let state_dist st v = if st.ssettled.(v) then st.sdist.(v) else infinity

let state_path st v =
  if not st.ssettled.(v) then None
  else begin
    let rec build acc u = if u = -1 then acc else build (u :: acc) st.sparent.(u) in
    Some (build [] v)
  end

let state_dist_array st =
  settle_all st;
  st.sdist

(* ------------------------------------------------------------------ *)
(* Straightforward reference implementation: fresh arrays every run, its
   own heap, no generations, no early exit.  Kept as the differential
   oracle for the workspace engine above — both use the same binary tie
   order, so dist AND parent arrays must match exactly. *)

let reference g sources =
  let n = Graph.n g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = heap_make () in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Dijkstra: source out of range";
      dist.(s) <- 0.0;
      heap_push heap 0.0 s)
    sources;
  while heap.hlen > 0 do
    let u = heap_pop heap in
    if not settled.(u) then begin
      settled.(u) <- true;
      let d = dist.(u) in
      Graph.iter_neighbors g u (fun v w ->
          let nd = d +. w in
          if nd < dist.(v) then begin
            dist.(v) <- nd;
            parent.(v) <- u;
            heap_push heap nd v
          end)
    end
  done;
  { dist; parent }

let bellman_ford g s =
  let n = Graph.n g in
  let dist = Array.make n infinity in
  dist.(s) <- 0.0;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < n do
    changed := false;
    incr rounds;
    Graph.iter_edges g (fun u v w ->
        if dist.(u) +. w < dist.(v) then begin
          dist.(v) <- dist.(u) +. w;
          changed := true
        end;
        if dist.(v) +. w < dist.(u) then begin
          dist.(u) <- dist.(v) +. w;
          changed := true
        end)
  done;
  dist
