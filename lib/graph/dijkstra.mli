(** Shortest paths on nonnegative edge weights.

    The engine reuses a per-domain scratch workspace (generation-stamped
    label arrays plus a persistent frontier heap held in domain-local
    storage), so a run costs no O(n) allocation or clearing beyond the
    returned result.  Pool workers each get their own workspace; results
    are always materialized into fresh arrays and never alias scratch.

    Equal-priority frontier entries pop in the same order as the
    historical implementation, so distances {e and parent choices on
    ties} are reproduced bit-for-bit. *)

type result = {
  dist : float array;  (** [dist.(v)] = shortest distance; [infinity] if unreachable. *)
  parent : int array;  (** [parent.(v)] = predecessor on a shortest path; [-1] at sources / unreachable nodes. *)
}

val run : Graph.t -> int -> result
(** Single-source Dijkstra from [s]. *)

val multi_source : Graph.t -> int list -> result
(** Shortest distance from the nearest of several sources (virtual
    super-source of weight 0). *)

val run_to_targets : Graph.t -> int -> targets:int array -> result
(** Like {!run} but stops as soon as every node in [targets] is settled
    (or the source's component is exhausted), so the cost scales with the
    reached subgraph rather than |V|.  Settled nodes carry their exact
    distance and parent; nodes not settled by then read as unreachable
    ([infinity] / [-1]) even when a finite tentative label existed. *)

val to_target : Graph.t -> src:int -> dst:int -> (float * int list) option
(** Shortest path [src -> dst] with early termination; returns the distance
    and the node sequence (inclusive of both endpoints), or [None] when
    unreachable. *)

val path_to : result -> int -> int list option
(** Extract the node sequence from the (implicit) source to [v] out of a
    [result]; [None] if unreachable. *)

val distance_matrix : Graph.t -> int array -> float array array
(** [distance_matrix g terminals] runs targeted Dijkstra from each terminal;
    entry [(i, j)] is the distance between [terminals.(i)] and
    [terminals.(j)]. *)

(** {2 Resumable runs}

    A {!state} is a paused single-source run that owns its labels and
    frontier.  Settled labels are final — nonnegative weights admit no
    later improvement — so callers may settle exactly the nodes they
    need now and resume for more later; the settle order (and therefore
    every label) is independent of how the work is sliced. *)

type state

val start : Graph.t -> int -> state
(** Begin a run from a source; nothing is settled yet. *)

val root : state -> int
(** The source the state was started from. *)

val settle : state -> int -> unit
(** Drive the run until the node is settled, or the frontier empties (the
    node is unreachable). *)

val settle_many : state -> int array -> unit

val settle_all : state -> unit
(** Exhaust the run: every reachable node settled. *)

val is_settled : state -> int -> bool
val is_exhausted : state -> bool

val settled_count : state -> int
(** Number of nodes settled so far — the work metric behind the
    [metric.dijkstra_settled] counter. *)

val state_dist : state -> int -> float
(** Exact distance for a settled node; [infinity] for an unsettled one
    (meaningful only after {!settle}/{!settle_all} made the node's status
    final). *)

val state_path : state -> int -> int list option
(** Node sequence root .. v for a settled node, [None] otherwise. *)

val state_dist_array : state -> float array
(** Exhaust the run and expose the full distance array (live, do not
    mutate): [infinity] marks unreachable nodes. *)

val reference : Graph.t -> int list -> result
(** Straightforward multi-source implementation with fresh arrays and no
    early exit — the differential oracle for the workspace engine; both
    use the same tie order, so results must match exactly. *)

val bellman_ford : Graph.t -> int -> float array
(** Reference O(nm) shortest-path implementation, used as a test oracle. *)
