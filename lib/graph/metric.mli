(** Metric closure of a graph restricted to a terminal set.

    The closure is the complete graph over the terminals whose edge weights
    are shortest-path distances in the base graph; it retains enough state to
    expand any closure edge back into a concrete path. *)

type t

val closure : Graph.t -> int array -> t
(** [closure g terminals] computes one Dijkstra per terminal.  The sweeps
    are independent and run on the {!Sof_util.Pool} worker domains; the
    result is identical to the sequential computation. *)

val terminals : t -> int array

val distance : t -> int -> int -> float
(** [distance c i j] — distance between terminal *indices* [i] and [j]. *)

val distance_nodes : t -> int -> int -> float
(** [distance_nodes c u v] — distance between terminal *nodes* [u] and [v].
    @raise Not_found if either node is not a terminal. *)

val path : t -> int -> int -> int list
(** [path c i j] — a shortest path in the base graph between terminal
    indices [i] and [j] (inclusive endpoints).  @raise Invalid_argument when
    the terminals are disconnected. *)

val path_nodes : t -> int -> int -> int list
(** Same but keyed by terminal nodes. *)

val dist_from_terminal : t -> int -> float array
(** [dist_from_terminal c i] — full distance array of the Dijkstra run
    rooted at terminal index [i] (distances to every node of the base
    graph). *)

val path_to_node : t -> int -> int -> int list
(** [path_to_node c i v] — shortest path from terminal index [i] to an
    arbitrary node [v] of the base graph. *)

val complete_graph : t -> Graph.t
(** The closure as a [Graph.t] over terminal indices. *)
