(** Metric closure of a graph restricted to a terminal set.

    The closure is the complete graph over the terminals whose edge weights
    are shortest-path distances in the base graph; it retains enough state to
    expand any closure edge back into a concrete path.

    Each terminal owns a resumable {!Dijkstra.state} driven only as far
    as the queries require.  By default (a {e shared} closure) every
    terminal is settled in every run at build time on the
    {!Sof_util.Pool} worker domains, so terminal-indexed queries are
    lock-free reads of final labels; queries about non-terminal nodes
    resume the relevant run under a per-run mutex.  Because settled
    labels are final, runs can also be shared across closures of the
    same graph through a {!Cache} — later closures extend runs, never
    change them — which is how repair and re-solve pipelines avoid
    recomputing shortest-path work.  All distances and paths are
    bit-identical to independent full sweeps. *)

type t

(** Shareable per-(graph, root) Dijkstra runs.  Graphs are keyed by
    physical identity.  Thread one cache through a pipeline of solves
    over the same graph and each shortest-path tree is computed at most
    once; reuse shows up on the [metric.closure_reuse] counter. *)
module Cache : sig
  type t

  val create : unit -> t

  val snapshot : t -> t
  (** [snapshot c] — a read-only snapshot of [c], safe for concurrent
      readers on multiple domains.  Lookups against the snapshot are
      lock-free and never register new runs (misses fall back to private
      runs), while hits share the base cache's run records — settled
      labels are final and resumption still synchronizes per run, so
      results stay bit-identical to the base cache.  Closures built from
      the snapshot accrue [metric.closure_reuse] as usual.  Later
      additions to [c] are not visible through the snapshot. *)
end

val closure : ?cache:Cache.t -> ?local:bool -> Graph.t -> int array -> t
(** [closure g terminals] builds the closure.  With [~cache] the
    underlying runs are fetched from (and registered in) the cache.
    With [~local:true] the closure starts runs lazily on first query and
    performs no synchronization at all — the caller promises the value
    never crosses domains (it may live {e on} a worker domain, it just
    must not be shared); incompatible with [~cache].
    @raise Invalid_argument when both [~cache] and [~local:true] are
    given. *)

val terminals : t -> int array

val distance : t -> int -> int -> float
(** [distance c i j] — distance between terminal *indices* [i] and [j]. *)

val distance_nodes : t -> int -> int -> float
(** [distance_nodes c u v] — distance between terminal *nodes* [u] and [v].
    @raise Not_found if either node is not a terminal. *)

val distance_to_node : t -> int -> int -> float
(** [distance_to_node c i v] — distance from terminal index [i] to an
    arbitrary node [v] of the base graph ([infinity] when unreachable).
    May resume run [i] under its lock. *)

val path : t -> int -> int -> int list
(** [path c i j] — a shortest path in the base graph between terminal
    indices [i] and [j] (inclusive endpoints).  @raise Invalid_argument when
    the terminals are disconnected. *)

val path_nodes : t -> int -> int -> int list
(** Same but keyed by terminal nodes. *)

val dist_from_terminal : t -> int -> float array
(** [dist_from_terminal c i] — full distance array of the Dijkstra run
    rooted at terminal index [i] (distances to every node of the base
    graph; exhausts the run).  The array is live — do not mutate. *)

val path_to_node : t -> int -> int -> int list
(** [path_to_node c i v] — shortest path from terminal index [i] to an
    arbitrary node [v] of the base graph. *)

val complete_graph : t -> Graph.t
(** The closure as a [Graph.t] over terminal indices. *)
