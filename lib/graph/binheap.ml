(* Implicit 4-ary min-heap.  Children of [i] sit at [4i+1 .. 4i+4], parent
   at [(i-1)/4]: the shallower tree trades a slightly wider sift-down scan
   for ~half the levels (and cache misses) of the binary layout, which wins
   on pop-heavy workloads like Prim and the event queue. *)
type 'a t = {
  mutable prio : float array;
  mutable data : 'a option array;
  mutable len : int;
}

let create () = { prio = Array.make 16 0.0; data = Array.make 16 None; len = 0 }

let is_empty h = h.len = 0
let size h = h.len

let grow h =
  let cap = Array.length h.prio in
  let prio = Array.make (cap * 2) 0.0 in
  let data = Array.make (cap * 2) None in
  Array.blit h.prio 0 prio 0 h.len;
  Array.blit h.data 0 data 0 h.len;
  h.prio <- prio;
  h.data <- data

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 4 in
    if h.prio.(parent) > h.prio.(i) then begin
      let p = h.prio.(i) and d = h.data.(i) in
      h.prio.(i) <- h.prio.(parent);
      h.data.(i) <- h.data.(parent);
      h.prio.(parent) <- p;
      h.data.(parent) <- d;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let first = (4 * i) + 1 in
  if first < h.len then begin
    (* Smallest of the up-to-four children, first-come on ties. *)
    let last = min (first + 3) (h.len - 1) in
    let smallest = ref i in
    for c = first to last do
      if h.prio.(c) < h.prio.(!smallest) then smallest := c
    done;
    if !smallest <> i then begin
      let j = !smallest in
      let p = h.prio.(i) and d = h.data.(i) in
      h.prio.(i) <- h.prio.(j);
      h.data.(i) <- h.data.(j);
      h.prio.(j) <- p;
      h.data.(j) <- d;
      sift_down h j
    end
  end

let push h prio x =
  if h.len = Array.length h.prio then grow h;
  h.prio.(h.len) <- prio;
  h.data.(h.len) <- Some x;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let peek h =
  if h.len = 0 then None
  else
    match h.data.(0) with
    | Some x -> Some (h.prio.(0), x)
    | None -> assert false

let pop h =
  match peek h with
  | None -> None
  | Some entry ->
      h.len <- h.len - 1;
      h.prio.(0) <- h.prio.(h.len);
      h.data.(0) <- h.data.(h.len);
      h.data.(h.len) <- None;
      if h.len > 0 then sift_down h 0;
      Some entry
