type t = {
  terminals : int array;
  index_of : (int, int) Hashtbl.t;
  runs : Dijkstra.result array;
}

let closure g terminals =
  Sof_obs.Obs.span "metric.closure" @@ fun () ->
  let index_of = Hashtbl.create (Array.length terminals) in
  Array.iteri (fun i v -> Hashtbl.replace index_of v i) terminals;
  (* One independent Dijkstra per terminal; results land per-index, so the
     parallel sweep is indistinguishable from the sequential one. *)
  let runs = Sof_util.Pool.parallel_map (fun v -> Dijkstra.run g v) terminals in
  Sof_obs.Obs.count "metric.dijkstra_runs" (Array.length terminals);
  { terminals; index_of; runs }

let terminals c = c.terminals

let distance c i j = c.runs.(i).Dijkstra.dist.(c.terminals.(j))

let index_of_node c v =
  match Hashtbl.find_opt c.index_of v with
  | Some i -> i
  | None -> raise Not_found

let distance_nodes c u v = distance c (index_of_node c u) (index_of_node c v)

let path_to_node c i v =
  match Dijkstra.path_to c.runs.(i) v with
  | Some p -> p
  | None -> invalid_arg "Metric.path: disconnected terminals"

let path c i j = path_to_node c i c.terminals.(j)

let path_nodes c u v = path c (index_of_node c u) (index_of_node c v)

let dist_from_terminal c i = c.runs.(i).Dijkstra.dist

let complete_graph c =
  let k = Array.length c.terminals in
  let es = ref [] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let d = distance c i j in
      if d < infinity then es := (i, j, d) :: !es
    done
  done;
  Graph.create ~n:k ~edges:!es
