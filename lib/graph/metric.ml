module Obs = Sof_obs.Obs

(* A closure no longer stores finished full-graph sweeps: each terminal
   owns a resumable Dijkstra [state] that is driven exactly as far as the
   queries need.  Runs are shareable across closures (and whole re-solve
   pipelines) through a {!Cache}, because settled labels are final and a
   later closure can only ever extend a run, never change it. *)

type run = {
  root : int;
  rlock : Mutex.t;
  mutable rstate : Dijkstra.state option;
}

type mode =
  | Shared
      (* Eagerly settles every terminal at build (on the pool), so
         terminal-to-terminal queries are lock-free; queries about other
         nodes resume the run under the run's mutex. *)
  | Local
      (* Confined to the constructing caller: runs start lazily on first
         use and nothing is locked.  Must never cross domains. *)

type t = {
  graph : Graph.t;
  terminals : int array;
  index_of : (int, int) Hashtbl.t;
  runs : run array;
  mode : mode;
}

module Cache = struct
  type entry = { cgraph : Graph.t; table : (int, run) Hashtbl.t }

  type cache = {
    clock : Mutex.t;
    mutable entries : entry list;
    frozen : bool;
        (* A frozen cache is a read-only snapshot: its tables are never
           mutated again, so lookups need no lock and are safe from any
           domain.  The run records themselves stay shared with the base
           cache — settled labels are final and resumption synchronizes
           on the per-run lock, so sharing is still deterministic. *)
  }

  type t = cache

  let create () = { clock = Mutex.create (); entries = []; frozen = false }

  let snapshot c =
    Mutex.lock c.clock;
    let entries =
      List.map
        (fun e -> { e with table = Hashtbl.copy e.table })
        c.entries
    in
    Mutex.unlock c.clock;
    { clock = Mutex.create (); entries; frozen = true }
end

let fresh_run v = { root = v; rlock = Mutex.create (); rstate = None }

(* Fetch or create the per-(graph, root) runs.  Graphs are compared by
   physical identity: a solve pipeline passes the same graph value
   around, and value-equal but distinct graphs must not share runs (their
   states embed the graph they were started on). *)
let runs_of_cache (cache : Cache.t) g terminals =
  if cache.Cache.frozen then begin
    (* Snapshot path: lock-free lookups (the tables are immutable), and
       misses get private unregistered runs so concurrent readers never
       mutate shared structure. *)
    let table =
      List.find_opt (fun e -> e.Cache.cgraph == g) cache.Cache.entries
      |> Option.map (fun e -> e.Cache.table)
    in
    let reused = ref 0 in
    let runs =
      Array.map
        (fun v ->
          match Option.bind table (fun t -> Hashtbl.find_opt t v) with
          | Some r ->
              incr reused;
              r
          | None -> fresh_run v)
        terminals
    in
    if !reused > 0 then Obs.count "metric.closure_reuse" !reused;
    runs
  end
  else begin
  Mutex.lock cache.Cache.clock;
  let table =
    match
      List.find_opt (fun e -> e.Cache.cgraph == g) cache.Cache.entries
    with
    | Some e -> e.Cache.table
    | None ->
        let table = Hashtbl.create 64 in
        cache.Cache.entries <-
          { Cache.cgraph = g; table } :: cache.Cache.entries;
        table
  in
  let reused = ref 0 in
  let runs =
    Array.map
      (fun v ->
        match Hashtbl.find_opt table v with
        | Some r ->
            incr reused;
            r
        | None ->
            let r = fresh_run v in
            Hashtbl.add table v r;
            r)
      terminals
  in
  Mutex.unlock cache.Cache.clock;
  if !reused > 0 then Obs.count "metric.closure_reuse" !reused;
  runs
  end

let closure ?cache ?(local = false) g terminals =
  if local && cache <> None then
    invalid_arg "Metric.closure: ~local closures cannot share a cache";
  Obs.span "metric.closure" @@ fun () ->
  let index_of = Hashtbl.create (Array.length terminals) in
  Array.iteri (fun i v -> Hashtbl.replace index_of v i) terminals;
  let runs =
    match cache with
    | Some cache -> runs_of_cache cache g terminals
    | None -> Array.map fresh_run terminals
  in
  let c =
    { graph = g; terminals; index_of; runs; mode = (if local then Local else Shared) }
  in
  if not local then begin
    (* Settle every terminal in every run up front (one independent
       targeted sweep per terminal, on the pool worker domains): all
       terminal-indexed queries below are then reads of final labels and
       need no synchronization.  Counters aggregate on this domain. *)
    let stats =
      Sof_util.Pool.parallel_map
        (fun r ->
          Mutex.lock r.rlock;
          let started, st =
            match r.rstate with
            | Some st -> (0, st)
            | None ->
                let st = Dijkstra.start g r.root in
                r.rstate <- Some st;
                (1, st)
          in
          let before = Dijkstra.settled_count st in
          Dijkstra.settle_many st terminals;
          let after = Dijkstra.settled_count st in
          Mutex.unlock r.rlock;
          (started, after - before))
        runs
    in
    let starts = Array.fold_left (fun a (s, _) -> a + s) 0 stats in
    let settles = Array.fold_left (fun a (_, d) -> a + d) 0 stats in
    Obs.count "metric.dijkstra_runs" starts;
    Obs.count "metric.dijkstra_settled" settles
  end;
  c

let terminals c = c.terminals

(* Local-mode lazy start: first query of a root begins its run. *)
let local_state c r =
  match r.rstate with
  | Some st -> st
  | None ->
      let st = Dijkstra.start c.graph r.root in
      r.rstate <- Some st;
      Obs.count "metric.dijkstra_runs" 1;
      st

(* Make node [v]'s status in run [i] final and return the state. *)
let ensure_node c i v =
  let r = c.runs.(i) in
  match c.mode with
  | Local ->
      let st = local_state c r in
      Dijkstra.settle st v;
      st
  | Shared ->
      let st =
        match r.rstate with Some st -> st | None -> assert false
      in
      if Hashtbl.mem c.index_of v then st (* settled at build: lock-free *)
      else begin
        Mutex.lock r.rlock;
        Dijkstra.settle st v;
        Mutex.unlock r.rlock;
        st
      end

(* Terminal-indexed queries: in Shared mode the target was settled at
   build, so skip [ensure_node]'s membership test on the hot path. *)
let terminal_state c i v =
  match c.mode with
  | Shared -> (
      match c.runs.(i).rstate with Some st -> st | None -> assert false)
  | Local ->
      let st = local_state c c.runs.(i) in
      Dijkstra.settle st v;
      st

let distance c i j =
  let tj = c.terminals.(j) in
  Dijkstra.state_dist (terminal_state c i tj) tj

let index_of_node c v =
  match Hashtbl.find_opt c.index_of v with
  | Some i -> i
  | None -> raise Not_found

let distance_nodes c u v = distance c (index_of_node c u) (index_of_node c v)

let distance_to_node c i v =
  let st = ensure_node c i v in
  Dijkstra.state_dist st v

let path_to_node c i v =
  let st = ensure_node c i v in
  match Dijkstra.state_path st v with
  | Some p -> p
  | None -> invalid_arg "Metric.path: disconnected terminals"

let path c i j =
  let tj = c.terminals.(j) in
  match Dijkstra.state_path (terminal_state c i tj) tj with
  | Some p -> p
  | None -> invalid_arg "Metric.path: disconnected terminals"

let path_nodes c u v = path c (index_of_node c u) (index_of_node c v)

let dist_from_terminal c i =
  let r = c.runs.(i) in
  match c.mode with
  | Local -> Dijkstra.state_dist_array (local_state c r)
  | Shared ->
      let st = match r.rstate with Some st -> st | None -> assert false in
      Mutex.lock r.rlock;
      let a = Dijkstra.state_dist_array st in
      Mutex.unlock r.rlock;
      a

let complete_graph c =
  let k = Array.length c.terminals in
  let es = ref [] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let d = distance c i j in
      if d < infinity then es := (i, j, d) :: !es
    done
  done;
  (* Index pairs are distinct by construction: no dedup pass needed. *)
  Graph.create_simple ~n:k ~edges:!es
