(** Weighted undirected graphs over integer nodes [0 .. n-1].

    The structure is immutable once built.  Parallel edges are collapsed to
    the cheapest one at construction; self-loops are rejected.  Edge weights
    must be nonnegative (connection costs in the SOF model). *)

type t

val create : n:int -> edges:(int * int * float) list -> t
(** [create ~n ~edges] builds a graph with [n] nodes.  Each [(u, v, w)] adds
    an undirected edge.  @raise Invalid_argument on out-of-range endpoints,
    self-loops, or negative weights. *)

val create_simple : n:int -> edges:(int * int * float) list -> t
(** Like {!create} but for edge sets the caller guarantees contain no
    duplicate endpoint pair, skipping the dedup hashtable pass (metric
    complete graphs, auxiliary layouts, rebuilt edge lists).  Endpoint,
    self-loop and weight validation still apply, and a duplicate pair is
    detected and rejected rather than silently admitted.
    @raise Invalid_argument as {!create}, plus on duplicate edges. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of (undirected) edges. *)

val iter_neighbors : t -> int -> (int -> float -> unit) -> unit
(** [iter_neighbors g u f] calls [f v w] for every edge [(u, v)] of weight
    [w]. *)

val fold_neighbors : t -> int -> ('a -> int -> float -> 'a) -> 'a -> 'a

val neighbors : t -> int -> (int * float) list
(** Neighbor list of [u] (fresh list). *)

val degree : t -> int -> int

val edge_weight : t -> int -> int -> float option
(** Weight of edge [(u, v)] if present. *)

val mem_edge : t -> int -> int -> bool

val edges : t -> (int * int * float) list
(** All edges, each reported once with [u < v]. *)

val iter_edges : t -> (int -> int -> float -> unit) -> unit

val total_weight : t -> float
(** Sum of all edge weights. *)

val map_weights : t -> (int -> int -> float -> float) -> t
(** [map_weights g f] rebuilds the graph with edge [(u,v,w)] reweighted to
    [f u v w] (called once per undirected edge with [u < v]). *)

val filter_edges : t -> (int -> int -> float -> bool) -> t
(** Keep only edges satisfying the predicate (same node set). *)

val add_edges : t -> (int * int * float) list -> t
(** Functionally add edges (cheapest weight wins on duplicates). *)

val complete_of_matrix : float array array -> t
(** [complete_of_matrix d] builds the complete graph on [Array.length d]
    nodes with weight [d.(u).(v)] on edge [(u,v)].  The matrix must be
    symmetric; entries that are [infinity] omit the edge. *)

val pp : Format.formatter -> t -> unit
