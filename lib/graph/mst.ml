let kruskal g =
  let es = Graph.edges g in
  let sorted = List.sort (fun (_, _, a) (_, _, b) -> Float.compare a b) es in
  let uf = Union_find.create (Graph.n g) in
  List.filter (fun (u, v, _) -> Union_find.union uf u v) sorted

let prim g ~root =
  let n = Graph.n g in
  if root < 0 || root >= n then invalid_arg "Mst.prim: root out of range";
  let in_tree = Array.make n false in
  let heap = Binheap.create () in
  let tree = ref [] in
  let add u =
    in_tree.(u) <- true;
    Graph.iter_neighbors g u (fun v w ->
        if not in_tree.(v) then Binheap.push heap w (u, v, w))
  in
  add root;
  let rec drain () =
    match Binheap.pop heap with
    | None -> ()
    | Some (_, (u, v, w)) ->
        if not in_tree.(v) then begin
          tree := (min u v, max u v, w) :: !tree;
          add v
        end;
        drain ()
  in
  drain ();
  List.rev !tree

let weight tree = List.fold_left (fun acc (_, _, w) -> acc +. w) 0.0 tree

let spans g tree nodes =
  let uf = Union_find.create (Graph.n g) in
  List.iter (fun (u, v, _) -> ignore (Union_find.union uf u v)) tree;
  match nodes with
  | [] -> true
  | first :: rest -> List.for_all (fun v -> Union_find.same uf first v) rest
