(** Minimum implicit 4-ary heap with float priorities.

    Used by Prim, the Steiner relaxation and the simulator's event queue.
    Deletions are lazy: [decrease_key] is
    realized by inserting a duplicate and letting stale entries be skipped by
    the caller (the standard "lazy Dijkstra" idiom), so [pop] may return
    superseded entries — callers filter with their own settled set. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push h prio x] inserts [x] with priority [prio]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority entry. *)

val peek : 'a t -> (float * 'a) option
