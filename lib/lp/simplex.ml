type relation = Le | Ge | Eq

type problem = {
  n_vars : int;
  objective : float array;
  rows : (int * float) list array;
  relations : relation array;
  rhs : float array;
}

type outcome =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded
  | Iteration_limit

let eps = 1e-9

(* Internal tableau:
   columns: [0, n_vars) structural, then one slack/surplus per inequality,
   then one artificial per row that needs it; final column is the RHS.
   [basis.(r)] is the column basic in row r. *)
type tableau = {
  a : float array array; (* m rows *)
  m : int;
  cols : int;            (* total columns excluding RHS *)
  rhs_col : int;
  basis : int array;
}

let validate p =
  let m = Array.length p.rows in
  if Array.length p.relations <> m || Array.length p.rhs <> m then
    invalid_arg "Simplex.solve: ragged problem";
  if Array.length p.objective <> p.n_vars then
    invalid_arg "Simplex.solve: objective arity";
  Array.iter
    (List.iter (fun (j, _) ->
         if j < 0 || j >= p.n_vars then
           invalid_arg "Simplex.solve: coefficient index out of range"))
    p.rows

let build p =
  let m = Array.length p.rows in
  (* Normalize to nonnegative RHS. *)
  let rows = Array.map (fun r -> r) p.rows in
  let rels = Array.copy p.relations in
  let rhs = Array.copy p.rhs in
  let flipped = Array.make m false in
  for i = 0 to m - 1 do
    if rhs.(i) < 0.0 then begin
      rows.(i) <- List.map (fun (j, v) -> (j, -.v)) rows.(i);
      rhs.(i) <- -.rhs.(i);
      flipped.(i) <- true;
      rels.(i) <-
        (match rels.(i) with Le -> Ge | Ge -> Le | Eq -> Eq)
    end
  done;
  let n_slack = ref 0 and n_art = ref 0 in
  Array.iter
    (fun rel ->
      match rel with
      | Le -> incr n_slack
      | Ge ->
          incr n_slack;
          incr n_art
      | Eq -> incr n_art)
    rels;
  let cols = p.n_vars + !n_slack + !n_art in
  let a = Array.make_matrix m (cols + 1) 0.0 in
  let basis = Array.make m (-1) in
  (* Identity column of each row: the (+1-coefficient) slack of a Le row or
     the artificial of a Ge/Eq row.  The final reduced-cost row under that
     column yields the row's dual value. *)
  let id_col = Array.make m (-1) in
  let slack_base = p.n_vars in
  let art_base = p.n_vars + !n_slack in
  let si = ref 0 and ai = ref 0 in
  for i = 0 to m - 1 do
    List.iter (fun (j, v) -> a.(i).(j) <- a.(i).(j) +. v) rows.(i);
    a.(i).(cols) <- rhs.(i);
    (match rels.(i) with
    | Le ->
        a.(i).(slack_base + !si) <- 1.0;
        basis.(i) <- slack_base + !si;
        id_col.(i) <- slack_base + !si;
        incr si
    | Ge ->
        a.(i).(slack_base + !si) <- -1.0;
        incr si;
        a.(i).(art_base + !ai) <- 1.0;
        basis.(i) <- art_base + !ai;
        id_col.(i) <- art_base + !ai;
        incr ai
    | Eq ->
        a.(i).(art_base + !ai) <- 1.0;
        basis.(i) <- art_base + !ai;
        id_col.(i) <- art_base + !ai;
        incr ai)
  done;
  ({ a; m; cols; rhs_col = cols; basis }, art_base, id_col, flipped)

let pivot t ~row ~col =
  let arow = t.a.(row) in
  let p = arow.(col) in
  let inv = 1.0 /. p in
  for j = 0 to t.rhs_col do
    arow.(j) <- arow.(j) *. inv
  done;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let f = t.a.(i).(col) in
      if abs_float f > eps then begin
        let target = t.a.(i) in
        for j = 0 to t.rhs_col do
          target.(j) <- target.(j) -. (f *. arow.(j))
        done
      end
    end
  done;
  t.basis.(row) <- col

(* Run primal simplex on tableau [t] for objective [obj] (array over all
   columns).  The objective row is maintained explicitly.  Returns
   [`Optimal], [`Unbounded] or [`Limit].  An expired [budget] stops the
   pivot loop as [`Limit] — the tableau is local to the call, so an
   abandoned run leaves no half-written state behind. *)
let optimize ?budget t obj ~max_iters ~allowed =
  let z = Array.make (t.rhs_col + 1) 0.0 in
  Array.blit obj 0 z 0 (Array.length obj);
  (* Make the objective row consistent with the current basis: subtract
     multiples of basic rows so basic columns have zero reduced cost. *)
  for i = 0 to t.m - 1 do
    let b = t.basis.(i) in
    let f = z.(b) in
    if abs_float f > eps then
      for j = 0 to t.rhs_col do
        z.(j) <- z.(j) -. (f *. t.a.(i).(j))
      done
  done;
  let iters = ref 0 in
  let bland_after = max_iters / 2 in
  (* Numerical blow-up guard: a tableau whose RHS column has exploded (or
     gone non-finite) can still "terminate" with a garbage optimum, so we
     bail out as [`Limit] instead — callers treat that as an honest
     failure rather than a certificate. *)
  let blown_up () =
    let bad = ref false in
    for i = 0 to t.m - 1 do
      let b = t.a.(i).(t.rhs_col) in
      if not (abs_float b <= 1e12) then bad := true
    done;
    !bad
  in
  let rec loop () =
    if !iters >= max_iters then `Limit
    else if Sof_util.Budget.check budget then `Limit
    else if !iters land 63 = 0 && blown_up () then `Limit
    else begin
      incr iters;
      (* entering column *)
      let enter = ref (-1) in
      let best = ref (-.eps) in
      let use_bland = !iters > bland_after in
      (try
         for j = 0 to t.cols - 1 do
           if allowed j && z.(j) < -.eps then
             if use_bland then begin
               enter := j;
               raise Exit
             end
             else if z.(j) < !best then begin
               best := z.(j);
               enter := j
             end
         done
       with Exit -> ());
      if !enter = -1 then `Optimal
      else begin
        let col = !enter in
        (* Ratio test.  Ties within [eps]: prefer the largest pivot element
           (numerical stability — repeated pivots on near-zero entries blow
           the tableau up exponentially); under Bland's rule, the smallest
           basis index (anti-cycling) wins instead. *)
        let row = ref (-1) in
        let best_ratio = ref infinity in
        for i = 0 to t.m - 1 do
          let aij = t.a.(i).(col) in
          if aij > eps then begin
            let ratio = t.a.(i).(t.rhs_col) /. aij in
            if
              ratio < !best_ratio -. eps
              || (ratio < !best_ratio +. eps
                 && !row >= 0
                 &&
                 if use_bland then t.basis.(i) < t.basis.(!row)
                 else aij > t.a.(!row).(col))
            then begin
              best_ratio := ratio;
              row := i
            end
          end
        done;
        if !row = -1 then `Unbounded
        else begin
          pivot t ~row:!row ~col;
          let f = z.(col) in
          if abs_float f > eps then begin
            let arow = t.a.(!row) in
            for j = 0 to t.rhs_col do
              z.(j) <- z.(j) -. (f *. arow.(j))
            done
          end;
          loop ()
        end
      end
    end
  in
  (loop (), z)

let extract t n_vars =
  let x = Array.make n_vars 0.0 in
  for i = 0 to t.m - 1 do
    let b = t.basis.(i) in
    if b < n_vars then x.(b) <- t.a.(i).(t.rhs_col)
  done;
  x

let solve_dual ?max_iters ?budget p =
  validate p;
  let m = Array.length p.rows in
  let max_iters =
    match max_iters with Some k -> k | None -> 50 * (m + p.n_vars)
  in
  let t, art_base, id_col, flipped = build p in
  (* Phase 1: minimize the sum of artificials. *)
  let phase1_obj = Array.make (t.cols + 1) 0.0 in
  for j = art_base to t.cols - 1 do
    phase1_obj.(j) <- 1.0
  done;
  let status1, _ =
    optimize ?budget t phase1_obj ~max_iters ~allowed:(fun _ -> true)
  in
  (match status1 with `Unbounded -> assert false | _ -> ());
  if status1 = `Limit then (Iteration_limit, None)
  else begin
    let art_sum =
      let s = ref 0.0 in
      for i = 0 to t.m - 1 do
        if t.basis.(i) >= art_base then s := !s +. t.a.(i).(t.rhs_col)
      done;
      !s
    in
    if art_sum > 1e-6 then (Infeasible, None)
    else begin
      (* Drive any degenerate artificial out of the basis if possible. *)
      for i = 0 to t.m - 1 do
        if t.basis.(i) >= art_base then begin
          let found = ref (-1) in
          for j = 0 to art_base - 1 do
            if !found = -1 && abs_float t.a.(i).(j) > 1e-7 then found := j
          done;
          if !found >= 0 then pivot t ~row:i ~col:!found
        end
      done;
      (* Phase 2: original objective; artificial columns forbidden. *)
      let phase2_obj = Array.make (t.cols + 1) 0.0 in
      Array.blit p.objective 0 phase2_obj 0 p.n_vars;
      let status2, z =
        optimize ?budget t phase2_obj ~max_iters ~allowed:(fun j ->
            j < art_base)
      in
      match status2 with
      | `Unbounded -> (Unbounded, None)
      | `Limit -> (Iteration_limit, None)
      | `Optimal when
          not
            (Array.for_all
               (fun r -> abs_float r.(t.rhs_col) <= 1e12)
               t.a) ->
          (* Terminated on a numerically wrecked tableau: no certificate. *)
          (Iteration_limit, None)
      | `Optimal ->
          let x = extract t p.n_vars in
          let objective =
            Array.to_seq (Array.mapi (fun j v -> p.objective.(j) *. v) x)
            |> Seq.fold_left ( +. ) 0.0
          in
          (* Simplex multipliers: the reduced cost of a row's identity
             column (a unit column with zero objective coefficient) is
             [-y_i]; rows that were flipped during RHS normalization get
             their sign restored so duals refer to the original rows.  At
             optimality they satisfy [y_i <= 0] for Le rows, [y_i >= 0]
             for Ge rows (free for Eq), and [c_j - y . A_j >= 0] for every
             column — the certificate delayed column generation prices
             against. *)
          let dual =
            Array.init m (fun i ->
                let y = -.z.(id_col.(i)) in
                if flipped.(i) then -.y else y)
          in
          (Optimal { x; objective }, Some dual)
    end
  end

let solve ?max_iters ?budget p = fst (solve_dual ?max_iters ?budget p)

let check_feasible ?(tol = 1e-6) p x =
  Array.length x = p.n_vars
  && Array.for_all (fun v -> v >= -.tol) x
  &&
  let ok = ref true in
  Array.iteri
    (fun i row ->
      let lhs = List.fold_left (fun acc (j, v) -> acc +. (v *. x.(j))) 0.0 row in
      let b = p.rhs.(i) in
      match p.relations.(i) with
      | Le -> if lhs > b +. tol then ok := false
      | Ge -> if lhs < b -. tol then ok := false
      | Eq -> if abs_float (lhs -. b) > tol then ok := false)
    p.rows;
  !ok
