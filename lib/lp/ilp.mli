(** 0/1 integer programming by branch-and-bound over {!Simplex} relaxations
    — the repository's stand-in for CPLEX (DESIGN.md substitution table).

    Best-first search; branching picks the most fractional binary variable;
    nodes are pruned against the incumbent.  Every binary variable is
    implicitly bounded by [x <= 1] (added to the relaxation).  The solver
    honours node and wall-clock budgets and always reports the best proven
    lower bound, so callers can print optimality gaps when a budget
    expires. *)

type t = {
  lp : Simplex.problem;
  binaries : int list;     (** variables constrained to {0,1} *)
  ub_binaries : int list;
      (** binaries that need an explicit [x <= 1] row in the relaxation;
          leave out variables whose upper bound is already implied by the
          constraints (packing/assignment rows) — the relaxation stays a
          valid lower bound and the tableau stays small *)
}

val make : ?ub_binaries:int list -> binaries:int list -> Simplex.problem -> t
(** [ub_binaries] defaults to [binaries]. *)

type status = Optimal | Feasible | Infeasible | Budget_exhausted

type result = {
  status : status;
  best : (float array * float) option;  (** incumbent and its objective *)
  bound : float;                        (** proven lower bound *)
  nodes_explored : int;
}

val solve :
  ?node_limit:int ->
  ?time_budget:float ->
  ?initial_incumbent:float ->
  ?max_iters:int ->
  t ->
  result
(** [node_limit] defaults to 2000; [time_budget] (seconds) defaults to 60.
    [initial_incumbent] lets callers seed pruning with a known feasible
    objective (e.g. a SOFDA solution) — note the incumbent vector is then
    [None] unless the search finds something at least as good.
    [max_iters] caps each relaxation's simplex iterations (forwarded to
    {!Simplex.solve}).

    Bound contract: [bound] is a proven lower bound on the 0/1 optimum.
    When a subtree's relaxation cannot be solved (iteration limit or an
    unbounded degenerate relaxation), the subtree is covered by its
    parent's LP bound — or, at the root, by the trivial bound 0 when the
    objective is nonnegative — so a [Budget_exhausted] result still
    carries a finite usable [bound] whenever the objective is
    nonnegative; [nan] never escapes and [infinity] only accompanies
    [Infeasible]. *)
