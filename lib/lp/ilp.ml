type t = {
  lp : Simplex.problem;
  binaries : int list;
  ub_binaries : int list;
}

let make ?ub_binaries ~binaries lp =
  { lp; binaries; ub_binaries = Option.value ~default:binaries ub_binaries }

type status = Optimal | Feasible | Infeasible | Budget_exhausted

type result = {
  status : status;
  best : (float array * float) option;
  bound : float;
  nodes_explored : int;
}

let integral_tol = 1e-6

(* Relaxation of the root problem with the upper bounds x_j <= 1 for every
   binary, plus the branching fixings [fixed : (var * value) list] realized
   as equality rows. *)
let relaxation base ub_binaries fixed =
  let ub_rows = List.map (fun j -> [ (j, 1.0) ]) ub_binaries in
  let fix_rows = List.map (fun (j, _) -> [ (j, 1.0) ]) fixed in
  let rows =
    Array.concat
      [ base.Simplex.rows; Array.of_list ub_rows; Array.of_list fix_rows ]
  in
  let relations =
    Array.concat
      [
        base.Simplex.relations;
        Array.make (List.length ub_rows) Simplex.Le;
        Array.make (List.length fix_rows) Simplex.Eq;
      ]
  in
  let rhs =
    Array.concat
      [
        base.Simplex.rhs;
        Array.make (List.length ub_rows) 1.0;
        Array.of_list (List.map snd fixed);
      ]
  in
  { base with Simplex.rows; relations; rhs }

let most_fractional binaries x =
  let best = ref None in
  List.iter
    (fun j ->
      let v = x.(j) in
      let frac = abs_float (v -. Float.round v) in
      if frac > integral_tol then
        match !best with
        | Some (bf, _) when bf >= frac -> ()
        | _ -> best := Some (frac, j))
    binaries;
  Option.map snd !best

(* Min-priority queue over LP bounds, reusing the pairing of sorted lists;
   node volumes stay small (hundreds), so a sorted insertion list is fine. *)
module Frontier = struct
  type 'a t = { mutable items : (float * 'a) list }

  let create () = { items = [] }
  let is_empty q = q.items = []

  let push q prio v =
    let rec ins = function
      | [] -> [ (prio, v) ]
      | (p, _) :: _ as rest when prio <= p -> (prio, v) :: rest
      | hd :: rest -> hd :: ins rest
    in
    q.items <- ins q.items

  let pop q =
    match q.items with
    | [] -> None
    | hd :: rest ->
        q.items <- rest;
        Some hd

  let min_bound q = match q.items with [] -> None | (p, _) :: _ -> Some p
end

let solve ?(node_limit = 2000) ?(time_budget = 60.0) ?initial_incumbent
    ?max_iters { lp; binaries; ub_binaries } =
  let t0 = Unix.gettimeofday () in
  let incumbent = ref None in
  let incumbent_obj =
    ref (Option.value ~default:infinity initial_incumbent)
  in
  let frontier = Frontier.create () in
  let nodes = ref 0 in
  let exhausted = ref false in
  (* Lowest proven bound among subtrees whose LP could not be solved
     (unbounded relaxation or iteration limit): the parent's LP bound still
     covers such a subtree, keeping the reported bound finite and sound.
     For the root the fallback is the trivial bound: 0 when every
     objective coefficient is nonnegative (x >= 0), else unproven. *)
  let pruned_bound = ref infinity in
  let unexplored = ref false in
  let root_infeasible = ref false in
  let trivial_bound =
    if Array.for_all (fun c -> c >= 0.0) lp.Simplex.objective then 0.0
    else neg_infinity
  in
  let expand ~parent_bound fixed =
    incr nodes;
    match Simplex.solve ?max_iters (relaxation lp ub_binaries fixed) with
    | Simplex.Infeasible ->
        if fixed = [] then root_infeasible := true
    | Simplex.Unbounded | Simplex.Iteration_limit ->
        (* unexplorable subtree: fall back to the bound inherited from the
           parent relaxation *)
        unexplored := true;
        pruned_bound := min !pruned_bound parent_bound
    | Simplex.Optimal { x; objective } ->
        if objective < !incumbent_obj -. 1e-9 then begin
          match most_fractional binaries x with
          | None ->
              incumbent := Some (x, objective);
              incumbent_obj := objective
          | Some j -> Frontier.push frontier objective (fixed, j)
        end
  in
  expand ~parent_bound:trivial_bound [];
  let continue () =
    (not (Frontier.is_empty frontier))
    && !nodes < node_limit
    && Unix.gettimeofday () -. t0 < time_budget
  in
  while continue () do
    match Frontier.pop frontier with
    | None -> ()
    | Some (bound, (fixed, j)) ->
        if bound < !incumbent_obj -. 1e-9 then begin
          expand ~parent_bound:bound ((j, 0.0) :: fixed);
          expand ~parent_bound:bound ((j, 1.0) :: fixed)
        end
  done;
  if not (Frontier.is_empty frontier) then exhausted := true;
  let frontier_bound =
    Option.value ~default:infinity (Frontier.min_bound frontier)
  in
  let bound =
    if !root_infeasible then infinity
    else min (min frontier_bound !incumbent_obj) !pruned_bound
  in
  let status =
    if !root_infeasible then Infeasible
    else
      match (!incumbent, !exhausted || !unexplored) with
      | Some _, false -> Optimal
      | Some _, true -> Feasible
      | None, true -> Budget_exhausted
      | None, false ->
          if !incumbent_obj < infinity then (* seeded incumbent proved optimal *)
            Optimal
          else Infeasible
  in
  { status; best = !incumbent; bound; nodes_explored = !nodes }
