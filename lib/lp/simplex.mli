(** Dense two-phase primal simplex for small linear programs.

    Minimize [c . x] subject to sparse rows [a_i . x  (<= | >= | =)  b_i]
    and [x >= 0].  This is the LP engine under the branch-and-bound ILP
    solver that stands in for CPLEX (see DESIGN.md); it is tuned for the
    few-thousand-variable instances produced by {!Sof.Ip_model}, not for
    production-scale LPs.

    Pivoting uses Dantzig's rule with an automatic switch to Bland's rule
    to escape degenerate cycling; iterations are capped. *)

type relation = Le | Ge | Eq

type problem = {
  n_vars : int;
  objective : float array;            (** length [n_vars]; minimized *)
  rows : (int * float) list array;    (** sparse constraint coefficients *)
  relations : relation array;
  rhs : float array;
}

type outcome =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded
  | Iteration_limit

val solve : ?max_iters:int -> ?budget:Sof_util.Budget.t -> problem -> outcome
(** [max_iters] defaults to [50 * (rows + vars)].  An expired [budget]
    stops the pivot loop with [Iteration_limit] — a cooperative,
    exception-free abandon ([?budget:None] is bit-identical to the
    unbudgeted call).  @raise Invalid_argument on ragged input. *)

val solve_dual :
  ?max_iters:int ->
  ?budget:Sof_util.Budget.t ->
  problem ->
  outcome * float array option
(** Like {!solve}; on [Optimal] additionally returns the optimal dual
    values [y], one per row of the {e original} problem (RHS-normalization
    flips are undone).  The duals satisfy the sign convention of
    [min c.x, x >= 0]: [y_i <= 0] for [Le] rows, [y_i >= 0] for [Ge] rows,
    free for [Eq], with every column's reduced cost
    [c_j - y . A_j >= -eps].  They are the pricing certificate used by
    {!Col_gen} and a valid Lagrangian-bound multiplier set. *)

val check_feasible : ?tol:float -> problem -> float array -> bool
(** Does [x] satisfy every constraint and nonnegativity (within [tol],
    default 1e-6)?  Used by tests and by the ILP layer to sanity-check
    incumbents. *)
