type stats = {
  rounds : int;
  columns_priced : int;
  columns_added : int;
  active_columns : int;
  active_rows : int;
}

type outcome =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded
  | Stalled of { x : float array option; objective : float option }

type result = {
  outcome : outcome;
  bound : float;
  proven : bool;
  stats : stats;
}

let price_eps = 1e-7

(* Is row [i] satisfied by the all-zero assignment? *)
let zero_satisfied (p : Simplex.problem) i =
  let b = p.rhs.(i) in
  match p.relations.(i) with
  | Simplex.Le -> b >= 0.0
  | Simplex.Ge -> b <= 0.0
  | Simplex.Eq -> b = 0.0

let solve ?(max_rounds = 60) ?(batch = 32) ?max_iters ?(var_upper = infinity)
    ?(perturb = 1e-7) ?(initial = []) ?budget (p : Simplex.problem) =
  let m = Array.length p.rows in
  let n = p.n_vars in
  (* Anti-degeneracy relaxation: nudge every inequality outward by a tiny
     row-dependent amount.  This only enlarges the feasible region, so the
     certified optimum (and the Lagrangian fallback) remain sound lower
     bounds on the original LP — and it turns the formulation's many
     [>= 0] rows into slack-started [<=] rows after RHS normalization,
     which kills the phase-1 artificials and the degenerate-pivot crawl
     that otherwise dominates masters built from flow constraints. *)
  let prhs =
    Array.mapi
      (fun i b ->
        let d = perturb *. (1.0 +. (float_of_int (i mod 251) /. 251.0)) in
        match p.relations.(i) with
        | Simplex.Le -> b +. d
        | Simplex.Ge -> b -. d
        | Simplex.Eq -> b)
      p.rhs
  in
  (* Column-major view for pricing and row activation. *)
  let cols = Array.make n [] in
  Array.iteri
    (fun i row -> List.iter (fun (j, v) -> cols.(j) <- (i, v) :: cols.(j)) row)
    p.rows;
  let active_col = Array.make n false in
  let active_row = Array.make m false in
  let activate_col j =
    if not active_col.(j) then begin
      active_col.(j) <- true;
      (* Every row constraining an active column joins the master, so any
         master-feasible point extends (with zeros) to a point satisfying
         all rows that touch active columns. *)
      List.iter (fun (i, _) -> active_row.(i) <- true) cols.(j)
    end
  in
  let infeasible_row = ref false in
  for i = 0 to m - 1 do
    if not (zero_satisfied p i) then begin
      active_row.(i) <- true;
      if p.rows.(i) = [] then infeasible_row := true
      else List.iter (fun (j, _) -> activate_col j) p.rows.(i)
    end
  done;
  List.iter
    (fun j ->
      if j < 0 || j >= n then invalid_arg "Col_gen.solve: initial column";
      activate_col j)
    initial;
  let columns_priced = ref 0 in
  let columns_added = ref 0 in
  let rounds = ref 0 in
  let best_bound = ref neg_infinity in
  let escalated = ref false in
  let stats () =
    let ac = ref 0 and ar = ref 0 in
    Array.iter (fun b -> if b then incr ac) active_col;
    Array.iter (fun b -> if b then incr ar) active_row;
    {
      rounds = !rounds;
      columns_priced = !columns_priced;
      columns_added = !columns_added;
      active_columns = !ac;
      active_rows = !ar;
    }
  in
  let finish outcome ~bound ~proven =
    { outcome; bound; proven; stats = stats () }
  in
  if !infeasible_row then finish Infeasible ~bound:infinity ~proven:true
  else begin
    let last = ref None in
    let rec loop () =
      (* Deadline check at the round boundary: an expired budget abandons
         the pricing loop exactly like a round-limit stall, reporting the
         last master solution and the sound Lagrangian bound. *)
      if Sof_util.Budget.check budget then
        let x, objective =
          match !last with
          | Some (x, obj) -> (Some x, Some obj)
          | None -> (None, None)
        in
        finish (Stalled { x; objective }) ~bound:!best_bound ~proven:false
      else begin
      incr rounds;
      (* Compact the active columns and rows into a restricted problem. *)
      let sel = ref [] in
      for j = n - 1 downto 0 do
        if active_col.(j) then sel := j :: !sel
      done;
      let sel = Array.of_list !sel in
      let idx_of = Array.make n (-1) in
      Array.iteri (fun r j -> idx_of.(j) <- r) sel;
      let rsel = ref [] in
      for i = m - 1 downto 0 do
        if active_row.(i) then rsel := i :: !rsel
      done;
      let rsel = Array.of_list !rsel in
      let sub =
        {
          Simplex.n_vars = Array.length sel;
          objective = Array.map (fun j -> p.objective.(j)) sel;
          rows =
            Array.map
              (fun i ->
                List.filter_map
                  (fun (j, v) ->
                    if active_col.(j) then Some (idx_of.(j), v) else None)
                  p.rows.(i))
              rsel;
          relations = Array.map (fun i -> p.relations.(i)) rsel;
          rhs = Array.map (fun i -> prhs.(i)) rsel;
        }
      in
      (* Per-master pivot budget: one degenerate or ill-conditioned master
         must not burn the whole solve; a [Limit]ed master just stalls the
         loop, whose bound falls back to the (sound) Lagrangian value. *)
      let master_iters =
        let cap = (2 * (Array.length rsel + Array.length sel)) + 1000 in
        match max_iters with Some k -> min k cap | None -> cap
      in
      match Simplex.solve_dual ~max_iters:master_iters ?budget sub with
      | Simplex.Infeasible, _ ->
          (* A restricted master can be infeasible even when the full LP is
             not (the fix may need inactive columns).  Escalate once to the
             full problem; if that is infeasible, so is the LP. *)
          if !escalated then finish Infeasible ~bound:infinity ~proven:true
          else begin
            escalated := true;
            for j = 0 to n - 1 do
              activate_col j
            done;
            Array.fill active_row 0 m true;
            loop ()
          end
      | Simplex.Unbounded, _ ->
          (* The improving ray lives on active columns and satisfies every
             row touching them; inactive rows are constant (and
             zero-satisfied) along it, so the full LP is unbounded too. *)
          finish Unbounded ~bound:neg_infinity ~proven:true
      | Simplex.Iteration_limit, _ ->
          let x, objective =
            match !last with
            | Some (x, obj) -> (Some x, Some obj)
            | None -> (None, None)
          in
          finish (Stalled { x; objective }) ~bound:!best_bound ~proven:false
      | Simplex.Optimal { x = xr; objective }, dual ->
          let x = Array.make n 0.0 in
          Array.iteri (fun r j -> x.(j) <- xr.(r)) sel;
          last := Some (x, objective);
          let y = Array.make m 0.0 in
          (match dual with
          | Some d -> Array.iteri (fun r i -> y.(i) <- d.(r)) rsel
          | None -> ());
          (* Price every inactive column against the extended duals. *)
          let worst = ref [] in
          let lagrangian_gap = ref 0.0 in
          for j = 0 to n - 1 do
            if not active_col.(j) then begin
              incr columns_priced;
              let rc =
                List.fold_left
                  (fun acc (i, v) -> acc -. (y.(i) *. v))
                  p.objective.(j) cols.(j)
              in
              if rc < -.price_eps then begin
                worst := (rc, j) :: !worst;
                lagrangian_gap := !lagrangian_gap +. (rc *. var_upper)
              end
            end
          done;
          if !worst = [] then
            finish (Optimal { x; objective }) ~bound:objective ~proven:true
          else begin
            (* Not optimal yet: the Lagrangian value of the current duals
               is still a valid lower bound on the full LP. *)
            let yb = ref 0.0 in
            Array.iteri (fun i yi -> yb := !yb +. (yi *. prhs.(i))) y;
            best_bound := max !best_bound (!yb +. !lagrangian_gap);
            if !rounds >= max_rounds then
              finish
                (Stalled { x = Some x; objective = Some objective })
                ~bound:!best_bound ~proven:false
            else begin
              let picked =
                List.sort compare !worst |> List.filteri (fun k _ -> k < batch)
              in
              List.iter
                (fun (_, j) ->
                  incr columns_added;
                  activate_col j;
                  (* Companion columns: a 2-entry row such as a variable
                     link ([pi <= tau], [gamma <= sigma]) pins the new
                     column to a partner that would otherwise only price
                     in a round later — with the new column stuck at 0 in
                     between.  Activating the partner at once saves a full
                     master solve per linked pair. *)
                  List.iter
                    (fun (i, _) ->
                      match p.rows.(i) with
                      | [ (j1, _); (j2, _) ] ->
                          let other = if j1 = j then j2 else j1 in
                          if not active_col.(other) then begin
                            incr columns_added;
                            activate_col other
                          end
                      | _ -> ())
                    cols.(j))
                picked;
              loop ()
            end
          end
      end
    in
    loop ()
  end
