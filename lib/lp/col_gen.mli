(** Delayed column generation over a sparse LP.

    The dense tableau in {!Simplex} scales with [rows * columns]; the SOF
    relaxation at SoftLayer/Cogent sizes has tens of thousands of columns
    (per-destination, per-layer arc flows) of which only a few hundred are
    ever nonzero.  This module keeps a small {e restricted master} — the
    columns known to matter plus every row touching them — solves it with
    the dense simplex, prices the remaining columns against the master's
    dual values, and re-solves with the most violated columns added until
    no column has negative reduced cost.

    Soundness contract: rows not touching any active column must be
    satisfied by the all-zero assignment (true of the SOF relaxation: only
    the assignment equalities have nonzero RHS, and their columns are
    activated up front).  On [proven = true] termination the value {e is}
    the full-LP optimum: the extended primal (inactive columns at zero)
    and the extended duals (inactive rows at zero) form an optimal pair.
    When the loop is cut short, [bound] falls back to the Lagrangian value
    [y.b + sum_j min(0, rc_j) * var_upper] — still a valid lower bound on
    the full LP whenever every feasible point satisfies
    [x_j <= var_upper]. *)

type stats = {
  rounds : int;           (** restricted masters solved *)
  columns_priced : int;   (** cumulative reduced-cost evaluations *)
  columns_added : int;    (** columns activated by pricing *)
  active_columns : int;   (** final restricted-master width *)
  active_rows : int;      (** final restricted-master height *)
}

type outcome =
  | Optimal of { x : float array; objective : float }
      (** full-length primal (inactive columns are zero) *)
  | Infeasible
  | Unbounded
  | Stalled of { x : float array option; objective : float option }
      (** round/iteration budget hit before pricing converged; [x] is the
          best restricted solution seen, an upper bound on the LP value *)

type result = {
  outcome : outcome;
  bound : float;
      (** sound lower bound on the full LP value; [neg_infinity] when
          nothing was proven (e.g. stall with [var_upper = infinity]) *)
  proven : bool;  (** [bound] equals the full LP optimum *)
  stats : stats;
}

val solve :
  ?max_rounds:int ->
  ?batch:int ->
  ?max_iters:int ->
  ?var_upper:float ->
  ?perturb:float ->
  ?initial:int list ->
  ?budget:Sof_util.Budget.t ->
  Simplex.problem ->
  result
(** [max_rounds] caps pricing rounds (default 60); [batch] is the number
    of columns added per round (default 32); [max_iters] is forwarded to
    each restricted {!Simplex.solve_dual}; [var_upper] (default
    [infinity]) must upper-bound every variable over the feasible region
    for the stall-time Lagrangian bound to be valid — pass [1.0] for 0/1
    relaxations; [perturb] (default [1e-7]) relaxes every inequality
    outward by a tiny row-dependent amount before solving, an
    anti-degeneracy device that can only lower the (still sound) bound by
    O([perturb] * sum |y|) — pass [0.0] for exact-degenerate behaviour;
    [initial] seeds the active column set (pass the support of a known
    feasible point so the first master is feasible).

    An expired [budget] abandons cooperatively: the pricing loop stops at
    the next round boundary (and the running master at its next pivot)
    with [Stalled] carrying the last master solution, [bound] the sound
    Lagrangian fallback, and [proven = false] — the same shape as a
    round-limit stall, never an exception.  [?budget:None] is
    bit-identical to the unbudgeted call. *)
