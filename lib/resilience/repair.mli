(** Incremental self-healing of a deployed service overlay forest.

    The repair engine heals a forest after one data-plane failure without
    re-running SOFDA from scratch whenever a cheaper local rule applies,
    mirroring how Section VII-C's dynamic rules avoid full re-embeddings
    for membership events:

    - a cut link crossed by walks or delivery edges is rerouted with
      {!Sof.Dynamic.reroute_link} on the degraded instance (dead link
      gone, so the shortest paths route around it);
    - a crashed VM's VNF is re-hosted on the cheapest feasible spare with
      {!Sof.Dynamic.relocate_vm};
    - a dead destination leaves the forest via
      {!Sof.Dynamic.destination_leave};
    - anything the local rules cannot absorb (a dead transit/source node,
      a failed reroute or relocation) falls back to a {e scoped} SOFDA
      re-solve: only the trees touching the failure are torn down and
      re-embedded for their destinations, every unaffected tree is kept
      verbatim;
    - only when the merged scoped solution fails validation does the
      engine re-solve the whole degraded instance.

    Repair cost is measured as {e churn}: the cost of components of the
    healed forest absent from the old one (new walk/delivery edges at
    their connection cost, newly enabled VMs at their setup cost) — the
    reconfiguration a controller must push, which is the recovery-cost
    metric of the online service-chain literature.  A from-scratch
    re-solve discards the deployed forest and installs the new embedding
    in full, so it is charged its complete installation cost
    ({!install_cost}); the repair engine's whole value is the installed
    state it preserves.  (A re-solve followed by an incremental diff
    against the deployed rules is a third strategy — that diff is exactly
    what the repair engine computes without paying for the global
    solve.) *)

type action =
  | Noop           (** failure does not touch the forest *)
  | Rerouted       (** walks/delivery rerouted around a dead link *)
  | Relocated      (** crashed VM's VNF moved to a spare *)
  | Dest_dropped   (** the failed node was a leaf destination *)
  | Rescoped       (** scoped SOFDA re-solve of the affected trees *)
  | Resolved       (** full SOFDA re-solve of the degraded instance *)

val action_to_string : action -> string

type t = {
  problem : Sof.Problem.t;  (** degraded instance the healed forest is valid for *)
  forest : Sof.Forest.t;
  action : action;
  churn : float;            (** repair cost: newly installed components *)
  resolve_churn : float option;
      (** {!install_cost} of a from-scratch re-solve of the same degraded
          instance, when [compare_resolve] was requested and the re-solve
          exists *)
  dropped : int list;       (** destinations no longer servable (dead or
                                disconnected beyond feasibility) *)
}

val churn : old_:Sof.Forest.t -> Sof.Forest.t -> float
(** Cost of the new forest's components absent from the old: edges (walk
    hops and delivery, deduplicated and undirected) at connection cost
    under the {e new} forest's instance, plus setup cost of newly enabled
    [(vm, vnf)] pairs. *)

val install_cost : Sof.Forest.t -> float
(** Full installation cost of a forest from a clean slate — [churn]
    against an empty deployment: every deduplicated edge at connection
    cost plus every enabled VM's setup cost. *)

val touches : Sof.Forest.t -> Fault.event -> bool
(** Does the failed element carry any of the forest's walks, delivery
    edges or enabled VMs? *)

val full_resolve :
  ?cache:Sof_graph.Metric.Cache.t ->
  ?budget:Sof_util.Budget.t ->
  Sof.Problem.t ->
  (Sof.Problem.t * Sof.Forest.t * int list) option
(** Re-embed the degraded instance from scratch for every feasible
    destination: [(problem restricted to served dests, forest, dropped)].
    [None] when nothing is servable — or when an expired [budget] made
    the component solves come back empty (the underlying {!Sof.Sofda}
    solves are anytime).  Exposed for the chaos engine's revival path and
    the repair-vs-resolve comparison. *)

val heal :
  ?compare_resolve:bool ->
  ?fdag:Sof.Fdag.t ->
  ?budget:Sof_util.Budget.t ->
  health:Fault.health ->
  event:Fault.event ->
  Sof.Forest.t ->
  t option
(** Heal [forest] after [event], where [health] already includes the
    event.  Control-plane events and recoveries heal to a rebased [Noop].
    [None] means total outage: no source survives, or no destination can
    be served on the degraded instance.  When [compare_resolve] is set
    (default [false]) the engine additionally runs the full re-solve and
    reports its churn for the repair-vs-resolve ratio.

    Every validity probe of the ladder goes through an {!Sof.Fdag.t}
    evaluation context — pass [fdag] to share node attributes across
    heals of the same run (a heal leaves most walks untouched, so the
    warm context re-checks only the dirty region, bit-identically to
    {!Sof.Validate.check}); omitted, each heal creates its own.

    The escalation ladder polls [budget] at each re-solve rung boundary:
    an expired budget abandons the heal ([None]) instead of starting the
    scoped or full re-solve, and the rungs themselves inherit the token
    through their anytime SOFDA solves — so a heal never overruns its
    deadline by more than one construction.  The cheap incremental rules
    (reroute / relocate / leave) always run.  [?budget:None] is
    bit-identical to the unbudgeted call. *)
