module Graph = Sof_graph.Graph
module Problem = Sof.Problem
module Rng = Sof_util.Rng

type event =
  | Link_down of int * int
  | Link_up of int * int
  | Node_down of int
  | Node_up of int
  | Vm_crash of int
  | Vm_recover of int
  | Partition of int
  | Heal of int

type timed = { time : float; event : event }

let norm (u, v) = if u < v then (u, v) else (v, u)

let event_to_string = function
  | Link_down (u, v) -> Printf.sprintf "link-down %d-%d" u v
  | Link_up (u, v) -> Printf.sprintf "link-up %d-%d" u v
  | Node_down v -> Printf.sprintf "node-down %d" v
  | Node_up v -> Printf.sprintf "node-up %d" v
  | Vm_crash v -> Printf.sprintf "vm-crash %d" v
  | Vm_recover v -> Printf.sprintf "vm-recover %d" v
  | Partition c -> Printf.sprintf "partition %d" c
  | Heal c -> Printf.sprintf "heal %d" c

let is_failure = function
  | Link_down _ | Node_down _ | Vm_crash _ | Partition _ -> true
  | Link_up _ | Node_up _ | Vm_recover _ | Heal _ -> false

(* --- schedules -------------------------------------------------------- *)

type weights = { link : int; node : int; vm : int; partition : int }

let default_weights = { link = 6; node = 2; vm = 3; partition = 1 }

let schedule ~rng ?(weights = default_weights) ?(mtbf = 60.0) ?(mttr = 15.0)
    ?(controllers = 0) ~count (p : Problem.t) =
  let links = Array.of_list (List.map (fun (u, v, _) -> (u, v)) (Graph.edges p.Problem.graph)) in
  let nodes = Array.init (Problem.n p) Fun.id in
  let vms = Array.of_list p.Problem.vms in
  let down_links = Hashtbl.create 8 in
  let down_nodes = Hashtbl.create 8 in
  let crashed = Hashtbl.create 8 in
  let parted = Hashtbl.create 4 in
  let live_sources () =
    List.length
      (List.filter (fun s -> not (Hashtbl.mem down_nodes s)) p.Problem.sources)
  in
  let live_dests () =
    List.length
      (List.filter (fun d -> not (Hashtbl.mem down_nodes d)) p.Problem.dests)
  in
  (* Draw a target of one class among healthy elements; [None] when the
     class has nothing left to break. *)
  let pick_target cls =
    let pick_from arr ok =
      let candidates = Array.to_list arr |> List.filter ok in
      match candidates with
      | [] -> None
      | cs -> Some (List.nth cs (Rng.int rng (List.length cs)))
    in
    match cls with
    | `Link ->
        Option.map
          (fun l -> Link_down (fst l, snd l))
          (pick_from links (fun l -> not (Hashtbl.mem down_links (norm l))))
    | `Node ->
        Option.map
          (fun v -> Node_down v)
          (pick_from nodes (fun v ->
               (not (Hashtbl.mem down_nodes v))
               && (not (Problem.is_source p v) || live_sources () > 1)
               && (not (Problem.is_dest p v) || live_dests () > 1)))
    | `Vm ->
        Option.map
          (fun v -> Vm_crash v)
          (pick_from vms (fun v ->
               (not (Hashtbl.mem crashed v)) && not (Hashtbl.mem down_nodes v)))
    | `Partition ->
        if controllers <= 0 then None
        else
          Option.map
            (fun c -> Partition c)
            (pick_from (Array.init controllers Fun.id) (fun c ->
                 not (Hashtbl.mem parted c)))
  in
  let classes =
    List.concat
      [
        List.init (max 0 weights.link) (fun _ -> `Link);
        List.init (max 0 weights.node) (fun _ -> `Node);
        List.init (max 0 weights.vm) (fun _ -> `Vm);
        (if controllers > 0 then
           List.init (max 0 weights.partition) (fun _ -> `Partition)
         else []);
      ]
    |> Array.of_list
  in
  if Array.length classes = 0 then []
  else begin
    let events = ref [] in
    let now = ref 0.0 in
    (* recoveries scheduled but not yet elapsed, as (time, heal thunk) *)
    let pending = ref [] in
    let heal_elapsed t =
      let due, later = List.partition (fun (rt, _) -> rt <= t) !pending in
      pending := later;
      List.iter (fun (_, heal) -> heal ()) due
    in
    for _ = 1 to count do
      now := !now +. Rng.exponential rng (1.0 /. mtbf);
      heal_elapsed !now;
      (* a few re-draws paper over exhausted classes *)
      let rec draw tries =
        if tries = 0 then None
        else
          match pick_target (Rng.pick rng classes) with
          | Some e -> Some e
          | None -> draw (tries - 1)
      in
      match draw 8 with
      | None -> ()
      | Some e ->
          let recovery_at = !now +. Rng.exponential rng (1.0 /. mttr) in
          let recovery =
            match e with
            | Link_down (u, v) ->
                let l = norm (u, v) in
                Hashtbl.replace down_links l ();
                Some (Link_up (u, v), fun () -> Hashtbl.remove down_links l)
            | Node_down v ->
                Hashtbl.replace down_nodes v ();
                Some (Node_up v, fun () -> Hashtbl.remove down_nodes v)
            | Vm_crash v ->
                Hashtbl.replace crashed v ();
                Some (Vm_recover v, fun () -> Hashtbl.remove crashed v)
            | Partition c ->
                Hashtbl.replace parted c ();
                Some (Heal c, fun () -> Hashtbl.remove parted c)
            | _ -> None
          in
          events := { time = !now; event = e } :: !events;
          (match recovery with
          | Some (r, heal) ->
              events := { time = recovery_at; event = r } :: !events;
              pending := (recovery_at, heal) :: !pending
          | None -> ())
    done;
    List.stable_sort (fun a b -> compare a.time b.time) (List.rev !events)
  end

let of_list l =
  List.stable_sort
    (fun a b -> compare a.time b.time)
    (List.map (fun (time, event) -> { time; event }) l)

let link_outages ~horizon trace =
  let open_at = Hashtbl.create 8 in
  let windows = ref [] in
  List.iter
    (fun { time; event } ->
      match event with
      | Link_down (u, v) ->
          let l = norm (u, v) in
          if not (Hashtbl.mem open_at l) then Hashtbl.replace open_at l time
      | Link_up (u, v) -> (
          let l = norm (u, v) in
          match Hashtbl.find_opt open_at l with
          | Some t0 ->
              Hashtbl.remove open_at l;
              windows := (l, t0, time) :: !windows
          | None -> ())
      | _ -> ())
    trace;
  Hashtbl.iter (fun l t0 -> windows := (l, t0, horizon) :: !windows) open_at;
  List.sort compare !windows

(* --- health ----------------------------------------------------------- *)

type health = {
  base : Problem.t;
  down_links : (int * int) list;
  down_nodes : int list;
  crashed_vms : int list;
  partitioned : int list;
}

let healthy base =
  { base; down_links = []; down_nodes = []; crashed_vms = []; partitioned = [] }

let add x l = if List.mem x l then l else x :: l
let remove x l = List.filter (fun y -> y <> x) l

let apply h = function
  | Link_down (u, v) -> { h with down_links = add (norm (u, v)) h.down_links }
  | Link_up (u, v) -> { h with down_links = remove (norm (u, v)) h.down_links }
  | Node_down v -> { h with down_nodes = add v h.down_nodes }
  | Node_up v -> { h with down_nodes = remove v h.down_nodes }
  | Vm_crash v -> { h with crashed_vms = add v h.crashed_vms }
  | Vm_recover v -> { h with crashed_vms = remove v h.crashed_vms }
  | Partition c -> { h with partitioned = add c h.partitioned }
  | Heal c -> { h with partitioned = remove c h.partitioned }

let degrade h ~dests =
  let p = h.base in
  let node_dead v = List.mem v h.down_nodes in
  let graph =
    Graph.filter_edges p.Problem.graph (fun u v _ ->
        (not (node_dead u))
        && (not (node_dead v))
        && not (List.mem (norm (u, v)) h.down_links))
  in
  let vm_dead v = node_dead v || List.mem v h.crashed_vms in
  let vms = List.filter (fun v -> not (vm_dead v)) p.Problem.vms in
  let node_cost =
    Array.mapi
      (fun v c -> if List.mem v vms then c else 0.0)
      p.Problem.node_cost
  in
  let sources = List.filter (fun s -> not (node_dead s)) p.Problem.sources in
  let dests =
    List.sort_uniq compare (List.filter (fun d -> not (node_dead d)) dests)
  in
  if sources = [] || dests = [] then None
  else
    Some
      (Problem.make ~graph ~node_cost ~vms ~sources ~dests
         ~chain_length:p.Problem.chain_length)

let servable (p : Problem.t) dest =
  let uf = Sof_graph.Union_find.create (Problem.n p) in
  Graph.iter_edges p.Problem.graph (fun u v _ ->
      ignore (Sof_graph.Union_find.union uf u v));
  let comp v = Sof_graph.Union_find.find uf v in
  let c = comp dest in
  List.exists (fun s -> comp s = c) p.Problem.sources
  && List.length (List.filter (fun m -> comp m = c) p.Problem.vms)
     >= p.Problem.chain_length
