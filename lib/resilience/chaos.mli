(** Chaos runner: drive a deployed forest through a failure trace and
    account availability, repair cost and repair-vs-resolve ratios.

    The engine folds a {!Fault.timed} trace over a forest.  Every failure
    event is healed by {!Repair.heal}; every recovery rebases the forest
    onto the (less) degraded instance and tries to re-graft destinations
    that were dropped while their node or their connectivity was dead
    ({!Sof.Dynamic.destination_join} first, scoped re-solve second).
    Control-plane events only flip {!Fault.health.partitioned}.

    Every event is logged with the repair action taken, the churn paid,
    the comparison re-solve churn (when requested), the set of currently
    served destinations, and the post-repair validation verdict — the
    chaos CLI and bench read everything from this log. *)

type entry = {
  time : float;
  event : Fault.event;
  action : Repair.action option;  (** [None] when the network was dead *)
  churn : float;
  resolve_churn : float option;
  served : int;                   (** destinations served after the event *)
  dropped : int list;             (** destinations newly dropped *)
  rejoined : int list;            (** destinations re-grafted on recovery *)
  valid : bool;                   (** post-event forest passed Validate *)
}

type report = {
  entries : entry list;
  availability : float;
      (** mean over events of [served / |D|] of the pristine instance *)
  repair_wins : int;
      (** impactful failures where repair churn < full re-solve churn *)
  repair_ties : int;
  comparisons : int;
      (** impactful failures where both churns were measurable *)
  total_churn : float;
  invalid_events : int;           (** must be 0 — asserted by tests *)
  final_forest : Sof.Forest.t option;  (** [None] after an unhealed total outage *)
}

val run :
  ?compare_resolve:bool ->
  trace:Fault.timed list ->
  Sof.Forest.t ->
  report
(** [run ~trace forest] — [forest] must be valid for its instance, which
    is taken as the pristine substrate.  [compare_resolve] (default
    [true]) prices every impactful failure's alternative full re-solve
    for the win/tie counters. *)
