(** Chaos runner: drive a deployed forest through a failure trace and
    account availability, repair cost and repair-vs-resolve ratios.

    The engine folds a {!Fault.timed} trace over a forest.  Every failure
    event is healed by {!Repair.heal}; every recovery rebases the forest
    onto the (less) degraded instance and tries to re-graft destinations
    that were dropped while their node or their connectivity was dead
    ({!Sof.Dynamic.destination_join} first, scoped re-solve second).
    Control-plane events only flip {!Fault.health.partitioned}.

    Every event is logged with the repair action taken, the churn paid,
    the comparison re-solve churn (when requested), the set of currently
    served destinations, and the post-repair validation verdict — the
    chaos CLI and bench read everything from this log. *)

type entry = {
  time : float;
  event : Fault.event;
  action : Repair.action option;  (** [None] when the network was dead *)
  churn : float;
  resolve_churn : float option;
  served : int;                   (** destinations served after the event *)
  dropped : int list;             (** destinations newly dropped *)
  rejoined : int list;            (** destinations re-grafted on recovery *)
  valid : bool;                   (** post-event forest passed Validate *)
  eval_wall_s : float;
      (** wall seconds this event spent inside {!Sof.Fdag.eval} (every
          validity probe of the event goes through the run's shared
          context, the heal ladder's included) *)
  solve_wall_s : float;
      (** the rest of the event's handling wall: repair, re-solve and
          re-graft work with evaluation subtracted out *)
}

type report = {
  entries : entry list;
  availability : float;
      (** mean over events of [served / |D|] of the pristine instance *)
  repair_wins : int;
      (** impactful failures where repair churn < full re-solve churn *)
  repair_ties : int;
  comparisons : int;
      (** impactful failures where both churns were measurable *)
  total_churn : float;
  invalid_events : int;           (** must be 0 — asserted by tests *)
  eval_wall_s : float;            (** sum of the entries' evaluation walls *)
  solve_wall_s : float;           (** sum of the entries' solver walls *)
  final_forest : Sof.Forest.t option;  (** [None] after an unhealed total outage *)
}

val run :
  ?compare_resolve:bool ->
  ?fdag:Sof.Fdag.t ->
  trace:Fault.timed list ->
  Sof.Forest.t ->
  report
(** [run ~trace forest] — [forest] must be valid for its instance, which
    is taken as the pristine substrate.  [compare_resolve] (default
    [true]) prices every impactful failure's alternative full re-solve
    for the win/tie counters.

    One {!Sof.Fdag.t} evaluation context is threaded through the whole
    run (pass [fdag] to share it wider): post-event validation, rejoin
    probes and the heal ladder's own checks all hit the same shared-DAG
    node cache, so consecutive events — which mostly reuse each other's
    walks — re-evaluate only their dirty region.  Verdicts are
    bit-identical to {!Sof.Validate.check}. *)
