module Problem = Sof.Problem
module Forest = Sof.Forest
module Validate = Sof.Validate
module Dynamic = Sof.Dynamic
module Fdag = Sof.Fdag
module Timer = Sof_util.Timer

type entry = {
  time : float;
  event : Fault.event;
  action : Repair.action option;
  churn : float;
  resolve_churn : float option;
  served : int;
  dropped : int list;
  rejoined : int list;
  valid : bool;
  eval_wall_s : float;
  solve_wall_s : float;
}

type report = {
  entries : entry list;
  availability : float;
  repair_wins : int;
  repair_ties : int;
  comparisons : int;
  total_churn : float;
  invalid_events : int;
  eval_wall_s : float;
  solve_wall_s : float;
  final_forest : Forest.t option;
}

(* Try to re-graft one lost destination onto the current forest; fall back
   to leaving it lost.  Used on recovery events. *)
let try_rejoin ~fdag forest d =
  if Problem.is_dest forest.Forest.problem d then None
  else
    match Dynamic.destination_join forest d with
    | Some upd when (Fdag.eval fdag upd.Dynamic.forest).Fdag.valid ->
        Some upd.Dynamic.forest
    | _ -> None
    | exception Invalid_argument _ -> None

(* Repair ladder rung indices for the [chaos.repair_rung] histogram:
   escalation level per handled event (None — no repair possible — is the
   top rung). *)
let rung_index = function
  | Some Repair.Noop -> 0
  | Some Repair.Rerouted -> 1
  | Some Repair.Relocated -> 2
  | Some Repair.Dest_dropped -> 3
  | Some Repair.Rescoped -> 4
  | Some Repair.Resolved -> 5
  | None -> 6

let run ?(compare_resolve = true) ?fdag ~trace forest0 =
  Sof_obs.Obs.span "chaos.run" @@ fun () ->
  let fdag = match fdag with Some c -> c | None -> Fdag.create () in
  let base = forest0.Forest.problem in
  (* Availability denominator: the pristine destination set.  Destinations
     pruned later (node death, repair's leave-based drop) shrink [served]
     but never this denominator, so a permanently lost destination keeps
     counting against availability in every subsequent entry. *)
  let n_dests = List.length base.Problem.dests in
  let health = ref (Fault.healthy base) in
  let forest = ref (Some forest0) in
  let lost = ref [] in (* dests currently unserved (dropped or node-dead) *)
  let entries = ref [] in
  (* Per-event wall split: everything the event spends inside [Fdag.eval]
     (through the shared context, including the heal's own validity
     probes) is evaluation; the rest of the event's handling is solving. *)
  let ev_t0 = ref 0 and ev_e0 = ref 0.0 in
  let log ~time ~event ~action ~churn ~resolve_churn ~dropped ~rejoined ~valid =
    Sof_obs.Obs.count "chaos.events" 1;
    Sof_obs.Obs.record "chaos.repair_rung" (float_of_int (rung_index action));
    let served =
      match !forest with
      | None -> 0
      | Some f -> List.length f.Forest.problem.Problem.dests
    in
    let eval_wall_s = Fdag.eval_wall_s fdag -. !ev_e0 in
    let total_wall_s =
      float_of_int (Timer.now_ns () - !ev_t0) *. 1e-9
    in
    entries :=
      {
        time;
        event;
        action;
        churn;
        resolve_churn;
        served;
        dropped;
        rejoined;
        valid;
        eval_wall_s;
        solve_wall_s = Float.max 0.0 (total_wall_s -. eval_wall_s);
      }
      :: !entries
  in
  List.iter
    (fun { Fault.time; event } ->
      ev_t0 := Timer.now_ns ();
      ev_e0 := Fdag.eval_wall_s fdag;
      health := Fault.apply !health event;
      match !forest with
      | Some f -> (
          (* one path for both halves: Repair.heal rebases recoveries and
             control-plane events as Noop *)
          match Repair.heal ~compare_resolve ~fdag ~health:!health ~event f with
          | Some r ->
              forest := Some r.Repair.forest;
              lost :=
                List.sort_uniq compare
                  (r.Repair.dropped
                  @ List.filter
                      (fun d ->
                        not
                          (Problem.is_dest r.Repair.problem d))
                      !lost);
              (* on recoveries, try to bring lost destinations back *)
              let rejoined = ref [] in
              (if not (Fault.is_failure event) then
                 let healthy_again d =
                   not (List.mem d !health.Fault.down_nodes)
                 in
                 List.iter
                   (fun d ->
                     if healthy_again d then
                       match try_rejoin ~fdag (Option.get !forest) d with
                       | Some f' ->
                           forest := Some f';
                           rejoined := d :: !rejoined
                       | None -> ())
                   !lost);
              lost := List.filter (fun d -> not (List.mem d !rejoined)) !lost;
              let valid =
                match !forest with
                | Some f -> (Fdag.eval fdag f).Fdag.valid
                | None -> false
              in
              log ~time ~event ~action:(Some r.Repair.action)
                ~churn:r.Repair.churn ~resolve_churn:r.Repair.resolve_churn
                ~dropped:r.Repair.dropped ~rejoined:!rejoined ~valid
          | None ->
              (* total outage: every destination is lost until recoveries
                 make the instance solvable again *)
              lost :=
                List.sort_uniq compare
                  (f.Forest.problem.Problem.dests @ !lost);
              forest := None;
              log ~time ~event ~action:None ~churn:0.0 ~resolve_churn:None
                ~dropped:f.Forest.problem.Problem.dests ~rejoined:[]
                ~valid:true)
      | None -> (
          (* dead network: recoveries may revive it via a full solve *)
          let dests =
            List.filter
              (fun d -> not (List.mem d !health.Fault.down_nodes))
              base.Problem.dests
          in
          match Fault.degrade !health ~dests with
          | None ->
              log ~time ~event ~action:None ~churn:0.0 ~resolve_churn:None
                ~dropped:[] ~rejoined:[] ~valid:true
          | Some p' -> (
              match Repair.full_resolve p' with
              | Some (pf, f, dropped) ->
                  forest := Some f;
                  let rejoined = pf.Problem.dests in
                  lost :=
                    List.filter
                      (fun d -> not (List.mem d rejoined))
                      base.Problem.dests;
                  log ~time ~event ~action:(Some Repair.Resolved)
                    ~churn:(Forest.total_cost f) ~resolve_churn:None ~dropped
                    ~rejoined ~valid:(Fdag.eval fdag f).Fdag.valid
              | None ->
                  log ~time ~event ~action:None ~churn:0.0 ~resolve_churn:None
                    ~dropped:[] ~rejoined:[] ~valid:true)))
    trace;
  let entries = List.rev !entries in
  let availability =
    match entries with
    | [] -> 1.0
    | _ ->
        List.fold_left
          (fun acc e -> acc +. (float_of_int e.served /. float_of_int n_dests))
          0.0 entries
        /. float_of_int (List.length entries)
  in
  let wins, ties, comparisons =
    List.fold_left
      (fun (w, t, c) e ->
        match (e.action, e.resolve_churn) with
        | Some a, Some rc when a <> Repair.Noop ->
            if e.churn < rc -. 1e-9 then (w + 1, t, c + 1)
            else if e.churn <= rc +. 1e-9 then (w, t + 1, c + 1)
            else (w, t, c + 1)
        | _ -> (w, t, c))
      (0, 0, 0) entries
  in
  {
    entries;
    availability;
    repair_wins = wins;
    repair_ties = ties;
    comparisons;
    total_churn = List.fold_left (fun acc e -> acc +. e.churn) 0.0 entries;
    invalid_events =
      List.length (List.filter (fun e -> not e.valid) entries);
    eval_wall_s =
      List.fold_left (fun acc (e : entry) -> acc +. e.eval_wall_s) 0.0 entries;
    solve_wall_s =
      List.fold_left
        (fun acc (e : entry) -> acc +. e.solve_wall_s)
        0.0 entries;
    final_forest = !forest;
  }
