module Problem = Sof.Problem
module Forest = Sof.Forest
module Validate = Sof.Validate
module Dynamic = Sof.Dynamic
module Sofda = Sof.Sofda
module Uf = Sof_graph.Union_find

type action = Noop | Rerouted | Relocated | Dest_dropped | Rescoped | Resolved

let action_to_string = function
  | Noop -> "noop"
  | Rerouted -> "rerouted"
  | Relocated -> "relocated"
  | Dest_dropped -> "dest-dropped"
  | Rescoped -> "rescoped"
  | Resolved -> "resolved"

type t = {
  problem : Problem.t;
  forest : Forest.t;
  action : action;
  churn : float;
  resolve_churn : float option;
  dropped : int list;
}

let norm (u, v) = if u < v then (u, v) else (v, u)

(* --- churn ------------------------------------------------------------ *)

let forest_edges (f : Forest.t) =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (w : Forest.walk) ->
      for i = 0 to Array.length w.Forest.hops - 2 do
        Hashtbl.replace tbl (norm (w.Forest.hops.(i), w.Forest.hops.(i + 1))) ()
      done)
    f.Forest.walks;
  List.iter (fun e -> Hashtbl.replace tbl (norm e) ()) f.Forest.delivery;
  tbl

(* Installation cost from a clean slate: every (deduplicated) edge at its
   connection cost plus every enabled VM's setup — the churn of a
   from-scratch re-solve, which tears the deployed forest down and
   installs the new one in full. *)
let install_cost (f : Forest.t) =
  let p = f.Forest.problem in
  let edge_part =
    Hashtbl.fold
      (fun (u, v) () acc -> acc +. Problem.edge_cost p u v)
      (forest_edges f) 0.0
  in
  List.fold_left
    (fun acc (vm, _) -> acc +. Problem.setup_cost p vm)
    edge_part (Forest.enabled_vms f)

let churn ~old_ (nw : Forest.t) =
  let old_edges = forest_edges old_ in
  let old_vms = Hashtbl.create 16 in
  List.iter (fun ev -> Hashtbl.replace old_vms ev ()) (Forest.enabled_vms old_);
  let p = nw.Forest.problem in
  let edge_part =
    Hashtbl.fold
      (fun (u, v) () acc ->
        if Hashtbl.mem old_edges (u, v) then acc
        else acc +. Problem.edge_cost p u v)
      (forest_edges nw) 0.0
  in
  List.fold_left
    (fun acc (vm, vnf) ->
      if Hashtbl.mem old_vms (vm, vnf) then acc
      else acc +. Problem.setup_cost p vm)
    edge_part (Forest.enabled_vms nw)

(* --- touch tests ------------------------------------------------------ *)

let walk_uses_link (w : Forest.walk) (u, v) =
  let rec scan i =
    i < Array.length w.Forest.hops - 1
    && (norm (w.Forest.hops.(i), w.Forest.hops.(i + 1)) = norm (u, v)
       || scan (i + 1))
  in
  scan 0

let walk_uses_node (w : Forest.walk) x =
  Array.exists (fun h -> h = x) w.Forest.hops

let touches (f : Forest.t) (event : Fault.event) =
  match event with
  | Fault.Link_down (u, v) ->
      List.exists (fun w -> walk_uses_link w (u, v)) f.Forest.walks
      || List.exists (fun e -> norm e = norm (u, v)) f.Forest.delivery
  | Fault.Node_down x ->
      List.exists (fun w -> walk_uses_node w x) f.Forest.walks
      || List.exists (fun (a, b) -> a = x || b = x) f.Forest.delivery
      || Problem.is_dest f.Forest.problem x
  | Fault.Vm_crash vm ->
      List.exists (fun (m, _) -> m = vm) (Forest.enabled_vms f)
  | _ -> false

(* --- tree anatomy (for scoped re-solves) ------------------------------ *)

(* A forest is a set of trees: walks plus the delivery components their
   fully-processed suffixes inject into.  [anatomy] computes, over a valid
   forest, the delivery components (as a union-find over node ids), each
   walk's fully-processed hops, and each destination's serving structure. *)

let full_hops (w : Forest.walk) =
  match List.rev w.Forest.marks with
  | [] -> []
  | m :: _ ->
      let out = ref [] in
      for i = Array.length w.Forest.hops - 1 downto m.Forest.pos do
        out := w.Forest.hops.(i) :: !out
      done;
      List.sort_uniq compare !out

let delivery_uf (f : Forest.t) =
  let uf = Uf.create (Problem.n f.Forest.problem) in
  List.iter (fun (a, b) -> ignore (Uf.union uf a b)) f.Forest.delivery;
  uf

(* --- healing ---------------------------------------------------------- *)

let rebase p (f : Forest.t) =
  Forest.make p ~walks:f.Forest.walks ~delivery:f.Forest.delivery

(* Validity through the shared-DAG evaluator when a context is threaded
   in: a heal mostly reuses untouched walks, so the warm context re-checks
   only the dirty region ([Fdag.eval] is bit-identical to
   [Validate.check]). *)
let valid ?fdag f =
  match fdag with
  | Some ctx -> (Sof.Fdag.eval ctx f).Sof.Fdag.valid
  | None -> Validate.check f = Ok ()

(* Destinations of [p] that a single-dest SOFDA can actually embed; the
   cheap [Fault.servable] filter prunes first, a real solve settles the
   stragglers when the optimistic whole-set solve failed. *)
let feasible_dests p dests = List.filter (Fault.servable p) dests

(* SOFDA's auxiliary-tree construction spans all its terminals, so it
   returns [None] outright when sources/VMs/destinations live in several
   connected components — exactly the shape a link or node failure leaves
   behind.  [solve_for] therefore partitions the instance per component
   (sources and VMs restricted to the component, costs zeroed elsewhere as
   {!Problem.make} requires), solves each sub-instance, and merges the
   per-component trees: components are node-disjoint, so the merged forest
   cannot acquire a VNF conflict. *)
let sub_problem p ~sources ~vms ~dests =
  let node_cost =
    Array.mapi
      (fun v c -> if List.mem v vms then c else 0.0)
      p.Problem.node_cost
  in
  Problem.make ~graph:p.Problem.graph ~node_cost ~vms ~sources ~dests
    ~chain_length:p.Problem.chain_length

(* Solve one component's destinations: on failure of the whole set, drop
   the individually-infeasible stragglers and retry. *)
let solve_component ?cache ?budget p ~sources ~vms dests =
  let attempt ds =
    if ds = [] then None
    else
      Sofda.solve_forest ?cache ?budget (sub_problem p ~sources ~vms ~dests:ds)
  in
  match attempt dests with
  | Some f -> (f.Forest.walks, f.Forest.delivery, dests, [])
  | None -> (
      let kept = List.filter (fun d -> attempt [ d ] <> None) dests in
      match attempt kept with
      | Some f ->
          ( f.Forest.walks,
            f.Forest.delivery,
            kept,
            List.filter (fun d -> not (List.mem d kept)) dests )
      | None -> ([], [], [], dests))

let solve_for ?cache ?budget p dests =
  match dests with
  | [] -> None
  | _ ->
      let uf = Uf.create (Problem.n p) in
      List.iter
        (fun (u, v, _) -> ignore (Uf.union uf u v))
        (Sof_graph.Graph.edges p.Problem.graph);
      let groups = Hashtbl.create 4 in
      List.iter
        (fun d ->
          let c = Uf.find uf d in
          let prev = Option.value ~default:[] (Hashtbl.find_opt groups c) in
          Hashtbl.replace groups c (d :: prev))
        dests;
      let comps =
        List.sort compare
          (Hashtbl.fold (fun c ds acc -> (c, List.rev ds) :: acc) groups [])
      in
      let walks, delivery, served, dropped =
        List.fold_left
          (fun (ws, es, sv, dr) (c, ds) ->
            let sources =
              List.filter (fun s -> Uf.find uf s = c) p.Problem.sources
            in
            let vms = List.filter (fun m -> Uf.find uf m = c) p.Problem.vms in
            if sources = [] || vms = [] then (ws, es, sv, ds @ dr)
            else
              let w, e, s, d =
                solve_component ?cache ?budget p ~sources ~vms ds
              in
              (w @ ws, e @ es, s @ sv, d @ dr))
          ([], [], [], []) comps
      in
      if served = [] then None
      else
        let pd =
          Problem.make ~graph:p.Problem.graph ~node_cost:p.Problem.node_cost
            ~vms:p.Problem.vms ~sources:p.Problem.sources
            ~dests:(List.sort compare served)
            ~chain_length:p.Problem.chain_length
        in
        Some (pd, Forest.make pd ~walks ~delivery, dropped)

(* Full re-solve of the degraded instance for every feasible destination. *)
let full_resolve ?cache ?budget (p' : Problem.t) =
  let dests = feasible_dests p' p'.Problem.dests in
  match solve_for ?cache ?budget p' dests with
  | None -> None
  | Some (pd, f, extra_dropped) ->
      let dropped =
        List.filter (fun d -> not (List.mem d dests)) p'.Problem.dests
        @ extra_dropped
      in
      Some (pd, f, dropped)

(* Scoped re-solve: keep every tree the failure does not touch, tear down
   and re-embed only the affected ones. *)
let scoped_resolve ?cache ?fdag ?budget ~event (old_ : Forest.t) (p' : Problem.t) =
  let affected_walk w =
    match event with
    | Fault.Link_down (u, v) -> walk_uses_link w (u, v)
    | Fault.Node_down x -> walk_uses_node w x
    | Fault.Vm_crash vm ->
        List.exists
          (fun (m : Forest.mark) -> w.Forest.hops.(m.Forest.pos) = vm)
          w.Forest.marks
    | _ -> false
  in
  let affected_edge e =
    match event with
    | Fault.Link_down (u, v) -> norm e = norm (u, v)
    | Fault.Node_down x -> fst e = x || snd e = x
    | _ -> false
  in
  let kept_walks = List.filter (fun w -> not (affected_walk w)) old_.Forest.walks in
  let uf = delivery_uf old_ in
  (* components holding an affected edge are torn down entirely *)
  let dead_comps = Hashtbl.create 4 in
  List.iter
    (fun e -> if affected_edge e then Hashtbl.replace dead_comps (Uf.find uf (fst e)) ())
    old_.Forest.delivery;
  (* components with no surviving injector die too *)
  let injected = Hashtbl.create 8 in
  List.iter
    (fun w ->
      List.iter
        (fun h -> Hashtbl.replace injected (Uf.find uf h) ())
        (full_hops w))
    kept_walks;
  let comp_alive c = (not (Hashtbl.mem dead_comps c)) && Hashtbl.mem injected c in
  let kept_delivery =
    List.filter (fun (a, _) -> comp_alive (Uf.find uf a)) old_.Forest.delivery
  in
  (* destinations still served by the kept structure *)
  let kept_full = Hashtbl.create 16 in
  List.iter
    (fun w -> List.iter (fun h -> Hashtbl.replace kept_full h ()) (full_hops w))
    kept_walks;
  let served_by_kept d =
    Hashtbl.mem kept_full d
    || (comp_alive (Uf.find uf d)
       && List.exists (fun (a, b) -> a = d || b = d) kept_delivery)
  in
  let to_reserve = List.filter (fun d -> not (served_by_kept d)) p'.Problem.dests in
  let kept_served = List.filter served_by_kept p'.Problem.dests in
  (* keep kept-enabled VMs out of the sub-instance so the merged forest
     cannot acquire a VNF conflict *)
  let kept_enabled = Hashtbl.create 8 in
  List.iter
    (fun (vm, _) -> Hashtbl.replace kept_enabled vm ())
    (Forest.enabled_vms
       (Forest.make old_.Forest.problem ~walks:kept_walks ~delivery:kept_delivery));
  let sub_vms =
    List.filter (fun m -> not (Hashtbl.mem kept_enabled m)) p'.Problem.vms
  in
  let sub_cost =
    Array.mapi
      (fun v c -> if List.mem v sub_vms then c else 0.0)
      p'.Problem.node_cost
  in
  let assemble new_walks new_delivery extra_dropped =
    let served =
      List.sort_uniq compare
        (kept_served
        @ List.filter (fun d -> not (List.mem d extra_dropped)) to_reserve)
    in
    if served = [] then None
    else
      let pf =
        Problem.make ~graph:p'.Problem.graph ~node_cost:p'.Problem.node_cost
          ~vms:p'.Problem.vms ~sources:p'.Problem.sources ~dests:served
          ~chain_length:p'.Problem.chain_length
      in
      let f =
        Forest.make pf ~walks:(kept_walks @ new_walks)
          ~delivery:(kept_delivery @ new_delivery)
      in
      if valid ?fdag f then Some (pf, f, extra_dropped) else None
  in
  if to_reserve = [] then assemble [] [] []
  else begin
    (* Re-graft first: an orphaned destination reachable from a kept
       tree's service points (injection hops, nodes of live delivery
       components) only needs a delivery path — no new walks or VMs. *)
    let service_points =
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun w -> List.iter (fun h -> Hashtbl.replace tbl h ()) (full_hops w))
        kept_walks;
      List.iter
        (fun (a, b) ->
          Hashtbl.replace tbl a ();
          Hashtbl.replace tbl b ())
        kept_delivery;
      Hashtbl.fold (fun v () acc -> v :: acc) tbl []
    in
    let graft_edges = ref [] in
    let grafted = ref [] in
    (if service_points <> [] then
       let t = Sof.Transform.create ?cache ~extra:service_points p' in
       List.iter
         (fun d ->
           let best =
             List.fold_left
               (fun acc sp ->
                 let c = Sof.Transform.distance t sp d in
                 match acc with
                 | Some (bc, _) when bc <= c -> acc
                 | _ -> if c < infinity then Some (c, sp) else acc)
               None service_points
           in
           match best with
           | None -> ()
           | Some (_, sp) ->
               let path = Sof.Transform.shortest_path t sp d in
               let rec edges_of = function
                 | a :: (b :: _ as rest) -> (a, b) :: edges_of rest
                 | _ -> []
               in
               graft_edges := edges_of path @ !graft_edges;
               grafted := d :: !grafted)
         to_reserve);
    let to_solve =
      List.filter (fun d -> not (List.mem d !grafted)) to_reserve
    in
    if to_solve = [] then assemble [] !graft_edges []
    else begin
      let p_sub_base =
        Problem.make ~graph:p'.Problem.graph ~node_cost:sub_cost ~vms:sub_vms
          ~sources:p'.Problem.sources ~dests:p'.Problem.dests
          ~chain_length:p'.Problem.chain_length
      in
      let feasible = feasible_dests p_sub_base to_solve in
      let unfeasible = List.filter (fun d -> not (List.mem d feasible)) to_solve in
      match (feasible, solve_for ?budget p_sub_base feasible) with
      | [], _ -> assemble [] !graft_edges to_solve
      | _, None -> assemble [] !graft_edges to_solve
      | _, Some (_, nf, extra) ->
          assemble nf.Forest.walks
            (!graft_edges @ nf.Forest.delivery)
            (unfeasible @ extra)
    end
  end

let heal ?(compare_resolve = false) ?fdag ?budget ~(health : Fault.health)
    ~(event : Fault.event) (old_ : Forest.t) =
  let p_old = old_.Forest.problem in
  let dests_wanted =
    match event with
    | Fault.Node_down x -> List.filter (fun d -> d <> x) p_old.Problem.dests
    | _ -> p_old.Problem.dests
  in
  match Fault.degrade health ~dests:dests_wanted with
  | None -> None
  | Some p' ->
      (* One run cache for the whole heal: the scoped re-solve, the
         dynamic rules, any component re-solves and the repair-vs-resolve
         comparison all share Dijkstra runs on the degraded graph. *)
      let cache = Sof_graph.Metric.Cache.create () in
      (* Likewise one evaluation context: every validity probe of this
         heal (and of its Dynamic rules) shares node attributes. *)
      let fdag =
        match fdag with Some c -> c | None -> Sof.Fdag.create ()
      in
      let with_resolve result =
        if not compare_resolve then result
        else
          let rc =
            Option.map
              (fun (_, f, _) -> install_cost f)
              (full_resolve ~cache result.problem)
          in
          { result with resolve_churn = rc }
      in
      let fallback ?(base = old_) dropped_so_far =
        (* scoped first, full re-solve as the last resort; the budget is
           polled at each rung boundary, so an expired heal abandons
           ([None]) rather than starting another re-solve *)
        if Sof_util.Budget.check budget then None
        else
        match scoped_resolve ~cache ~fdag ?budget ~event base p' with
        | Some (pf, f, extra) ->
            Some
              {
                problem = pf;
                forest = f;
                action = Rescoped;
                churn = churn ~old_ f;
                resolve_churn = None;
                dropped = dropped_so_far @ extra;
              }
        | None when Sof_util.Budget.check budget -> None
        | None -> (
            match full_resolve ~cache ?budget p' with
            | None -> None
            | Some (pf, f, extra) ->
                Some
                  {
                    problem = pf;
                    forest = f;
                    action = Resolved;
                    churn = churn ~old_ f;
                    resolve_churn = None;
                    dropped = dropped_so_far @ extra;
                  })
      in
      let incremental () =
        match event with
        | Fault.Link_down (u, v) when touches old_ event -> (
            let f' = rebase p' old_ in
            match Dynamic.reroute_link ~cache ~fdag f' ~u ~v with
            | Some upd when valid ~fdag upd.Dynamic.forest ->
                Some
                  {
                    problem = upd.Dynamic.problem;
                    forest = upd.Dynamic.forest;
                    action = Rerouted;
                    churn = churn ~old_ upd.Dynamic.forest;
                    resolve_churn = None;
                    dropped = [];
                  }
            | _ -> fallback [])
        | Fault.Vm_crash vm when touches old_ event -> (
            (* relocate on the pre-crash instance (the VM node still
               forwards); the substitute search already excludes [vm] *)
            match Dynamic.relocate_vm ~cache ~fdag old_ ~vm with
            | Some upd ->
                let f = rebase p' upd.Dynamic.forest in
                if valid ~fdag f then
                  Some
                    {
                      problem = p';
                      forest = f;
                      action = Relocated;
                      churn = churn ~old_ f;
                      resolve_churn = None;
                      dropped = [];
                    }
                else fallback []
            | None -> fallback [])
        | Fault.Node_down x ->
            let pruned, dropped =
              if
                Problem.is_dest p_old x
                && List.length p_old.Problem.dests > 1
              then (Dynamic.destination_leave old_ x).Dynamic.forest, [ x ]
              else (old_, if Problem.is_dest p_old x then [ x ] else [])
            in
            if touches pruned event then fallback ~base:pruned dropped
            else
              let f = rebase p' pruned in
              if valid ~fdag f then
                Some
                  {
                    problem = p';
                    forest = f;
                    action = (if dropped = [] then Noop else Dest_dropped);
                    churn = churn ~old_ f;
                    resolve_churn = None;
                    dropped;
                  }
              else fallback dropped
        | _ ->
            (* untouched failure, recovery, or control-plane event *)
            let f = rebase p' old_ in
            if valid ~fdag f then
              Some
                {
                  problem = p';
                  forest = f;
                  action = Noop;
                  churn = 0.0;
                  resolve_churn = None;
                  dropped = [];
                }
            else fallback []
      in
      Option.map with_resolve (incremental ())
