(** Failure injection for deployed service overlay forests.

    Two halves: an event taxonomy with a seeded MTBF/MTTR schedule
    generator (every draw flows through {!Sof_util.Rng}, so a chaos run is
    reproducible from one integer), and a [health] record tracking which
    parts of the substrate are currently dead — from which the {e degraded}
    problem (the instance with dead links, nodes and VMs removed) is
    rebuilt after every event.

    Data-plane events (link, node, VM) shrink the usable network under a
    deployed {!Sof.Forest.t} and are healed by {!Repair}; control-plane
    events (controller partition/heal) leave the forest alone and are
    consumed by {!Sof_sdn.Distributed}'s leader-failover path. *)

type event =
  | Link_down of int * int  (** physical link cut (normalized [u < v]) *)
  | Link_up of int * int    (** the cut link is restored *)
  | Node_down of int        (** switch/host outage: all incident links die *)
  | Node_up of int          (** node restored *)
  | Vm_crash of int         (** VM crashes; the hosting node keeps forwarding *)
  | Vm_recover of int       (** crashed VM restored *)
  | Partition of int        (** controller loses east–west connectivity *)
  | Heal of int             (** partitioned controller rejoins *)

type timed = { time : float; event : event }

val event_to_string : event -> string

val is_failure : event -> bool
(** [true] for the down/crash/partition half of the taxonomy. *)

(** {2 Schedules} *)

type weights = {
  link : int;
  node : int;
  vm : int;
  partition : int;
}
(** Relative frequency of each failure class when drawing a schedule.
    A zero weight disables the class. *)

val default_weights : weights
(** Link-dominated: [{ link = 6; node = 2; vm = 3; partition = 1 }] —
    link cuts are the common case in the paper's WAN setting. *)

val schedule :
  rng:Sof_util.Rng.t ->
  ?weights:weights ->
  ?mtbf:float ->
  ?mttr:float ->
  ?controllers:int ->
  count:int ->
  Sof.Problem.t ->
  timed list
(** [count] failure events drawn over the instance: inter-failure gaps are
    [Exp(1/mtbf)] (default [mtbf = 60.0]), each failure schedules its own
    recovery after [Exp(1/mttr)] (default [mttr = 15.0]).  Targets are
    drawn uniformly inside the class among currently-healthy elements; a
    node failure never takes down the last live source or the last live
    destination (the chaos engine handles total outage, but the generator
    keeps runs informative).  [controllers] enables partition events
    (default 0 = disabled even with a positive weight).  The returned
    trace is sorted by time, recoveries interleaved. *)

val of_list : (float * event) list -> timed list
(** A scripted trace: pair each event with its time and sort.  Use this to
    pin a deterministic failure story in tests and examples. *)

val link_outages : horizon:float -> timed list -> ((int * int) * float * float) list
(** Project a trace onto per-link down-windows [(link, from, until)] for
    {!Sof_simnet.Sim.run}'s [~outages]; a link still dead at the end of the
    trace closes its window at [horizon].  Node outages contribute windows
    for every incident-link of that node only if the caller expands them —
    this projection covers [Link_down]/[Link_up] events only. *)

(** {2 Health tracking} *)

type health = {
  base : Sof.Problem.t;          (** the pristine instance *)
  down_links : (int * int) list; (** normalized [u < v] *)
  down_nodes : int list;
  crashed_vms : int list;
  partitioned : int list;        (** controller ids *)
}

val healthy : Sof.Problem.t -> health

val apply : health -> event -> health
(** Fold one event into the health state (idempotent on repeats). *)

val degrade : health -> dests:int list -> Sof.Problem.t option
(** The instance restricted to the live substrate: dead links and every
    link incident to a dead node removed, dead/crashed VMs removed from
    [M] (their setup cost zeroed), dead nodes removed from [S] and from
    the requested [dests].  [None] when no source or no requested
    destination survives — a total outage. *)

val servable : Sof.Problem.t -> int -> bool
(** Feasibility of serving one destination on a (degraded) instance:
    some source shares a connected component with the destination and that
    component holds at least [chain_length] usable VMs.  Used to decide
    which destinations must be dropped rather than re-embedded. *)
