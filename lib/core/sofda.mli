(** SOFDA — the 3·rho_ST approximation for the general multi-source SOF
    problem (Section V, Algorithm 2).

    Pipeline:
    + price every candidate service chain (source [v], last VM [u]) by its
      k-stroll walk cost (Procedure 3 / {!Transform.chain_walk});
    + build the auxiliary graph: the original network, plus a virtual
      super-source [ŝ] wired to every source duplicate [v̂] at cost 0, a
      virtual edge [(v̂, û)] per candidate chain, and a zero-cost edge
      [(u, û)] back into the network;
    + compute an approximate Steiner tree spanning [ŝ] and all
      destinations;
    + deploy the walk of every selected virtual edge, resolve VNF conflicts
      ({!Conflict.resolve}), and keep the tree's residual network edges as
      delivery edges.

    The implementation finally returns the cheaper of this multi-tree
    construction and the best single-source {!Sofda_ss} embedding (computed
    on the shared transform).  Taking the minimum preserves the paper's
    3·rho_ST guarantee and compensates for the weaker Steiner/k-stroll
    black boxes available here (DESIGN.md, substitution table). *)

type report = {
  forest : Forest.t;
  selected_chains : (int * int) list;  (** (source, last VM) per deployed walk *)
  aux_tree_cost : float option;
      (** Steiner tree cost in the auxiliary graph; [None] when the winning
          construction (grafted or single-source) never built one *)
  conflicts_resolved : int;            (** VMs that carried contending VNF demands *)
}

val solve :
  ?cache:Sof_graph.Metric.Cache.t ->
  ?source_setup:bool ->
  ?transform:Transform.t ->
  ?budget:Sof_util.Budget.t ->
  Problem.t ->
  report option
(** [None] when no feasible forest exists (some destination cannot be
    reached through a full chain).  A [cache] shares Dijkstra runs with
    other solves over the same graph (repair and re-solve pipelines);
    ignored when a prebuilt [transform] is supplied.

    The solve is {e anytime} at construction granularity: the [budget] is
    polled before each of the three constructions (auxiliary, grafted,
    single-source scan) and the result is the cheapest construction that
    ran to completion — [None] when the deadline passed before the first
    one finished.  Expiry never raises and never leaves partial state; a
    construction already dispatched to the pool runs to completion.
    [?budget:None] is bit-identical to the unbudgeted call. *)

val solve_forest :
  ?cache:Sof_graph.Metric.Cache.t ->
  ?source_setup:bool ->
  ?budget:Sof_util.Budget.t ->
  Problem.t ->
  Forest.t option

(** {2 Ablation entry points}

    The individual constructions [solve] takes the minimum of; exposed so
    the benchmark harness can attribute wins (see bench/ablation.ml). *)

val solve_aux :
  ?source_setup:bool -> t:Transform.t -> Problem.t -> report option
(** Algorithm 2 proper: the auxiliary-graph multi-tree construction. *)

val solve_grafted :
  source_setup:bool -> t:Transform.t -> Problem.t -> report option
(** Single Steiner tree over [source ∪ D] with the chain grafted at the
    jointly-optimal (last VM, attachment point). *)
