module Steiner = Sof_steiner.Steiner

type report = {
  forest : Forest.t;
  last_vm : int;
  chain_cost : float;
  tree_cost : float;
}

let walk_of_result source (r : Transform.result) =
  let marks =
    List.mapi
      (fun i (pos, _vm) -> { Forest.pos; vnf = i + 1 })
      r.Transform.vm_marks
  in
  { Forest.source; hops = r.Transform.hops; marks }

(* All Steiner terminals (candidate last VM + destinations) are closure
   terminals of the transform, so the KMB runs reuse its Dijkstra sweeps. *)
let steiner_for t problem root dests =
  match
    Steiner.approx_in problem.Problem.graph (Transform.closure t)
      (root :: dests)
  with
  | tree -> Some tree
  | exception Invalid_argument _ -> None

let solve ?cache ?(source_setup = false) ?transform ?budget problem ~source =
  if not (Problem.is_source problem source) then
    invalid_arg "Sofda_ss.solve: source not in S";
  Sof_obs.Obs.span "sofda_ss.solve" @@ fun () ->
  let t =
    match transform with
    | Some t -> t
    | None -> Transform.create ?cache problem
  in
  (* Anytime scan: the budget is polled before each candidate last VM, so
     an expired budget returns the best fully-evaluated candidate so far
     (or [None] when the deadline passed before the first one). *)
  let consider best u =
    if Sof_util.Budget.check budget then best
    else
      match
        Transform.chain_walk ~source_setup t ~src:source ~last_vm:u
          ~num_vnfs:problem.Problem.chain_length
      with
      | None -> best
      | Some walk_result -> (
          match steiner_for t problem u problem.Problem.dests with
          | None -> best
          | Some tree ->
              let cost = walk_result.Transform.cost +. tree.Steiner.weight in
              (match best with
              | Some (c, _, _, _) when c <= cost -> best
              | _ -> Some (cost, u, walk_result, tree)))
  in
  match List.fold_left consider None problem.Problem.vms with
  | None -> None
  | Some (_, u, walk_result, tree) ->
      let walk = walk_of_result source walk_result in
      let delivery = List.map (fun (a, b, _) -> (a, b)) tree.Steiner.edges in
      let forest = Forest.make problem ~walks:[ walk ] ~delivery in
      Some
        {
          forest;
          last_vm = u;
          chain_cost = walk_result.Transform.cost;
          tree_cost = tree.Steiner.weight;
        }

let solve_forest ?cache ?source_setup ?budget problem ~source =
  Option.map (fun r -> r.forest)
    (solve ?cache ?source_setup ?budget problem ~source)
