(** Structural feasibility of a service overlay forest (Definition of SOF,
    Section III).  Every algorithm's output is pushed through this checker
    in the tests; the benchmark harness also asserts it before reporting a
    cost. *)

type error =
  | Bad_walk of string              (** malformed hop/mark structure *)
  | Missing_edge of int * int       (** walk or delivery uses a non-edge *)
  | Mark_not_vm of int              (** a VNF is placed on a switch *)
  | Bad_source of int               (** walk root is not in S *)
  | Vnf_conflict of int * int * int (** vm, vnf1, vnf2 *)
  | Unserved_destination of int     (** no chain output reaches it *)
  | Node_out_of_range of int        (** hop or delivery endpoint outside [V] *)

val to_string : error -> string

val check : Forest.t -> (unit, error list) result
(** All violated conditions, or [Ok ()].

    Conditions: each walk starts at a source, its consecutive hops are
    edges of [G], its marks are ascending with VNFs exactly [1..|C|] and
    sit on VMs; across walks no VM carries two different VNFs; every
    destination lies in the same delivery-edge component as some walk's
    fully-processed segment (any hop at or after the walk's last mark,
    where the stream has traversed the whole chain) or coincides with such
    a hop; delivery edges exist in [G].

    Hop values and delivery endpoints outside [0, |V|) are reported as
    {!Node_out_of_range} (and the edge/VM checks touching them skipped)
    rather than escaping as an array-bounds exception — the checker must
    return a verdict on arbitrarily malformed forests, including the ones
    the fuzzing harness builds. *)

val check_exn : Forest.t -> unit
(** @raise Failure with a readable message when invalid. *)

val is_valid : Forest.t -> bool
