module Obs = Sof_obs.Obs
module Rng = Sof_util.Rng
module Col_gen = Sof_lp.Col_gen

type report = {
  forest : Forest.t;
  lp_bound : float;
  lp_proven : bool;
  lp_stats : Col_gen.stats;
  rounded_ip_cost : float;
  trials : int;
  repairs : int;
  fallback : bool;
}

(* A chain assignment for one destination: the sampled (or inherited)
   source and the VM enabled for each VNF, in chain order. *)
type chain = { src : int; vms : int array }

let reachable t a b = Transform.distance t a b < infinity

let chain_feasible t dest c =
  let l = Array.length c.vms in
  let ok = ref (l = 0 || reachable t c.src c.vms.(0)) in
  for f = 0 to l - 2 do
    ok := !ok && reachable t c.vms.(f) c.vms.(f + 1)
  done;
  !ok && (l = 0 || reachable t c.vms.(l - 1) dest)

(* The full chain of a (valid) forest walk: marks are exactly f1..f|C| in
   order, so the marked hops are the per-VNF VMs. *)
let chain_of_walk l (w : Forest.walk) =
  if List.length w.Forest.marks <> l then None
  else
    Some
      {
        src = w.Forest.source;
        vms =
          Array.of_list
            (List.map (fun m -> w.Forest.hops.(m.Forest.pos)) w.Forest.marks);
      }

(* Realize a chain as a forest walk plus delivery edges: concatenated
   shortest paths source -> vm_1 -> ... -> vm_l, then vm_l -> dest as
   delivery.  All chain nodes are closure terminals.  The caller must have
   checked [chain_feasible]. *)
let realize t dest c =
  let l = Array.length c.vms in
  let marks = ref [] in
  let hops = ref [ c.src ] in
  let len = ref 1 in
  let append_path a b =
    match Transform.shortest_path t a b with
    | [] | [ _ ] -> ()
    | _ :: tail ->
        hops := !hops @ tail;
        len := !len + List.length tail
  in
  for f = 0 to l - 1 do
    let a = if f = 0 then c.src else c.vms.(f - 1) in
    append_path a c.vms.(f);
    marks := { Forest.pos = !len - 1; vnf = f + 1 } :: !marks
  done;
  let walk =
    {
      Forest.source = c.src;
      hops = Array.of_list !hops;
      marks = List.rev !marks;
    }
  in
  let delivery =
    if l = 0 then []
    else
      let rec edges = function
        | u :: (v :: _ as rest) -> (u, v) :: edges rest
        | _ -> []
      in
      edges (Transform.shortest_path t c.vms.(l - 1) dest)
  in
  (walk, delivery)

(* Warm start: per destination, the first SOFDA walk whose last VM reaches
   it; yields both the initial column support for the restricted master
   and the repair ladder's per-destination fallback chain. *)
let warm_chains t (rel : Ip_model.relaxation) (sofda_forest : Forest.t) =
  let l = rel.Ip_model.rchain in
  let chains = List.filter_map (chain_of_walk l) sofda_forest.Forest.walks in
  Array.map
    (fun d -> List.find_opt (fun c -> chain_feasible t d c) chains)
    rel.Ip_model.rdests

let warm_support t (rel : Ip_model.relaxation) warm =
  let module I = Ip_model in
  let l = rel.I.rchain in
  let src_idx = Hashtbl.create 16 and vm_idx = Hashtbl.create 16 in
  Array.iteri (fun i s -> Hashtbl.replace src_idx s i) rel.I.rsources;
  Array.iteri (fun i v -> Hashtbl.replace vm_idx v i) rel.I.rvms;
  let cols = ref [] in
  let add c = cols := c :: !cols in
  let add_path di f a b =
    let rec arcs = function
      | u :: (v :: _ as rest) -> (
          (match rel.I.rarc u v with
          | Some arc ->
              add (rel.I.rpi di f arc);
              add (rel.I.rtau f arc)
          | None -> ());
          arcs rest)
      | _ -> ()
    in
    arcs (Transform.shortest_path t a b)
  in
  Array.iteri
    (fun di c ->
      match c with
      | None -> ()
      | Some c ->
          (match Hashtbl.find_opt src_idx c.src with
          | Some si -> add (rel.I.rgamma0 di si)
          | None -> ());
          Array.iteri
            (fun f0 vm ->
              match Hashtbl.find_opt vm_idx vm with
              | Some mi ->
                  add (rel.I.rgammaf di (f0 + 1) mi);
                  add (rel.I.rsigma (f0 + 1) mi)
              | None -> ())
            c.vms;
          let dest = rel.I.rdests.(di) in
          for f = 0 to l do
            let a = if f = 0 then c.src else c.vms.(f - 1) in
            let b = if f = l then dest else c.vms.(f) in
            add_path di f a b
          done)
    warm;
  !cols

(* Categorical draw over nonnegative weights; [None] when all mass is
   (numerically) zero. *)
let sample rng weights =
  let total =
    Array.fold_left (fun acc (_, w) -> acc +. max 0.0 w) 0.0 weights
  in
  if total <= 1e-12 then None
  else begin
    let r = Rng.float rng total in
    let acc = ref 0.0 and res = ref None in
    Array.iter
      (fun (v, w) ->
        if !res = None then begin
          acc := !acc +. max 0.0 w;
          if r < !acc then res := Some v
        end)
      weights;
    match !res with
    | None -> Some (fst weights.(Array.length weights - 1))
    | some -> some
  end

let default_trials = 16

let solve ?cache ?(seed = 0) ?(trials = default_trials) ?max_rounds ?batch
    ?budget (p : Problem.t) =
  match Sofda.solve ?cache ?budget p with
  | None -> None
  | Some sofda when Sof_util.Budget.check budget ->
      (* Deadline passed right after the warm start: report the SOFDA
         forest as the documented fallback without touching the LP. *)
      Some
        {
          forest = sofda.Sofda.forest;
          lp_bound = 0.0;
          lp_proven = false;
          lp_stats =
            {
              Col_gen.rounds = 0;
              columns_priced = 0;
              columns_added = 0;
              active_columns = 0;
              active_rows = 0;
            };
          rounded_ip_cost = Ip_model.objective_of_forest sofda.Sofda.forest;
          trials = 0;
          repairs = 0;
          fallback = true;
        }
  | Some sofda ->
      Obs.span "lp_round.solve" @@ fun () ->
      let t = Transform.create ?cache p in
      let rel = Ip_model.relaxation p in
      let module I = Ip_model in
      let l = rel.I.rchain in
      let warm = warm_chains t rel sofda.Sofda.forest in
      let cg =
        Obs.span "lp_round.relax" @@ fun () ->
        Col_gen.solve ?max_rounds ?batch ~var_upper:1.0
          ~initial:(warm_support t rel warm)
          ?budget rel.I.rlp
      in
      Obs.count "lp.master_rounds" cg.Col_gen.stats.Col_gen.rounds;
      Obs.count "lp.columns_priced" cg.Col_gen.stats.Col_gen.columns_priced;
      Obs.count "lp.columns_added" cg.Col_gen.stats.Col_gen.columns_added;
      (* Costs are nonnegative, so 0 is always a sound fallback bound. *)
      let lp_bound = max 0.0 cg.Col_gen.bound in
      let frac =
        match cg.Col_gen.outcome with
        | Col_gen.Optimal { x; _ } | Col_gen.Stalled { x = Some x; _ } ->
            Some x
        | _ -> None
      in
      let repairs = ref 0 in
      (* Marginals for destination [di]: LP values when available, else
         point mass on the warm chain. *)
      let source_weights di =
        match frac with
        | Some x ->
            Array.mapi
              (fun si s -> (s, x.(rel.I.rgamma0 di si)))
              rel.I.rsources
        | None -> (
            match warm.(di) with
            | Some c -> [| (c.src, 1.0) |]
            | None -> Array.map (fun s -> (s, 1.0)) rel.I.rsources)
      in
      let vm_weights di f =
        match frac with
        | Some x ->
            Array.mapi
              (fun mi v -> (v, x.(rel.I.rgammaf di f mi)))
              rel.I.rvms
        | None -> (
            match warm.(di) with
            | Some c -> [| (c.vms.(f - 1), 1.0) |]
            | None -> Array.map (fun v -> (v, 1.0)) rel.I.rvms)
      in
      (* One sampled chain.  [restricted] filters every step to candidates
         reachable from the previous node (the first repair rung). *)
      let draw_chain rng di ~restricted =
        let dest = rel.I.rdests.(di) in
        match sample rng (source_weights di) with
        | None -> None
        | Some src ->
            let used = Hashtbl.create 8 in
            let rec pick f prev acc =
              if f > l then Some { src; vms = Array.of_list (List.rev acc) }
              else begin
                let ws =
                  Array.of_list
                    (List.filter
                       (fun (v, w) ->
                         (not (Hashtbl.mem used v))
                         && w > 0.0
                         && ((not restricted) || reachable t prev v))
                       (Array.to_list (vm_weights di f)))
                in
                (* if the LP marginal has no usable mass, widen to every
                   unused (reachable) VM *)
                let ws =
                  if ws <> [||] then ws
                  else
                    Array.of_list
                      (List.filter
                         (fun (v, _) ->
                           (not (Hashtbl.mem used v))
                           && ((not restricted) || reachable t prev v))
                         (Array.to_list
                            (Array.map (fun v -> (v, 1.0)) rel.I.rvms)))
                in
                match sample rng ws with
                | None -> None
                | Some vm ->
                    Hashtbl.replace used vm ();
                    pick (f + 1) vm (vm :: acc)
              end
            in
            let c = pick 1 src [] in
            Option.bind c (fun c ->
                if chain_feasible t dest c then Some c else None)
      in
      (* Repair ladder for one destination: naive draw, then up to 4
         reachability-restricted redraws, then the SOFDA warm chain. *)
      let chain_for rng di =
        match draw_chain rng di ~restricted:false with
        | Some c -> Some c
        | None ->
            incr repairs;
            Obs.count "lp.repair_escalations" 1;
            let rec retry k =
              if k = 0 then None
              else
                match draw_chain rng di ~restricted:true with
                | Some c -> Some c
                | None -> retry (k - 1)
            in
            (match retry 4 with
            | Some c -> Some c
            | None ->
                incr repairs;
                Obs.count "lp.repair_escalations" 1;
                warm.(di))
      in
      let nd = Array.length rel.I.rdests in
      let best = ref None in
      let trial rng =
        let chains =
          Array.init nd (fun di ->
              Option.map (fun c -> (di, c)) (chain_for rng di))
        in
        if Array.exists (fun c -> c = None) chains then None
        else begin
          let walks = ref [] and delivery = ref [] in
          Array.iter
            (fun c ->
              match c with
              | None -> ()
              | Some (di, c) ->
                  let w, dl = realize t rel.I.rdests.(di) c in
                  walks := w :: !walks;
                  delivery := dl @ !delivery)
            chains;
          (* A draw whose walks clash on a VM (two VNFs sampled onto it)
             is infeasible as drawn: healing it through the paper's
             conflict rules is the first repair rung that rewrites
             structure rather than resampling. *)
          if Conflict.has_conflict !walks then begin
            incr repairs;
            Obs.count "lp.repair_escalations" 1
          end;
          match Conflict.resolve p (List.rev !walks) with
          | exception _ ->
              incr repairs;
              Obs.count "lp.repair_escalations" 1;
              None
          | walks -> (
              let forest = Forest.make p ~walks ~delivery:!delivery in
              match Validate.check forest with
              | Ok () -> Some forest
              | Error _ ->
                  incr repairs;
                  Obs.count "lp.repair_escalations" 1;
                  None)
        end
      in
      let attempted = ref 0 in
      (Obs.span "lp_round.round" @@ fun () ->
       let rng = Rng.create seed in
       (* Per-trial deadline poll: expiry keeps the best-of-completed
          trials (or falls through to the SOFDA fallback below). *)
       for _ = 1 to trials do
         if not (Sof_util.Budget.check budget) then begin
           incr attempted;
           let rng_t = Rng.split rng in
           match trial rng_t with
           | None -> ()
           | Some f -> (
               let c = Forest.total_cost f in
               match !best with
               | Some (c0, _) when c0 <= c -> ()
               | _ -> best := Some (c, f))
         end
       done);
      let trials = !attempted in
      Obs.count "lp.rounding_trials" trials;
      let forest, fallback =
        match !best with
        | Some (_, f) -> (Forest.shorten f, false)
        | None ->
            incr repairs;
            Obs.count "lp.repair_escalations" 1;
            (sofda.Sofda.forest, true)
      in
      Some
        {
          forest;
          lp_bound;
          lp_proven = cg.Col_gen.proven;
          lp_stats = cg.Col_gen.stats;
          rounded_ip_cost = Ip_model.objective_of_forest forest;
          trials;
          repairs = !repairs;
          fallback;
        }

let solve_forest ?cache ?seed ?trials ?budget p =
  Option.map (fun r -> r.forest) (solve ?cache ?seed ?trials ?budget p)
