module Graph = Sof_graph.Graph
module Steiner = Sof_steiner.Steiner
module Pool = Sof_util.Pool
module Obs = Sof_obs.Obs

type report = {
  forest : Forest.t;
  selected_chains : (int * int) list;
  aux_tree_cost : float option;
  conflicts_resolved : int;
}

(* VMs demanded with two or more different VNF indices across walks. *)
let count_conflicts walks =
  let demands = Hashtbl.create 16 in
  List.iter
    (fun (w : Forest.walk) ->
      List.iter
        (fun (m : Forest.mark) ->
          let vm = w.Forest.hops.(m.Forest.pos) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt demands vm) in
          if not (List.mem m.Forest.vnf prev) then
            Hashtbl.replace demands vm (m.Forest.vnf :: prev))
        w.Forest.marks)
    walks;
  Hashtbl.fold
    (fun _ vnfs acc -> if List.length vnfs > 1 then acc + 1 else acc)
    demands 0

(* Node layout of the auxiliary graph:
   [0, n)                        original nodes
   [n]                           virtual super-source
   [n+1, n+1+|S|)                source duplicates
   [n+1+|S|, n+1+|S|+|M|)        VM duplicates *)
type layout = {
  n : int;
  shat : int;
  src_dup : (int, int) Hashtbl.t;
  vm_dup : (int, int) Hashtbl.t;
  sources : int array;
  vms : int array;
}

let layout_of problem =
  let n = Problem.n problem in
  let sources = Array.of_list problem.Problem.sources in
  let vms = Array.of_list problem.Problem.vms in
  let src_dup = Hashtbl.create (Array.length sources) in
  let vm_dup = Hashtbl.create (Array.length vms) in
  Array.iteri (fun i v -> Hashtbl.replace src_dup v (n + 1 + i)) sources;
  Array.iteri
    (fun i u -> Hashtbl.replace vm_dup u (n + 1 + Array.length sources + i))
    vms;
  { n; shat = n; src_dup; vm_dup; sources; vms }

let walk_of_result source (r : Transform.result) =
  let marks =
    List.mapi
      (fun i (pos, _vm) -> { Forest.pos; vnf = i + 1 })
      r.Transform.vm_marks
  in
  { Forest.source; hops = r.Transform.hops; marks }

(* Multi-tree construction via the auxiliary graph (Algorithm 2 proper). *)
let solve_aux ?(source_setup = false) ~t problem =
  Obs.span "sofda.aux" @@ fun () ->
  let lay = layout_of problem in
  let chain_cache : (int * int, Transform.result) Hashtbl.t =
    Hashtbl.create 64
  in
  (* Virtual edges: one per feasible (source, last VM) candidate chain.
     The |S| * |M| chain walks are independent, so they are priced on the
     domain pool; the cache and edge list are then populated on this
     (coordinating) domain in the sequential iteration order, keeping the
     construction bit-identical to a single-domain run. *)
  let n_vms = Array.length lay.vms in
  let pairs =
    Array.init
      (Array.length lay.sources * n_vms)
      (fun i -> (lay.sources.(i / n_vms), lay.vms.(i mod n_vms)))
  in
  let priced =
    Pool.parallel_map
      (fun (v, u) ->
        Obs.span "sofda.price_chain" @@ fun () ->
        Transform.chain_walk ~source_setup t ~src:v ~last_vm:u
          ~num_vnfs:problem.Problem.chain_length)
      pairs
  in
  Obs.count "sofda.chains_priced" (Array.length pairs);
  let virtual_edges = ref [] in
  Array.iteri
    (fun i walk ->
      match walk with
      | None -> ()
      | Some r ->
          let v, u = pairs.(i) in
          Hashtbl.replace chain_cache (v, u) r;
          let vhat = Hashtbl.find lay.src_dup v in
          let uhat = Hashtbl.find lay.vm_dup u in
          virtual_edges := (vhat, uhat, r.Transform.cost) :: !virtual_edges)
    priced;
  if !virtual_edges = [] then None
  else begin
    let zero_edges =
      List.map (fun v -> (lay.shat, Hashtbl.find lay.src_dup v, 0.0))
        problem.Problem.sources
      @ List.map (fun u -> (u, Hashtbl.find lay.vm_dup u, 0.0))
          problem.Problem.vms
    in
    let aux_n = lay.n + 1 + Array.length lay.sources + Array.length lay.vms in
    (* Base edges are already deduplicated and every gadget edge touches a
       duplicate node (or the super-source), so the concatenation is
       duplicate-free and can skip [Graph.create]'s dedup pass. *)
    let aux =
      Graph.create_simple ~n:aux_n
        ~edges:(Graph.edges problem.Problem.graph @ zero_edges @ !virtual_edges)
    in
    match Steiner.approx aux (lay.shat :: problem.Problem.dests) with
    | exception Invalid_argument _ -> None
    | tree ->
        (* Classify tree edges: virtual edges become walks, original edges
           become delivery edges, zero edges vanish. *)
        let dup_src = Hashtbl.create 16 and dup_vm = Hashtbl.create 16 in
        Hashtbl.iter (fun v vhat -> Hashtbl.replace dup_src vhat v) lay.src_dup;
        Hashtbl.iter (fun u uhat -> Hashtbl.replace dup_vm uhat u) lay.vm_dup;
        let selected = ref [] in
        let delivery = ref [] in
        List.iter
          (fun (a, b, _) ->
            if a < lay.n && b < lay.n then delivery := (a, b) :: !delivery
            else
              match
                ( Hashtbl.find_opt dup_src a,
                  Hashtbl.find_opt dup_vm b,
                  Hashtbl.find_opt dup_src b,
                  Hashtbl.find_opt dup_vm a )
              with
              | Some v, Some u, _, _ | _, _, Some v, Some u ->
                  selected := (v, u) :: !selected
              | _ -> () (* (ŝ, v̂) or (u, û) zero edge *))
          tree.Steiner.edges;
        if !selected = [] then None
        else begin
          let walks =
            List.map
              (fun (v, u) ->
                walk_of_result v (Hashtbl.find chain_cache (v, u)))
              !selected
          in
          let conflicts_resolved = count_conflicts walks in
          Obs.count "sofda.conflicts_resolved" conflicts_resolved;
          let walks = Conflict.resolve problem walks in
          let forest =
            Forest.make problem ~walks ~delivery:!delivery
          in
          Some
            {
              forest;
              selected_chains = !selected;
              aux_tree_cost = Some tree.Steiner.weight;
              conflicts_resolved;
            }
        end
  end

(* SOFDA returns the cheaper of the multi-tree auxiliary-graph construction
   and the best single-source SOFDA-SS embedding.  Both constructions share
   the transform (one Dijkstra sweep), and the minimum inherits the
   3 rho_ST bound from the auxiliary construction, so the guarantee is
   unchanged; empirically this compensates for the heuristic Steiner and
   k-stroll subroutines standing in for the paper's stronger black boxes
   (see DESIGN.md). *)
(* Single-tree construction with the chain grafted anywhere onto a Steiner
   tree over {source} ∪ D, with (last VM, attachment) chosen jointly —
   another point of SOFDA's search space the auxiliary KMB can miss. *)
let solve_grafted ~source_setup ~t problem =
  Obs.span "sofda.grafted" @@ fun () ->
  let closure = Transform.closure t in
  let graph = problem.Problem.graph in
  let candidate source =
    match
      Sof_steiner.Steiner.approx_in graph closure
        (source :: problem.Problem.dests)
    with
    | exception Invalid_argument _ -> None
    | tree ->
        let tree_nodes = Sof_steiner.Steiner.tree_nodes tree in
        let connect u =
          if List.mem u tree_nodes then Some (0.0, [])
          else
            List.fold_left
              (fun best x ->
                let d = Transform.distance t u x in
                match best with
                | Some (bd, _) when bd <= d -> best
                | _ -> if d < infinity then Some (d, [ x ]) else best)
              None tree_nodes
            |> Option.map (fun (d, xs) ->
                   (d, Transform.shortest_path t u (List.hd xs)))
        in
        List.fold_left
          (fun best u ->
            match
              Transform.chain_walk ~source_setup t ~src:source ~last_vm:u
                ~num_vnfs:problem.Problem.chain_length
            with
            | None -> best
            | Some chain -> (
                match connect u with
                | None -> best
                | Some (cx, path) -> (
                    let total =
                      chain.Transform.cost +. cx +. tree.Sof_steiner.Steiner.weight
                    in
                    match best with
                    | Some (c, _, _, _, _) when c <= total -> best
                    | _ -> Some (total, u, chain, path, tree))))
          None problem.Problem.vms
  in
  (* One Steiner tree + VM scan per source, evaluated on the pool; the
     fold below keeps the sequential tie-breaking (first source wins). *)
  let candidates =
    Pool.parallel_map
      (fun source -> (source, candidate source))
      (Array.of_list problem.Problem.sources)
  in
  let best =
    Array.fold_left
      (fun best (source, cand) ->
        match cand with
        | None -> best
        | Some (total, u, chain, path, tree) -> (
            match best with
            | Some (c, _, _, _, _, _) when c <= total -> best
            | _ -> Some (total, source, u, chain, path, tree)))
      None candidates
  in
  match best with
  | None -> None
  | Some (_, source, u, chain, path, tree) ->
      let base = walk_of_result source chain in
      let hops =
        match path with
        | [] | [ _ ] -> base.Forest.hops
        | _ :: tail -> Array.append base.Forest.hops (Array.of_list tail)
      in
      let walk = { base with Forest.hops } in
      let delivery =
        List.map (fun (a, b, _) -> (a, b)) tree.Sof_steiner.Steiner.edges
      in
      let forest = Forest.make problem ~walks:[ walk ] ~delivery in
      Some
        {
          forest;
          selected_chains = [ (source, u) ];
          aux_tree_cost = None;
          conflicts_resolved = 0;
        }

let solve ?cache ?(source_setup = false) ?transform ?budget problem =
  Obs.span "sofda.solve" @@ fun () ->
  (* Anytime at construction granularity: the budget is polled before
     each of the three constructions (aux, grafted, SS scan) and the
     minimum is taken over the ones that ran to completion.  A deadline
     that passes before the first construction yields [None]; a pool
     fan-out already in flight runs to completion (the check sits at
     stage boundaries, not inside [Pool.parallel_map]). *)
  let expired () = Sof_util.Budget.check budget in
  if expired () then None
  else
  let t =
    match transform with
    | Some t -> t
    | None -> Transform.create ?cache problem
  in
  let aux = if expired () then None else solve_aux ~source_setup ~t problem in
  let grafted =
    if expired () then None else solve_grafted ~source_setup ~t problem
  in
  (* The exhaustive SOFDA-SS scan builds |S| * |M| Steiner trees; beyond a
     size threshold the grafted construction covers its role at a fraction
     of the cost (one tree per source). *)
  let ss_affordable =
    List.length problem.Problem.sources * List.length problem.Problem.vms
    <= 1024
  in
  let ss =
    if (not ss_affordable) || expired () then None
    else begin
      Obs.span "sofda.ss_scan" @@ fun () ->
      (* One SOFDA-SS embedding per source, evaluated on the pool; the fold
         keeps the sequential tie-breaking (first source wins on ties). *)
      let per_source =
        Pool.parallel_map
          (fun source ->
            Sofda_ss.solve ~source_setup ~transform:t problem ~source)
          (Array.of_list problem.Problem.sources)
      in
      Array.fold_left
        (fun best result ->
          match result with
          | None -> best
          | Some r -> (
              let cand =
                {
                  forest = r.Sofda_ss.forest;
                  selected_chains =
                    [ ((List.hd r.Sofda_ss.forest.Forest.walks).Forest.source,
                       r.Sofda_ss.last_vm) ];
                  aux_tree_cost = None;
                  conflicts_resolved = 0;
                }
              in
              match best with
              | Some b
                when Forest.total_cost b.forest
                     <= Forest.total_cost cand.forest -> best
              | _ -> Some cand))
        None per_source
    end
  in
  let best =
    List.fold_left
      (fun best cand ->
        match (best, cand) with
        | None, c -> c
        | b, None -> b
        | Some b, Some c ->
            if Forest.total_cost b.forest <= Forest.total_cost c.forest then
              Some b
            else Some c)
      None [ aux; grafted; ss ]
  in
  (* the paper's walk-shortening post-step (Example 7) *)
  Option.map (fun r -> { r with forest = Forest.shorten r.forest }) best

let solve_forest ?cache ?source_setup ?budget problem =
  Option.map (fun r -> r.forest) (solve ?cache ?source_setup ?budget problem)
