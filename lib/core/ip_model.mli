(** The Integer Programming formulation of SOF (Section III-A).

    Variables (all binary):
    - [gamma d f u] — node [u] is the enabled VM of VNF [f] on destination
      [d]'s chain ([f = 0] is the paper's [f_S] source layer, restricted to
      sources; [f in 1..|C|] restricted to VMs; the [f_D] layer is fixed by
      constraints (3)–(4) and substituted out);
    - [pi d f arc] — directed arc [arc] lies on [d]'s walk between the VM
      of [f] and the VM of the next VNF;
    - [sigma f u] — VM [u] is enabled for VNF [f] in the whole forest;
    - [tau f arc] — arc [arc] lies in the layer-[f] forest.

    The objective prices enabled VMs once and every (edge, layer) pair once
    — the paper's objective as printed omits the [f_S] layer from the
    [tau] sum, which would make source-to-first-VM routing free; we treat
    that as a typo and include it (DESIGN.md).

    Because the IP shares an edge across destinations whenever they use it
    in the same layer (even from different sources), its optimum is a lower
    bound on {!Forest.total_cost} of every feasible forest; the benchmarks
    report it as the OPT yardstick. *)

type t = {
  ilp : Sof_lp.Ilp.t;
  var_count : int;
  describe : int -> string;  (** debug name of a variable *)
}

val build : Problem.t -> t
(** Assemble the IP for an instance.  Size grows as
    [|D| * |C| * |E|]; intended for the small OPT-yardstick instances. *)

val solve :
  ?node_limit:int ->
  ?time_budget:float ->
  ?initial_incumbent:float ->
  Problem.t ->
  Sof_lp.Ilp.result
(** [build] + {!Sof_lp.Ilp.solve}. *)

type relaxation = {
  rlp : Sof_lp.Simplex.problem;
      (** the LP relaxation: the IP rows plus explicit [tau <= 1] caps,
          integrality dropped — its optimum lower-bounds the IP optimum *)
  rvar_count : int;
  rdescribe : int -> string;
  rdests : int array;
  rsources : int array;
  rvms : int array;
  rchain : int;  (** chain length [|C|] *)
  rgamma0 : int -> int -> int;  (** [rgamma0 d si]: dest idx, source idx *)
  rgammaf : int -> int -> int -> int;
      (** [rgammaf d f mi]: dest idx, VNF [f] (1-based), VM idx *)
  rsigma : int -> int -> int;  (** [rsigma f mi] *)
  rpi : int -> int -> int -> int;
      (** [rpi d f a]: dest idx, layer [f] (0..|C|), arc id *)
  rtau : int -> int -> int;  (** [rtau f a] *)
  rarc : int -> int -> int option;
      (** directed arc id of edge [u -> v], when the edge exists *)
}

val relaxation : Problem.t -> relaxation
(** The LP relaxation of {!build}'s IP with its variable layout exposed,
    ready for {!Sof_lp.Col_gen} (sparse pricing) and for the randomized
    rounding in {!Lp_round}: the layout functions let the rounding read
    per-destination source/VM marginals ([rgamma0], [rgammaf]) out of a
    fractional solution, and [rarc] maps concrete walk edges to flow
    columns for warm-start supports. *)

val objective_of_forest : Forest.t -> float
(** The forest's cost under the IP's (edge, layer) sharing rule — an upper
    bound usable as [initial_incumbent]. *)
