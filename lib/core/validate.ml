module Graph = Sof_graph.Graph
module Union_find = Sof_graph.Union_find

type error =
  | Bad_walk of string
  | Missing_edge of int * int
  | Mark_not_vm of int
  | Bad_source of int
  | Vnf_conflict of int * int * int
  | Unserved_destination of int
  | Node_out_of_range of int

let to_string = function
  | Bad_walk msg -> "malformed walk: " ^ msg
  | Missing_edge (u, v) -> Printf.sprintf "edge (%d,%d) not in G" u v
  | Mark_not_vm v -> Printf.sprintf "VNF placed on non-VM node %d" v
  | Bad_source v -> Printf.sprintf "walk source %d not in S" v
  | Vnf_conflict (v, f1, f2) ->
      Printf.sprintf "VM %d assigned both f%d and f%d" v f1 f2
  | Unserved_destination d -> Printf.sprintf "destination %d unserved" d
  | Node_out_of_range v -> Printf.sprintf "node %d out of range" v

(* All node ids reaching [Graph.mem_edge] / [Problem.is_vm] / [Union_find]
   are range-checked first: those are array-indexed and a malformed forest
   (the fuzzer builds them on purpose) must yield an [Error], never an
   array-bounds exception. *)
let in_range p v = v >= 0 && v < Problem.n p

let check_walk problem (w : Forest.walk) errors =
  let p = problem in
  if Array.length w.Forest.hops = 0 then
    errors := Bad_walk "empty hop sequence" :: !errors
  else begin
    Array.iter
      (fun v -> if not (in_range p v) then errors := Node_out_of_range v :: !errors)
      w.Forest.hops;
    if w.Forest.hops.(0) <> w.Forest.source then begin
      errors := Bad_walk "first hop differs from source" :: !errors;
      if not (in_range p w.Forest.source) then
        errors := Node_out_of_range w.Forest.source :: !errors
    end;
    if not (Problem.is_source p w.Forest.source) then
      errors := Bad_source w.Forest.source :: !errors;
    for i = 0 to Array.length w.Forest.hops - 2 do
      let u = w.Forest.hops.(i) and v = w.Forest.hops.(i + 1) in
      if in_range p u && in_range p v
         && not (Graph.mem_edge p.Problem.graph u v)
      then errors := Missing_edge (u, v) :: !errors
    done;
    let expected = List.init p.Problem.chain_length (fun i -> i + 1) in
    let vnfs = List.map (fun m -> m.Forest.vnf) w.Forest.marks in
    if vnfs <> expected then
      errors := Bad_walk "marks are not exactly f1..f|C| in order" :: !errors;
    let last = Array.length w.Forest.hops - 1 in
    let prev = ref (-1) in
    List.iter
      (fun m ->
        if m.Forest.pos <= !prev || m.Forest.pos > last then
          errors := Bad_walk "mark positions not ascending / out of range" :: !errors
        else begin
          prev := m.Forest.pos;
          let v = w.Forest.hops.(m.Forest.pos) in
          if in_range p v && not (Problem.is_vm p v) then
            errors := Mark_not_vm v :: !errors
        end)
      w.Forest.marks
  end

let check (t : Forest.t) =
  let p = t.Forest.problem in
  let errors = ref [] in
  List.iter (fun w -> check_walk p w errors) t.Forest.walks;
  (* VNF conflicts across walks. *)
  let enabled = Hashtbl.create 16 in
  List.iter
    (fun w ->
      List.iter
        (fun (m : Forest.mark) ->
          if m.Forest.pos >= 0 && m.Forest.pos < Array.length w.Forest.hops
          then begin
            let v = w.Forest.hops.(m.Forest.pos) in
            match Hashtbl.find_opt enabled v with
            | Some f when f <> m.Forest.vnf ->
                errors := Vnf_conflict (v, f, m.Forest.vnf) :: !errors
            | Some _ -> ()
            | None -> Hashtbl.replace enabled v m.Forest.vnf
          end)
        w.Forest.marks)
    t.Forest.walks;
  (* Delivery edges must exist; destinations must share a delivery component
     with a last VM. *)
  List.iter
    (fun (u, v) ->
      if not (in_range p u) then errors := Node_out_of_range u :: !errors;
      if not (in_range p v) then errors := Node_out_of_range v :: !errors;
      if in_range p u && in_range p v
         && not (Graph.mem_edge p.Problem.graph u v)
      then errors := Missing_edge (u, v) :: !errors)
    t.Forest.delivery;
  let uf = Union_find.create (Problem.n p) in
  List.iter
    (fun (u, v) ->
      if in_range p u && in_range p v then ignore (Union_find.union uf u v))
    t.Forest.delivery;
  (* Injection points: every hop at or after a walk's last mark carries the
     fully processed stream and may feed the delivery component.
     Out-of-range hops were already reported above; they cannot inject. *)
  let injection_points =
    List.concat_map
      (fun w ->
        match List.rev w.Forest.marks with
        | [] -> []
        | m :: _
          when m.Forest.pos >= 0 && m.Forest.pos < Array.length w.Forest.hops
          ->
            let tail = ref [] in
            for i = m.Forest.pos to Array.length w.Forest.hops - 1 do
              let v = w.Forest.hops.(i) in
              if in_range p v then tail := v :: !tail
            done;
            !tail
        | _ -> [])
      t.Forest.walks
  in
  List.iter
    (fun d ->
      let served =
        List.exists
          (fun v -> v = d || Union_find.same uf v d)
          injection_points
      in
      if not served then errors := Unserved_destination d :: !errors)
    p.Problem.dests;
  match List.rev !errors with [] -> Ok () | es -> Error es

let check_exn t =
  match check t with
  | Ok () -> ()
  | Error es ->
      failwith
        ("invalid forest: " ^ String.concat "; " (List.map to_string es))

let is_valid t = check t = Ok ()
