type mark = { pos : int; vnf : int }

type walk = { source : int; hops : int array; marks : mark list }

type t = {
  problem : Problem.t;
  walks : walk list;
  delivery : (int * int) list;
}

let norm (u, v) = if u < v then (u, v) else (v, u)

let make problem ~walks ~delivery =
  { problem; walks; delivery = List.sort_uniq compare (List.map norm delivery) }

let walk_last_vm w =
  match List.rev w.marks with
  | [] -> invalid_arg "Forest.walk_last_vm: walk has no marks"
  | m :: _ -> w.hops.(m.pos)

let walk_vms w = List.map (fun m -> w.hops.(m.pos)) w.marks

(* Sorted-array dedup: same result as
   [List.sort_uniq compare (List.concat_map ...)] but with a monomorphic
   comparator and no intermediate lists — this sits on the stream/serve
   admission hot path via the ledger footprint. *)
let enabled_vms t =
  let count =
    List.fold_left (fun acc w -> acc + List.length w.marks) 0 t.walks
  in
  if count = 0 then []
  else begin
    let a = Array.make count (0, 0) in
    let i = ref 0 in
    List.iter
      (fun w ->
        List.iter
          (fun m ->
            a.(!i) <- (w.hops.(m.pos), m.vnf);
            incr i)
          w.marks)
      t.walks;
    Array.sort
      (fun (v1, f1) (v2, f2) ->
        match Int.compare v1 v2 with 0 -> Int.compare f1 f2 | c -> c)
      a;
    let acc = ref [] in
    for j = count - 1 downto 0 do
      let v, f = a.(j) in
      if
        j = count - 1
        ||
        let v', f' = a.(j + 1) in
        v <> v' || f <> f'
      then acc := (v, f) :: !acc
    done;
    !acc
  end

let setup_cost t =
  (* [enabled_vms] is sorted by (vm, vnf), so distinct VMs in ascending
     order are the consecutive-dedup of the firsts — the exact fold order
     of the old [sort_uniq] on the projected list. *)
  let rec go acc last = function
    | [] -> acc
    | (v, _) :: rest ->
        if v = last then go acc last rest
        else go (acc +. Problem.setup_cost t.problem v) v rest
  in
  go 0.0 min_int (enabled_vms t)

(* Stage of hop index i = number of VNFs already applied when leaving
   hops.(i), i.e. the count of marks with pos <= i. *)
let stages w =
  let n = Array.length w.hops in
  let stage = Array.make n 0 in
  List.iter
    (fun m ->
      for i = m.pos to n - 1 do
        stage.(i) <- max stage.(i) m.vnf
      done)
    w.marks;
  stage

(* Reference dedup with polymorphic tuple keys: every key allocates and
   pays the generic hash.  Kept as the fallback for forests whose ids do
   not pack into an int key, and as the microbench baseline for the packed
   path below. *)
let iter_paid_edges_poly t f =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun w ->
      let stage = stages w in
      for i = 0 to Array.length w.hops - 2 do
        let e = norm (w.hops.(i), w.hops.(i + 1)) in
        let key = (e, w.source, stage.(i)) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          f e
        end
      done)
    t.walks;
  List.iter (fun e -> f (norm e)) t.delivery

let iter_paid_edges t f =
  let n = Problem.n t.problem in
  (* A traffic context ((lo,hi), source, stage) packs into one int when
     every id is in range and |V|^3 * (smax+2) fits: same dedup, same
     emission order, no tuple allocation or polymorphic hashing. *)
  let encodable =
    let ok = ref true and smax = ref 0 in
    List.iter
      (fun w ->
        if w.source < 0 || w.source >= n then ok := false;
        Array.iter (fun v -> if v < 0 || v >= n then ok := false) w.hops;
        List.iter (fun m -> if m.vnf > !smax then smax := m.vnf) w.marks)
      t.walks;
    if
      !ok
      && float_of_int n ** 3.0 *. float_of_int (!smax + 2) < 4.0e18
    then Some !smax
    else None
  in
  match encodable with
  | None -> iter_paid_edges_poly t f
  | Some smax ->
      let seen = Hashtbl.create 64 in
      List.iter
        (fun w ->
          let stage = stages w in
          for i = 0 to Array.length w.hops - 2 do
            let u = w.hops.(i) and v = w.hops.(i + 1) in
            let lo = if u < v then u else v and hi = if u < v then v else u in
            let key =
              ((((lo * n) + hi) * n) + w.source) * (smax + 1) + stage.(i)
            in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.replace seen key ();
              f (lo, hi)
            end
          done)
        t.walks;
      List.iter (fun e -> f (norm e)) t.delivery

let connection_cost t =
  let acc = ref 0.0 in
  iter_paid_edges t (fun (u, v) -> acc := !acc +. Problem.edge_cost t.problem u v);
  !acc

let paid_edges t =
  let acc = ref [] in
  iter_paid_edges t (fun e -> acc := e :: !acc);
  List.rev !acc

let paid_edges_poly t =
  let acc = ref [] in
  iter_paid_edges_poly t (fun e -> acc := e :: !acc);
  List.rev !acc

let total_cost t = setup_cost t +. connection_cost t

let cost_breakdown t = (setup_cost t, connection_cost t)

let walk_edge_cost problem w =
  let acc = ref 0.0 in
  for i = 0 to Array.length w.hops - 2 do
    acc := !acc +. Problem.edge_cost problem w.hops.(i) w.hops.(i + 1)
  done;
  !acc

let chain_cost problem w =
  List.fold_left
    (fun acc m -> acc +. Problem.setup_cost problem w.hops.(m.pos))
    (walk_edge_cost problem w) w.marks

(* Replace the hop interval [a..b] of [w] (no marks strictly inside) by
   [path] (whose endpoints equal hops.(a) and hops.(b)). *)
let splice_segment (w : walk) a b path =
  let before = Array.sub w.hops 0 (a + 1) in
  let middle =
    match path with [] | [ _ ] -> [||] | _ :: tail -> Array.of_list tail
  in
  let after = Array.sub w.hops (b + 1) (Array.length w.hops - b - 1) in
  let hops = Array.concat [ before; middle; after ] in
  let shift = Array.length middle - (b - a) in
  (* No marks lie strictly inside (a, b); the mark at [b] itself (and all
     later ones) moves with the splice. *)
  let marks =
    List.map
      (fun m -> if m.pos >= b then { m with pos = m.pos + shift } else m)
      w.marks
  in
  { w with hops; marks }

let shorten t =
  let graph = t.problem.Problem.graph in
  let current = ref t in
  let try_segment wi a b =
    let w = List.nth !current.walks wi in
    if b > a then begin
      match
        Sof_graph.Dijkstra.to_target graph ~src:w.hops.(a) ~dst:w.hops.(b)
      with
      | None -> ()
      | Some (_, path) ->
          let w' = splice_segment w a b path in
          let walks' =
            List.mapi (fun i x -> if i = wi then w' else x) !current.walks
          in
          let cand = { !current with walks = walks' } in
          if total_cost cand < total_cost !current -. 1e-12 then
            current := cand
    end
  in
  List.iteri
    (fun wi w ->
      (* anchors: start, every mark position, end — recomputed against the
         current version of the walk after each accepted splice *)
      let rec pass si =
        let w = List.nth !current.walks wi in
        let anchors =
          List.sort_uniq compare
            ((0 :: List.map (fun m -> m.pos) w.marks)
            @ [ Array.length w.hops - 1 ])
        in
        if si < List.length anchors - 1 then begin
          let a = List.nth anchors si and b = List.nth anchors (si + 1) in
          try_segment wi a b;
          pass (si + 1)
        end
      in
      ignore w;
      pass 0)
    t.walks;
  !current

let pp_walk ppf w =
  let marked = Hashtbl.create 8 in
  List.iter (fun m -> Hashtbl.replace marked m.pos m.vnf) w.marks;
  Format.fprintf ppf "@[<h>";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf ppf " -> ";
      match Hashtbl.find_opt marked i with
      | Some f -> Format.fprintf ppf "%d[f%d]" v f
      | None -> Format.fprintf ppf "%d" v)
    w.hops;
  Format.fprintf ppf "@]"

let to_dot t =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph forest {\n  rankdir=LR;\n  node [shape=circle, fontsize=10];\n";
  let enabled = Hashtbl.create 8 in
  List.iter (fun (vm, vnf) -> Hashtbl.replace enabled vm vnf) (enabled_vms t);
  let declared = Hashtbl.create 16 in
  let declare v =
    if not (Hashtbl.mem declared v) then begin
      Hashtbl.replace declared v ();
      if Problem.is_source t.problem v then
        out "  n%d [shape=box, style=filled, fillcolor=lightblue, label=\"s%d\"];\n" v v
      else
        match Hashtbl.find_opt enabled v with
        | Some vnf ->
            out
              "  n%d [shape=doublecircle, style=filled, fillcolor=palegreen, \
               label=\"%d\\nf%d\"];\n"
              v v vnf
        | None ->
            if Problem.is_dest t.problem v then
              out "  n%d [shape=diamond, style=filled, fillcolor=gold, label=\"%d\"];\n" v v
            else out "  n%d [label=\"%d\"];\n" v v
    end
  in
  let colors = [| "red"; "blue"; "darkgreen"; "purple"; "orange"; "brown" |] in
  List.iteri
    (fun wi w ->
      let color = colors.(wi mod Array.length colors) in
      let stage = stages w in
      for i = 0 to Array.length w.hops - 2 do
        declare w.hops.(i);
        declare w.hops.(i + 1);
        out "  n%d -> n%d [color=%s, label=\"%d\", fontsize=8];\n" w.hops.(i)
          w.hops.(i + 1) color stage.(i)
      done)
    t.walks;
  List.iter
    (fun (u, v) ->
      declare u;
      declare v;
      out "  n%d -> n%d [style=dashed, dir=none];\n" u v)
    t.delivery;
  out "}\n";
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v>forest: %d walk(s), %d delivery edge(s), cost %.3f"
    (List.length t.walks)
    (List.length t.delivery)
    (total_cost t);
  List.iter (fun w -> Format.fprintf ppf "@,  walk %a" pp_walk w) t.walks;
  List.iter
    (fun (u, v) -> Format.fprintf ppf "@,  delivery %d -- %d" u v)
    t.delivery;
  Format.fprintf ppf "@]"
