(** SOFDA-SS — the (2 + rho_ST)-approximation for the single-source SOF
    problem (Section IV, Algorithm 1).

    For every candidate last VM [u], build the service chain walk from the
    source to [u] (Procedures 1–2 via {!Transform.chain_walk}), append a
    Steiner tree from [u] to all destinations, and keep the cheapest
    combination. *)

type report = {
  forest : Forest.t;
  last_vm : int;
  chain_cost : float;
  tree_cost : float;
}

val solve :
  ?cache:Sof_graph.Metric.Cache.t ->
  ?source_setup:bool ->
  ?transform:Transform.t ->
  ?budget:Sof_util.Budget.t ->
  Problem.t ->
  source:int ->
  report option
(** [solve problem ~source] — [None] when no candidate last VM yields a
    feasible chain + tree (disconnected instance or too few VMs).  A
    precomputed [transform] (closure) may be supplied to amortize Dijkstra
    runs across calls; a [cache] does the same across independent solves
    on one graph (ignored when [transform] is given).

    The candidate scan is {e anytime}: an expired [budget] stops before
    the next candidate last VM and returns the best fully-evaluated
    candidate so far — [None] when the deadline passed before the first
    one, never an exception.  [?budget:None] is bit-identical to the
    unbudgeted call. *)

val solve_forest :
  ?cache:Sof_graph.Metric.Cache.t ->
  ?source_setup:bool ->
  ?budget:Sof_util.Budget.t ->
  Problem.t ->
  source:int ->
  Forest.t option
(** [solve] projected to the forest. *)
