(** Sharing-aware forest evaluation: hash-consed DAG of walk segments.

    A {!Forest.t} stores walks as independent hop arrays, so the legacy
    evaluators ({!Forest.total_cost}, {!Forest.paid_edges},
    {!Validate.check}, the stream-ledger footprint) each re-traverse the
    whole forest from scratch — chaos events, stream arrivals and serve
    batches re-pay four full walks per candidate.  [Fdag] represents
    forests as a shared DAG instead: maximal same-stage hop runs are
    hash-consed into {e segment} nodes, walks into {e walk} nodes and the
    delivery edge set into a {e delivery} node, and every expensive
    attribute (per-edge costs and traffic-context keys, missing-edge and
    range errors, injection tails, delivery components) is computed once
    per node per graph and cached on it.  One {!eval} then returns cost,
    structural validity, paid traffic contexts and the ledger footprint in
    a single pass over the cached attributes.

    {b Bit-identity.}  For any forest, [eval] agrees exactly with the
    legacy evaluators: [errors] is byte-equal to {!Validate.check}'s error
    list, [paid_edges]/[enabled_vms] are structurally equal to their
    {!Forest} namesakes, the footprint matches the stream ledger's
    charging, and — whenever [cost_defined] — the cost fields are
    bit-identical floats (the per-context costs are re-folded into the
    accumulator in the legacy first-occurrence order, so float
    non-associativity never shows).  The [fdag-equiv] proptest oracle
    checks this differentially on every solver family.

    {b Incrementality.}  Contexts are warm: re-evaluating a forest that
    shares walks (physically or by content) with previously evaluated
    ones rebuilds only the dirty nodes — a {!Dynamic} splice, a
    {!Repair.heal} rung or a stream graft touches O(|changed|) nodes and
    every untouched walk is a table hit.  An eval over fully warm nodes
    costs one cheap re-fold of cached per-context costs (float adds and
    small int-table ops), skipping stage recomputation, tuple hashing,
    CSR cost lookups and the O(n) union-find build entirely.

    Contexts are not domain-safe: create one per domain (the batched
    serve engine keeps one per shard batch). *)

type t
(** A mutable evaluation context: the hash-cons tables, per-graph
    attribute caches and a small memo of recently evaluated forests.
    Caches are keyed by physical graph identity (capped per node, LRU),
    so long-lived graphs — the stream's statically priced graph, a serve
    domain's topology — stay warm while per-event degraded graphs churn
    harmlessly. *)

type result = {
  errors : Validate.error list;
      (** Byte-equal to [Validate.check]'s error list; [[]] iff valid. *)
  valid : bool;  (** [errors = []]. *)
  paid_defined : bool;
      (** Legacy {!Forest.paid_edges} does not raise (every mark position
          is nonnegative).  When [false], [paid_edges] / [fp_edges] are
          still total here — stages clamp at hop 0 — but have no legacy
          counterpart to compare against. *)
  cost_defined : bool;
      (** All walk and delivery edges exist (endpoints in range), every
          mark position indexes its walk and every enabled VM is in
          range — exactly the cases where the legacy cost evaluators do
          not raise.  When [false] the three cost fields are [nan]. *)
  setup_cost : float;
  connection_cost : float;
  total_cost : float;
  paid_edges : (int * int) list;
      (** Structurally equal to {!Forest.paid_edges}. *)
  enabled_vms : (int * int) list;
      (** Structurally equal to {!Forest.enabled_vms} whenever the legacy
          function does not raise (see [cost_defined]). *)
  fp_edges : ((int * int) * int) list;
      (** Normalized paid edges with per-context multiplicity, sorted —
          the stream ledger footprint. *)
  fp_vms : int list;  (** [List.map fst enabled_vms]. *)
}

type stats = {
  evals : int;         (** evaluations answered (including memo hits) *)
  full_evals : int;    (** evaluations that reused no cached node *)
  reeval_dirty : int;  (** dirty nodes (re)built across warm evaluations *)
  nodes_shared : int;  (** cache hits: nodes or memoized results reused *)
}

val create : unit -> t

val eval : t -> Forest.t -> result
(** Evaluate [f], reusing every warm node and building the rest.  Also
    bumps the [fdag.full_evals] / [fdag.reeval_dirty] /
    [fdag.nodes_shared] {!Sof_obs.Obs} counters. *)

val reeval : t -> Forest.t -> result
(** Alias of {!eval}, named for call sites that re-evaluate after a
    splice: the unchanged region is warm, so only dirty nodes are
    recomputed. *)

val validity : result -> (unit, Validate.error list) Stdlib.result
(** [Ok ()] / [Error errors] — drop-in for {!Validate.check}. *)

val stats : t -> stats
(** Cumulative counters since {!create}. *)

val eval_wall_s : t -> float
(** Cumulative wall-clock seconds this context has spent inside
    {!eval}, over its whole lifetime.  Consumers that thread one context
    through a run subtract two readings to price the evaluation share of
    an event separately from the surrounding solver work. *)

val last_stats : t -> stats
(** Counters of the most recent {!eval} only ([evals] is 0 or 1). *)
