(** Service overlay forests — the solution object of the SOF problem.

    A forest is a set of {e service-chain walks} plus a set of {e delivery
    edges}.  Each walk starts at a source, ends at its last VM, and carries
    the full chain [f_1 … f_|C|] as marks on VM hops; walks may revisit
    nodes (the paper's clones).  Delivery edges are the residual Steiner
    edges ([T ∩ G]) that carry the fully-processed stream from last VMs to
    the destinations.

    Cost accounting follows Section III: every enabled VM is paid once; a
    walk edge is paid once per {e distinct traffic context} — two walks (or
    two passes of one walk) share an edge's cost exactly when they carry the
    same content, i.e. same originating source and same number of already
    applied VNFs; delivery edges are paid once each. *)

type mark = {
  pos : int;  (** index into [hops] *)
  vnf : int;  (** 1-based index into the chain *)
}

type walk = {
  source : int;
  hops : int array;        (** [hops.(0) = source]; consecutive hops are edges of G *)
  marks : mark list;       (** ascending in [pos] and in [vnf]; [vnf]s are exactly 1..|C| *)
}

type t = {
  problem : Problem.t;
  walks : walk list;
  delivery : (int * int) list;  (** delivery edges, normalized [u < v] *)
}

val make : Problem.t -> walks:walk list -> delivery:(int * int) list -> t
(** Normalizes delivery edges (dedup, [u < v]).  Structural feasibility is
    checked separately by {!Validate.check}. *)

val walk_last_vm : walk -> int
(** VM carrying [f_|C|].  @raise Invalid_argument on an unmarked walk. *)

val walk_vms : walk -> int list
(** VMs of the walk's marks in chain order. *)

val enabled_vms : t -> (int * int) list
(** [(vm, vnf)] pairs enabled across all walks, deduplicated and sorted.
    When the forest is valid each VM appears once. *)

val setup_cost : t -> float

val connection_cost : t -> float

val total_cost : t -> float

val cost_breakdown : t -> float * float
(** [(setup, connection)]. *)

val paid_edges : t -> (int * int) list
(** Every edge payment of {!connection_cost}, one entry per paid traffic
    context (so an edge traversed at two stages appears twice).  Used by
    the online ledger to charge link loads exactly as costs were counted. *)

val paid_edges_poly : t -> (int * int) list
(** {!paid_edges} through the reference dedup (polymorphic tuple keys).
    [paid_edges] packs each traffic context into one int when the ids fit
    and falls back to this path otherwise; kept public as the microbench
    baseline for that hot-path rewrite. *)

val walk_edge_cost : Problem.t -> walk -> float
(** Connection cost of one walk in isolation (each traversal paid). *)

val chain_cost : Problem.t -> walk -> float
(** [walk_edge_cost] plus the setup costs of the walk's own marks. *)

val shorten : t -> t
(** The paper's walk-shortening step (end of Example 7): every maximal
    VNF-free segment of every walk is replaced by a shortest path between
    its endpoints whenever that lowers {!total_cost} — the global check
    matters because a rerouted segment may lose sharing with another
    walk's prefix.  Validity is preserved (only pass-through hops move). *)

val to_dot : t -> string
(** Graphviz rendition of the forest over its network: box nodes for
    sources, double circles for enabled VMs (labelled with their VNF),
    diamonds for destinations; solid colored arrows for walk hops
    (one color per walk, edge labels give the processing stage), dashed
    arrows for delivery edges.  Paste into `dot -Tsvg` to inspect an
    embedding. *)

val pp : Format.formatter -> t -> unit
