module Graph = Sof_graph.Graph
module Union_find = Sof_graph.Union_find
module Obs = Sof_obs.Obs
module Timer = Sof_util.Timer

type result = {
  errors : Validate.error list;
  valid : bool;
  paid_defined : bool;
  cost_defined : bool;
  setup_cost : float;
  connection_cost : float;
  total_cost : float;
  paid_edges : (int * int) list;
  enabled_vms : (int * int) list;
  fp_edges : ((int * int) * int) list;
  fp_vms : int list;
}

type stats = {
  evals : int;
  full_evals : int;
  reeval_dirty : int;
  nodes_shared : int;
}

(* ---------- hashing -------------------------------------------------- *)

(* FNV-1a over every element.  [Hashtbl.hash] only samples ~10 fields, so
   long hop arrays sharing a prefix would all collide into one bucket. *)
let fnv_prime = 0x100000001b3
let fnv_basis = 0x3bf29ce484222325 (* FNV offset basis folded into 62 bits *)

let fnv_int h x = (h lxor x) * fnv_prime

let hash_int_array h a =
  let h = ref h in
  for i = 0 to Array.length a - 1 do
    h := fnv_int !h a.(i)
  done;
  !h

let int_array_equal a b =
  a == b
  || Array.length a = Array.length b
     &&
     let rec go i = i < 0 || (a.(i) = b.(i) && go (i - 1)) in
     go (Array.length a - 1)

module Seg_tbl = Hashtbl.Make (struct
  type t = int array

  let equal = int_array_equal
  let hash a = hash_int_array fnv_basis a land max_int
end)

module Walk_tbl = Hashtbl.Make (struct
  type t = Forest.walk

  let equal (a : Forest.walk) (b : Forest.walk) =
    a == b
    || a.Forest.source = b.Forest.source
       && int_array_equal a.Forest.hops b.Forest.hops
       && a.Forest.marks = b.Forest.marks

  let hash (w : Forest.walk) =
    let h = fnv_int fnv_basis w.Forest.source in
    let h = hash_int_array h w.Forest.hops in
    List.fold_left
      (fun h (m : Forest.mark) -> fnv_int (fnv_int h m.Forest.pos) m.Forest.vnf)
      h w.Forest.marks
    land max_int
end)

module Del_tbl = Hashtbl.Make (struct
  type t = (int * int) list

  let equal a b = a == b || a = b

  let hash d =
    List.fold_left (fun h (u, v) -> fnv_int (fnv_int h u) v) fnv_basis d
    land max_int
end)

(* ---------- nodes ----------------------------------------------------- *)

(* Per-graph attributes of a hop slice (all edges share one stage).  Keyed
   by physical graph identity: range checks depend on |V| and costs on the
   weights, both properties of the graph value. *)
type sattrs = {
  s_lo : int array;  (* normalized endpoints per slice edge *)
  s_hi : int array;
  s_enc : int array;  (* lo * n + hi when both endpoints in range, else -1 *)
  s_costs : float array;  (* edge weight; nan when absent or out of range *)
  s_bad : int list;  (* ascending slice indices of out-of-range nodes *)
}

type snode = { s_hops : int array; mutable s_by_graph : (Graph.t * sattrs) list }

(* Per-mark replay of Validate's mark loop: either the static "positions
   not ascending / out of range" complaint or the node to re-check against
   the problem's VM set at eval time. *)
type mark_check = Mark_bad | Mark_at of int

type wattrs = {
  a_chain : int;  (* chain length the context keys were built for *)
  a_costs : float array;  (* per walk edge, walk order *)
  a_lo : int array;
  a_hi : int array;
  a_stage : int array;
  a_keys : int array;  (* >= 0 encoded context key, -1 => tuple context *)
  a_first : int array;  (* ascending edge indices first carrying their context *)
  a_pre : Validate.error list;  (* range errors, then first-hop errors *)
  a_miss : Validate.error list;  (* missing-edge errors in hop order *)
  a_injection : int array;  (* in-range injection-tail nodes *)
  a_cost_ok : bool;  (* every walk edge present with in-range endpoints *)
}

type wnode = {
  wkey : Forest.walk;
  wlen : int;
  estage : int array;  (* stage per edge index (clamped at hop 0) *)
  wsegs : (snode * int) array;  (* segment, start hop index *)
  wmarks : mark_check array;
  wpos_marks : (int * int) array;  (* (hop node, vnf), positions in [0,len) *)
  wpos_ok : bool;  (* every mark position indexes hops *)
  wstage_ok : bool;  (* every mark position nonnegative (legacy stages total) *)
  mutable wshape : (int * Validate.error list) option;
  mutable w_by_graph : (Graph.t * wattrs) list;
}

type dattrs = {
  d_costs : float array;  (* per delivery edge, list order *)
  d_errs : Validate.error list;
  d_comp : (int, int) Hashtbl.t;  (* endpoint -> component representative *)
  d_cost_ok : bool;
}

type dnode = {
  d_edges : (int * int) list;
  mutable d_by_graph : (Graph.t * dattrs) list;
}

type t = {
  segs : snode Seg_tbl.t;
  walks : wnode Walk_tbl.t;
  dels : dnode Del_tbl.t;
  mutable prev : (Forest.walk array * wnode array) option;
  mutable memo : (Forest.t * result) list;
  mutable c_evals : int;
  mutable c_full : int;
  mutable c_dirty : int;
  mutable c_shared : int;
  mutable l_full : int;
  mutable l_built : int;
  mutable l_shared : int;
  mutable c_wall_ns : int;
}

let create () =
  {
    segs = Seg_tbl.create 256;
    walks = Walk_tbl.create 256;
    dels = Del_tbl.create 64;
    prev = None;
    memo = [];
    c_evals = 0;
    c_full = 0;
    c_dirty = 0;
    c_shared = 0;
    l_full = 0;
    l_built = 0;
    l_shared = 0;
    c_wall_ns = 0;
  }

let stats ctx =
  {
    evals = ctx.c_evals;
    full_evals = ctx.c_full;
    reeval_dirty = ctx.c_dirty;
    nodes_shared = ctx.c_shared;
  }

let last_stats ctx =
  {
    evals = min ctx.c_evals 1;
    full_evals = ctx.l_full;
    reeval_dirty = ctx.l_built;
    nodes_shared = ctx.l_shared;
  }

let validity r = if r.valid then Ok () else Error r.errors

(* Backstop against unbounded growth on very long streams: amnesia is
   cheap (the next eval rebuilds from scratch) and never affects results. *)
let max_walk_nodes = 16_384
let max_graph_attrs = 4
let memo_cap = 8

(* Keyed-by-physical-graph attribute slots on a node: move-to-front on
   hit, capped.  [refresh] decides whether a found slot is still usable
   (context keys embed the chain length, so a same-graph different-chain
   problem forces a rebuild). *)
let by_graph ~refresh ~build ctx get set g =
  let rec split acc = function
    | [] -> None
    | (g', a) :: rest when g' == g -> Some (a, List.rev_append acc rest)
    | x :: rest -> split (x :: acc) rest
  in
  match split [] (get ()) with
  | Some (a, rest) when refresh a ->
      ctx.l_shared <- ctx.l_shared + 1;
      set ((g, a) :: rest);
      a
  | Some (_, rest) ->
      ctx.l_built <- ctx.l_built + 1;
      let a = build () in
      set ((g, a) :: rest);
      a
  | None ->
      ctx.l_built <- ctx.l_built + 1;
      let a = build () in
      let l = (g, a) :: get () in
      set (if List.length l > max_graph_attrs then List.filteri (fun i _ -> i < max_graph_attrs) l else l);
      a

(* ---------- segment nodes --------------------------------------------- *)

let seg_node ctx hops =
  match Seg_tbl.find_opt ctx.segs hops with
  | Some sn ->
      ctx.l_shared <- ctx.l_shared + 1;
      sn
  | None ->
      ctx.l_built <- ctx.l_built + 1;
      let sn = { s_hops = hops; s_by_graph = [] } in
      Seg_tbl.replace ctx.segs hops sn;
      sn

let build_sattrs g n s =
  let ne = max 0 (Array.length s - 1) in
  let s_lo = Array.make ne 0
  and s_hi = Array.make ne 0
  and s_enc = Array.make ne (-1)
  and s_costs = Array.make ne nan in
  let bad = ref [] in
  for i = Array.length s - 1 downto 0 do
    let v = s.(i) in
    if v < 0 || v >= n then bad := i :: !bad
  done;
  for i = 0 to ne - 1 do
    let u = s.(i) and v = s.(i + 1) in
    let lo = min u v and hi = max u v in
    s_lo.(i) <- lo;
    s_hi.(i) <- hi;
    if lo >= 0 && hi < n then begin
      s_enc.(i) <- (lo * n) + hi;
      match Graph.edge_weight g lo hi with
      | Some w -> s_costs.(i) <- w
      | None -> ()
    end
  done;
  { s_lo; s_hi; s_enc; s_costs; s_bad = !bad }

let sattrs ctx g n sn =
  by_graph ctx
    ~refresh:(fun _ -> true)
    ~build:(fun () -> build_sattrs g n sn.s_hops)
    (fun () -> sn.s_by_graph)
    (fun l -> sn.s_by_graph <- l)
    g

(* ---------- walk nodes ------------------------------------------------- *)

let build_wnode ctx (w : Forest.walk) =
  let len = Array.length w.Forest.hops in
  let ne = max 0 (len - 1) in
  (* Stage per edge, exactly [Forest.stages] but clamped at hop 0 so a
     negative mark position cannot escape the array (legacy raises there;
     [wstage_ok] records that divergence). *)
  let estage = Array.make ne 0 in
  let stage_ok = ref true in
  List.iter
    (fun (m : Forest.mark) ->
      if m.Forest.pos < 0 then stage_ok := false;
      for i = max 0 m.Forest.pos to ne - 1 do
        estage.(i) <- max estage.(i) m.Forest.vnf
      done)
    w.Forest.marks;
  (* Segment boundaries wherever the stage steps: every edge of a slice
     carries one traffic stage, so a splice between marks dirties exactly
     one segment. *)
  let wsegs =
    if len = 0 then [||]
    else begin
      let bounds = ref [ 0 ] in
      for i = 1 to ne - 1 do
        if estage.(i) <> estage.(i - 1) then bounds := i :: !bounds
      done;
      let bounds = Array.of_list (List.rev (len - 1 :: !bounds)) in
      let nb = Array.length bounds in
      if nb < 2 then [| (seg_node ctx w.Forest.hops, 0) |]
      else
        Array.init (nb - 1) (fun k ->
            let b = bounds.(k) and c = bounds.(k + 1) in
            if b = 0 && c = len - 1 then (seg_node ctx w.Forest.hops, 0)
            else (seg_node ctx (Array.sub w.Forest.hops b (c - b + 1)), b))
    end
  in
  let wmarks =
    let prev = ref (-1) in
    Array.of_list
      (List.map
         (fun (m : Forest.mark) ->
           if m.Forest.pos <= !prev || m.Forest.pos > len - 1 then Mark_bad
           else begin
             prev := m.Forest.pos;
             Mark_at w.Forest.hops.(m.Forest.pos)
           end)
         w.Forest.marks)
  in
  let pos_ok = ref true in
  let wpos_marks =
    Array.of_list
      (List.filter_map
         (fun (m : Forest.mark) ->
           if m.Forest.pos >= 0 && m.Forest.pos < len then
             Some (w.Forest.hops.(m.Forest.pos), m.Forest.vnf)
           else begin
             pos_ok := false;
             None
           end)
         w.Forest.marks)
  in
  {
    wkey = w;
    wlen = len;
    estage;
    wsegs;
    wmarks;
    wpos_marks;
    wpos_ok = !pos_ok;
    wstage_ok = !stage_ok;
    wshape = None;
    w_by_graph = [];
  }

let walk_node ctx (w : Forest.walk) =
  match Walk_tbl.find_opt ctx.walks w with
  | Some wn ->
      ctx.l_shared <- ctx.l_shared + 1;
      wn
  | None ->
      ctx.l_built <- ctx.l_built + 1;
      let wn = build_wnode ctx w in
      Walk_tbl.replace ctx.walks w wn;
      wn

let shape_errors chain wn =
  match wn.wshape with
  | Some (c, errs) when c = chain -> errs
  | _ ->
      let expected = List.init chain (fun i -> i + 1) in
      let vnfs = List.map (fun (m : Forest.mark) -> m.Forest.vnf) wn.wkey.Forest.marks in
      let errs =
        if vnfs <> expected then
          [ Validate.Bad_walk "marks are not exactly f1..f|C| in order" ]
        else []
      in
      wn.wshape <- Some (chain, errs);
      errs

let build_wattrs ctx g n chain wn =
  let w = wn.wkey in
  let len = wn.wlen in
  let ne = max 0 (len - 1) in
  let a_costs = Array.make ne nan
  and a_lo = Array.make ne 0
  and a_hi = Array.make ne 0
  and a_keys = Array.make ne (-1) in
  let pre = ref [] and miss = ref [] in
  let cost_ok = ref true in
  (* The source and |V|^3 * (chain+2) must fit for the packed int keys;
     otherwise every context of this walk uses the tuple fallback. *)
  let enc_ok =
    w.Forest.source >= 0 && w.Forest.source < n
    && float_of_int n ** 3.0 *. float_of_int (chain + 2) < 4.0e18
  in
  Array.iteri
    (fun k (sn, b) ->
      let sa = sattrs ctx g n sn in
      (* Range errors in hop order; the shared boundary hop belongs to
         the previous segment. *)
      List.iter
        (fun idx ->
          if not (k > 0 && idx = 0) then
            pre := Validate.Node_out_of_range sn.s_hops.(idx) :: !pre)
        sa.s_bad;
      for j = 0 to Array.length sn.s_hops - 2 do
        let i = b + j in
        a_lo.(i) <- sa.s_lo.(j);
        a_hi.(i) <- sa.s_hi.(j);
        a_costs.(i) <- sa.s_costs.(j);
        if sa.s_enc.(j) >= 0 then begin
          if Float.is_nan sa.s_costs.(j) then begin
            cost_ok := false;
            miss := Validate.Missing_edge (sn.s_hops.(j), sn.s_hops.(j + 1)) :: !miss
          end;
          let st = wn.estage.(i) in
          if enc_ok && st >= 0 && st <= chain then
            a_keys.(i) <- (((sa.s_enc.(j) * n) + w.Forest.source) * (chain + 1)) + st
        end
        else cost_ok := false
      done)
    wn.wsegs;
  let pre = List.rev !pre in
  let pre =
    if len > 0 && w.Forest.hops.(0) <> w.Forest.source then
      pre
      @ Validate.Bad_walk "first hop differs from source"
        ::
        (if w.Forest.source < 0 || w.Forest.source >= n then
           [ Validate.Node_out_of_range w.Forest.source ]
         else [])
    else pre
  in
  (* First-in-walk occurrence of each traffic context, in edge order. *)
  let a_first =
    let seen_int = Hashtbl.create (2 * ne) and seen_any = Hashtbl.create 4 in
    let acc = ref [] in
    for i = 0 to ne - 1 do
      if a_keys.(i) >= 0 then begin
        if not (Hashtbl.mem seen_int a_keys.(i)) then begin
          Hashtbl.replace seen_int a_keys.(i) ();
          acc := i :: !acc
        end
      end
      else
        let key = ((a_lo.(i), a_hi.(i)), w.Forest.source, wn.estage.(i)) in
        if not (Hashtbl.mem seen_any key) then begin
          Hashtbl.replace seen_any key ();
          acc := i :: !acc
        end
    done;
    Array.of_list (List.rev !acc)
  in
  let a_injection =
    match List.rev w.Forest.marks with
    | (m : Forest.mark) :: _ when m.Forest.pos >= 0 && m.Forest.pos < len ->
        let acc = ref [] in
        for i = len - 1 downto m.Forest.pos do
          let v = w.Forest.hops.(i) in
          if v >= 0 && v < n then acc := v :: !acc
        done;
        Array.of_list !acc
    | _ -> [||]
  in
  {
    a_chain = chain;
    a_costs;
    a_lo;
    a_hi;
    a_stage = wn.estage;
    a_keys;
    a_first;
    a_pre = pre;
    a_miss = List.rev !miss;
    a_injection;
    a_cost_ok = !cost_ok;
  }

let wattrs ctx g n chain wn =
  by_graph ctx
    ~refresh:(fun a -> a.a_chain = chain)
    ~build:(fun () -> build_wattrs ctx g n chain wn)
    (fun () -> wn.w_by_graph)
    (fun l -> wn.w_by_graph <- l)
    g

(* ---------- delivery node ---------------------------------------------- *)

let del_node ctx edges =
  match Del_tbl.find_opt ctx.dels edges with
  | Some dn ->
      ctx.l_shared <- ctx.l_shared + 1;
      dn
  | None ->
      ctx.l_built <- ctx.l_built + 1;
      let dn = { d_edges = edges; d_by_graph = [] } in
      Del_tbl.replace ctx.dels edges dn;
      dn

let build_dattrs g n edges =
  let m = List.length edges in
  let d_costs = Array.make m nan in
  let errs = ref [] and cost_ok = ref true in
  (* Union-find over dense ids of the endpoints actually present, so a
     delivery rebuild costs O(|delivery|) rather than O(|V|): on big
     graphs the per-splice rebuild would otherwise be dominated by the
     [Union_find.create n] fill.  Representatives are mapped back to a
     member node id, so [d_comp] keeps the original semantics: distinct
     components have distinct reps, and a node absent from the delivery
     can never collide with one (every rep is a member). *)
  let ids = Hashtbl.create (2 * m) in
  let nodes = ref [] and nids = ref 0 in
  let register v =
    if v >= 0 && v < n && not (Hashtbl.mem ids v) then begin
      Hashtbl.replace ids v !nids;
      nodes := v :: !nodes;
      incr nids
    end
  in
  List.iter
    (fun (u, v) ->
      register u;
      register v)
    edges;
  let node_of = Array.of_list (List.rev !nodes) in
  let uf = Union_find.create !nids in
  List.iteri
    (fun j (u, v) ->
      let in_u = u >= 0 && u < n and in_v = v >= 0 && v < n in
      if not in_u then errs := Validate.Node_out_of_range u :: !errs;
      if not in_v then errs := Validate.Node_out_of_range v :: !errs;
      if in_u && in_v then begin
        ignore (Union_find.union uf (Hashtbl.find ids u) (Hashtbl.find ids v));
        let lo = min u v and hi = max u v in
        match Graph.edge_weight g lo hi with
        | Some c -> d_costs.(j) <- c
        | None ->
            cost_ok := false;
            errs := Validate.Missing_edge (u, v) :: !errs
      end
      else cost_ok := false)
    edges;
  let d_comp = Hashtbl.create (2 * m) in
  let rep v = node_of.(Union_find.find uf (Hashtbl.find ids v)) in
  List.iter
    (fun (u, v) ->
      if u >= 0 && u < n && not (Hashtbl.mem d_comp u) then
        Hashtbl.replace d_comp u (rep u);
      if v >= 0 && v < n && not (Hashtbl.mem d_comp v) then
        Hashtbl.replace d_comp v (rep v))
    edges;
  { d_costs; d_errs = List.rev !errs; d_comp; d_cost_ok = !cost_ok }

let dattrs ctx g n dn =
  by_graph ctx
    ~refresh:(fun _ -> true)
    ~build:(fun () -> build_dattrs g n dn.d_edges)
    (fun () -> dn.d_by_graph)
    (fun l -> dn.d_by_graph <- l)
    g

(* ---------- evaluation ------------------------------------------------- *)

let comp_find da v =
  match Hashtbl.find_opt da.d_comp v with Some r -> r | None -> v

let memo_find ctx f =
  let rec go acc = function
    | [] -> None
    | (f', r) :: rest when f' == f ->
        ctx.memo <- (f', r) :: List.rev_append acc rest;
        Some r
    | x :: rest -> go (x :: acc) rest
  in
  go [] ctx.memo

let eval_untimed ctx (f : Forest.t) =
  match memo_find ctx f with
  | Some r ->
      ctx.c_evals <- ctx.c_evals + 1;
      ctx.c_shared <- ctx.c_shared + 1;
      ctx.l_full <- 0;
      ctx.l_built <- 0;
      ctx.l_shared <- 1;
      Obs.count "fdag.nodes_shared" 1;
      r
  | None ->
      if Walk_tbl.length ctx.walks > max_walk_nodes then begin
        Walk_tbl.reset ctx.walks;
        Seg_tbl.reset ctx.segs;
        Del_tbl.reset ctx.dels;
        ctx.prev <- None;
        ctx.memo <- []
      end;
      ctx.l_full <- 0;
      ctx.l_built <- 0;
      ctx.l_shared <- 0;
      let p = f.Forest.problem in
      let g = p.Problem.graph in
      let n = Problem.n p in
      let chain = p.Problem.chain_length in
      let warr = Array.of_list f.Forest.walks in
      let nw = Array.length warr in
      let wnodes =
        Array.mapi
          (fun i w ->
            match ctx.prev with
            | Some (pw, pn) when i < Array.length pw && pw.(i) == w ->
                ctx.l_shared <- ctx.l_shared + 1;
                pn.(i)
            | _ -> walk_node ctx w)
          warr
      in
      let wa = Array.map (fun wn -> wattrs ctx g n chain wn) wnodes in
      let dn = del_node ctx f.Forest.delivery in
      let da = dattrs ctx g n dn in
      (* --- validity, in Validate.check's exact emission order --- *)
      let errs = ref [] in
      let emit e = errs := e :: !errs in
      Array.iteri
        (fun i wn ->
          let w = warr.(i) in
          if wn.wlen = 0 then emit (Validate.Bad_walk "empty hop sequence")
          else begin
            List.iter emit wa.(i).a_pre;
            if not (Problem.is_source p w.Forest.source) then
              emit (Validate.Bad_source w.Forest.source);
            List.iter emit wa.(i).a_miss;
            List.iter emit (shape_errors chain wn);
            Array.iter
              (function
                | Mark_bad ->
                    emit
                      (Validate.Bad_walk
                         "mark positions not ascending / out of range")
                | Mark_at v ->
                    if v >= 0 && v < n && not (Problem.is_vm p v) then
                      emit (Validate.Mark_not_vm v))
              wn.wmarks
          end)
        wnodes;
      let enabled_tbl = Hashtbl.create 16 in
      Array.iter
        (fun wn ->
          Array.iter
            (fun (v, vnf) ->
              match Hashtbl.find_opt enabled_tbl v with
              | Some f0 when f0 <> vnf -> emit (Validate.Vnf_conflict (v, f0, vnf))
              | Some _ -> ()
              | None -> Hashtbl.replace enabled_tbl v vnf)
            wn.wpos_marks)
        wnodes;
      List.iter emit da.d_errs;
      let injected = Hashtbl.create 32 in
      for i = 0 to nw - 1 do
        Array.iter
          (fun v -> Hashtbl.replace injected (comp_find da v) ())
          wa.(i).a_injection
      done;
      List.iter
        (fun d ->
          if not (Hashtbl.mem injected (comp_find da d)) then
            emit (Validate.Unserved_destination d))
        p.Problem.dests;
      let errors = List.rev !errs in
      (* --- costs, paid contexts and footprint in one pass --- *)
      let dup_source =
        if nw < 2 then fun _ -> false
        else begin
          let cnt = Hashtbl.create 8 in
          Array.iter
            (fun (w : Forest.walk) ->
              Hashtbl.replace cnt w.Forest.source
                (1 + Option.value ~default:0 (Hashtbl.find_opt cnt w.Forest.source)))
            warr;
          fun s -> Option.value ~default:0 (Hashtbl.find_opt cnt s) > 1
        end
      in
      let seen_int = lazy (Hashtbl.create 64)
      and seen_any = lazy (Hashtbl.create 16) in
      let conn = ref 0.0 in
      let paid = ref [] in
      let fp = Hashtbl.create 32 in
      let fp_add lo hi =
        let key = (lo, hi) in
        Hashtbl.replace fp key (1 + Option.value ~default:0 (Hashtbl.find_opt fp key))
      in
      let cost_ok = ref true in
      let paid_defined = ref true in
      Array.iteri
        (fun i wn ->
          let a = wa.(i) in
          if not a.a_cost_ok then cost_ok := false;
          if not wn.wstage_ok then paid_defined := false;
          if not wn.wpos_ok then cost_ok := false;
          let dup = dup_source wn.wkey.Forest.source in
          Array.iter
            (fun idx ->
              let pays =
                if not dup then true
                else if a.a_keys.(idx) >= 0 then begin
                  let t = Lazy.force seen_int in
                  if Hashtbl.mem t a.a_keys.(idx) then false
                  else begin
                    Hashtbl.replace t a.a_keys.(idx) ();
                    true
                  end
                end
                else begin
                  let t = Lazy.force seen_any in
                  let key =
                    ((a.a_lo.(idx), a.a_hi.(idx)), wn.wkey.Forest.source, a.a_stage.(idx))
                  in
                  if Hashtbl.mem t key then false
                  else begin
                    Hashtbl.replace t key ();
                    true
                  end
                end
              in
              if pays then begin
                conn := !conn +. a.a_costs.(idx);
                paid := (a.a_lo.(idx), a.a_hi.(idx)) :: !paid;
                fp_add a.a_lo.(idx) a.a_hi.(idx)
              end)
            a.a_first)
        wnodes;
      if not da.d_cost_ok then cost_ok := false;
      List.iteri
        (fun j (u, v) ->
          let lo = min u v and hi = max u v in
          conn := !conn +. da.d_costs.(j);
          paid := (lo, hi) :: !paid;
          fp_add lo hi)
        dn.d_edges;
      let paid_edges = List.rev !paid in
      (* --- enabled VMs and setup cost, legacy order --- *)
      let enabled_vms =
        List.sort_uniq compare
          (List.concat_map
             (fun wn -> Array.to_list wn.wpos_marks)
             (Array.to_list wnodes))
      in
      let setup = ref 0.0 in
      let last_vm = ref min_int in
      List.iter
        (fun (v, _) ->
          if v <> !last_vm then begin
            last_vm := v;
            if v >= 0 && v < n then setup := !setup +. Problem.setup_cost p v
            else cost_ok := false
          end)
        enabled_vms;
      let cost_defined = !cost_ok && !paid_defined in
      let setup_cost = if cost_defined then !setup else nan in
      let connection_cost = if cost_defined then !conn else nan in
      let total_cost = setup_cost +. connection_cost in
      let fp_edges =
        List.sort
          (fun ((a1, b1), _) ((a2, b2), _) ->
            match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c)
          (Hashtbl.fold (fun e k acc -> (e, k) :: acc) fp [])
      in
      let r =
        {
          errors;
          valid = errors = [];
          paid_defined = !paid_defined;
          cost_defined;
          setup_cost;
          connection_cost;
          total_cost;
          paid_edges;
          enabled_vms;
          fp_edges;
          fp_vms = List.map fst enabled_vms;
        }
      in
      ctx.prev <- Some (warr, wnodes);
      ctx.memo <-
        (f, r)
        :: (if List.length ctx.memo >= memo_cap then
              List.filteri (fun i _ -> i < memo_cap - 1) ctx.memo
            else ctx.memo);
      ctx.c_evals <- ctx.c_evals + 1;
      ctx.c_shared <- ctx.c_shared + ctx.l_shared;
      if ctx.l_shared = 0 then begin
        ctx.c_full <- ctx.c_full + 1;
        ctx.l_full <- 1;
        Obs.count "fdag.full_evals" 1
      end
      else begin
        ctx.c_dirty <- ctx.c_dirty + ctx.l_built;
        Obs.count "fdag.reeval_dirty" ctx.l_built;
        Obs.count "fdag.nodes_shared" ctx.l_shared
      end;
      r

(* The wall accumulator lets consumers (chaos/stream/serve reports) split
   evaluation time from solver time even when evals happen deep inside a
   repair ladder sharing this context; clock reads never touch results. *)
let eval ctx f =
  let t0 = Timer.now_ns () in
  let r = eval_untimed ctx f in
  ctx.c_wall_ns <- ctx.c_wall_ns + (Timer.now_ns () - t0);
  r

let eval_wall_s ctx = float_of_int ctx.c_wall_ns *. 1e-9

let reeval = eval
