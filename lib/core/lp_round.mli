(** LP-relax-and-round: the second solver family.

    Pipeline: solve the {!Ip_model.relaxation} with sparse delayed column
    generation ({!Sof_lp.Col_gen}), then draw [trials] randomized
    roundings of the fractional solution — per destination, a source and a
    VM per VNF are sampled from the LP marginals ([gamma] values), the
    chain is realized as concatenated shortest paths and the processed
    stream delivered along a shortest path — and keep the cheapest draw
    that validates.  Infeasible draws are repaired by an escalating
    ladder: reachability-restricted resampling, substitution of the
    SOFDA chain for the failing destination, and finally the SOFDA forest
    itself; cross-walk VNF clashes are healed by {!Conflict.resolve}.
    Every returned forest passes {!Validate.check}.

    Determinism: all randomness flows through one seeded
    {!Sof_util.Rng}; the same [seed] yields a bit-identical forest and
    report.  The LP lower bound is sound even when column generation is
    cut short (Lagrangian fallback, clamped at 0 for the nonnegative
    objective), so [lp_bound <= Ip_model.objective_of_forest f] holds for
    {e every} feasible forest [f] — the [lp-vs-sofda] fuzz oracle's
    contract. *)

type report = {
  forest : Forest.t;          (** always {!Validate.check}-clean *)
  lp_bound : float;
      (** sound lower bound on the IP optimum (hence on the IP objective
          of any feasible forest); [>= 0] *)
  lp_proven : bool;  (** [lp_bound] is the exact LP-relaxation optimum *)
  lp_stats : Sof_lp.Col_gen.stats;
  rounded_ip_cost : float;
      (** {!Ip_model.objective_of_forest} of [forest] *)
  trials : int;     (** rounding trials drawn *)
  repairs : int;
      (** repair-ladder escalations fired: infeasible draws resampled or
          replaced, VNF clashes healed by {!Conflict} rules, invalid
          trials discarded, SOFDA fallbacks *)
  fallback : bool;  (** no trial validated; [forest] is the SOFDA forest *)
}

val solve :
  ?cache:Sof_graph.Metric.Cache.t ->
  ?seed:int ->
  ?trials:int ->
  ?max_rounds:int ->
  ?batch:int ->
  ?budget:Sof_util.Budget.t ->
  Problem.t ->
  report option
(** [None] exactly when {!Sofda.solve} returns [None] (no feasible
    embedding to warm-start or repair with).  [seed] defaults to 0,
    [trials] to 16; [max_rounds] and [batch] tune the column-generation
    loop ({!Sof_lp.Col_gen.solve}).  A shared [cache] reuses Dijkstra
    closures across SOFDA, the warm start, and the rounding paths.

    An expired [budget] degrades in stage order, never raising: the
    warm-start SOFDA solve goes anytime (its own contract), column
    generation stalls at the next pivot/round boundary with the sound
    Lagrangian bound, and the rounding loop keeps the cheapest of the
    trials already drawn — so the report's [trials] is the count
    actually attempted and [fallback] marks a forest degraded all the
    way back to SOFDA's.  [None] on expiry only when the warm start
    itself produced nothing.  [?budget:None] is bit-identical to the
    unbudgeted call. *)

val solve_forest :
  ?cache:Sof_graph.Metric.Cache.t ->
  ?seed:int ->
  ?trials:int ->
  ?budget:Sof_util.Budget.t ->
  Problem.t ->
  Forest.t option
(** [solve] projected to the forest, for the CLI algorithm table. *)
