module Graph = Sof_graph.Graph

type update = { problem : Problem.t; forest : Forest.t }

let remake (p : Problem.t) ?dests ?chain_length () =
  Problem.make ~graph:p.Problem.graph ~node_cost:p.Problem.node_cost
    ~vms:p.Problem.vms ~sources:p.Problem.sources
    ~dests:(Option.value ~default:p.Problem.dests dests)
    ~chain_length:(Option.value ~default:p.Problem.chain_length chain_length)

(* Number of VNFs applied when leaving hop [i]. *)
let stage_at (w : Forest.walk) i =
  List.fold_left
    (fun acc (m : Forest.mark) -> if m.Forest.pos <= i then m.Forest.vnf else acc)
    0 w.Forest.marks

let walk_nodes (w : Forest.walk) = Array.to_list w.Forest.hops

let forest_nodes (f : Forest.t) =
  List.sort_uniq compare
    (List.concat_map walk_nodes f.Forest.walks
    @ List.concat_map (fun (a, b) -> [ a; b ]) f.Forest.delivery)

let enabled_map (f : Forest.t) =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (vm, vnf) -> Hashtbl.replace tbl vm vnf) (Forest.enabled_vms f);
  tbl

let path_edges path =
  let rec go acc = function
    | a :: (b :: _ as rest) -> go ((a, b) :: acc) rest
    | _ -> acc
  in
  go [] path

(* ------------------------------------------------------------------ *)

let destination_leave (f : Forest.t) v =
  let p = f.Forest.problem in
  if not (Problem.is_dest p v) then
    invalid_arg "Dynamic.destination_leave: not a destination";
  let dests = List.filter (fun d -> d <> v) p.Problem.dests in
  if dests = [] then
    invalid_arg "Dynamic.destination_leave: cannot remove the last destination";
  let problem = remake p ~dests () in
  (* Protect remaining destinations and every walk hop; prune the rest of
     the dangling delivery branch. *)
  let protected_tbl = Hashtbl.create 32 in
  List.iter (fun d -> Hashtbl.replace protected_tbl d ()) dests;
  List.iter
    (fun w -> List.iter (fun x -> Hashtbl.replace protected_tbl x ()) (walk_nodes w))
    f.Forest.walks;
  let weighted =
    List.map (fun (a, b) -> (a, b, 1.0)) f.Forest.delivery
  in
  let pruned =
    Sof_graph.Traversal.prune_steiner_leaves weighted
      ~keep:(Hashtbl.mem protected_tbl)
  in
  let delivery = List.map (fun (a, b, _) -> (a, b)) pruned in
  let forest = Forest.make problem ~walks:f.Forest.walks ~delivery in
  { problem; forest }

(* ------------------------------------------------------------------ *)

let destination_join ?cache (f : Forest.t) v =
  let p = f.Forest.problem in
  let l = p.Problem.chain_length in
  if Problem.is_dest p v then invalid_arg "Dynamic.destination_join: already a destination";
  let enabled = enabled_map f in
  let exclude vm = Hashtbl.mem enabled vm in
  let extra = forest_nodes f in
  let t = Transform.create ?cache ~extra p in
  (* Candidate attachment points: every walk hop with its stage; delivery
     nodes carry the complete stream (stage = |C|). *)
  let candidates = ref [] in
  List.iteri
    (fun wi w ->
      Array.iteri
        (fun i u -> candidates := (`Walk (wi, i), u, stage_at w i) :: !candidates)
        w.Forest.hops)
    f.Forest.walks;
  List.iter
    (fun (a, b) ->
      candidates := (`Delivery, a, l) :: (`Delivery, b, l) :: !candidates)
    f.Forest.delivery;
  let best = ref None in
  List.iter
    (fun (kind, u, s) ->
      let attempt =
        if s >= l then
          (* pure delivery graft: shortest path, no new VNFs *)
          Transform.relay_walk t ~src:u ~dst:v ~num_vnfs:0
        else Transform.relay_walk ~exclude t ~src:u ~dst:v ~num_vnfs:(l - s)
      in
      match attempt with
      | None -> ()
      | Some r -> (
          match !best with
          | Some (c, _, _, _, _) when c <= r.Transform.cost -> ()
          | _ -> best := Some (r.Transform.cost, kind, u, s, r)))
    !candidates;
  match !best with
  | None -> None
  | Some (_, kind, _u, s, relay) ->
      let problem = remake p ~dests:(v :: p.Problem.dests) () in
      let forest =
        match kind with
        | `Delivery ->
            let delivery =
              f.Forest.delivery
              @ path_edges (Array.to_list relay.Transform.hops)
            in
            Forest.make problem ~walks:f.Forest.walks ~delivery
        | `Walk (wi, i) when s >= l ->
            ignore wi;
            ignore i;
            let delivery =
              f.Forest.delivery
              @ path_edges (Array.to_list relay.Transform.hops)
            in
            Forest.make problem ~walks:f.Forest.walks ~delivery
        | `Walk (wi, i) ->
            let w = List.nth f.Forest.walks wi in
            let prefix = Array.sub w.Forest.hops 0 (i + 1) in
            let hops =
              Array.append prefix
                (Array.sub relay.Transform.hops 1
                   (Array.length relay.Transform.hops - 1))
            in
            let prefix_marks =
              List.filter (fun (m : Forest.mark) -> m.Forest.pos <= i) w.Forest.marks
            in
            let relay_marks =
              List.mapi
                (fun k (pos, _vm) -> { Forest.pos = pos + i; vnf = s + k + 1 })
                relay.Transform.vm_marks
            in
            let nw =
              {
                Forest.source = w.Forest.source;
                hops;
                marks = prefix_marks @ relay_marks;
              }
            in
            Forest.make problem ~walks:(f.Forest.walks @ [ nw ])
              ~delivery:f.Forest.delivery
      in
      Some { problem; forest }

(* Join a batch of destinations one at a time, sharing [cache] across the
   grafts so the underlying Dijkstra trees are computed once.  A
   destination that cannot be attached (or is already served) is skipped
   and reported rather than failing the batch — the streaming admission
   engine decides what to do with stragglers. *)
let destinations_join ?cache (f : Forest.t) dests =
  let join (upd, unserved) v =
    let p = upd.forest.Forest.problem in
    if Problem.is_dest p v then (upd, v :: unserved)
    else
      match destination_join ?cache upd.forest v with
      | Some upd' -> (upd', unserved)
      | None -> (upd, v :: unserved)
  in
  let upd, unserved =
    List.fold_left join ({ problem = f.Forest.problem; forest = f }, []) dests
  in
  (upd, List.rev unserved)

(* ------------------------------------------------------------------ *)

let vnf_delete (f : Forest.t) ~vnf =
  let p = f.Forest.problem in
  let l = p.Problem.chain_length in
  if vnf < 1 || vnf > l then invalid_arg "Dynamic.vnf_delete: bad index";
  if l = 1 then invalid_arg "Dynamic.vnf_delete: chain would become empty";
  let problem = remake p ~chain_length:(l - 1) () in
  let walks =
    List.map
      (fun (w : Forest.walk) ->
        let marks =
          List.filter_map
            (fun (m : Forest.mark) ->
              if m.Forest.vnf = vnf then None
              else if m.Forest.vnf > vnf then
                Some { m with Forest.vnf = m.Forest.vnf - 1 }
              else Some m)
            w.Forest.marks
        in
        { w with Forest.marks = marks })
      f.Forest.walks
  in
  (* Dropping a mark can expose a loop to removal whose hops were a
     destination's only injection point; shrink only when the shrunk
     forest still serves everyone.  The unshrunk walks always do: the
     last-mark position can only move earlier, widening the tail. *)
  let shrunk =
    Forest.make problem
      ~walks:(List.map Conflict.remove_loops walks)
      ~delivery:f.Forest.delivery
  in
  let forest =
    if Validate.check shrunk = Ok () then shrunk
    else Forest.make problem ~walks ~delivery:f.Forest.delivery
  in
  { problem; forest }

(* ------------------------------------------------------------------ *)

(* Replace the hop interval (from_pos .. to_pos) of [w] by
   path1 @ [via] @ path2 where path1 runs from hops.(from_pos) to [via] and
   path2 from [via] to hops.(to_pos); [vnf] is marked on [via].  Marks
   inside the replaced interval are dropped (callers arrange that none are
   needed); later marks shift. *)
let splice (w : Forest.walk) ~from_pos ~to_pos ~path1 ~path2 ~via ~vnf =
  let before = Array.sub w.Forest.hops 0 (from_pos + 1) in
  let p1 = Array.of_list (List.tl path1) in
  let p2 = Array.of_list (List.tl path2) in
  let after =
    Array.sub w.Forest.hops (to_pos + 1)
      (Array.length w.Forest.hops - to_pos - 1)
  in
  let hops = Array.concat [ before; p1; p2; after ] in
  let via_pos = from_pos + Array.length p1 in
  assert (hops.(via_pos) = via);
  let shift = Array.length p1 + Array.length p2 - (to_pos - from_pos) in
  let marks =
    List.filter_map
      (fun (m : Forest.mark) ->
        if m.Forest.pos <= from_pos then Some m
        else if m.Forest.pos < to_pos then None
        else Some { m with Forest.pos = m.Forest.pos + shift })
      w.Forest.marks
  in
  let marks =
    List.sort
      (fun (a : Forest.mark) b -> compare a.Forest.pos b.Forest.pos)
      ({ Forest.pos = via_pos; vnf } :: marks)
  in
  { w with Forest.hops = hops; marks }

(* A walk rewrite (splice, reroute) can orphan a destination that was
   served directly by a replaced hop of an injection tail.  Re-graft each
   orphan with a pure delivery path from the nearest point already
   carrying the fully processed stream; [None] when some orphan is
   unreachable or the rewrite left any other defect. *)
let check_forest ?fdag f =
  match fdag with
  | Some ctx -> Fdag.validity (Fdag.eval ctx f)
  | None -> Validate.check f

let regraft_unserved ?cache ?fdag (forest : Forest.t) =
  match check_forest ?fdag forest with
  | Ok () -> Some forest
  | Error errs -> (
      let orphans =
        List.filter_map
          (function Validate.Unserved_destination d -> Some d | _ -> None)
          errs
      in
      if orphans = [] || List.length orphans <> List.length errs then None
      else
        let p = forest.Forest.problem in
        let pts = Hashtbl.create 16 in
        List.iter
          (fun (w : Forest.walk) ->
            match List.rev w.Forest.marks with
            | [] -> ()
            | m :: _ ->
                for i = m.Forest.pos to Array.length w.Forest.hops - 1 do
                  Hashtbl.replace pts w.Forest.hops.(i) ()
                done)
          forest.Forest.walks;
        List.iter
          (fun (a, b) ->
            Hashtbl.replace pts a ();
            Hashtbl.replace pts b ())
          forest.Forest.delivery;
        let points = Hashtbl.fold (fun v () acc -> v :: acc) pts [] in
        let t = Transform.create ?cache ~extra:points p in
        let rec graft acc = function
          | [] -> Some acc
          | d :: rest -> (
              let best =
                List.fold_left
                  (fun acc sp ->
                    let c = Transform.distance t sp d in
                    match acc with
                    | Some (bc, _) when bc <= c -> acc
                    | _ -> if c < infinity then Some (c, sp) else acc)
                  None points
              in
              match best with
              | None -> None
              | Some (_, sp) ->
                  graft
                    (path_edges (Transform.shortest_path t sp d) @ acc)
                    rest)
        in
        match graft [] orphans with
        | None -> None
        | Some extra ->
            let f =
              Forest.make p ~walks:forest.Forest.walks
                ~delivery:(forest.Forest.delivery @ extra)
            in
            if check_forest ?fdag f = Ok () then Some f else None)

let vnf_insert ?cache ?fdag (f : Forest.t) ~at =
  let p = f.Forest.problem in
  let l = p.Problem.chain_length in
  if at < 1 || at > l + 1 then invalid_arg "Dynamic.vnf_insert: bad position";
  let problem = remake p ~chain_length:(l + 1) () in
  (* Renumber existing marks: old vnf >= at becomes vnf + 1. *)
  let renumber (w : Forest.walk) =
    {
      w with
      Forest.marks =
        List.map
          (fun (m : Forest.mark) ->
            if m.Forest.vnf >= at then { m with Forest.vnf = m.Forest.vnf + 1 }
            else m)
          w.Forest.marks;
    }
  in
  let walks = List.map renumber f.Forest.walks in
  let extra = forest_nodes f in
  let t = Transform.create ?cache ~extra p in
  let enabled = Hashtbl.create 16 in
  List.iter
    (fun (w : Forest.walk) ->
      List.iter
        (fun (m : Forest.mark) ->
          Hashtbl.replace enabled w.Forest.hops.(m.Forest.pos) m.Forest.vnf)
        w.Forest.marks)
    walks;
  let process (w : Forest.walk) =
    let prev_pos =
      List.fold_left
        (fun acc (m : Forest.mark) ->
          if m.Forest.vnf = at - 1 then m.Forest.pos else acc)
        0 w.Forest.marks
    in
    let next_pos =
      match
        List.find_opt (fun (m : Forest.mark) -> m.Forest.vnf = at + 1) w.Forest.marks
      with
      | Some m -> m.Forest.pos
      | None -> Array.length w.Forest.hops - 1
    in
    let prev_node = w.Forest.hops.(prev_pos)
    and next_node = w.Forest.hops.(next_pos) in
    let best = ref None in
    List.iter
      (fun vm ->
        let ok =
          match Hashtbl.find_opt enabled vm with
          | None -> vm <> prev_node && vm <> next_node
          | Some j -> j = at && vm <> prev_node && vm <> next_node
        in
        if ok then begin
          let c =
            Transform.distance t prev_node vm
            +. Problem.setup_cost p vm
            +. Transform.distance t vm next_node
          in
          match !best with
          | Some (bc, _) when bc <= c -> ()
          | _ -> if c < infinity then best := Some (c, vm)
        end)
      p.Problem.vms;
    match !best with
    | None -> None
    | Some (_, vm) ->
        let path1 = Transform.shortest_path t prev_node vm in
        let path2 = List.rev (Transform.shortest_path t next_node vm) in
        Hashtbl.replace enabled vm at;
        Some (splice w ~from_pos:prev_pos ~to_pos:next_pos ~path1 ~path2 ~via:vm ~vnf:at)
  in
  let rec map_all acc = function
    | [] -> Some (List.rev acc)
    | w :: rest -> (
        match process w with
        | None -> None
        | Some w' -> map_all (w' :: acc) rest)
  in
  match map_all [] walks with
  | None -> None
  | Some walks ->
      let forest = Forest.make problem ~walks ~delivery:f.Forest.delivery in
      Option.map (fun forest -> { problem; forest }) (regraft_unserved ?cache ?fdag forest)

(* ------------------------------------------------------------------ *)

let segment_uses_edge hops a b u v =
  let rec scan i =
    if i >= b then false
    else
      let x = hops.(i) and y = hops.(i + 1) in
      ((x = u && y = v) || (x = v && y = u)) || scan (i + 1)
  in
  scan a

let reroute_link ?cache ?fdag (f : Forest.t) ~u ~v =
  let p = f.Forest.problem in
  let extra = forest_nodes f in
  let t = Transform.create ?cache ~extra p in
  (* Anchors: hop 0, every mark position, last hop. *)
  let anchors (w : Forest.walk) =
    List.sort_uniq compare
      ((0 :: List.map (fun (m : Forest.mark) -> m.Forest.pos) w.Forest.marks)
      @ [ Array.length w.Forest.hops - 1 ])
  in
  let reroute_walk (w : Forest.walk) =
    let anchor_list = anchors w in
    let rec segments = function
      | a :: (b :: _ as rest) -> (a, b) :: segments rest
      | _ -> []
    in
    let pieces =
      List.map
        (fun (a, b) ->
          if segment_uses_edge w.Forest.hops a b u v then
            let src = w.Forest.hops.(a) and dst = w.Forest.hops.(b) in
            if Transform.distance t src dst = infinity then None
            else Some (a, b, Transform.shortest_path t src dst)
          else
            Some
              ( a,
                b,
                Array.to_list (Array.sub w.Forest.hops a (b - a + 1)) ))
        (segments anchor_list)
    in
    if List.exists (fun x -> x = None) pieces then None
    else begin
      (* reassemble: concatenate pieces, rebuild mark positions *)
      let mark_of_pos = Hashtbl.create 8 in
      List.iter
        (fun (m : Forest.mark) ->
          Hashtbl.replace mark_of_pos m.Forest.pos m.Forest.vnf)
        w.Forest.marks;
      let hops = ref [ w.Forest.hops.(0) ] in
      let marks = ref [] in
      (match Hashtbl.find_opt mark_of_pos 0 with
      | Some vnf -> marks := { Forest.pos = 0; vnf } :: !marks
      | None -> ());
      List.iter
        (fun piece ->
          match piece with
          | None -> ()
          | Some (_, b, path) ->
              List.iteri
                (fun k x ->
                  if k > 0 then begin
                    hops := x :: !hops;
                    let pos = List.length !hops - 1 in
                    if k = List.length path - 1 then
                      match Hashtbl.find_opt mark_of_pos b with
                      | Some vnf -> marks := { Forest.pos = pos; vnf } :: !marks
                      | None -> ()
                  end)
                path)
        pieces;
      Some
        {
          w with
          Forest.hops = Array.of_list (List.rev !hops);
          marks = List.rev !marks;
        }
    end
  in
  let rec map_all acc = function
    | [] -> Some (List.rev acc)
    | w :: rest -> (
        match reroute_walk w with
        | None -> None
        | Some w' -> map_all (w' :: acc) rest)
  in
  match map_all [] f.Forest.walks with
  | None -> None
  | Some walks -> (
      (* Delivery edge (u,v): replace by the current shortest path; the
         whole reroute fails when the cut link was a bridge. *)
      let rec redeliver acc = function
        | [] -> Some (List.rev acc)
        | (a, b) :: rest ->
            if (a = u && b = v) || (a = v && b = u) then
              if Transform.distance t a b = infinity then None
              else
                redeliver
                  (List.rev_append (path_edges (Transform.shortest_path t a b)) acc)
                  rest
            else redeliver ((a, b) :: acc) rest
      in
      match redeliver [] f.Forest.delivery with
      | None -> None
      | Some delivery ->
          let forest = Forest.make p ~walks ~delivery in
          Option.map
            (fun forest -> { problem = p; forest })
            (regraft_unserved ?cache ?fdag forest))

(* ------------------------------------------------------------------ *)

let relocate_vm ?cache ?fdag (f : Forest.t) ~vm =
  let p = f.Forest.problem in
  let enabled = enabled_map f in
  match Hashtbl.find_opt enabled vm with
  | None -> invalid_arg "Dynamic.relocate_vm: VM runs no VNF"
  | Some vnf ->
      let extra = forest_nodes f in
      let t = Transform.create ?cache ~extra p in
      let affected =
        List.filter
          (fun (w : Forest.walk) ->
            List.exists
              (fun (m : Forest.mark) ->
                m.Forest.vnf = vnf && w.Forest.hops.(m.Forest.pos) = vm)
              w.Forest.marks)
          f.Forest.walks
      in
      (* Anchor pair per affected walk: previous and next anchor around the
         vm's mark. *)
      let anchor_pairs =
        List.map
          (fun (w : Forest.walk) ->
            let pos =
              List.fold_left
                (fun acc (m : Forest.mark) ->
                  if m.Forest.vnf = vnf && w.Forest.hops.(m.Forest.pos) = vm
                  then m.Forest.pos
                  else acc)
                0 w.Forest.marks
            in
            let prev_pos =
              List.fold_left
                (fun acc (m : Forest.mark) ->
                  if m.Forest.pos < pos then m.Forest.pos else acc)
                0 w.Forest.marks
            in
            let next_pos =
              match
                List.find_opt
                  (fun (m : Forest.mark) -> m.Forest.pos > pos)
                  w.Forest.marks
              with
              | Some m -> m.Forest.pos
              | None -> Array.length w.Forest.hops - 1
            in
            (w, prev_pos, pos, next_pos))
          affected
      in
      let anchor_nodes =
        List.concat_map
          (fun (w, prev_pos, _, next_pos) ->
            [ w.Forest.hops.(prev_pos); w.Forest.hops.(next_pos) ])
          anchor_pairs
      in
      let candidates =
        List.filter
          (fun x ->
            x <> vm
            && (not (List.mem x anchor_nodes))
            &&
            match Hashtbl.find_opt enabled x with
            | None -> true
            | Some j -> j = vnf)
          p.Problem.vms
      in
      let score x =
        Problem.setup_cost p x
        +. List.fold_left
             (fun acc (w, prev_pos, _, next_pos) ->
               acc
               +. Transform.distance t w.Forest.hops.(prev_pos) x
               +. Transform.distance t x w.Forest.hops.(next_pos))
             0.0 anchor_pairs
      in
      let best =
        List.fold_left
          (fun acc x ->
            let c = score x in
            match acc with
            | Some (bc, _) when bc <= c -> acc
            | _ -> if c < infinity then Some (c, x) else acc)
          None candidates
      in
      (match best with
      | None -> None
      | Some (_, x) ->
          let walks =
            List.map
              (fun (w : Forest.walk) ->
                match
                  List.find_opt
                    (fun (ww, _, _, _) -> ww == w)
                    anchor_pairs
                with
                | None -> w
                | Some (_, prev_pos, pos, next_pos) ->
                    let path1 =
                      Transform.shortest_path t w.Forest.hops.(prev_pos) x
                    in
                    let path2 =
                      List.rev
                        (Transform.shortest_path t w.Forest.hops.(next_pos) x)
                    in
                    (* Strip the relocated mark first: when it sits on an
                       anchor (walk end or source), splice's keep-anchors
                       filter would preserve it next to the new one. *)
                    let w =
                      {
                        w with
                        Forest.marks =
                          List.filter
                            (fun (m : Forest.mark) -> m.Forest.pos <> pos)
                            w.Forest.marks;
                      }
                    in
                    splice w ~from_pos:prev_pos ~to_pos:next_pos ~path1 ~path2
                      ~via:x ~vnf)
              f.Forest.walks
          in
          let forest = Forest.make p ~walks ~delivery:f.Forest.delivery in
          Option.map
            (fun forest -> { problem = p; forest })
            (regraft_unserved ?cache ?fdag forest))
