(** Dynamic adjustments of a deployed service overlay forest (Section
    VII-C): destination join/leave, VNF insertion/deletion, and rerouting
    around congested links or overloaded VMs.

    Operations that re-solve shortest paths accept an optional
    {!Sof_graph.Metric.Cache.t} so Dijkstra runs are shared between the
    op's own grafting pass and its unserved-destination regraft (and with
    any surrounding repair pipeline).  Operations that validate their
    candidate (the regraft path) additionally accept an optional
    {!Fdag.t} evaluation context: a splice dirties only the touched
    walk nodes, so a shared context re-checks validity over the dirty
    region instead of re-traversing the whole forest ({!Fdag.eval} is
    bit-identical to {!Validate.check}).  Every operation returns a fresh {!Problem.t} (membership or chain
    changes alter the instance) together with a forest that remains valid
    for it; operations never touch walks that do not need to change, which
    is the paper's point — no full SOFDA re-run per membership event. *)

type update = {
  problem : Problem.t;
  forest : Forest.t;
}

val destination_leave : Forest.t -> int -> update
(** Remove a destination.  If it was a delivery-tree leaf, the dangling
    path up to the nearest branch/injection node is pruned (paper's rule 1).
    @raise Invalid_argument when the node is not a destination. *)

val destination_join :
  ?cache:Sof_graph.Metric.Cache.t -> Forest.t -> int -> update option
(** Attach a new destination at minimum incremental cost (paper's rule 2):
    either graft onto the delivery component through a shortest path (the
    stream there is fully processed), or branch a partial chain off a walk
    hop where only [f_1 .. f(u)] have been applied, installing the missing
    VNFs on fresh VMs along a k-stroll walk to the new destination.  [None]
    when no feasible attachment exists. *)

val destinations_join :
  ?cache:Sof_graph.Metric.Cache.t ->
  Forest.t ->
  int list ->
  update * int list
(** [destinations_join ?cache f dests] attaches the destinations one at a
    time with {!destination_join}, threading one [cache] through every
    graft so shortest-path trees are shared across the batch.  Returns
    the final update plus the destinations that could not be attached
    (no feasible attachment, or already a destination) in input order;
    the update covers whatever subset was joined — [([], update
    unchanged)] degenerates to the input forest.  This is the streaming
    admission engine's incremental embed rung. *)

val vnf_delete : Forest.t -> vnf:int -> update
(** Remove the [vnf]-th function from the chain (paper's rule 3): its VMs
    become pass-through hops, later VNFs renumber down, and VNF-free
    detours are shortcut.  @raise Invalid_argument on a bad index or when
    the chain has length 1. *)

val vnf_insert :
  ?cache:Sof_graph.Metric.Cache.t ->
  ?fdag:Fdag.t ->
  Forest.t ->
  at:int ->
  update option
(** Insert a new VNF so that it becomes the [at]-th function (paper's rule
    4).  For every walk the cheapest available VM between the [at-1]-th and
    the old [at]-th VM is spliced in (connection + setup cost minimized);
    walks may share the spliced VM.  [None] if some walk cannot host the
    new VNF. *)

val reroute_link :
  ?cache:Sof_graph.Metric.Cache.t ->
  ?fdag:Fdag.t ->
  Forest.t ->
  u:int ->
  v:int ->
  update option
(** Re-route every walk segment and delivery path that crosses link
    [(u,v)], using current edge costs (paper's rule 5 — call after raising
    the congested link's cost in the problem's graph).  [None] when some
    crossing segment admits no alternative route. *)

val relocate_vm :
  ?cache:Sof_graph.Metric.Cache.t ->
  ?fdag:Fdag.t ->
  Forest.t ->
  vm:int ->
  update option
(** Move the VNF running on an overloaded VM to the best available
    substitute and re-connect it to each walk's neighbouring VMs (paper's
    rule 6).  [None] when no substitute VM exists. *)
