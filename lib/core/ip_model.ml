module Graph = Sof_graph.Graph
module Simplex = Sof_lp.Simplex
module Ilp = Sof_lp.Ilp

type t = {
  ilp : Ilp.t;
  var_count : int;
  describe : int -> string;
}

(* Directed arcs: undirected edge index e yields arcs 2e (u->v) and 2e+1
   (v->u). *)
type arcs = {
  count : int;
  tail : int array;
  head : int array;
  cost : float array;
  out_of : int list array; (* arc ids leaving node *)
  into : int list array;
}

let arcs_of graph =
  let m = Graph.m graph in
  let n = Graph.n graph in
  let tail = Array.make (2 * m) 0 in
  let head = Array.make (2 * m) 0 in
  let cost = Array.make (2 * m) 0.0 in
  let out_of = Array.make n [] in
  let into = Array.make n [] in
  let i = ref 0 in
  Graph.iter_edges graph (fun u v w ->
      let a = 2 * !i and b = (2 * !i) + 1 in
      tail.(a) <- u;
      head.(a) <- v;
      cost.(a) <- w;
      tail.(b) <- v;
      head.(b) <- u;
      cost.(b) <- w;
      out_of.(u) <- a :: out_of.(u);
      into.(v) <- a :: into.(v);
      out_of.(v) <- b :: out_of.(v);
      into.(u) <- b :: into.(u);
      incr i);
  { count = 2 * m; tail; head; cost; out_of; into }

(* Shared variable layout + constraint rows of the IP formulation; the ILP
   solver and the LP relaxation (column generation + rounding) both build
   on it. *)
type model = {
  lp : Simplex.problem;
  mvar_count : int;
  mdescribe : int -> string;
  marcs : arcs;
  mdests : int array;
  msources : int array;
  mvms : int array;
  ml : int;
  mgamma0 : int -> int -> int;        (* dest idx, source idx *)
  mgammaf : int -> int -> int -> int; (* dest idx, vnf (1-based), vm idx *)
  msigma : int -> int -> int;         (* vnf (1-based), vm idx *)
  mpi : int -> int -> int -> int;     (* dest idx, layer (0..l), arc id *)
  mtau : int -> int -> int;           (* layer (0..l), arc id *)
  mtau_vars : int list;
}

let model_of (p : Problem.t) =
  let graph = p.Problem.graph in
  let arcs = arcs_of graph in
  let dests = Array.of_list p.Problem.dests in
  let sources = Array.of_list p.Problem.sources in
  let vms = Array.of_list p.Problem.vms in
  let nd = Array.length dests
  and ns = Array.length sources
  and nm = Array.length vms in
  let l = p.Problem.chain_length in
  let src_idx = Hashtbl.create ns and vm_idx = Hashtbl.create nm in
  Array.iteri (fun i s -> Hashtbl.replace src_idx s i) sources;
  Array.iteri (fun i v -> Hashtbl.replace vm_idx v i) vms;
  (* variable layout *)
  let gamma0_off = 0 in
  let gamma0 d si = gamma0_off + (d * ns) + si in
  let gammaf_off = gamma0_off + (nd * ns) in
  let gammaf d f mi = gammaf_off + (((d * l) + (f - 1)) * nm) + mi in
  let sigma_off = gammaf_off + (nd * l * nm) in
  let sigma f mi = sigma_off + ((f - 1) * nm) + mi in
  let pi_off = sigma_off + (l * nm) in
  let pi d f a = pi_off + (((d * (l + 1)) + f) * arcs.count) + a in
  let tau_off = pi_off + (nd * (l + 1) * arcs.count) in
  let tau f a = tau_off + (f * arcs.count) + a in
  let var_count = tau_off + ((l + 1) * arcs.count) in
  (* gamma coefficient of node u in layer f for destination d, as an
     optional variable id (constants handled by the caller). *)
  let gamma_var d f u =
    if f = 0 then Option.map (gamma0 d) (Hashtbl.find_opt src_idx u)
    else if f >= 1 && f <= l then
      Option.map (gammaf d f) (Hashtbl.find_opt vm_idx u)
    else None
  in
  let objective = Array.make var_count 0.0 in
  for f = 1 to l do
    Array.iteri
      (fun mi vm -> objective.(sigma f mi) <- p.Problem.node_cost.(vm))
      vms
  done;
  for f = 0 to l do
    for a = 0 to arcs.count - 1 do
      objective.(tau f a) <- arcs.cost.(a)
    done
  done;
  let rows = ref [] and rels = ref [] and rhs = ref [] in
  let add_row coeffs rel b =
    rows := coeffs :: !rows;
    rels := rel :: !rels;
    rhs := b :: !rhs
  in
  (* (1) each destination picks exactly one source *)
  for d = 0 to nd - 1 do
    add_row (List.init ns (fun si -> (gamma0 d si, 1.0))) Simplex.Eq 1.0
  done;
  (* (2) one enabled VM per VNF per destination *)
  for d = 0 to nd - 1 do
    for f = 1 to l do
      add_row (List.init nm (fun mi -> (gammaf d f mi, 1.0))) Simplex.Eq 1.0
    done
  done;
  (* (5) gamma <= sigma *)
  for d = 0 to nd - 1 do
    for f = 1 to l do
      for mi = 0 to nm - 1 do
        add_row [ (gammaf d f mi, 1.0); (sigma f mi, -1.0) ] Simplex.Le 0.0
      done
    done
  done;
  (* (6) at most one VNF per VM *)
  for mi = 0 to nm - 1 do
    add_row (List.init l (fun f -> (sigma (f + 1) mi, 1.0))) Simplex.Le 1.0
  done;
  (* (7) walk routing per destination and layer *)
  for d = 0 to nd - 1 do
    for f = 0 to l do
      for u = 0 to Graph.n graph - 1 do
        let coeffs = ref [] in
        List.iter (fun a -> coeffs := (pi d f a, 1.0) :: !coeffs) arcs.out_of.(u);
        List.iter (fun a -> coeffs := (pi d f a, -1.0) :: !coeffs) arcs.into.(u);
        (match gamma_var d f u with
        | Some v -> coeffs := (v, -1.0) :: !coeffs
        | None -> ());
        let const_next = if f = l && u = dests.(d) then 1.0 else 0.0 in
        (match gamma_var d (f + 1) u with
        | Some v -> coeffs := (v, 1.0) :: !coeffs
        | None -> ());
        (* Sum pi_out - pi_in - gamma_f + gamma_fN >= -const(gamma_fN) *)
        if !coeffs <> [] then add_row !coeffs Simplex.Ge (-.const_next)
      done
    done
  done;
  (* (8) pi <= tau *)
  for d = 0 to nd - 1 do
    for f = 0 to l do
      for a = 0 to arcs.count - 1 do
        add_row [ (pi d f a, 1.0); (tau f a, -1.0) ] Simplex.Le 0.0
      done
    done
  done;
  let lp =
    {
      Simplex.n_vars = var_count;
      objective;
      rows = Array.of_list (List.rev !rows);
      relations = Array.of_list (List.rev !rels);
      rhs = Array.of_list (List.rev !rhs);
    }
  in
  let describe v =
    if v < gammaf_off then
      Printf.sprintf "gamma[d%d][fS][s%d]" (v / ns) (v mod ns)
    else if v < sigma_off then begin
      let r = v - gammaf_off in
      let d = r / (l * nm) in
      let f = (r mod (l * nm)) / nm in
      Printf.sprintf "gamma[d%d][f%d][m%d]" d (f + 1) (r mod nm)
    end
    else if v < pi_off then begin
      let r = v - sigma_off in
      Printf.sprintf "sigma[f%d][m%d]" ((r / nm) + 1) (r mod nm)
    end
    else if v < tau_off then begin
      let r = v - pi_off in
      let d = r / ((l + 1) * arcs.count) in
      let rest = r mod ((l + 1) * arcs.count) in
      Printf.sprintf "pi[d%d][f%d][a%d]" d (rest / arcs.count)
        (rest mod arcs.count)
    end
    else begin
      let r = v - tau_off in
      Printf.sprintf "tau[f%d][a%d]" (r / arcs.count) (r mod arcs.count)
    end
  in
  (* Only the tau variables need explicit x <= 1 rows: gamma is capped by
     its assignment equalities, sigma by constraint (6), and pi by (8)
     through tau. *)
  let tau_vars = List.init ((l + 1) * arcs.count) (fun i -> tau_off + i) in
  {
    lp;
    mvar_count = var_count;
    mdescribe = describe;
    marcs = arcs;
    mdests = dests;
    msources = sources;
    mvms = vms;
    ml = l;
    mgamma0 = gamma0;
    mgammaf = gammaf;
    msigma = sigma;
    mpi = pi;
    mtau = tau;
    mtau_vars = tau_vars;
  }

let build (p : Problem.t) =
  let m = model_of p in
  {
    ilp =
      Ilp.make ~ub_binaries:m.mtau_vars
        ~binaries:(List.init m.mvar_count Fun.id)
        m.lp;
    var_count = m.mvar_count;
    describe = m.mdescribe;
  }

type relaxation = {
  rlp : Simplex.problem;
  rvar_count : int;
  rdescribe : int -> string;
  rdests : int array;
  rsources : int array;
  rvms : int array;
  rchain : int;
  rgamma0 : int -> int -> int;
  rgammaf : int -> int -> int -> int;
  rsigma : int -> int -> int;
  rpi : int -> int -> int -> int;
  rtau : int -> int -> int;
  rarc : int -> int -> int option;
}

let relaxation (p : Problem.t) =
  let m = model_of p in
  (* The LP relaxation keeps the tau <= 1 rows: they are what caps every
     flow variable at 1 (through constraint (8)), which both tightens the
     bound and licenses the var_upper = 1 Lagrangian fallback in
     {!Sof_lp.Col_gen}. *)
  let ub_rows = List.map (fun j -> [ (j, 1.0) ]) m.mtau_vars in
  let n_ub = List.length ub_rows in
  let lp =
    {
      m.lp with
      Simplex.rows = Array.append m.lp.Simplex.rows (Array.of_list ub_rows);
      relations =
        Array.append m.lp.Simplex.relations (Array.make n_ub Simplex.Le);
      rhs = Array.append m.lp.Simplex.rhs (Array.make n_ub 1.0);
    }
  in
  let arc_tbl = Hashtbl.create (2 * m.marcs.count) in
  for a = 0 to m.marcs.count - 1 do
    Hashtbl.replace arc_tbl (m.marcs.tail.(a), m.marcs.head.(a)) a
  done;
  {
    rlp = lp;
    rvar_count = m.mvar_count;
    rdescribe = m.mdescribe;
    rdests = m.mdests;
    rsources = m.msources;
    rvms = m.mvms;
    rchain = m.ml;
    rgamma0 = m.mgamma0;
    rgammaf = m.mgammaf;
    rsigma = m.msigma;
    rpi = m.mpi;
    rtau = m.mtau;
    rarc = (fun u v -> Hashtbl.find_opt arc_tbl (u, v));
  }

let solve ?node_limit ?time_budget ?initial_incumbent p =
  let model = build p in
  Ilp.solve ?node_limit ?time_budget ?initial_incumbent model.ilp

let objective_of_forest (forest : Forest.t) =
  let p = forest.Forest.problem in
  let seen = Hashtbl.create 64 in
  let cost = ref (Forest.setup_cost forest) in
  let pay u v layer =
    let key = ((min u v, max u v), layer) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      cost := !cost +. Problem.edge_cost p u v
    end
  in
  List.iter
    (fun (w : Forest.walk) ->
      let stage = ref 0 in
      let marks = ref w.Forest.marks in
      for i = 0 to Array.length w.Forest.hops - 2 do
        (match !marks with
        | m :: rest when m.Forest.pos <= i ->
            stage := m.Forest.vnf;
            marks := rest
        | _ -> ());
        pay w.Forest.hops.(i) w.Forest.hops.(i + 1) !stage
      done)
    forest.Forest.walks;
  List.iter (fun (u, v) -> pay u v p.Problem.chain_length) forest.Forest.delivery;
  !cost
