module Metric = Sof_graph.Metric
module Kstroll = Sof_kstroll.Kstroll

type t = {
  problem : Problem.t;
  closure : Metric.t;
  idx : (int, int) Hashtbl.t; (* node -> terminal index *)
}

type result = {
  hops : int array;
  vm_marks : (int * int) list;
  cost : float;
}

let create ?cache ?(extra = []) problem =
  let terminals =
    List.sort_uniq Int.compare
      (problem.Problem.sources @ problem.Problem.vms @ problem.Problem.dests
      @ extra)
  in
  let terms = Array.of_list terminals in
  let closure = Metric.closure ?cache problem.Problem.graph terms in
  let idx = Hashtbl.create (Array.length terms) in
  Array.iteri (fun i v -> Hashtbl.replace idx v i) terms;
  { problem; closure; idx }

let problem t = t.problem

let closure t = t.closure

let terminal_idx t v =
  match Hashtbl.find_opt t.idx v with
  | Some i -> i
  | None ->
      invalid_arg (Printf.sprintf "Transform: node %d is not a terminal" v)

let distance t a b =
  match (Hashtbl.find_opt t.idx a, Hashtbl.find_opt t.idx b) with
  | Some i, Some j -> Metric.distance t.closure i j
  | Some i, None -> Metric.distance_to_node t.closure i b
  | None, Some j -> Metric.distance_to_node t.closure j a
  | None, None -> invalid_arg "Transform.distance: neither node is a terminal"

let shortest_path t a b =
  match (Hashtbl.find_opt t.idx a, Hashtbl.find_opt t.idx b) with
  | Some i, Some j -> Metric.path t.closure i j
  | Some i, None -> Metric.path_to_node t.closure i b
  | None, Some j -> List.rev (Metric.path_to_node t.closure j a)
  | None, None ->
      invalid_arg "Transform.shortest_path: neither node is a terminal"

(* Expand a terminal sequence into a concrete walk, recording the hop
   position of every terminal.  [None] when some consecutive pair has no
   connecting path: an empty inter-terminal path must fail the expansion
   rather than silently alias the unreached terminal onto the previous
   hop, which would corrupt the walk's vm_marks.  (A same-node pair
   [a = b] yields the one-node path [a], which correctly reuses the
   previous hop's position.) *)
let expand t seq =
  match seq with
  | [] -> invalid_arg "Transform.expand: empty sequence"
  | first :: _ ->
      let hops = ref [ first ] in
      let len = ref 1 in
      let positions = ref [ (first, 0) ] in
      let rec go = function
        | a :: (b :: _ as rest) -> (
            match shortest_path t a b with
            | [] -> false
            | _ :: tail ->
                List.iter
                  (fun v ->
                    hops := v :: !hops;
                    incr len)
                  tail;
                positions := (b, !len - 1) :: !positions;
                go rest)
        | _ -> true
      in
      if go seq then
        Some (Array.of_list (List.rev !hops), List.rev !positions)
      else None

let setup_cost t v = Problem.setup_cost t.problem v

(* Shared edge-cost construction for the k-stroll instance: shortest-path
   distance plus half the "shareable" node cost of each endpoint, where the
   two fixed endpoints both carry the last VM's setup (plus the source's own
   setup in the Appendix-D variant) so that any (src .. last) walk's metric
   cost equals connection + setup exactly. *)
let stroll_dist t ~src ~dst ~endpoint_weight a b =
  let g x = if x = src || x = dst then endpoint_weight else setup_cost t x in
  distance t a b +. ((g a +. g b) /. 2.0)

let build ?(exclude = fun _ -> false) t ~src ~dst ~k ~endpoint_weight
    ~vm_filter ~extra_cost =
  let candidates =
    List.filter
      (fun v -> (not (exclude v)) && v <> src && v <> dst)
      t.problem.Problem.vms
  in
  let dist = stroll_dist t ~src ~dst ~endpoint_weight in
  match Kstroll.cheapest_insertion ~dist ~candidates ~src ~dst ~k with
  | None -> None
  | Some w -> (
      match expand t w.Kstroll.nodes with
      | None -> None
      | Some (hops, positions) ->
      let vms = List.filter (fun (v, _) -> vm_filter v) positions in
      let vm_marks = List.map (fun (v, pos) -> (pos, v)) vms in
      let setup =
        List.fold_left (fun acc (_, v) -> acc +. setup_cost t v) 0.0 vm_marks
      in
      let connection =
        List.fold_left
          (fun (acc, prev) v ->
            match prev with
            | None -> (acc, Some v)
            | Some p -> (acc +. distance t p v, Some v))
          (0.0, None) w.Kstroll.nodes
        |> fst
      in
      Some { hops; vm_marks; cost = setup +. connection +. extra_cost })

let chain_walk ?(source_setup = false) ?exclude t ~src ~last_vm ~num_vnfs =
  if num_vnfs < 1 then invalid_arg "Transform.chain_walk: num_vnfs < 1";
  if not (Problem.is_vm t.problem last_vm) then
    invalid_arg "Transform.chain_walk: last_vm is not a VM";
  ignore (terminal_idx t src);
  if src = last_vm then None
  else
    let extra_cost = if source_setup then setup_cost t src else 0.0 in
    let endpoint_weight = setup_cost t last_vm +. extra_cost in
    let vm_filter v = v <> src in
    build ?exclude t ~src ~dst:last_vm ~k:(num_vnfs + 1) ~endpoint_weight
      ~vm_filter ~extra_cost

let relay_walk ?exclude t ~src ~dst ~num_vnfs =
  if num_vnfs < 0 then invalid_arg "Transform.relay_walk: num_vnfs < 0";
  ignore (terminal_idx t src);
  if num_vnfs = 0 then begin
    if src = dst then Some { hops = [| src |]; vm_marks = []; cost = 0.0 }
    else
      let d = distance t src dst in
      if d = infinity then None
      else
        let hops = Array.of_list (shortest_path t src dst) in
        Some { hops; vm_marks = []; cost = d }
  end
  else if src = dst then None
  else
    let vm_filter v = v <> src && v <> dst in
    build ?exclude t ~src ~dst ~k:(num_vnfs + 2) ~endpoint_weight:0.0
      ~vm_filter ~extra_cost:0.0
