(** Graph transformation and service-chain walks (Procedures 1 and 2).

    [create] precomputes the metric closure of the instance over
    [S ∪ M ∪ extra].  [chain_walk] then realizes the paper's Procedure 1 + 2
    pair: it builds the k-stroll metric instance for a (source, last-VM)
    pair — shortest-path distances plus the node-setup costs split onto
    incident edges — finds a walk visiting the required number of distinct
    VMs, and expands it back to a concrete walk in [G].

    The returned cost equals the sum of the walk's shortest-path connection
    costs and the setup costs of its VMs, exactly the weight SOFDA puts on
    the corresponding virtual edge. *)

type t

type result = {
  hops : int array;             (** concrete node sequence in G *)
  vm_marks : (int * int) list;  (** (position in [hops], vm) for each VNF in chain order *)
  cost : float;                 (** connection + setup cost of the walk *)
}

val create :
  ?cache:Sof_graph.Metric.Cache.t -> ?extra:int list -> Problem.t -> t
(** Closure over [S ∪ M ∪ D ∪ extra].  One Dijkstra per terminal. *)

val problem : t -> Problem.t

val closure : t -> Sof_graph.Metric.t
(** The underlying metric closure (terminals: sources, VMs, destinations
    and [extra]); lets callers build Steiner trees over subsets without
    fresh Dijkstra sweeps ({!Sof_steiner.Steiner.approx_in}). *)

val distance : t -> int -> int -> float
(** Shortest-path distance between a closure terminal and any node. *)

val shortest_path : t -> int -> int -> int list
(** Shortest path from a terminal to any node.  @raise Invalid_argument on
    disconnected pairs. *)

val chain_walk :
  ?source_setup:bool ->
  ?exclude:(int -> bool) ->
  t ->
  src:int ->
  last_vm:int ->
  num_vnfs:int ->
  result option
(** Walk from [src] to [last_vm] visiting [num_vnfs] distinct VMs (the last
    of which is [last_vm]) and installing one VNF on each, built with the
    cheapest-insertion k-stroll ([k = num_vnfs + 1]).  [exclude] removes VM
    candidates (used by the dynamic operations); [last_vm] itself is never
    excluded.  [source_setup] prices the Appendix-D variant where enabling
    the source costs [c(src)].  [None] when infeasible.  @raise
    Invalid_argument if [src] is not a closure terminal, [last_vm] not a VM,
    or [num_vnfs < 1]. *)

val relay_walk :
  ?exclude:(int -> bool) ->
  t ->
  src:int ->
  dst:int ->
  num_vnfs:int ->
  result option
(** Walk from [src] to [dst] that visits [num_vnfs] fresh interior VMs and
    installs one VNF on each; neither endpoint runs a VNF ([num_vnfs = 0]
    degenerates to the shortest path).  Used by destination-join and
    VNF-insertion (Section VII-C). *)
