(* Cooperative cancellation token for deadline-budgeted solves.

   A budget is an absolute deadline on the {!Timer.now_ns} clock plus an
   atomic cancel flag.  Solvers poll [expired] at stage boundaries (a
   check is two atomic reads and a clock read, ~100ns) and wind down to
   their documented partial/abandoned result — never an exception, never
   a half-written workspace.  The flag is [Atomic] so a coordinating
   domain can cancel a solve running on pool workers. *)

type t = { deadline_ns : int option; cancelled : bool Atomic.t }

let create ?deadline_ns () = { deadline_ns; cancelled = Atomic.make false }

let after_ms ms =
  let ms = Float.max 0.0 ms in
  create ~deadline_ns:(Timer.now_ns () + int_of_float (ms *. 1e6)) ()

let cancel t = Atomic.set t.cancelled true

let cancelled t = Atomic.get t.cancelled

let deadline_ns t = t.deadline_ns

let expired t =
  Atomic.get t.cancelled
  ||
  match t.deadline_ns with
  | None -> false
  | Some d -> Timer.now_ns () >= d

let remaining_ns t =
  if Atomic.get t.cancelled then 0
  else
    match t.deadline_ns with
    | None -> max_int
    | Some d -> max 0 (d - Timer.now_ns ())

(* The polling convention every budgeted solver uses: an absent budget
   never expires, so [?budget:None] call paths stay bit-identical to the
   unbudgeted code. *)
let check = function None -> false | Some b -> expired b
