(* Fixed worker pool over OCaml 5 domains.

   The pool exists to parallelize the solver's independent fan-outs
   (per-terminal Dijkstra sweeps, per-candidate chain walks, per-source
   scans, per-seed benchmark instances) while keeping results bit-identical
   to the sequential path: work is split into contiguous index chunks,
   every result is written into its own slot of a preallocated array, and
   all reductions happen on the coordinating domain in fixed index order.

   Worker domains are spawned once (lazily) and then pull work items from a
   shared queue; a parallel call enqueues one self-scheduling task per
   helper, participates in the chunk loop itself, and blocks until every
   chunk has completed.  Nested parallel calls — a parallelized routine
   invoked from inside a worker or from inside a chunk — run sequentially,
   so exactly one level of fan-out is ever active. *)

type pool = {
  mutable workers : unit Domain.t array;
  queue : (int * (unit -> unit)) Queue.t; (* (enqueue ns, task) *)
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

(* --- instrumentation probe -------------------------------------------- *)

(* The pool sits below the observability library in the dependency order,
   so it cannot record metrics itself; instead [Sof_obs] installs a probe.
   Probe calls happen outside the queue lock and must never raise — a
   misbehaving probe would poison the worker loop. *)
type probe = {
  on_region : chunks:int -> helpers:int -> unit;
      (** a parallel region was launched *)
  on_chunk : worker:int -> unit;
      (** worker [worker] (0 = coordinator) executed one chunk *)
  on_dequeue : worker:int -> wait_ns:int -> unit;
      (** a queued task waited [wait_ns] before worker [worker] took it *)
}

let probe : probe option Atomic.t = Atomic.make None

let set_probe p = Atomic.set probe p

(* Which worker this domain is: 0 for the coordinator, 1.. for pool
   workers.  Also reused by the probe callbacks for per-worker counts. *)
let worker_id : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

(* True on worker domains, and on the coordinator while it is executing
   chunks of a parallel region: either way, a parallel_* call entered in
   that state must degrade to the sequential path. *)
let in_parallel_region : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let worker_loop pool wid () =
  Domain.DLS.set in_parallel_region true;
  Domain.DLS.set worker_id wid;
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.closed do
      Condition.wait pool.nonempty pool.mutex
    done;
    if Queue.is_empty pool.queue then Mutex.unlock pool.mutex
    else begin
      let enqueued_ns, task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      (match Atomic.get probe with
      | Some p ->
          p.on_dequeue ~worker:wid ~wait_ns:(Timer.now_ns () - enqueued_ns)
      | None -> ());
      task ();
      loop ()
    end
  in
  loop ()

let spawn_pool n_workers =
  let pool =
    {
      workers = [||];
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
    }
  in
  pool.workers <-
    Array.init n_workers (fun i -> Domain.spawn (worker_loop pool (i + 1)));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.closed <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join pool.workers

(* --- global pool management (coordinator domain only) ----------------- *)

let env_size () =
  match Sys.getenv_opt "SOF_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let default_size () =
  match env_size () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count () - 1)

let requested : int option ref = ref None
let current : pool option ref = ref None
let current_size = ref 1

let size () =
  match !requested with Some n -> n | None -> default_size ()

let set_size n = requested := Some (max 1 n)

let () =
  at_exit (fun () ->
      match !current with
      | Some p ->
          current := None;
          shutdown p
      | None -> ())

(* The pool sized for parallelism degree [p] (coordinator + p-1 workers),
   recreating it when the requested degree changed since the last call. *)
let obtain p =
  match !current with
  | Some pool when !current_size = p -> pool
  | maybe ->
      Option.iter shutdown maybe;
      let pool = spawn_pool (p - 1) in
      current := Some pool;
      current_size := p;
      pool

(* --- parallel region driver ------------------------------------------ *)

(* Run [nchunks] invocations of [runchunk] across the pool plus the calling
   domain.  Chunks are claimed with an atomic counter (dynamic load
   balancing); completion is tracked with a second counter so the caller
   can block until the last straggler finishes.  The first exception is
   captured together with its backtrace and re-raised on the coordinator
   once the region drains — later chunks are skipped, every queued task
   still runs to completion, so the pool stays usable afterwards. *)
let run_region pool ~helpers ~nchunks runchunk =
  let next = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let error : (exn * Printexc.raw_backtrace) option Atomic.t =
    Atomic.make None
  in
  let fin_mutex = Mutex.create () in
  let fin_cond = Condition.create () in
  (match Atomic.get probe with
  | Some p -> p.on_region ~chunks:nchunks ~helpers
  | None -> ());
  let work () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < nchunks then begin
        (if Atomic.get error = None then
           try runchunk i
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             ignore (Atomic.compare_and_set error None (Some (e, bt))));
        (match Atomic.get probe with
        | Some p -> p.on_chunk ~worker:(Domain.DLS.get worker_id)
        | None -> ());
        let done_ = 1 + Atomic.fetch_and_add completed 1 in
        if done_ = nchunks then begin
          Mutex.lock fin_mutex;
          Condition.broadcast fin_cond;
          Mutex.unlock fin_mutex
        end;
        go ()
      end
    in
    go ()
  in
  let enqueued_ns = Timer.now_ns () in
  Mutex.lock pool.mutex;
  for _ = 1 to helpers do
    Queue.push (enqueued_ns, work) pool.queue
  done;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  Domain.DLS.set in_parallel_region true;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set in_parallel_region false)
    work;
  Mutex.lock fin_mutex;
  while Atomic.get completed < nchunks do
    Condition.wait fin_cond fin_mutex
  done;
  Mutex.unlock fin_mutex;
  match Atomic.get error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let parallel_mapi f a =
  let n = Array.length a in
  if n = 0 then [||]
  else
    let p = size () in
    if p <= 1 || n = 1 || Domain.DLS.get in_parallel_region then
      Array.mapi f a
    else begin
      let pool = obtain p in
      let out = Array.make n None in
      (* ~4 chunks per domain: coarse enough to amortize scheduling, fine
         enough that a slow chunk doesn't serialize the tail. *)
      let chunk = max 1 ((n + (4 * p) - 1) / (4 * p)) in
      let nchunks = (n + chunk - 1) / chunk in
      run_region pool
        ~helpers:(min (p - 1) (nchunks - 1))
        ~nchunks
        (fun ci ->
          let lo = ci * chunk in
          let hi = min n (lo + chunk) - 1 in
          for j = lo to hi do
            out.(j) <- Some (f j a.(j))
          done);
      Array.map
        (function Some v -> v | None -> assert false (* every chunk ran *))
        out
    end

let parallel_map f a = parallel_mapi (fun _ x -> f x) a

let parallel_reduce ~combine ~init f a =
  Array.fold_left combine init (parallel_map f a)
