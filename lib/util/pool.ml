(* Fixed worker pool over OCaml 5 domains.

   The pool exists to parallelize the solver's independent fan-outs
   (per-terminal Dijkstra sweeps, per-candidate chain walks, per-source
   scans, per-seed benchmark instances) while keeping results bit-identical
   to the sequential path: work is split into contiguous index chunks,
   every result is written into its own slot of a preallocated array, and
   all reductions happen on the coordinating domain in fixed index order.

   Worker domains are spawned once (lazily) and then pull work items from a
   shared queue; a parallel call enqueues one self-scheduling task per
   helper, participates in the chunk loop itself, and blocks until every
   chunk has completed.  Nested parallel calls — a parallelized routine
   invoked from inside a worker or from inside a chunk — run sequentially,
   so exactly one level of fan-out is ever active. *)

type pool = {
  mutable workers : unit Domain.t array;
  queue : (int * (unit -> unit)) Queue.t; (* (enqueue ns, task) *)
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

(* --- instrumentation probe -------------------------------------------- *)

(* The pool sits below the observability library in the dependency order,
   so it cannot record metrics itself; instead [Sof_obs] installs a probe.
   Probe calls happen outside the queue lock and must never raise — a
   misbehaving probe would poison the worker loop. *)
type probe = {
  on_region : chunks:int -> helpers:int -> unit;
      (** a parallel region was launched *)
  on_chunk : worker:int -> unit;
      (** worker [worker] (0 = coordinator) executed one chunk *)
  on_dequeue : worker:int -> wait_ns:int -> unit;
      (** a queued task waited [wait_ns] before worker [worker] took it *)
}

let probe : probe option Atomic.t = Atomic.make None

let set_probe p = Atomic.set probe p

(* Which worker this domain is: 0 for the coordinator, 1.. for pool
   workers.  Also reused by the probe callbacks for per-worker counts. *)
let worker_id : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

(* True on worker domains, and on the coordinator while it is executing
   chunks of a parallel region: either way, a parallel_* call entered in
   that state must degrade to the sequential path. *)
let in_parallel_region : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let worker_loop pool wid () =
  Domain.DLS.set in_parallel_region true;
  Domain.DLS.set worker_id wid;
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.closed do
      Condition.wait pool.nonempty pool.mutex
    done;
    if Queue.is_empty pool.queue then Mutex.unlock pool.mutex
    else begin
      let enqueued_ns, task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      (match Atomic.get probe with
      | Some p ->
          p.on_dequeue ~worker:wid ~wait_ns:(Timer.now_ns () - enqueued_ns)
      | None -> ());
      task ();
      loop ()
    end
  in
  loop ()

let spawn_pool n_workers =
  let pool =
    {
      workers = [||];
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
    }
  in
  pool.workers <-
    Array.init n_workers (fun i -> Domain.spawn (worker_loop pool (i + 1)));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.closed <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join pool.workers

(* --- global pool management (coordinator domain only) ----------------- *)

let env_size () =
  match Sys.getenv_opt "SOF_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let default_size () =
  match env_size () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count () - 1)

let requested : int option ref = ref None
let current : pool option ref = ref None
let current_size = ref 1

(* Shard queues pin the pool for their whole lifetime (their pump tasks
   live in the pool's queue), so the degree must not change while any are
   live — see [set_size]. *)
let live_shard_queues_ = ref 0

let live_shard_queues () = !live_shard_queues_

let size () =
  match !requested with Some n -> n | None -> default_size ()

let set_size n =
  if !live_shard_queues_ > 0 then
    invalid_arg
      (Printf.sprintf
         "Pool.set_size: cannot change the parallelism degree while %d shard \
          queue(s) are live — drain and close them first"
         !live_shard_queues_);
  requested := Some (max 1 n)

let () =
  at_exit (fun () ->
      match !current with
      | Some p ->
          current := None;
          shutdown p
      | None -> ())

(* The pool sized for parallelism degree [p] (coordinator + p-1 workers),
   recreating it when the requested degree changed since the last call. *)
let obtain p =
  match !current with
  | Some pool when !current_size = p -> pool
  | maybe ->
      Option.iter shutdown maybe;
      let pool = spawn_pool (p - 1) in
      current := Some pool;
      current_size := p;
      pool

(* --- parallel region driver ------------------------------------------ *)

(* Run [nchunks] invocations of [runchunk] across the pool plus the calling
   domain.  Chunks are claimed with an atomic counter (dynamic load
   balancing); completion is tracked with a second counter so the caller
   can block until the last straggler finishes.  The first exception is
   captured together with its backtrace and re-raised on the coordinator
   once the region drains — later chunks are skipped, every queued task
   still runs to completion, so the pool stays usable afterwards. *)
let run_region pool ~helpers ~nchunks runchunk =
  let next = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let error : (exn * Printexc.raw_backtrace) option Atomic.t =
    Atomic.make None
  in
  let fin_mutex = Mutex.create () in
  let fin_cond = Condition.create () in
  (match Atomic.get probe with
  | Some p -> p.on_region ~chunks:nchunks ~helpers
  | None -> ());
  let work () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < nchunks then begin
        (if Atomic.get error = None then
           try runchunk i
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             ignore (Atomic.compare_and_set error None (Some (e, bt))));
        (match Atomic.get probe with
        | Some p -> p.on_chunk ~worker:(Domain.DLS.get worker_id)
        | None -> ());
        let done_ = 1 + Atomic.fetch_and_add completed 1 in
        if done_ = nchunks then begin
          Mutex.lock fin_mutex;
          Condition.broadcast fin_cond;
          Mutex.unlock fin_mutex
        end;
        go ()
      end
    in
    go ()
  in
  let enqueued_ns = Timer.now_ns () in
  Mutex.lock pool.mutex;
  for _ = 1 to helpers do
    Queue.push (enqueued_ns, work) pool.queue
  done;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  Domain.DLS.set in_parallel_region true;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set in_parallel_region false)
    work;
  Mutex.lock fin_mutex;
  while Atomic.get completed < nchunks do
    Condition.wait fin_cond fin_mutex
  done;
  Mutex.unlock fin_mutex;
  match Atomic.get error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let parallel_mapi f a =
  let n = Array.length a in
  if n = 0 then [||]
  else
    let p = size () in
    if p <= 1 || n = 1 || Domain.DLS.get in_parallel_region then
      Array.mapi f a
    else begin
      let pool = obtain p in
      let out = Array.make n None in
      (* ~4 chunks per domain: coarse enough to amortize scheduling, fine
         enough that a slow chunk doesn't serialize the tail. *)
      let chunk = max 1 ((n + (4 * p) - 1) / (4 * p)) in
      let nchunks = (n + chunk - 1) / chunk in
      run_region pool
        ~helpers:(min (p - 1) (nchunks - 1))
        ~nchunks
        (fun ci ->
          let lo = ci * chunk in
          let hi = min n (lo + chunk) - 1 in
          for j = lo to hi do
            out.(j) <- Some (f j a.(j))
          done);
      Array.map
        (function Some v -> v | None -> assert false (* every chunk ran *))
        out
    end

let parallel_map f a = parallel_mapi (fun _ x -> f x) a

let parallel_reduce ~combine ~init f a =
  Array.fold_left combine init (parallel_map f a)

(* --- persistent shard queues ------------------------------------------ *)

(* A shard queue is the long-lived counterpart of [run_region]: instead of
   one bounded fan-out, the owner keeps submitting tasks keyed by a shard
   index, and tasks within one shard run in submission order (each shard
   has at most one pump active at a time).  Distinct shards run
   concurrently on the pool workers.  The coordinator that created the
   queue is the single owner: only it may submit, drain, or close.

   When the pool is effectively sequential (degree 1, or the caller is
   already inside a parallel region), tasks run inline at submission —
   same ordering contract, no concurrency. *)

type shard_state = {
  tasks : (unit -> unit) Queue.t;
  mutable pumping : bool; (* a pump for this shard is scheduled or running *)
}

type shard_queue = {
  sq_pool : pool option; (* None = sequential fallback *)
  sq_shards : shard_state array;
  sq_mutex : Mutex.t;
  sq_done : Condition.t;
  mutable sq_outstanding : int; (* submitted but not yet executed *)
  sq_error : (exn * Printexc.raw_backtrace) option Atomic.t;
  mutable sq_closed : bool;
}

let shard_queue ~shards =
  if shards < 1 then invalid_arg "Pool.shard_queue: shards must be >= 1";
  let p = size () in
  let sequential = p <= 1 || Domain.DLS.get in_parallel_region in
  let sq =
    {
      sq_pool = (if sequential then None else Some (obtain p));
      sq_shards =
        Array.init shards (fun _ ->
            { tasks = Queue.create (); pumping = false });
      sq_mutex = Mutex.create ();
      sq_done = Condition.create ();
      sq_outstanding = 0;
      sq_error = Atomic.make None;
      sq_closed = false;
    }
  in
  incr live_shard_queues_;
  sq

(* Run queued tasks of shard [i] until its queue is empty.  Every task
   runs (errors are captured, not propagated, so the journal of work stays
   complete); the first exception is re-raised at [shard_drain]. *)
let rec pump_shard sq i =
  let st = sq.sq_shards.(i) in
  Mutex.lock sq.sq_mutex;
  if Queue.is_empty st.tasks then begin
    st.pumping <- false;
    Mutex.unlock sq.sq_mutex
  end
  else begin
    let task = Queue.pop st.tasks in
    Mutex.unlock sq.sq_mutex;
    (try task ()
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       ignore (Atomic.compare_and_set sq.sq_error None (Some (e, bt))));
    Mutex.lock sq.sq_mutex;
    sq.sq_outstanding <- sq.sq_outstanding - 1;
    if sq.sq_outstanding = 0 then Condition.broadcast sq.sq_done;
    Mutex.unlock sq.sq_mutex;
    pump_shard sq i
  end

let shard_submit sq ~shard f =
  if sq.sq_closed then invalid_arg "Pool.shard_submit: queue is closed";
  if shard < 0 || shard >= Array.length sq.sq_shards then
    invalid_arg "Pool.shard_submit: shard index out of range";
  match sq.sq_pool with
  | None ->
      (* Sequential fallback: run inline, capturing errors with the same
         drain-time contract as the parallel path. *)
      (try f ()
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set sq.sq_error None (Some (e, bt))))
  | Some pool ->
      let st = sq.sq_shards.(shard) in
      Mutex.lock sq.sq_mutex;
      Queue.push f st.tasks;
      sq.sq_outstanding <- sq.sq_outstanding + 1;
      let need_pump = not st.pumping in
      if need_pump then st.pumping <- true;
      Mutex.unlock sq.sq_mutex;
      if need_pump then begin
        let enqueued_ns = Timer.now_ns () in
        Mutex.lock pool.mutex;
        Queue.push (enqueued_ns, fun () -> pump_shard sq shard) pool.queue;
        Condition.signal pool.nonempty;
        Mutex.unlock pool.mutex
      end

let shard_drain sq =
  (match sq.sq_pool with
  | None -> ()
  | Some _pool ->
      (* Help out: adopt any shard that has queued work but no active
         pump, then block until the last outstanding task completes. *)
      let was = Domain.DLS.get in_parallel_region in
      Domain.DLS.set in_parallel_region true;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set in_parallel_region was)
        (fun () ->
          let rec help () =
            Mutex.lock sq.sq_mutex;
            let found = ref None in
            Array.iteri
              (fun i st ->
                if
                  !found = None && (not st.pumping)
                  && not (Queue.is_empty st.tasks)
                then begin
                  st.pumping <- true;
                  found := Some i
                end)
              sq.sq_shards;
            Mutex.unlock sq.sq_mutex;
            match !found with
            | Some i ->
                pump_shard sq i;
                help ()
            | None -> ()
          in
          help ());
      Mutex.lock sq.sq_mutex;
      while sq.sq_outstanding > 0 do
        Condition.wait sq.sq_done sq.sq_mutex
      done;
      Mutex.unlock sq.sq_mutex);
  match Atomic.get sq.sq_error with
  | Some (e, bt) ->
      Atomic.set sq.sq_error None;
      Printexc.raise_with_backtrace e bt
  | None -> ()

let shard_close sq =
  if not sq.sq_closed then begin
    Fun.protect
      ~finally:(fun () ->
        sq.sq_closed <- true;
        decr live_shard_queues_)
      (fun () -> shard_drain sq)
  end
