let sum xs = List.fold_left ( +. ) 0.0 xs

(* Uniform empty-sample policy: every statistic of an empty sample raises
   (there is no meaningful mean of nothing, and a silent 0.0 poisons
   benchmark aggregates downstream). *)
let require_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty sample")
  | xs -> xs

let mean xs =
  let xs = require_nonempty "Stats.mean" xs in
  sum xs /. float_of_int (List.length xs)

let mean_array a =
  if Array.length a = 0 then invalid_arg "Stats.mean_array: empty sample"
  else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance xs =
  match require_nonempty "Stats.variance" xs with
  | [ _ ] -> 0.0
  | xs ->
      let m = mean xs in
      let ss = sum (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
      ss /. float_of_int (List.length xs - 1)

let stddev xs =
  sqrt (variance (require_nonempty "Stats.stddev" xs))

let minimum xs =
  match require_nonempty "Stats.minimum" xs with
  | x :: rest -> List.fold_left min x rest
  | [] -> assert false

let maximum xs =
  match require_nonempty "Stats.maximum" xs with
  | x :: rest -> List.fold_left max x rest
  | [] -> assert false

let sorted xs = List.sort compare xs

let median xs =
  let xs = sorted (require_nonempty "Stats.median" xs) in
  let a = Array.of_list xs in
  let n = Array.length a in
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let percentile p xs =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let xs = sorted (require_nonempty "Stats.percentile" xs) in
  let a = Array.of_list xs in
  let n = Array.length a in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let idx = max 0 (min (n - 1) (rank - 1)) in
  a.(idx)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let summarize xs =
  let _ = require_nonempty "Stats.summarize" xs in
  {
    n = List.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = minimum xs;
    max = maximum xs;
    median = median xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f max=%.3f" s.n
    s.mean s.stddev s.min s.median s.max
