(** Wall-clock timing helpers for the runtime experiments (Table I). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock seconds. *)

val time_median : ?repeats:int -> (unit -> 'a) -> 'a * float
(** [time_median ~repeats f] runs [f] [repeats] times (default 3) and
    returns the last result with the median elapsed seconds. *)

val now_ns : unit -> int
(** Monotonic nanoseconds since the first call in this process.  Safe to
    call from any domain; successive reads never decrease (a wall-clock
    step backwards is clamped to the last value handed out), so span
    durations computed from two reads are always [>= 0]. *)
