(** Fixed worker pool over OCaml 5 domains.

    One pool serves the whole process; it is spawned lazily on the first
    parallel call and resized on the next call after {!set_size}.  The
    parallelism degree (coordinating domain included) defaults to the
    [SOF_DOMAINS] environment variable, or
    [Domain.recommended_domain_count () - 1] when unset.

    {b Determinism contract.}  [parallel_map f a] is observably identical
    to [Array.map f a] for pure [f]: each result is written to its own
    index, reductions run on the calling domain in ascending index order,
    and no result ever depends on scheduling.  With degree [<= 1] (or when
    called from inside another parallel region — only one level of fan-out
    is ever active) the sequential [Array.map]/[Array.mapi] path runs
    directly. *)

val size : unit -> int
(** Effective parallelism degree the next parallel call will use
    (always [>= 1]; [1] means sequential). *)

val set_size : int -> unit
(** Override the parallelism degree ([n < 1] is clamped to [1]).  Takes
    effect on the next parallel call; an existing pool of a different size
    is shut down and respawned.

    @raise Invalid_argument if any {!shard_queue} is live — a shard
    queue's pump tasks reside in the pool's work queue, so resizing
    mid-stream would race them against a pool teardown.  Drain and close
    every shard queue first. *)

val default_size : unit -> int
(** The degree used when {!set_size} was never called: [SOF_DOMAINS] if
    set to a positive integer, otherwise
    [max 1 (Domain.recommended_domain_count () - 1)]. *)

val parallel_map : ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f a] — [Array.map f a] with [f] applications distributed
    over the pool in contiguous index chunks.  An exception raised by [f]
    re-raises on the caller with its original backtrace (first one wins;
    later chunks are skipped); the region still drains fully, so the pool
    remains usable for subsequent calls. *)

val parallel_mapi : (int -> 'a -> 'b) -> 'a array -> 'b array
(** Indexed variant of {!parallel_map}. *)

val parallel_reduce :
  combine:('b -> 'b -> 'b) -> init:'b -> ('a -> 'b) -> 'a array -> 'b
(** [parallel_reduce ~combine ~init f a] maps [f] in parallel, then folds
    [combine] over the results sequentially in ascending index order (so
    non-associative or floating-point reductions stay deterministic). *)

(** {2 Persistent shard queues}

    The long-lived counterpart of a parallel region: the owner keeps
    submitting tasks keyed by a shard index, and the pool executes them
    with two guarantees — tasks within one shard run in submission order
    (at most one pump per shard is ever active), and distinct shards run
    concurrently across the pool workers.

    The coordinator that created the queue is the single owner: only it
    may call {!shard_submit}, {!shard_drain}, or {!shard_close}.  With
    degree [<= 1], or when created from inside a parallel region, tasks
    run inline at submission under the same ordering contract. *)

type shard_queue

val shard_queue : shards:int -> shard_queue
(** Create a shard queue with [shards] independent shards ([>= 1]).
    Pins the pool degree: {!set_size} raises until the queue is closed. *)

val shard_submit : shard_queue -> shard:int -> (unit -> unit) -> unit
(** Enqueue a task on shard [shard] (owner only).  Returns immediately in
    parallel mode; runs the task inline in sequential mode.  An exception
    raised by a task is captured (every submitted task still runs) and
    re-raised at the next {!shard_drain}, first one wins.
    @raise Invalid_argument on a closed queue or out-of-range shard. *)

val shard_drain : shard_queue -> unit
(** Block until every submitted task has executed; the calling domain
    helps pump idle shards while waiting.  Re-raises the first captured
    task exception with its original backtrace, clearing it.  The queue
    remains usable for further submissions. *)

val shard_close : shard_queue -> unit
(** Drain, then permanently close the queue and release the {!set_size}
    pin.  Idempotent; subsequent submits raise [Invalid_argument]. *)

val live_shard_queues : unit -> int
(** Number of shard queues created and not yet closed. *)

(** {2 Instrumentation probe}

    The pool sits below the observability library in the dependency
    order, so it cannot record metrics itself.  [Sof_obs] installs a
    probe instead; everything stays a no-op while no probe is set.
    Probe callbacks run on worker domains outside the queue lock and
    must be domain-safe and non-raising. *)

type probe = {
  on_region : chunks:int -> helpers:int -> unit;
      (** a parallel region was launched with [chunks] chunks and
          [helpers] queued helper tasks *)
  on_chunk : worker:int -> unit;
      (** worker [worker] (0 = the coordinating domain, 1.. = pool
          workers) finished executing one chunk *)
  on_dequeue : worker:int -> wait_ns:int -> unit;
      (** a queued helper task waited [wait_ns] nanoseconds between
          enqueue and dequeue by worker [worker] *)
}

val set_probe : probe option -> unit
(** Install ([Some]) or remove ([None]) the process-wide probe. *)
