let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, t1 -. t0)

(* Monotonic nanosecond clock for span tracing.  [Unix.gettimeofday] is
   the only wall clock the stdlib offers; it can step backwards under NTP
   adjustment, which would produce negative span durations, so the raw
   reading is clamped against the largest timestamp handed out so far.
   The origin is the first read after process start, keeping the values
   small enough for exact float microsecond conversion downstream. *)
let epoch_ns = Atomic.make 0

let last_ns = Atomic.make 0

let now_ns () =
  let raw = int_of_float (Unix.gettimeofday () *. 1e9) in
  if Atomic.get epoch_ns = 0 then
    ignore (Atomic.compare_and_set epoch_ns 0 raw);
  let t = max 0 (raw - Atomic.get epoch_ns) in
  let rec clamp () =
    let prev = Atomic.get last_ns in
    if t <= prev then prev
    else if Atomic.compare_and_set last_ns prev t then t
    else clamp ()
  in
  clamp ()

let time_median ?(repeats = 3) f =
  let repeats = max 1 repeats in
  let last = ref None in
  let samples =
    List.init repeats (fun _ ->
        let result, dt = time f in
        last := Some result;
        dt)
  in
  match !last with
  | None -> assert false
  | Some result -> (result, Stats.median samples)
