(** Summary statistics over float samples. *)

(** Empty-sample policy: every statistic raises [Invalid_argument] on an
    empty sample — there is no silent [0.0] fallback anywhere in this
    module. *)

val mean : float list -> float
(** Arithmetic mean.  @raise Invalid_argument on the empty list. *)

val mean_array : float array -> float
(** @raise Invalid_argument on the empty array. *)

val variance : float list -> float
(** Unbiased sample variance (n-1 denominator); 0 on a single sample.
    @raise Invalid_argument on the empty list. *)

val stddev : float list -> float
(** @raise Invalid_argument on the empty list. *)

val minimum : float list -> float
(** @raise Invalid_argument on the empty list. *)

val maximum : float list -> float
(** @raise Invalid_argument on the empty list. *)

val median : float list -> float
(** @raise Invalid_argument on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [0,100], nearest-rank method.
    @raise Invalid_argument on the empty list or [p] out of range. *)

val sum : float list -> float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on the empty list. *)

val pp_summary : Format.formatter -> summary -> unit
