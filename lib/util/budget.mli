(** Cooperative cancellation token for deadline-budgeted solves.

    A budget pairs an absolute deadline on the monotonic {!Timer.now_ns}
    clock with an atomic cancel flag.  Budgeted solvers poll {!expired}
    (or the [?budget] convenience {!check}) at stage boundaries and wind
    down to their documented partial/abandoned result: they never raise
    on expiry and never leave a half-written workspace.  Passing
    [?budget:None] is guaranteed bit-identical to the unbudgeted call —
    the poll short-circuits before touching the clock. *)

type t

val create : ?deadline_ns:int -> unit -> t
(** [create ~deadline_ns ()] — absolute deadline on the {!Timer.now_ns}
    scale; omit [deadline_ns] for a cancel-only token that expires only
    via {!cancel}. *)

val after_ms : float -> t
(** [after_ms ms] — deadline [ms] milliseconds from now (clamped at 0:
    [after_ms 0.0] is expired from birth, the deterministic way to force
    every budgeted stage to abandon). *)

val cancel : t -> unit
(** Flip the atomic cancel flag; every subsequent {!expired} is [true].
    Safe from any domain. *)

val cancelled : t -> bool

val deadline_ns : t -> int option

val expired : t -> bool
(** Cancelled, or the deadline has passed ([now_ns >= deadline]). *)

val remaining_ns : t -> int
(** Nanoseconds until the deadline (0 when expired or cancelled,
    [max_int] for a deadline-free token). *)

val check : t option -> bool
(** [check budget] — the [?budget] polling convention: [false] for
    [None] (without reading the clock, preserving bit-identity of
    unbudgeted paths), {!expired} otherwise. *)
