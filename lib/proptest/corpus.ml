type expect = Pass | Fail

type entry = {
  prop : string;
  seed : int;
  count : int;
  expect : expect;
  note : string;
}

(* Seeds pinned after the PR-1 bug hunt: the k-stroll closed-walk
   convention and the Transform.expand empty-path aliasing both slipped
   past the unit suites, so the classes of instance that exposed them —
   source = last VM (closed chain walks), coincident roles from
   Instance.draw, multi-source conflict resolution — are replayed here at
   fixed seeds on every run.  The demo entry must keep failing: it guards
   the harness itself. *)
let builtin =
  [
    { prop = "kstroll-dominance"; seed = 41; count = 120; expect = Pass;
      note = "closed-walk convention class (PR 1 regression)" };
    { prop = "forest-validity"; seed = 7; count = 80; expect = Pass;
      note = "coincident source/destination draws" };
    { prop = "domain-identity"; seed = 1729; count = 40; expect = Pass;
      note = "pool chunk-boundary widths" };
    { prop = "ilp-bracket"; seed = 11; count = 40; expect = Pass;
      note = "bracket holds where Transform.expand once aliased hops" };
  ]

let pp_entry e =
  Printf.sprintf "%s %d %d %s  # %s" e.prop e.seed e.count
    (match e.expect with Pass -> "pass" | Fail -> "fail")
    e.note

let parse_line line =
  let line, note =
    match String.index_opt line '#' with
    | Some i ->
        ( String.sub line 0 i,
          String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
    | None -> (line, "")
  in
  match String.split_on_char ' ' (String.trim line)
        |> List.filter (fun s -> s <> "") with
  | [] -> Ok None
  | [ prop; seed; count; expect ] -> (
      match
        ( int_of_string_opt seed,
          int_of_string_opt count,
          match String.lowercase_ascii expect with
          | "pass" -> Some Pass
          | "fail" -> Some Fail
          | _ -> None )
      with
      | Some seed, Some count, Some expect ->
          Ok (Some { prop; seed; count; expect; note })
      | _ -> Error "expected: <prop> <seed:int> <count:int> <pass|fail>")
  | _ -> Error "expected 4 fields: <prop> <seed> <count> <pass|fail>"

let load_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | line -> (
            match parse_line line with
            | Ok None -> go (lineno + 1) acc
            | Ok (Some e) -> go (lineno + 1) (e :: acc)
            | Error msg ->
                Error (Printf.sprintf "%s, line %d: %s" path lineno msg))
      in
      go 1 [])

let replay e =
  match Oracles.find e.prop with
  | None -> Error (Printf.sprintf "unknown property %S in corpus" e.prop)
  | Some p -> (
      match (Prop.run_packed ~count:e.count ~seed:e.seed p, e.expect) with
      | Prop.Passed _, Pass -> Ok ()
      | Prop.Failed f, Fail ->
          ignore f;
          Ok ()
      | Prop.Failed f, Pass ->
          Error
            (Printf.sprintf "corpus regression (%s):\n%s" e.note
               (Prop.pp_failure e.prop f))
      | Prop.Passed _, Fail ->
          Error
            (Printf.sprintf
               "corpus entry %S (seed %d) was expected to fail but passed — \
                was the demo law fixed?"
               e.prop e.seed))
