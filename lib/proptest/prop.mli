(** A small seeded property-based testing engine.

    Differences from qcheck that earn it its keep here: generation flows
    through {!Sof_util.Rng} (the repository's single randomness source), a
    failing case is reported as the [(seed, case)] pair that regenerates it
    plus a fully-shrunk counterexample printed as a reproducible OCaml
    literal, and shrinking is integrated greedy descent over caller-supplied
    candidate moves (for SOF instances: drop destinations, shorten chains,
    delete chords, round weights — see {!Spec.shrink}).

    Replay contract: case [i] of [run ~seed ~count prop] is generated from
    [Rng.create (case_seed ~seed i)], so any failure can be re-triggered in
    isolation with [run ~seed:(case_seed ~seed i) ~count:1] — that is the
    line the failure report prints and the seed corpus stores. *)

module Gen : sig
  type 'a t = Sof_util.Rng.t -> 'a
  (** A generator consumes randomness from the supplied stream.  Generators
      are plain functions: compose freely. *)

  val return : 'a -> 'a t
  val map : ('a -> 'b) -> 'a t -> 'b t
  val bind : 'a t -> ('a -> 'b t) -> 'b t
  val pair : 'a t -> 'b t -> ('a * 'b) t

  val int_range : int -> int -> int t
  (** Inclusive range. *)

  val float_range : float -> float -> float t
  val bool : bool t

  val oneof : 'a t list -> 'a t
  (** Uniform choice among generators.  @raise Invalid_argument on []. *)

  val frequency : (int * 'a t) list -> 'a t
  (** Weighted choice; weights must be positive. *)

  val choose : 'a list -> 'a t
  (** Uniform element of a non-empty list. *)

  val list_of : int t -> 'a t -> 'a list t
  (** [list_of len g] — a list whose length is drawn from [len]. *)

  val subset : max:int -> 'a list -> 'a list t
  (** Random subset of at most [max] elements, order preserved. *)
end

type 'a law = 'a -> (unit, string) result
(** A property body.  [Error msg] and any raised exception count as a
    failure of the tested law (the exception is rendered into the
    message); [Ok ()] passes. *)

type 'a t
(** A named property: generator + law + printer + shrinker. *)

val make :
  ?shrink:('a -> 'a Seq.t) ->
  ?print:('a -> string) ->
  name:string ->
  gen:'a Gen.t ->
  'a law ->
  'a t
(** [shrink] defaults to no shrinking; [print] to ["<opaque>"]. *)

val name : 'a t -> string

type 'a failure = {
  run_seed : int;        (** seed of the whole run *)
  case : int;            (** 0-based index of the failing case *)
  case_seed : int;       (** [Rng.create case_seed] regenerates the raw case *)
  shrink_steps : int;    (** greedy shrink moves accepted *)
  message : string;      (** law failure at the shrunk counterexample *)
  shrunk : 'a;           (** the shrunk counterexample itself *)
  counterexample : string;  (** printed shrunk value *)
}

type 'a outcome =
  | Passed of { count : int }
  | Failed of 'a failure

val case_seed : seed:int -> int -> int
(** The derived seed of case [i]: [seed + i * gamma] for a fixed odd
    stride, so [case_seed ~seed 0 = seed] and the replay contract above
    holds exactly. *)

val run : ?count:int -> seed:int -> 'a t -> 'a outcome
(** [run ~seed ~count prop] evaluates [count] (default 100) generated
    cases.  On the first failure the counterexample is greedily shrunk
    (bounded at 10_000 law evaluations) and reported; no further cases
    run. *)

val pp_failure : string -> 'a failure -> string
(** Multi-line human report: property name, replay seed, shrunk literal. *)

val check_exn : ?count:int -> seed:int -> 'a t -> unit
(** [run] that raises [Failure] with {!pp_failure} output on a failing
    property — the test-suite entry point. *)

(** {2 Heterogeneous registries}

    Properties over different case types packed behind one type so a
    registry (the oracle suite, the CLI fuzzer) can hold them in one
    list. *)

type packed = Packed : 'a t -> packed

val packed_name : packed -> string

val run_packed : ?count:int -> seed:int -> packed -> string outcome
(** The shrunk value degrades to its printed form ([shrunk =
    counterexample]) since the case type is hidden. *)

val check_packed_exn : ?count:int -> seed:int -> packed -> unit
