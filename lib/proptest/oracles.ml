module Problem = Sof.Problem
module Forest = Sof.Forest
module Validate = Sof.Validate
module Sofda = Sof.Sofda
module Sofda_ss = Sof.Sofda_ss
module Ip_model = Sof.Ip_model
module Ilp = Sof_lp.Ilp
module Metric = Sof_graph.Metric
module Kstroll = Sof_kstroll.Kstroll
module Pool = Sof_util.Pool
module Rng = Sof_util.Rng

let feq ?(eps = 1e-6) a b = abs_float (a -. b) <= eps *. max 1.0 (max (abs_float a) (abs_float b))

let errf fmt = Printf.ksprintf (fun m -> Error m) fmt

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let check_list f xs =
  List.fold_left (fun acc x -> match acc with Ok () -> f x | e -> e) (Ok ()) xs

(* --- 1. validity + cost reconciliation ------------------------------- *)

let algos : (string * (Problem.t -> Forest.t option)) list =
  [
    ("sofda", fun p -> Sofda.solve_forest p);
    ( "sofda-ss",
      fun p -> Sofda_ss.solve_forest p ~source:(List.hd p.Problem.sources) );
    ("est", Sof_baselines.Baselines.est);
    ("enemp", Sof_baselines.Baselines.enemp);
    ("st", Sof_baselines.Baselines.st);
  ]

(* Recharge the forest from first principles, exactly the way the online
   ledger does: every enabled VM once, every paid traffic context once. *)
let recompute_cost p f =
  let setup =
    List.fold_left
      (fun acc (vm, _) -> acc +. Problem.setup_cost p vm)
      0.0 (Forest.enabled_vms f)
  in
  let conn =
    List.fold_left
      (fun acc (u, v) -> acc +. Problem.edge_cost p u v)
      0.0 (Forest.paid_edges f)
  in
  (setup, conn)

let forest_validity_law spec =
  let p = Spec.to_problem spec in
  check_list
    (fun (name, solve) ->
      match solve p with
      | None -> Ok ()
      | Some f -> (
          match Validate.check f with
          | Error es ->
              errf "%s: invalid forest: %s" name
                (String.concat "; " (List.map Validate.to_string es))
          | Ok () ->
              let setup, conn = Forest.cost_breakdown f in
              let setup', conn' = recompute_cost p f in
              let* () =
                if feq setup setup' then Ok ()
                else
                  errf "%s: setup cost %.9f <> recomputed %.9f" name setup
                    setup'
              in
              let* () =
                if feq conn conn' then Ok ()
                else
                  errf "%s: connection cost %.9f <> recomputed %.9f" name conn
                    conn'
              in
              if feq (Forest.total_cost f) (setup +. conn) then Ok ()
              else
                errf "%s: total %.9f <> setup + connection %.9f" name
                  (Forest.total_cost f) (setup +. conn)))
    algos

let forest_validity =
  Prop.Packed
    (Prop.make ~shrink:Spec.shrink ~print:Spec.print ~name:"forest-validity"
       ~gen:Spec.gen_mixed forest_validity_law)

(* --- 2. ILP bracket --------------------------------------------------- *)

let rho_st = 2.0 (* KMB Steiner ratio; see lib/steiner *)

let ilp_bracket_law spec =
  let p = Spec.to_problem spec in
  match Sofda.solve p with
  | None -> Ok () (* infeasible instance: nothing to bracket *)
  | Some r ->
      let f = r.Sofda.forest in
      let cost = Forest.total_cost f in
      let ip_obj = Ip_model.objective_of_forest f in
      let res = Ip_model.solve ~node_limit:400 ~time_budget:5.0 p in
      let* () =
        if res.Ilp.bound <= ip_obj +. 1e-6 then Ok ()
        else
          errf "IP lower bound %.9f exceeds SOFDA's IP objective %.9f"
            res.Ilp.bound ip_obj
      in
      (match (res.Ilp.status, res.Ilp.best) with
      | Ilp.Infeasible, _ ->
          errf "IP says infeasible but SOFDA embedded at cost %.9f" cost
      | Ilp.Optimal, Some (_, opt) ->
          let* () =
            if opt <= cost +. 1e-6 then Ok ()
            else errf "SOFDA cost %.9f below the proven optimum %.9f" cost opt
          in
          if cost <= (3.0 *. rho_st *. opt) +. 1e-6 then Ok ()
          else
            errf "SOFDA cost %.9f breaks the 3*rho_ST bound (opt %.9f, 3*rho_ST*opt %.9f)"
              cost opt
              (3.0 *. rho_st *. opt)
      | _ -> Ok () (* budget expired: only the bound check applies *))

let ilp_bracket =
  Prop.Packed
    (Prop.make ~shrink:Spec.shrink ~print:Spec.print ~name:"ilp-bracket"
       ~gen:Spec.gen_tiny ilp_bracket_law)

(* --- 3. metric closure ------------------------------------------------ *)

let metric_closure_law spec =
  let p = Spec.to_problem spec in
  let terminals =
    List.sort_uniq compare
      (p.Problem.sources @ p.Problem.dests @ p.Problem.vms)
  in
  let ta = Array.of_list terminals in
  let c = Metric.closure p.Problem.graph ta in
  let k = Array.length ta in
  let result = ref (Ok ()) in
  let fail fmt = Printf.ksprintf (fun m -> if !result = Ok () then result := Error m) fmt in
  for i = 0 to k - 1 do
    if Metric.distance c i i <> 0.0 then
      fail "d(%d,%d) = %.9f, not 0" ta.(i) ta.(i) (Metric.distance c i i);
    for j = 0 to k - 1 do
      let dij = Metric.distance c i j in
      if dij < 0.0 then fail "negative distance d(%d,%d)" ta.(i) ta.(j);
      if not (feq dij (Metric.distance c j i) || dij = Metric.distance c j i)
      then
        fail "asymmetric: d(%d,%d)=%.9f d(%d,%d)=%.9f" ta.(i) ta.(j) dij
          ta.(j) ta.(i)
          (Metric.distance c j i);
      if Metric.distance_nodes c ta.(i) ta.(j) <> dij then
        fail "distance_nodes disagrees with distance at (%d,%d)" ta.(i) ta.(j)
    done
  done;
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      for l = 0 to k - 1 do
        let direct = Metric.distance c i l in
        let via = Metric.distance c i j +. Metric.distance c j l in
        if direct > via +. 1e-6 *. max 1.0 via then
          fail "triangle violated: d(%d,%d)=%.9f > d(%d,%d)+d(%d,%d)=%.9f"
            ta.(i) ta.(l) direct ta.(i) ta.(j) ta.(j) ta.(l) via
      done
    done
  done;
  !result

let metric_closure =
  Prop.Packed
    (Prop.make ~shrink:Spec.shrink ~print:Spec.print ~name:"metric-closure"
       ~gen:(Spec.gen_random ~max_n:14 ())
       metric_closure_law)

(* --- 4. k-stroll dominance -------------------------------------------- *)

type kstroll_case = {
  spec : Spec.t;
  candidates : int list;
  src : int;
  dst : int;
  k : int;
}

let kstroll_gen rng =
  let spec = Spec.gen_random ~min_n:5 ~max_n:9 () rng in
  let nodes = List.init spec.Spec.n Fun.id in
  let candidates = Prop.Gen.subset ~max:6 nodes rng in
  let src = Rng.int rng spec.Spec.n in
  let dst = Rng.int rng spec.Spec.n in
  let k = Rng.range rng 1 (List.length candidates + 2) in
  { spec; candidates; src; dst; k }

let kstroll_print c =
  Printf.sprintf "%s\nwith candidates = [ %s ]; src = %d; dst = %d; k = %d"
    (Spec.print c.spec)
    (String.concat "; " (List.map string_of_int c.candidates))
    c.src c.dst c.k

let kstroll_shrink c =
  let drops =
    List.mapi
      (fun i _ ->
        { c with candidates = List.filteri (fun j _ -> j <> i) c.candidates })
      c.candidates
  in
  let smaller_k = if c.k > 1 then [ { c with k = c.k - 1 } ] else [] in
  let rounded =
    Seq.filter_map
      (fun s ->
        (* keep only spec shrinks that leave the case well-formed *)
        if
          s.Spec.n > c.src && s.Spec.n > c.dst
          && List.for_all (fun v -> v < s.Spec.n) c.candidates
        then Some { c with spec = s }
        else None)
      (Spec.shrink c.spec)
  in
  Seq.append (List.to_seq (smaller_k @ drops)) rounded

let check_walk_shape ~dist ~src ~dst ~k name (w : Kstroll.walk) =
  let* () =
    if w.Kstroll.nodes = [] then errf "%s: empty walk" name else Ok ()
  in
  let first = List.hd w.Kstroll.nodes in
  let last = List.nth w.Kstroll.nodes (List.length w.Kstroll.nodes - 1) in
  let* () =
    if src <> dst then
      if first = src && last = dst then Ok ()
      else errf "%s: open walk endpoints %d..%d, wanted %d..%d" name first last src dst
    else if w.Kstroll.nodes = [ src ] then
      if w.Kstroll.cost = 0.0 then Ok ()
      else errf "%s: trivial closed walk with nonzero cost %.9f" name w.Kstroll.cost
    else if first = src && last = src && List.length w.Kstroll.nodes >= 3 then
      Ok ()
    else
      errf "%s: closed walk breaks the convention (first %d, last %d, length %d)"
        name first last
        (List.length w.Kstroll.nodes)
  in
  let* () =
    if Kstroll.distinct_count w.Kstroll.nodes >= k then Ok ()
    else
      errf "%s: %d distinct nodes, needed %d" name
        (Kstroll.distinct_count w.Kstroll.nodes)
        k
  in
  let recomputed = Kstroll.walk_cost ~dist w.Kstroll.nodes in
  if feq recomputed w.Kstroll.cost then Ok ()
  else
    errf "%s: reported cost %.9f <> walk_cost %.9f" name w.Kstroll.cost
      recomputed

let kstroll_law c =
  let p = Spec.to_problem c.spec in
  let nodes = Array.init c.spec.Spec.n Fun.id in
  let cl = Metric.closure p.Problem.graph nodes in
  (* terminals are 0..n-1, so terminal indices coincide with node ids *)
  let dist u v = Metric.distance cl u v in
  let run f = f ~dist ~candidates:c.candidates ~src:c.src ~dst:c.dst ~k:c.k in
  let h = run Kstroll.cheapest_insertion in
  let e = run Kstroll.exact in
  let* () =
    match h with
    | Some w -> check_walk_shape ~dist ~src:c.src ~dst:c.dst ~k:c.k "heuristic" w
    | None -> Ok ()
  in
  let* () =
    match e with
    | Some w -> check_walk_shape ~dist ~src:c.src ~dst:c.dst ~k:c.k "exact" w
    | None -> Ok ()
  in
  match (h, e) with
  | Some hw, Some ew ->
      if ew.Kstroll.cost <= hw.Kstroll.cost +. 1e-6 then Ok ()
      else
        errf "exact DP cost %.9f above heuristic cost %.9f" ew.Kstroll.cost
          hw.Kstroll.cost
  | Some _, None -> errf "heuristic found a walk but the exact DP did not"
  | None, Some _ -> errf "exact DP found a walk but the heuristic did not"
  | None, None -> Ok ()

let kstroll_dominance =
  Prop.Packed
    (Prop.make ~shrink:kstroll_shrink ~print:kstroll_print
       ~name:"kstroll-dominance" ~gen:kstroll_gen kstroll_law)

(* --- 5. 1-vs-N-domain bit identity ------------------------------------ *)

let with_domains n f =
  let saved = Pool.size () in
  Fun.protect
    ~finally:(fun () -> Pool.set_size saved)
    (fun () ->
      Pool.set_size n;
      f ())

let walk_key (w : Forest.walk) = (w.Forest.source, w.Forest.hops, w.Forest.marks)

let report_key (r : Sofda.report) =
  ( List.map walk_key r.Sofda.forest.Forest.walks,
    r.Sofda.forest.Forest.delivery,
    Forest.total_cost r.Sofda.forest,
    r.Sofda.selected_chains,
    r.Sofda.aux_tree_cost,
    r.Sofda.conflicts_resolved )

let domain_identity_law spec =
  let p = Spec.to_problem spec in
  let r1 = with_domains 1 (fun () -> Sofda.solve p) in
  let r4 = with_domains 4 (fun () -> Sofda.solve p) in
  match (r1, r4) with
  | None, None -> Ok ()
  | Some _, None | None, Some _ ->
      errf "feasibility differs between 1 and 4 domains"
  | Some a, Some b ->
      if report_key a = report_key b then Ok ()
      else
        errf
          "reports differ between 1 and 4 domains (costs %.12g vs %.12g)"
          (Forest.total_cost a.Sofda.forest)
          (Forest.total_cost b.Sofda.forest)

let domain_identity =
  Prop.Packed
    (Prop.make ~shrink:Spec.shrink ~print:Spec.print ~name:"domain-identity"
       ~gen:Spec.gen_mixed domain_identity_law)

(* --- 6. dynamic-adjustment validity ----------------------------------- *)

module Dynamic = Sof.Dynamic

type dyn_case = { dyn_spec : Spec.t; script : int list }

let dyn_gen rng =
  let dyn_spec = Spec.gen_mixed rng in
  let script =
    Prop.Gen.list_of (Prop.Gen.int_range 2 5) (Prop.Gen.int_range 0 100_000) rng
  in
  { dyn_spec; script }

let dyn_print c =
  Printf.sprintf "%s\nwith script = [ %s ]" (Spec.print c.dyn_spec)
    (String.concat "; " (List.map string_of_int c.script))

let dyn_shrink c =
  let drops =
    List.mapi (fun i _ -> { c with script = List.filteri (fun j _ -> j <> i) c.script }) c.script
  in
  Seq.append
    (List.to_seq drops)
    (Seq.map (fun s -> { c with dyn_spec = s }) (Spec.shrink c.dyn_spec))

(* Decode one scripted operation against the current forest; [None] means
   the op is inapplicable (or the operation itself declined) — skip. *)
let dyn_step (f : Forest.t) code =
  let p = f.Forest.problem in
  let nth xs i = List.nth xs (i mod List.length xs) in
  let sel = code / 6 in
  match code mod 6 with
  | 0 ->
      if List.length p.Problem.dests < 2 then None
      else Some ("leave", Some (Dynamic.destination_leave f (nth p.Problem.dests sel)))
  | 1 ->
      let outsiders =
        List.filter
          (fun v -> not (Problem.is_dest p v))
          (List.init (Problem.n p) Fun.id)
      in
      if outsiders = [] then None
      else Some ("join", Dynamic.destination_join f (nth outsiders sel))
  | 2 ->
      if p.Problem.chain_length < 2 then None
      else
        Some
          ( "vnf-delete",
            Some (Dynamic.vnf_delete f ~vnf:(1 + (sel mod p.Problem.chain_length))) )
  | 3 ->
      Some
        ( "vnf-insert",
          Dynamic.vnf_insert f ~at:(1 + (sel mod (p.Problem.chain_length + 1))) )
  | 4 ->
      let edges = Sof_graph.Graph.edges p.Problem.graph in
      if edges = [] then None
      else
        let u, v, _ = nth edges sel in
        Some ("reroute", Dynamic.reroute_link f ~u ~v)
  | _ -> (
      match Forest.enabled_vms f with
      | [] -> None
      | evs -> Some ("relocate", Dynamic.relocate_vm f ~vm:(fst (nth evs sel))))

let dyn_law c =
  let p = Spec.to_problem c.dyn_spec in
  match Sofda.solve_forest p with
  | None -> Ok ()
  | Some f0 ->
      let rec go f = function
        | [] -> Ok ()
        | code :: rest -> (
            match dyn_step f code with
            | None | Some (_, None) -> go f rest
            | Some (name, Some (upd : Dynamic.update)) -> (
                let nf = upd.Dynamic.forest in
                match Validate.check nf with
                | Error es ->
                    errf "%s (code %d): invalid forest: %s" name code
                      (String.concat "; " (List.map Validate.to_string es))
                | Ok () ->
                    let* () =
                      if nf.Forest.problem == upd.Dynamic.problem then Ok ()
                      else errf "%s: forest not built on the updated problem" name
                    in
                    go nf rest))
      in
      go f0 c.script

let dynamic_validity =
  Prop.Packed
    (Prop.make ~shrink:dyn_shrink ~print:dyn_print ~name:"dynamic-validity"
       ~gen:dyn_gen dyn_law)

(* --- 7. post-repair validity ------------------------------------------ *)

module Fault = Sof_resilience.Fault
module Repair = Sof_resilience.Repair

type repair_case = { rep_spec : Spec.t; pick : int }

let repair_gen rng =
  { rep_spec = Spec.gen_mixed rng; pick = Rng.int rng 100_000 }

let repair_print c =
  Printf.sprintf "%s\nwith pick = %d" (Spec.print c.rep_spec) c.pick

let repair_shrink c =
  Seq.map (fun s -> { c with rep_spec = s }) (Spec.shrink c.rep_spec)

let used_edges (f : Forest.t) =
  let tbl = Hashtbl.create 32 in
  let norm (a, b) = if a < b then (a, b) else (b, a) in
  List.iter
    (fun (w : Forest.walk) ->
      for i = 0 to Array.length w.Forest.hops - 2 do
        Hashtbl.replace tbl (norm (w.Forest.hops.(i), w.Forest.hops.(i + 1))) ()
      done)
    f.Forest.walks;
  List.iter (fun e -> Hashtbl.replace tbl (norm e) ()) f.Forest.delivery;
  List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) tbl [])

let used_nodes (f : Forest.t) =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (w : Forest.walk) ->
      Array.iter (fun h -> Hashtbl.replace tbl h ()) w.Forest.hops)
    f.Forest.walks;
  List.iter
    (fun (a, b) ->
      Hashtbl.replace tbl a ();
      Hashtbl.replace tbl b ())
    f.Forest.delivery;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) tbl [])

(* One failure of each kind against the same embedded forest, so [count]
   fuzz cases exercise [count] cases of {e every} kind. *)
let repair_law c =
  let p = Spec.to_problem c.rep_spec in
  match Sofda.solve_forest p with
  | None -> Ok ()
  | Some f ->
      let nth xs = List.nth xs (c.pick mod List.length xs) in
      let events =
        List.concat
          [
            (match used_edges f with
            | [] -> []
            | es ->
                let u, v = nth es in
                [ Fault.Link_down (u, v) ]);
            (match used_nodes f with
            | [] -> []
            | ns -> [ Fault.Node_down (nth ns) ]);
            (match Forest.enabled_vms f with
            | [] -> []
            | evs -> [ Fault.Vm_crash (fst (nth evs)) ]);
          ]
      in
      check_list
        (fun event ->
          let name = Fault.event_to_string event in
          let health = Fault.apply (Fault.healthy p) event in
          match Repair.heal ~health ~event f with
          | Some r -> (
              match Validate.check r.Repair.forest with
              | Error es ->
                  errf "%s: post-repair forest invalid: %s" name
                    (String.concat "; " (List.map Validate.to_string es))
              | Ok () ->
                  let served = r.Repair.problem.Problem.dests in
                  let expected =
                    List.filter
                      (fun d ->
                        (match event with
                        | Fault.Node_down x -> d <> x
                        | _ -> true)
                        && not (List.mem d r.Repair.dropped))
                      p.Problem.dests
                  in
                  let* () =
                    if List.sort_uniq compare served = expected then Ok ()
                    else
                      errf "%s: serves {%s}, surviving set is {%s}" name
                        (String.concat "," (List.map string_of_int served))
                        (String.concat "," (List.map string_of_int expected))
                  in
                  (* every dropped destination must be genuinely dead *)
                  check_list
                    (fun d ->
                      match Fault.degrade health ~dests:[ d ] with
                      | None -> Ok ()
                      | Some p1 ->
                          if Repair.full_resolve p1 = None then Ok ()
                          else
                            errf "%s: dropped destination %d is still servable"
                              name d)
                    r.Repair.dropped)
          | None -> (
              (* total outage must be real: nothing on the degraded
                 instance can be embedded *)
              let dests =
                List.filter
                  (fun d ->
                    match event with Fault.Node_down x -> d <> x | _ -> true)
                  p.Problem.dests
              in
              match Fault.degrade health ~dests with
              | None -> Ok ()
              | Some p' ->
                  if Repair.full_resolve p' = None then Ok ()
                  else errf "%s: heal gave up on a solvable instance" name))
        events

let repair_validity =
  Prop.Packed
    (Prop.make ~shrink:repair_shrink ~print:repair_print
       ~name:"repair-validity" ~gen:repair_gen repair_law)

(* --- 8. observability transparency ------------------------------------ *)

module Obs = Sof_obs.Obs

(* Run [f] with the observability sink enabled, restoring the disabled
   default (and an empty registry) afterwards whatever happens. *)
let with_obs f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

(* The sink only ever reads clocks and writes into the metrics registry:
   solver reports must be bit-identical with observability on or off. *)
let obs_transparency_law spec =
  let p = Spec.to_problem spec in
  let off = Sofda.solve p in
  let on = with_obs (fun () -> Sofda.solve p) in
  match (off, on) with
  | None, None -> Ok ()
  | Some _, None | None, Some _ ->
      errf "feasibility differs with observability enabled"
  | Some a, Some b ->
      if report_key a = report_key b then Ok ()
      else
        errf
          "reports differ with observability enabled (costs %.12g vs %.12g)"
          (Forest.total_cost a.Sofda.forest)
          (Forest.total_cost b.Sofda.forest)

let obs_transparency =
  Prop.Packed
    (Prop.make ~shrink:Spec.shrink ~print:Spec.print ~name:"obs-transparency"
       ~gen:Spec.gen_mixed obs_transparency_law)

(* --- 9. Dijkstra engine equivalence ----------------------------------- *)

module Graph = Sof_graph.Graph
module Dijkstra = Sof_graph.Dijkstra

type dijkstra_case = {
  dij_spec : Spec.t;
  dij_src : int;
  dij_extra : int;  (** second seed for the multi-source check *)
  dij_targets : int list;
  dij_cut : int option;
      (** node whose incident edges are severed, guaranteeing an
          unreachable target when present *)
}

let dijkstra_gen rng =
  let spec = Spec.gen_random ~min_n:4 ~max_n:16 () rng in
  (* Snap weights onto a 0.5 grid so distinct shortest paths of equal cost
     are common — the oracle must pin the tie order, not dodge it. *)
  let snap w = max 0.5 (Float.round (w *. 2.0) /. 2.0) in
  let spec =
    {
      spec with
      Spec.edges = List.map (fun (u, v, w) -> (u, v, snap w)) spec.Spec.edges;
    }
  in
  let n = spec.Spec.n in
  let src = Rng.int rng n in
  let extra = Rng.int rng n in
  let targets =
    Prop.Gen.list_of (Prop.Gen.int_range 1 4) (Prop.Gen.int_range 0 (n - 1)) rng
  in
  let cut =
    if Rng.int rng 2 = 0 then
      let c = Rng.int rng n in
      if c = src then None else Some c
    else None
  in
  (* A severed node placed among the targets exercises the early-exit
     path that must drain the whole frontier and report unreachable. *)
  let targets = match cut with Some c -> c :: targets | None -> targets in
  { dij_spec = spec; dij_src = src; dij_extra = extra; dij_targets = targets; dij_cut = cut }

let dijkstra_print c =
  Printf.sprintf "%s\nwith src = %d; extra = %d; targets = [ %s ]; cut = %s"
    (Spec.print c.dij_spec) c.dij_src c.dij_extra
    (String.concat "; " (List.map string_of_int c.dij_targets))
    (match c.dij_cut with None -> "None" | Some v -> Printf.sprintf "Some %d" v)

let dijkstra_shrink c =
  let drops =
    List.mapi
      (fun i _ ->
        { c with dij_targets = List.filteri (fun j _ -> j <> i) c.dij_targets })
      c.dij_targets
  in
  let uncut = match c.dij_cut with Some _ -> [ { c with dij_cut = None } ] | None -> [] in
  let specs =
    Seq.filter_map
      (fun s ->
        let ok v = v < s.Spec.n in
        if
          ok c.dij_src && ok c.dij_extra
          && List.for_all ok c.dij_targets
          && (match c.dij_cut with None -> true | Some v -> ok v)
        then Some { c with dij_spec = s }
        else None)
      (Spec.shrink c.dij_spec)
  in
  Seq.append (List.to_seq (uncut @ drops)) specs

let dijkstra_graph c =
  let edges =
    match c.dij_cut with
    | None -> c.dij_spec.Spec.edges
    | Some x ->
        List.filter (fun (u, v, _) -> u <> x && v <> x) c.dij_spec.Spec.edges
  in
  Graph.create ~n:c.dij_spec.Spec.n ~edges

(* Exact equality, ties included: the workspace engine promises the same
   settle order as the reference, so dist AND parent must match bit for
   bit, not just within epsilon. *)
let dijkstra_result_equal name (want : Dijkstra.result) (got : Dijkstra.result) =
  let n = Array.length want.Dijkstra.dist in
  let bad = ref (Ok ()) in
  (try
     for v = 0 to n - 1 do
       if got.Dijkstra.dist.(v) <> want.Dijkstra.dist.(v) then begin
         bad :=
           errf "%s: dist.(%d) = %.17g, reference %.17g" name v
             got.Dijkstra.dist.(v) want.Dijkstra.dist.(v);
         raise Exit
       end;
       if got.Dijkstra.parent.(v) <> want.Dijkstra.parent.(v) then begin
         bad :=
           errf "%s: parent.(%d) = %d, reference %d" name v
             got.Dijkstra.parent.(v) want.Dijkstra.parent.(v);
         raise Exit
       end
     done
   with Exit -> ());
  !bad

let dijkstra_equiv_law c =
  let g = dijkstra_graph c in
  let n = Graph.n g in
  let want = Dijkstra.reference g [ c.dij_src ] in
  (* 1. full workspace run *)
  let* () = dijkstra_result_equal "run" want (Dijkstra.run g c.dij_src) in
  (* 2. multi-source against the same reference engine *)
  let sources = List.sort_uniq Int.compare [ c.dij_src; c.dij_extra ] in
  let* () =
    dijkstra_result_equal "multi_source"
      (Dijkstra.reference g sources)
      (Dijkstra.multi_source g sources)
  in
  (* 3. targeted run: settled labels are a prefix of the full run *)
  let targets = Array.of_list c.dij_targets in
  let rt = Dijkstra.run_to_targets g c.dij_src ~targets in
  let* () =
    check_list
      (fun v ->
        if rt.Dijkstra.dist.(v) = infinity then Ok ()
        else if rt.Dijkstra.dist.(v) <> want.Dijkstra.dist.(v) then
          errf "run_to_targets: settled dist.(%d) = %.17g, reference %.17g" v
            rt.Dijkstra.dist.(v) want.Dijkstra.dist.(v)
        else if rt.Dijkstra.parent.(v) <> want.Dijkstra.parent.(v) then
          errf "run_to_targets: settled parent.(%d) = %d, reference %d" v
            rt.Dijkstra.parent.(v) want.Dijkstra.parent.(v)
        else Ok ())
      (List.init n Fun.id)
  in
  let* () =
    check_list
      (fun t ->
        if rt.Dijkstra.dist.(t) <> want.Dijkstra.dist.(t) then
          errf "run_to_targets: target %d at %.17g, reference %.17g" t
            rt.Dijkstra.dist.(t) want.Dijkstra.dist.(t)
        else if Dijkstra.path_to rt t <> Dijkstra.path_to want t then
          errf "run_to_targets: path to target %d differs from reference" t
        else Ok ())
      c.dij_targets
  in
  (* 4. resumable state driven target-by-target, then exhausted: slicing
        must not change any label *)
  let st = Dijkstra.start g c.dij_src in
  Dijkstra.settle_many st targets;
  let* () =
    check_list
      (fun t ->
        let reachable = want.Dijkstra.dist.(t) < infinity in
        if Dijkstra.is_settled st t <> reachable then
          errf "state: target %d settled=%b, reachable=%b" t
            (Dijkstra.is_settled st t) reachable
        else Ok ())
      c.dij_targets
  in
  Dijkstra.settle_all st;
  let* () =
    check_list
      (fun v ->
        if Dijkstra.state_dist st v <> want.Dijkstra.dist.(v) then
          errf "state: dist.(%d) = %.17g, reference %.17g" v
            (Dijkstra.state_dist st v) want.Dijkstra.dist.(v)
        else if Dijkstra.state_path st v <> Dijkstra.path_to want v then
          errf "state: path to %d differs from reference" v
        else Ok ())
      (List.init n Fun.id)
  in
  (* 5. independent algorithm cross-check *)
  let bf = Dijkstra.bellman_ford g c.dij_src in
  check_list
    (fun v ->
      if bf.(v) = want.Dijkstra.dist.(v) || feq bf.(v) want.Dijkstra.dist.(v)
      then Ok ()
      else
        errf "bellman-ford: dist.(%d) = %.17g, dijkstra %.17g" v bf.(v)
          want.Dijkstra.dist.(v))
    (List.init n Fun.id)

let dijkstra_equiv =
  Prop.Packed
    (Prop.make ~shrink:dijkstra_shrink ~print:dijkstra_print
       ~name:"dijkstra-equiv" ~gen:dijkstra_gen dijkstra_equiv_law)

(* --- 10. online ledger conservation ----------------------------------- *)

module Online = Sof_workload.Online
module Ledger = Sof_cost.Ledger

type ledger_case = { led_seed : int; led_requests : int; led_threshold : float }

(* Small testbed-sized workload so each case embeds in milliseconds; the
   tight link capacity plus the congestion-blind [`Hops] pricing makes
   re-joins (rollback + recommit) fire for real. *)
let ledger_cfg =
  {
    Online.vms_per_dc = 2;
    demand = 5.0;
    link_capacity = 20.0;
    vm_capacity = 3.0;
    src_range = (2, 4);
    dst_range = (3, 6);
    chain_length = 2;
  }

let ledger_gen rng =
  {
    led_seed = Rng.int rng 100_000;
    led_requests = Rng.range rng 2 10;
    led_threshold = 0.3 +. (0.1 *. float_of_int (Rng.int rng 6));
  }

let ledger_print c =
  Printf.sprintf "seed = %d; n_requests = %d; threshold = %.1f" c.led_seed
    c.led_requests c.led_threshold

let ledger_shrink c =
  if c.led_requests > 2 then
    Seq.return { c with led_requests = c.led_requests - 1 }
  else Seq.empty

(* After any adaptive run — including failed and successful re-joins —
   the ledger must equal exactly the charges of the forests left
   committed: every rollback is paired with a recommit.  Loads are sums
   of the exactly-representable demand (5.0) and 1.0, so the comparison
   is bit-identical, not epsilon. *)
let ledger_conservation_law c =
  let topo = Sof_topology.Topology.testbed () in
  let report =
    Online.run_adaptive ~pricing:`Hops
      ~rng:(Rng.create c.led_seed)
      ~utilization_threshold:c.led_threshold topo ledger_cfg
      ~n_requests:c.led_requests
      ~algo:(fun p -> Sofda.solve_forest p)
  in
  let graph, _, n_access = Online.augment topo ledger_cfg in
  let node_capacity =
    Array.init (Graph.n graph) (fun v ->
        if v >= n_access then ledger_cfg.Online.vm_capacity else 0.0)
  in
  let fresh =
    Ledger.create ~graph ~link_capacity:ledger_cfg.Online.link_capacity
      ~node_capacity
  in
  List.iter
    (fun f ->
      List.iter
        (fun (u, v) ->
          Ledger.add_edge_load fresh u v ledger_cfg.Online.demand)
        (Forest.paid_edges f);
      List.iter
        (fun (vm, _) -> Ledger.add_node_load fresh vm 1.0)
        (Forest.enabled_vms f))
    report.Online.committed;
  let final = report.Online.final_ledger in
  let result = ref (Ok ()) in
  let fail fmt =
    Printf.ksprintf (fun m -> if !result = Ok () then result := Error m) fmt
  in
  Graph.iter_edges graph (fun u v _ ->
      let want = Ledger.edge_load fresh u v
      and got = Ledger.edge_load final u v in
      if got <> want then
        fail "link (%d,%d): final load %.17g <> recharged %.17g" u v got want);
  for v = 0 to Graph.n graph - 1 do
    let want = Ledger.node_load fresh v and got = Ledger.node_load final v in
    if got <> want then
      fail "node %d: final load %.17g <> recharged %.17g" v got want
  done;
  !result

let ledger_conservation =
  Prop.Packed
    (Prop.make ~shrink:ledger_shrink ~print:ledger_print
       ~name:"ledger-conservation" ~gen:ledger_gen ledger_conservation_law)

(* --- 11. LP relaxation & randomized rounding -------------------------- *)

let lp_bound_check name bound cost =
  if bound <= cost +. (1e-6 *. max 1.0 (abs_float cost)) then Ok ()
  else errf "LP bound %.9f exceeds %s IP objective %.9f" bound name cost

(* The column-generation bound is claimed sound even when pricing stalls
   (Lagrangian fallback), so it must sit below the IP objective of every
   feasible forest — the rounded one and SOFDA's alike; the rounded
   forest must validate; and the whole pipeline must replay
   bit-identically under the same seed. *)
let lp_vs_sofda_law spec =
  let p = Spec.to_problem spec in
  let cache = Metric.Cache.create () in
  match (Sof.Lp_round.solve ~cache ~seed:0 p, Sofda.solve ~cache p) with
  | None, None -> Ok ()
  | None, Some _ -> errf "lp-round gave up on a SOFDA-feasible instance"
  | Some _, None ->
      errf "lp-round embedded an instance SOFDA calls infeasible"
  | Some r, Some s ->
      let* () =
        match Validate.check r.Sof.Lp_round.forest with
        | Ok () -> Ok ()
        | Error es ->
            errf "rounded forest invalid: %s"
              (String.concat "; " (List.map Validate.to_string es))
      in
      let bound = r.Sof.Lp_round.lp_bound in
      let* () =
        if Float.is_finite bound && bound >= 0.0 then Ok ()
        else errf "LP bound %.9f is not finite and nonnegative" bound
      in
      let* () =
        lp_bound_check "rounded" bound r.Sof.Lp_round.rounded_ip_cost
      in
      let* () =
        lp_bound_check "SOFDA" bound
          (Ip_model.objective_of_forest s.Sofda.forest)
      in
      (* Deterministic replay; skipped on the rare large draws where the
         relaxation is expensive enough to dominate the fuzz round. *)
      if r.Sof.Lp_round.lp_stats.Sof_lp.Col_gen.active_columns > 600 then
        Ok ()
      else
        match Sof.Lp_round.solve ~cache ~seed:0 p with
        | None -> errf "replay with the same seed returned no embedding"
        | Some r2 ->
            if
              r2.Sof.Lp_round.forest.Forest.walks
              = r.Sof.Lp_round.forest.Forest.walks
              && r2.Sof.Lp_round.forest.Forest.delivery
                 = r.Sof.Lp_round.forest.Forest.delivery
              && r2.Sof.Lp_round.lp_bound = bound
              && r2.Sof.Lp_round.repairs = r.Sof.Lp_round.repairs
              && r2.Sof.Lp_round.fallback = r.Sof.Lp_round.fallback
            then Ok ()
            else errf "same-seed replay diverged"

let lp_vs_sofda =
  Prop.Packed
    (Prop.make ~shrink:Spec.shrink ~print:Spec.print ~name:"lp-vs-sofda"
       ~gen:Spec.gen_mixed lp_vs_sofda_law)

(* Rounding robustness across seeds: every draw — repaired or not — must
   validate, its cost must dominate the LP bound, and the bound itself
   must not depend on the rounding seed (column generation is
   deterministic and seed-free). *)
let rounding_validity_law spec =
  let p = Spec.to_problem spec in
  let cache = Metric.Cache.create () in
  match Sof.Lp_round.solve ~cache ~seed:1 ~trials:4 p with
  | None -> Ok ()
  | Some r1 ->
      check_list
        (fun seed ->
          match Sof.Lp_round.solve ~cache ~seed ~trials:4 p with
          | None -> errf "seed %d: no embedding after seed 1 succeeded" seed
          | Some r ->
              let* () =
                match Validate.check r.Sof.Lp_round.forest with
                | Ok () -> Ok ()
                | Error es ->
                    errf "seed %d: invalid forest (repairs %d): %s" seed
                      r.Sof.Lp_round.repairs
                      (String.concat "; "
                         (List.map Validate.to_string es))
              in
              let* () =
                lp_bound_check "rounded" r.Sof.Lp_round.lp_bound
                  r.Sof.Lp_round.rounded_ip_cost
              in
              if r.Sof.Lp_round.lp_bound = r1.Sof.Lp_round.lp_bound then
                Ok ()
              else
                errf "seed %d: LP bound %.9f differs from seed 1's %.9f"
                  seed r.Sof.Lp_round.lp_bound r1.Sof.Lp_round.lp_bound)
        [ 1; 2; 3 ]

let rounding_validity =
  Prop.Packed
    (Prop.make ~shrink:Spec.shrink ~print:Spec.print
       ~name:"rounding-validity"
       ~gen:(Spec.gen_random ())
       rounding_validity_law)

(* --- 13. serving journal replay --------------------------------------- *)

module Stream = Sof_workload.Stream
module Serve = Sof_serve.Serve
module Journal = Sof_serve.Journal

type serve_case = {
  srv_seed : int;
  srv_ecut : int;  (** event-script truncation point (mod #events + 1) *)
  srv_rcut : int;  (** journal truncation point — the simulated crash *)
}

let serve_gen rng =
  {
    srv_seed = Rng.int rng 100_000;
    srv_ecut = Rng.int rng 1_000;
    srv_rcut = Rng.int rng 1_000;
  }

let serve_print c =
  Printf.sprintf "seed = %d; event_cut = %d; record_cut = %d" c.srv_seed
    c.srv_ecut c.srv_rcut

let serve_shrink c =
  if c.srv_ecut > 0 then Seq.return { c with srv_ecut = c.srv_ecut - 1 }
  else Seq.empty

(* No compute deadline (so the run is machine-deterministic) but every
   backpressure path live: a 3-deep queue under all three policies, a
   finite virtual queue deadline, and an outage window on odd seeds. *)
let serve_case_cfg c =
  let policy =
    match c.srv_seed mod 3 with
    | 0 -> Serve.Reject_newest
    | 1 -> Serve.Drop_oldest
    | _ -> Serve.Edf
  in
  let outages = if c.srv_seed land 1 = 1 then [ (1.0, 1.6) ] else [] in
  {
    Serve.default_config with
    stream =
      {
        Stream.workload = ledger_cfg;
        process = Stream.Poisson { rate = 1.5 };
        mean_hold = 2.5;
        horizon = 6.0;
        max_utilization = 0.6;
      };
    deadline_ms = infinity;
    ladder = [ Serve.Sofda ];
    queue_cap = 3;
    policy;
    service_time = 0.3;
    queue_deadline = 2.0;
    retry_max = 2;
    retry_base = 0.2;
    retry_jitter = 0.5;
    retry_seed = c.srv_seed + 17;
    outages;
  }

let firstn n l = List.filteri (fun i _ -> i < n) l

(* The WAL law: (1) the journal's JSON text round-trips, and a byte
   truncation (torn tail) still parses to a clean record prefix; (2)
   replaying the full journal reconstructs the final ledger and live
   forests bit-identically; (3) replaying a prefix cut at any record
   boundary — the simulated [kill -9] — lands in a state satisfying the
   recovery invariant.  Event scripts are themselves truncated mid-run so
   the final state has live deployments (a full script drains). *)
let journal_replay_law c =
  let topo = Sof_topology.Topology.testbed () in
  let cfg = serve_case_cfg c in
  let _, _, n_access = Online.augment topo cfg.Serve.stream.Stream.workload in
  let events =
    Stream.script ~rng:(Rng.create c.srv_seed) ~n_access cfg.Serve.stream
  in
  let events = firstn (c.srv_ecut mod (List.length events + 1)) events in
  let report = Serve.run_script topo cfg events in
  let records = report.Serve.records in
  (* text round-trip + torn-tail tolerance *)
  let text =
    String.concat "" (List.map (fun r -> Journal.to_line r ^ "\n") records)
  in
  let* () =
    if Journal.parse_lines text = records then Ok ()
    else errf "journal text does not round-trip (%d records)"
        (List.length records)
  in
  let* () =
    if String.length text = 0 then Ok ()
    else
      let cut = c.srv_rcut mod String.length text in
      let parsed = Journal.parse_lines (String.sub text 0 cut) in
      if parsed = firstn (List.length parsed) records then Ok ()
      else errf "byte-truncated journal is not a record prefix (cut %d)" cut
  in
  (* full replay: bit-identical ledger + forests *)
  let snap = Serve.replay topo cfg records in
  let* () =
    match Serve.ledger_diff snap.Serve.ledger report.Serve.final_ledger with
    | None -> Ok ()
    | Some d -> errf "full replay ledger mismatch: %s" d
  in
  let* () =
    let ids l = List.map fst l in
    if ids snap.Serve.live_forests <> ids report.Serve.live then
      errf "live ids diverge: replay %d vs run %d"
        (List.length snap.Serve.live_forests)
        (List.length report.Serve.live)
    else
      check_list
        (fun ((id, f), (_, g)) ->
          if Serve.forest_equal f g then Ok ()
          else errf "live forest %d diverges after replay" id)
        (List.combine snap.Serve.live_forests report.Serve.live)
  in
  (* crash at a record boundary: prefix state is internally consistent *)
  let k = c.srv_rcut mod (List.length records + 1) in
  let snap_t = Serve.replay topo cfg (firstn k records) in
  let* () =
    match Serve.recovery_invariant topo cfg snap_t with
    | Ok () -> Ok ()
    | Error m -> errf "crash at record %d: %s" k m
  in
  match Serve.recovery_invariant topo cfg snap with
  | Ok () -> Ok ()
  | Error m -> errf "full snapshot: %s" m

let journal_replay =
  Prop.Packed
    (Prop.make ~shrink:serve_shrink ~print:serve_print ~name:"journal-replay"
       ~gen:serve_gen journal_replay_law)

(* --- 14. batched engine identity --------------------------------------- *)

module Engine = Sof_serve.Engine

type engine_case = {
  eng_seed : int;
  eng_shards : int;  (** 0 = pool size *)
  eng_batch : int;
  eng_zero : bool;  (** deadline 0 (true) vs infinity (false) *)
  eng_ecut : int;  (** event-script truncation point (mod #events + 1) *)
}

let engine_gen rng =
  {
    eng_seed = Rng.int rng 100_000;
    eng_shards = [| 0; 1; 2; 4 |].(Rng.int rng 4);
    eng_batch = 1 + Rng.int rng 5;
    eng_zero = Rng.int rng 2 = 1;
    eng_ecut = Rng.int rng 1_000;
  }

let engine_print c =
  Printf.sprintf "seed = %d; shards = %d; batch = %d; deadline = %s; ecut = %d"
    c.eng_seed c.eng_shards c.eng_batch
    (if c.eng_zero then "0" else "inf")
    c.eng_ecut

(* Shrink toward the sequential-looking corner first (1 shard, then
   batch 1, then the full script) so counterexamples separate sharding
   bugs from batching bugs. *)
let engine_shrink c =
  List.to_seq
    (List.concat
       [
         (if c.eng_shards <> 1 then [ { c with eng_shards = 1 } ] else []);
         (if c.eng_batch > 1 then [ { c with eng_batch = 1 } ] else []);
         (if c.eng_ecut > 0 then [ { c with eng_ecut = c.eng_ecut - 1 } ]
          else []);
       ])

(* The serve-case backpressure gauntlet, in both machine-deterministic
   regimes (deadline 0: budgets expired from birth; infinity: no
   budgets).  The LP rung joins the ladder on every fifth seed, but only
   in the deadline-0 regime: its expired slice makes the attempt cheap
   and pure while still exercising the engine's LP memoization and the
   breaker-open routing (every LP attempt fails, so the breaker trips
   and later requests probe it) — unbudgeted LP on these augmented
   instances is far too slow for a 100-case oracle. *)
let engine_case_cfg c =
  let base =
    serve_case_cfg { srv_seed = c.eng_seed; srv_ecut = 0; srv_rcut = 0 }
  in
  {
    base with
    Serve.deadline_ms = (if c.eng_zero then 0.0 else infinity);
    ladder =
      (if c.eng_zero && c.eng_seed mod 5 = 0 then [ Serve.Lp; Serve.Sofda ]
       else [ Serve.Sofda ]);
  }

(* The tentpole law: the batched engine is bit-identical to the
   sequential server on the same script for any shard count and batch
   size — same responses, journal records, ledger bits, and live
   deployments (wall-clock fields excluded; they differ between any two
   runs). *)
let engine_identity_law c =
  let topo = Sof_topology.Topology.testbed () in
  let cfg = engine_case_cfg c in
  let _, _, n_access = Online.augment topo cfg.Serve.stream.Stream.workload in
  let events =
    Stream.script ~rng:(Rng.create c.eng_seed) ~n_access cfg.Serve.stream
  in
  let events = firstn (c.eng_ecut mod (List.length events + 1)) events in
  let seq = Serve.run_script topo cfg events in
  let bat =
    Engine.run_script
      ~engine:{ Engine.shards = c.eng_shards; batch_size = c.eng_batch }
      topo cfg events
  in
  match Engine.report_diff seq bat with
  | None -> Ok ()
  | Some d ->
      errf "batched (%d shards, batch %d) diverges from sequential: %s"
        c.eng_shards c.eng_batch d

let engine_identity =
  Prop.Packed
    (Prop.make ~shrink:engine_shrink ~print:engine_print
       ~name:"engine-identity" ~gen:engine_gen engine_identity_law)

(* --- shared-DAG forest evaluation equivalence ------------------------- *)

module Fdag = Sof.Fdag

type fdag_case = { fd_spec : Spec.t; fd_script : int list }

let fdag_gen rng =
  let fd_spec = Spec.gen_mixed rng in
  let fd_script =
    Prop.Gen.list_of (Prop.Gen.int_range 2 5) (Prop.Gen.int_range 0 100_000) rng
  in
  { fd_spec; fd_script }

let fdag_print c =
  Printf.sprintf "%s\nwith script = [ %s ]" (Spec.print c.fd_spec)
    (String.concat "; " (List.map string_of_int c.fd_script))

let fdag_shrink c =
  let drops =
    List.mapi
      (fun i _ -> { c with fd_script = List.filteri (fun j _ -> j <> i) c.fd_script })
      c.fd_script
  in
  Seq.append
    (List.to_seq drops)
    (Seq.map (fun s -> { c with fd_spec = s }) (Spec.shrink c.fd_spec))

let bits = Int64.bits_of_float

(* One eval against every legacy evaluator.  Bit-exact on costs: the DAG
   evaluator must re-fold cached per-context costs in the legacy
   first-occurrence order, so even float non-associativity cannot show. *)
let fdag_against_legacy name ctx (f : Forest.t) =
  let r = Fdag.eval ctx f in
  let legacy_errs = match Validate.check f with Ok () -> [] | Error es -> es in
  let* () =
    if r.Fdag.errors = legacy_errs then Ok ()
    else
      errf "%s: fdag errors [%s] <> legacy [%s]" name
        (String.concat "; " (List.map Validate.to_string r.Fdag.errors))
        (String.concat "; " (List.map Validate.to_string legacy_errs))
  in
  let* () =
    if (not r.Fdag.paid_defined) || r.Fdag.paid_edges = Forest.paid_edges f
    then Ok ()
    else errf "%s: paid_edges disagree with legacy" name
  in
  let* () =
    (* the packed-int-key dedup inside Forest.paid_edges against its
       polymorphic-hash reference *)
    if (not r.Fdag.paid_defined) || Forest.paid_edges f = Forest.paid_edges_poly f
    then Ok ()
    else errf "%s: packed paid_edges disagree with the poly reference" name
  in
  if not r.Fdag.cost_defined then
    if r.Fdag.valid then errf "%s: valid forest but cost undefined" name
    else Ok ()
  else
    let setup, conn = Forest.cost_breakdown f in
    let* () =
      if bits r.Fdag.setup_cost = bits setup then Ok ()
      else errf "%s: setup %h <> legacy %h" name r.Fdag.setup_cost setup
    in
    let* () =
      if bits r.Fdag.connection_cost = bits conn then Ok ()
      else errf "%s: connection %h <> legacy %h" name r.Fdag.connection_cost conn
    in
    let* () =
      if bits r.Fdag.total_cost = bits (Forest.total_cost f) then Ok ()
      else
        errf "%s: total %h <> legacy %h" name r.Fdag.total_cost
          (Forest.total_cost f)
    in
    let* () =
      if r.Fdag.enabled_vms = Forest.enabled_vms f then Ok ()
      else errf "%s: enabled_vms disagree with legacy" name
    in
    let fp = Sof_workload.Stream.footprint_of_forest f in
    if
      r.Fdag.fp_edges = fp.Sof_workload.Stream.fp_edges
      && r.Fdag.fp_vms = fp.Sof_workload.Stream.fp_vms
    then Ok ()
    else errf "%s: ledger footprint disagrees with legacy" name

(* A fresh context and a shared warm context must agree field-for-field:
   incremental re-evaluation over dirty nodes is invisible in results. *)
let fdag_warm_vs_cold name warm (f : Forest.t) =
  let rw = Fdag.eval warm f in
  let rc = Fdag.eval (Fdag.create ()) f in
  if
    rw.Fdag.errors = rc.Fdag.errors
    && rw.Fdag.cost_defined = rc.Fdag.cost_defined
    && ((not rw.Fdag.cost_defined)
       || bits rw.Fdag.total_cost = bits rc.Fdag.total_cost)
    && rw.Fdag.paid_edges = rc.Fdag.paid_edges
    && rw.Fdag.fp_edges = rc.Fdag.fp_edges
  then Ok ()
  else errf "%s: warm reeval differs from a cold eval" name

let fdag_equiv_law c =
  let p = Spec.to_problem c.fd_spec in
  let shared = Fdag.create () in
  let* () =
    check_list
      (fun (name, solve) ->
        match solve p with
        | None -> Ok ()
        | Some f ->
            let* () = fdag_against_legacy name (Fdag.create ()) f in
            (* same forest through the shared context: node reuse across
               solver families must not change any result *)
            fdag_against_legacy (name ^ "/shared") shared f)
      algos
  in
  match Sofda.solve_forest p with
  | None -> Ok ()
  | Some f0 ->
      (* splice a dynamic script through one warm context: after every
         step the incremental re-evaluation must match both the legacy
         evaluators and a from-scratch eval *)
      let warm = Fdag.create () in
      let* () = fdag_against_legacy "dyn-seed" warm f0 in
      let rec go f = function
        | [] -> Ok ()
        | code :: rest -> (
            match dyn_step f code with
            | None | Some (_, None) -> go f rest
            | Some (name, Some (upd : Dynamic.update)) ->
                let nf = upd.Dynamic.forest in
                let* () = fdag_against_legacy ("dyn-" ^ name) warm nf in
                let* () = fdag_warm_vs_cold ("dyn-" ^ name) warm nf in
                go nf rest)
      in
      go f0 c.fd_script

let fdag_equiv =
  Prop.Packed
    (Prop.make ~shrink:fdag_shrink ~print:fdag_print ~name:"fdag-equiv"
       ~gen:fdag_gen fdag_equiv_law)

(* --- deliberate demo failure ------------------------------------------ *)

let demo_dest_budget_prop =
  Prop.make ~shrink:Spec.shrink ~print:Spec.print ~name:"demo-dest-budget"
    ~gen:(Spec.gen_random ~max_dests:6 ())
    (fun spec ->
      let d = List.length spec.Spec.dests in
      if d <= 3 then Ok ()
      else errf "instance has %d destinations (law allows 3)" d)

let demo_dest_budget = Prop.Packed demo_dest_budget_prop

(* --- registry ---------------------------------------------------------- *)

let all =
  [
    (forest_validity, 200);
    (ilp_bracket, 100);
    (metric_closure, 300);
    (kstroll_dominance, 300);
    (domain_identity, 120);
    (dynamic_validity, 200);
    (repair_validity, 200);
    (obs_transparency, 200);
    (dijkstra_equiv, 300);
    (ledger_conservation, 60);
    (lp_vs_sofda, 200);
    (* each case solves four LP relax-and-round pipelines, so the per-case
       cost is ~4x the differential oracle's; 100 keeps the suite's wall
       time in check without losing the multi-seed coverage *)
    (rounding_validity, 100);
    (journal_replay, 100);
    (engine_identity, 100);
    (fdag_equiv, 200);
  ]

let names () =
  List.map (fun (p, _) -> Prop.packed_name p) all
  @ [ Prop.packed_name demo_dest_budget ]

let find name =
  let candidates = List.map fst all @ [ demo_dest_budget ] in
  List.find_opt (fun p -> Prop.packed_name p = name) candidates
