module Graph = Sof_graph.Graph
module Rng = Sof_util.Rng
module Problem = Sof.Problem

type t = {
  n : int;
  edges : (int * int * float) list;
  vms : int list;
  sources : int list;
  dests : int list;
  chain_length : int;
  setup : (int * float) list;
}

let to_problem s =
  let graph = Graph.create ~n:s.n ~edges:s.edges in
  let node_cost = Array.make s.n 0.0 in
  List.iter (fun (v, c) -> node_cost.(v) <- c) s.setup;
  Problem.make ~graph ~node_cost ~vms:s.vms ~sources:s.sources ~dests:s.dests
    ~chain_length:s.chain_length

let of_problem (p : Problem.t) =
  {
    n = Problem.n p;
    edges = Graph.edges p.Problem.graph;
    vms = p.Problem.vms;
    sources = p.Problem.sources;
    dests = p.Problem.dests;
    chain_length = p.Problem.chain_length;
    setup =
      List.filter_map
        (fun v ->
          let c = p.Problem.node_cost.(v) in
          if c <> 0.0 then Some (v, c) else None)
        p.Problem.vms;
  }

let print s =
  let b = Buffer.create 256 in
  let f x = Printf.sprintf "%.12g" x in
  let ints xs = String.concat "; " (List.map string_of_int xs) in
  Buffer.add_string b (Printf.sprintf "{ Sof_prop.Spec.n = %d;\n" s.n);
  Buffer.add_string b "  edges = [ ";
  Buffer.add_string b
    (String.concat "; "
       (List.map (fun (u, v, w) -> Printf.sprintf "(%d, %d, %s)" u v (f w))
          s.edges));
  Buffer.add_string b " ];\n";
  Buffer.add_string b (Printf.sprintf "  vms = [ %s ];\n" (ints s.vms));
  Buffer.add_string b (Printf.sprintf "  sources = [ %s ];\n" (ints s.sources));
  Buffer.add_string b (Printf.sprintf "  dests = [ %s ];\n" (ints s.dests));
  Buffer.add_string b
    (Printf.sprintf "  chain_length = %d;\n" s.chain_length);
  Buffer.add_string b "  setup = [ ";
  Buffer.add_string b
    (String.concat "; "
       (List.map (fun (v, c) -> Printf.sprintf "(%d, %s)" v (f c)) s.setup));
  Buffer.add_string b " ] }";
  Buffer.contents b

(* --- shrinking ------------------------------------------------------- *)

let drop_nth xs i = List.filteri (fun j _ -> j <> i) xs

let round1 x =
  let r = Float.round (x *. 10.0) /. 10.0 in
  if r < 0.0 then 0.0 else r

let unused_top_node s =
  let v = s.n - 1 in
  if
    v > 0
    && (not (List.exists (fun (a, b, _) -> a = v || b = v) s.edges))
    && (not (List.mem v s.vms))
    && (not (List.mem v s.sources))
    && not (List.mem v s.dests)
  then Some v
  else None

let shrink s =
  let cands = ref [] in
  let add c = cands := c :: !cands in
  (* Added in reverse priority; the final [List.rev] restores the order
     documented in the mli (aggressive structural drops first). *)
  (* round weights / setups to one decimal *)
  let rounded_edges = List.map (fun (u, v, w) -> (u, v, round1 w)) s.edges in
  if rounded_edges <> s.edges then add { s with edges = rounded_edges };
  let rounded_setup = List.map (fun (v, c) -> (v, round1 c)) s.setup in
  if rounded_setup <> s.setup then add { s with setup = rounded_setup };
  (* trim the highest node when nothing references it *)
  (match unused_top_node s with
  | Some v -> add { s with n = v }
  | None -> ());
  (* delete one edge (reversed twice, so chords — appended last by the
     generators — end up tried first) *)
  List.iteri (fun i _ -> add { s with edges = drop_nth s.edges i }) s.edges;
  (* drop one VM, keeping at least one *)
  if List.length s.vms > 1 then
    List.iteri
      (fun i v ->
        add
          {
            s with
            vms = drop_nth s.vms i;
            setup = List.filter (fun (u, _) -> u <> v) s.setup;
          })
      s.vms;
  (* shorten the chain *)
  if s.chain_length > 1 then add { s with chain_length = s.chain_length - 1 };
  (* drop one source / destination, keeping at least one of each *)
  if List.length s.sources > 1 then
    List.iteri (fun i _ -> add { s with sources = drop_nth s.sources i }) s.sources;
  if List.length s.dests > 1 then
    List.iteri (fun i _ -> add { s with dests = drop_nth s.dests i }) s.dests;
  List.to_seq (List.rev !cands)

(* --- generators ------------------------------------------------------ *)

let random_connected_edges rng ~n ~extra ~w_max =
  let weight () = 0.1 +. Rng.float rng (w_max -. 0.1) in
  let tree =
    List.init (n - 1) (fun i ->
        let v = i + 1 in
        (Rng.int rng v, v, weight ()))
  in
  let chords =
    List.init extra (fun _ ->
        let u = Rng.int rng n and v = Rng.int rng n in
        if u = v then None else Some (u, v, weight ()))
    |> List.filter_map Fun.id
  in
  tree @ chords

let gen_random ?(min_n = 5) ?(max_n = 18) ?(max_chain = 3) ?(max_dests = 4) ()
    rng =
  let n = Rng.range rng min_n max_n in
  let edges = random_connected_edges rng ~n ~extra:(Rng.int rng (n / 2 + 1)) ~w_max:5.0 in
  let chain_length = Rng.range rng 1 (min max_chain (max 1 (n - 3))) in
  let ids = Array.init n Fun.id in
  Rng.shuffle rng ids;
  let nvms = min (n - 2) (max (chain_length + 1) (n / 3)) in
  let nsrc = min (n - nvms - 1) (1 + Rng.int rng 2) in
  let ndst = min (n - nvms - nsrc) (1 + Rng.int rng max_dests) in
  let slice off len = Array.to_list (Array.sub ids off len) in
  let vms = slice 0 nvms in
  let sources = slice nvms nsrc in
  let dests = slice (nvms + nsrc) ndst in
  let setup = List.map (fun v -> (v, 0.5 +. Rng.float rng 4.5)) vms in
  { n; edges; vms; sources; dests; chain_length; setup }

let gen_topology rng =
  let topo =
    match Rng.int rng 3 with
    | 0 -> Sof_topology.Topology.softlayer ()
    | 1 -> Sof_topology.Topology.testbed ()
    | _ ->
        Sof_topology.Topology.inet ~rng:(Rng.split rng) ~nodes:40 ~links:80
          ~dcs:10
  in
  let n_access = Graph.n topo.Sof_topology.Topology.graph in
  let params =
    {
      Sof_workload.Instance.n_vms = Rng.range rng 3 8;
      n_sources = Rng.range rng 1 (min 3 n_access);
      n_dests = Rng.range rng 1 (min 4 n_access);
      chain_length = Rng.range rng 1 3;
      setup_multiplier = Rng.pick rng [| 0.5; 1.0; 2.0 |];
    }
  in
  of_problem (Sof_workload.Instance.draw ~rng:(Rng.split rng) topo params)

let gen_mixed rng =
  Prop.Gen.frequency [ (3, gen_random ()); (1, gen_topology) ] rng

let gen_tiny rng =
  let n = Rng.range rng 6 10 in
  let edges = random_connected_edges rng ~n ~extra:(Rng.int rng 3) ~w_max:4.0 in
  let ids = Array.init n Fun.id in
  Rng.shuffle rng ids;
  let chain_length = Rng.range rng 1 2 in
  let nvms = Rng.range rng (min 2 (chain_length + 1)) 3 in
  let nvms = max nvms chain_length in
  let vms = Array.to_list (Array.sub ids 0 nvms) in
  let sources = [ ids.(nvms) ] in
  let ndst = Rng.range rng 1 2 in
  let dests = Array.to_list (Array.sub ids (nvms + 1) ndst) in
  let setup = List.map (fun v -> (v, 0.5 +. Rng.float rng 2.0)) vms in
  { n; edges; vms; sources; dests; chain_length; setup }
