(** The seed corpus: past failures pinned as replayable regressions.

    Each entry names a property from {!Oracles}, a run seed, a case count
    and the outcome the replay must produce.  Entries expecting [`Fail]
    exist so that known-bad laws (the shrinking demo) keep failing loudly;
    entries expecting [`Pass] are seeds that once exposed a bug and must
    never regress.

    On-disk format (one entry per line, [#] starts a comment):
    {[ <property-name> <seed> <count> <pass|fail>  # optional note ]} *)

type expect = Pass | Fail

type entry = {
  prop : string;
  seed : int;
  count : int;
  expect : expect;
  note : string;
}

val builtin : entry list
(** Entries compiled into the library (replayed by the test suite and by
    [sof fuzz] before fresh random rounds). *)

val parse_line : string -> (entry option, string) result
(** [Ok None] for blank/comment lines; [Error] describes a malformed
    line. *)

val load_file : string -> (entry list, string) result
(** Parse a corpus file; the error message carries the line number. *)

val pp_entry : entry -> string
(** Render in the on-disk format. *)

val replay :
  entry -> (unit, string) result
(** Run the entry's property at its pinned seed and check the outcome
    matches the expectation.  [Error] when the property is unknown, an
    expected pass fails (message includes the shrunk counterexample), or
    an expected failure passes. *)
