module Rng = Sof_util.Rng

module Gen = struct
  type 'a t = Rng.t -> 'a

  let return x _ = x
  let map f g rng = f (g rng)
  let bind g f rng = f (g rng) rng

  let pair a b rng =
    let x = a rng in
    let y = b rng in
    (x, y)

  let int_range lo hi rng = Rng.range rng lo hi
  let float_range lo hi rng = lo +. Rng.float rng (hi -. lo)
  let bool rng = Rng.bool rng

  let oneof gens rng =
    if gens = [] then invalid_arg "Prop.Gen.oneof: empty list";
    (Rng.pick rng (Array.of_list gens)) rng

  let frequency weighted rng =
    let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
    if total <= 0 then invalid_arg "Prop.Gen.frequency: weights must be positive";
    let roll = Rng.int rng total in
    let rec find acc = function
      | [] -> assert false
      | (w, g) :: rest -> if roll < acc + w then g else find (acc + w) rest
    in
    (find 0 weighted) rng

  let choose xs rng =
    if xs = [] then invalid_arg "Prop.Gen.choose: empty list";
    Rng.pick rng (Array.of_list xs)

  let list_of len g rng =
    let n = len rng in
    List.init n (fun _ -> g rng)

  let subset ~max xs rng =
    let a = Array.of_list xs in
    let n = Array.length a in
    let k = Rng.int rng (min max n + 1) in
    let picked = Rng.sample_without_replacement rng k n in
    let mask = Array.make n false in
    List.iter (fun i -> mask.(i) <- true) picked;
    List.filteri (fun i _ -> mask.(i)) xs
end

type 'a law = 'a -> (unit, string) result

type 'a t = {
  name : string;
  gen : 'a Gen.t;
  shrink : 'a -> 'a Seq.t;
  print : 'a -> string;
  law : 'a law;
}

let make ?(shrink = fun _ -> Seq.empty) ?(print = fun _ -> "<opaque>") ~name
    ~gen law =
  { name; gen; shrink; print; law }

let name t = t.name

type 'a failure = {
  run_seed : int;
  case : int;
  case_seed : int;
  shrink_steps : int;
  message : string;
  shrunk : 'a;
  counterexample : string;
}

type 'a outcome = Passed of { count : int } | Failed of 'a failure

(* Case [i] draws from [seed + i * gamma] with a golden-ratio-style odd
   stride (wrapping mod 2^63).  Case 0 uses the run seed itself, so
   replaying a failure with [run ~seed:case_seed ~count:1] regenerates the
   exact failing case as case 0 — the replay contract the failure report
   and the seed corpus rely on.  SplitMix64 decorrelates consecutive
   integer seeds, so the stride only needs to keep one run's cases
   distinct. *)
let case_seed ~seed i = seed + (i * 0x9E3779B97F4A7C1)

let eval law x =
  match law x with
  | r -> r
  | exception e ->
      Error (Printf.sprintf "exception %s" (Printexc.to_string e))

(* Greedy descent: take the first shrink candidate that still fails, repeat
   from there.  Bounded by total law evaluations so a pathological shrinker
   cannot hang the run. *)
let shrink_budget = 10_000

let shrink_down t x0 msg0 =
  let evals = ref 0 in
  let rec go x msg steps =
    if !evals >= shrink_budget then (x, msg, steps)
    else
      let next =
        Seq.find_map
          (fun cand ->
            if !evals >= shrink_budget then None
            else begin
              incr evals;
              match eval t.law cand with
              | Error m -> Some (cand, m)
              | Ok () -> None
            end)
          (t.shrink x)
      in
      match next with
      | Some (cand, m) -> go cand m (steps + 1)
      | None -> (x, msg, steps)
  in
  go x0 msg0 0

let run ?(count = 100) ~seed t =
  let rec loop i =
    if i >= count then Passed { count }
    else
      let cs = case_seed ~seed i in
      let x = t.gen (Rng.create cs) in
      match eval t.law x with
      | Ok () -> loop (i + 1)
      | Error msg ->
          let shrunk, msg', steps = shrink_down t x msg in
          Failed
            {
              run_seed = seed;
              case = i;
              case_seed = cs;
              shrink_steps = steps;
              message = msg';
              shrunk;
              counterexample = t.print shrunk;
            }
  in
  loop 0

let pp_failure name f =
  Printf.sprintf
    "property %S failed at case %d of run seed %d:\n\
    \  %s\n\
     shrunk counterexample (%d steps):\n\
     %s\n\
     replay: run ~seed:%d ~count:1  (corpus line: %s %d 1)"
    name f.case f.run_seed f.message f.shrink_steps f.counterexample
    f.case_seed name f.case_seed

let check_exn ?count ~seed t =
  match run ?count ~seed t with
  | Passed _ -> ()
  | Failed f -> failwith (pp_failure t.name f)

type packed = Packed : 'a t -> packed

let packed_name (Packed t) = t.name

let run_packed ?count ~seed (Packed t) =
  match run ?count ~seed t with
  | Passed c -> Passed c
  | Failed f -> Failed { f with shrunk = f.counterexample }

let check_packed_exn ?count ~seed (Packed t) = check_exn ?count ~seed t
