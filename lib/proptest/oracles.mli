(** The differential-oracle property suite.

    Each property pairs the solver stack against an independent oracle:
    the structural validator plus a from-scratch cost recomputation, the
    branch-and-bound ILP optimum, the metric axioms, the Held–Karp exact
    k-stroll, and the sequential solver as the reference for the parallel
    one.  [all] is the registry the test suite and the [sof fuzz]
    subcommand iterate over. *)

val forest_validity : Prop.packed
(** Every forest returned by SOFDA, SOFDA-SS and the three baselines
    passes {!Sof.Validate.check}, and its reported cost breakdown
    reconciles with a recomputation from {!Sof.Forest.paid_edges} and
    {!Sof.Forest.enabled_vms} against the instance's raw edge and setup
    costs (the same per-context accounting the online {!Sof_cost.Ledger}
    charges). *)

val ilp_bracket : Prop.packed
(** On tiny instances: the IP lower bound never exceeds the SOFDA forest's
    IP objective, and when branch-and-bound proves optimality,
    [opt <= cost(SOFDA) <= 3 * rho_ST * opt] with [rho_ST = 2] — the
    paper's Theorem 2 guarantee with the KMB Steiner ratio substituted. *)

val metric_closure : Prop.packed
(** {!Sof_graph.Metric.closure} is a metric: zero diagonal, symmetric,
    nonnegative, triangle inequality over every terminal triple; the
    node-keyed and index-keyed accessors agree. *)

val kstroll_dominance : Prop.packed
(** The Held–Karp exact k-stroll dominates (costs at most) the
    cheapest-insertion heuristic whenever both are feasible, they are
    feasible on the same cases, and both emit walks obeying the
    closed-walk convention with costs that reconcile with
    {!Sof_kstroll.Kstroll.walk_cost}. *)

val domain_identity : Prop.packed
(** {!Sof.Sofda.solve} is bit-identical with 1 worker domain and with 4 —
    the parallel engine's determinism contract, generalized from the fixed
    50-instance check of the parallel test suite to arbitrary random
    instances. *)

val dynamic_validity : Prop.packed
(** Every Section VII-C adjustment rule — destination leave/join, VNF
    insert/delete, link reroute, VM relocation — applied in a random
    script to a SOFDA forest yields a forest that passes
    {!Sof.Validate.check} and is built on the rule's updated instance.
    Inapplicable or declined operations are skipped, not failures. *)

val repair_validity : Prop.packed
(** For every embedded instance, one failure of every kind (a used link
    cut, a used node killed, an enabled VM crashed): the healed forest
    passes {!Sof.Validate.check}, serves exactly the surviving
    destinations, every dropped destination is unservable on the degraded
    instance, and {!Sof_resilience.Repair.heal} only reports total outage
    when the degraded instance is genuinely unsolvable. *)

val obs_transparency : Prop.packed
(** {!Sof.Sofda.solve} is bit-identical with the {!Sof_obs.Obs} sink
    enabled and disabled — the observability layer's transparency
    contract: instrumentation reads clocks and writes metrics, never
    solver state. *)

val dijkstra_equiv : Prop.packed
(** The workspace Dijkstra engine ({!Sof_graph.Dijkstra.run},
    [multi_source], the targeted [run_to_targets] and the resumable
    [state] driven in slices) reproduces {!Sof_graph.Dijkstra.reference}
    — fresh arrays, no generations, no early exit — {e exactly}: dist and
    parent arrays bit-identical, ties included (weights are snapped onto
    a coarse grid so equal-cost paths are common).  Cases optionally
    sever one node's incident edges and target it, pinning the
    early-exit behaviour on unreachable terminals; Bellman–Ford
    cross-checks distances as an independent algorithm. *)

val ledger_conservation : Prop.packed
(** After {!Sof_workload.Online.run_adaptive} — congestion-blind pricing
    on a tight testbed workload, so rollback/recommit re-joins genuinely
    fire — the final {!Sof_cost.Ledger} is {e bit-identical} to charging
    only the committed forests' footprints into a fresh ledger: every
    rollback is paired with a recommit, no load leaks or double-charges.
    Exact float equality is sound because all loads are sums of the
    exactly-representable demand and 1.0. *)

val lp_vs_sofda : Prop.packed
(** The LP-relax-and-round solver family against SOFDA: both agree on
    feasibility; the rounded forest passes {!Sof.Validate.check}; the
    column-generation lower bound is finite, nonnegative and at most the
    IP objective of {e both} the rounded forest and SOFDA's (the bound
    must stay sound even when pricing stalls and the Lagrangian fallback
    is reported); and re-solving under the same seed replays the forest,
    bound and repair count bit-identically. *)

val rounding_validity : Prop.packed
(** Randomized rounding across several seeds: every draw — whether the
    repair ladder fired or not — validates and its IP objective dominates
    the LP bound, and the bound itself is identical across rounding seeds
    (column generation is deterministic and seed-free). *)

val journal_replay : Prop.packed
(** The serving layer's write-ahead journal ({!Sof_serve.Journal}) on a
    seeded, deadline-free (hence machine-deterministic) serve run whose
    event script is truncated mid-stream so deployments are live at the
    end: the JSON text round-trips and any byte truncation (torn tail)
    still parses to a clean record prefix; replaying the full journal
    reconstructs the final ledger and the live forests {e bit-identically}
    ({!Sof_serve.Serve.replay}); and replaying a prefix cut at any record
    boundary — the simulated [kill -9] — satisfies
    {!Sof_serve.Serve.recovery_invariant} (fresh recharge of the
    recovered forests lands on the replayed ledger's exact bits). *)

val engine_identity : Prop.packed
(** The batched serving engine ({!Sof_serve.Engine}) against the
    sequential server on the same seeded script, in both
    machine-deterministic regimes (deadline 0 and infinity), across
    shard counts 0/1/2/4 and batch sizes 1–5: the deterministic report
    surfaces — responses, journal records, final ledger bits, live
    deployments, every counter except wall-clock-derived ones — must be
    identical ({!Sof_serve.Engine.report_diff}). *)

val fdag_equiv : Prop.packed
(** The shared-DAG evaluator ({!Sof.Fdag}) against the four legacy
    traversals it replaces: on every solver family's forest and along a
    random {!Sof.Dynamic} adjustment script, one {!Sof.Fdag.eval} must
    reproduce {!Sof.Validate.check}'s error list byte-for-byte,
    {!Sof.Forest.paid_edges} / [enabled_vms] structurally, the stream
    ledger footprint, and the cost breakdown {e bit-identically}
    ([Int64.bits_of_float]); and a warm context re-evaluating after each
    splice (dirty nodes only) must agree field-for-field with a cold
    from-scratch context. *)

val all : (Prop.packed * int) list
(** The suite with each property's default case count for one [sof fuzz]
    round (the ILP oracle runs fewer cases per round than the cheap
    structural properties). *)

val find : string -> Prop.packed option
(** Look a property up by name — includes {!demo_dest_budget}, which [all]
    deliberately excludes. *)

val names : unit -> string list
(** Names in [all] order, demo last. *)

val demo_dest_budget_prop : Spec.t Prop.t
(** A deliberately false law ("no instance has more than 3 destinations")
    kept as a living demonstration that the harness finds, shrinks and
    replays failures; the test suite asserts it fails and shrinks to the
    minimal 4-destination instance.  Never part of {!all}. *)

val demo_dest_budget : Prop.packed
(** {!demo_dest_budget_prop} packed for {!find} and the CLI fuzzer. *)
