(** Shrinkable SOF instance descriptions for the property harness.

    A [Spec.t] is a plain-data description of a {!Sof.Problem.t} — node
    count, weighted edge list, role sets, chain length, per-VM setup costs.
    Keeping the description first-order (rather than the built problem) is
    what makes greedy shrinking and literal printing possible: every shrink
    move is a small edit of the description, and a failing case prints as an
    OCaml record the reader can paste straight into a test. *)

type t = {
  n : int;
  edges : (int * int * float) list;
  vms : int list;
  sources : int list;
  dests : int list;
  chain_length : int;
  setup : (int * float) list;  (** (vm, setup cost); VMs absent cost 0 *)
}

val to_problem : t -> Sof.Problem.t
(** @raise Invalid_argument when the description violates
    {!Sof.Problem.make}'s invariants (generated and shrunk specs never
    do). *)

val of_problem : Sof.Problem.t -> t
(** Project a built problem back to a description (used to shrink instances
    drawn through {!Sof_workload.Instance.draw}). *)

val print : t -> string
(** The spec as a pasteable OCaml record literal. *)

val shrink : t -> t Seq.t
(** Greedy shrink candidates, most aggressive first: drop a destination /
    source / VM (never below one of each), shorten the chain, delete an
    edge (chords first — tree edges may disconnect the instance, which the
    law must tolerate), trim the highest unused node, round edge weights
    and setup costs to one decimal.  Every candidate satisfies
    {!to_problem}'s invariants. *)

(** {2 Generators} *)

val gen_random :
  ?min_n:int -> ?max_n:int -> ?max_chain:int -> ?max_dests:int -> unit ->
  t Prop.Gen.t
(** Random connected graph (spanning tree + chords, weights in
    [0.1, 5.0]) with disjoint role sets, in the style of the test suite's
    [testlib].  Defaults: [min_n = 5], [max_n = 18], [max_chain = 3],
    [max_dests = 4]. *)

val gen_topology : t Prop.Gen.t
(** An instance drawn with {!Sof_workload.Instance.draw} on one of the
    paper's topologies (SoftLayer, testbed, a 40-node Inet) with randomized
    workload parameters — exercises the exact construction the benchmarks
    use. *)

val gen_mixed : t Prop.Gen.t
(** [3:1] mix of {!gen_random} and {!gen_topology} — the default instance
    stream for the oracle suite. *)

val gen_tiny : t Prop.Gen.t
(** ILP-oracle-sized instances: at most 10 nodes total, 2–3 VMs, one
    source, 1–2 destinations, chain length at most 2. *)
