module Metric = Sof_graph.Metric
module Pool = Sof_util.Pool
module Timer = Sof_util.Timer
module Stream = Sof_workload.Stream
module Online = Sof_workload.Online
module Obs = Sof_obs.Obs
module I = Serve.Internal

(* Batched multi-domain solve engine.

   The sequential server interleaves scheduling and solving: one request
   is solved to completion before the next queue decision.  The engine
   exploits a structural fact of {!Serve.run_core} — the schedule (which
   requests are served or shed, and at what virtual time) is a pure
   function of the script and config, solver outcomes never feed back
   into it — to split the run into three passes:

   1. {e discover}: replay the event loop with no-op solvers (quiet, no
      journal) and record the served requests in decision order;
   2. {e speculate}: shard those requests by id across the {!Pool}
      domains through a persistent shard queue, coalescing up to
      [batch_size] requests per dispatch, and run each request's full
      ladder against a read-only {!Metric.Cache.snapshot} pre-settled
      for the run's terminals, memoizing every rung outcome;
   3. {e serve}: run the authoritative event loop (journal, breakers,
      ledger, observability) with a [make_attempt] that blocks on the
      request's memo slot and replays the recorded rung outcomes.

   Determinism: in the machine-deterministic regimes ([deadline_ms = 0]
   — budgets expired from birth — or [infinity] — no budgets) each rung
   is a pure function of the problem, so the memoized outcome equals
   what the live solver would have produced and pass 3 is bit-identical
   to the sequential engine for any shard count or batch size (the
   [engine-identity] proptest oracle pins this).  Under a finite nonzero
   deadline the engine keeps the schedule and the WAL contract but
   speculates with uncapped slices, which can only improve solution
   quality — same as two sequential runs differing in machine speed.

   A rung the speculation did not reach (a breaker skip in pass 2 never
   happens — speculation ignores breakers — but pass 3's breakers may
   route around a memoized rung and then probe it later) falls back to
   an inline solve against the same snapshot, counted on
   [engine.inline_solves]. *)

type config = { shards : int; batch_size : int }

let default_config = { shards = 0; batch_size = 8 }

let validate_engine e =
  if e.shards < 0 then invalid_arg "Engine: shards must be >= 0 (0 = pool size)";
  if e.batch_size < 1 then invalid_arg "Engine: batch_size must be >= 1"

(* --- batch former ------------------------------------------------------- *)

(* Pure and order-deterministic: requests keep their relative order
   within a shard (fixed assignment via [shard_of]), each shard's stream
   is cut into chunks of at most [batch_size], and dispatch order
   round-robins across shards so every domain starts working on its
   first batch before any shard's second batch is queued. *)
let form_batches ~shards ~batch_size ~shard_of xs =
  if shards < 1 then invalid_arg "Engine.form_batches: shards must be >= 1";
  if batch_size < 1 then
    invalid_arg "Engine.form_batches: batch_size must be >= 1";
  let per_shard = Array.make shards [] in
  Array.iter
    (fun x ->
      let s = shard_of x in
      if s < 0 || s >= shards then
        invalid_arg "Engine.form_batches: shard_of out of range";
      per_shard.(s) <- x :: per_shard.(s))
    xs;
  let chunks_of l =
    let rec go acc cur n = function
      | [] ->
          let acc =
            if cur = [] then acc else Array.of_list (List.rev cur) :: acc
          in
          Array.of_list (List.rev acc)
      | x :: rest ->
          if n = batch_size then go (Array.of_list (List.rev cur) :: acc) [ x ] 1 rest
          else go acc (x :: cur) (n + 1) rest
    in
    go [] [] 0 l
  in
  let per_shard = Array.map (fun l -> chunks_of (List.rev l)) per_shard in
  let out = ref [] in
  let round = ref 0 in
  let more = ref true in
  while !more do
    more := false;
    Array.iteri
      (fun s chunks ->
        if !round < Array.length chunks then begin
          out := (s, chunks.(!round)) :: !out;
          more := true
        end)
      per_shard;
    incr round
  done;
  List.rev !out

(* --- speculative solve results ------------------------------------------ *)

type precomp = {
  mutable outcomes : (Serve.family * (Sof.Forest.t option * bool)) list;
  mutable wall_s : float;  (* solver seconds spent on this request *)
}

type slot =
  | Pending
  | Ready of precomp
  | Failed of exn * Printexc.raw_backtrace

(* --- the engine --------------------------------------------------------- *)

let run_script ?journal ?(engine = default_config) topo cfg events =
  validate_engine engine;
  let shards = if engine.shards = 0 then Pool.size () else engine.shards in
  Obs.set_gauge "engine.shards" (float_of_int shards);
  (* pass 1: discover the served-request schedule on a throwaway replica *)
  let order_rev = ref [] in
  let seen = Hashtbl.create 64 in
  ignore
    (I.run_core ~quiet:true
       ~make_attempt:(fun _ (r : Stream.request) ->
         if not (Hashtbl.mem seen r.Stream.id) then begin
           Hashtbl.add seen r.Stream.id ();
           order_rev := r :: !order_rev
         end;
         fun ~slice:_ _ -> (None, false))
       topo cfg events);
  let order = Array.of_list (List.rev !order_rev) in
  (* pass 2: warm a shared closure cache for the whole stream's terminal
     set, snapshot it read-only, and fan the ladder solves out over the
     pool in shard-local batches *)
  let inst = I.instance topo cfg in
  let snap =
    let base = Metric.Cache.create () in
    if Array.length order > 0 then begin
      let warm =
        List.sort_uniq Int.compare
          (Array.fold_left
             (fun acc (r : Stream.request) ->
               r.Stream.sources @ r.Stream.dests @ acc)
             (I.instance_vms inst) order)
      in
      ignore
        (Metric.closure ~cache:base (I.instance_graph inst)
           (Array.of_list warm))
    end;
    Metric.Cache.snapshot base
  in
  let maxid =
    Array.fold_left (fun m (r : Stream.request) -> max m r.Stream.id) (-1) order
  in
  let slots = Array.make (maxid + 1) Pending in
  let smutex = Mutex.create () in
  let scond = Condition.create () in
  let set_slot id v =
    Mutex.lock smutex;
    slots.(id) <- v;
    Condition.broadcast scond;
    Mutex.unlock smutex
  in
  let ladder = I.normalize_ladder cfg.Serve.ladder in
  (* Contexts are not domain-safe: each shard-batch closure gets its own,
     shared across the batch's requests (batches shard by id, so a
     context never crosses domains). *)
  let speculate ~fdag (r : Stream.request) =
    let p =
      I.mk_problem inst ~sources:r.Stream.sources ~dests:r.Stream.dests
    in
    let real = I.real_attempt snap p in
    let pre = { outcomes = []; wall_s = 0.0 } in
    let t0 = Timer.now_ns () in
    let attempt ~slice fam =
      let res = real ~slice fam in
      pre.outcomes <- (fam, res) :: pre.outcomes;
      res
    in
    ignore
      (I.ladder_walk ~fdag
         ~allow:(fun _ -> true)
         ~record:(fun _ ~ok:_ -> ())
         ~ladder ~deadline_ms:cfg.Serve.deadline_ms attempt);
    pre.wall_s <- float_of_int (Timer.now_ns () - t0) *. 1e-9;
    set_slot r.Stream.id (Ready pre)
  in
  let sq = Pool.shard_queue ~shards in
  (* best-effort close: a speculative failure already re-raises through
     the muxer's [Failed] slot, and close's own drain would re-raise the
     same exception inside [finally], masking the original *)
  Fun.protect ~finally:(fun () -> try Pool.shard_close sq with _ -> ())
  @@ fun () ->
  List.iter
    (fun (shard, batch) ->
      Obs.count "engine.batches" 1;
      let submitted_ns = Timer.now_ns () in
      Pool.shard_submit sq ~shard (fun () ->
          Obs.record "engine.shard_queue_wait"
            (float_of_int (Timer.now_ns () - submitted_ns) *. 1e-9);
          (* a crash mid-batch must not strand the muxer: mark every slot
             of the batch Failed past the point of the exception *)
          try
            let fdag = Sof.Fdag.create () in
            Array.iter (speculate ~fdag) batch
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            Array.iter
              (fun (r : Stream.request) ->
                match slots.(r.Stream.id) with
                | Pending -> set_slot r.Stream.id (Failed (e, bt))
                | Ready _ | Failed _ -> ())
              batch;
            Printexc.raise_with_backtrace e bt))
    (form_batches ~shards ~batch_size:engine.batch_size
       ~shard_of:(fun (r : Stream.request) -> r.Stream.id mod shards)
       order);
  (* pass 3: the authoritative loop starts immediately — it blocks per
     request on the memo slot, so journal records land as soon as the
     first speculative solves do (pipelining, not a barrier) *)
  let wait_slot id =
    Mutex.lock smutex;
    let rec loop () =
      match slots.(id) with
      | Ready pre ->
          Mutex.unlock smutex;
          pre
      | Failed (e, bt) ->
          Mutex.unlock smutex;
          Printexc.raise_with_backtrace e bt
      | Pending ->
          Condition.wait scond smutex;
          loop ()
    in
    loop ()
  in
  let make_attempt eng_inst (r : Stream.request) =
    let pre =
      if r.Stream.id >= 0 && r.Stream.id <= maxid then wait_slot r.Stream.id
      else { outcomes = []; wall_s = 0.0 }
      (* unseen id: impossible for matching events, but degrade safely *)
    in
    let real =
      lazy
        (I.real_attempt snap
           (I.mk_problem eng_inst ~sources:r.Stream.sources
              ~dests:r.Stream.dests))
    in
    fun ~slice fam ->
      match List.assoc_opt fam pre.outcomes with
      | Some res -> res
      | None ->
          (* breaker routing in pass 3 reached a rung the speculation
             stopped short of; solve it inline on the same snapshot *)
          Obs.count "engine.inline_solves" 1;
          let t0 = Timer.now_ns () in
          let res = (Lazy.force real) ~slice fam in
          pre.wall_s <-
            pre.wall_s +. (float_of_int (Timer.now_ns () - t0) *. 1e-9);
          pre.outcomes <- (fam, res) :: pre.outcomes;
          res
  in
  let wall_of ~id ~measured_s =
    if id >= 0 && id <= maxid then
      match slots.(id) with Ready pre -> pre.wall_s | _ -> measured_s
    else measured_s
  in
  let report = I.run_core ?journal ~make_attempt ~wall_of topo cfg events in
  Pool.shard_drain sq;
  report

let run ?journal ?engine ~rng topo cfg =
  let _, _, n_access = Online.augment topo cfg.Serve.stream.Stream.workload in
  let events = Stream.script ~rng ~n_access cfg.Serve.stream in
  run_script ?journal ?engine topo cfg events

(* --- report comparison -------------------------------------------------- *)

(* Equality of the deterministic surface of two reports.  Wall-clock
   fields ([wall_s], latency percentiles, [deadline_miss]) are excluded:
   they differ between any two runs, sequential or batched. *)
let report_diff (a : Serve.report) (b : Serve.report) =
  let open Serve in
  let scalar name va vb =
    if va <> vb then Some (Printf.sprintf "%s: %d vs %d" name va vb) else None
  in
  let first l = List.find_map (fun f -> f ()) l in
  let response_eq (x : response) (y : response) =
    x.id = y.id && x.arrival = y.arrival && x.start = y.start
    && x.retries = y.retries && x.status = y.status
  in
  first
    [
      (fun () -> scalar "arrivals" a.arrivals b.arrivals);
      (fun () -> scalar "served" a.served b.served);
      (fun () -> scalar "rejected" a.rejected b.rejected);
      (fun () -> scalar "shed_queue_full" a.shed_queue_full b.shed_queue_full);
      (fun () -> scalar "shed_expired" a.shed_expired b.shed_expired);
      (fun () -> scalar "shed_fault" a.shed_fault b.shed_fault);
      (fun () -> scalar "degraded" a.degraded b.degraded);
      (fun () -> scalar "breaker_opens" a.breaker_opens b.breaker_opens);
      (fun () -> scalar "breaker_skips" a.breaker_skips b.breaker_skips);
      (fun () -> scalar "retries" a.retries b.retries);
      (fun () -> scalar "queue_peak" a.queue_peak b.queue_peak);
      (fun () ->
        if
          Int64.bits_of_float a.served_cost_total
          <> Int64.bits_of_float b.served_cost_total
        then
          Some
            (Printf.sprintf "served_cost_total: %.17g vs %.17g"
               a.served_cost_total b.served_cost_total)
        else None);
      (fun () ->
        if List.length a.responses <> List.length b.responses then
          Some
            (Printf.sprintf "response count: %d vs %d"
               (List.length a.responses) (List.length b.responses))
        else
          List.find_map
            (fun ((x : response), (y : response)) ->
              if response_eq x y then None
              else Some (Printf.sprintf "response %d differs" x.id))
            (List.combine a.responses b.responses));
      (fun () ->
        if a.records <> b.records then Some "journal records differ" else None);
      (fun () -> ledger_diff a.final_ledger b.final_ledger);
      (fun () ->
        if
          List.length a.live = List.length b.live
          && List.for_all2
               (fun (i, f) (j, g) -> i = j && forest_equal f g)
               a.live b.live
        then None
        else Some "live deployments differ");
    ]
